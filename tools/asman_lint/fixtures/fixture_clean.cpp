// Negative fixture: every construct here is deliberately adjacent to a
// banned pattern yet legal under the discipline. asman_lint must report
// zero findings on this file; any hit is a false-positive regression.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

using Credit = std::int64_t;
inline constexpr Credit kCreditPerSlot = 100'000;  // digit separators lex fine

struct ClockDomain {
  std::uint64_t freq_hz;
  std::uint64_t from_ms(std::uint64_t ms) const { return freq_hz / 1000 * ms; }
};

struct Machine {
  std::uint64_t freq_hz{2'300'000'000};
  std::uint32_t num_pcpus{8};
  std::uint32_t slots_per_accounting{3};
  // A project method named clock() is the simulated clock domain, not the
  // libc wall clock; only std::/::-qualified calls are banned.
  ClockDomain clock() const { return ClockDomain{freq_hz}; }
};

std::uint64_t slot_cycles(const Machine& m) { return m.clock().from_ms(30); }

// Widened credit math is exactly the discipline integer-credit wants.
Credit total_mint(const Machine& m) {
  return static_cast<Credit>(static_cast<__int128>(m.num_pcpus) *
                             kCreditPerSlot * m.slots_per_accounting);
}

// Membership lookups on unordered containers never observe hash order.
bool is_hot(const std::unordered_set<int>& hot, int id) {
  return hot.count(id) != 0;
}

void consider(int) {}

// Iteration whose body neither writes nor feeds a recording sink is
// order-insensitive and stays legal.
void visit_all(const std::unordered_map<int, long>& residency) {
  for (const auto& kv : residency) consider(kv.first);
}

// A guest kernel thread-state machine is not the VMM's VcpuState seam.
enum class TState { kReady, kBlocked };
struct Thread {
  TState state{TState::kReady};
};
void wake(Thread& th) { th.state = TState::kReady; }

struct Vcpu {
  Credit credit{0};
};

struct Hypervisor {
  // Whitelisted audited accounting path: Hypervisor::charge may write
  // credit — and credit-flow additionally demands the self-debit be
  // saturated against the cap, which this is.
  Credit credit_cap_{300'000};
  void charge(Vcpu& v) {
    v.credit = std::max<Credit>(v.credit - kCreditPerSlot, -credit_cap_);
  }
};

}  // namespace fixture

// Deterministic random number generation for simulations.
//
// Every stochastic component of the simulator draws from its own `Rng`
// seeded from a scenario-level master seed, so that (a) simulations are
// bit-reproducible and (b) changing one component's draw count does not
// perturb another component's stream.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded via SplitMix64;
// both are tiny, fast, and have no external dependencies.
#pragma once

#include <cstdint>
#include <cmath>

namespace asman::sim {

/// SplitMix64: used to expand a single seed into generator state and to
/// derive independent child seeds.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ PRNG with distribution helpers used by the workload models.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  /// Derive an independent child generator (component sub-streams).
  Rng child(std::uint64_t salt) const {
    return Rng(s_[0] ^ (salt * 0x9e3779b97f4a7c15ULL) ^ s_[3]);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const auto x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  bool bernoulli(double p) { return next_double() < p; }

  /// Exponential with the given mean (inter-arrival style draws).
  double exponential(double mean) {
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal via Marsaglia polar method.
  double normal(double mean, double sd) {
    double u, v, s;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return mean + sd * u * std::sqrt(-2.0 * std::log(s) / s);
  }

  /// Lognormal-ish positive jitter around `mean` with coefficient of
  /// variation `cv`; clamped to stay positive. Workload phase lengths use
  /// this (compute chunks are never negative).
  double positive_jitter(double mean, double cv) {
    if (cv <= 0.0) return mean;
    const double x = normal(mean, mean * cv);
    const double floor_v = mean * 0.05;
    return x < floor_v ? floor_v : x;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace asman::sim

#include "audit/auditor.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "vmm/state_spec.h"

namespace asman::audit {

namespace {

bool env_truthy(const char* name) {
  // The auditor's arming switch is host configuration, read once outside
  // the simulated world. asman-lint's determinism check proves this shape
  // directly (confined host-config read: the pointer binds to a const
  // local used only in comparisons/strcmp and never escapes), so no
  // allow(...) pragma is needed.
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

const char* state_name(vmm::VcpuState s) {
  switch (s) {
    case vmm::VcpuState::kRunning:
      return "Running";
    case vmm::VcpuState::kRunnable:
      return "Runnable";
    case vmm::VcpuState::kBlocked:
      return "Blocked";
    case vmm::VcpuState::kDestroyed:
      return "Destroyed";
  }
  return "?";
}

std::string key_str(vmm::VcpuKey k) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "v%u.%u", k.vm, k.idx);
  return buf;
}

}  // namespace

bool audit_env_enabled() { return env_truthy("ASMAN_AUDIT"); }
bool audit_fatal_env() { return env_truthy("ASMAN_AUDIT_FATAL"); }

Auditor::Auditor(sim::Simulator& simulation, vmm::Hypervisor& hv,
                 AuditorConfig cfg)
    : sim_(simulation), hv_(hv), cfg_(cfg) {
  if (cfg_.stride == 0) cfg_.stride = 1;
  if (audit_fatal_env()) cfg_.fatal = true;
  clock_ = [this] { return sim_.now(); };
  snapshot_states();
  hv_.set_audit_sink(this);
}

Auditor::~Auditor() {
  if (hv_.audit_sink() == this) hv_.set_audit_sink(nullptr);
}

void Auditor::set_clock(std::function<sim::Cycles()> clock) {
  clock_ = std::move(clock);
}

void Auditor::flag(Invariant inv, std::string what) {
  AuditReport::Entry& e = report_.entry(inv);
  ++e.violations;
  if (e.violations == 1) {
    e.first_offender = what;
    e.first_at = clock_();
  }
  if (cfg_.fatal) {
    std::fprintf(stderr, "%s", report_.summary().c_str());
    std::fprintf(stderr, "ASMAN_AUDIT_FATAL: invariant %s violated at %llu: %s\n",
                 to_string(inv), static_cast<unsigned long long>(clock_().v),
                 what.c_str());
    std::abort();
  }
}

void Auditor::observe_time() {
  const sim::Cycles t = clock_();
  ++report_.entry(Invariant::kTimeMonotonic).checks;
  if (saw_time_ && t < last_time_)
    flag(Invariant::kTimeMonotonic,
         "event time went backwards: " + std::to_string(last_time_.v) +
             " -> " + std::to_string(t.v));
  saw_time_ = true;
  last_time_ = t;
}

void Auditor::snapshot_pools() {
  pool_before_.assign(hv_.num_vms(), 0);
  for (vmm::VmId id = 0; id < hv_.num_vms(); ++id) {
    std::int64_t pool = 0;
    for (const vmm::Vcpu& c : hv_.vm(id).vcpus) pool += c.credit;
    pool_before_[id] = pool;
  }
}

void Auditor::snapshot_states() {
  shadow_.assign(hv_.num_vms(), {});
  for (vmm::VmId id = 0; id < hv_.num_vms(); ++id) {
    const vmm::Vm& v = hv_.vm(id);
    shadow_[id].reserve(v.num_vcpus());
    for (const vmm::Vcpu& c : v.vcpus) shadow_[id].push_back(c.state);
  }
}

void Auditor::check_now() {
  ++report_.full_scans;
  std::vector<Violation> found;
  report_.entry(Invariant::kCreditBounds).checks +=
      check_credit_bounds(hv_, found);
  report_.entry(Invariant::kQueuePartition).checks +=
      check_queue_partition(hv_, found);
  report_.entry(Invariant::kGangCoherence).checks +=
      check_gang_coherence(hv_, found);
  report_.entry(Invariant::kCycleConservation).checks +=
      check_cycle_conservation(hv_, found);
  report_.entry(Invariant::kPressureConservation).checks +=
      check_pressure_conservation(hv_, found);
  // Shadow consistency: the hypervisor's actual lifecycle states must match
  // what the legal transition stream implies.
  for (vmm::VmId id = 0; id < hv_.num_vms() && id < shadow_.size(); ++id) {
    const vmm::Vm& v = hv_.vm(id);
    for (std::uint32_t i = 0; i < v.num_vcpus() && i < shadow_[id].size();
         ++i) {
      ++report_.entry(Invariant::kStateMachine).checks;
      if (v.vcpus[i].state != shadow_[id][i])
        found.push_back(
            {Invariant::kStateMachine,
             key_str(v.vcpus[i].key) + " is " + state_name(v.vcpus[i].state) +
                 " but the transition stream says " +
                 state_name(shadow_[id][i])});
    }
  }
  for (Violation& viol : found) flag(viol.kind, std::move(viol.what));
}

void Auditor::on_sched_event(vmm::AuditPoint p) {
  ++report_.events;
  observe_time();
  if (p == vmm::AuditPoint::kAccountingBegin) {
    snapshot_pools();
    return;  // mid-entry: the full scan runs at kAccountingEnd
  }
  if (++scan_counter_ % cfg_.stride == 0) check_now();
}

void Auditor::on_state_change(vmm::VcpuKey k, vmm::VcpuState from,
                              vmm::VcpuState to) {
  ++report_.events;
  observe_time();
  AuditReport::Entry& e = report_.entry(Invariant::kStateMachine);
  ++e.checks;
  // The legal relation lives in vmm/state_spec.h — one definition shared
  // with asman-lint's static state-machine proof.
  if (!vmm::legal_transition(from, to))
    flag(Invariant::kStateMachine, key_str(k) + " illegal transition " +
                                       state_name(from) + " -> " +
                                       state_name(to));
  if (k.vm < shadow_.size() && k.idx < shadow_[k.vm].size()) {
    if (shadow_[k.vm][k.idx] != from)
      flag(Invariant::kStateMachine,
           key_str(k) + " transition claims from=" + std::string(state_name(from)) +
               " but the VCPU was " + state_name(shadow_[k.vm][k.idx]));
    shadow_[k.vm][k.idx] = to;
  }
}

void Auditor::on_accounting(vmm::VmId id, std::int64_t minted) {
  ++report_.events;
  observe_time();
  AuditReport::Entry& e = report_.entry(Invariant::kCreditConservation);
  ++e.checks;
  const vmm::Vm& v = hv_.vm(id);
  const hw::MachineConfig& m = hv_.machine();
  // Widened exactly like the scheduler's own mint computation: the int64
  // product of num_pcpus * kCreditPerSlot * slots_per_accounting overflows
  // (UB) well inside the valid config space.
  const std::int64_t total_mint =
      static_cast<std::int64_t>(static_cast<__int128>(m.num_pcpus) *
                                vmm::kCreditPerSlot *
                                m.slots_per_accounting);
  if (minted < 0 || minted > total_mint) {
    flag(Invariant::kCreditConservation,
         v.name + " minted " + std::to_string(minted) +
             " outside [0, " + std::to_string(total_mint) + "]");
    return;
  }
  if (id >= pool_before_.size()) return;  // attached mid-period: no baseline
  // Recompute Algorithm 3's redistribution: pool + mint, split equally
  // (C++ truncating division, as the scheduler does), saturated at +cap.
  const auto n = static_cast<std::int64_t>(v.num_vcpus());
  const std::int64_t per = (pool_before_[id] + minted) / n;
  const std::int64_t expect = std::min<std::int64_t>(per, hv_.credit_cap());
  for (const vmm::Vcpu& c : v.vcpus) {
    if (c.credit != expect) {
      flag(Invariant::kCreditConservation,
           key_str(c.key) + " credit " + std::to_string(c.credit) +
               " after accounting, expected " + std::to_string(expect) +
               " (pool " + std::to_string(pool_before_[id]) + " + mint " +
               std::to_string(minted) + " over " + std::to_string(n) +
               " VCPUs)");
      return;
    }
  }
}

void Auditor::on_seeded(vmm::VmId id, __int128 pool) {
  ++report_.events;
  observe_time();
  AuditReport::Entry& e = report_.entry(Invariant::kCreditConservation);
  ++e.checks;
  const vmm::Vm& v = hv_.vm(id);
  // Recompute seed_credit's split from the authoritative transferred pool:
  // truncating equal division, clamped to the saturation cap on both sides
  // (a deeply indebted VM migrates with its debt, bounded like any balance).
  const auto n = static_cast<__int128>(v.num_vcpus());
  __int128 share = pool / n;
  const auto cap = static_cast<__int128>(hv_.credit_cap());
  if (share > cap) share = cap;
  if (share < -cap) share = -cap;
  const auto expect = static_cast<std::int64_t>(share);
  for (const vmm::Vcpu& c : v.vcpus) {
    if (c.credit != expect) {
      flag(Invariant::kCreditConservation,
           key_str(c.key) + " credit " + std::to_string(c.credit) +
               " after migration seeding, expected " + std::to_string(expect));
      return;
    }
  }
}

void Auditor::on_vm_created(vmm::VmId id) {
  ++report_.events;
  observe_time();
  // Extend the shadow with the new VM's rows before the kLifecycle scan
  // compares them (its VCPUs are kRunnable and already queued).
  while (shadow_.size() < hv_.num_vms()) {
    const auto nid = static_cast<vmm::VmId>(shadow_.size());
    const vmm::Vm& v = hv_.vm(nid);
    std::vector<vmm::VcpuState> row;
    row.reserve(v.num_vcpus());
    for (const vmm::Vcpu& c : v.vcpus) row.push_back(c.state);
    shadow_.push_back(std::move(row));
  }
  (void)id;
}

void Auditor::on_relocated(vmm::VmId id) {
  ++report_.events;
  observe_time();
  // Event-scoped check: the topology-placement contract only binds at the
  // instant relocate_vm finishes (members drift legally in between), so the
  // checker runs here for the relocated VM and nowhere in the full scans.
  std::vector<Violation> found;
  report_.entry(Invariant::kTopologyPlacement).checks +=
      check_topology_placement(hv_, id, found);
  for (Violation& viol : found) flag(viol.kind, std::move(viol.what));
}

void Auditor::on_contention() {
  ++report_.events;
  observe_time();
  AuditReport::Entry& e = report_.entry(Invariant::kPressureConservation);
  // Event-scoped partition half of the invariant: rebuild the engine's
  // input from the hypervisor's authoritative public state and recompute
  // the pass with the same shared function (one definition, two callers —
  // the state_spec idiom), then compare against what the scheduler
  // published. Any divergence means a home or footprint changed without
  // flowing through the audited paths. (The pressure balancer runs after
  // this hook precisely so placement here is still the placement the
  // scheduler fed compute_contention.)
  const vmm::Hypervisor& hv = hv_;
  const hw::Topology& topo = hv.topology();
  const hw::memsys::ContentionPass& pub = hv.pressure_last();
  ++e.checks;
  if (pub.vm_llc_demand.size() != hv.num_vms()) {
    flag(Invariant::kPressureConservation,
         "published pass covers " + std::to_string(pub.vm_llc_demand.size()) +
             " VMs, hypervisor holds " + std::to_string(hv.num_vms()));
    return;
  }
  // (a) Partition arithmetic of the published pass itself: granted is
  // elementwise bounded by demand and the per-LLC columns sum exactly to
  // min(capacity, demand) — a skewed occupancy cannot hide in rounding.
  const std::uint64_t cap = hv.machine().llc_bytes;
  for (std::uint32_t l = 0; l < topo.num_llcs(); ++l) {
    ++e.checks;
    std::uint64_t col_demand = 0;
    std::uint64_t col_granted = 0;
    for (vmm::VmId id = 0; id < hv.num_vms(); ++id) {
      if (pub.vm_llc_granted[id][l] > pub.vm_llc_demand[id][l])
        flag(Invariant::kPressureConservation,
             hv.vm(id).name + " granted " +
                 std::to_string(pub.vm_llc_granted[id][l]) +
                 " > demanded " + std::to_string(pub.vm_llc_demand[id][l]) +
                 " on LLC " + std::to_string(l));
      col_demand += pub.vm_llc_demand[id][l];
      col_granted += pub.vm_llc_granted[id][l];
    }
    const std::uint64_t expect = std::min(cap, col_demand);
    if (col_demand != pub.llc_demand[l] || col_granted != pub.llc_granted[l] ||
        (col_demand > 0 && col_granted != expect))
      flag(Invariant::kPressureConservation,
           "LLC " + std::to_string(l) + " occupancy not a partition: demand " +
               std::to_string(pub.llc_demand[l]) + "/" +
               std::to_string(col_demand) + ", granted " +
               std::to_string(pub.llc_granted[l]) + "/" +
               std::to_string(col_granted) + ", expected grant " +
               std::to_string(expect));
  }
  // (b) Independent recomputation from authoritative placement: the
  // published matrices must be reproducible from public state alone.
  std::vector<hw::memsys::VmLoad> loads(hv.num_vms());
  for (vmm::VmId id = 0; id < hv.num_vms(); ++id) {
    const vmm::Vm& v = hv.vm(id);
    if (!v.alive) continue;
    const hw::memsys::MemFootprint& fp = hv.vm_footprint(id);
    if (fp.zero()) continue;
    loads[id].fp = &fp;
    for (const vmm::Vcpu& c : v.vcpus) {
      loads[id].vcpu_llc.push_back(topo.llc_of(c.where));
      loads[id].vcpu_socket.push_back(topo.socket_of(c.where));
    }
  }
  hw::memsys::ContentionPass mine;
  hw::memsys::compute_contention(topo, cap,
                                 hv.machine().socket_mem_bw_bytes_per_s, loads,
                                 mine);
  ++e.checks;
  if (mine.llc_demand != pub.llc_demand ||
      mine.vm_llc_demand != pub.vm_llc_demand ||
      mine.vm_llc_granted != pub.vm_llc_granted)
    flag(Invariant::kPressureConservation,
         "published occupancy partition does not match independent "
         "recomputation from authoritative placement");
  // (c) Ledger freshness: the engine just accounted everything — every
  // live VCPU's mark must sit exactly at its consumed-cycle meter.
  for (vmm::VmId id = 0; id < hv.num_vms(); ++id) {
    const vmm::Vm& v = hv.vm(id);
    if (!v.alive) continue;
    for (const vmm::Vcpu& c : v.vcpus) {
      ++e.checks;
      if (c.pressure_mark != c.total_online)
        flag(Invariant::kPressureConservation,
             key_str(c.key) + " pressure mark " +
                 std::to_string(c.pressure_mark.v) + " lags total_online " +
                 std::to_string(c.total_online.v) + " after an engine pass");
    }
  }
}

void Auditor::on_vm_resized(vmm::VmId id) {
  ++report_.events;
  observe_time();
  if (id >= shadow_.size()) return;
  const vmm::Vm& v = hv_.vm(id);
  std::vector<vmm::VcpuState>& row = shadow_[id];
  if (v.num_vcpus() < row.size()) {
    // Shrink: the drained records' ->Destroyed transitions already advanced
    // the shadow; just drop the tails with them.
    row.resize(v.num_vcpus());
  } else {
    while (row.size() < v.num_vcpus()) row.push_back(v.vcpus[row.size()].state);
  }
}

}  // namespace asman::audit

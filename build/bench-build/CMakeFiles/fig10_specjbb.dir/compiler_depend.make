# Empty compiler generated dependencies file for fig10_specjbb.
# This may be replaced when dependencies are built.

// Seeded-violation fixture for the `audit-seam` check: VcpuState writes,
// run-queue membership changes, and credit writes outside the audited
// choke points (Hypervisor::set_state / enqueue / dequeue / the accounting
// paths). Never compiled into any target. Expected: 4 audit-seam findings.
#include <cstdint>
#include <vector>

namespace fixture {

enum class VcpuState { kRunnable, kRunning, kBlocked };

struct Vcpu {
  VcpuState state{VcpuState::kRunnable};
  std::int64_t credit{0};
  std::uint32_t where{0};
};

struct RunQueue {
  void push(Vcpu*) {}
  bool remove(Vcpu*) { return true; }
};

struct Pcpu {
  RunQueue runq;
};

struct Hypervisor {
  std::vector<Pcpu> pcpus_;

  // planted: lifecycle state write bypassing set_state (the auditor's
  // shadow state machine would silently drift).
  void rogue_block(Vcpu& v) { v.state = VcpuState::kBlocked; }

  // planted x2: run-queue membership changed outside enqueue/dequeue.
  void rogue_move(Vcpu& v, std::uint32_t dest) {
    pcpus_[v.where].runq.remove(&v);
    pcpus_[dest].runq.push(&v);
  }

  // planted: credit mutated outside the audited accounting paths.
  void rogue_grant(Vcpu& v) { v.credit += 100; }
};

}  // namespace fixture

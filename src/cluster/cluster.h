// Cluster fabric: N simulated hosts under one deterministic event engine.
//
// Each host is a full hw::Topology + vmm::Hypervisor instance; the fabric
// adds what a single host cannot express:
//
//   * a fleet-level placer that admits VMs cluster-wide (least weighted
//     VCPU load first, falling through the load order on admission
//     rejects),
//   * live migration as an explicit retry/timeout/rollback state machine
//     (kPreCopy -> kStopAndCopy -> kCommit | kAbort, see
//     migration_spec.h) with modeled dirty-page copy cost and a bounded
//     stop-and-copy downtime window; credit crosses hosts as an audited
//     __int128 transfer through Hypervisor::migrate_out / migrate_in,
//   * host-level faults (faults::HostFaultSpec): a crashed host halts
//     audit-clean, its in-flight migrations roll back (source
//     authoritative, destination tombstones the partial copy) and its
//     resident VMs are re-admitted elsewhere carrying their last
//     heartbeat-minted credit,
//   * two cluster-wide invariants (audit::Invariant::kSingleOwnership,
//     kClusterCreditConservation), checked by ClusterAuditor at every
//     heartbeat and transfer seam.
//
// Everything is single-threaded and bit-reproducible per seed: migration
// timings derive from integer copy-cost arithmetic, fault times come from
// the plan, and every cluster event runs on the shared sim::Simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/migration_spec.h"
#include "core/schedulers.h"
#include "faults/fault_plan.h"
#include "hw/machine.h"
#include "simcore/event_scope.h"
#include "simcore/simulator.h"
#include "vmm/hypervisor.h"

#ifdef ASMAN_AUDIT_ENABLED
#include "audit/auditor.h"
#include "audit/report.h"
#endif

namespace asman::cluster {

class ClusterAuditor;

using HostId = std::uint32_t;
using ClusterVmId = std::uint32_t;
inline constexpr HostId kInvalidHostId = 0xFFFFFFFFu;
inline constexpr ClusterVmId kInvalidClusterVmId = 0xFFFFFFFFu;

/// Retry/timeout/rollback policy of the migration state machine and the
/// crash-recovery path. Zero-valued fields are derived from the machine
/// config at start() (the vmm::ResilienceConfig convention).
struct RecoveryConfig {
  /// Give up iterating pre-copy after this many rounds and force the
  /// stop-and-copy (0 = 8).
  std::uint32_t max_precopy_rounds{0};
  /// Failed copy attempts (link loss, phase timeout) tolerated per
  /// migration before kAbort (0 = 3).
  std::uint32_t max_phase_retries{0};
  /// A single copy attempt (one pre-copy round or the final stop-and-copy)
  /// that has not completed after this long counts as a failed attempt
  /// (0 = 8 accounting periods).
  sim::Cycles phase_timeout{0};
  /// Base delay before re-attempting after a failed copy; doubles per
  /// retry — exponential backoff (0 = one slot).
  sim::Cycles retry_backoff{0};
  /// Stop-and-copy is entered only once the remaining dirty bytes copy
  /// within this budget (or the rounds are exhausted) — the bounded
  /// downtime window (0 = slot / 10).
  sim::Cycles max_downtime{0};
  /// Period of the fabric heartbeat that snapshots every resident VM's
  /// credit pool — the "last-minted credit" a crash recovery re-seeds
  /// (0 = one accounting period).
  sim::Cycles heartbeat_period{0};
};

/// Dirty-page copy cost model shared by every migration.
struct MigrationModel {
  /// Copy link bandwidth, MB/s (also the stop-and-copy drain rate).
  std::uint64_t link_mb_per_s{10240};
  /// Percent of the bytes copied in a round that are re-dirtied while the
  /// round ran (the writable-working-set ratio).
  std::uint32_t dirty_pct{30};
};

struct ClusterVmSpec {
  std::string name;  // must be cluster-unique (ownership is per name)
  std::uint32_t weight{256};
  std::uint32_t vcpus{2};
  vmm::VmType type{vmm::VmType::kGeneral};
  std::uint64_t ram_mb{512};  // migrated image size
};

struct ClusterConfig {
  std::uint32_t num_hosts{4};
  hw::MachineConfig machine{};  // uniform fleet
  core::SchedulerKind scheduler{core::SchedulerKind::kAsman};
  vmm::SchedMode mode{vmm::SchedMode::kNonWorkConserving};
  vmm::ResilienceConfig resilience{};
  vmm::AdmissionConfig admission{};  // per-host admission control
  RecoveryConfig recovery{};
  MigrationModel model{};
  std::uint64_t seed{1};
  /// Attach per-host auditors plus the cluster auditor (also forced on by
  /// the ASMAN_AUDIT environment variable, like run_scenario).
  bool audit{false};
  std::uint32_t audit_stride{1};
};

/// Fleet-side record of one admitted VM. The fabric tracks residency by
/// cluster id; the name is the cross-host identity the single-ownership
/// invariant scans for.
struct VmRecord {
  ClusterVmId id{kInvalidClusterVmId};
  std::string name;
  std::uint32_t weight{256};
  std::uint32_t vcpus{1};
  vmm::VmType type{vmm::VmType::kGeneral};
  std::uint64_t ram_mb{512};
  HostId host{kInvalidHostId};
  vmm::VmId local{vmm::kInvalidVmId};
  /// Crash recovery found no surviving host with admission headroom.
  bool lost{false};
  /// Destroyed on purpose (cluster retire); expected resident nowhere.
  bool retired{false};
  bool migrating{false};
  /// Credit pool at the last fabric heartbeat — what a crash re-seeds.
  __int128 heartbeat_credit{0};
  /// Times this VM was re-admitted after losing its host.
  std::uint64_t replacements{0};
};

/// One live-migration in flight (or completed). Append-only: the record
/// doubles as the migration's audit trail.
struct MigrationRec {
  ClusterVmId vm{kInvalidClusterVmId};
  HostId src{kInvalidHostId};
  HostId dst{kInvalidHostId};
  MigrationPhase phase{MigrationPhase::kIdle};
  std::uint32_t round{0};
  std::uint32_t retries{0};
  std::uint64_t bytes_left{0};
  bool active{false};
  /// Every copy/retry event of this migration is tracked here so a crash
  /// or abort cancels the machinery wholesale.
  sim::EventScope events;
};

class Cluster {
 public:
  Cluster(sim::Simulator& simulation, const ClusterConfig& cfg);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Fleet-level admission: place on the least-loaded live host, falling
  /// through the load order when a host's admission controller rejects.
  /// Returns kInvalidClusterVmId when every host rejects.
  ClusterVmId admit(const ClusterVmSpec& spec);

  /// Destroy a resident VM cluster-wide (aborts its in-flight migration
  /// first; the source stays authoritative until the rollback completes).
  bool retire(ClusterVmId id);

  /// Start a live migration. Returns false when the VM is not resident,
  /// already migrating, or `dst` is its current host / dead / degraded.
  bool migrate(ClusterVmId id, HostId dst);

  /// Least-loaded live host eligible as a migration target or re-admission
  /// site, skipping `exclude`. kInvalidHostId when none qualifies.
  HostId pick_host(HostId exclude = kInvalidHostId) const;

  /// Adopt the host-fault schedule of `plan` (kHostCrash / kHostDegraded /
  /// kMigrationLinkLoss). Call before start(); VCPU-level faults in the
  /// plan are ignored here (they stay per-host injector business).
  void inject(const faults::FaultPlan& plan);

  /// Boot every host, arm the heartbeat and the fault schedule.
  void start();

  /// Chaos seam: crash host `h` right now — halt it audit-clean, roll back
  /// its in-flight migrations and re-admit its resident VMs elsewhere with
  /// their last heartbeat credit. The injected kHostCrash events land
  /// here; tests drive it directly to hit exact FSM phases.
  void crash_host_now(HostId h);

  /// Observe every migration phase transition (fired from inside the
  /// set_phase seam). Test hook for phase-targeted fault injection; keep
  /// the callback re-entrancy-free (schedule, don't mutate).
  using PhaseHook =
      std::function<void(ClusterVmId, MigrationPhase from, MigrationPhase to)>;
  void set_phase_hook(PhaseHook hook) { phase_hook_ = std::move(hook); }

  // --- introspection ---
  std::uint32_t num_hosts() const {
    return static_cast<std::uint32_t>(hosts_.size());
  }
  vmm::Hypervisor& host(HostId h) { return *hosts_[h].hv; }
  const vmm::Hypervisor& host(HostId h) const { return *hosts_[h].hv; }
  bool host_alive(HostId h) const { return hosts_[h].alive; }
  bool host_degraded(HostId h) const { return hosts_[h].degraded; }
  std::size_t num_vms() const { return vms_.size(); }
  const VmRecord& vm(ClusterVmId id) const { return vms_[id]; }
  bool vm_resident(ClusterVmId id) const;
  std::size_t num_migrations() const { return migrations_.size(); }
  const MigrationRec& migration(std::size_t i) const {
    return *migrations_[i];
  }
  /// Phase of the VM's active migration (kIdle when none).
  MigrationPhase migration_phase(ClusterVmId id) const;
  const RecoveryConfig& recovery() const { return recovery_; }

  // --- counters ---
  std::uint64_t migrations_started() const { return migrations_started_; }
  std::uint64_t migrations_committed() const { return migrations_committed_; }
  std::uint64_t migrations_aborted() const { return migrations_aborted_; }
  std::uint64_t migrations_retried() const { return migrations_retried_; }
  std::uint64_t precopy_rounds() const { return precopy_rounds_; }
  std::uint64_t link_failures() const { return link_failures_; }
  std::uint64_t phase_timeouts() const { return phase_timeouts_; }
  std::uint64_t tombstoned_copies() const { return tombstoned_copies_; }
  std::uint64_t host_crashes() const { return host_crashes_; }
  std::uint64_t degraded_windows() const { return degraded_windows_; }
  std::uint64_t vms_replaced() const { return vms_replaced_; }
  std::uint64_t vms_lost() const { return vms_lost_; }
  std::uint64_t admission_rejects() const { return admission_rejects_; }
  std::uint64_t heartbeats() const { return heartbeats_; }
  std::uint64_t phase_transitions() const { return phase_transitions_; }
  /// Credit the split truncation/clamp left unseeded across all transfers
  /// (retained by the fabric, never silently minted back).
  long long residual_credit() const {
    return static_cast<long long>(residual_credit_);
  }
  /// Signed drift between what crashed hosts actually held and the
  /// heartbeat snapshots their VMs were re-seeded from (lost with the
  /// host — the price of recovering from stale state).
  long long crash_credit_delta() const {
    return static_cast<long long>(crash_credit_delta_);
  }

  /// Aggregated audit results over every host auditor plus the cluster
  /// auditor. All zeros / empty when auditing is off or compiled out.
  std::uint64_t audit_checks() const;
  std::uint64_t audit_violations() const;
  std::string audit_summary() const;
  /// Run every full-state scan (per-host and cluster-wide) immediately.
  void check_now();

 private:
  friend class ClusterAuditor;

  struct HostRec {
    std::unique_ptr<vmm::Hypervisor> hv;
    bool alive{true};
    bool degraded{false};
    /// PCPUs taken offline by a kHostDegraded window, to bring back.
    std::vector<hw::PcpuId> degraded_offline;
#ifdef ASMAN_AUDIT_ENABLED
    std::unique_ptr<audit::Auditor> auditor;
#endif
  };

  /// The single seam every migration phase write goes through; call sites
  /// carry assert() evidence of the from-phase so asman-lint's
  /// state-machine rule can check them against kLegalMigrationTransitions.
  void set_phase(MigrationRec& m, MigrationPhase to);

  void begin_attempt(std::size_t mi);
  void finish_round(std::size_t mi);
  void enter_stop_and_copy(std::size_t mi);
  void finish_stop_and_copy(std::size_t mi);
  void commit(std::size_t mi);
  void fail_attempt(std::size_t mi, const char* why);
  void fail_stop_and_copy(std::size_t mi, const char* why);
  void abort_migration(MigrationRec& m, const char* why);
  std::vector<HostId> host_order(HostId exclude) const;
  void degrade_host(HostId h, sim::Cycles duration);
  void heartbeat();
  void arm_heartbeat();
  bool readmit(VmRecord& r);
  void snapshot_heartbeat(VmRecord& r);
  __int128 resident_pool(const VmRecord& r) const;
  sim::Cycles copy_cycles(std::uint64_t bytes) const;
  bool link_down(const MigrationRec& m) const;
  void note_transfer(const char* what, __int128 expected, __int128 ticket,
                     __int128 seeded);
  void audit_cluster_event();

  sim::Simulator& sim_;
  ClusterConfig cfg_;
  RecoveryConfig recovery_;  // resolved (no zero fields) at start()
  std::vector<HostRec> hosts_;
  std::vector<VmRecord> vms_;
  std::vector<std::unique_ptr<MigrationRec>> migrations_;
  std::vector<faults::HostFaultSpec> host_faults_;
  PhaseHook phase_hook_;
  bool started_{false};

  std::uint64_t migrations_started_{0};
  std::uint64_t migrations_committed_{0};
  std::uint64_t migrations_aborted_{0};
  std::uint64_t migrations_retried_{0};
  std::uint64_t precopy_rounds_{0};
  std::uint64_t link_failures_{0};
  std::uint64_t phase_timeouts_{0};
  std::uint64_t tombstoned_copies_{0};
  std::uint64_t host_crashes_{0};
  std::uint64_t degraded_windows_{0};
  std::uint64_t vms_replaced_{0};
  std::uint64_t vms_lost_{0};
  std::uint64_t admission_rejects_{0};
  std::uint64_t heartbeats_{0};
  std::uint64_t phase_transitions_{0};
  __int128 residual_credit_{0};
  __int128 crash_credit_delta_{0};

#ifdef ASMAN_AUDIT_ENABLED
  std::unique_ptr<ClusterAuditor> cluster_auditor_;
#endif
};

}  // namespace asman::cluster

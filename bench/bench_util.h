// Shared plumbing for the figure-reproduction bench binaries.
//
// Every bench binary reproduces one figure of the paper: it declares a
// sweep of scenarios (scheduler x online rate x workload), executes them in
// parallel on a thread pool (each simulation is single-threaded and
// deterministic), registers one google-benchmark entry per point whose
// manual time is the measured simulation wall time and whose counters carry
// the paper metrics, and finally prints the paper-style table.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "experiments/paper.h"
#include "experiments/runner.h"
#include "experiments/tables.h"
#include "simcore/thread_pool.h"

namespace asman::bench {

namespace ex = asman::experiments;

struct PointResult {
  ex::RunResult run;
  double wall_seconds{0};
};

/// Runs `fn` and returns its host wall time in seconds. The measurement
/// never feeds back into any simulation (each run is a pure function of
/// its scenario + seed), so determinism is not at stake — this helper is
/// the one sanctioned wall-clock site in the bench harness.
inline double wall_seconds_of(const std::function<void()>& fn) {
  // asman-lint: allow(determinism) -- host wall-clock measures the harness, not the simulation
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const std::chrono::duration<double> dt =
      // asman-lint: allow(determinism) -- host wall-clock measures the harness, not the simulation
      std::chrono::steady_clock::now() - t0;
  return dt.count();
}

/// Annotates one google-benchmark entry with counters for a point.
using Annotator =
    std::function<void(const PointResult&, benchmark::State&)>;

class Sweep {
 public:
  void add(std::string label, ex::Scenario scenario) {
    labels_.push_back(label);
    scenarios_.emplace(std::move(label), std::move(scenario));
  }

  bool contains(const std::string& label) const {
    return scenarios_.count(label) != 0;
  }

  /// Run every scenario (parallel) and memoize results.
  void execute() {
    std::vector<std::string> todo;
    for (const auto& l : labels_)
      if (!results_.count(l)) todo.push_back(l);
    std::fprintf(stderr, "[sweep] running %zu simulations...\n", todo.size());
    sim::ThreadPool pool;
    std::vector<PointResult> out(todo.size());
    pool.parallel_for(todo.size(), [&](std::size_t i) {
      out[i].wall_seconds = wall_seconds_of(
          [&] { out[i].run = ex::run_scenario(scenarios_.at(todo[i])); });
    });
    std::uint64_t audited = 0;
    std::uint64_t audit_checks = 0;
    for (std::size_t i = 0; i < todo.size(); ++i) {
      if (out[i].run.audit_checks > 0) {
        ++audited;
        audit_checks += out[i].run.audit_checks;
      }
      if (out[i].run.audit_violations > 0)
        std::fprintf(stderr, "[audit] %s: %llu violation(s)\n%s",
                     todo[i].c_str(),
                     static_cast<unsigned long long>(
                         out[i].run.audit_violations),
                     out[i].run.audit_summary.c_str());
      results_.emplace(todo[i], std::move(out[i]));
    }
    if (audited > 0)
      std::fprintf(stderr,
                   "[audit] %llu invariant checks across %llu audited runs\n",
                   static_cast<unsigned long long>(audit_checks),
                   static_cast<unsigned long long>(audited));
    std::fprintf(stderr, "[sweep] done.\n");
  }

  /// Total invariant violations across all executed points (0 unless the
  /// runs were audited, e.g. via the ASMAN_AUDIT environment variable).
  std::uint64_t audit_violations() const {
    std::uint64_t n = 0;
    for (const auto& [label, pr] : results_) n += pr.run.audit_violations;
    return n;
  }

  const PointResult& get(const std::string& label) const {
    return results_.at(label);
  }

  /// Declared point labels, in declaration order.
  const std::vector<std::string>& labels() const { return labels_; }

  /// The scenario a label was declared with (for seed/scheduler metadata).
  const ex::Scenario& scenario(const std::string& label) const {
    return scenarios_.at(label);
  }

  bool executed(const std::string& label) const {
    return results_.count(label) != 0;
  }

  /// One google-benchmark entry per point; manual time = simulation wall
  /// time, counters = paper metrics chosen by `annotate`.
  void register_benchmarks(const std::string& prefix,
                           Annotator annotate) const {
    for (const auto& l : labels_) {
      const PointResult* pr = &results_.at(l);
      benchmark::RegisterBenchmark(
          (prefix + "/" + l).c_str(),
          [pr, annotate](benchmark::State& state) {
            for (auto _ : state) {
              state.SetIterationTime(pr->wall_seconds);
            }
            annotate(*pr, state);
          })
          ->UseManualTime()
          ->Iterations(1);
    }
  }

 private:
  std::vector<std::string> labels_;
  std::map<std::string, ex::Scenario> scenarios_;
  std::map<std::string, PointResult> results_;
};

/// Canonical single-VM label "SCHED/rateNN".
inline std::string rate_label(core::SchedulerKind k, double rate) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s/rate%.1f", core::to_string(k),
                rate * 100.0);
  return buf;
}

/// Peak resident set size of this process in bytes (getrusage; 0 when the
/// platform reports nothing useful).
std::uint64_t peak_rss_bytes();

/// One executed bench point, engine-agnostic: any harness that can name a
/// point and count its simulated events can emit the standard JSON via
/// write_bench_json — the cluster bench uses this directly because its
/// runner returns ClusterRunResult, not the single-host RunResult the
/// Sweep machinery is built around.
struct BenchRecord {
  std::string label;
  std::string scheduler;
  std::uint64_t seed{0};
  std::uint64_t events{0};
  double wall_seconds{0};
};

/// Writes BENCH_<name>.json next to the binary's working directory: one
/// record per executed point carrying label, scheduler, seed, simulated
/// events, wall seconds, events/sec and ns/event, plus the process-wide
/// peak RSS. Machine-readable so the perf trajectory can be tracked run
/// over run (bench/baselines/ holds committed baselines). Returns the
/// path written, or an empty string on I/O failure.
std::string write_bench_json(const std::vector<BenchRecord>& records,
                             const std::string& name);

/// Sweep convenience wrapper over the record-based writer.
std::string write_bench_json(const Sweep& sweep, const std::string& name);

/// Standard bench entry point: execute sweep, emit tables and
/// BENCH_<prefix>.json, then hand over to google-benchmark.
int run_bench_main(int argc, char** argv, Sweep& sweep,
                   const std::string& prefix, const Annotator& annotate,
                   const std::function<void(const Sweep&)>& print_tables);

}  // namespace asman::bench

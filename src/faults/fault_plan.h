// Declarative fault plan for one scenario run.
//
// A FaultPlan names every fault the injector (faults::FaultInjector) will
// drive into a run, across the three layers the model distinguishes:
//
//   hw    — stochastic IPI bus faults (drop / duplicate / delay), PCPU
//           hotplug (offline/online), timer-tick jitter;
//   guest — VCRD hypercall misbehaviour: the Monitoring Module goes silent
//           (stale reports), flaps LOW<->HIGH at a rate no honest workload
//           produces (a Zhou-style scheduler attack), or issues corrupt
//           do_vcrd_op arguments (bad VmId, out-of-range enum);
//   vmm   — VCPU hang (runs but never yields) and crash (permanently
//           blocked).
//
// The plan is pure data: deterministic given `seed`, so the same scenario
// with the same plan reproduces bit-identically. An empty plan means the
// run carries no injection machinery at all and is bit-identical to a
// build without the fault subsystem.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/machine.h"
#include "simcore/time.h"
#include "vmm/types.h"

namespace asman::faults {

using sim::Cycles;
using hw::PcpuId;
using vmm::VmId;

/// Stochastic per-send IPI faults, applied by the injector through the
/// hw::IpiFaultPlan seam. Probabilities are independent per send; drop
/// wins over duplicate/delay on the same send.
struct IpiFaultSpec {
  double drop_p{0};
  double dup_p{0};
  double delay_p{0};
  /// Extra delay is uniform in [1, max_delay] cycles when delay fires.
  Cycles max_delay{0};

  bool active() const { return drop_p > 0 || dup_p > 0 || delay_p > 0; }
};

/// Timer-tick jitter: each PCPU slot tick is late by a uniform amount in
/// [0, max_jitter] cycles, desynchronizing the tick lattice.
struct TickJitterSpec {
  Cycles max_jitter{0};

  bool active() const { return max_jitter.v > 0; }
};

/// One PCPU offline/online excursion. The scheduler evacuates the PCPU's
/// VCPUs (credit preserved) and refuses to offline the last online PCPU.
struct HotplugEvent {
  PcpuId pcpu{0};
  Cycles at{0};
  /// Back online after this long; 0 = stays offline to the horizon.
  Cycles duration{0};
};

/// Guest-layer VCRD misbehaviour of one VM. All sub-faults are optional
/// and combine freely.
struct VcrdFaultSpec {
  VmId vm{0};
  /// From this time on, the VM's legitimate Monitoring Module reports are
  /// swallowed (the module "went silent"; pair with ResilienceConfig::
  /// vcrd_ttl to watch the staleness TTL demote the stuck-HIGH VM). 0 = off.
  Cycles silence_after{0};
  /// Flapping attack: starting at flap_start, toggle the VM's VCRD every
  /// flap_period for flap_toggles hypercalls (toggles = 0 disables).
  Cycles flap_start{0};
  Cycles flap_period{0};
  std::uint32_t flap_toggles{0};
  /// Corrupt hypercalls: starting at corrupt_start, issue corrupt_ops
  /// garbage do_vcrd_op calls (invalid VmId / out-of-range Vcrd) every
  /// corrupt_period (corrupt_ops = 0 disables).
  Cycles corrupt_start{0};
  Cycles corrupt_period{0};
  std::uint32_t corrupt_ops{0};

  bool active() const {
    return silence_after.v > 0 || flap_toggles > 0 || corrupt_ops > 0;
  }
};

enum class VcpuFaultKind : std::uint8_t {
  /// The guest stops honouring online/offline callbacks for this VCPU: it
  /// keeps consuming PCPU time but never blocks or makes guest progress.
  kHang,
  /// The VCPU is forced into a permanent kBlocked (kicks are ignored).
  kCrash,
};

struct VcpuFaultSpec {
  VmId vm{0};
  std::uint32_t vidx{0};
  Cycles at{0};
  VcpuFaultKind kind{VcpuFaultKind::kCrash};
};

/// Host-level fault classes (cluster runs only; the single-host injector
/// ignores them — src/cluster/cluster.cpp consumes the specs directly).
enum class HostFaultKind : std::uint8_t {
  /// The host dies at `at`: its hypervisor halts mid-event, in-flight
  /// migrations touching it roll back, and its surviving VMs are
  /// re-admitted elsewhere with their last-heartbeat credit.
  kHostCrash,
  /// The host stays up but is marked unplaceable for `duration` and loses
  /// half its PCPUs to hotplug (restored when the window closes).
  kHostDegraded,
  /// The migration interconnect to/from this host is down for `duration`:
  /// copy completions fail and the FSM retries with backoff or aborts.
  kMigrationLinkLoss,
};

struct HostFaultSpec {
  /// Cluster host index (cluster::HostId).
  std::uint32_t host{0};
  Cycles at{0};
  /// kHostDegraded / kMigrationLinkLoss: window length (0 = to horizon).
  /// Ignored for kHostCrash (a crashed host never comes back).
  Cycles duration{0};
  HostFaultKind kind{HostFaultKind::kHostCrash};
};

struct FaultPlan {
  IpiFaultSpec ipi{};
  TickJitterSpec tick{};
  std::vector<HotplugEvent> hotplug;
  std::vector<VcrdFaultSpec> vcrd;
  std::vector<VcpuFaultSpec> vcpu;
  /// Host-level faults (consumed by the cluster layer, not the per-host
  /// injector; a single-host run treats them as inert data).
  std::vector<HostFaultSpec> host;
  /// Seeds the injector's private RNG streams (independent of the
  /// scenario seed, so adding faults never perturbs workload draws).
  std::uint64_t seed{0xFA177ULL};

  bool empty() const {
    return !ipi.active() && !tick.active() && hotplug.empty() &&
           vcrd.empty() && vcpu.empty() && host.empty();
  }
};

}  // namespace asman::faults

// Lightweight structured trace sink.
//
// Components emit (time, category, message) records when tracing is on;
// tests use it to assert ordering properties and the examples use it to
// show scheduling timelines. Disabled tracing costs a branch per call.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/time.h"

namespace asman::sim {

enum class TraceCat : std::uint8_t {
  kSched,     // VMM scheduling decisions
  kCredit,    // credit accounting
  kCosched,   // coscheduling / IPI activity
  kGuest,     // guest kernel events
  kLock,      // spinlock acquire/release
  kMonitor,   // monitoring module / VCRD
  kWorkload,  // workload phase transitions
};

const char* trace_cat_name(TraceCat c);

struct TraceRecord {
  Cycles at;
  TraceCat cat;
  std::string msg;
};

class Trace {
 public:
  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void emit(Cycles at, TraceCat cat, std::string msg) {
    if (enabled_) records_.push_back({at, cat, std::move(msg)});
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Records of one category, in emission order.
  std::vector<TraceRecord> filter(TraceCat cat) const;

  std::string dump(std::size_t max_lines = 200) const;

 private:
  bool enabled_{false};
  std::vector<TraceRecord> records_;
};

}  // namespace asman::sim

// Tricky-but-LEGAL shapes for the value-range check: every expression here
// stays inside its static type for EVERY admissible config, or is guarded /
// clamped / widened in a way the interpreter must understand. Zero findings
// expected — a report against this file is a false positive.
#include <algorithm>
#include <cstdint>

namespace fixture {

constexpr long long kCreditPerSlot = 100'000;

std::uint64_t saturating_sub(std::uint64_t a, std::uint64_t b);

// (1) Guard-refined product: weight alone reaches 65536, but the branch
// constrains it to <= 4096, so the shifted value tops out at 2^22.
std::uint32_t boosted_weight(long long weight) {
  if (weight <= 4096) {
    const std::uint32_t boosted = static_cast<std::uint32_t>(weight * 1024);
    return boosted;
  }
  return 0;
}

// (2) Clamp via std::min: the raw mint reaches 6.5536e9 in 64-bit, but the
// min caps the stored value at 2e9 < INT32_MAX.
std::int32_t clamped_mint(long long weight) {
  const long long mint_raw = weight * kCreditPerSlot;
  return static_cast<std::int32_t>(std::min(mint_raw, 2'000'000'000LL));
}

// (3) Widen-then-divide ratio (the contention.cpp shape): the numerator is
// unbounded above — demand is runtime state — so the saturation rail must
// propagate through -, * and / instead of manufacturing a finite "provable"
// bound. Interval arithmetic cannot see that the ratio is < 1e6; it must
// stay silent, not report [0, 2^109].
std::uint32_t bw_pressure_ppm(long long socket_mem_bw_bytes_per_s,
                              long long demand) {
  if (socket_mem_bw_bytes_per_s <= 0) return 0;
  if (demand <= socket_mem_bw_bytes_per_s) return 0;
  const __int128 pressure_excess =
      static_cast<__int128>(demand) - socket_mem_bw_bytes_per_s;
  return static_cast<std::uint32_t>(pressure_excess * 1'000'000 / demand);
}

// (4) Loop accumulation: the widening pass pushes the accumulator to the
// rail after a few iterations; an unbounded sum is unknown, not an error.
long long accumulated_credit(long long n_vcpus, long long weight) {
  long long credit_acc = 0;
  for (long long i = 0; i < n_vcpus; ++i) credit_acc += weight * 25;
  return credit_acc;
}

// (5) Unsigned subtraction rides the saturating_sub discipline: the
// checker assumes the guarded idiom and clamps the low end at 0 rather
// than reporting every `a - b` on unsigned operands.
std::uint32_t hysteresis_gap_ppm(long long restore_level_ppm,
                                 long long shed_level_ppm) {
  const std::uint32_t gap_ppm =
      static_cast<std::uint32_t>(restore_level_ppm - shed_level_ppm);
  return gap_ppm;
}

std::uint64_t llc_headroom(std::uint64_t llc_bytes,
                           std::uint64_t footprint_bytes) {
  return saturating_sub(llc_bytes, footprint_bytes);
}

}  // namespace fixture

# Empty compiler generated dependencies file for asman_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/learning_param_test.dir/learning_param_test.cpp.o"
  "CMakeFiles/learning_param_test.dir/learning_param_test.cpp.o.d"
  "learning_param_test"
  "learning_param_test.pdb"
  "learning_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learning_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "simcore/simulator.h"

#include <gtest/gtest.h>

namespace asman::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator s;
  Cycles seen{0};
  s.after(Cycles{100}, [&] { seen = s.now(); });
  s.run_all();
  EXPECT_EQ(seen, Cycles{100});
  EXPECT_EQ(s.now(), Cycles{100});
}

TEST(Simulator, RunUntilInclusiveBoundary) {
  Simulator s;
  int fired = 0;
  s.after(Cycles{50}, [&] { ++fired; });
  s.after(Cycles{100}, [&] { ++fired; });
  s.after(Cycles{101}, [&] { ++fired; });
  s.run_until(Cycles{100});
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), Cycles{100});  // clock lands on the deadline
  s.run_all();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, AfterIsRelativeToNow) {
  Simulator s;
  Cycles when{0};
  s.after(Cycles{10}, [&] { s.after(Cycles{10}, [&] { when = s.now(); }); });
  s.run_all();
  EXPECT_EQ(when, Cycles{20});
}

TEST(Simulator, CancelStopsEvent) {
  Simulator s;
  bool fired = false;
  const EventId id = s.after(Cycles{10}, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunWhileStopsOnPredicate) {
  Simulator s;
  int count = 0;
  // Self-rescheduling ticker.
  std::function<void()> tick = [&] {
    ++count;
    s.after(Cycles{10}, tick);
  };
  s.after(Cycles{10}, tick);
  s.run_while(Cycles::max(), [&] { return count < 5; });
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), Cycles{50});
}

TEST(Simulator, EventsProcessedCounts) {
  Simulator s;
  for (int i = 1; i <= 7; ++i) s.after(Cycles{static_cast<unsigned>(i)}, [] {});
  s.run_all();
  EXPECT_EQ(s.events_processed(), 7u);
}

TEST(Simulator, PendingEvents) {
  Simulator s;
  s.after(Cycles{5}, [] {});
  s.after(Cycles{6}, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.run_all();
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, FastForwardAdvancesClock) {
  Simulator s;
  s.fast_forward(Cycles{1000});
  EXPECT_EQ(s.now(), Cycles{1000});
}

TEST(Simulator, RunUntilWithNoEventsAdvancesToDeadline) {
  Simulator s;
  s.run_until(Cycles{500});
  EXPECT_EQ(s.now(), Cycles{500});
}

TEST(Simulator, ZeroDelayEventRunsAtSameTime) {
  Simulator s;
  std::vector<int> order;
  s.after(Cycles{10}, [&] {
    order.push_back(1);
    s.after(Cycles{0}, [&] { order.push_back(2); });
  });
  s.after(Cycles{10}, [&] { order.push_back(3); });
  s.run_all();
  // The zero-delay event was inserted after the second 10-cycle event.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(s.now(), Cycles{10});
}

}  // namespace
}  // namespace asman::sim

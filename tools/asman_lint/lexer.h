// Scanner: raw C++ source -> FileUnit (token stream + allow pragmas).
#pragma once

#include <string>

#include "token.h"

namespace asman_lint {

/// Lexes `source` into tokens. Handles line/block comments (harvesting
/// `asman-lint: allow(...)` pragmas), string/char/raw-string literals,
/// digit separators (100'000), float-literal classification, and
/// preprocessor lines (skipped; `#include` targets recorded).
FileUnit lex_file(std::string path, std::string display_path,
                  const std::string& source);

/// Reads the file from disk and lexes it. Returns false if unreadable.
bool lex_path(const std::string& path, const std::string& display_path,
              FileUnit& out, std::string& error);

}  // namespace asman_lint

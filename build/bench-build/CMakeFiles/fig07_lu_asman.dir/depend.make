# Empty dependencies file for fig07_lu_asman.
# This may be replaced when dependencies are built.

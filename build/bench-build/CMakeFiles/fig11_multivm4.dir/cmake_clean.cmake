file(REMOVE_RECURSE
  "../bench/fig11_multivm4"
  "../bench/fig11_multivm4.pdb"
  "CMakeFiles/fig11_multivm4.dir/fig11_multivm4.cpp.o"
  "CMakeFiles/fig11_multivm4.dir/fig11_multivm4.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_multivm4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// thread-safety + rng-discipline: what may a pool worker touch?
//
// The sweep infrastructure runs simulations on simcore::ThreadPool workers
// (ThreadPool::submit / ThreadPool::parallel_for). Each simulation must be
// a pure function of its Scenario + seed, so the whole sweep is
// deterministic AND parallelizable. That holds only if worker lambdas obey
// three disciplines, which this check enforces statically:
//
//   thread-safety  - a worker may not write captured shared state except
//                    (a) element-wise into a container indexed by its own
//                    task parameter, or (b) under an annotated lock
//                    (MutexLock / lock_guard / unique_lock / scoped_lock)
//                    visible in the lambda body. No captured Hypervisor or
//                    Simulator may be touched at all: those are confined to
//                    the task that owns them (the clang lanes back this
//                    with -Wthread-safety on the annotated types).
//   rng-discipline - a worker may not draw from a captured RNG stream;
//                    seeds are split per task BEFORE the fan-out and each
//                    task seeds its own stream (see run_repeated).
//
// The cross-TU half follows calls out of worker lambdas through the call
// graph: any reachable write to a file-scope mutable static is a hidden
// shared-state channel and is reported with the call chain.
#include <cctype>
#include <string>
#include <vector>

#include "analyzer.h"
#include "flow.h"

namespace asman_lint {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == Tok::kPunct && t.text == s;
}

std::string lower(const std::string& s) {
  std::string r = s;
  for (char& c : r) c = static_cast<char>(std::tolower(
                        static_cast<unsigned char>(c)));
  return r;
}

bool is_lock_type(const std::string& name) {
  return name == "MutexLock" || name == "lock_guard" ||
         name == "unique_lock" || name == "scoped_lock";
}

bool is_mutating_member(const std::string& name) {
  return name == "push_back" || name == "emplace_back" ||
         name == "pop_back" || name == "insert" || name == "emplace" ||
         name == "erase" || name == "clear" || name == "resize" ||
         name == "assign";
}

struct WorkerLambda {
  std::size_t body_begin{0};  // '{' of the lambda body
  std::size_t body_end{0};    // one past the matching '}'
  int line{0};
  std::vector<std::string> params;
};

/// Lambdas passed to ThreadPool::submit / ThreadPool::parallel_for.
std::vector<WorkerLambda> find_worker_lambdas(const FileUnit& unit) {
  const std::vector<Token>& t = unit.toks;
  std::vector<WorkerLambda> out;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent ||
        (t[i].text != "submit" && t[i].text != "parallel_for"))
      continue;
    if (!is_punct(t[i + 1], "(")) continue;
    const std::size_t close = match_forward(t, i + 1);
    if (close >= t.size()) continue;
    for (std::size_t j = i + 2; j < close; ++j) {
      // A lambda introducer: '[' in expression position.
      if (!is_punct(t[j], "[")) continue;
      if (j > 0 && (t[j - 1].kind == Tok::kIdent ||
                    is_punct(t[j - 1], "]") || is_punct(t[j - 1], ")")))
        continue;  // subscript, not a capture list
      const std::size_t cap_close = match_forward(t, j);
      if (cap_close >= close) continue;
      WorkerLambda wl;
      wl.line = t[j].line;
      std::size_t k = cap_close + 1;
      if (k < close && is_punct(t[k], "(")) {
        const std::size_t pclose = match_forward(t, k);
        if (pclose >= close) continue;
        // One param per top-level comma; the name is the last identifier.
        std::string last;
        int depth = 0;
        for (std::size_t m = k + 1; m < pclose; ++m) {
          if (t[m].kind == Tok::kPunct) {
            const std::string& x = t[m].text;
            if (x == "(" || x == "<" || x == "[") ++depth;
            else if (x == ")" || x == ">" || x == "]") --depth;
            else if (x == "," && depth == 0) {
              if (!last.empty()) wl.params.push_back(last);
              last.clear();
            }
          } else if (t[m].kind == Tok::kIdent) {
            last = t[m].text;
          }
        }
        if (!last.empty()) wl.params.push_back(last);
        k = pclose + 1;
      }
      while (k < close && !is_punct(t[k], "{")) ++k;  // mutable / -> T
      if (k >= close) continue;
      const std::size_t body_close = match_forward(t, k);
      if (body_close >= t.size()) continue;
      wl.body_begin = k;
      wl.body_end = body_close + 1;
      out.push_back(std::move(wl));
      j = cap_close;
    }
  }
  return out;
}

bool in_list(const std::vector<std::string>& v, const std::string& s) {
  for (const std::string& x : v)
    if (x == s) return true;
  return false;
}

}  // namespace

void check_thread_safety(const AnalysisContext& ctx) {
  const std::vector<Token>& t = ctx.unit.toks;
  const bool want_ts = check_enabled(ctx.options, "thread-safety");
  const bool want_rng = check_enabled(ctx.options, "rng-discipline");
  for (const WorkerLambda& wl : find_worker_lambdas(ctx.unit)) {
    std::vector<std::string> locals;
    bool has_lock = false;

    // Declaration pre-pass: `Type name =`, `auto name =`, `Type& name =`…
    for (std::size_t j = wl.body_begin + 1; j + 1 < wl.body_end; ++j) {
      if (t[j].kind != Tok::kIdent) continue;
      if (j == 0) continue;
      const Token& prev = t[j - 1];
      const bool decl_prefix =
          (prev.kind == Tok::kIdent && prev.text != "return") ||
          is_punct(prev, "*") || is_punct(prev, "&") || is_punct(prev, ">");
      if (!decl_prefix) continue;
      const Token& next = t[j + 1];
      const bool decl_suffix = is_punct(next, "=") || is_punct(next, ";") ||
                               is_punct(next, "{") || is_punct(next, "(");
      if (!decl_suffix) continue;
      if (prev.kind == Tok::kIdent && is_lock_type(prev.text))
        has_lock = true;
      locals.push_back(t[j].text);
    }

    auto is_task_local = [&](const std::string& name) {
      return in_list(wl.params, name) || in_list(locals, name);
    };

    for (std::size_t j = wl.body_begin + 1; j + 1 < wl.body_end; ++j) {
      if (t[j].kind != Tok::kIdent) continue;
      const std::string& name = t[j].text;
      if (j > 0 &&
          (is_punct(t[j - 1], ".") || is_punct(t[j - 1], "->") ||
           is_punct(t[j - 1], "::")))
        continue;  // member / qualified — the head was handled already
      if (is_task_local(name)) continue;

      // Captured Hypervisor / Simulator: confined, no access at all.
      const std::string lo = lower(name);
      if (want_ts &&
          (lo.find("hypervisor") != std::string::npos ||
           lo.find("simulator") != std::string::npos) &&
          j + 1 < wl.body_end &&
          (is_punct(t[j + 1], ".") || is_punct(t[j + 1], "->"))) {
        ctx.report(t[j].line, "thread-safety",
                   "pool worker touches captured `" + name +
                       "`: Hypervisor/Simulator state is confined to the "
                       "owning task (ASMAN_CAPABILITY) and must not be "
                       "shared across workers");
        continue;
      }

      // Captured RNG stream.
      if (want_rng && lo.find("rng") != std::string::npos && !has_lock) {
        ctx.report(t[j].line, "rng-discipline",
                   "pool worker draws from captured RNG `" + name +
                       "`: split seeds before the fan-out and give each "
                       "task its own seeded stream (see run_repeated)");
        continue;
      }

      if (has_lock || !want_ts) continue;  // write findings are thread-safety's

      // Shared write forms.
      const Token& next = t[j + 1];
      bool flagged = false;
      std::string what;
      if (next.kind == Tok::kPunct &&
          (next.text == "=" || next.text == "+=" || next.text == "-=" ||
           next.text == "*=" || next.text == "/=" || next.text == "++" ||
           next.text == "--")) {
        flagged = true;
        what = "assigns captured `" + name + "`";
      } else if (j > 0 && t[j - 1].kind == Tok::kPunct &&
                 (t[j - 1].text == "++" || t[j - 1].text == "--")) {
        flagged = true;
        what = "increments captured `" + name + "`";
      } else if (is_punct(next, "[")) {
        const std::size_t bclose = match_forward(t, j + 1);
        if (bclose + 1 < wl.body_end && t[bclose + 1].kind == Tok::kPunct &&
            (t[bclose + 1].text == "=" || t[bclose + 1].text == "+=" ||
             t[bclose + 1].text == "-=")) {
          bool param_indexed = false;
          for (std::size_t m = j + 2; m < bclose; ++m)
            if (t[m].kind == Tok::kIdent && in_list(wl.params, t[m].text))
              param_indexed = true;
          if (!param_indexed) {
            flagged = true;
            what = "writes captured `" + name +
                   "` at an index not derived from the task parameter";
          }
        }
      } else if ((is_punct(next, ".") || is_punct(next, "->")) &&
                 j + 3 < wl.body_end && t[j + 2].kind == Tok::kIdent &&
                 is_mutating_member(t[j + 2].text) &&
                 is_punct(t[j + 3], "(")) {
        flagged = true;
        what = "mutates captured container `" + name + "` (" +
               t[j + 2].text + ")";
      }
      if (flagged) {
        ctx.report(t[j].line, "thread-safety",
                   "pool worker " + what +
                       " without a lock: workers may only write "
                       "task-indexed slots or take a MutexLock/lock_guard "
                       "around shared mutations");
      }
    }
  }
}

void check_thread_safety_cross_tu(const Options& options,
                                  const std::vector<FileUnit>& units,
                                  std::vector<Finding>& findings) {
  if (!check_enabled(options, "thread-safety")) return;
  CallGraph graph;
  for (const FileUnit& u : units) graph.add_unit(u);

  for (const FileUnit& u : units) {
    const std::vector<Token>& t = u.toks;
    for (const WorkerLambda& wl : find_worker_lambdas(u)) {
      std::unordered_set<std::string> roots;
      for (std::size_t j = wl.body_begin + 1; j + 1 < wl.body_end; ++j) {
        if (t[j].kind == Tok::kIdent && is_punct(t[j + 1], "(") &&
            !in_list(wl.params, t[j].text))
          roots.insert(t[j].text);
      }
      if (roots.empty()) continue;
      auto hit = graph.find_static_write(roots, /*depth=*/6);
      if (!hit) continue;
      Finding f;
      f.file = u.display_path;
      f.line = wl.line;
      f.check = "thread-safety";
      f.message = "pool worker reaches a write to file-scope static `" +
                  hit->static_name + "` (in " + hit->function +
                  ", " + hit->file + ":" + std::to_string(hit->line) +
                  "): hidden shared state breaks sweep determinism";
      f.trace.push_back({wl.line, "worker lambda submitted here"});
      for (const std::string& fn : hit->chain)
        f.trace.push_back({wl.line, "calls " + fn});
      f.trace.push_back(
          {hit->line, "writes `" + hit->static_name + "` in " + hit->file});
      findings.push_back(std::move(f));
    }
  }
}

}  // namespace asman_lint

# Empty dependencies file for fig09_nas_slowdowns.
# This may be replaced when dependencies are built.

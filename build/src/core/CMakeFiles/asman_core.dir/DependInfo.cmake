
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/hw_monitor.cpp" "src/core/CMakeFiles/asman_core.dir/hw_monitor.cpp.o" "gcc" "src/core/CMakeFiles/asman_core.dir/hw_monitor.cpp.o.d"
  "/root/repo/src/core/learning.cpp" "src/core/CMakeFiles/asman_core.dir/learning.cpp.o" "gcc" "src/core/CMakeFiles/asman_core.dir/learning.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/asman_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/asman_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/schedulers.cpp" "src/core/CMakeFiles/asman_core.dir/schedulers.cpp.o" "gcc" "src/core/CMakeFiles/asman_core.dir/schedulers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/asman_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/asman_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/asman_guest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

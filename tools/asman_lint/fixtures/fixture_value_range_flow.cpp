// Flow-sensitive seeded violation for the value-range check: the overflow
// is reachable through ONE branch only, so the proof needs the join at the
// merge point — a path-insensitive scan of either assignment alone would
// miss it or double-report. Exactly ONE finding expected (boost_credit);
// the guarded twin below it is clean because the branch refinement caps
// the multiplier's input.
#include <cstdint>

namespace fixture {

constexpr long long kCreditPerSlot = 100'000;

// FLAGGED at the cast: on the boosted path bonus_credit reaches
// 65536 * 1e5 = 6.5536e9; the join with the plain path keeps that upper
// bound, and INT32_MAX is 2.147e9.
std::int32_t boost_credit(long long weight, bool boosted) {
  long long bonus_credit = weight;
  if (boosted) bonus_credit = weight * kCreditPerSlot;
  return static_cast<std::int32_t>(bonus_credit);
}

// Clean: the same shape, but the boosted branch is entered only when
// weight < 20000, so the refined product tops out at 1.9999e9 < INT32_MAX.
std::int32_t guarded_boost_credit(long long weight, bool boosted) {
  long long bonus_credit = weight;
  if (boosted && weight < 20'000) bonus_credit = weight * kCreditPerSlot;
  return static_cast<std::int32_t>(bonus_credit);
}

}  // namespace fixture

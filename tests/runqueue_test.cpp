#include "vmm/runqueue.h"

#include <gtest/gtest.h>

namespace asman::vmm {
namespace {

Vcpu make_vcpu(VmId vm, std::uint32_t idx, Credit credit) {
  Vcpu v;
  v.key = VcpuKey{vm, idx};
  v.credit = credit;
  return v;
}

TEST(PrioClass, Ordering) {
  Vcpu v = make_vcpu(0, 0, 100);
  EXPECT_EQ(v.prio_class(), PrioClass::kUnder);
  v.credit = -1;
  EXPECT_EQ(v.prio_class(), PrioClass::kOver);
  v.wake_boost = true;
  EXPECT_EQ(v.prio_class(), PrioClass::kWake);
  v.cosched_boost = true;
  EXPECT_EQ(v.prio_class(), PrioClass::kCosched);
}

TEST(RunQueue, BestIsFifoWithinClass) {
  // Xen's queue discipline: FIFO among same-class VCPUs, regardless of
  // credit magnitude (this is what prevents starvation-by-richer-credit).
  Vcpu a = make_vcpu(0, 0, 100), b = make_vcpu(0, 1, 300),
       c = make_vcpu(0, 2, 200);
  RunQueue q;
  q.push(&a);
  q.push(&b);
  q.push(&c);
  EXPECT_EQ(q.best(false), &a);
  q.remove(&a);
  q.push(&a);  // rotated to the tail
  EXPECT_EQ(q.best(false), &b);
}

TEST(RunQueue, BestHonoursPriorityClasses) {
  Vcpu under = make_vcpu(0, 0, 10);
  Vcpu boosted = make_vcpu(1, 0, -50);
  boosted.cosched_boost = true;
  RunQueue q;
  q.push(&under);
  q.push(&boosted);
  EXPECT_EQ(q.best(false), &boosted);  // kCosched beats kUnder
}

TEST(RunQueue, BestSkipsOverWhenNotAllowed) {
  Vcpu over = make_vcpu(0, 0, -5);
  RunQueue q;
  q.push(&over);
  EXPECT_EQ(q.best(false), nullptr);
  EXPECT_EQ(q.best(true), &over);
}

TEST(RunQueue, SameClassQueueOrderWins) {
  Vcpu a = make_vcpu(2, 1, 100), b = make_vcpu(1, 3, 100);
  RunQueue q;
  q.push(&a);
  q.push(&b);
  EXPECT_EQ(q.best(false), &a);  // insertion order, not key order
}

TEST(RunQueue, RemoveAndContains) {
  Vcpu a = make_vcpu(0, 0, 1);
  RunQueue q;
  EXPECT_FALSE(q.remove(&a));
  q.push(&a);
  EXPECT_TRUE(q.contains(&a));
  EXPECT_TRUE(q.remove(&a));
  EXPECT_FALSE(q.contains(&a));
  EXPECT_TRUE(q.empty());
}

TEST(RunQueue, HasVm) {
  Vcpu a = make_vcpu(3, 0, 1);
  RunQueue q;
  EXPECT_FALSE(q.has_vm(3));
  q.push(&a);
  EXPECT_TRUE(q.has_vm(3));
  EXPECT_FALSE(q.has_vm(4));
}

TEST(RunQueue, BetterIsStrictTotalOrder) {
  Vcpu a = make_vcpu(0, 0, 5), b = make_vcpu(0, 1, 5);
  EXPECT_TRUE(RunQueue::better(&a, &b));
  EXPECT_FALSE(RunQueue::better(&b, &a));
  EXPECT_FALSE(RunQueue::better(&a, &a));
}

TEST(RunQueue, WeakCoschedSitsBetweenUnderAndOver) {
  Vcpu weak = make_vcpu(0, 0, -10);
  weak.cosched_boost = true;
  weak.cosched_weak = true;
  EXPECT_EQ(weak.prio_class(), PrioClass::kWeakCosched);
  Vcpu under = make_vcpu(1, 0, 5);
  Vcpu over = make_vcpu(2, 0, -5);
  RunQueue q;
  q.push(&weak);
  q.push(&over);
  // Pass 1 (no OVER): the weak boost is not eligible either.
  EXPECT_EQ(q.best(false), nullptr);
  // Pass 2: the weak boost outranks plain OVER despite queue order.
  EXPECT_EQ(q.best(true), &weak);
  q.push(&under);
  EXPECT_EQ(q.best(false), &under);  // anything entitled wins
}

TEST(RunQueue, WakeBeatsUnderLosesToCosched) {
  Vcpu wake = make_vcpu(0, 0, 1);
  wake.wake_boost = true;
  Vcpu under = make_vcpu(1, 0, 1'000'000);
  Vcpu gang = make_vcpu(2, 0, -10);
  gang.cosched_boost = true;
  RunQueue q;
  q.push(&wake);
  q.push(&under);
  EXPECT_EQ(q.best(false), &wake);
  q.push(&gang);
  EXPECT_EQ(q.best(false), &gang);
}

}  // namespace
}  // namespace asman::vmm

// Guest execution engine: activities progress only while the VCPU is
// online; pause/resume accounting; round-robin; idle-halt; retirement.
#include <gtest/gtest.h>

#include "guest_test_util.h"
#include "workloads/synthetic.h"

namespace asman::guest {
namespace {

using testutil::TestHv;
using testutil::quiet_config;
using workloads::ScriptProgram;

Cycles us(std::uint64_t n) { return sim::kDefaultClock.from_us(n); }

TEST(GuestExec, ComputeCompletesAfterExactCycles) {
  sim::Simulator s;
  TestHv hv(1);
  GuestKernel g(s, hv, 0, quiet_config(1));
  hv.bind(&g);
  g.spawn(std::make_unique<ScriptProgram>(
              std::vector<Op>{Op::compute(Cycles{10'000})}),
          0);
  hv.map(0);
  s.run_until(Cycles{9'999});
  EXPECT_FALSE(g.all_threads_done());
  s.run_until(Cycles{10'000});
  EXPECT_TRUE(g.all_threads_done());
  EXPECT_EQ(g.last_finish_time(), Cycles{10'000});
}

TEST(GuestExec, NoProgressWhileOffline) {
  sim::Simulator s;
  TestHv hv(1);
  GuestKernel g(s, hv, 0, quiet_config(1));
  hv.bind(&g);
  g.spawn(std::make_unique<ScriptProgram>(
              std::vector<Op>{Op::compute(us(100))}),
          0);
  // Never mapped: nothing happens.
  s.run_until(us(1'000));
  EXPECT_FALSE(g.all_threads_done());
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(GuestExec, PauseResumePreservesRemainingWork) {
  sim::Simulator s;
  TestHv hv(1);
  GuestKernel g(s, hv, 0, quiet_config(1));
  hv.bind(&g);
  g.spawn(std::make_unique<ScriptProgram>(
              std::vector<Op>{Op::compute(us(100))}),
          0);
  hv.map(0);
  s.run_until(us(40));
  hv.unmap(0);          // 60 us of work left
  s.run_until(us(500));  // long offline gap
  hv.map(0);
  s.run_until(us(559));
  EXPECT_FALSE(g.all_threads_done());
  s.run_until(us(561));
  EXPECT_TRUE(g.all_threads_done());
}

TEST(GuestExec, MultipleOpsRunInSequence) {
  sim::Simulator s;
  TestHv hv(1);
  GuestKernel g(s, hv, 0, quiet_config(1));
  hv.bind(&g);
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
              Op::compute(Cycles{1'000}), Op::compute(Cycles{2'000}),
              Op::compute(Cycles{3'000})}),
          0);
  hv.map(0);
  testutil::run_guest(s, g);
  EXPECT_TRUE(g.all_threads_done());
  EXPECT_EQ(g.last_finish_time(), Cycles{6'000});
}

TEST(GuestExec, AllDoneCallbackFiresOnce) {
  sim::Simulator s;
  TestHv hv(2);
  GuestKernel g(s, hv, 0, quiet_config(2));
  hv.bind(&g);
  int calls = 0;
  g.set_all_done([&calls] { ++calls; });
  g.spawn(std::make_unique<ScriptProgram>(
              std::vector<Op>{Op::compute(Cycles{100})}),
          0);
  g.spawn(std::make_unique<ScriptProgram>(
              std::vector<Op>{Op::compute(Cycles{200})}),
          1);
  hv.map(0);
  hv.map(1);
  testutil::run_guest(s, g);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(g.threads_done(), 2u);
}

TEST(GuestExec, PerThreadFinishTimes) {
  sim::Simulator s;
  TestHv hv(2);
  GuestKernel g(s, hv, 0, quiet_config(2));
  hv.bind(&g);
  const Tid t0 = g.spawn(std::make_unique<ScriptProgram>(
                             std::vector<Op>{Op::compute(Cycles{500})}),
                         0);
  const Tid t1 = g.spawn(std::make_unique<ScriptProgram>(
                             std::vector<Op>{Op::compute(Cycles{900})}),
                         1);
  hv.map(0);
  hv.map(1);
  testutil::run_guest(s, g);
  EXPECT_TRUE(g.thread_done(t0));
  EXPECT_EQ(g.thread_finish_time(t0), Cycles{500});
  EXPECT_EQ(g.thread_finish_time(t1), Cycles{900});
}

TEST(GuestExec, RoundRobinSharesOneVcpu) {
  sim::Simulator s;
  TestHv hv(1);
  GuestKernel g(s, hv, 0, quiet_config(1));
  hv.bind(&g);
  // Two 30 ms compute threads on one VCPU, 6 ms quantum: they interleave,
  // so both finish near 60 ms rather than one at 30 ms.
  const Tid t0 = g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
                             Op::compute(sim::kDefaultClock.from_ms(30))}),
                         0);
  const Tid t1 = g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
                             Op::compute(sim::kDefaultClock.from_ms(30))}),
                         0);
  hv.map(0);
  testutil::run_guest(s, g);
  const double f0 = sim::kDefaultClock.to_ms(g.thread_finish_time(t0));
  const double f1 = sim::kDefaultClock.to_ms(g.thread_finish_time(t1));
  EXPECT_GT(f0, 50.0);
  EXPECT_GT(f1, 50.0);
  EXPECT_LE(std::max(f0, f1), 61.0);
}

TEST(GuestExec, IdleVcpuIssuesHaltHypercall) {
  sim::Simulator s;
  TestHv hv(1);
  GuestKernel g(s, hv, 0, quiet_config(1));
  hv.bind(&g);
  g.spawn(std::make_unique<ScriptProgram>(
              std::vector<Op>{Op::compute(Cycles{1'000})}),
          0);
  hv.map(0);
  testutil::run_guest(s, g);
  EXPECT_TRUE(g.all_threads_done());
  // The halt hypercall follows after the idle grace period.
  s.run_until(s.now() + Cycles{100'000});
  ASSERT_FALSE(hv.blocks.empty());
  EXPECT_EQ(hv.blocks.front(), 0u);
  EXPECT_FALSE(hv.mapped(0));
}

TEST(GuestExec, StatsCountContextSwitches) {
  sim::Simulator s;
  TestHv hv(1);
  GuestKernel g(s, hv, 0, quiet_config(1));
  hv.bind(&g);
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
              Op::compute(sim::kDefaultClock.from_ms(20))}),
          0);
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
              Op::compute(sim::kDefaultClock.from_ms(20))}),
          0);
  hv.map(0);
  testutil::run_guest(s, g);
  EXPECT_GE(g.stats().context_switches, 6u);  // ~40ms / 6ms quantum
}

TEST(GuestExec, TickRunsWhileOnlineAndTakesTimerLock) {
  sim::Simulator s;
  TestHv hv(1);
  guest::GuestKernel::Config cfg;  // default config: ticks on
  cfg.n_vcpus = 1;
  GuestKernel g(s, hv, 0, cfg);
  hv.bind(&g);
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
              Op::compute(sim::kDefaultClock.from_ms(50))}),
          0);
  hv.map(0);
  s.run_while(sim::kDefaultClock.from_seconds_f(1.0),
              [&g] { return !g.all_threads_done(); });
  EXPECT_TRUE(g.all_threads_done());
  EXPECT_GE(g.stats().ticks, 10u);  // ~50 ms / 4 ms
  EXPECT_GE(g.stats().spin_acquisitions, 10u);  // timer lock per tick
  // Ticks stole handler time, so completion is later than the pure work.
  EXPECT_GT(g.last_finish_time(), sim::kDefaultClock.from_ms(50));
}

}  // namespace
}  // namespace asman::guest

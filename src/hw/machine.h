// Physical machine model.
//
// The paper's testbed is a Dell Precision T5400 with two quad-core Xeon
// X5410 CPUs (8 homogeneous PCPUs, 2.33 GHz). Everything the scheduler
// depends on — PCPU count, clock frequency, the Credit scheduler's slot
// and accounting lengths, and IPI latency — is captured here.
#pragma once

#include <cstdint>

#include "hw/topology.h"
#include "simcore/time.h"

namespace asman::hw {

using sim::Cycles;

/// Index of a physical CPU (dense, 0-based).
using PcpuId = std::uint32_t;

struct MachineConfig {
  /// Number of homogeneous physical CPUs (paper: 8).
  std::uint32_t num_pcpus{8};
  /// Core clock; converts wall time to cycles (paper: 2.33 GHz).
  std::uint64_t freq_hz{2'330'000'000ULL};
  /// Basic scheduling time unit: one slot (paper/Xen Credit: 10 ms).
  std::uint64_t slot_ms{10};
  /// Credit accounting interval in slots (paper/Xen: K = 3 -> 30 ms).
  std::uint32_t slots_per_accounting{3};
  /// Round-robin timeslice in slots (paper/Xen: 30 ms): a VCPU sharing a
  /// priority class rotates to the queue tail after this much runtime.
  std::uint32_t slots_per_timeslice{3};
  /// One-way inter-processor interrupt latency (delivery + handler entry).
  /// Measured IPI round trips on Harpertown-class parts are a few
  /// microseconds; 2 us is used as the one-way cost.
  std::uint64_t ipi_latency_us{2};
  /// Processor topology. Default-constructed ("unspecified") resolves to
  /// the flat single-LLC topology over num_pcpus, which keeps scheduling
  /// bit-identical to pre-topology builds. Topology::paper() is the
  /// testbed's real shape (2 sockets x 2 shared-L2 pairs x 2 cores).
  Topology topology{};
  /// Warm-cache refill cost of moving a VCPU across LLC domains within a
  /// socket (Harpertown: reload a shared 6 MB L2 working set). Charged
  /// only while the source cache is still warm.
  std::uint64_t cross_llc_penalty_us{20};
  /// Warm-cache refill cost of moving a VCPU across the FSB to the other
  /// package.
  std::uint64_t cross_socket_penalty_us{60};
  /// How long (in slots) a VCPU's last PCPU counts as cache-warm after it
  /// stops running there.
  std::uint32_t warm_cache_slots{2};
  /// Capacity of each shared last-level cache domain in bytes. Zero
  /// (default) disables the memory-contention engine entirely — runs stay
  /// bit-identical to pre-contention builds. The paper's Harpertown parts
  /// share a 6 MB L2 per dual-core die.
  std::uint64_t llc_bytes{0};
  /// Memory bandwidth available to each socket in bytes per second. Zero
  /// models an unconstrained bus: the LLC occupancy model still runs (if
  /// llc_bytes > 0) but the bandwidth-stall term stays zero.
  std::uint64_t socket_mem_bw_bytes_per_s{0};

  sim::ClockDomain clock() const { return sim::ClockDomain{freq_hz}; }
  Cycles slot_cycles() const { return clock().from_ms(slot_ms); }
  Cycles accounting_cycles() const {
    return Cycles{slot_cycles().v * slots_per_accounting};
  }
  Cycles timeslice_cycles() const {
    return Cycles{slot_cycles().v * slots_per_timeslice};
  }
  Cycles ipi_latency() const { return clock().from_us(ipi_latency_us); }
  Cycles cross_llc_penalty() const {
    return clock().from_us(cross_llc_penalty_us);
  }
  Cycles cross_socket_penalty() const {
    return clock().from_us(cross_socket_penalty_us);
  }
  Cycles warm_cache_window() const {
    return Cycles{slot_cycles().v * warm_cache_slots};
  }
  /// The topology the scheduler actually runs on: the configured one when
  /// specified, else the flat single-domain default.
  Topology resolved_topology() const {
    return topology.specified() ? topology : Topology::flat(num_pcpus);
  }
};

}  // namespace asman::hw

# Empty compiler generated dependencies file for asman_simcore.
# This may be replaced when dependencies are built.

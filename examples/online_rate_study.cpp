// EC2-style entitlement study (the paper's §5.2 motivation: a "1 compute
// unit" VM on a modern host sees a ~30 % VCPU online rate).
//
// Sweeps the online rate of a VM running a parallel code and prints, for
// each rate, the Credit/ASMan run times, the excess over the 1/rate ideal
// and the monitoring activity — a compact view of when dynamic
// coscheduling starts to matter for an over-subscribed tenant.
//
//   $ ./online_rate_study [BT|CG|EP|FT|MG|SP|LU]
#include <cstdio>

#include "experiments/paper.h"
#include "experiments/tables.h"
#include "workloads/npb.h"

using namespace asman;
namespace ex = asman::experiments;

int main(int argc, char** argv) {
  const workloads::NpbBenchmark bench =
      argc > 1 ? workloads::npb_from_name(argv[1])
               : workloads::NpbBenchmark::kCG;
  std::printf("benchmark %s: online-rate sweep (weights 256/128/64/32)\n\n",
              workloads::to_string(bench));

  double base = 0.0;
  ex::TextTable t({"rate", "Credit (s)", "ASMan (s)", "Credit excess",
                   "ASMan excess", "adjusting events"});
  for (const ex::RatePoint& rp : ex::kRatePoints) {
    const ex::RunResult credit = ex::run_scenario(ex::single_vm_scenario(
        core::SchedulerKind::kCredit, rp.weight, ex::npb_factory(bench)));
    const ex::RunResult asman = ex::run_scenario(ex::single_vm_scenario(
        core::SchedulerKind::kAsman, rp.weight, ex::npb_factory(bench)));
    const double c = credit.vm("V1").runtime_seconds;
    const double a = asman.vm("V1").runtime_seconds;
    if (rp.rate == 1.0) base = c;
    const double ideal = base / rp.rate;
    t.add_row({ex::fmt_pct(rp.rate), ex::fmt_f(c), ex::fmt_f(a),
               ex::fmt_pct(c / ideal - 1.0), ex::fmt_pct(a / ideal - 1.0),
               std::to_string(asman.vm("V1").adjusting_events)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "\"excess\" is run time beyond the 1/rate ideal: it is the price of\n"
      "virtualization-disrupted synchronization, and what ASMan removes.\n");
  return 0;
}

// Test scaffolding for guest-kernel tests: a minimal hypervisor stub that
// records hypercalls and honours the block/kick <-> offline/online contract
// so a GuestKernel can be driven without the full VMM.
#pragma once

#include <cstdint>
#include <vector>

#include "guest/guest_kernel.h"
#include "simcore/simulator.h"
#include "vmm/ports.h"

namespace asman::testutil {

class TestHv final : public vmm::HypervisorPort {
 public:
  explicit TestHv(std::uint32_t n_vcpus) : mapped_(n_vcpus, false) {}

  void bind(guest::GuestKernel* g) { guest_ = g; }

  /// Bring a VCPU online as the VMM would at dispatch.
  void map(std::uint32_t v) {
    if (mapped_[v]) return;
    mapped_[v] = true;
    guest_->vcpu_online(v);
  }
  /// Take a VCPU offline as the VMM would at preemption.
  void unmap(std::uint32_t v) {
    if (!mapped_[v]) return;
    mapped_[v] = false;
    guest_->vcpu_offline(v);
  }
  bool mapped(std::uint32_t v) const { return mapped_[v]; }

  // --- HypervisorPort ---
  void do_vcrd_op(vmm::VmId vm, vmm::Vcrd vcrd) override {
    vcrd_ops.push_back({vm, vcrd});
  }
  void vcpu_block(vmm::VmId, std::uint32_t v) override {
    blocks.push_back(v);
    unmap(v);
  }
  void vcpu_kick(vmm::VmId, std::uint32_t v) override {
    kicks.push_back(v);
    map(v);  // PCPUs are assumed free in these tests
  }

  std::vector<std::pair<vmm::VmId, vmm::Vcrd>> vcrd_ops;
  std::vector<std::uint32_t> blocks;
  std::vector<std::uint32_t> kicks;

 private:
  guest::GuestKernel* guest_{nullptr};
  std::vector<bool> mapped_;
};

/// Guest config with background machinery (ticks, balancing) pushed out of
/// the way so op timing is exact.
inline guest::GuestKernel::Config quiet_config(std::uint32_t n_vcpus) {
  guest::GuestKernel::Config c;
  c.n_vcpus = n_vcpus;
  c.tick_period = sim::kDefaultClock.from_seconds_f(1e6);
  c.balance_every_ticks = 0;
  return c;
}

/// Run until the guest's threads retire (bounded — the guest's timer
/// machinery keeps the event queue non-empty forever, so run_all() would
/// never return).
inline void run_guest(sim::Simulator& s, guest::GuestKernel& g,
                      double max_seconds = 30.0) {
  s.run_while(s.now() + sim::kDefaultClock.from_seconds_f(max_seconds),
              [&g] { return !g.all_threads_done(); });
}

}  // namespace asman::testutil

// Round-trip between src/core/bounds_spec.h and hw::validate_config():
// the gate must accept EXACTLY the admissible config space the value-range
// proof assumes — each numeric MachineConfig field's spec endpoints pass,
// one past the top endpoint is rejected as kOutOfBounds, and nothing else
// sneaks in. If this drifts, the static proof covers a space the runtime
// does not enforce (or vice versa), which is the exact bug the shared
// table exists to prevent.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/bounds_spec.h"
#include "hw/machine.h"
#include "hw/topology.h"

namespace {

using asman::core::bounds_of;
using asman::core::clamp_to_bounds;
using asman::hw::ConfigError;
using asman::hw::ConfigIssue;
using asman::hw::MachineConfig;
using asman::hw::validate_config;

int out_of_bounds_count(const std::vector<ConfigIssue>& issues) {
  int n = 0;
  for (const ConfigIssue& i : issues)
    if (i.kind == ConfigError::kOutOfBounds) ++n;
  return n;
}

// One row per bounds-checked MachineConfig field: the spec leaf name and a
// setter. u64-valued so a +1 past any spec hi still fits the field type.
struct FieldRow {
  const char* name;
  std::function<void(MachineConfig&, std::uint64_t)> set;
};

const std::vector<FieldRow>& machine_fields() {
  namespace f = asman::core::field;
  static const std::vector<FieldRow> rows{
      {f::num_pcpus,
       [](MachineConfig& m, std::uint64_t v) {
         m.num_pcpus = static_cast<std::uint32_t>(v);
       }},
      {f::freq_hz, [](MachineConfig& m, std::uint64_t v) { m.freq_hz = v; }},
      {f::slot_ms, [](MachineConfig& m, std::uint64_t v) { m.slot_ms = v; }},
      {f::slots_per_accounting,
       [](MachineConfig& m, std::uint64_t v) {
         m.slots_per_accounting = static_cast<std::uint32_t>(v);
       }},
      {f::slots_per_timeslice,
       [](MachineConfig& m, std::uint64_t v) {
         m.slots_per_timeslice = static_cast<std::uint32_t>(v);
       }},
      {f::ipi_latency_us,
       [](MachineConfig& m, std::uint64_t v) { m.ipi_latency_us = v; }},
      {f::cross_llc_penalty_us,
       [](MachineConfig& m, std::uint64_t v) { m.cross_llc_penalty_us = v; }},
      {f::cross_socket_penalty_us,
       [](MachineConfig& m, std::uint64_t v) {
         m.cross_socket_penalty_us = v;
       }},
      {f::warm_cache_slots,
       [](MachineConfig& m, std::uint64_t v) {
         m.warm_cache_slots = static_cast<std::uint32_t>(v);
       }},
      {f::llc_bytes,
       [](MachineConfig& m, std::uint64_t v) { m.llc_bytes = v; }},
      {f::socket_mem_bw_bytes_per_s,
       [](MachineConfig& m, std::uint64_t v) {
         m.socket_mem_bw_bytes_per_s = v;
       }},
  };
  return rows;
}

TEST(BoundsRoundTrip, DefaultConfigIsInsideTheProvedSpace) {
  EXPECT_TRUE(validate_config(MachineConfig{}).empty());
}

TEST(BoundsRoundTrip, EverySpecEndpointIsAccepted) {
  for (const FieldRow& row : machine_fields()) {
    const asman::core::FieldBounds* b = bounds_of(row.name);
    ASSERT_NE(b, nullptr) << row.name << " missing from bounds_spec.h";
    MachineConfig lo = MachineConfig{};
    row.set(lo, static_cast<std::uint64_t>(b->lo));
    // lo == 0 fields use zero as "feature off"; both legal either way.
    EXPECT_EQ(out_of_bounds_count(validate_config(lo)), 0)
        << row.name << " = " << b->lo << " (spec lo) must validate";
    MachineConfig hi = MachineConfig{};
    row.set(hi, static_cast<std::uint64_t>(b->hi));
    EXPECT_EQ(out_of_bounds_count(validate_config(hi)), 0)
        << row.name << " = " << b->hi << " (spec hi) must validate";
  }
}

TEST(BoundsRoundTrip, OnePastTheTopEndpointIsRejected) {
  for (const FieldRow& row : machine_fields()) {
    const asman::core::FieldBounds* b = bounds_of(row.name);
    ASSERT_NE(b, nullptr) << row.name;
    MachineConfig m = MachineConfig{};
    row.set(m, static_cast<std::uint64_t>(b->hi) + 1);
    const std::vector<ConfigIssue> issues = validate_config(m);
    EXPECT_EQ(out_of_bounds_count(issues), 1)
        << row.name << " = " << (b->hi + 1) << " must be out of bounds";
    bool names_field = false;
    bool names_spec = false;
    for (const ConfigIssue& i : issues) {
      if (i.kind != ConfigError::kOutOfBounds) continue;
      names_field = i.what.find(row.name) != std::string::npos;
      names_spec = i.what.find("bounds_spec.h") != std::string::npos;
    }
    EXPECT_TRUE(names_field) << row.name << ": issue must name the field";
    EXPECT_TRUE(names_spec) << row.name << ": issue must cite the spec";
  }
}

TEST(BoundsRoundTrip, BelowANonzeroLowEndpointIsRejected) {
  // Fields with lo >= 1 reject lo - 1: num_pcpus etc. hit their dedicated
  // zero-error at 0, so use a field whose lo - 1 is still nonzero when one
  // exists; for lo == 1 fields assert the typed zero error fires instead.
  for (const FieldRow& row : machine_fields()) {
    const asman::core::FieldBounds* b = bounds_of(row.name);
    ASSERT_NE(b, nullptr) << row.name;
    if (b->lo == 0) continue;  // zero is "feature off": nothing below it
    MachineConfig m = MachineConfig{};
    row.set(m, static_cast<std::uint64_t>(b->lo) - 1);
    EXPECT_FALSE(validate_config(m).empty())
        << row.name << " = " << (b->lo - 1) << " must be rejected";
  }
  // freq_hz is the one MachineConfig field with lo > 1: below-lo nonzero
  // values are out of bounds, not a zero-error.
  MachineConfig m = MachineConfig{};
  m.freq_hz = 999'999;
  EXPECT_EQ(out_of_bounds_count(validate_config(m)), 1);
}

TEST(BoundsClamp, KnobResolutionClampsIntoTheProvedSpace) {
  namespace f = asman::core::field;
  // The VMM's knob paths ride clamp_to_bounds: a caller can never push a
  // count knob past what the value-range proof assumed.
  EXPECT_EQ(clamp_to_bounds<std::uint32_t>(f::weight, 0), 1u);
  EXPECT_EQ(clamp_to_bounds<std::uint32_t>(f::weight, 70'000), 65'536u);
  EXPECT_EQ(clamp_to_bounds<std::uint32_t>(f::weight, 256), 256u);
  EXPECT_EQ(clamp_to_bounds<std::uint32_t>(f::ipi_max_retries, 99), 16u);
  EXPECT_EQ(clamp_to_bounds<std::uint32_t>(f::flap_limit, 0), 1u);
  EXPECT_EQ(clamp_to_bounds<std::uint64_t>(f::shed_level_ppm, 2'000'000),
            1'000'000u);
  // Unbounded names pass through untouched.
  EXPECT_EQ(clamp_to_bounds<std::uint64_t>("no_such_knob", 1234u), 1234u);
  EXPECT_EQ(bounds_of("no_such_knob"), nullptr);
}

TEST(BoundsSpec, ExactConstantsPinTheCompiledValues) {
  // The (exact) rows double as cross-checks that the spec matches the
  // compiled constants the proof substitutes for them.
  namespace f = asman::core::field;
  const asman::core::FieldBounds* cps = bounds_of(f::kCreditPerSlot);
  ASSERT_NE(cps, nullptr);
  EXPECT_EQ(cps->lo, cps->hi);
  EXPECT_EQ(cps->lo, 100'000);
  const asman::core::FieldBounds* rw = bounds_of(f::kReferenceWeight);
  ASSERT_NE(rw, nullptr);
  EXPECT_EQ(rw->lo, 256);
  EXPECT_EQ(rw->hi, 256);
}

}  // namespace

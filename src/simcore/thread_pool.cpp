#include "simcore/thread_pool.h"

#include <utility>

namespace asman::sim {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc == 0 ? 1 : hc;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    futs.push_back(submit([&fn, i] { fn(i); }));
  std::exception_ptr first;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace asman::sim

// Contention bench: what does pressure-aware placement save on the
// paper's dual-socket host when LLC capacity and memory bandwidth are
// finite?
//
// For each scheduler the sweep runs the memory-hungry fleet over three
// seeds on the pressured 2x2x2 paper topology — pressure-aware and
// pressure-blind — plus a flat 4-PCPU control point where the engine is
// inert by the gate (its pressure counters must print as zeros). Both
// paper variants pay exactly the same contention physics, so the
// degraded-cycle and degraded-fraction columns isolate what
// pressure-aware placement, steal gating and balancing alone buy; Jain
// fairness shows the fairness side of the trade. The table aggregates
// across seeds (single seeds are noise-dominated — boot order decides
// which LLC the streamer lands on); the per-point benchmark entries keep
// the per-seed spread visible. Run with ASMAN_AUDIT=1 to get the
// pressure-conservation invariant checked on every point.
#include "bench_util.h"
#include "experiments/contention.h"

using namespace asman;
using namespace asman::bench;

namespace {

constexpr core::SchedulerKind kScheds[] = {core::SchedulerKind::kCredit,
                                           core::SchedulerKind::kCon,
                                           core::SchedulerKind::kAsman};

constexpr std::uint64_t kSeeds[] = {1, 7, 42};

std::string point_label(core::SchedulerKind k, bool aware, bool flat,
                        std::uint64_t seed) {
  return std::string(core::to_string(k)) + "/" +
         (flat ? "flat" : (aware ? "aware" : "blind")) + "/s" +
         std::to_string(seed);
}

ex::Scenario build_point(core::SchedulerKind k, bool aware, bool flat,
                         std::uint64_t seed) {
  ex::Scenario sc = ex::contention_scenario(k, seed, aware);
  if (flat) {
    // Control: same fleet and footprints on a flat host — the two-gate
    // discipline keeps the engine inert, so this point doubles as a live
    // bit-compat check (all pressure columns must be zero).
    sc.machine.topology = hw::Topology{};
    sc.machine.num_pcpus = 4;
  }
  return sc;
}

Sweep build_sweep() {
  Sweep s;
  for (core::SchedulerKind k : kScheds) {
    for (const std::uint64_t seed : kSeeds) {
      for (const bool aware : {true, false})
        s.add(point_label(k, aware, false, seed),
              build_point(k, aware, false, seed));
    }
    s.add(point_label(k, true, true, 42), build_point(k, true, true, 42));
  }
  return s;
}

double degraded_fraction(std::uint64_t degraded, std::uint64_t accounted) {
  return accounted > 0
             ? static_cast<double>(degraded) / static_cast<double>(accounted)
             : 0.0;
}

void annotate(const PointResult& pr, benchmark::State& st) {
  const ex::RunResult& rr = pr.run;
  st.counters["degraded_cycles"] = static_cast<double>(rr.pressure_degraded);
  st.counters["degraded_frac"] =
      degraded_fraction(rr.pressure_degraded, rr.pressure_accounted);
  st.counters["pressure_periods"] =
      static_cast<double>(rr.pressure_periods);
  st.counters["steal_rejects"] =
      static_cast<double>(rr.pressure_steal_rejects);
  st.counters["rebalances"] = static_cast<double>(rr.pressure_rebalances);
  st.counters["jain_mean"] = rr.fairness_mean;
}

/// One table row aggregated over the seeds of a (scheduler, mode) cell:
/// cycles and counters sum; Jain fairness averages.
struct Agg {
  std::uint64_t accounted{0};
  std::uint64_t degraded{0};
  std::uint64_t steal_rejects{0};
  std::uint64_t rebalances{0};
  double jain_sum{0};
  std::uint32_t n{0};

  void fold(const ex::RunResult& rr) {
    accounted += rr.pressure_accounted;
    degraded += rr.pressure_degraded;
    steal_rejects += rr.pressure_steal_rejects;
    rebalances += rr.pressure_rebalances;
    jain_sum += rr.fairness_mean;
    ++n;
  }
};

void add_row(ex::TextTable& t, const char* label, const Agg& a) {
  char frac[32];
  std::snprintf(frac, sizeof frac, "%.5f",
                degraded_fraction(a.degraded, a.accounted));
  char jain[32];
  std::snprintf(jain, sizeof jain, "%.4f",
                a.n > 0 ? a.jain_sum / a.n : 0.0);
  t.add_row({label, std::to_string(a.accounted), std::to_string(a.degraded),
             frac, std::to_string(a.steal_rejects),
             std::to_string(a.rebalances), jain});
}

void print_tables(const Sweep& s) {
  for (core::SchedulerKind k : kScheds) {
    std::printf("\n== Memory pressure on 2 sockets x 2 LLCs x 2 PCPUs under "
                "%s (aware vs blind over %zu seeds, equal physics; flat = "
                "engine inert) ==\n",
                core::to_string(k), std::size(kSeeds));
    ex::TextTable t({"scenario", "accounted (cyc)", "degraded (cyc)",
                     "degraded frac", "steal rejects", "rebalances",
                     "jain mean"});
    Agg aware;
    Agg blind;
    for (const std::uint64_t seed : kSeeds) {
      aware.fold(s.get(point_label(k, true, false, seed)).run);
      blind.fold(s.get(point_label(k, false, false, seed)).run);
    }
    Agg flat;
    flat.fold(s.get(point_label(k, true, true, 42)).run);
    add_row(t, "aware", aware);
    add_row(t, "blind", blind);
    add_row(t, "flat", flat);
    std::printf("%s", t.str().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep = build_sweep();
  return run_bench_main(argc, argv, sweep, "contention", annotate,
                        print_tables);
}

// Flow-sensitive layer over the token stream: per-function control-flow
// graphs, all-paths queries with witness traces, the shared VcpuState
// transition spec, and a cross-TU call graph.
//
// This is what upgrades asman-lint from a lexical checker to asman-verify:
// the `credit-flow`, `state-machine` and `thread-safety` rules ask path
// questions ("is every credit drain dominated by kDestroyed evidence?",
// "can a redistribution escape to the exit without passing audit_minted?")
// instead of pattern questions. The CFG is statement-granular and built by
// recursive descent over the same token stream the lexical checks read, so
// the portable engine still needs nothing beyond the C++ toolchain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "model.h"
#include "token.h"

namespace asman_lint {

/// What a node is, where the abstract interpreter needs to know. kBranch
/// marks if/while condition nodes and kForHead for-loop headers: for both,
/// succ[0] is the true/body edge (by construction order in CfgBuilder) and
/// every later successor is a false/after edge. do-while and switch
/// conditions stay kPlain — their successor order carries no branch
/// orientation, so value-range refinement must not trust it.
enum class CfgNodeKind : std::uint8_t { kPlain, kBranch, kForHead };

struct CfgNode {
  std::size_t tok_begin{0};  // [tok_begin, tok_end) in the unit's tokens
  std::size_t tok_end{0};
  int line{0};
  bool is_entry{false};
  bool is_exit{false};
  CfgNodeKind kind{CfgNodeKind::kPlain};
  std::vector<std::size_t> succ;
};

struct Cfg {
  std::vector<CfgNode> nodes;
  std::size_t entry{0};
  std::size_t exit{0};

  /// Node containing token index `i`, or npos.
  std::size_t node_of(std::size_t i) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Builds the CFG for a function body whose '{' is at `body_begin` and
/// whose matching '}' is at `body_end - 1` (FunctionSpan extents).
/// Handles if/else, while/for/do, switch/case/default, break/continue,
/// return and throw; expression-position braces (lambdas, braced init) are
/// absorbed into their statement. `exhaustive_enums`, when non-empty,
/// names an enumerator universe: a default-less switch whose case labels
/// cover the whole universe gets no bypass edge (the "no case matched"
/// path is statically dead). The VcpuState universe comes from the shared
/// spec, so the lint and the compiler agree on exhaustiveness.
Cfg build_cfg(const std::vector<Token>& toks, std::size_t body_begin,
              std::size_t body_end,
              const std::vector<std::string>& exhaustive_enums = {});

using NodePred = std::function<bool(const CfgNode&)>;

/// If some entry->target path avoids every node satisfying `marker`
/// (target itself exempt), returns that path's node ids; otherwise
/// nullopt, i.e. every path to `target` passes a marker (domination).
std::optional<std::vector<std::size_t>> path_to_avoiding(
    const Cfg& cfg, std::size_t target, const NodePred& marker);

/// If some target->exit path avoids every marker node (target exempt),
/// returns it; otherwise nullopt, i.e. every path from `target` to the
/// exit passes a marker (post-domination).
std::optional<std::vector<std::size_t>> path_from_avoiding(
    const Cfg& cfg, std::size_t target, const NodePred& marker);

/// Renders a CFG path as finding trace steps (line + short token snippet).
std::vector<TraceStep> trace_of_path(const Cfg& cfg,
                                     const std::vector<std::size_t>& path,
                                     const std::vector<Token>& toks);

/// A legal state-transition relation lexed from a single shared spec
/// header (the same header the runtime compiles against, so there is
/// exactly one definition of legality per machine). `states` is the
/// enumerator universe seen in the table. Cached per (root, spec);
/// `error` is non-empty if the spec could not be read or parsed.
struct TransitionSpec {
  std::vector<std::pair<std::string, std::string>> legal;
  std::vector<std::string> states;
  std::string error;

  bool allows(const std::string& from, const std::string& to) const;
};

/// VcpuState relation from <root>/src/vmm/state_spec.h
/// (kLegalVcpuTransitions — the VMM runtime auditor's table).
const TransitionSpec& vcpu_transition_spec(const Options& options);

/// MigrationPhase relation from <root>/src/cluster/migration_spec.h
/// (kLegalMigrationTransitions — the cluster FSM's table).
const TransitionSpec& migration_transition_spec(const Options& options);

/// Cross-TU call graph keyed by function name (qualified where known),
/// with per-function callee identifier sets and the file-scope mutable
/// statics each function writes. Name resolution is by unqualified
/// suffix, which over-approximates — acceptable because the thread-safety
/// rule only fires when a real static write is reachable.
struct CallGraph {
  struct FnInfo {
    std::string file;
    std::unordered_set<std::string> callees;            // simple names
    std::unordered_map<std::string, int> static_writes;  // name -> line
  };
  std::unordered_map<std::string, FnInfo> functions;  // qualified name
  std::unordered_map<std::string, std::vector<std::string>> by_simple_name;

  void add_unit(const FileUnit& unit);

  /// BFS from `roots` (simple callee names) up to `depth` hops; returns
  /// the first reachable (function, static, line, chain) write found.
  struct StaticWrite {
    std::string function;
    std::string static_name;
    std::string file;
    int line{0};
    std::vector<std::string> chain;  // call chain from the root
  };
  std::optional<StaticWrite> find_static_write(
      const std::unordered_set<std::string>& roots, int depth = 6) const;
};

}  // namespace asman_lint

#include "bench_util.h"

#include <sys/resource.h>

#include <cinttypes>

namespace asman::bench {

std::uint64_t peak_rss_bytes() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // Linux reports ru_maxrss in KiB.
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
}

std::string write_bench_json(const std::vector<BenchRecord>& records,
                             const std::string& name) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return {};
  }
  std::fprintf(out, "{\n  \"bench\": \"%s\",\n", name.c_str());
  std::fprintf(out, "  \"peak_rss_bytes\": %" PRIu64 ",\n", peak_rss_bytes());
  std::fprintf(out, "  \"points\": [");
  bool first = true;
  for (const BenchRecord& r : records) {
    const double events = static_cast<double>(r.events);
    const double eps = r.wall_seconds > 0 ? events / r.wall_seconds : 0.0;
    const double nspe = events > 0 ? r.wall_seconds * 1e9 / events : 0.0;
    std::fprintf(out,
                 "%s\n    {\"label\": \"%s\", \"scheduler\": \"%s\", "
                 "\"seed\": %" PRIu64 ", \"events\": %" PRIu64
                 ", \"wall_seconds\": %.6f, \"events_per_sec\": %.1f, "
                 "\"ns_per_event\": %.2f}",
                 first ? "" : ",", r.label.c_str(), r.scheduler.c_str(),
                 r.seed, r.events, r.wall_seconds, eps, nspe);
    first = false;
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  return path;
}

std::string write_bench_json(const Sweep& sweep, const std::string& name) {
  std::vector<BenchRecord> records;
  for (const std::string& label : sweep.labels()) {
    if (!sweep.executed(label)) continue;
    const PointResult& pr = sweep.get(label);
    records.push_back(BenchRecord{label, core::to_string(pr.run.scheduler),
                                  sweep.scenario(label).seed, pr.run.events,
                                  pr.wall_seconds});
  }
  return write_bench_json(records, name);
}

int run_bench_main(int argc, char** argv, Sweep& sweep,
                   const std::string& prefix, const Annotator& annotate,
                   const std::function<void(const Sweep&)>& print_tables) {
  benchmark::Initialize(&argc, argv);
  sweep.execute();
  const std::string json = write_bench_json(sweep, prefix);
  if (!json.empty())
    std::fprintf(stderr, "[bench] wrote %s\n", json.c_str());
  sweep.register_benchmarks(prefix, annotate);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables(sweep);
  // With ASMAN_AUDIT=1 in the environment every simulation ran with the
  // invariant auditor attached (see run_scenario); surface the verdict and
  // fail the binary so CI treats violations as errors.
  const std::uint64_t violations = sweep.audit_violations();
  if (violations > 0) {
    std::fprintf(stderr, "[audit] %llu invariant violation(s) -- see above\n",
                 static_cast<unsigned long long>(violations));
    return 1;
  }
  return 0;
}

}  // namespace asman::bench

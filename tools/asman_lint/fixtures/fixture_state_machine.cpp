// Seeded violations for the state-machine check: every set_state call here
// has a statically determinable (from, to) pair that is NOT in the shared
// legal-transition table (src/vmm/state_spec.h). tests/lint_test.cpp
// asserts 100% detection — all three sites flagged.
#include <cassert>
#include <cstdint>

namespace fixture {

enum class VcpuState : std::uint8_t { kRunning, kRunnable, kBlocked,
                                      kDestroyed };

struct Vcpu {
  VcpuState state{VcpuState::kRunnable};
};

void set_state(Vcpu& v, VcpuState to);

// Violation 1: an assert proves kRunning, then the code tombstones
// directly — a running VCPU must be unmapped (-> kRunnable) first.
void destroy_running(Vcpu& v) {
  assert(v.state == VcpuState::kRunning);
  set_state(v, VcpuState::kDestroyed);  // flagged: kRunning -> kDestroyed
}

// Violation 2: sequential knowledge — the second set_state leaves the
// VCPU kRunning, so blocking it without unmapping is illegal.
void block_running(Vcpu& v) {
  set_state(v, VcpuState::kRunnable);
  set_state(v, VcpuState::kRunning);
  set_state(v, VcpuState::kBlocked);  // flagged: kRunning -> kBlocked
}

// Violation 3: a single-label case section proves kDestroyed; tombstones
// never come back.
void resurrect(Vcpu& v) {
  switch (v.state) {
    case VcpuState::kDestroyed:
      set_state(v, VcpuState::kRunnable);  // flagged: kDestroyed -> kRunnable
      break;
    case VcpuState::kRunning:
    case VcpuState::kRunnable:
    case VcpuState::kBlocked:
      break;
  }
}

}  // namespace fixture

#include "experiments/tables.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace asman::experiments {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  std::string out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += "  ";
      out.append(width[c] - row[c].size(), ' ');
      out += row[c];
    }
    out += '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule += "  " + std::string(width[c], '-');
  out += rule + '\n';
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string fmt_f(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void write_csv(const std::string& path,
               const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  const auto line = [&f](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) f << ',';
      f << cells[i];
    }
    f << '\n';
  };
  line(headers);
  for (const auto& r : rows) line(r);
}

}  // namespace asman::experiments

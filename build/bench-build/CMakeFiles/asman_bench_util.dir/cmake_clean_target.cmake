file(REMOVE_RECURSE
  "libasman_bench_util.a"
)

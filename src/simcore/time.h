// Strongly-typed simulated time.
//
// All simulation time in ASMan is measured in CPU cycles of the modelled
// machine (the paper reports spinlock waiting times in CPU cycles and the
// Xen Credit scheduler operates on 10 ms slots / 30 ms accounting periods;
// both unit systems meet here). `Cycles` is a thin strong typedef over
// uint64_t so that raw integers, credit values and cycle counts cannot be
// mixed up silently.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace asman::sim {

/// A duration or point in simulated time, in CPU cycles.
struct Cycles {
  std::uint64_t v{0};

  constexpr Cycles() = default;
  constexpr explicit Cycles(std::uint64_t value) : v(value) {}

  friend constexpr auto operator<=>(Cycles, Cycles) = default;

  constexpr Cycles operator+(Cycles o) const { return Cycles{v + o.v}; }
  constexpr Cycles operator-(Cycles o) const { return Cycles{v - o.v}; }
  constexpr Cycles& operator+=(Cycles o) {
    v += o.v;
    return *this;
  }
  constexpr Cycles& operator-=(Cycles o) {
    v -= o.v;
    return *this;
  }
  constexpr Cycles operator*(std::uint64_t k) const { return Cycles{v * k}; }
  constexpr Cycles operator/(std::uint64_t k) const { return Cycles{v / k}; }
  /// Ratio of two durations as a double (e.g. utilization fractions).
  constexpr double ratio(Cycles denom) const {
    return denom.v == 0 ? 0.0
                        : static_cast<double>(v) / static_cast<double>(denom.v);
  }

  static constexpr Cycles zero() { return Cycles{0}; }
  static constexpr Cycles max() {
    return Cycles{std::numeric_limits<std::uint64_t>::max()};
  }
};

/// Saturating subtraction: max(a - b, 0). Used for "remaining work" math
/// where clock jitter must never wrap around.
constexpr Cycles saturating_sub(Cycles a, Cycles b) {
  return a.v >= b.v ? Cycles{a.v - b.v} : Cycles{0};
}

/// Frequency of the modelled machine; converts wall time to cycles.
/// The paper's testbed is a Xeon X5410 @ 2.33 GHz.
class ClockDomain {
 public:
  constexpr explicit ClockDomain(std::uint64_t hz) : hz_(hz) {}

  constexpr std::uint64_t hz() const { return hz_; }

  constexpr Cycles from_ms(std::uint64_t ms) const {
    return Cycles{hz_ / 1000 * ms};
  }
  constexpr Cycles from_us(std::uint64_t us) const {
    return Cycles{hz_ / 1'000'000 * us};
  }
  constexpr Cycles from_seconds_f(double s) const {
    return Cycles{static_cast<std::uint64_t>(s * static_cast<double>(hz_))};
  }
  constexpr double to_seconds(Cycles c) const {
    return static_cast<double>(c.v) / static_cast<double>(hz_);
  }
  constexpr double to_ms(Cycles c) const { return to_seconds(c) * 1e3; }

 private:
  std::uint64_t hz_;
};

/// Default clock domain used across the reproduction (Xeon X5410).
inline constexpr ClockDomain kDefaultClock{2'330'000'000ULL};

/// floor(log2(cycles)), with log2(0) reported as 0. Spinlock waiting times
/// in the paper are always bucketed by powers of two (2^10 .. 2^30).
constexpr unsigned log2_floor(Cycles c) {
  unsigned b = 0;
  for (std::uint64_t x = c.v; x > 1; x >>= 1) ++b;
  return b;
}

/// 2^exp cycles — the paper's thresholds are expressed this way (delta=20).
constexpr Cycles pow2_cycles(unsigned exp) { return Cycles{1ULL << exp}; }

std::string format_cycles(Cycles c);

}  // namespace asman::sim

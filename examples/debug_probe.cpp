// Internal diagnostic probe (not part of the public example set): dumps
// guest/scheduler counters for one LU run at a given online rate.
#include <cstdio>
#include <cstdlib>

#include "experiments/paper.h"

using namespace asman;
namespace ex = asman::experiments;

int main(int argc, char** argv) {
  const std::uint32_t weight =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 32;
  const int sched = argc > 2 ? std::atoi(argv[2]) : 0;
  const core::SchedulerKind kind = sched == 0   ? core::SchedulerKind::kCredit
                                   : sched == 1 ? core::SchedulerKind::kAsman
                                                : core::SchedulerKind::kCon;
  ex::Scenario sc = ex::single_vm_scenario(
      kind, weight, ex::npb_factory(workloads::NpbBenchmark::kLU));
  sc.keep_wait_samples = true;
  ex::RunResult r = ex::run_scenario(sc);
  const ex::VmResult& v = r.vm("V1");
  const auto& s = v.stats;
  std::printf("runtime=%.2fs online=%.3f events=%llu\n", v.runtime_seconds,
              v.observed_online_rate,
              static_cast<unsigned long long>(r.events));
  std::printf(
      "spin: acq=%llu contended=%llu >2^10=%llu >2^15=%llu >2^20=%llu "
      ">2^24=%llu max=2^%u\n",
      static_cast<unsigned long long>(s.spin_acquisitions),
      static_cast<unsigned long long>(s.spin_contended),
      static_cast<unsigned long long>(s.spin_waits.count_above(10)),
      static_cast<unsigned long long>(s.spin_waits.count_above(15)),
      static_cast<unsigned long long>(s.spin_waits.count_above(20)),
      static_cast<unsigned long long>(s.spin_waits.count_above(24)),
      sim::log2_floor(s.spin_waits.max_value()));
  std::printf(
      "futex: waits=%llu wakes=%llu barriers=%llu kernel_sleeps=%llu "
      "ticks=%llu ctx=%llu\n",
      static_cast<unsigned long long>(s.futex_waits),
      static_cast<unsigned long long>(s.futex_wakes),
      static_cast<unsigned long long>(s.barrier_arrivals),
      static_cast<unsigned long long>(s.barrier_kernel_sleeps),
      static_cast<unsigned long long>(s.ticks),
      static_cast<unsigned long long>(s.context_switches));
  std::printf(
      "sched: migrations=%llu cosched=%llu ipi=%llu vmm_ctx=%llu idle=%.3f "
      "vcrd_hi=%llu high_frac=%.3f overthr=%llu adj=%llu\n",
      static_cast<unsigned long long>(r.migrations),
      static_cast<unsigned long long>(r.cosched_events),
      static_cast<unsigned long long>(r.ipi_sent),
      static_cast<unsigned long long>(r.context_switches),
      r.idle_fraction, static_cast<unsigned long long>(v.vcrd_transitions),
      v.vcrd_high_fraction,
      static_cast<unsigned long long>(v.over_threshold_events),
      static_cast<unsigned long long>(v.adjusting_events));
  return 0;
}

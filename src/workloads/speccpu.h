// SPEC CPU2000 rate model (paper §5.3: 176.gcc and 256.bzip2, 4 copies).
//
// The SPEC rate metric runs N independent copies of a compute-bound
// benchmark; there is no synchronization between copies, which is exactly
// why the paper uses it as the "high-throughput" workload: its performance
// depends only on the CPU share a VM receives, not on VCPU alignment.
// The model: N threads, each burning a fixed amount of compute per round
// (in chunks, so guest preemption behaves realistically), repeated in
// rounds; a round completes when every copy finished it.
#pragma once

#include <memory>
#include <string>

#include "simcore/simulator.h"
#include "workloads/workload.h"

namespace asman::workloads {

struct SpecCpuParams {
  std::uint32_t copies{4};
  /// Total compute per copy per round.
  Cycles work_per_copy{sim::kDefaultClock.from_seconds_f(2.5)};
  /// Chunk size (one kCompute op).
  Cycles chunk{sim::kDefaultClock.from_us(2'000)};
  double chunk_cv{0.05};
  std::uint64_t rounds{1};
  /// Memory footprint for the contention engine; the canonical parameter
  /// sets below fill in calibrated values (gcc: pointer-chasing over a
  /// moderate set; bzip2: block-streaming).
  hw::memsys::MemFootprint footprint{};
};

/// Canonical parameter sets for the two benchmarks used in the paper.
/// Relative weights approximate the real Class-ref run-time ratio.
SpecCpuParams spec_gcc_params(std::uint64_t rounds = 1);
SpecCpuParams spec_bzip2_params(std::uint64_t rounds = 1);

class SpecCpuRateWorkload final : public Workload {
 public:
  SpecCpuRateWorkload(sim::Simulator& simulation, std::string workload_name,
                      SpecCpuParams params, std::uint64_t seed);
  ~SpecCpuRateWorkload() override;

  void deploy(guest::GuestKernel& g) override;
  std::string name() const override { return name_; }
  std::uint64_t rounds_completed() const override;
  std::vector<Cycles> round_times() const override;
  hw::memsys::MemFootprint footprint() const override {
    return params_.footprint;
  }

  struct Shared;

 private:
  sim::Simulator& sim_;
  std::string name_;
  SpecCpuParams params_;
  std::uint64_t seed_;
  std::unique_ptr<Shared> shared_;
};

}  // namespace asman::workloads

// Cluster fabric tests: the live-migration state machine (pre-copy ->
// stop-and-copy -> commit | abort), host-crash recovery, the fleet
// placer, and the two cluster-wide invariants — plus the parameterized
// sweep the ISSUE demands: a host crash injected at every observable FSM
// phase boundary must roll back cleanly (source authoritative,
// destination tombstoned), leave every auditor clean, and reproduce
// bit-identically per seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/migration_spec.h"
#include "experiments/cluster.h"
#include "simcore/event_scope.h"
#include "simcore/simulator.h"

namespace asman {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::ClusterVmId;
using cluster::ClusterVmSpec;
using cluster::HostId;
using cluster::MigrationPhase;
using sim::Cycles;

Cycles secs(double s) { return sim::kDefaultClock.from_seconds_f(s); }

ClusterConfig small_config(std::uint32_t hosts) {
  ClusterConfig cc;
  cc.num_hosts = hosts;
  cc.audit = true;  // non-fatal: the tests assert on the report
  return cc;
}

ClusterVmSpec tenant(const std::string& name, std::uint32_t vcpus = 2,
                     std::uint64_t ram_mb = 256) {
  ClusterVmSpec v;
  v.name = name;
  v.vcpus = vcpus;
  v.ram_mb = ram_mb;
  return v;
}

std::uint64_t counters_digest(const Cluster& cl) {
  const auto mix = [](std::uint64_t h, std::uint64_t v) {
    return h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
  };
  std::uint64_t h = 0;
  h = mix(h, cl.migrations_started());
  h = mix(h, cl.migrations_committed());
  h = mix(h, cl.migrations_aborted());
  h = mix(h, cl.migrations_retried());
  h = mix(h, cl.precopy_rounds());
  h = mix(h, cl.phase_transitions());
  h = mix(h, cl.tombstoned_copies());
  h = mix(h, cl.vms_replaced());
  h = mix(h, cl.vms_lost());
  h = mix(h, static_cast<std::uint64_t>(cl.residual_credit()));
  h = mix(h, static_cast<std::uint64_t>(cl.crash_credit_delta()));
  for (HostId hid = 0; hid < cl.num_hosts(); ++hid) {
    h = mix(h, cl.host(hid).context_switches());
    h = mix(h, cl.host(hid).vm_migrations_in());
    h = mix(h, cl.host(hid).vm_migrations_out());
  }
  return h;
}

// --- migration_spec sanity ---

TEST(MigrationSpecTest, LegalTransitionsMatchTheTable) {
  using cluster::legal_migration_transition;
  EXPECT_TRUE(legal_migration_transition(MigrationPhase::kIdle,
                                         MigrationPhase::kPreCopy));
  EXPECT_TRUE(legal_migration_transition(MigrationPhase::kPreCopy,
                                         MigrationPhase::kStopAndCopy));
  EXPECT_TRUE(legal_migration_transition(MigrationPhase::kPreCopy,
                                         MigrationPhase::kAbort));
  EXPECT_TRUE(legal_migration_transition(MigrationPhase::kStopAndCopy,
                                         MigrationPhase::kCommit));
  EXPECT_TRUE(legal_migration_transition(MigrationPhase::kStopAndCopy,
                                         MigrationPhase::kPreCopy));
  EXPECT_TRUE(legal_migration_transition(MigrationPhase::kStopAndCopy,
                                         MigrationPhase::kAbort));
  EXPECT_TRUE(legal_migration_transition(MigrationPhase::kCommit,
                                         MigrationPhase::kIdle));
  EXPECT_TRUE(legal_migration_transition(MigrationPhase::kAbort,
                                         MigrationPhase::kIdle));
  // The edges the lint fixture plants as violations really are illegal.
  EXPECT_FALSE(legal_migration_transition(MigrationPhase::kIdle,
                                          MigrationPhase::kCommit));
  EXPECT_FALSE(legal_migration_transition(MigrationPhase::kCommit,
                                          MigrationPhase::kPreCopy));
  EXPECT_FALSE(legal_migration_transition(MigrationPhase::kAbort,
                                          MigrationPhase::kStopAndCopy));
  EXPECT_FALSE(legal_migration_transition(MigrationPhase::kCommit,
                                          MigrationPhase::kAbort));
}

// --- EventScope (the cancel-wholesale primitive migrations lean on) ---

TEST(EventScopeTest, CancelAllStopsTrackedEvents) {
  sim::Simulator s;
  sim::EventScope scope;
  int fired = 0;
  scope.after(s, Cycles{100}, [&] { ++fired; });
  scope.after(s, Cycles{200}, [&] { ++fired; });
  const sim::EventId kept = s.after(Cycles{300}, [&] { ++fired; });
  EXPECT_EQ(scope.cancel_all(s), 2u);
  s.run_all();
  EXPECT_EQ(fired, 1);  // only the untracked event survived
  EXPECT_FALSE(s.pending(kept));
}

TEST(EventScopeTest, FiredEventsAreNotCancelled) {
  sim::Simulator s;
  sim::EventScope scope;
  int fired = 0;
  scope.after(s, Cycles{10}, [&] { ++fired; });
  s.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(scope.cancel_all(s), 0u);
}

// --- migration mechanics ---

TEST(ClusterMigrationTest, CommitMovesResidencyAndCarriesCredit) {
  sim::Simulator s;
  Cluster cl(s, small_config(2));
  const ClusterVmId vm = cl.admit(tenant("Mover"));
  ASSERT_NE(vm, cluster::kInvalidClusterVmId);
  const HostId src = cl.vm(vm).host;
  const HostId dst = 1 - src;
  cl.start();
  s.at(secs(0.05), [&] { EXPECT_TRUE(cl.migrate(vm, dst)); });
  s.run_until(secs(0.5));
  cl.check_now();
  EXPECT_EQ(cl.migrations_committed(), 1u);
  EXPECT_EQ(cl.migrations_aborted(), 0u);
  EXPECT_EQ(cl.vm(vm).host, dst);
  EXPECT_TRUE(cl.vm_resident(vm));
  EXPECT_EQ(cl.host(src).vm_migrations_out(), 1u);
  EXPECT_EQ(cl.host(dst).vm_migrations_in(), 1u);
  EXPECT_EQ(cl.audit_violations(), 0u) << cl.audit_summary();
}

TEST(ClusterMigrationTest, StopAndCopyDowntimeIsBounded) {
  sim::Simulator s;
  Cluster cl(s, small_config(2));
  const ClusterVmId vm = cl.admit(tenant("Big", 2, 1024));
  cl.start();
  Cycles frozen_at{0};
  Cycles committed_at{0};
  cl.set_phase_hook([&](ClusterVmId, MigrationPhase, MigrationPhase to) {
    if (to == MigrationPhase::kStopAndCopy) frozen_at = s.now();
    if (to == MigrationPhase::kCommit) committed_at = s.now();
  });
  s.at(secs(0.05), [&] { cl.migrate(vm, 1 - cl.vm(vm).host); });
  s.run_until(secs(1.0));
  ASSERT_EQ(cl.migrations_committed(), 1u);
  ASSERT_GT(committed_at.v, frozen_at.v);
  // The guest was frozen for at most the configured downtime budget —
  // the whole point of iterating pre-copy before stopping.
  EXPECT_LE((committed_at - frozen_at).v, cl.recovery().max_downtime.v);
  EXPECT_GT(cl.precopy_rounds(), 1u);
}

TEST(ClusterMigrationTest, LinkLossWindowRetriesThenCommits) {
  sim::Simulator s;
  ClusterConfig cc = small_config(2);
  Cluster cl(s, cc);
  const ClusterVmId vm = cl.admit(tenant("Flaky"));
  faults::FaultPlan plan;
  faults::HostFaultSpec f;
  f.kind = faults::HostFaultKind::kMigrationLinkLoss;
  f.host = 0;
  f.at = secs(0.05);
  f.duration = secs(0.1);
  plan.host.push_back(f);
  cl.inject(plan);
  cl.start();
  s.at(secs(0.05), [&] { cl.migrate(vm, 1 - cl.vm(vm).host); });
  s.run_until(secs(1.5));
  cl.check_now();
  EXPECT_GE(cl.link_failures(), 1u);
  EXPECT_GE(cl.migrations_retried(), 1u);
  EXPECT_EQ(cl.migrations_committed(), 1u);  // backoff outlived the window
  EXPECT_EQ(cl.audit_violations(), 0u) << cl.audit_summary();
}

TEST(ClusterMigrationTest, PermanentLinkLossAbortsAndSourceResumes) {
  sim::Simulator s;
  Cluster cl(s, small_config(2));
  const ClusterVmId vm = cl.admit(tenant("Stuck"));
  const HostId src = cl.vm(vm).host;
  faults::FaultPlan plan;
  faults::HostFaultSpec f;
  f.kind = faults::HostFaultKind::kMigrationLinkLoss;
  f.host = 0;
  f.at = Cycles{0};
  f.duration = Cycles{0};  // down for the rest of the run
  plan.host.push_back(f);
  cl.inject(plan);
  cl.start();
  s.at(secs(0.05), [&] { cl.migrate(vm, 1 - src); });
  s.run_until(secs(2.0));
  cl.check_now();
  EXPECT_EQ(cl.migrations_committed(), 0u);
  EXPECT_EQ(cl.migrations_aborted(), 1u);
  EXPECT_EQ(cl.tombstoned_copies(), 1u);
  // Source authoritative: the VM never moved and still runs at home.
  EXPECT_EQ(cl.vm(vm).host, src);
  EXPECT_TRUE(cl.vm_resident(vm));
  EXPECT_EQ(cl.migration_phase(vm), MigrationPhase::kIdle);
  EXPECT_EQ(cl.audit_violations(), 0u) << cl.audit_summary();
}

TEST(ClusterMigrationTest, RetireMidMigrationAbortsCleanly) {
  sim::Simulator s;
  Cluster cl(s, small_config(2));
  const ClusterVmId vm = cl.admit(tenant("Doomed", 2, 1024));
  cl.start();
  s.at(secs(0.05), [&] { cl.migrate(vm, 1 - cl.vm(vm).host); });
  s.at(secs(0.06), [&] { EXPECT_TRUE(cl.retire(vm)); });
  s.run_until(secs(0.5));
  cl.check_now();
  EXPECT_EQ(cl.migrations_aborted(), 1u);
  EXPECT_EQ(cl.migrations_committed(), 0u);
  EXPECT_TRUE(cl.vm(vm).retired);
  EXPECT_FALSE(cl.vm_resident(vm));
  EXPECT_EQ(cl.audit_violations(), 0u) << cl.audit_summary();
}

// --- placer & degraded hosts ---

TEST(ClusterPlacerTest, AdmissionPrefersTheLeastLoadedHost) {
  sim::Simulator s;
  Cluster cl(s, small_config(3));
  // Pile weight onto hosts 0 and 1; the next tenant must land on 2.
  ASSERT_EQ(cl.vm(cl.admit(tenant("A", 4))).host, 0u);
  ASSERT_EQ(cl.vm(cl.admit(tenant("B", 4))).host, 1u);
  EXPECT_EQ(cl.vm(cl.admit(tenant("C", 1))).host, 2u);
}

TEST(ClusterPlacerTest, DegradedHostIsSkippedAndRecovers) {
  sim::Simulator s;
  Cluster cl(s, small_config(2));
  faults::FaultPlan plan;
  faults::HostFaultSpec f;
  f.kind = faults::HostFaultKind::kHostDegraded;
  f.host = 0;
  f.at = secs(0.05);
  f.duration = secs(0.2);
  plan.host.push_back(f);
  cl.inject(plan);
  cl.start();
  ClusterVmId hot = cluster::kInvalidClusterVmId;
  s.at(secs(0.1), [&] { hot = cl.admit(tenant("Hot")); });
  s.run_until(secs(0.5));
  cl.check_now();
  ASSERT_NE(hot, cluster::kInvalidClusterVmId);
  EXPECT_EQ(cl.vm(hot).host, 1u);  // host 0 was degraded at admit time
  EXPECT_EQ(cl.degraded_windows(), 1u);
  EXPECT_FALSE(cl.host_degraded(0));  // window ended, PCPUs back online
  EXPECT_EQ(cl.host(0).online_pcpus(), cl.host(1).online_pcpus());
  EXPECT_EQ(cl.audit_violations(), 0u) << cl.audit_summary();
}

// --- host crash recovery ---

TEST(ClusterCrashTest, CrashedHostsVmsComeBackWithHeartbeatCredit) {
  sim::Simulator s;
  Cluster cl(s, small_config(2));
  const ClusterVmId a = cl.admit(tenant("A"));
  const ClusterVmId b = cl.admit(tenant("B"));
  // Both on distinct hosts; push B's host over so A and B share host 0?
  // Admission is load-ordered, so A landed on 0 and B on 1. Crash 0.
  cl.start();
  s.at(secs(0.3), [&] { cl.crash_host_now(0); });
  s.run_until(secs(0.6));
  cl.check_now();
  EXPECT_EQ(cl.host_crashes(), 1u);
  EXPECT_FALSE(cl.host_alive(0));
  EXPECT_EQ(cl.vms_lost(), 0u);
  EXPECT_EQ(cl.vms_replaced(), 1u);  // A re-admitted on host 1
  EXPECT_TRUE(cl.vm_resident(a));
  EXPECT_TRUE(cl.vm_resident(b));
  EXPECT_EQ(cl.vm(a).host, 1u);
  EXPECT_EQ(cl.vm(a).replacements, 1u);
  EXPECT_EQ(cl.audit_violations(), 0u) << cl.audit_summary();
}

// --- the ISSUE's parameterized sweep: crash at every FSM phase ---

struct PhaseCrashCase {
  MigrationPhase phase;  // crash when the migration enters this phase
  bool crash_src;        // else crash the destination
};

class PhaseCrashTest : public ::testing::TestWithParam<PhaseCrashCase> {};

TEST_P(PhaseCrashTest, RollbackIsAuditCleanAndReproducible) {
  const PhaseCrashCase pc = GetParam();
  const auto run = [&](std::uint64_t seed) -> std::uint64_t {
    sim::Simulator s;
    Cluster cl(s, small_config(3));
    // A little fleet so the crashed host has bystander VMs to recover
    // besides the migrating one.
    const ClusterVmId mover =
        cl.admit(tenant("Mover" + std::to_string(seed), 2, 512));
    cl.admit(tenant("Bystander0", 1));
    cl.admit(tenant("Bystander1", 1));
    cl.admit(tenant("Bystander2", 2));
    cl.start();
    HostId src = cluster::kInvalidHostId;
    HostId dst = cluster::kInvalidHostId;
    s.at(secs(0.05), [&] {
      src = cl.vm(mover).host;
      dst = cl.pick_host(src);
      ASSERT_TRUE(cl.migrate(mover, dst));
    });
    bool armed = false;
    cl.set_phase_hook([&](ClusterVmId id, MigrationPhase, MigrationPhase to) {
      if (armed || id != mover || to != pc.phase) return;
      armed = true;
      // Defer one cycle: the hook fires inside the seam, mid-event.
      s.after(Cycles{1}, [&cl, &pc, src, dst] {
        cl.crash_host_now(pc.crash_src ? src : dst);
      });
    });
    s.run_until(secs(1.0));
    cl.check_now();
    EXPECT_TRUE(armed) << "migration never reached the target phase";
    EXPECT_EQ(cl.host_crashes(), 1u);
    EXPECT_EQ(cl.vms_lost(), 0u);
    // The mover survived the crash whichever side died: either the
    // commit had not happened (source authoritative / re-admitted from
    // the heartbeat) or it had (resident on the destination).
    EXPECT_TRUE(cl.vm_resident(mover));
    EXPECT_EQ(cl.migration_phase(mover), MigrationPhase::kIdle);
    EXPECT_EQ(cl.audit_violations(), 0u) << cl.audit_summary();
    return counters_digest(cl);
  };
  // Bit-reproducible: the same seed replays the identical run.
  EXPECT_EQ(run(5), run(5));
}

INSTANTIATE_TEST_SUITE_P(
    EveryPhaseBoundary, PhaseCrashTest,
    ::testing::Values(PhaseCrashCase{MigrationPhase::kPreCopy, true},
                      PhaseCrashCase{MigrationPhase::kPreCopy, false},
                      PhaseCrashCase{MigrationPhase::kStopAndCopy, true},
                      PhaseCrashCase{MigrationPhase::kStopAndCopy, false},
                      // kCommit/kAbort are atomic within one event; the
                      // crash lands at the first boundary after them.
                      PhaseCrashCase{MigrationPhase::kCommit, true},
                      PhaseCrashCase{MigrationPhase::kCommit, false}),
    [](const ::testing::TestParamInfo<PhaseCrashCase>& param_info) {
      std::string n = cluster::to_string(param_info.param.phase);
      for (char& c : n)
        if (c == '-') c = '_';
      return n + (param_info.param.crash_src ? "_src" : "_dst");
    });

// --- scenario-level runs (the acceptance shape) ---

TEST(ClusterScenarioTest, DemoFleetRunsCleanAndLosesNothing) {
  namespace ex = asman::experiments;
  ex::ClusterScenario sc = ex::cluster_scenario(core::SchedulerKind::kAsman, 7);
  sc.audit = true;
  const ex::ClusterRunResult rr = ex::run_cluster_scenario(sc);
  EXPECT_EQ(rr.migrations_committed, 3u);
  EXPECT_EQ(rr.host_crashes, 1u);
  EXPECT_EQ(rr.vms_lost, 0u);
  EXPECT_GT(rr.vms_replaced, 0u);
  EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
}

TEST(ClusterScenarioTest, ChaosFingerprintIsBitReproducible) {
  namespace ex = asman::experiments;
  const ex::ClusterScenario sc =
      ex::cluster_chaos_scenario(core::SchedulerKind::kAsman, 8, 32, 3);
  const ex::ClusterRunResult r1 = ex::run_cluster_scenario(sc);
  const ex::ClusterRunResult r2 = ex::run_cluster_scenario(sc);
  EXPECT_EQ(r1.fingerprint, r2.fingerprint);
  EXPECT_EQ(r1.events, r2.events);
  // Attaching the auditors must not perturb the schedule.
  ex::ClusterScenario audited = sc;
  audited.audit = true;
  const ex::ClusterRunResult r3 = ex::run_cluster_scenario(audited);
  EXPECT_EQ(r1.fingerprint, r3.fingerprint);
  EXPECT_EQ(r3.audit_violations, 0u) << r3.audit_summary;
}

TEST(ClusterScenarioTest, SixteenHostStormSurvivesAudited) {
  namespace ex = asman::experiments;
  ex::ClusterScenario sc =
      ex::cluster_chaos_scenario(core::SchedulerKind::kAsman, 16, 64, 9);
  sc.audit = true;
  const ex::ClusterRunResult rr = ex::run_cluster_scenario(sc);
  EXPECT_EQ(rr.host_crashes, 2u);
  EXPECT_EQ(rr.vms_lost, 0u);
  EXPECT_GT(rr.vms_replaced, 0u);
  EXPECT_GT(rr.migrations_committed, 0u);
  EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
  EXPECT_GT(rr.audit_checks, 0u);
}

TEST(ClusterScenarioTest, EverySchedulerSurvivesTheStorm) {
  namespace ex = asman::experiments;
  for (const core::SchedulerKind k :
       {core::SchedulerKind::kCredit, core::SchedulerKind::kCon,
        core::SchedulerKind::kAsman}) {
    ex::ClusterScenario sc = ex::cluster_chaos_scenario(k, 4, 16, 5);
    sc.audit = true;
    const ex::ClusterRunResult rr = ex::run_cluster_scenario(sc);
    EXPECT_EQ(rr.vms_lost, 0u) << core::to_string(k);
    EXPECT_EQ(rr.audit_violations, 0u)
        << core::to_string(k) << "\n"
        << rr.audit_summary;
  }
}

}  // namespace
}  // namespace asman

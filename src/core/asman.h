// Umbrella header for the ASMan reproduction library.
//
// Typical use:
//
//   sim::Simulator s;
//   hw::MachineConfig mach;                       // 8 PCPUs @ 2.33 GHz
//   auto hv = core::make_scheduler(core::SchedulerKind::kAsman, s, mach,
//                                  vmm::SchedMode::kNonWorkConserving);
//   auto vm = hv->create_vm("V1", /*weight=*/256, /*vcpus=*/4);
//   guest::GuestKernel g(s, *hv, vm, {.n_vcpus = 4});
//   core::MonitoringModule mon(s, *hv, vm, {});
//   g.set_observer(&mon);
//   hv->attach_guest(vm, &g);
//   ... spawn workload threads (src/workloads) ...
//   hv->start();
//   s.run_until(mach.clock().from_seconds_f(30.0));
//
// Higher-level scenario plumbing lives in src/experiments.
#pragma once

#include "core/learning.h"
#include "core/monitor.h"
#include "core/schedulers.h"
#include "guest/guest_kernel.h"
#include "guest/program.h"
#include "hw/machine.h"
#include "simcore/simulator.h"
#include "vmm/hypervisor.h"

file(REMOVE_RECURSE
  "libasman_experiments.a"
)

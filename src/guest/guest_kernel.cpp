#include "guest/guest_kernel.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace asman::guest {

GuestKernel::GuestKernel(sim::Simulator& simulation,
                         vmm::HypervisorPort& hypervisor, vmm::VmId vm_id,
                         Config cfg, sim::Trace* trace)
    : sim_(simulation),
      hv_(hypervisor),
      vm_id_(vm_id),
      cfg_(cfg),
      trace_(trace),
      rng_(cfg.seed ^ (0x5151u + vm_id)),
      vcpus_(cfg.n_vcpus),
      stats_(cfg.keep_wait_samples) {
  timer_lock_ = create_spinlock("timer");
  rq_locks_.reserve(cfg_.n_vcpus);
  for (std::uint32_t v = 0; v < cfg_.n_vcpus; ++v) {
    rq_locks_.push_back(create_spinlock("rq:" + std::to_string(v)));
    // IRQ pseudo-thread: the identity under which tick handlers hold locks.
    auto irq = std::make_unique<Thread>();
    irq->id = static_cast<Tid>(threads_.size());
    irq->vcpu = v;
    irq->state = TState::kIrq;
    vcpus_[v].irq_tid = irq->id;
    threads_.push_back(std::move(irq));
  }
}

GuestKernel::~GuestKernel() = default;

// --- setup -------------------------------------------------------------------

std::uint32_t GuestKernel::create_spinlock(std::string name) {
  locks_.push_back(SpinLock{std::move(name), kNoTid, {}});
  return static_cast<std::uint32_t>(locks_.size() - 1);
}

std::uint32_t GuestKernel::create_mutex() {
  const auto fq = static_cast<std::uint32_t>(futexes_.size());
  futexes_.push_back(
      FutexQ{create_spinlock("futex:m" + std::to_string(mutexes_.size())), {}});
  mutexes_.push_back(Mutex{false, fq});
  return static_cast<std::uint32_t>(mutexes_.size() - 1);
}

std::uint32_t GuestKernel::create_barrier(std::uint32_t parties,
                                          bool spin_only) {
  assert(parties >= 1);
  const auto fq = static_cast<std::uint32_t>(futexes_.size());
  futexes_.push_back(FutexQ{
      create_spinlock("futex:b" + std::to_string(barriers_.size())), {}});
  barriers_.push_back(Barrier{parties, 0, 0, fq, spin_only, {}});
  return static_cast<std::uint32_t>(barriers_.size() - 1);
}

std::uint32_t GuestKernel::create_semaphore(std::int32_t initial) {
  const auto fq = static_cast<std::uint32_t>(futexes_.size());
  futexes_.push_back(FutexQ{
      create_spinlock("futex:s" + std::to_string(semaphores_.size())), {}});
  semaphores_.push_back(Semaphore{initial, fq});
  return static_cast<std::uint32_t>(semaphores_.size() - 1);
}

Tid GuestKernel::spawn(std::unique_ptr<ThreadProgram> prog,
                       std::uint32_t vcpu) {
  assert(vcpu < cfg_.n_vcpus);
  auto th = std::make_unique<Thread>();
  th->id = static_cast<Tid>(threads_.size());
  th->vcpu = vcpu;
  th->prog = std::move(prog);
  th->state = TState::kReady;
  vcpus_[vcpu].runq.push_back(th->id);
  threads_.push_back(std::move(th));
  ++user_thread_count_;
  return threads_.back()->id;
}

bool GuestKernel::thread_done(Tid t) const {
  return threads_[t]->state == TState::kDone;
}

Cycles GuestKernel::thread_finish_time(Tid t) const {
  return threads_[t]->finish_time;
}

void GuestKernel::note_trace(sim::TraceCat cat, const std::string& msg) {
  if (trace_) trace_->emit(sim_.now(), cat, msg);
}

// --- execution engine ---------------------------------------------------------

Tid GuestKernel::executing_on(std::uint32_t v) const {
  const VcpuCtx& c = vcpus_[v];
  return c.in_irq ? c.irq_tid : c.current;
}

bool GuestKernel::is_executing(Tid t) const {
  const Thread& th = *threads_[t];
  const VcpuCtx& c = vcpus_[th.vcpu];
  if (!c.online) return false;
  return executing_on(th.vcpu) == t;
}

void GuestKernel::activate(Tid t) {
  Thread& th = *threads_[t];
  Activity& a = th.act;
  switch (a.kind) {
    case ActKind::kNone:
      return;
    case ActKind::kBurn:
      a.started_at = sim_.now();
      a.ev = sim_.after(a.remaining, [this, t] { burn_complete(t); });
      return;
    case ActKind::kSpin: {
      SpinLock& l = locks_[a.lock];
      if (l.owner == kNoTid) {
        // The lock was released while we were offline: take it now
        // (plain pre-ticket spinlock semantics — first online spinner wins).
        for (std::size_t i = 0; i < l.waiters.size(); ++i) {
          if (l.waiters[i].tid == t) {
            grant_to_waiter(a.lock, i);
            return;
          }
        }
        assert(false && "spinning thread missing from waiter list");
        return;
      }
      // Still held: if the wall-clock wait crossed the over-threshold limit
      // while this VCPU was offline, report it now (the monitoring code in
      // the real kernel runs inside the spin loop, so it fires as soon as
      // the spinner executes again).
      for (auto& w : l.waiters) {
        if (w.tid != t) continue;
        if (!w.reported &&
            (w.report_pending ||
             sim_.now() - w.since >= cfg_.over_threshold)) {
          w.reported = true;
          w.report_pending = false;
          if (observer_) observer_->on_over_threshold();
        }
        return;
      }
      assert(false && "spinning thread missing from waiter list");
      return;
    }
  }
}

void GuestKernel::deactivate(Tid t) {
  Thread& th = *threads_[t];
  Activity& a = th.act;
  if (a.kind == ActKind::kBurn && a.ev.valid()) {
    sim_.cancel(a.ev);
    a.ev = {};
    a.remaining = sim::saturating_sub(a.remaining, sim_.now() - a.started_at);
  }
  // kSpin: wall-clock waiting continues; nothing to pause.
}

void GuestKernel::burn(Tid t, Cycles len, bool kernel, Cont done) {
  Thread& th = *threads_[t];
  assert(th.act.kind == ActKind::kNone && "thread already has an activity");
  th.act.kind = ActKind::kBurn;
  th.act.kernel = kernel;
  th.act.remaining = len;
  th.act.done = std::move(done);
  th.act.ev = {};
  if (is_executing(t)) activate(t);
}

void GuestKernel::burn_complete(Tid t) {
  Thread& th = *threads_[t];
  assert(th.act.kind == ActKind::kBurn);
  th.act.ev = {};
  th.act.kind = ActKind::kNone;
  Cont done = std::move(th.act.done);
  th.act.done = nullptr;
  done();
  maybe_deliver_pending(th.vcpu);
}

void GuestKernel::repurpose_burn(Tid t, Cycles extra, Cont instead) {
  Thread& th = *threads_[t];
  assert(th.act.kind == ActKind::kBurn);
  if (th.act.ev.valid()) {
    sim_.cancel(th.act.ev);
    th.act.ev = {};
  }
  th.act.kind = ActKind::kBurn;
  th.act.kernel = false;
  th.act.remaining = extra;
  th.act.done = std::move(instead);
  if (is_executing(t)) activate(t);
}

// --- spinlocks -----------------------------------------------------------------

void GuestKernel::record_spin_wait(Cycles waited) {
  ++stats_.spin_acquisitions;
  stats_.spin_waits.add(waited);
  if (observer_) observer_->on_spin_acquired(waited);
}

void GuestKernel::lock_acquire(Tid t, std::uint32_t lock,
                               std::function<void(Cycles)> acquired) {
  assert(is_executing(t));
  SpinLock& l = locks_[lock];
  if (l.owner == kNoTid) {
    l.owner = t;
    record_spin_wait(cfg_.uncontended_acquire);
    acquired(cfg_.uncontended_acquire);
    return;
  }
  ++stats_.spin_contended;
  Thread& th = *threads_[t];
  assert(th.act.kind == ActKind::kNone);
  th.act.kind = ActKind::kSpin;
  th.act.kernel = true;
  th.act.lock = lock;
  SpinWaiter w;
  w.tid = t;
  w.since = sim_.now();
  w.acquired = std::move(acquired);
  w.cross_ev = sim_.after(cfg_.over_threshold,
                          [this, lock, t] { spin_cross_check(lock, t); });
  locks_[lock].waiters.push_back(std::move(w));
  note_trace(sim::TraceCat::kLock,
             "t" + std::to_string(t) + " spins on " + locks_[lock].name);
}

void GuestKernel::spin_cross_check(std::uint32_t lock, Tid t) {
  SpinLock& l = locks_[lock];
  for (auto& w : l.waiters) {
    if (w.tid != t) continue;
    w.cross_ev = {};
    if (w.reported) return;
    if (threads_[t]->act.kind != ActKind::kSpin) return;  // defensive
    if (vcpus_[threads_[t]->vcpu].online) {
      w.reported = true;
      if (observer_) observer_->on_over_threshold();
    } else {
      // The spinner itself is descheduled; the report fires as soon as it
      // executes its spin loop again (activate()).
      w.report_pending = true;
    }
    return;
  }
}

void GuestKernel::grant_to_waiter(std::uint32_t lock, std::size_t idx) {
  SpinLock& l = locks_[lock];
  SpinWaiter w = std::move(l.waiters[idx]);
  l.waiters.erase(l.waiters.begin() +
                  static_cast<std::ptrdiff_t>(idx));
  l.owner = w.tid;
  if (w.cross_ev.valid()) sim_.cancel(w.cross_ev);
  Thread& th = *threads_[w.tid];
  assert(th.act.kind == ActKind::kSpin);
  th.act.kind = ActKind::kNone;
  const Cycles waited = sim_.now() - w.since;
  record_spin_wait(waited);
  note_trace(sim::TraceCat::kLock, "t" + std::to_string(w.tid) +
                                       " acquired " + l.name + " after " +
                                       sim::format_cycles(waited));
  w.acquired(waited);
}

void GuestKernel::lock_release(Tid t, std::uint32_t lock) {
  SpinLock& l = locks_[lock];
  assert(l.owner == t);
  (void)t;
  l.owner = kNoTid;
  // Grant to the longest-waiting spinner that is actually executing its
  // spin loop (i.e. whose VCPU is online). Offline spinners cannot observe
  // the release — they contend again when they come back online.
  std::size_t best = l.waiters.size();
  for (std::size_t i = 0; i < l.waiters.size(); ++i) {
    const SpinWaiter& w = l.waiters[i];
    if (!vcpus_[threads_[w.tid]->vcpu].online) continue;
    if (best == l.waiters.size() || w.since < l.waiters[best].since) best = i;
  }
  if (best < l.waiters.size()) grant_to_waiter(lock, best);
}

// --- futex / sleep-wake -----------------------------------------------------------

void GuestKernel::block_current(Tid t, Cont on_wake) {
  Thread& th = *threads_[t];
  assert(th.act.kind == ActKind::kNone);
  VcpuCtx& c = vcpus_[th.vcpu];
  assert(c.current == t && !c.in_irq);
  th.state = TState::kBlocked;
  th.wake_cont = std::move(on_wake);
  c.current = kNoTid;
  if (c.quantum_ev.valid()) {
    sim_.cancel(c.quantum_ev);
    c.quantum_ev = {};
  }
  if (c.online) schedule_vcpu(th.vcpu);
}

void GuestKernel::make_ready(Tid t) {
  Thread& th = *threads_[t];
  assert(th.state == TState::kBlocked);
  th.state = TState::kReady;
  VcpuCtx& c = vcpus_[th.vcpu];
  c.runq.push_back(t);
  if (c.idle_ev.valid()) {
    sim_.cancel(c.idle_ev);
    c.idle_ev = {};
  }
  if (c.halted) {
    c.halted = false;
    hv_.vcpu_kick(vm_id_, th.vcpu);
    return;
  }
  if (c.online) {
    if (c.current == kNoTid && !c.in_irq) {
      schedule_vcpu(th.vcpu);
    } else if (!c.quantum_ev.valid() && c.current != kNoTid) {
      arm_quantum(th.vcpu);
    }
  }
}

void GuestKernel::futex_wait(Tid t, std::uint32_t fq, Cont on_wake,
                             const std::function<bool()>& still_needed) {
  ++stats_.futex_waits;
  burn(t, cfg_.syscall_entry, false, [this, t, fq, on_wake, still_needed] {
    lock_acquire(t, futexes_[fq].bucket_lock,
                 [this, t, fq, on_wake, still_needed](Cycles) {
      burn(t, cfg_.futex_enqueue_hold, true,
           [this, t, fq, on_wake, still_needed] {
        FutexQ& q = futexes_[fq];
        if (!still_needed()) {
          // The condition changed while we were entering the kernel
          // (futex value re-check): do not sleep.
          lock_release(t, q.bucket_lock);
          burn(t, Cycles{200}, false, on_wake);
          return;
        }
        q.sleepers.push_back(t);
        lock_release(t, q.bucket_lock);
        // Descheduling takes the thread's own runqueue lock (schedule()):
        // this lock is also taken by remote wakers, so a holder preempted
        // here stalls wake-ups for the whole VCPU.
        const std::uint32_t rq = rq_locks_[threads_[t]->vcpu];
        lock_acquire(t, rq, [this, t, rq, on_wake](Cycles) {
          burn(t, cfg_.rq_wake_hold, true, [this, t, rq, on_wake] {
            lock_release(t, rq);
            block_current(t, on_wake);
          });
        });
      });
    });
  });
}

void GuestKernel::futex_wake(Tid t, std::uint32_t fq, std::uint32_t n,
                             Cont done) {
  ++stats_.futex_wakes;
  burn(t, cfg_.syscall_entry, false, [this, t, fq, n, done] {
    lock_acquire(t, futexes_[fq].bucket_lock,
                 [this, t, fq, n, done](Cycles) {
      FutexQ& q = futexes_[fq];
      const std::size_t k =
          std::min<std::size_t>(n, q.sleepers.size());
      const Cycles hold =
          cfg_.futex_wake_base +
          Cycles{cfg_.futex_wake_per_thread.v * k};
      burn(t, hold, true, [this, t, fq, k, done] {
        FutexQ& q2 = futexes_[fq];
        std::vector<Tid> woken(q2.sleepers.begin(),
                               q2.sleepers.begin() +
                                   static_cast<std::ptrdiff_t>(k));
        q2.sleepers.erase(q2.sleepers.begin(),
                          q2.sleepers.begin() +
                              static_cast<std::ptrdiff_t>(k));
        lock_release(t, q2.bucket_lock);
        wake_chain(t, std::move(woken), 0, done);
      });
    });
  });
}

void GuestKernel::wake_chain(Tid waker, std::vector<Tid> woken, std::size_t i,
                             Cont done) {
  if (i == woken.size()) {
    done();
    return;
  }
  const Tid w = woken[i];
  const std::uint32_t rq = rq_locks_[threads_[w]->vcpu];
  lock_acquire(waker, rq,
               [this, waker, woken = std::move(woken), i, done, w,
                rq](Cycles) mutable {
    burn(waker, cfg_.rq_wake_hold, true,
         [this, waker, woken = std::move(woken), i, done, w, rq]() mutable {
      lock_release(waker, rq);
      make_ready(w);
      wake_chain(waker, std::move(woken), i + 1, done);
    });
  });
}

// --- guest scheduling -------------------------------------------------------------

void GuestKernel::schedule_vcpu(std::uint32_t v) {
  VcpuCtx& c = vcpus_[v];
  assert(c.online);
  if (c.current != kNoTid || c.in_irq) return;
  if (c.runq.empty()) {
    idle_check(v);
    return;
  }
  const Tid t = c.runq.front();
  c.runq.pop_front();
  Thread& th = *threads_[t];
  assert(th.state == TState::kReady);
  th.state = TState::kCurrent;
  c.current = t;
  ++stats_.context_switches;
  arm_quantum(v);
  if (th.act.kind != ActKind::kNone) {
    activate(t);
    return;
  }
  if (th.wake_cont) {
    Cont cont = std::move(th.wake_cont);
    th.wake_cont = nullptr;
    cont();
    return;
  }
  next_op(t);
}

void GuestKernel::idle_check(std::uint32_t v) {
  VcpuCtx& c = vcpus_[v];
  if (c.idle_ev.valid()) return;
  c.idle_ev = sim_.after(cfg_.idle_grace, [this, v] {
    VcpuCtx& cc = vcpus_[v];
    cc.idle_ev = {};
    if (cc.online && !cc.in_irq && cc.current == kNoTid && cc.runq.empty() &&
        !cc.halted) {
      cc.halted = true;
      note_trace(sim::TraceCat::kGuest, "vcpu" + std::to_string(v) + " halt");
      hv_.vcpu_block(vm_id_, v);
    }
  });
}

void GuestKernel::arm_quantum(std::uint32_t v) {
  VcpuCtx& c = vcpus_[v];
  if (c.quantum_ev.valid()) {
    sim_.cancel(c.quantum_ev);
    c.quantum_ev = {};
  }
  if (c.runq.empty()) return;  // sole thread: no need to round-robin
  c.quantum_ev = sim_.after(cfg_.rr_quantum, [this, v] {
    vcpus_[v].quantum_ev = {};
    preempt_quantum(v);
  });
}

void GuestKernel::preempt_quantum(std::uint32_t v) {
  VcpuCtx& c = vcpus_[v];
  if (!c.online || c.current == kNoTid) return;
  Thread& th = *threads_[c.current];
  const bool in_kernel =
      c.in_irq || (th.act.kind == ActKind::kSpin) ||
      (th.act.kind == ActKind::kBurn && th.act.kernel);
  if (in_kernel) {
    c.need_resched = true;
    return;
  }
  const Tid t = c.current;
  deactivate(t);
  th.state = TState::kReady;
  c.runq.push_back(t);
  c.current = kNoTid;
  schedule_vcpu(v);
}

void GuestKernel::arm_tick(std::uint32_t v) {
  VcpuCtx& c = vcpus_[v];
  if (c.tick_ev.valid()) {
    sim_.cancel(c.tick_ev);
    c.tick_ev = {};
  }
  if (c.tick_due < sim_.now()) c.tick_due = sim_.now();
  c.tick_ev = sim_.at(c.tick_due, [this, v] {
    vcpus_[v].tick_ev = {};
    run_tick(v);
  });
}

void GuestKernel::run_tick(std::uint32_t v) {
  VcpuCtx& c = vcpus_[v];
  if (!c.online) return;
  c.tick_due = sim_.now() + cfg_.tick_period;
  arm_tick(v);
  ++c.ticks;
  ++stats_.ticks;
  if (c.in_irq) return;  // coalesce: a tick is already being handled
  const Tid cur = c.current;
  const bool in_kernel =
      cur != kNoTid &&
      ((threads_[cur]->act.kind == ActKind::kSpin) ||
       (threads_[cur]->act.kind == ActKind::kBurn && threads_[cur]->act.kernel));
  if (in_kernel) {
    // Interrupts are masked inside kernel critical sections; deliver when
    // the section ends.
    c.tick_pending = true;
    return;
  }
  c.tick_pending = false;
  enter_tick_irq(v);
}

void GuestKernel::enter_tick_irq(std::uint32_t v) {
  VcpuCtx& c = vcpus_[v];
  if (c.current != kNoTid) deactivate(c.current);
  c.in_irq = true;
  const Tid irq = c.irq_tid;
  const Cont finish = [this, v] {
    VcpuCtx& cc = vcpus_[v];
    cc.in_irq = false;
    if (cc.current != kNoTid) {
      activate(cc.current);
    } else if (cc.online) {
      schedule_vcpu(v);
    }
    maybe_deliver_pending(v);
  };
  // Tick handler: bookkeeping, then the timer lock (xtime_lock — a real
  // kernel spinlock shared by every VCPU of the VM, so a preempted tick
  // handler strands all of them), then every Nth tick a load-balance pass
  // that takes a *remote* runqueue lock (Linux 2.6 rebalance_tick).
  burn(irq, cfg_.tick_overhead, true, [this, v, irq, finish] {
    lock_acquire(irq, timer_lock_, [this, v, irq, finish](Cycles) {
      burn(irq, cfg_.tick_lock_hold, true, [this, v, irq, finish] {
        lock_release(irq, timer_lock_);
        VcpuCtx& cc = vcpus_[v];
        const bool balance = cfg_.n_vcpus > 1 &&
                             cfg_.balance_every_ticks != 0 &&
                             cc.ticks % cfg_.balance_every_ticks == 0;
        if (!balance) {
          finish();
          return;
        }
        const std::uint32_t victim = static_cast<std::uint32_t>(
            (v + 1 + cc.ticks / cfg_.balance_every_ticks) % cfg_.n_vcpus);
        const std::uint32_t target = victim == v ? (v + 1) % cfg_.n_vcpus
                                                 : victim;
        const std::uint32_t rq = rq_locks_[target];
        lock_acquire(irq, rq, [this, irq, rq, finish](Cycles) {
          burn(irq, cfg_.balance_hold, true, [this, irq, rq, finish] {
            lock_release(irq, rq);
            finish();
          });
        });
      });
    });
  });
}

void GuestKernel::tick_wake(std::uint32_t v) {
  VcpuCtx& c = vcpus_[v];
  c.tick_wake_ev = {};
  if (c.online) return;
  // Pre-tickless guests wake even idle VCPUs for the timer interrupt; the
  // kick only has an effect if the VCPU was halted (a capped-out VCPU stays
  // parked — the VMM enforces shares regardless of guest timers).
  hv_.vcpu_kick(vm_id_, v);
}

void GuestKernel::maybe_deliver_pending(std::uint32_t v) {
  VcpuCtx& c = vcpus_[v];
  if (!c.online || c.in_irq) return;
  const Tid cur = c.current;
  const bool in_kernel =
      cur != kNoTid && threads_[cur]->act.kind != ActKind::kNone &&
      ((threads_[cur]->act.kind == ActKind::kSpin) || threads_[cur]->act.kernel);
  if (in_kernel) return;
  if (c.tick_pending) {
    c.tick_pending = false;
    enter_tick_irq(v);
    return;
  }
  if (c.need_resched) {
    c.need_resched = false;
    preempt_quantum(v);
  }
}

// --- VMM callbacks -------------------------------------------------------------------

void GuestKernel::vcpu_online(std::uint32_t v) {
  if (v >= vcpus_.size()) {
    // A VCPU hot-added past our configured width (resize_vm growth): this
    // kernel has no runnable work for it, so park it (deferred — the VMM is
    // mid-dispatch when this callback fires).
    sim_.after(Cycles{1'000}, [this, v] { hv_.vcpu_block(vm_id_, v); });
    return;
  }
  VcpuCtx& c = vcpus_[v];
  assert(!c.online);
  c.online = true;
  c.halted = false;
  if (c.tick_wake_ev.valid()) {
    sim_.cancel(c.tick_wake_ev);
    c.tick_wake_ev = {};
  }
  if (c.tick_due.v == 0) c.tick_due = sim_.now() + cfg_.tick_period;
  arm_tick(v);
  if (c.in_irq) {
    activate(c.irq_tid);
    return;
  }
  if (c.current != kNoTid) {
    activate(c.current);
    if (!c.quantum_ev.valid()) arm_quantum(v);
    return;
  }
  schedule_vcpu(v);
}

void GuestKernel::vcpu_offline(std::uint32_t v) {
  if (v >= vcpus_.size()) return;  // hot-added VCPU we never tracked
  VcpuCtx& c = vcpus_[v];
  assert(c.online);
  c.online = false;
  if (c.tick_ev.valid()) {
    sim_.cancel(c.tick_ev);
    c.tick_ev = {};
  }
  // Schedule the timer-interrupt wake-up for the next tick deadline.
  if (!c.tick_wake_ev.valid()) {
    const Cycles due = c.tick_due < sim_.now() ? sim_.now() : c.tick_due;
    c.tick_wake_ev = sim_.at(due, [this, v] { tick_wake(v); });
  }
  if (c.quantum_ev.valid()) {
    sim_.cancel(c.quantum_ev);
    c.quantum_ev = {};
  }
  if (c.idle_ev.valid()) {
    sim_.cancel(c.idle_ev);
    c.idle_ev = {};
  }
  if (c.in_irq) {
    deactivate(c.irq_tid);
  } else if (c.current != kNoTid) {
    deactivate(c.current);
  }
}

// --- operations ------------------------------------------------------------------------

void GuestKernel::next_op(Tid t) {
  Thread& th = *threads_[t];
  if (th.state != TState::kCurrent) return;  // defensive
  exec_op(t, th.prog->next());
}

void GuestKernel::exec_op(Tid t, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kCompute:
      burn(t, op.len, false, [this, t] { next_op(t); });
      return;
    case Op::Kind::kCritical:
      op_critical(t, op.obj, op.len);
      return;
    case Op::Kind::kBarrier:
      op_barrier(t, op.obj);
      return;
    case Op::Kind::kSemWait:
      op_sem_wait(t, op.obj);
      return;
    case Op::Kind::kSemPost:
      op_sem_post(t, op.obj);
      return;
    case Op::Kind::kSleep:
      op_sleep(t, op.len);
      return;
    case Op::Kind::kDone:
      retire(t);
      return;
  }
}

void GuestKernel::op_sleep(Tid t, Cycles len) {
  // nanosleep-style timer wait: enter the kernel, block, and let the timer
  // wake us after `len` of wall time.
  burn(t, cfg_.syscall_entry, false, [this, t, len] {
    sim_.after(len, [this, t] {
      if (threads_[t]->state == TState::kBlocked) make_ready(t);
    });
    block_current(t, [this, t] { next_op(t); });
  });
}

void GuestKernel::op_critical(Tid t, std::uint32_t mtx, Cycles hold) {
  // User-space fast path: one atomic attempt, then the futex slow path.
  burn(t, Cycles{120}, false, [this, t, mtx, hold] {
    Mutex& m = mutexes_[mtx];
    if (!m.locked) {
      m.locked = true;
      burn(t, hold, false, [this, t, mtx] {
        mutex_unlock(t, mtx, [this, t] { next_op(t); });
      });
      return;
    }
    // Contended: sleep in the kernel and retry on wake (futex loop).
    struct Retry {
      GuestKernel* k;
      Tid t;
      std::uint32_t mtx;
      Cycles hold;
      void operator()() const {
        Mutex& m2 = k->mutexes_[mtx];
        if (!m2.locked) {
          m2.locked = true;
          GuestKernel* kk = k;
          Tid tt = t;
          std::uint32_t mm = mtx;
          kk->burn(tt, hold, false, [kk, tt, mm] {
            kk->mutex_unlock(tt, mm, [kk, tt] { kk->next_op(tt); });
          });
          return;
        }
        k->futex_wait(t, m2.fq, Retry{*this},
                      [k2 = k, mtx2 = mtx] { return k2->mutexes_[mtx2].locked; });
      }
    };
    Retry{this, t, mtx, hold}();
  });
}

void GuestKernel::mutex_unlock(Tid t, std::uint32_t mtx, Cont done) {
  burn(t, Cycles{100}, false, [this, t, mtx, done] {
    Mutex& m = mutexes_[mtx];
    m.locked = false;
    if (!futexes_[m.fq].sleepers.empty()) {
      futex_wake(t, m.fq, 1, done);
    } else {
      done();
    }
  });
}

void GuestKernel::op_barrier(Tid t, std::uint32_t bar) {
  ++stats_.barrier_arrivals;
  burn(t, Cycles{150}, false, [this, t, bar] {
    Barrier& b = barriers_[bar];
    if (++b.arrived == b.parties) {
      b.arrived = 0;
      ++b.generation;
      barrier_release(t, b, [this, t] { next_op(t); });
      return;
    }
    const std::uint64_t g = b.generation;
    b.spinners.push_back(
        Barrier::Spinner{t, g, [this, t] { next_op(t); }});
    barrier_spin_loop(t, bar, g, Cycles{0});
  });
}

// Spin-then-block wait with sched_yield cadence: the waiter spins in user
// space for spin_yield_period, enters the kernel to yield (runqueue lock),
// re-checks the release flag, and repeats until the spin budget is gone --
// then it sleeps on the barrier futex. A waiter whose VCPU is preempted
// inside a yield holds the runqueue lock across the offline span (LHP).
void GuestKernel::barrier_spin_loop(Tid t, std::uint32_t bar,
                                    std::uint64_t gen, Cycles spun) {
  Barrier& b = barriers_[bar];
  const auto drop_record = [this, t, bar] {
    Barrier& bb = barriers_[bar];
    auto it = std::find_if(
        bb.spinners.begin(), bb.spinners.end(),
        [t](const Barrier::Spinner& s) { return s.tid == t; });
    if (it != bb.spinners.end()) bb.spinners.erase(it);
  };
  if (b.generation != gen) {
    // Released while we were inside the kernel part of the loop; the
    // releaser could not repurpose our spin burn then, so we exit here.
    drop_record();
    burn(t, Cycles{150}, false, [this, t] { next_op(t); });
    return;
  }
  if (!b.spin_only && spun >= cfg_.user_spin_limit) {
    drop_record();
    ++stats_.barrier_kernel_sleeps;
    futex_wait(t, b.fq, [this, t] { next_op(t); },
               [this, bar, gen] { return barriers_[bar].generation == gen; });
    return;
  }
  burn(t, cfg_.spin_yield_period, false, [this, t, bar, gen, spun] {
    if (barriers_[bar].generation != gen) {
      barrier_spin_loop(t, bar, gen, spun);  // takes the released path
      return;
    }
    // sched_yield: kernel entry + own runqueue lock, and (with an empty
    // local runqueue) an idle_balance probe of a remote runqueue lock.
    const std::uint32_t self_v = threads_[t]->vcpu;
    const std::uint32_t rq = rq_locks_[self_v];
    const std::uint64_t yield_no = spun.v / cfg_.spin_yield_period.v;
    const bool probe_remote =
        cfg_.n_vcpus > 1 && cfg_.yield_balance_every != 0 &&
        yield_no % cfg_.yield_balance_every == 0;
    std::uint32_t remote_rq = rq;
    if (probe_remote) {
      const std::uint32_t target = static_cast<std::uint32_t>(
          (self_v + 1 + yield_no / cfg_.yield_balance_every) % cfg_.n_vcpus);
      remote_rq = rq_locks_[target == self_v ? (self_v + 1) % cfg_.n_vcpus
                                             : target];
    }
    const Cont continue_spin = [this, t, bar, gen, spun] {
      barrier_spin_loop(t, bar, gen, spun + cfg_.spin_yield_period);
    };
    hv_.vcpu_yield_hint(vm_id_, threads_[t]->vcpu);
    burn(t, cfg_.syscall_entry, false,
         [this, t, rq, remote_rq, probe_remote, continue_spin] {
      lock_acquire(t, rq, [this, t, rq, remote_rq, probe_remote,
                           continue_spin](Cycles) {
        burn(t, cfg_.yield_hold, true, [this, t, rq, remote_rq, probe_remote,
                                        continue_spin] {
          lock_release(t, rq);
          if (!probe_remote || remote_rq == rq) {
            yield_cpu(t, continue_spin);
            return;
          }
          lock_acquire(t, remote_rq,
                       [this, t, remote_rq, continue_spin](Cycles) {
            burn(t, cfg_.balance_hold, true, [this, t, remote_rq,
                                              continue_spin] {
              lock_release(t, remote_rq);
              yield_cpu(t, continue_spin);
            });
          });
        });
      });
    });
  });
}

void GuestKernel::yield_cpu(Tid t, Cont resume) {
  Thread& th = *threads_[t];
  VcpuCtx& c = vcpus_[th.vcpu];
  assert(c.current == t && th.act.kind == ActKind::kNone);
  if (c.runq.empty()) {
    resume();  // nothing else to run: yield is a no-op
    return;
  }
  th.state = TState::kReady;
  th.wake_cont = std::move(resume);
  c.runq.push_back(t);
  c.current = kNoTid;
  if (c.quantum_ev.valid()) {
    sim_.cancel(c.quantum_ev);
    c.quantum_ev = {};
  }
  if (c.online) schedule_vcpu(th.vcpu);
}

void GuestKernel::barrier_release(Tid t, Barrier& b, Cont done) {
  // Wake user-level spinners: those inside their user-space spin chunk
  // observe the flag immediately (their burn is repurposed); those inside
  // the kernel part of the yield notice at the next loop check.
  std::vector<Barrier::Spinner> leftover;
  std::vector<Barrier::Spinner> spinners;
  spinners.swap(b.spinners);
  for (auto& s : spinners) {
    Thread& th = *threads_[s.tid];
    if (th.act.kind == ActKind::kBurn && !th.act.kernel) {
      repurpose_burn(s.tid, Cycles{120}, std::move(s.resume));
    } else {
      leftover.push_back(std::move(s));
    }
  }
  // Threads mid-yield keep their records until their own generation check
  // removes them (they may also time out into futex_wait, whose
  // still_needed re-check fails and lets them through).
  b.spinners = std::move(leftover);
  if (!futexes_[b.fq].sleepers.empty()) {
    futex_wake(t, b.fq, static_cast<std::uint32_t>(-1), std::move(done));
  } else {
    burn(t, Cycles{100}, false, std::move(done));
  }
}

void GuestKernel::op_sem_wait(Tid t, std::uint32_t s) {
  burn(t, cfg_.syscall_entry, false, [this, t, s] {
    Semaphore& sem = semaphores_[s];
    lock_acquire(t, futexes_[sem.fq].bucket_lock,
                 [this, t, s](Cycles lock_wait) {
      burn(t, Cycles{300}, true, [this, t, s, lock_wait] {
        Semaphore& sem2 = semaphores_[s];
        FutexQ& q = futexes_[sem2.fq];
        // The reported semaphore waiting time is the CPU consumed by the
        // down() path itself: a blocked sleeper releases its VCPU so the
        // sleep span is not CPU waiting, and a contended *spinlock* stall
        // inside the path is attributed to the spinlock histogram, not to
        // the semaphore (this is why the paper finds blocking primitives
        // virtualization-tolerant; see DESIGN.md).
        Cycles path = cfg_.syscall_entry + Cycles{300};
        path += lock_wait < Cycles{2'000} ? lock_wait : Cycles{2'000};
        stats_.sem_waits.add(path);
        if (sem2.count > 0) {
          --sem2.count;
          lock_release(t, q.bucket_lock);
          burn(t, Cycles{150}, false, [this, t] { next_op(t); });
          return;
        }
        q.sleepers.push_back(t);
        lock_release(t, q.bucket_lock);
        const std::uint32_t rq = rq_locks_[threads_[t]->vcpu];
        lock_acquire(t, rq, [this, t, rq](Cycles) {
          burn(t, cfg_.rq_wake_hold, true, [this, t, rq] {
            lock_release(t, rq);
            block_current(t, [this, t] { next_op(t); });
          });
        });
      });
    });
  });
}

void GuestKernel::op_sem_post(Tid t, std::uint32_t s) {
  burn(t, cfg_.syscall_entry, false, [this, t, s] {
    Semaphore& sem = semaphores_[s];
    lock_acquire(t, futexes_[sem.fq].bucket_lock, [this, t, s](Cycles) {
      burn(t, Cycles{300}, true, [this, t, s] {
        Semaphore& sem2 = semaphores_[s];
        FutexQ& q = futexes_[sem2.fq];
        if (!q.sleepers.empty()) {
          const Tid w = q.sleepers.front();
          q.sleepers.erase(q.sleepers.begin());
          lock_release(t, q.bucket_lock);
          // Direct handoff: the count stays zero and the sleeper proceeds.
          lock_acquire(t, rq_locks_[threads_[w]->vcpu],
                       [this, t, w](Cycles) {
            burn(t, cfg_.rq_wake_hold, true, [this, t, w] {
              lock_release(t, rq_locks_[threads_[w]->vcpu]);
              make_ready(w);
              next_op(t);
            });
          });
          return;
        }
        ++sem2.count;
        lock_release(t, q.bucket_lock);
        next_op(t);
      });
    });
  });
}

void GuestKernel::retire(Tid t) {
  Thread& th = *threads_[t];
  assert(th.state == TState::kCurrent);
  th.state = TState::kDone;
  th.finish_time = sim_.now();
  last_finish_ = sim_.now();
  ++done_count_;
  VcpuCtx& c = vcpus_[th.vcpu];
  c.current = kNoTid;
  if (c.quantum_ev.valid()) {
    sim_.cancel(c.quantum_ev);
    c.quantum_ev = {};
  }
  note_trace(sim::TraceCat::kGuest, "t" + std::to_string(t) + " done");
  if (all_threads_done() && all_done_) {
    Cont cb = std::move(all_done_);
    all_done_ = nullptr;
    cb();
  }
  if (c.online) schedule_vcpu(th.vcpu);
}

}  // namespace asman::guest

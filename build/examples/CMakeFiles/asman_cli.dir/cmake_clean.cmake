file(REMOVE_RECURSE
  "CMakeFiles/asman_cli.dir/asman_cli.cpp.o"
  "CMakeFiles/asman_cli.dir/asman_cli.cpp.o.d"
  "asman_cli"
  "asman_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asman_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

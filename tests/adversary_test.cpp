// Adversarial-tenancy tests (docs/MODEL.md "Threat model & fairness
// guarantees"): the attacks work against the faithful-vulnerable
// scheduler, the hardened defense stack bounds every attack to epsilon of
// fair share with a clean audit, and both sides are bit-reproducible.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "experiments/adversary.h"

namespace asman::experiments {
namespace {

using workloads::AttackKind;

const core::SchedulerKind kSchedulers[] = {core::SchedulerKind::kCredit,
                                           core::SchedulerKind::kAsman,
                                           core::SchedulerKind::kCon};

RunResult run_audited(Scenario sc) {
  sc.audit = true;
  return run_scenario(sc);
}

// The arXiv 1103.0759 cycle stealer against tick-sampled accounting: the
// attacker must measurably exceed its weighted fair share, and the theft
// counters must name the mechanism (unattributed cycles, dodged samples).
TEST(AdversaryAttacks, TickDodgeStealsUnhardened) {
  for (core::SchedulerKind sk : kSchedulers) {
    const RunResult rr = run_scenario(
        adversary_scenario(sk, AttackKind::kTickDodge, /*hardened=*/false, 7));
    const VmResult& att = rr.vm("Attacker");
    EXPECT_GE(att.observed_online_rate, kAttackerFairShare + 0.10)
        << core::to_string(sk);
    EXPECT_GT(att.theft_cycles, 0u);
    EXPECT_GT(att.dodged_samples, 0u);
    EXPECT_GT(rr.theft_cycles, 0u);
    // The dodger eats what would have been the victim's share.
    EXPECT_LT(rr.vm("Victim").observed_online_rate, 0.45);
  }
}

// Randomizing the sampling offsets alone (no exact accounting) already
// breaks the dodger's grid model: share and theft both collapse.
TEST(AdversaryAttacks, SampleJitterMitigatesTickDodge) {
  for (core::SchedulerKind sk : kSchedulers) {
    Scenario soft =
        adversary_scenario(sk, AttackKind::kTickDodge, /*hardened=*/false, 7);
    Scenario mitigated = soft;
    apply_mitigated_sampling(mitigated);
    const RunResult rs = run_scenario(soft);
    const RunResult rm = run_scenario(mitigated);
    EXPECT_LT(rm.vm("Attacker").observed_online_rate,
              rs.vm("Attacker").observed_online_rate - 0.10)
        << core::to_string(sk);
    EXPECT_LT(rm.theft_cycles, rs.theft_cycles / 4);
  }
}

// The headline guarantee: with the full defense stack on, every attack
// class against every scheduler stays within kFairnessEpsilon of its fair
// share, steals nothing, and the run audits clean under the new
// cycle-conservation invariant.
TEST(AdversaryHardening, EveryAttackBoundedWithCleanAudit) {
  for (AttackKind a : workloads::kAllAttacks) {
    for (core::SchedulerKind sk : kSchedulers) {
      const RunResult rr = run_audited(
          adversary_scenario(sk, a, /*hardened=*/true, 7));
      SCOPED_TRACE(std::string(workloads::to_string(a)) + " vs " +
                   core::to_string(sk));
      EXPECT_LE(rr.vm("Attacker").observed_online_rate,
                kAttackerFairShare + kFairnessEpsilon);
      EXPECT_EQ(rr.theft_cycles, 0u);
      EXPECT_EQ(rr.dodged_samples, 0u);
      EXPECT_GT(rr.audit_checks, 0u);
      EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
      // The honest tenants get their shares back.
      EXPECT_GE(rr.vm("Victim").observed_online_rate, 0.40);
      EXPECT_GT(rr.fairness_periods, 0u);
    }
  }
}

// Theft arithmetic: theft == max(0, consumed - attributed) per VM;
// tick-sampled attribution is quantized to whole slots; exact accounting
// attributes every consumed cycle.
TEST(AdversaryCounters, TheftArithmeticAndQuantization) {
  Scenario soft = adversary_scenario(core::SchedulerKind::kAsman,
                                     AttackKind::kTickDodge,
                                     /*hardened=*/false, 7);
  const std::uint64_t slot = soft.machine.slot_cycles().v;
  const RunResult rs = run_scenario(soft);
  for (const VmResult& v : rs.vms) {
    const std::uint64_t expect =
        v.cycles_consumed > v.cycles_attributed
            ? v.cycles_consumed - v.cycles_attributed
            : 0;
    EXPECT_EQ(v.theft_cycles, expect) << v.name;
    EXPECT_EQ(v.cycles_attributed % slot, 0u) << v.name;
  }

  const RunResult rh = run_scenario(adversary_scenario(
      core::SchedulerKind::kAsman, AttackKind::kTickDodge,
      /*hardened=*/true, 7));
  for (const VmResult& v : rh.vms) {
    EXPECT_EQ(v.cycles_attributed, v.cycles_consumed) << v.name;
    EXPECT_EQ(v.theft_cycles, 0u) << v.name;
  }
}

// The BOOST limiter: the farm harvests thousands of free grants from the
// vulnerable scheduler; hardened, the window cap converts the excess into
// counted denials.
TEST(AdversaryHardening, BoostFarmRateLimited) {
  for (core::SchedulerKind sk :
       {core::SchedulerKind::kCredit, core::SchedulerKind::kAsman}) {
    const RunResult rs = run_scenario(
        adversary_scenario(sk, AttackKind::kBoostFarm, /*hardened=*/false, 7));
    const RunResult rh = run_scenario(
        adversary_scenario(sk, AttackKind::kBoostFarm, /*hardened=*/true, 7));
    EXPECT_GT(rs.boost_grants, 1000u) << core::to_string(sk);
    EXPECT_EQ(rs.boost_denials, 0u);
    EXPECT_GT(rh.boost_denials, 0u);
    EXPECT_LT(rh.boost_grants, rs.boost_grants / 4);
    EXPECT_GT(rh.vm("Attacker").boost_denials, 0u);
  }
}

// The VCRD plausibility clamp: the liar's HIGH claims are rejected (no
// yield stream to back them), while the honest NPB gang — whose barrier
// spins emit real yield hints — keeps its coscheduling service.
TEST(AdversaryHardening, VcrdLiarCaughtHonestGangServed) {
  for (core::SchedulerKind sk :
       {core::SchedulerKind::kAsman, core::SchedulerKind::kCon}) {
    const RunResult rr = run_scenario(
        adversary_scenario(sk, AttackKind::kVcrdLie, /*hardened=*/true, 7));
    EXPECT_GT(rr.implausible_vcrds, 0u) << core::to_string(sk);
    EXPECT_GT(rr.vm("Attacker").implausible_vcrds, 0u);
    EXPECT_EQ(rr.vm("Gang").implausible_vcrds, 0u);
    EXPECT_GT(rr.cosched_events, 0u);
  }
}

// Bit-reproducibility: the same (scheduler, attack, hardening, seed)
// quadruple yields identical results — including under the seeded random
// sampling offsets, whose draws come from the hypervisor's own stream.
TEST(AdversaryDeterminism, BitReproduciblePerSeed) {
  auto fingerprint = [](const RunResult& rr) {
    std::string fp;
    char buf[256];
    for (const VmResult& v : rr.vms) {
      std::snprintf(buf, sizeof buf, "%s %a %llu %llu %llu %llu|", v.name.c_str(),
                    v.observed_online_rate,
                    static_cast<unsigned long long>(v.cycles_consumed),
                    static_cast<unsigned long long>(v.cycles_attributed),
                    static_cast<unsigned long long>(v.dodged_samples),
                    static_cast<unsigned long long>(v.boost_grants));
      fp += buf;
    }
    std::snprintf(buf, sizeof buf, "e=%llu m=%llu f=%a %a",
                  static_cast<unsigned long long>(rr.events),
                  static_cast<unsigned long long>(rr.migrations),
                  rr.fairness_min, rr.fairness_mean);
    fp += buf;
    return fp;
  };
  for (bool hardened : {false, true}) {
    Scenario a = adversary_scenario(core::SchedulerKind::kAsman,
                                    AttackKind::kTickDodge, hardened, 42);
    if (!hardened) apply_mitigated_sampling(a);  // exercise the jitter RNG
    Scenario b = a;
    EXPECT_EQ(fingerprint(run_scenario(a)), fingerprint(run_scenario(b)))
        << (hardened ? "hardened" : "mitigated");
  }
}

// The worst case the soak harness sweeps: attack + chaos faults +
// lifecycle churn on the hardened host. The defense stack must keep the
// attacker bounded and the audit clean through all of it.
TEST(AdversaryComposition, SurvivesChurnAndChaos) {
  const RunResult rr = run_audited(adversary_churn_chaos_scenario(
      core::SchedulerKind::kAsman, AttackKind::kTickDodge,
      ChaosClass::kEverything, 11));
  EXPECT_LE(rr.vm("Attacker").observed_online_rate,
            kAttackerFairShare + kFairnessEpsilon);
  EXPECT_EQ(rr.theft_cycles, 0u);
  EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
  EXPECT_EQ(rr.vm_creates, 1u);
  EXPECT_EQ(rr.vm_destroys, 1u);
  EXPECT_EQ(rr.vm_resizes, 2u);
}

}  // namespace
}  // namespace asman::experiments

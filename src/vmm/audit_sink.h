// Audit seam of the VMM scheduler.
//
// The hypervisor notifies an installed AuditSink at the end of every
// scheduler entry point (post-state, where its invariants must hold), on
// every individual VCPU lifecycle transition, and once per VM during credit
// accounting with the exact minted amount. The production implementation is
// audit::Auditor (src/audit/); the seam lives here so the VMM never depends
// on the audit library. When the build is configured with -DASMAN_AUDIT=OFF
// the notification calls compile to nothing (see hypervisor.h).
#pragma once

#include <cstdint>

#include "vmm/types.h"

namespace asman::vmm {

/// Which scheduler entry point just completed (or, for kAccountingBegin,
/// is about to mutate credit state).
enum class AuditPoint : std::uint8_t {
  kStart,            // Hypervisor::start() finished its initial dispatch
  kTick,             // end of a per-PCPU slot tick
  kAccountingBegin,  // do_accounting() about to redistribute credit
  kAccountingEnd,    // credit assignment + post-accounting dispatch done
  kVcrdOp,           // do_vcrd_op hypercall (incl. any relocation) done
  kBlock,            // vcpu_block hypercall done
  kKick,             // vcpu_kick hypercall done
  kIpi,              // coscheduling IPI handler done
  kHotplug,          // PCPU offline/online (incl. evacuation) done
  kFault,            // other fault-injection entry point (VCPU crash) done
  kLifecycle,        // hot create_vm / destroy_vm / resize_vm done
};

const char* to_string(AuditPoint p);

class AuditSink {
 public:
  virtual ~AuditSink() = default;

  /// A scheduler entry point completed; all invariants must hold now.
  virtual void on_sched_event(AuditPoint p) = 0;

  /// VCPU `k` legally moves `from` -> `to` exactly when the pair is one of
  /// Runnable->Running, Running->Runnable, Runnable->Blocked,
  /// Blocked->Runnable, Runnable->Destroyed, Blocked->Destroyed (see
  /// VcpuState; a running VCPU is first unmapped, so Running->Destroyed
  /// never fires directly).
  virtual void on_state_change(VcpuKey k, VcpuState from, VcpuState to) = 0;

  /// Credit accounting granted `minted` milli-credits to `vm` this period
  /// (0 for VMs outside the active set; dead VMs are skipped entirely).
  /// Fired after the VM's credits were rewritten but before the
  /// scheduler's on_accounting hook runs.
  virtual void on_accounting(VmId vm, std::int64_t minted) = 0;

  /// A VM was hot-created (`vm` is its id; its VCPUs are kRunnable and
  /// already queued). Fired before the kLifecycle sched event so sinks can
  /// extend per-VM tracking structures first. Default: ignore.
  virtual void on_vm_created(VmId vm) { (void)vm; }

  /// A live VM's VCPU count changed via resize_vm. For growth the new
  /// VCPUs are kRunnable and queued; for shrinkage the drained records are
  /// already gone (their ->Destroyed transitions fired beforehand).
  /// Default: ignore.
  virtual void on_vm_resized(VmId vm) { (void)vm; }

  /// Algorithm 3's relocation just re-placed `vm`'s VCPUs (fired at the
  /// end of relocate_vm, flat or topology-aware). The topology-placement
  /// invariant is event-scoped to these instants: between relocations,
  /// members legally drift via wakes and steals. Default: ignore.
  virtual void on_relocated(VmId vm) { (void)vm; }

  /// The contention engine just finished an accounting-period pass: every
  /// VCPU's busy cycles up to now are split into effective + degraded and
  /// the per-LLC occupancy partition in Hypervisor::pressure_last() is
  /// current. Sinks recompute the partition from authoritative state and
  /// compare (pressure-conservation invariant). Default: ignore.
  virtual void on_contention() {}

  /// Live migration seeded `vm`'s credit from the transferred pool
  /// (seed_credit: truncating equal split clamped to the saturation cap).
  /// Unlike on_accounting this is not a delta against a snapshot — the
  /// sink re-verifies the whole split from `pool`, the authoritative
  /// amount the source host released. Default: ignore.
  virtual void on_seeded(VmId vm, __int128 pool) {
    (void)vm;
    (void)pool;
  }
};

}  // namespace asman::vmm

#include "vmm/hypervisor.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <numeric>
#include <utility>

namespace asman::vmm {

namespace {
std::string key_str(VcpuKey k) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "v%u.%u", k.vm, k.idx);
  return buf;
}
}  // namespace

const char* to_string(AuditPoint p) {
  switch (p) {
    case AuditPoint::kStart:
      return "start";
    case AuditPoint::kTick:
      return "tick";
    case AuditPoint::kAccountingBegin:
      return "accounting-begin";
    case AuditPoint::kAccountingEnd:
      return "accounting-end";
    case AuditPoint::kVcrdOp:
      return "vcrd-op";
    case AuditPoint::kBlock:
      return "block";
    case AuditPoint::kKick:
      return "kick";
    case AuditPoint::kIpi:
      return "ipi";
  }
  return "?";
}

Hypervisor::Hypervisor(sim::Simulator& simulation,
                       const hw::MachineConfig& machine, SchedMode mode,
                       sim::Trace* trace, std::uint64_t seed)
    : sim_(simulation),
      machine_(machine),
      mode_(mode),
      trace_(trace),
      rng_(seed ^ 0xA5A5A5A5ULL),
      ipi_(simulation, machine),
      pcpus_(machine.num_pcpus),
      slot_len_(machine.slot_cycles()),
      timeslice_len_(machine.timeslice_cycles()),
      credit_cap_(2 * static_cast<Credit>(machine.slots_per_accounting) *
                  kCreditPerSlot) {
  for (PcpuId p = 0; p < machine_.num_pcpus; ++p) {
    pcpus_[p].idle_since = sim_.now();
    ipi_.set_handler(p, [this](PcpuId target, std::uint32_t vector) {
      ipi_handler(target, vector);
    });
  }
}

VmId Hypervisor::create_vm(std::string name, std::uint32_t weight,
                           std::uint32_t n_vcpus, VmType type) {
  assert(!started_ && "create VMs before start()");
  assert(weight > 0 && n_vcpus > 0);
  const VmId id = static_cast<VmId>(vms_.size());
  auto v = std::make_unique<Vm>();
  v->id = id;
  v->name = std::move(name);
  v->weight = weight;
  v->type = type;
  v->vcpus.resize(n_vcpus);
  for (std::uint32_t i = 0; i < n_vcpus; ++i) {
    Vcpu& c = v->vcpus[i];
    c.key = VcpuKey{id, i};
    c.state = VcpuState::kRunnable;
    // Spread VCPUs round-robin over PCPUs, offset per VM so equally sized
    // VMs do not all pile onto the low-numbered queues.
    c.where = static_cast<PcpuId>((id + i) % machine_.num_pcpus);
    pcpus_[c.where].runq.push(&c);
  }
  vms_.push_back(std::move(v));
  return id;
}

void Hypervisor::attach_guest(VmId id, GuestPort* guest) {
  assert(!started_);
  vm(id).guest = guest;
}

void Hypervisor::start() {
  assert(!started_);
  started_ = true;
  in_scheduler_ = true;
  do_accounting();
  for (PcpuId i = 0; i < machine_.num_pcpus; ++i)
    dispatch((dispatch_start_ + i) % machine_.num_pcpus);
  dispatch_start_ = (dispatch_start_ + 1) % machine_.num_pcpus;
  in_scheduler_ = false;
  // Per-PCPU ticks, staggered across the slot like real Xen's independent
  // per-PCPU timers; the stagger is what lets a capped VM's VCPUs park and
  // unpark at different instants.
  for (PcpuId p = 0; p < machine_.num_pcpus; ++p) {
    const Cycles phase{slot_len_.v * (p + 1) / machine_.num_pcpus};
    sim_.after(phase, [this, p] { pcpu_tick(p); });
  }
  sim_.after(machine_.accounting_cycles(), [this] { accounting_event(); });
  audit_event(AuditPoint::kStart);
}

double Hypervisor::weight_proportion(VmId id) const {
  std::uint64_t total = 0;
  for (const auto& v : vms_) total += v->weight;
  return total == 0 ? 0.0
                    : static_cast<double>(vm(id).weight) /
                          static_cast<double>(total);
}

double Hypervisor::nominal_online_rate(VmId id) const {
  const Vm& v = vm(id);
  return static_cast<double>(machine_.num_pcpus) * weight_proportion(id) /
         static_cast<double>(v.num_vcpus());
}

bool Hypervisor::vcpu_is_online(VmId id, std::uint32_t vidx) const {
  return vm(id).vcpus[vidx].state == VcpuState::kRunning;
}

std::uint32_t Hypervisor::vm_online_count(VmId id) const {
  std::uint32_t n = 0;
  for (const Vcpu& c : vm(id).vcpus)
    if (c.state == VcpuState::kRunning) ++n;
  return n;
}

Cycles Hypervisor::pcpu_idle_total(PcpuId p) const {
  const PcpuRec& pc = pcpus_[p];
  Cycles t = pc.idle_total;
  if (pc.current == nullptr) t += sim_.now() - pc.idle_since;
  return t;
}

void Hypervisor::note_trace(sim::TraceCat cat, std::string msg) {
  if (trace_) trace_->emit(sim_.now(), cat, std::move(msg));
}

// --- credit machinery ------------------------------------------------------

void Hypervisor::burn(Vcpu& v, Cycles elapsed) {
  // Online-time accounting only; credit is debited separately by charge().
  v.total_online += elapsed;
  vm(v.key.vm).total_online += elapsed;
}

void Hypervisor::charge(Vcpu& v, Cycles elapsed) {
  if (elapsed.v == 0) return;
  const double p = std::min(1.0, static_cast<double>(elapsed.v) /
                                     static_cast<double>(slot_len_.v));
  if (rng_.next_double() < p)
    v.credit = std::max<Credit>(v.credit - kCreditPerSlot, -credit_cap_);
}

void Hypervisor::do_accounting() {
  audit_event(AuditPoint::kAccountingBegin);
  // Active set (work-conserving mode only, like Xen's csched_acct): credit
  // is divided among VMs that actually consumed CPU last period. Without
  // this, an idle VM's share is minted, capped away, and effectively
  // charged to the busy VMs, which all sink to -cap and erase the
  // UNDER/OVER distinction the dispatcher relies on. In the capped
  // (non-work-conserving) mode the paper's Equations (1)-(2) explicitly
  // include every VM's weight, so there the full set is used.
  const Cycles min_active{machine_.accounting_cycles().v / 100};
  std::uint64_t total_weight = 0;
  std::vector<bool> active(vms_.size(), true);
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    Vm& v = *vms_[i];
    if (mode_ == SchedMode::kWorkConserving && slots_elapsed() > 0) {
      // Active = wants to run (a queued-but-starved VM must keep earning,
      // or starvation would cut its income and become permanent) or ran.
      bool runnable = false;
      for (const Vcpu& c : v.vcpus)
        if (c.state != VcpuState::kBlocked) {
          runnable = true;
          break;
        }
      active[i] =
          runnable || (v.total_online - v.online_at_last_acct) > min_active;
    }
    v.online_at_last_acct = v.total_online;
    if (active[i]) total_weight += v.weight;
  }
  if (total_weight == 0) {
    for (std::size_t i = 0; i < vms_.size(); ++i) {
      active[i] = true;
      total_weight += vms_[i]->weight;
    }
  }
  if (total_weight == 0) return;
  // Algorithm 3: Cred_total = |P| x Cred_unit x K, split by weight, spread
  // equally over each VM's VCPUs, capped so idle VMs cannot hoard. Like
  // Xen's csched_acct, the VM's residual credit is pooled and redistributed
  // equally among its VCPUs, so intra-VM divergence (from the quantized
  // tick charging) is erased every accounting period while inter-VM
  // proportions are preserved.
  const Credit total = static_cast<Credit>(machine_.num_pcpus) *
                       kCreditPerSlot * machine_.slots_per_accounting;
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    Vm& v = *vms_[i];
    const Credit inc =
        active[i]
            ? static_cast<Credit>((static_cast<__int128>(total) * v.weight) /
                                  total_weight)
            : 0;
    Credit pool = inc;
    for (const Vcpu& c : v.vcpus) pool += c.credit;
    const Credit per = pool / static_cast<Credit>(v.num_vcpus());
    for (Vcpu& c : v.vcpus) c.credit = std::min<Credit>(per, credit_cap_);
    audit_minted(v.id, inc);
    on_accounting(v);
  }
  note_trace(sim::TraceCat::kCredit, "accounting done");
}

// --- map / unmap ------------------------------------------------------------

void Hypervisor::go_online(PcpuId p, Vcpu* v) {
  PcpuRec& pc = pcpus_[p];
  assert(pc.current == nullptr);
  assert(v->state == VcpuState::kRunnable);
  if (pc.idle_marked) {
    pc.idle_total += sim_.now() - pc.idle_since;
    pc.idle_marked = false;
  }
  pc.current = v;
  v->state = VcpuState::kRunning;
  v->where = p;
  v->online_since = sim_.now();
  v->slice_start = sim_.now();
  ++v->dispatches;
  ++context_switches_;
  audit_transition(v->key, VcpuState::kRunnable, VcpuState::kRunning);
  note_trace(sim::TraceCat::kSched, key_str(v->key) + " online on P" +
                                        std::to_string(p));
  Vm& owner = vm(v->key.vm);
  if (owner.guest) owner.guest->vcpu_online(v->key.idx);
}

Vcpu* Hypervisor::unmap_current(PcpuId p) {
  PcpuRec& pc = pcpus_[p];
  Vcpu* v = pc.current;
  assert(v != nullptr);
  const Cycles elapsed = sim_.now() - v->online_since;
  burn(*v, elapsed);
  charge(*v, elapsed);
  pc.current = nullptr;
  v->state = VcpuState::kRunnable;
  audit_transition(v->key, VcpuState::kRunning, VcpuState::kRunnable);
  note_trace(sim::TraceCat::kSched, key_str(v->key) + " offline from P" +
                                        std::to_string(p));
  Vm& owner = vm(v->key.vm);
  if (owner.guest) owner.guest->vcpu_offline(v->key.idx);
  return v;
}

void Hypervisor::go_offline(PcpuId p) {
  Vcpu* v = unmap_current(p);
  pcpus_[p].runq.push(v);
}

bool Hypervisor::is_schedulable(const Vcpu& v) const {
  // A cosched boost overrides credit parking: the per-VM credit pool pays
  // for the aligned burst at the next accounting, so VM-level shares hold.
  return mode_ == SchedMode::kWorkConserving || v.credit >= 0 ||
         v.cosched_boost;
}

bool Hypervisor::would_collide(VmId vm_id, PcpuId p) const {
  const PcpuRec& pc = pcpus_[p];
  if (pc.current && pc.current->key.vm == vm_id) return true;
  if (pc.runq.has_vm(vm_id)) return true;
  // Blocked siblings count too: their `where` is the wake-up home Algorithm
  // 3 assigned, and a steal onto it would silently undo the pairwise-
  // distinct placement the moment the sibling kicks awake.
  for (const Vcpu& c : vm(vm_id).vcpus)
    if (c.state == VcpuState::kBlocked && c.where == p) return true;
  return false;
}

// --- dispatch (Algorithm 4) -------------------------------------------------

Vcpu* Hypervisor::steal_for(PcpuId p, bool allow_over) {
  Vcpu* best = nullptr;
  PcpuId src = 0;
  for (PcpuId q = 0; q < machine_.num_pcpus; ++q) {
    if (q == p) continue;
    for (Vcpu* v : pcpus_[q].runq.entries()) {
      if (!allow_over && static_cast<int>(v->prio_class()) >
                             static_cast<int>(PrioClass::kUnder))
        continue;
      if (v->cosched_boost) continue;  // an IPI promised it to its queue
      if (wants_cosched(vm(v->key.vm)) && would_collide(v->key.vm, p))
        continue;
      if (best == nullptr || RunQueue::better(v, best)) {
        best = v;
        src = q;
      }
    }
  }
  if (best) {
    pcpus_[src].runq.remove(best);
    best->where = p;
    ++best->migrations;
    ++migrations_;
  }
  return best;
}

void Hypervisor::dispatch(PcpuId p) {
  PcpuRec& pc = pcpus_[p];
  Vcpu* cur = pc.current;
  if (cur && !is_schedulable(*cur)) {
    // Algorithm 4 line 2: out of credit in the capped mode -> deschedule
    // (and co-stop its gang — a half-present gang only spins).
    preempt_current(p);
    cur = nullptr;
  }

  // Keep-current rule (Xen): the current VCPU continues over a queued
  // candidate of a strictly lower class, and over a same-class candidate
  // until its round-robin timeslice (30 ms) expires.
  const auto prefer_current = [this](const Vcpu* c, const Vcpu* q) {
    if (q == nullptr) return true;
    const int cc = static_cast<int>(c->prio_class());
    const int cq = static_cast<int>(q->prio_class());
    if (cc != cq) return cc < cq;
    return sim_.now() - c->slice_start < timeslice_len_;
  };

  // Pass 1: boost/UNDER candidates only (stolen work preferred over idling).
  Vcpu* cand = pc.runq.best(/*allow_over=*/false);
  Vcpu* cur_under = (cur && static_cast<int>(cur->prio_class()) <=
                                static_cast<int>(PrioClass::kUnder))
                        ? cur
                        : nullptr;
  Vcpu* choice = nullptr;
  bool stolen = false;
  if (cur_under && prefer_current(cur_under, cand))
    choice = cur_under;
  else if (cand)
    choice = cand;
  if (choice == nullptr) {
    choice = steal_for(p, /*allow_over=*/false);
    stolen = choice != nullptr;
  }

  // Pass 2 (work-conserving only): OVER fallback, local then remote.
  if (choice == nullptr && mode_ == SchedMode::kWorkConserving) {
    Vcpu* cand_o = pc.runq.best(/*allow_over=*/true);
    if (cur && prefer_current(cur, cand_o))
      choice = cur;
    else if (cand_o)
      choice = cand_o;
    if (choice == nullptr) {
      choice = steal_for(p, /*allow_over=*/true);
      stolen = choice != nullptr;
    }
  }

  if (choice == nullptr) {
    if (cur) go_offline(p);
    if (pc.current == nullptr && !pc.idle_marked) {
      pc.idle_marked = true;
      pc.idle_since = sim_.now();
    }
    return;
  }

  if (choice != cur) {
    // Secure the choice before any co-stop cascade can re-dispatch other
    // PCPUs (they must not steal it from under us).
    if (!stolen) {
      const bool removed = pc.runq.remove(choice);
      assert(removed);
      (void)removed;
    }
    if (cur) preempt_current(p);
    go_online(p, choice);
  }

  // Algorithm 4 lines 5-7: the head of a coscheduled VM triggers IPIs for
  // its siblings; the mutex admits one launcher per scheduling-event
  // instant (per-PCPU ticks at distinct times are distinct events).
  // Strict mode drops the paper's per-VCPU "credit >= 0" gate: with per-VM
  // credit pooling the meaningful entitlement is the VM's, and co-stop
  // enforces it — any legitimately dispatched member launches, otherwise a
  // member picked from spare (OVER) capacity in work-conserving mode would
  // run alone for up to an accounting period. Relaxed mode has no co-stop
  // backstop, so it keeps the paper's gate (an ungated boost would
  // self-sustain and starve other VMs).
  const bool entitled = strictness_ == Strictness::kStrict
                            ? true
                            : choice->credit >= 0;
  if (entitled && wants_cosched(vm(choice->key.vm)) &&
      cosched_mutex_at_ != sim_.now()) {
    cosched_mutex_at_ = sim_.now();
    ++cosched_events_;
    launch_cosched(p, *choice);
  }
}

void Hypervisor::refresh_cosched_boost(Vcpu& v, bool weak) {
  v.cosched_boost = true;
  v.cosched_weak = weak;
  if (v.cosched_clear_ev.valid()) sim_.cancel(v.cosched_clear_ev);
  v.cosched_clear_ev = sim_.after(slot_len_, [this, &v] {
    v.cosched_boost = false;
    v.cosched_clear_ev = {};
  });
}

void Hypervisor::preempt_current(PcpuId p) {
  Vcpu* cur = pcpus_[p].current;
  assert(cur != nullptr);
  Vm& owner = vm(cur->key.vm);
  go_offline(p);
  if (strictness_ == Strictness::kStrict && !in_co_stop_ &&
      wants_cosched(owner))
    co_stop(owner);
}

void Hypervisor::co_stop(Vm& v) {
  if (in_co_stop_) return;
  in_co_stop_ = true;
  ++co_stops_;
  note_trace(sim::TraceCat::kCosched, v.name + " co-stop");
  for (Vcpu& w : v.vcpus) {
    if (w.cosched_clear_ev.valid()) {
      sim_.cancel(w.cosched_clear_ev);
      w.cosched_clear_ev = {};
    }
    w.cosched_boost = false;
    w.cosched_weak = false;
  }
  // Deschedule every running member and let each PCPU re-pick: if the gang
  // is still the best claimant it resumes whole (and the head re-launches
  // boosts); otherwise it stops whole.
  for (Vcpu& w : v.vcpus) {
    if (w.state != VcpuState::kRunning) continue;
    const PcpuId p = w.where;
    go_offline(p);
    dispatch(p);
    if (pcpus_[p].current == nullptr && !pcpus_[p].idle_marked) {
      pcpus_[p].idle_marked = true;
      pcpus_[p].idle_since = sim_.now();
    }
  }
  in_co_stop_ = false;
}

void Hypervisor::launch_cosched(PcpuId from, Vcpu& head) {
  Vm& gang = vm(head.key.vm);
  // A launch from an entitled head (credit >= 0) is "strong": its IPIs may
  // preempt whatever runs on the siblings' PCPUs, and the gang's OVER tail
  // (a still-strongly-boosted head, paid from the VM's credit pool until
  // co-stop) keeps re-launching strong. A launch from an *unboosted* head
  // dispatched out of spare (OVER) capacity — work-conserving mode only —
  // is "weak": it aligns the gang on capacity nobody entitled is using,
  // but must not displace UNDER VCPUs of other VMs.
  const bool strong =
      head.credit >= 0 || (head.cosched_boost && !head.cosched_weak);
  ++(strong ? strong_launches_ : weak_launches_);
  note_trace(sim::TraceCat::kCosched,
             "cosched launch " + gang.name + " from P" + std::to_string(from) +
                 (strong ? " (strong)" : " (weak)"));
  const std::uint32_t vector = gang.id * 2 + (strong ? 1u : 0u);
  for (Vcpu& w : gang.vcpus) {
    if (&w == &head) continue;
    if (w.state == VcpuState::kBlocked) continue;  // idle in the guest
    if (w.state == VcpuState::kRunning) {
      // Already online: refresh its boost so the gang stays intact.
      refresh_cosched_boost(w, !strong);
      continue;
    }
    ipi_.send(from, w.where, vector);
  }
}

void Hypervisor::ipi_handler(PcpuId target, std::uint32_t vector) {
  const VmId vm_id = vector / 2;
  const bool strong = (vector & 1u) != 0;
  // Find the gang member this IPI was aimed at; it may have been dispatched
  // or migrated during the bus latency, in which case there is nothing to do.
  PcpuRec& pc = pcpus_[target];
  Vcpu* sib = nullptr;
  for (Vcpu* v : pc.runq.entries()) {
    if (v->key.vm != vm_id) continue;
    if (sib == nullptr || RunQueue::better(v, sib)) sib = v;
  }
  if (sib == nullptr) return;
  if (pc.current != nullptr) {
    if (pc.current->key.vm == vm_id) return;  // gang already online here
    if (pc.current->prio_class() == PrioClass::kCosched)
      return;  // never preempt another gang's boosted member
    if (!strong && pc.current->credit >= 0)
      return;  // weak (spare-capacity) boosts never displace UNDER VCPUs
    // Secure the sibling before preempting: the victim's co-stop cascade
    // re-dispatches other PCPUs, which must not steal it from under us.
    pc.runq.remove(sib);
    in_scheduler_ = true;
    preempt_current(target);
    in_scheduler_ = false;
    if (pc.current != nullptr) {
      pc.runq.push(sib);  // the cascade refilled this PCPU
      audit_event(AuditPoint::kIpi);
      return;
    }
  } else {
    pc.runq.remove(sib);
  }
  refresh_cosched_boost(*sib, !strong);
  in_scheduler_ = true;
  go_online(target, sib);
  in_scheduler_ = false;
  note_trace(sim::TraceCat::kCosched,
             key_str(sib->key) + " cosched-boosted on P" +
                 std::to_string(target));
  audit_event(AuditPoint::kIpi);
}

void Hypervisor::pcpu_tick(PcpuId p) {
  in_scheduler_ = true;
  PcpuRec& pc = pcpus_[p];
  ++pc.ticks;
  // Wake boosts last until the next scheduling event on the holding PCPU.
  // Cosched boosts expire on their own one-slot timer and are refreshed by
  // the gang head's scheduling events, so a live gang sustains itself.
  if (pc.current) pc.current->wake_boost = false;
  for (Vcpu* v : pc.runq.entries()) v->wake_boost = false;
  // Account online time and charge whoever is running at the tick.
  if (pc.current) {
    const Cycles elapsed = sim_.now() - pc.current->online_since;
    burn(*pc.current, elapsed);
    charge(*pc.current, elapsed);
    pc.current->online_since = sim_.now();
  }
  // Co-stop check: a gang whose last member ran out of credit is
  // descheduled as a unit (boosted or not — unboosted heads parking one by
  // one would leave partial gangs spinning on absent peers).
  if (strictness_ == Strictness::kStrict && pc.current &&
      pc.current->credit < 0) {
    Vm& owner = vm(pc.current->key.vm);
    if (wants_cosched(owner)) {
      bool any_entitled = false;
      for (const Vcpu& w : owner.vcpus)
        if (w.credit >= 0) {
          any_entitled = true;
          break;
        }
      if (!any_entitled) co_stop(owner);
    }
  }
  dispatch(p);
  in_scheduler_ = false;
  audit_event(AuditPoint::kTick);
  sim_.after(slot_len_, [this, p] { pcpu_tick(p); });
}

void Hypervisor::accounting_event() {
  in_scheduler_ = true;
  do_accounting();
  // Newly topped-up (unparked) VCPUs may be waiting while PCPUs idle.
  for (PcpuId i = 0; i < machine_.num_pcpus; ++i) {
    const PcpuId p = (dispatch_start_ + i) % machine_.num_pcpus;
    if (pcpus_[p].current == nullptr) dispatch(p);
  }
  dispatch_start_ = (dispatch_start_ + 1) % machine_.num_pcpus;
  in_scheduler_ = false;
  audit_event(AuditPoint::kAccountingEnd);
  sim_.after(machine_.accounting_cycles(), [this] { accounting_event(); });
}

// --- hypercalls --------------------------------------------------------------

void Hypervisor::do_vcrd_op(VmId id, Vcrd vcrd) {
  if (in_scheduler_) {
    sim_.after(Cycles{0}, [this, id, vcrd] { do_vcrd_op(id, vcrd); });
    return;
  }
  Vm& v = vm(id);
  if (v.vcrd == vcrd) return;
  const Vcrd previous = v.vcrd;
  v.vcrd = vcrd;
  if (vcrd == Vcrd::kHigh) {
    ++v.vcrd_high_transitions;
    v.vcrd_high_since = sim_.now();
  } else {
    v.vcrd_high_time += sim_.now() - v.vcrd_high_since;
  }
  note_trace(sim::TraceCat::kMonitor,
             v.name + " VCRD -> " + to_string(vcrd));
  on_vcrd_changed(v, previous);
  audit_event(AuditPoint::kVcrdOp);
}

void Hypervisor::vcpu_block(VmId id, std::uint32_t vidx) {
  if (in_scheduler_) {
    sim_.after(Cycles{0}, [this, id, vidx] { vcpu_block(id, vidx); });
    return;
  }
  Vcpu& v = vm(id).vcpus[vidx];
  switch (v.state) {
    case VcpuState::kBlocked:
      return;
    case VcpuState::kRunning: {
      const PcpuId p = v.where;
      in_scheduler_ = true;
      Vcpu* u = unmap_current(p);
      u->state = VcpuState::kBlocked;
      audit_transition(u->key, VcpuState::kRunnable, VcpuState::kBlocked);
      dispatch(p);
      if (pcpus_[p].current == nullptr && !pcpus_[p].idle_marked) {
        pcpus_[p].idle_marked = true;
        pcpus_[p].idle_since = sim_.now();
      }
      in_scheduler_ = false;
      audit_event(AuditPoint::kBlock);
      return;
    }
    case VcpuState::kRunnable: {
      const bool removed = pcpus_[v.where].runq.remove(&v);
      assert(removed);
      (void)removed;
      v.state = VcpuState::kBlocked;
      audit_transition(v.key, VcpuState::kRunnable, VcpuState::kBlocked);
      audit_event(AuditPoint::kBlock);
      return;
    }
  }
}

void Hypervisor::vcpu_kick(VmId id, std::uint32_t vidx) {
  if (in_scheduler_) {
    sim_.after(Cycles{0}, [this, id, vidx] { vcpu_kick(id, vidx); });
    return;
  }
  Vcpu& v = vm(id).vcpus[vidx];
  if (v.state != VcpuState::kBlocked) return;
  v.state = VcpuState::kRunnable;
  audit_transition(v.key, VcpuState::kBlocked, VcpuState::kRunnable);
  v.wake_boost = v.credit > 0;  // Xen-style BOOST only for UNDER VCPUs
  const PcpuId home = v.where;
  pcpus_[home].runq.push(&v);
  in_scheduler_ = true;
  Vcpu* cur = pcpus_[home].current;
  if (cur == nullptr) {
    dispatch(home);
  } else if (v.wake_boost && static_cast<int>(v.prio_class()) <
                                 static_cast<int>(cur->prio_class())) {
    preempt_current(home);
    dispatch(home);
  }
  in_scheduler_ = false;
  audit_event(AuditPoint::kKick);
}

// --- Algorithm 3 lines 8-16 ---------------------------------------------------

void Hypervisor::relocate_vm(Vm& v) {
  std::vector<bool> claimed(machine_.num_pcpus, false);
  // Running VCPUs pin their PCPU.
  for (const Vcpu& c : v.vcpus)
    if (c.state == VcpuState::kRunning) claimed[c.where] = true;
  for (Vcpu& c : v.vcpus) {
    if (c.state == VcpuState::kRunning) continue;
    if (!claimed[c.where]) {
      claimed[c.where] = true;
      continue;
    }
    // Choose the least-loaded unclaimed PCPU (lowest id breaks ties).
    PcpuId dest = machine_.num_pcpus;
    std::size_t best_load = 0;
    for (PcpuId p = 0; p < machine_.num_pcpus; ++p) {
      if (claimed[p]) continue;
      const std::size_t load = pcpus_[p].runq.size();
      if (dest == machine_.num_pcpus || load < best_load) {
        dest = p;
        best_load = load;
      }
    }
    if (dest == machine_.num_pcpus) break;  // more VCPUs than PCPUs
    if (c.state == VcpuState::kRunnable) {
      const bool removed = pcpus_[c.where].runq.remove(&c);
      assert(removed);
      (void)removed;
      pcpus_[dest].runq.push(&c);
      ++c.migrations;
      ++migrations_;
    }
    c.where = dest;  // blocked VCPUs just get a new wake-up home
    claimed[dest] = true;
  }
  note_trace(sim::TraceCat::kCosched, v.name + " relocated");
}

}  // namespace asman::vmm

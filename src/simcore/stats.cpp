#include "simcore/stats.h"

namespace asman::sim {

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) return samples.front();
  if (p >= 100.0) return samples.back();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

}  // namespace asman::sim

// Out-of-VM VCRD inference (the paper's §7 future work, implemented).
//
// ASMan's Monitoring Module lives inside the guest kernel, which requires
// modifying it. The paper closes by asking whether the VCRD can be
// monitored from *outside* the VM. It can: stock paravirtual kernels
// already emit SCHEDOP_yield hypercalls from their sched_yield path — the
// exact path spin-wait loops hammer — so the VMM can observe a VM's yield
// *rate* without touching the guest. A concurrent workload stuck in
// virtualization-disrupted synchronization yields at kHz rates; compute
// phases and throughput workloads barely yield at all.
//
// HwAdaptiveScheduler drives the VCRD from that signal: a sliding
// per-window yield-rate estimate with hysteresis raises the VM to HIGH
// when the rate crosses `high_yields_per_ms` and drops it after
// `low_windows_to_drop` consecutive quiet windows. Everything downstream
// (relocation, Algorithm-4 gangs, co-start/co-stop, credit pooling) is
// shared with the in-guest ASMan.
#pragma once

#include <cstdint>
#include <vector>

#include "vmm/hypervisor.h"

namespace asman::core {

struct HwMonitorOptions {
  /// Evaluation window.
  sim::Cycles window{sim::kDefaultClock.from_ms(10)};
  /// Raise VCRD to HIGH when a VM's yield rate crosses this.
  double high_yields_per_ms{3.0};
  /// Candidate for dropping when the rate falls below this.
  double low_yields_per_ms{0.8};
  /// Consecutive quiet windows before HIGH -> LOW (hysteresis).
  std::uint32_t low_windows_to_drop{3};
};

class HwAdaptiveScheduler final : public vmm::Hypervisor {
 public:
  HwAdaptiveScheduler(sim::Simulator& simulation,
                      const hw::MachineConfig& machine, vmm::SchedMode mode,
                      sim::Trace* trace = nullptr, std::uint64_t seed = 0x5EED,
                      HwMonitorOptions options = {});

  /// PV yield notification — the whole out-of-VM signal.
  void vcpu_yield_hint(vmm::VmId vm, std::uint32_t vidx) override;

  std::uint64_t yield_hints() const { return total_hints_; }
  std::uint64_t evaluations() const { return evaluations_; }

 protected:
  bool wants_cosched(const vmm::Vm& v) const override {
    return v.vcrd == vmm::Vcrd::kHigh;
  }
  void on_vcrd_changed(vmm::Vm& v, vmm::Vcrd previous) override;
  void on_accounting(vmm::Vm& v) override;

 private:
  void evaluate();

  HwMonitorOptions opt_;
  std::vector<std::uint64_t> window_yields_;  // per VM, current window
  std::vector<std::uint32_t> quiet_windows_;  // per VM, consecutive
  bool eval_armed_{false};
  std::uint64_t total_hints_{0};
  std::uint64_t evaluations_{0};
};

}  // namespace asman::core

// Quickstart: the paper's headline experiment in ~40 lines of API use.
//
// Runs the LU benchmark (the paper's primary victim workload) in a 4-VCPU
// VM whose VCPU online rate is capped at 22.2 % (an EC2-small-like
// entitlement), under the stock Xen Credit scheduler and under ASMan, and
// prints run time, spinlock wait distribution and coscheduling activity.
//
//   $ ./quickstart
#include <cstdio>

#include "experiments/paper.h"
#include "experiments/tables.h"

using namespace asman;

int main() {
  using experiments::RunResult;
  namespace ex = asman::experiments;

  std::printf("LU (4 threads) in V1 @ 22.2%% VCPU online rate\n\n");

  experiments::TextTable table({"scheduler", "run time (s)",
                                "waits >2^20", "VCRD windows",
                                "cosched events", "online rate"});

  for (core::SchedulerKind k :
       {core::SchedulerKind::kCredit, core::SchedulerKind::kAsman,
        core::SchedulerKind::kAsmanHw, core::SchedulerKind::kCon}) {
    ex::Scenario sc = ex::single_vm_scenario(
        k, /*v1_weight=*/32,
        ex::npb_factory(workloads::NpbBenchmark::kLU));
    sc.keep_wait_samples = true;
    RunResult r = ex::run_scenario(sc);
    const ex::VmResult& v1 = r.vm("V1");
    table.add_row({core::to_string(k),
                   ex::fmt_f(v1.runtime_seconds, 2),
                   std::to_string(v1.stats.spin_waits.count_above(20)),
                   std::to_string(v1.vcrd_transitions),
                   std::to_string(r.cosched_events),
                   ex::fmt_pct(v1.observed_online_rate)});

    if (k == core::SchedulerKind::kCredit ||
        k == core::SchedulerKind::kAsman) {
      std::printf("%s spinlock wait histogram (log2 cycles):\n%s\n",
                  core::to_string(k),
                  v1.stats.spin_waits.render(10, 28).c_str());
    }
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Expected shape (paper Figs 1, 7, 8): under Credit the capped VM\n"
      "suffers lock-holder preemption - many waits above 2^20 cycles and a\n"
      "run time far beyond the 1/rate slowdown; ASMan detects them, raises\n"
      "the VCRD and coschedules the VCPUs, collapsing the wait tail.\n"
      "ASMan-HW gets most of that win with zero guest modification (VCRD\n"
      "inferred from PV yield rates); CON (static gangs) is the upper\n"
      "bound for a purely concurrent VM but taxes mixed tenants more.\n");
  return 0;
}

#include "experiments/topology.h"

#include "experiments/chaos.h"

namespace asman::experiments {

Scenario topology_scenario(core::SchedulerKind sched, std::uint64_t seed,
                           bool aware, std::uint32_t n_vms) {
  Scenario sc = chaos_base_scenario(sched, seed, n_vms);
  sc.machine.num_pcpus = 8;
  sc.machine.topology = hw::Topology::paper();
  sc.topology_aware = aware;
  return sc;
}

}  // namespace asman::experiments

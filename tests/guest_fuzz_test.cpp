// Robustness fuzz: random VCPU online/offline toggling (arbitrary VMM
// behaviour) over synchronizing workloads must never deadlock, crash, or
// violate the guest's accounting invariants.
#include <gtest/gtest.h>

#include "guest_test_util.h"
#include "workloads/phase_model.h"
#include "workloads/synthetic.h"

namespace asman::guest {
namespace {

using testutil::TestHv;

class GuestFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GuestFuzz, BarrierWorkloadSurvivesArbitraryScheduling) {
  sim::Simulator s;
  TestHv hv(4);
  GuestKernel::Config cfg;  // full machinery: ticks, balancing, yields
  cfg.n_vcpus = 4;
  cfg.seed = GetParam();
  GuestKernel g(s, hv, 0, cfg);
  hv.bind(&g);
  workloads::PhaseParams p;
  p.threads = 4;
  p.steps = 60;
  p.compute_mean = sim::kDefaultClock.from_us(80);
  p.compute_cv = 0.3;
  workloads::PhaseWorkload wl(s, "fuzz", p, GetParam());
  wl.deploy(g);
  for (std::uint32_t v = 0; v < 4; ++v) hv.map(v);

  sim::Rng rng(GetParam() ^ 0xF00D);
  // Random preempt/dispatch storm, including long stretches offline.
  for (int i = 0; i < 800 && !g.all_threads_done(); ++i) {
    s.run_until(s.now() + sim::Cycles{rng.uniform(5'000, 900'000)});
    const auto v = static_cast<std::uint32_t>(rng.next_below(4));
    if (rng.bernoulli(0.5)) {
      hv.unmap(v);
    } else {
      hv.map(v);
    }
  }
  // Finally bring everyone online and let it finish.
  for (std::uint32_t v = 0; v < 4; ++v) hv.map(v);
  testutil::run_guest(s, g, 60.0);
  ASSERT_TRUE(g.all_threads_done())
      << "workload deadlocked under adversarial scheduling";
  // Accounting invariants.
  EXPECT_EQ(g.threads_done(), g.num_threads());
  EXPECT_GT(g.stats().spin_acquisitions, 0u);
}

TEST_P(GuestFuzz, MutexWorkloadSurvivesArbitraryScheduling) {
  sim::Simulator s;
  TestHv hv(2);
  GuestKernel::Config cfg;
  cfg.n_vcpus = 2;
  cfg.seed = GetParam();
  GuestKernel g(s, hv, 0, cfg);
  hv.bind(&g);
  workloads::LockHammerWorkload wl(4, 60, sim::kDefaultClock.from_us(40),
                                   sim::kDefaultClock.from_us(15),
                                   GetParam());
  wl.deploy(g);
  hv.map(0);
  hv.map(1);
  sim::Rng rng(GetParam() ^ 0xBEEF);
  for (int i = 0; i < 500 && !g.all_threads_done(); ++i) {
    s.run_until(s.now() + sim::Cycles{rng.uniform(2'000, 400'000)});
    const auto v = static_cast<std::uint32_t>(rng.next_below(2));
    if (rng.bernoulli(0.5)) {
      hv.unmap(v);
    } else {
      hv.map(v);
    }
  }
  hv.map(0);
  hv.map(1);
  testutil::run_guest(s, g, 60.0);
  ASSERT_TRUE(g.all_threads_done());
}

TEST_P(GuestFuzz, SemaphorePingPongSurvivesArbitraryScheduling) {
  sim::Simulator s;
  TestHv hv(2);
  GuestKernel::Config cfg;
  cfg.n_vcpus = 2;
  cfg.seed = GetParam();
  GuestKernel g(s, hv, 0, cfg);
  hv.bind(&g);
  workloads::SemaphorePingPongWorkload wl(2, 150,
                                          sim::kDefaultClock.from_us(50),
                                          GetParam());
  wl.deploy(g);
  hv.map(0);
  hv.map(1);
  sim::Rng rng(GetParam() ^ 0xCAFE);
  for (int i = 0; i < 400 && !g.all_threads_done(); ++i) {
    s.run_until(s.now() + sim::Cycles{rng.uniform(2'000, 600'000)});
    const auto v = static_cast<std::uint32_t>(rng.next_below(2));
    // Never force-offline a halted VCPU's peer forever: toggle randomly.
    if (rng.bernoulli(0.5)) {
      hv.unmap(v);
    } else {
      hv.map(v);
    }
  }
  hv.map(0);
  hv.map(1);
  testutil::run_guest(s, g, 60.0);
  ASSERT_TRUE(g.all_threads_done());
  EXPECT_LT(g.stats().sem_waits.max_value(), sim::pow2_cycles(16));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuestFuzz,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace asman::guest

#include "simcore/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "simcore/rng.h"

namespace asman::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Cycles{30}, [&] { order.push_back(3); });
  q.schedule(Cycles{10}, [&] { order.push_back(1); });
  q.schedule(Cycles{20}, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule(Cycles{5}, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPendingReturnsTrueAndSkips) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(Cycles{5}, [&] { fired = true; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
  EXPECT_FALSE(q.cancel(id));  // double cancel
}

TEST(EventQueue, CancelFiredReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(Cycles{5}, [] {});
  q.pop_and_run();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{999}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(Cycles{5}, [] {});
  q.schedule(Cycles{9}, [] {});
  EXPECT_EQ(q.next_time(), Cycles{5});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), Cycles{9});
}

TEST(EventQueue, EmptyNextTimeIsMax) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), Cycles::max());
}

TEST(EventQueue, ReentrantScheduleFromCallback) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Cycles{1}, [&] {
    order.push_back(1);
    q.schedule(Cycles{2}, [&] { order.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(Cycles{1}, [] {});
  q.schedule(Cycles{2}, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop_and_run();
  EXPECT_EQ(q.size(), 0u);
}

class EventQueueRandomized : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EventQueueRandomized, MonotonicDeliveryUnderRandomLoad) {
  Rng rng(GetParam());
  EventQueue q;
  std::vector<Cycles> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 2000; ++i) {
    const Cycles t{rng.next_below(100'000)};
    ids.push_back(q.schedule(t, [&fired, t] { fired.push_back(t); }));
  }
  // Cancel a random third.
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3)
    cancelled += q.cancel(ids[i]) ? 1u : 0u;
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired.size(), 2000u - cancelled);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueRandomized,
                         ::testing::Values(1, 7, 99, 12345));

}  // namespace
}  // namespace asman::sim

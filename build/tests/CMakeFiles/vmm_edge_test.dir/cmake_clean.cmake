file(REMOVE_RECURSE
  "CMakeFiles/vmm_edge_test.dir/vmm_edge_test.cpp.o"
  "CMakeFiles/vmm_edge_test.dir/vmm_edge_test.cpp.o.d"
  "vmm_edge_test"
  "vmm_edge_test.pdb"
  "vmm_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmm_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for asman_vmm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hw_monitor_test.dir/hw_monitor_test.cpp.o"
  "CMakeFiles/hw_monitor_test.dir/hw_monitor_test.cpp.o.d"
  "hw_monitor_test"
  "hw_monitor_test.pdb"
  "hw_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

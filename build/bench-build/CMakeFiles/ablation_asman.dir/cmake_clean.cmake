file(REMOVE_RECURSE
  "../bench/ablation_asman"
  "../bench/ablation_asman.pdb"
  "CMakeFiles/ablation_asman.dir/ablation_asman.cpp.o"
  "CMakeFiles/ablation_asman.dir/ablation_asman.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_asman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "hw/memsys/contention.h"

#include <algorithm>

namespace asman::hw::memsys {

void compute_contention(const Topology& topo, std::uint64_t llc_bytes,
                        std::uint64_t socket_bw_bytes_per_s,
                        const std::vector<VmLoad>& vms, ContentionPass& out) {
  const std::uint32_t n_llcs = topo.num_llcs();
  const std::uint32_t n_sockets = topo.num_sockets();
  const std::size_t n_vms = vms.size();
  out.clear();
  out.llc_demand.assign(n_llcs, 0);
  out.llc_granted.assign(n_llcs, 0);
  out.socket_bw_demand.assign(n_sockets, 0);
  out.socket_bw_ppm.assign(n_sockets, 0);
  out.vm_llc_demand.assign(n_vms, std::vector<std::uint64_t>(n_llcs, 0));
  out.vm_llc_granted.assign(n_vms, std::vector<std::uint64_t>(n_llcs, 0));
  out.vm_llc_extra_miss.assign(n_vms, std::vector<std::uint32_t>(n_llcs, 0));

  // Demand: every VCPU parks its working-set share on its home LLC.
  for (std::size_t v = 0; v < n_vms; ++v) {
    const VmLoad& load = vms[v];
    if (load.fp == nullptr || load.fp->zero()) continue;
    const std::size_t n = load.vcpu_llc.size();
    if (n == 0) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t share = vcpu_ws_share(load.fp->working_set_bytes, n, i);
      out.llc_demand[load.vcpu_llc[i]] += share;
      out.vm_llc_demand[v][load.vcpu_llc[i]] += share;
    }
  }

  // Grant: under capacity everyone gets their demand; over capacity the
  // LLC is partitioned footprint-proportionally. Floor shares first, then
  // hand the remainder out largest-remainder-first (ties to the lowest VM
  // id) so Σ granted == capacity exactly and the order is deterministic.
  for (std::uint32_t l = 0; l < n_llcs; ++l) {
    const std::uint64_t total = out.llc_demand[l];
    if (total == 0) continue;
    if (total <= llc_bytes) {
      out.llc_granted[l] = total;
      for (std::size_t v = 0; v < n_vms; ++v)
        out.vm_llc_granted[v][l] = out.vm_llc_demand[v][l];
      continue;
    }
    out.llc_granted[l] = llc_bytes;
    std::uint64_t handed = 0;
    std::vector<std::pair<std::uint64_t, std::size_t>> rem;  // (remainder, vm)
    for (std::size_t v = 0; v < n_vms; ++v) {
      const std::uint64_t d = out.vm_llc_demand[v][l];
      if (d == 0) continue;
      const __int128 num = static_cast<__int128>(d) * llc_bytes;
      const auto floor_share = static_cast<std::uint64_t>(num / total);
      const auto remainder = static_cast<std::uint64_t>(num % total);
      out.vm_llc_granted[v][l] = floor_share;
      handed += floor_share;
      rem.emplace_back(remainder, v);
    }
    std::sort(rem.begin(), rem.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    std::uint64_t left = llc_bytes - handed;
    for (const auto& [remainder, v] : rem) {
      if (left == 0) break;
      (void)remainder;
      // A +1 byte top-up never exceeds the demand: floor < demand
      // whenever the remainder is nonzero, and zero-remainder entries
      // sort last (they only receive when left > 0 implies someone
      // rounded down).
      if (out.vm_llc_granted[v][l] < out.vm_llc_demand[v][l]) {
        ++out.vm_llc_granted[v][l];
        --left;
      }
    }
  }

  // Miss rates at achieved residency, then bandwidth demand: misses turn
  // into bus traffic, summed per socket.
  for (std::size_t v = 0; v < n_vms; ++v) {
    const VmLoad& load = vms[v];
    if (load.fp == nullptr || load.fp->zero()) continue;
    const std::size_t n = load.vcpu_llc.size();
    if (n == 0) continue;
    for (std::uint32_t l = 0; l < n_llcs; ++l) {
      const std::uint64_t d = out.vm_llc_demand[v][l];
      if (d == 0) continue;
      const auto resident = static_cast<std::uint32_t>(
          static_cast<__int128>(out.vm_llc_granted[v][l]) * 1000 / d);
      out.vm_llc_extra_miss[v][l] = load.fp->extra_miss_at(resident);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t l = load.vcpu_llc[i];
      const std::uint64_t d = out.vm_llc_demand[v][l];
      const std::uint32_t resident =
          d == 0 ? 1000
                 : static_cast<std::uint32_t>(
                       static_cast<__int128>(out.vm_llc_granted[v][l]) * 1000 /
                       d);
      const std::uint64_t bw_share =
          vcpu_ws_share(load.fp->bandwidth_bytes_per_s, n, i);
      out.socket_bw_demand[load.vcpu_socket[i]] += static_cast<std::uint64_t>(
          static_cast<__int128>(bw_share) * load.fp->miss_at(resident) / 1000);
    }
  }

  // Stall fraction per oversubscribed socket: (demand - capacity)/demand,
  // in ppm. Zero capacity models an unconstrained bus.
  if (socket_bw_bytes_per_s > 0) {
    for (std::uint32_t s = 0; s < n_sockets; ++s) {
      const std::uint64_t d = out.socket_bw_demand[s];
      if (d > socket_bw_bytes_per_s)
        out.socket_bw_ppm[s] = static_cast<std::uint32_t>(
            static_cast<__int128>(d - socket_bw_bytes_per_s) * 1'000'000 / d);
    }
  }
}

}  // namespace asman::hw::memsys

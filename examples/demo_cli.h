// Shared CLI shape for the chaos, churn, and topology demos:
//
//   --class=NAME   chaos class to inject (see --list)
//   --vms=N        scenario size (chaos: total VMs; churn: hot arrivals)
//   --seed=N       scenario seed (bit-reproducible per seed)
//   --list         print the chaos classes and exit
//
// All demos parse exactly this set so flags learned on one carry to the
// others, and build their usage text with demo_usage() so the shared
// flags are described identically everywhere; churn_demo additionally
// accepts --saturated.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "experiments/chaos.h"

namespace asman::examples {

struct DemoOptions {
  std::string chaos;       // empty = demo-specific default
  std::uint32_t vms{0};    // 0 = demo-specific default
  std::uint64_t seed{42};
  bool list{false};
  bool saturated{false};   // churn_demo only
};

/// Build the uniform usage text: the demo supplies its name and the
/// demo-specific meanings of --class/--vms, the shared flags (--seed,
/// --list, and optionally --saturated) are described identically for
/// every consumer.
inline std::string demo_usage(const char* prog, const char* class_help,
                              const char* vms_help,
                              bool allow_saturated = false) {
  std::string u = "usage: ";
  u += prog;
  u += " [--class=NAME] [--vms=N] [--seed=N] [--list]";
  if (allow_saturated) u += " [--saturated]";
  u += "\n  --class=NAME  ";
  u += class_help;
  u += "\n  --vms=N       ";
  u += vms_help;
  u +=
      "\n  --seed=N      scenario seed (default: 42)\n"
      "  --list        print the chaos classes and exit\n";
  if (allow_saturated)
    u += "  --saturated   run the admission-saturated arrival storm instead\n";
  return u;
}

inline void print_chaos_classes() {
  std::printf("chaos classes:\n");
  for (const experiments::ChaosClass c : experiments::all_chaos_classes())
    std::printf("  %s\n", experiments::to_string(c));
}

inline bool lookup_chaos_class(const std::string& name,
                               experiments::ChaosClass& out) {
  for (const experiments::ChaosClass c : experiments::all_chaos_classes()) {
    if (name == experiments::to_string(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

/// Strict unsigned parse: the whole value must be digits (no empty string,
/// sign, trailing junk, or overflow). strtoul alone silently maps all of
/// those to 0 — and a demo advertised as "bit-reproducible per seed" must
/// not quietly run seed 0 when handed --seed=42x.
inline bool parse_u64(const char* s, std::uint64_t& out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  // strtoull accepts a leading '-' by wrapping; reject any non-digit lead.
  if (*s < '0' || *s > '9') return false;
  out = v;
  return true;
}

inline bool parse_u32(const char* s, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > 0xFFFFFFFFull) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

/// Returns false (after printing `usage` to stderr) on an unknown flag or
/// malformed value. `allow_saturated` admits churn_demo's extra flag.
inline bool parse_demo_args(int argc, char** argv, DemoOptions& opt,
                            const char* usage, bool allow_saturated = false) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&a](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
    };
    if (a == "--list") {
      opt.list = true;
    } else if (allow_saturated && a == "--saturated") {
      opt.saturated = true;
    } else if (const char* v = value("--class=")) {
      opt.chaos = v;
    } else if (const char* n = value("--vms=")) {
      if (!parse_u32(n, opt.vms)) {
        std::fprintf(stderr, "malformed value in '%s'\n%s", a.c_str(), usage);
        return false;
      }
    } else if (const char* s = value("--seed=")) {
      if (!parse_u64(s, opt.seed)) {
        std::fprintf(stderr, "malformed value in '%s'\n%s", a.c_str(), usage);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n%s", a.c_str(), usage);
      return false;
    }
  }
  return true;
}

}  // namespace asman::examples

// The modified Roth-Erev learning algorithm (paper Algorithms 1 and 2).
//
// At each VCRD adjusting event the Monitoring Module must estimate the
// lasting time x_{i+1} of the locality of synchronization that is just
// beginning, i.e. how long the VM's VCPUs should stay coscheduled. The
// paper adapts the Roth-Erev reinforcement-learning scheme [20]: a
// propensity q_x is kept for each of N candidate durations; after every
// interval the propensities decay with recency parameter r and are
// reinforced by an update function U(x, x_i, i, N, e) that distinguishes
//
//   * under-coscheduling  (z_i - x_i <= Delta): the next over-threshold
//     spinlock arrived essentially immediately after the window closed, so
//     every duration larger than x_i is reinforced with (1 - e);
//   * otherwise the chosen duration x_i is reinforced proportionally to
//     (z_i - x_i) / (z_{i-1} - x_{i-1}), the relative growth of the slack;
//
// all other candidates receive the experimentation share q_x(i) * e/(N-1).
// The first two adjusting events select probabilistically in proportion to
// propensity; later events select the argmax (Algorithm 1 line 5).
#pragma once

#include <cstdint>
#include <vector>

#include "simcore/rng.h"
#include "simcore/time.h"

namespace asman::core {

using sim::Cycles;

struct LearningConfig {
  /// Number of candidate durations (N in the paper).
  std::uint32_t num_candidates{20};
  /// Candidate k (0-based) estimates a duration of (k+1) * unit.
  Cycles unit{sim::kDefaultClock.from_ms(30)};
  /// Recency parameter r: propensity decay per event.
  double recency{0.2};
  /// Experimentation parameter e: probability mass spread to non-chosen
  /// candidates.
  double experimentation{0.2};
  /// Initial scaling s(0): q_x(0) = s(0) * A / N where A is the average
  /// candidate value.
  double initial_scaling{1.0};
  /// Delta: if the gap z_i - x_i is at most this, the window was too short
  /// (under-coscheduling).
  Cycles under_gap{sim::kDefaultClock.from_ms(350)};
  /// Guard on the reinforcement ratio (the paper's formula divides by the
  /// previous gap, which can be arbitrarily small); ratios are clamped to
  /// [0, ratio_cap].
  double ratio_cap{4.0};
  std::uint64_t seed{0x9E3779B9u};
};

class LearningEstimator {
 public:
  explicit LearningEstimator(const LearningConfig& cfg);

  /// Register a VCRD adjusting event at simulated time `now` and return the
  /// estimated lasting time x_{i+1} of the locality that starts here.
  Cycles on_adjusting_event(Cycles now);

  // --- introspection (tests / ablation benches) ---
  std::uint64_t events() const { return events_; }
  const std::vector<double>& propensities() const { return q_; }
  Cycles candidate(std::uint32_t k) const {
    return Cycles{cfg_.unit.v * (k + 1)};
  }
  Cycles last_estimate() const { return last_x_; }

 private:
  std::uint32_t select_probabilistic();
  std::uint32_t select_argmax() const;
  void update_propensities(double gap, double prev_gap,
                           std::uint32_t chosen_idx);

  LearningConfig cfg_;
  sim::Rng rng_;
  std::vector<double> q_;

  std::uint64_t events_{0};
  Cycles last_event_time_{0};
  Cycles last_x_{0};
  std::uint32_t last_idx_{0};
  double prev_gap_{0.0};  // z_{i-1} - x_{i-1}, in cycles
  bool have_prev_gap_{false};
};

}  // namespace asman::core

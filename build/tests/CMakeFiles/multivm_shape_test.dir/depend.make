# Empty dependencies file for multivm_shape_test.
# This may be replaced when dependencies are built.

// Model-checking fuzz for the event queue: random interleavings of
// schedule/cancel/pop are compared against a trivially-correct reference
// (ordered multimap).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "simcore/event_queue.h"
#include "simcore/rng.h"

namespace asman::sim {
namespace {

class Reference {
 public:
  std::uint64_t schedule(Cycles at) {
    const std::uint64_t id = next_++;
    items_.emplace(std::pair{at.v, id}, id);
    return id;
  }
  bool cancel(std::uint64_t id) {
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (it->second == id) {
        items_.erase(it);
        return true;
      }
    }
    return false;
  }
  bool empty() const { return items_.empty(); }
  std::uint64_t pop() {
    const auto it = items_.begin();
    const std::uint64_t id = it->second;
    items_.erase(it);
    return id;
  }

 private:
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> items_;
  std::uint64_t next_{1};
};

class EventQueueModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueModel, MatchesReferenceUnderRandomOps) {
  Rng rng(GetParam());
  EventQueue q;
  Reference ref;
  // Parallel id spaces: EventQueue seq numbers match the reference's ids
  // because both allocate densely from 1 in the same order.
  std::vector<EventId> live;
  std::vector<std::uint64_t> fired;
  std::uint64_t last_popped_ref = 0;
  const auto fire = [&fired](std::uint64_t id) { fired.push_back(id); };

  Cycles clock{0};
  for (int step = 0; step < 5000; ++step) {
    const auto r = rng.next_below(100);
    if (r < 55) {
      const Cycles at{clock.v + rng.next_below(1000)};
      const EventId id =
          q.schedule(at, [&fire, n = ref.schedule(at)] { fire(n); });
      live.push_back(id);
    } else if (r < 80 && !live.empty()) {
      const auto idx = rng.next_below(live.size());
      const EventId id = live[idx];
      const bool a = q.cancel(id);
      const bool b = ref.cancel(id.seq);
      ASSERT_EQ(a, b) << "cancel divergence at step " << step;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (!q.empty()) {
      ASSERT_FALSE(ref.empty());
      const Cycles t = q.next_time();
      ASSERT_GE(t, clock);
      clock = t;
      fired.clear();
      q.pop_and_run();
      ASSERT_EQ(fired.size(), 1u);
      last_popped_ref = ref.pop();
      ASSERT_EQ(fired[0], last_popped_ref) << "order divergence at " << step;
      // Remove from live if present (it has fired).
      for (auto it = live.begin(); it != live.end(); ++it) {
        if (it->seq == fired[0]) {
          live.erase(it);
          break;
        }
      }
    }
    ASSERT_EQ(q.empty(), ref.empty());
  }
  // Drain and compare the tails.
  while (!q.empty()) {
    fired.clear();
    q.pop_and_run();
    ASSERT_EQ(fired.size(), 1u);
    ASSERT_EQ(fired[0], ref.pop());
  }
  ASSERT_TRUE(ref.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModel,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace asman::sim

// Seeded-violation fixture for the contention subsystem's lint coverage:
// pressure-ledger writes outside Hypervisor::apply_contention, floating
// point reaching the slowdown math, and unordered iteration over a per-LLC
// map whose order escapes into the grant vector. Never compiled into any
// target. Expected: 3 audit-seam, 1 integer-credit, 1 ordered-iteration.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Cycles {
  std::uint64_t v{0};
};

struct Vcpu {
  Cycles total_online{};
  Cycles pressure_mark{};
};

struct Vm {
  std::uint64_t pressure_accounted{0};
  std::uint64_t pressure_degraded{0};
  std::uint64_t pressure_effective{0};
  std::vector<Vcpu> vcpus;
};

struct Hypervisor {
  std::vector<Vm> vms_;
  std::unordered_map<std::uint32_t, std::uint64_t> llc_demand_;
  std::vector<std::uint64_t> llc_granted_;

  // planted: occupancy charge mutated outside the contention pass — the
  // pressure-conservation invariant would see a split it cannot explain.
  void rogue_degrade(Vm& m, std::uint64_t extra) {
    m.pressure_degraded += extra;
  }

  // planted: resetting the per-VCPU mark outside the pass silently
  // forgives every cycle accrued since the last engine period.
  void rogue_forgive(Vcpu& c) { c.pressure_mark = c.total_online; }

  // planted x2: floating-point slowdown math reaching the ledger store
  // (integer-credit), which is itself an un-audited write (audit-seam).
  void rogue_float_charge(Vm& m, std::uint64_t busy) {
    m.pressure_degraded +=
        static_cast<std::uint64_t>(static_cast<double>(busy) * 0.4);
  }

  // planted: hash-order iteration over the per-LLC demand map escaping
  // into the published grant vector — replay order would depend on bucket
  // history, not the seed.
  void rogue_partition() {
    for (const auto& [llc, demand] : llc_demand_)
      llc_granted_.push_back(demand / 2);
  }
};

}  // namespace fixture

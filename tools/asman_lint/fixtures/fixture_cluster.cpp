// Seeded violations for the state-machine check's migration-FSM coverage:
// every set_phase call here has a statically determinable (from, to) pair
// that is NOT in the shared legal-transition table
// (src/cluster/migration_spec.h). tests/lint_test.cpp asserts 100%
// detection — all three sites flagged.
#include <cassert>
#include <cstdint>

namespace fixture {

enum class MigrationPhase : std::uint8_t { kIdle, kPreCopy, kStopAndCopy,
                                           kCommit, kAbort };

struct MigrationRec {
  MigrationPhase phase{MigrationPhase::kIdle};
};

void set_phase(MigrationRec& m, MigrationPhase to);

// Violation 1: an assert proves kIdle, then the code commits directly —
// a migration at rest must walk pre-copy and stop-and-copy first.
void commit_from_rest(MigrationRec& m) {
  assert(m.phase == MigrationPhase::kIdle);
  set_phase(m, MigrationPhase::kCommit);  // flagged: kIdle -> kCommit
}

// Violation 2: sequential knowledge — the second set_phase leaves the
// record in kCommit, and a commit is atomic and irreversible (never back
// to copying).
void recopy_after_commit(MigrationRec& m) {
  set_phase(m, MigrationPhase::kStopAndCopy);
  set_phase(m, MigrationPhase::kCommit);
  set_phase(m, MigrationPhase::kPreCopy);  // flagged: kCommit -> kPreCopy
}

// Violation 3: a single-label case section proves kAbort; a rolled-back
// migration only ever returns to rest, never back into the copy protocol.
void resume_aborted_copy(MigrationRec& m) {
  switch (m.phase) {
    case MigrationPhase::kAbort:
      set_phase(m, MigrationPhase::kStopAndCopy);  // flagged: kAbort ->
      break;                                       //   kStopAndCopy
    case MigrationPhase::kIdle:
    case MigrationPhase::kPreCopy:
    case MigrationPhase::kStopAndCopy:
    case MigrationPhase::kCommit:
      break;
  }
}

}  // namespace fixture

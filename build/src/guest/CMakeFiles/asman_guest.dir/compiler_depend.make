# Empty compiler generated dependencies file for asman_guest.
# This may be replaced when dependencies are built.

// asman-lint end-to-end tests (ctest label: lint).
//
// Runs the built asman_lint binary over the seeded-violation fixtures in
// tools/asman_lint/fixtures/ and asserts the contract from docs/MODEL.md
// "Static guarantees":
//   - every planted violation fires (100% fixture detection),
//   - the clean fixture and the real src/ tree produce zero errors,
//   - the allow(...) escape hatch suppresses with a visible ledger and the
//     --max-allows budget trips when exceeded.
//
// ASMAN_LINT_BIN / ASMAN_LINT_ROOT are injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct LintRun {
  int exit_code;
  std::string output;  // stdout + stderr, interleaved
};

LintRun run_lint(const std::string& args) {
  const std::string cmd =
      std::string(ASMAN_LINT_BIN) + " --root " + ASMAN_LINT_ROOT + " " +
      args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  if (pipe == nullptr) return {-1, {}};
  std::string out;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    out.append(buf.data(), n);
  const int status = pclose(pipe);
  // popen children terminate normally here; WEXITSTATUS without WIFEXITED
  // guarding would mask a crash as a weird exit code, so keep both visible.
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -status;
  return {code, out};
}

std::string fixture(const char* name) {
  return std::string(ASMAN_LINT_ROOT) + "/tools/asman_lint/fixtures/" + name;
}

int count_of(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size()))
    ++count;
  return count;
}

TEST(LintCli, ListsAllNineChecks) {
  const LintRun r = run_lint("--list-checks");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("determinism"), std::string::npos);
  EXPECT_NE(r.output.find("ordered-iteration"), std::string::npos);
  EXPECT_NE(r.output.find("integer-credit"), std::string::npos);
  EXPECT_NE(r.output.find("audit-seam"), std::string::npos);
  EXPECT_NE(r.output.find("credit-flow"), std::string::npos);
  EXPECT_NE(r.output.find("state-machine"), std::string::npos);
  EXPECT_NE(r.output.find("thread-safety"), std::string::npos);
  EXPECT_NE(r.output.find("rng-discipline"), std::string::npos);
  EXPECT_NE(r.output.find("value-range"), std::string::npos);
}

TEST(LintCli, RejectsUnknownCheck) {
  const LintRun r = run_lint("--check no-such-check " + fixture("fixture_clean.cpp"));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown check"), std::string::npos);
}

TEST(LintDeterminism, FixtureFiresOnEveryPlantedViolation) {
  const LintRun r = run_lint(fixture("fixture_determinism.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[determinism]"), 11) << r.output;
  // One assertion per planted construct, so a regression names its victim.
  EXPECT_NE(r.output.find("#include <random>"), std::string::npos);
  EXPECT_NE(r.output.find("#include <ctime>"), std::string::npos);
  EXPECT_NE(r.output.find("'rand'"), std::string::npos);
  EXPECT_NE(r.output.find("'srand'"), std::string::npos);
  EXPECT_NE(r.output.find("'random_device'"), std::string::npos);
  EXPECT_NE(r.output.find("wall-clock call 'time()'"), std::string::npos);
  EXPECT_NE(r.output.find("'system_clock'"), std::string::npos);
  EXPECT_NE(r.output.find("'getenv'"), std::string::npos);
  EXPECT_NE(r.output.find("comparing object addresses"), std::string::npos);
  EXPECT_NE(r.output.find("std::less over a pointer type"), std::string::npos);
  EXPECT_NE(r.output.find("'uintptr_t'"), std::string::npos);
}

TEST(LintOrderedIteration, FixtureFiresOnEveryPlantedLoop) {
  const LintRun r = run_lint(fixture("fixture_ordered_iter.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[ordered-iteration]"), 3) << r.output;
  EXPECT_NE(r.output.find("'residency'"), std::string::npos);  // range-for
  EXPECT_NE(r.output.find("'hot'"), std::string::npos);      // via alias
  EXPECT_NE(r.output.find("'pending'"), std::string::npos);  // iterator loop
}

TEST(LintIntegerCredit, FixtureFiresOnEveryPlantedViolation) {
  const LintRun r = run_lint(fixture("fixture_credit.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[integer-credit]"), 4) << r.output;
  EXPECT_NE(r.output.find("credit-scale multiply without __int128"),
            std::string::npos);
  EXPECT_NE(r.output.find("floating point reaching credit store"),
            std::string::npos);
  EXPECT_EQ(count_of(r.output, "narrowing cast of credit quantity"), 2)
      << r.output;
  // The rogue credit write in decay() is also an audit-seam breach, and the
  // flow-sensitive credit-flow check sees the same store as unsaturated.
  EXPECT_EQ(count_of(r.output, "[audit-seam]"), 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[credit-flow]"), 1) << r.output;
}

TEST(LintAuditSeam, FixtureFiresOnEveryPlantedViolation) {
  const LintRun r = run_lint(fixture("fixture_audit_seam.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[audit-seam]"), 4) << r.output;
  EXPECT_NE(r.output.find("direct VcpuState write in "
                          "'fixture::Hypervisor::rogue_block'"),
            std::string::npos);
  EXPECT_NE(r.output.find("direct run-queue remove"), std::string::npos);
  EXPECT_NE(r.output.find("direct run-queue push"), std::string::npos);
  EXPECT_NE(r.output.find("direct credit write in "
                          "'fixture::Hypervisor::rogue_grant'"),
            std::string::npos);
  // rogue_grant's unsaturated self-delta is also a credit-flow breach.
  EXPECT_EQ(count_of(r.output, "[credit-flow]"), 1) << r.output;
}

TEST(LintCreditFlow, FixtureFiresOnEveryPlantedViolation) {
  const LintRun r =
      run_lint("--check credit-flow " + fixture("fixture_credit_flow.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[credit-flow]"), 4) << r.output;
  EXPECT_NE(r.output.find("fixture_credit_flow.cpp:30"), std::string::npos);
  EXPECT_NE(r.output.find("unsaturated credit delta"), std::string::npos);
  EXPECT_NE(r.output.find("fixture_credit_flow.cpp:36"), std::string::npos);
  EXPECT_NE(r.output.find("credit zero-drain reachable without kDestroyed"),
            std::string::npos);
  EXPECT_NE(r.output.find("fixture_credit_flow.cpp:44"), std::string::npos);
  EXPECT_NE(r.output.find("fixture_credit_flow.cpp:54"), std::string::npos);
  EXPECT_EQ(count_of(r.output,
                     "credit redistribution can escape without audit_minted"),
            2)
      << r.output;
  // Findings carry witness paths: the early return and the throw each show
  // the escaping edge, ending at the function exit.
  EXPECT_NE(r.output.find("path: line 45: return ;"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("throw std :: runtime_error"), std::string::npos)
      << r.output;
  EXPECT_GE(count_of(r.output, "function exit"), 2) << r.output;
}

TEST(LintContention, FixtureFiresOnEveryPlantedViolation) {
  const LintRun r = run_lint(fixture("fixture_contention.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // Three un-audited pressure-ledger writes (the float charge is one of
  // them), one float reaching the slowdown math, one hash-order loop whose
  // order escapes into the grant vector.
  EXPECT_EQ(count_of(r.output, "[audit-seam]"), 3) << r.output;
  EXPECT_EQ(count_of(r.output, "[integer-credit]"), 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[ordered-iteration]"), 1) << r.output;
  EXPECT_NE(r.output.find("direct pressure-ledger write in "
                          "'fixture::Hypervisor::rogue_degrade'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("'fixture::Hypervisor::rogue_forgive'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("floating point reaching credit store "
                          "'pressure_degraded'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("'llc_demand_'"), std::string::npos) << r.output;
}

TEST(LintCreditFlow, TrickyLegalShapesStaySilent) {
  const LintRun r = run_lint(fixture("fixture_credit_flow_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 error(s), 0 suppression(s)"), std::string::npos)
      << r.output;
}

TEST(LintStateMachine, FixtureFiresOnEveryPlantedViolation) {
  const LintRun r =
      run_lint("--check state-machine " + fixture("fixture_state_machine.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[state-machine]"), 3) << r.output;
  // Each violation names the (from, to) pair against the shared spec.
  EXPECT_NE(r.output.find("illegal VcpuState transition kRunning -> "
                          "kDestroyed"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("illegal VcpuState transition kRunning -> "
                          "kBlocked"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("illegal VcpuState transition kDestroyed -> "
                          "kRunnable"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("fixture_state_machine.cpp:23"), std::string::npos);
  EXPECT_NE(r.output.find("fixture_state_machine.cpp:31"), std::string::npos);
  EXPECT_NE(r.output.find("fixture_state_machine.cpp:39"), std::string::npos);
  // Evidence traces explain HOW the from-state became known.
  EXPECT_NE(r.output.find("assert established v.state == kRunning"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("set_state left v.state == kRunning"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("case label established v.state == kDestroyed"),
            std::string::npos)
      << r.output;
}

// The same check also verifies the cluster live-migration FSM against its
// own shared spec (src/cluster/migration_spec.h) — one walker, two
// machines. All three planted illegal set_phase sites must fire.
TEST(LintStateMachine, ClusterFixtureFiresOnEveryPlantedViolation) {
  const LintRun r =
      run_lint("--check state-machine " + fixture("fixture_cluster.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[state-machine]"), 3) << r.output;
  EXPECT_NE(r.output.find("illegal MigrationPhase transition kIdle -> "
                          "kCommit"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("illegal MigrationPhase transition kCommit -> "
                          "kPreCopy"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("illegal MigrationPhase transition kAbort -> "
                          "kStopAndCopy"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("kLegalMigrationTransitions, "
                          "src/cluster/migration_spec.h"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("fixture_cluster.cpp:24"), std::string::npos);
  EXPECT_NE(r.output.find("fixture_cluster.cpp:33"), std::string::npos);
  EXPECT_NE(r.output.find("fixture_cluster.cpp:41"), std::string::npos);
  // Evidence traces explain HOW the from-phase became known.
  EXPECT_NE(r.output.find("assert established m.phase == kIdle"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("set_phase left m.phase == kCommit"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("case label established m.phase == kAbort"),
            std::string::npos)
      << r.output;
}

TEST(LintStateMachine, LegalChainsAndInvalidationStaySilent) {
  const LintRun r = run_lint(fixture("fixture_state_machine_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 error(s), 0 suppression(s)"), std::string::npos)
      << r.output;
}

TEST(LintThreadSafety, FixtureFiresOnEveryPlantedViolation) {
  const LintRun r = run_lint("--check thread-safety --check rng-discipline " +
                             fixture("fixture_thread_safety.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[thread-safety]"), 3) << r.output;
  EXPECT_EQ(count_of(r.output, "[rng-discipline]"), 1) << r.output;
  // In-lambda sites: unlocked accumulation and a fixed-index write.
  EXPECT_NE(r.output.find("fixture_thread_safety.cpp:28"), std::string::npos);
  EXPECT_NE(r.output.find("assigns captured `total` without a lock"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("fixture_thread_safety.cpp:29"), std::string::npos);
  EXPECT_NE(r.output.find("index not derived from the task parameter"),
            std::string::npos)
      << r.output;
  // RNG discipline: shared stream drawn inside the worker.
  EXPECT_NE(r.output.find("fixture_thread_safety.cpp:30"), std::string::npos);
  EXPECT_NE(r.output.find("draws from captured RNG `shared_rng`"),
            std::string::npos)
      << r.output;
  // Cross-TU: the hidden static write two calls deep, with the call chain.
  EXPECT_NE(r.output.find("write to file-scope static `g_total_events`"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("calls fixture::note_event"), std::string::npos)
      << r.output;
}

TEST(LintThreadSafety, SanctionedWorkerPatternsStaySilent) {
  const LintRun r = run_lint(fixture("fixture_thread_safety_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 error(s), 0 suppression(s)"), std::string::npos)
      << r.output;
}

// The adversary-hardening disciplines: theft/exact-accounting arithmetic
// must stay on the widened-integer rails, and the randomized-sampling
// jitter stream must never be drawn across pool workers.
TEST(LintAdversary, FixtureFiresOnEveryPlantedViolation) {
  const LintRun r = run_lint(fixture("fixture_adversary.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[integer-credit]"), 2) << r.output;
  EXPECT_NE(r.output.find("credit-scale multiply without __int128"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("narrowing cast of credit quantity"),
            std::string::npos)
      << r.output;
  EXPECT_EQ(count_of(r.output, "[rng-discipline]"), 1) << r.output;
  EXPECT_NE(r.output.find("draws from captured RNG `offset_rng`"),
            std::string::npos)
      << r.output;
}

TEST(LintValueRange, FixtureFiresOnEveryPlantedViolation) {
  const LintRun r =
      run_lint("--check value-range " + fixture("fixture_value_range.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[value-range]"), 4) << r.output;
  // (a) decl-initializer overflow of int64: the full product of the
  // credit-pool sizing at the admissible corner, witness per leaf.
  EXPECT_NE(r.output.find("fixture_value_range.cpp:20"), std::string::npos);
  EXPECT_NE(r.output.find("proved interval [100000000000, "
                          "64000000000000000000]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("witness config: freq_hz = 10000000000"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("witness config: slots_per_accounting = 64"),
            std::string::npos)
      << r.output;
  // (b) static_cast<int> narrowing: weight * kCreditPerSlot = 6.5536e9.
  EXPECT_NE(r.output.find("fixture_value_range.cpp:27"), std::string::npos);
  EXPECT_NE(r.output.find("witness config: weight = 65536"),
            std::string::npos)
      << r.output;
  // (c) u32 wrap at 2^36.
  EXPECT_NE(r.output.find("fixture_value_range.cpp:34"), std::string::npos);
  EXPECT_NE(r.output.find("[1024, 68719476736]"), std::string::npos)
      << r.output;
  // (d) plain assignment into a declared int32.
  EXPECT_NE(r.output.find("fixture_value_range.cpp:43"), std::string::npos);
  EXPECT_NE(r.output.find("witness config: shed_level_ppm = 1000000"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("witness config: n_vcpus = 4096"),
            std::string::npos)
      << r.output;
}

TEST(LintValueRange, TrickyLegalShapesStaySilent) {
  // Guard-refined products, std::min clamps, the __int128 widen-then-
  // divide ratio (the contention.cpp shape that once false-positived when
  // the saturation rail leaked through division), loop accumulation, and
  // the saturating_sub discipline: all provably fine or unknowable — zero
  // findings. Scoped to value-range: integer-credit's lexical heuristic
  // still flags the clamped mint here, which is exactly the
  // heuristic-vs-proof gap docs/MODEL.md 5.1 describes.
  const LintRun r = run_lint("--check value-range " +
                             fixture("fixture_value_range_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 error(s), 0 suppression(s)"), std::string::npos)
      << r.output;
}

TEST(LintValueRange, InterproceduralSummaryCarriesTheOverflow) {
  const LintRun r = run_lint("--check value-range " +
                             fixture("fixture_value_range_interproc.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // Exactly one: at the call-site cast. The helper itself fits in i64, and
  // the small-grant control through the same summary machinery is clean.
  EXPECT_EQ(count_of(r.output, "[value-range]"), 1) << r.output;
  EXPECT_NE(r.output.find("fixture_value_range_interproc.cpp:22"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("mint_for"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("witness config: weight = 65536"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("witness config: slots_per_accounting = 64"),
            std::string::npos)
      << r.output;
}

TEST(LintValueRange, JoinAtMergeFindsOneBranchOverflow) {
  const LintRun r = run_lint("--check value-range " +
                             fixture("fixture_value_range_flow.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // One finding: the unguarded boost path survives the join. The guarded
  // twin is silent because `weight < 20'000` refines the multiplier input.
  EXPECT_EQ(count_of(r.output, "[value-range]"), 1) << r.output;
  EXPECT_NE(r.output.find("fixture_value_range_flow.cpp:19"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[1, 6553600000]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("witness config: weight = 65536"),
            std::string::npos)
      << r.output;
}

TEST(LintCleanFixture, TrickyLegalConstructsStaySilent) {
  const LintRun r = run_lint(fixture("fixture_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 error(s), 0 suppression(s)"), std::string::npos)
      << r.output;
}

TEST(LintAllow, SuppressionsAreLedgeredAndControlStillFires) {
  const LintRun r = run_lint(fixture("fixture_allow.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;  // the unsuppressed control
  EXPECT_EQ(count_of(r.output, "suppressed by allow(determinism)"), 3)
      << r.output;
  EXPECT_NE(r.output.find("pragma on the line above"), std::string::npos);
  EXPECT_NE(r.output.find("same-line pragma"), std::string::npos);
  EXPECT_NE(r.output.find("allow(all) covers every check"), std::string::npos);
  EXPECT_NE(r.output.find("1 error(s), 3 suppression(s)"), std::string::npos)
      << r.output;
}

TEST(LintAllow, BudgetTripsWhenExceeded) {
  const LintRun r = run_lint("--max-allows 2 " + fixture("fixture_allow.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("suppression budget exceeded (3 > 2)"),
            std::string::npos)
      << r.output;
}

TEST(LintCheckFilter, SingleCheckRunsAlone) {
  const LintRun r =
      run_lint("--check integer-credit " + fixture("fixture_credit.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[integer-credit]"), 4) << r.output;
  EXPECT_EQ(count_of(r.output, "[audit-seam]"), 0) << r.output;
}

// The acceptance gate: the shipped tree (src/ + bench/ + examples/)
// carries zero non-allowed findings, and every suppression that remains is
// deliberate and reasoned. The auditor's getenv arming switch no longer
// needs an allow — the confinement proof exempts equality-only uses.
TEST(LintTree, ShippedTreeIsCleanUnderAllChecks) {
  const LintRun r = run_lint("");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 error(s)"), std::string::npos) << r.output;
  // The two standing allows: bench_util's wall-clock timer, which measures
  // the harness itself and never feeds simulation state.
  EXPECT_EQ(count_of(r.output, "suppressed by allow("), 2) << r.output;
  EXPECT_EQ(count_of(r.output, "host wall-clock measures the harness"), 2)
      << r.output;
  // The suppression budget is actual + 2: a new escape can't hide in slack.
  EXPECT_NE(r.output.find("(budget 4)"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("audit arming is host config"), std::string::npos)
      << r.output;
}

// --sarif emits a machine-readable report alongside the console one.
TEST(LintSarif, EmitsResultsWithCodeFlows) {
  const std::string out = std::string(::testing::TempDir()) + "lint_test.sarif";
  const LintRun r = run_lint("--check state-machine --sarif " + out + " " +
                             fixture("fixture_state_machine.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  FILE* f = std::fopen(out.c_str(), "r");
  ASSERT_NE(f, nullptr) << "SARIF file not written: " << out;
  std::string sarif;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), f)) > 0)
    sarif.append(buf.data(), n);
  std::fclose(f);
  std::remove(out.c_str());
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"asman-lint\""), std::string::npos);
  // All nine rules are declared; three results with witness codeFlows.
  EXPECT_NE(sarif.find("\"id\": \"credit-flow\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"thread-safety\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"rng-discipline\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"value-range\""), std::string::npos);
  EXPECT_EQ(count_of(sarif, "\"ruleId\": \"state-machine\""), 3) << sarif;
  EXPECT_EQ(count_of(sarif, "\"codeFlows\""), 3) << sarif;
  EXPECT_NE(sarif.find("fixture_state_machine.cpp"), std::string::npos);
}

// value-range findings ride the same SARIF channel, witness configs as
// codeFlow steps — the CI upload needs no special-casing for the new rule.
TEST(LintSarif, ValueRangeFindingsCarryWitnessCodeFlows) {
  const std::string out =
      std::string(::testing::TempDir()) + "lint_vr_test.sarif";
  const LintRun r = run_lint("--check value-range --sarif " + out + " " +
                             fixture("fixture_value_range.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  FILE* f = std::fopen(out.c_str(), "r");
  ASSERT_NE(f, nullptr) << "SARIF file not written: " << out;
  std::string sarif;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), f)) > 0)
    sarif.append(buf.data(), n);
  std::fclose(f);
  std::remove(out.c_str());
  EXPECT_EQ(count_of(sarif, "\"ruleId\": \"value-range\""), 4) << sarif;
  EXPECT_EQ(count_of(sarif, "\"codeFlows\""), 4) << sarif;
  EXPECT_NE(sarif.find("witness config: freq_hz = 10000000000"),
            std::string::npos)
      << sarif;
}

}  // namespace

// Interval-domain abstract interpretation over the token stream: the
// engine behind the `value-range` rule (asman-prove).
//
// Where the lexical `integer-credit` rule asks "did you widen?", this
// layer asks "is the widened expression actually safe for every config
// the runtime admits?" and answers with a proof or a counterexample. The
// admissible config space comes from src/core/bounds_spec.h — the SAME
// table hw::validate_config() and the VMM's knob clamps compile against —
// lexed structurally exactly like the state/migration transition specs.
//
// The domain is intervals over __int128, saturated at +/-kAbsInf; an
// endpoint at the saturation rail means "unbounded" and the value is
// demoted to unknown, so the checker only ever reports violations it has
// PROVED reachable inside the spec space. Every abstract value carries the
// witness assignment (config leaf -> concrete endpoint) that produces its
// extremes, so a finding can print the exact configuration that triggers
// the overflow — the value-range analogue of credit-flow's path witness.
//
// Deliberate approximations (each errs toward silence, never toward a
// false proof of violation):
//   * unsigned subtraction that could go negative is assumed guarded
//     (clamped at 0): the codebase routes such math through
//     saturating_sub, and reporting the pattern would drown the proof in
//     the idiom,
//   * values derived from runtime state are unknown (top) unless a
//     refinement or a single-return summary bounds them,
//   * member fields (trailing '_') are bounded only when every textual
//     write to them evaluates to a known interval (ValueModel);
//     any compound or unknown write poisons the field to top.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "model.h"
#include "token.h"

namespace asman_lint {

using Wide = __int128;

/// Saturation rail: past this magnitude an interval endpoint means
/// "unbounded" and proofs involving it are abandoned, not reported.
inline constexpr Wide kAbsInf = static_cast<Wide>(1) << 110;

/// Approximate static type of an expression, enough to know its value
/// range and the usual-arithmetic-conversions result. kOther covers
/// floating point, class types and anything unrecognized — no range
/// checking is done there (float discipline is integer-credit's rule).
enum class NumWidth : std::uint8_t {
  kBool,
  kI8,
  kU8,
  kI16,
  kU16,
  kI32,
  kU32,
  kI64,
  kU64,
  kI128,
  kOther,
};

const char* width_name(NumWidth w);
Wide width_min(NumWidth w);
Wide width_max(NumWidth w);
bool width_is_unsigned(NumWidth w);
std::string wide_str(Wide v);

/// True when the identifier's name marks it as credit / pressure /
/// contention vocabulary — the lexical half of the value-range taint seed.
bool taints_value(const std::string& ident);

/// One leaf of a witness assignment: a config quantity pinned to the
/// concrete value that produces the interval endpoint.
struct WitnessBinding {
  std::string name;
  long long value;
};

/// A proved range violation inside an expression: the sub-expression's
/// interval escapes its static type for some admissible config.
struct RangeViolation {
  std::string expr;     // offending sub-expression (token snippet)
  NumWidth width{NumWidth::kI64};  // the static type it escapes
  Wide lo{0}, hi{0};    // the proved interval of the sub-expression
  bool narrowing{false};  // cast/store narrowing vs in-type arithmetic
  std::vector<WitnessBinding> witness;  // config corner reaching the escape
  int line{0};
};

/// Abstract value: an interval with witness corners, or top (!known).
struct AbsVal {
  bool known{false};
  Wide lo{0};
  Wide hi{0};
  NumWidth width{NumWidth::kI64};
  bool tainted{false};
  std::vector<WitnessBinding> wit_lo, wit_hi;
  /// First violation proved while evaluating this value (bottom-up).
  std::optional<RangeViolation> viol;

  static AbsVal top(NumWidth w = NumWidth::kOther) {
    AbsVal v;
    v.width = w;
    return v;
  }
  static AbsVal exact(Wide x, NumWidth w) {
    AbsVal v;
    v.known = true;
    v.lo = v.hi = x;
    v.width = w;
    return v;
  }
  bool same_range(const AbsVal& o) const {
    return known == o.known && (!known || (lo == o.lo && hi == o.hi));
  }
};

/// The bounds table lexed from src/core/bounds_spec.h. `error` is
/// non-empty when the spec could not be read or parsed — the caller must
/// fail loudly, not verify vacuously (same contract as TransitionSpec).
struct BoundsSpec {
  std::map<std::string, std::pair<long long, long long>> fields;
  std::string error;

  const std::pair<long long, long long>* find(const std::string& f) const {
    auto it = fields.find(f);
    return it == fields.end() ? nullptr : &it->second;
  }
};

/// Cached per root, like vcpu_transition_spec.
const BoundsSpec& bounds_spec(const Options& options);

/// Cross-TU value model: single-`return expr;` function summaries (used to
/// evaluate interprocedural calls with argument substitution) and member-
/// field facts (the join of every textual write to a trailing-underscore
/// member across the scanned units).
class ValueModel {
 public:
  struct Summary {
    const FileUnit* unit{nullptr};
    std::size_t expr_begin{0}, expr_end{0};  // the returned expression
    std::vector<std::string> params;         // positional parameter names
    bool ambiguous{false};  // same simple name, different bodies
  };

  void add_unit(const FileUnit& unit);
  /// Evaluate the member-field facts (needs the spec; call once, after
  /// every unit was added).
  void finalize(const BoundsSpec& spec);

  const Summary* summary(const std::string& simple_name) const;
  const AbsVal* field_fact(const std::string& member_name) const;

 private:
  struct FieldWrite {
    const FileUnit* unit;
    std::size_t rhs_begin, rhs_end;
    bool compound;  // += etc: poisons the field to top
  };
  std::map<std::string, Summary> summaries_;
  std::map<std::string, std::vector<FieldWrite>> field_writes_;
  std::map<std::string, AbsVal> field_facts_;
};

/// Variable environment at a program point. `unreachable` marks an env
/// produced by an infeasible branch refinement (empty intersection).
struct Env {
  std::map<std::string, AbsVal> vars;
  bool unreachable{false};

  bool same_ranges(const Env& o) const;
};

/// Join (least upper bound): variables missing on either side drop to top.
Env join_envs(const Env& a, const Env& b);

/// Expression evaluator + transfer functions over a token range.
class Evaluator {
 public:
  Evaluator(const BoundsSpec& spec, const ValueModel& model)
      : spec_(spec), model_(model) {}

  /// Evaluate the expression in [b, e) under `env`. Never throws; an
  /// unparseable expression is top.
  AbsVal eval(const std::vector<Token>& t, std::size_t b, std::size_t e,
              const Env& env) const;

  /// Apply one statement's effect (declaration / assignment / compound
  /// assignment / ++ / --) to `env`. Returns the statement's evaluated
  /// value so the caller can harvest violations and taint.
  AbsVal transfer_stmt(const std::vector<Token>& t, std::size_t b,
                       std::size_t e, Env& env) const;

  /// Refine `env` in place assuming the condition in [b, e) evaluated to
  /// `taken`. Sets env.unreachable when the refinement is infeasible.
  void refine(const std::vector<Token>& t, std::size_t b, std::size_t e,
              bool taken, Env& env) const;

 private:
  friend class ExprParser;
  /// Store-side range check shared by declarations, assignments and the
  /// parser's cast handling: records a violation when `v` provably escapes
  /// `w` under the spec, then clamps so evaluation continues.
  AbsVal store_check(AbsVal v, NumWidth w, const std::vector<Token>& t,
                     std::size_t b, std::size_t e) const;
  const BoundsSpec& spec_;
  const ValueModel& model_;
};

/// Width of a declaration/cast type spelled by the tokens in [b, e).
/// `known` is false when no recognized arithmetic type was found.
NumWidth width_of_type_tokens(const std::vector<Token>& t, std::size_t b,
                              std::size_t e, bool& known);

}  // namespace asman_lint

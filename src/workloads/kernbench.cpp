#include "workloads/kernbench.h"

namespace asman::workloads {

using guest::Op;

struct KernbenchWorkload::Shared {
  KernbenchParams p;
  sim::Simulator* sim{nullptr};
  std::uint32_t join_barrier{0};
  std::uint32_t release_barrier{0};
  std::uint32_t jobs_left{0};
  std::uint64_t compiled{0};
  std::uint32_t release_arrivals{0};
  std::vector<Cycles> pass_times;
};

namespace {

class MakeWorker final : public guest::ThreadProgram {
 public:
  MakeWorker(KernbenchWorkload::Shared& sh, std::uint32_t worker,
             std::uint64_t seed)
      : sh_(sh), worker_(worker), rng_(seed) {}

  const char* name() const override { return "make-worker"; }

  Op next() override {
    const KernbenchParams& p = sh_.p;
    switch (stage_) {
      case Stage::kPull:
        if (sh_.jobs_left > 0) {
          --sh_.jobs_left;
          ++sh_.compiled;
          const double len = rng_.positive_jitter(
              static_cast<double>(p.job_mean.v), p.job_cv);
          return Op::compute(Cycles{static_cast<std::uint64_t>(len)});
        }
        stage_ = worker_ == 0 ? Stage::kLink : Stage::kWaitRelease;
        return Op::barrier(sh_.join_barrier);
      case Stage::kLink:
        // Worker 0 runs the serial link stage and refills the job queue
        // for the next pass before releasing everyone.
        stage_ = Stage::kWaitRelease;
        sh_.jobs_left = p.jobs_per_pass;
        return Op::compute(p.link_cost);
      case Stage::kWaitRelease:
        stage_ = Stage::kPassEnd;
        return Op::barrier(sh_.release_barrier);
      case Stage::kPassEnd:
        if (++sh_.release_arrivals == p.workers) {
          sh_.release_arrivals = 0;
          sh_.pass_times.push_back(sh_.sim->now());
        }
        ++pass_;
        stage_ = Stage::kPull;
        if (pass_ >= sh_.p.passes) return Op::done();
        return next();
    }
    return Op::done();
  }

 private:
  enum class Stage : std::uint8_t { kPull, kLink, kWaitRelease, kPassEnd };
  KernbenchWorkload::Shared& sh_;
  std::uint32_t worker_;
  sim::Rng rng_;
  Stage stage_{Stage::kPull};
  std::uint64_t pass_{0};
};

}  // namespace

KernbenchWorkload::KernbenchWorkload(sim::Simulator& simulation,
                                     KernbenchParams params,
                                     std::uint64_t seed)
    : sim_(simulation),
      params_(params),
      seed_(seed),
      shared_(std::make_unique<Shared>()) {
  shared_->p = params_;
  shared_->sim = &sim_;
  shared_->jobs_left = params_.jobs_per_pass;
}

KernbenchWorkload::~KernbenchWorkload() = default;

void KernbenchWorkload::deploy(guest::GuestKernel& g) {
  // make's joins are blocking (wait()/pipes): spin-then-sleep barriers.
  shared_->join_barrier = g.create_barrier(params_.workers);
  shared_->release_barrier = g.create_barrier(params_.workers);
  sim::SplitMix64 seeds(seed_);
  for (std::uint32_t w = 0; w < params_.workers; ++w)
    g.spawn(std::make_unique<MakeWorker>(*shared_, w, seeds.next()),
            w % g.num_vcpus());
}

std::uint64_t KernbenchWorkload::rounds_completed() const {
  return shared_->pass_times.size();
}

std::vector<Cycles> KernbenchWorkload::round_times() const {
  return shared_->pass_times;
}

std::uint64_t KernbenchWorkload::work_units() const {
  return shared_->compiled;
}

}  // namespace asman::workloads

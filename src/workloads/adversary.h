// Adversarial tenant models (docs/MODEL.md "Threat model & fairness
// guarantees").
//
// "Scheduler Vulnerabilities and Coordinated Attacks in Cloud Computing"
// (arXiv 1103.0759) showed Xen's credit scheduler is gameable by guests
// that understand its sampling: yield just before the 10 ms accounting
// tick and you are never charged (up to ~98% of a core stolen); oscillate
// between sleep and wake and you farm BOOST priority to starve neighbors.
// ASMan adds a third surface the paper never had to defend: the VCRD
// hypercall is guest-reported, so a liar can claim heavy spin-wait and win
// gang-scheduling privileges it did nothing to deserve.
//
// Each model here is one such attacker, built from the same guest-kernel
// primitives as the honest workloads and seeded-deterministic through the
// existing RNG discipline (sim::SplitMix64 seed splitting, one sim::Rng
// stream per thread) so every adversary run is bit-reproducible per seed.
// The attackers are *omniscient*: the tick-dodger reads the simulation
// clock directly, which over-approximates what a real guest infers from
// timing loops — a defense that survives the omniscient attacker survives
// the practical one.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>

#include "simcore/simulator.h"
#include "workloads/workload.h"

namespace asman::workloads {

enum class AttackKind : std::uint8_t {
  /// Compute between sampling instants, vanish across them: consumption
  /// without attribution (the arXiv 1103.0759 cycle stealer).
  kTickDodge,
  /// Sleep/wake oscillation tuned to re-earn Xen-style BOOST on every
  /// wake: latency priority without ever draining credit.
  kBoostFarm,
  /// CPU-bound guest that reports VCRD HIGH it cannot justify, farming
  /// ASMan's gang scheduling (coscheduled launches, IPI preemption of
  /// neighbors, relocation service).
  kVcrdLie,
  /// Wake storm: many threads blocking and kicking at high frequency so
  /// the BOOST queue-jump path preempts honest tenants continuously.
  kStarveFlood,
};

inline constexpr std::array<AttackKind, 4> kAllAttacks = {
    AttackKind::kTickDodge, AttackKind::kBoostFarm, AttackKind::kVcrdLie,
    AttackKind::kStarveFlood};

const char* to_string(AttackKind k);
AttackKind attack_from_name(std::string_view name);

/// Attack calibration. Defaults target the repo's stock machine (10 ms
/// slot at kDefaultClock, 4 PCPUs); scenario builders override slot /
/// num_pcpus from their hw::MachineConfig so the dodger aims at the real
/// sampling grid (per-PCPU ticks are staggered at multiples of
/// slot/num_pcpus — every grid instant is some PCPU's tick).
struct AdversaryTuning {
  /// Sampling slot length in cycles (0 = 10 ms at kDefaultClock).
  Cycles slot{0};
  /// PCPU count behind the tick stagger (grid period = slot/num_pcpus).
  std::uint32_t num_pcpus{4};
  /// Tick-dodge: stop computing this long before each grid instant (covers
  /// syscall entry + block latency) and resume this long after it.
  Cycles guard{0};  // 0 = 200 us
  Cycles land{0};   // 0 = 50 us
  /// Boost-farm oscillation: compute burst / sleep nap lengths.
  Cycles burst{0};  // 0 = 150 us
  Cycles nap{0};    // 0 = 120 us
  /// VCRD liar: re-report cadence (refreshes any staleness TTL).
  Cycles lie_period{0};  // 0 = 2 slots
  /// Starve-flood: per-thread work/nap lengths (threads = 3x VCPUs).
  Cycles flood_work{0};  // 0 = 20 us
  Cycles flood_nap{0};   // 0 = 30 us

  /// Memory footprint the attacker drags along (docs/MODEL.md §2.8): a
  /// cycle thief that also thrashes the shared LLC steals twice. Zero
  /// working set (the default) means no footprint — the contention engine
  /// never sees this tenant — so resolved() leaves these fields alone.
  std::uint64_t footprint_ws_bytes{0};
  std::uint64_t footprint_bw_bytes_per_s{0};
  std::uint32_t footprint_locality_permille{200};

  /// Resolve every zero field to its default.
  AdversaryTuning resolved() const;
};

/// Common base: an attack workload with its calibration and identity.
class AdversaryModel : public Workload {
 public:
  AdversaryModel(sim::Simulator& simulation, AttackKind kind,
                 std::uint32_t threads, std::uint64_t seed,
                 const AdversaryTuning& tune)
      : sim_(simulation),
        kind_(kind),
        threads_(threads),
        seed_(seed),
        tune_(tune.resolved()) {}

  AttackKind kind() const { return kind_; }
  std::string name() const override { return to_string(kind_); }
  bool finite() const override { return false; }
  hw::memsys::MemFootprint footprint() const override {
    if (tune_.footprint_ws_bytes == 0) return {};
    return hw::memsys::make_footprint(tune_.footprint_ws_bytes,
                                      tune_.footprint_bw_bytes_per_s,
                                      tune_.footprint_locality_permille);
  }

 protected:
  sim::Simulator& sim_;
  AttackKind kind_;
  std::uint32_t threads_;
  std::uint64_t seed_;
  AdversaryTuning tune_;
};

/// Factory: one thread per guest VCPU for kTickDodge/kBoostFarm/kVcrdLie,
/// 3x for kStarveFlood (the storm wants oversubscription).
std::unique_ptr<AdversaryModel> make_adversary(AttackKind kind,
                                               sim::Simulator& simulation,
                                               std::uint32_t vcpus,
                                               std::uint64_t seed,
                                               const AdversaryTuning& tune = {});

}  // namespace asman::workloads

// Streaming summary statistics (Welford) and small sample-set helpers.
//
// The paper reports run-time means over 10 repetitions and checks that the
// coefficient of variation stays below 10 % before averaging (§5.3); the
// experiment harness uses this type to implement the same protocol.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace asman::sim {

class Summary {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  /// Coefficient of variation = stddev / mean (paper §5.3 uses < 10 %).
  double cv() const { return mean_ == 0.0 ? 0.0 : stddev() / mean_; }

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Percentile of a sample set (linear interpolation); `p` in [0, 100].
double percentile(std::vector<double> samples, double p);

}  // namespace asman::sim

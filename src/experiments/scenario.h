// Scenario description and single-run execution.
//
// A Scenario is a complete virtualized-system configuration: the machine,
// the scheduler under test, the VM population (weights, VCPU counts, VM
// types for the CON baseline, workload factories) and the measurement
// protocol (horizon, round target). run_scenario() builds the whole stack
// (simulator -> hypervisor -> guest kernels -> monitoring modules ->
// workloads), runs it, and returns per-VM and system-wide measurements.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/monitor.h"
#include "core/schedulers.h"
#include "faults/fault_plan.h"
#include "guest/guest_kernel.h"
#include "hw/machine.h"
#include "vmm/admission.h"
#include "workloads/workload.h"

namespace asman::experiments {

using sim::Cycles;

/// Creates a fresh workload instance for one run (runs must not share
/// workload state, so scenarios carry factories rather than instances).
using WorkloadFactory = std::function<std::unique_ptr<workloads::Workload>(
    sim::Simulator&, std::uint64_t seed)>;

struct VmSpec {
  std::string name{"VM"};
  std::uint32_t weight{256};
  std::uint32_t vcpus{4};
  /// Administrator VM type: only the CON scheduler reads this.
  vmm::VmType type{vmm::VmType::kGeneral};
  /// Null factory = idle VM (the paper's Domain-0).
  WorkloadFactory workload;
  /// Attach a Monitoring Module (meaningful under the ASMan scheduler).
  bool monitor{true};
  guest::GuestKernel::Config guest{};
};

/// One scripted runtime lifecycle operation, applied at sim time `at`
/// while the run is in flight. Creates go through the hypervisor's
/// admission controller: a rejected create leaves only a counter behind
/// (no VmResult entry). Targets are resolved by VM name at fire time, so
/// a churn list can destroy a VM an earlier event created.
struct ChurnEvent {
  enum class Kind : std::uint8_t { kCreate, kDestroy, kResize };
  Cycles at{0};
  Kind kind{Kind::kCreate};
  /// kCreate: the VM to hot-create (null workload = idle guest).
  VmSpec spec{};
  /// kDestroy / kResize: name of the target VM (boot-time or hot-created).
  std::string target;
  /// kResize: new VCPU count.
  std::uint32_t new_vcpus{0};
};

struct Scenario {
  hw::MachineConfig machine{};
  vmm::SchedMode mode{vmm::SchedMode::kNonWorkConserving};
  core::SchedulerKind scheduler{core::SchedulerKind::kCredit};
  vmm::Hypervisor::Strictness strictness{
      vmm::Hypervisor::Strictness::kStrict};
  core::MonitorConfig monitor{};
  std::vector<VmSpec> vms;
  /// Hard simulation horizon.
  Cycles horizon{sim::kDefaultClock.from_seconds_f(180.0)};
  /// Stop early once every round-tracking workload completed this many
  /// rounds (0 = only finite-completion / horizon stop). Implements the
  /// paper's "average of the first 10 rounds" protocol.
  std::uint64_t stop_after_rounds{0};
  std::uint64_t seed{1};
  bool keep_wait_samples{false};
  /// Attach a runtime invariant auditor (audit::Auditor) to the run. Also
  /// forced on for every run by the ASMAN_AUDIT environment variable; both
  /// are ignored when the build has auditing compiled out (ASMAN_AUDIT=OFF).
  bool audit{false};
  /// Full-state audit scans run every stride-th scheduling event.
  std::uint32_t audit_stride{1};
  /// Fault-injection plan for this run (src/faults/). Empty (the default)
  /// means no injection machinery is attached at all, keeping fault-free
  /// runs bit-identical to earlier builds.
  faults::FaultPlan faults{};
  /// Graceful-degradation knobs forwarded to the hypervisor.
  vmm::ResilienceConfig resilience{};
  /// Admission-control / overload-governor knobs forwarded to the
  /// hypervisor (default: admission disabled).
  vmm::AdmissionConfig admission{};
  /// Scripted runtime lifecycle events (hot create/destroy/resize). An
  /// empty list leaves the run bit-identical to earlier builds. Workload
  /// seeds for hot-created VMs come from a dedicated stream, so adding
  /// churn never perturbs the boot-time VMs' seeds.
  std::vector<ChurnEvent> churn;
  /// Topology-aware placement (hypervisor::set_topology_aware). Only
  /// meaningful when machine.topology is multi-domain; with it false the
  /// scheduler still pays the migration cost model but places like the
  /// flat scheduler (the bench's topology-blind baseline).
  bool topology_aware{true};
  /// Pressure-aware placement (hypervisor::set_pressure_aware). Only
  /// meaningful when the contention engine is live (multi-domain topology,
  /// machine.llc_bytes > 0 and at least one workload with a footprint);
  /// with it false the run still pays the same contention slowdowns but
  /// places, steals and balances pressure-blind (the bench's baseline).
  bool pressure_aware{true};
};

struct VmResult {
  /// Stable hypervisor id (docs/MODEL.md "VM lifecycle & admission"): ids
  /// are dense creation-order indices and are never reused, so a result
  /// keyed by id refers to the same VM across the whole run even after
  /// the VM was destroyed mid-run.
  vmm::VmId id{0};
  std::string name;
  std::string workload_name;
  /// True when the VM was destroyed by a churn event before the horizon;
  /// its stats cover [creation, destroyed_at].
  bool destroyed{false};
  bool finished{false};
  double runtime_seconds{0};  // workload completion (finite) or horizon
  double observed_online_rate{0};
  std::uint64_t vcrd_transitions{0};
  double vcrd_high_fraction{0};
  std::uint64_t work_units{0};
  std::vector<double> round_seconds;  // per-round durations
  guest::GuestStats stats;
  // Monitoring Module counters (zero when no monitor attached).
  std::uint64_t over_threshold_events{0};
  std::uint64_t adjusting_events{0};
  // Graceful-degradation state of this VM at the horizon.
  std::uint64_t demotions{0};
  std::uint64_t stale_vcrd_drops{0};
  bool degraded{false};
  // Topology cost-model counters (zero on flat topologies).
  std::uint64_t cross_llc_migrations{0};
  std::uint64_t cross_socket_migrations{0};
  std::uint64_t migration_penalty_cycles{0};
  // Theft metrics (docs/MODEL.md "Threat model & fairness guarantees"):
  // what the VM actually ran vs. what accounting billed it for, and the
  // per-VM defense counters.
  std::uint64_t cycles_consumed{0};
  std::uint64_t cycles_attributed{0};
  /// max(0, consumed - attributed): cycles taken without being billed.
  std::uint64_t theft_cycles{0};
  std::uint64_t dodged_samples{0};
  std::uint64_t boost_grants{0};
  std::uint64_t boost_denials{0};
  std::uint64_t implausible_vcrds{0};
  // Memory-pressure ledger (docs/MODEL.md §2.8; all zero while the
  // contention engine is inert): busy cycles the engine accounted for this
  // VM and their exact effective/degraded split.
  std::uint64_t pressure_accounted{0};
  std::uint64_t pressure_degraded{0};
  std::uint64_t pressure_effective{0};

  /// Mean of the first `n` rounds (or all, if fewer) in seconds.
  double mean_round_seconds(std::size_t n) const;
};

struct RunResult {
  core::SchedulerKind scheduler{core::SchedulerKind::kCredit};
  std::vector<VmResult> vms;
  double elapsed_seconds{0};
  std::uint64_t events{0};
  std::uint64_t migrations{0};
  std::uint64_t cosched_events{0};
  std::uint64_t ipi_sent{0};
  std::uint64_t context_switches{0};
  double idle_fraction{0};
  // Invariant-audit results (zero / empty when no auditor was attached).
  std::uint64_t audit_checks{0};
  std::uint64_t audit_violations{0};
  std::string audit_summary;
  // Fault-injection + graceful-degradation counters (all zero on a
  // fault-free run).
  std::uint64_t ipi_dropped{0};
  std::uint64_t ipi_delayed{0};
  std::uint64_t ipi_duplicated{0};
  std::uint64_t ipi_retries{0};
  std::uint64_t gang_ipi_aborts{0};
  std::uint64_t gang_watchdog_fires{0};
  std::uint64_t vcrd_demotions{0};
  std::uint64_t stale_vcrd_drops{0};
  std::uint64_t hypercall_rejects{0};
  std::uint64_t ignored_kicks{0};
  std::uint64_t evacuated_vcpus{0};
  std::uint64_t pcpu_offline_events{0};
  std::uint64_t injected_flaps{0};
  std::uint64_t injected_corrupt_ops{0};
  std::uint64_t silenced_reports{0};
  // Runtime lifecycle + admission counters (all zero without churn).
  std::uint64_t admission_rejects{0};
  std::uint64_t vm_creates{0};
  std::uint64_t vm_destroys{0};
  std::uint64_t vm_resizes{0};
  std::uint64_t overload_sheds{0};
  std::uint64_t overload_restores{0};
  // Topology cost-model counters (all zero on flat topologies).
  std::uint64_t cross_llc_migrations{0};
  std::uint64_t cross_socket_migrations{0};
  std::uint64_t migration_penalty_cycles{0};
  std::uint64_t topology_steal_rejects{0};
  // Theft-accounting + hardening counters, summed over all VMs (all zero
  // on a run with default resilience and no adversary).
  std::uint64_t boost_grants{0};
  std::uint64_t boost_denials{0};
  std::uint64_t dodged_samples{0};
  std::uint64_t implausible_vcrds{0};
  std::uint64_t theft_cycles{0};
  // Memory-system contention (all zero while the engine is inert).
  std::uint64_t pressure_accounted{0};
  std::uint64_t pressure_degraded{0};
  std::uint64_t pressure_effective{0};
  std::uint64_t pressure_periods{0};
  std::uint64_t pressure_steal_rejects{0};
  std::uint64_t pressure_rebalances{0};
  std::uint64_t footprint_config_errors{0};
  // Jain fairness index over per-accounting-period weighted consumption
  // (1.0 = perfectly fair; fairness_periods = number of scored periods).
  double fairness_min{1.0};
  double fairness_mean{1.0};
  std::uint64_t fairness_periods{0};

  const VmResult& vm(const std::string& name) const;
  /// Lookup by stable hypervisor id (works for destroyed VMs too).
  const VmResult& vm_by_id(vmm::VmId id) const;
};

RunResult run_scenario(const Scenario& sc);

}  // namespace asman::experiments

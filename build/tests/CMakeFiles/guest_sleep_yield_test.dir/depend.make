# Empty dependencies file for guest_sleep_yield_test.
# This may be replaced when dependencies are built.

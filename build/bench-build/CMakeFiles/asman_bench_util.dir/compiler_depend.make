# Empty compiler generated dependencies file for asman_bench_util.
# This may be replaced when dependencies are built.

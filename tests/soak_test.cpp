// Churn x chaos soak harness: every ChaosClass composed with runtime VM
// lifecycle churn (hot creates, destroys incl. mid-gang destruction,
// resizes), audited to zero invariant violations and bit-reproducible per
// seed. This is the nightly-style robustness gate: the `soak` ctest label
// (and the soak/soak-asan CMake presets) run it with ASMAN_AUDIT_FATAL=1
// so the first violation aborts at the offending event.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <iterator>
#include <string>

#include "core/schedulers.h"
#include "experiments/adversary.h"
#include "experiments/chaos.h"
#include "experiments/churn.h"
#include "experiments/cluster.h"
#include "experiments/scenario.h"

namespace asman::experiments {
namespace {

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// Exact serialization (hex-float doubles) including the lifecycle
/// counters and per-VM id/destroyed markers, so equality is bit-equality
/// over everything churn can perturb.
std::string fingerprint(const RunResult& rr) {
  std::string fp;
  append(fp, "ev=%" PRIu64 " mig=%" PRIu64 " cos=%" PRIu64 " ipi=%" PRIu64
             " ctx=%" PRIu64 " idle=%a\n",
         rr.events, rr.migrations, rr.cosched_events, rr.ipi_sent,
         rr.context_switches, rr.idle_fraction);
  append(fp, "adm=%" PRIu64 " cre=%" PRIu64 " des=%" PRIu64 " rez=%" PRIu64
             " shed=%" PRIu64 " rest=%" PRIu64 " rej=%" PRIu64 "\n",
         rr.admission_rejects, rr.vm_creates, rr.vm_destroys, rr.vm_resizes,
         rr.overload_sheds, rr.overload_restores, rr.hypercall_rejects);
  for (const VmResult& v : rr.vms)
    append(fp, "%u:%s dead=%d fin=%d rt=%a online=%a work=%" PRIu64 "\n",
           v.id, v.name.c_str(), v.destroyed ? 1 : 0, v.finished ? 1 : 0,
           v.runtime_seconds, v.observed_online_rate, v.work_units);
  return fp;
}

RunResult run_audited(Scenario sc) {
  sc.audit = true;
  return run_scenario(sc);
}

constexpr core::SchedulerKind kScheds[] = {core::SchedulerKind::kCredit,
                                           core::SchedulerKind::kCon,
                                           core::SchedulerKind::kAsman};

TEST(Soak, ChurnTimesEveryChaosClassAuditsClean) {
  for (const core::SchedulerKind sched : kScheds) {
    for (const ChaosClass c : all_chaos_classes()) {
      SCOPED_TRACE(std::string(core::to_string(sched)) + " x " +
                   to_string(c));
      const RunResult rr =
          run_audited(churn_chaos_scenario(sched, c, /*seed=*/11));
      std::printf("[soak] %-6s x %-12s events=%" PRIu64 " creates=%" PRIu64
                  " destroys=%" PRIu64 " resizes=%" PRIu64
                  " violations=%" PRIu64 "\n",
                  core::to_string(sched), to_string(c), rr.events,
                  rr.vm_creates, rr.vm_destroys, rr.vm_resizes,
                  rr.audit_violations);
      EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
#ifdef ASMAN_AUDIT_ENABLED
      EXPECT_GT(rr.audit_checks, 0u);
#endif
      // The churn actually happened: arrivals, departures (incl. the
      // mid-gang destruction) and Elastic resizes all fired.
      EXPECT_GT(rr.vm_creates, 0u);
      EXPECT_GT(rr.vm_destroys, 0u);
      EXPECT_GT(rr.vm_resizes, 0u);
      EXPECT_TRUE(rr.vm("Gang").destroyed);
      EXPECT_GT(rr.vm("Gang").runtime_seconds, 0.0);
    }
  }
}

TEST(Soak, ChurnChaosRunsAreBitReproduciblePerSeed) {
  for (const ChaosClass c : all_chaos_classes()) {
    SCOPED_TRACE(to_string(c));
    const Scenario sc =
        churn_chaos_scenario(core::SchedulerKind::kAsman, c, /*seed=*/23);
    const std::string a = fingerprint(run_scenario(sc));
    const std::string b = fingerprint(run_scenario(sc));
    EXPECT_GT(a.size(), 0u);
    EXPECT_EQ(a, b) << "churn x " << to_string(c) << " is nondeterministic";
  }
  // Guard the fingerprint: different seeds must actually diverge.
  const std::string a = fingerprint(run_scenario(churn_chaos_scenario(
      core::SchedulerKind::kAsman, ChaosClass::kEverything, 23)));
  const std::string b = fingerprint(run_scenario(churn_chaos_scenario(
      core::SchedulerKind::kAsman, ChaosClass::kEverything, 24)));
  EXPECT_NE(a, b);
}

TEST(Soak, SaturatedChurnCountsRejectionsWithSharesIntact) {
  for (const core::SchedulerKind sched : kScheds) {
    SCOPED_TRACE(core::to_string(sched));
    const RunResult rr = run_audited(saturated_churn_scenario(sched, 7));
    std::printf("[soak] %-6s saturated: rejects=%" PRIu64 " sheds=%" PRIu64
                " violations=%" PRIu64 "\n",
                core::to_string(sched), rr.admission_rejects,
                rr.overload_sheds, rr.audit_violations);
    EXPECT_GT(rr.admission_rejects, 0u)
        << "a 12-arrival storm against a 2.5/PCPU cap must see rejections";
    // "Existing shares unchanged" is enforced by the credit-conservation
    // invariant: the auditor recomputes every VM's expected credit split
    // at each accounting pass, so zero violations means no rejected (or
    // admitted) request ever perturbed another VM's ledger.
    EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
    // Boot-time tenants all survived the storm and kept running.
    for (const char* name : {"Dom0", "Gang", "Hog", "Elastic"}) {
      EXPECT_FALSE(rr.vm(name).destroyed) << name;
      EXPECT_GT(rr.vm(name).observed_online_rate, 0.0) << name;
    }
  }
}

// The adversarial lane: every attack class composed with lifecycle churn
// and one chaos fault family against the hardened host. Fairness must
// hold (attacker within epsilon of share, zero stolen cycles) through
// faults and churn, with a clean audit — and stay bit-reproducible.
TEST(Soak, AdversaryTimesChurnTimesChaosHoldsFairness) {
  // One representative fault family per attack keeps the lane under a
  // second; the full cross product lives in the chaos sweep above.
  const ChaosClass kFault[] = {ChaosClass::kTickJitter, ChaosClass::kIpiLoss,
                               ChaosClass::kVcrdFlap, ChaosClass::kHotplug};
  for (const core::SchedulerKind sched : kScheds) {
    std::size_t fi = 0;
    for (const workloads::AttackKind a : workloads::kAllAttacks) {
      const ChaosClass c = kFault[fi++ % std::size(kFault)];
      SCOPED_TRACE(std::string(core::to_string(sched)) + " x " +
                   workloads::to_string(a) + " x " + to_string(c));
      const RunResult rr =
          run_audited(adversary_churn_chaos_scenario(sched, a, c, 11));
      std::printf("[soak] %-6s x %-12s x %-12s att=%.3f theft=%" PRIu64
                  " violations=%" PRIu64 "\n",
                  core::to_string(sched), workloads::to_string(a),
                  to_string(c), rr.vm("Attacker").observed_online_rate,
                  rr.theft_cycles, rr.audit_violations);
      EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
      EXPECT_LE(rr.vm("Attacker").observed_online_rate,
                kAttackerFairShare + kFairnessEpsilon);
      EXPECT_EQ(rr.theft_cycles, 0u);
      EXPECT_GT(rr.vm_creates, 0u);
      EXPECT_GT(rr.vm_destroys, 0u);
    }
  }
  // Bit-reproducibility of one full attack+churn+chaos composition.
  const Scenario sc = adversary_churn_chaos_scenario(
      core::SchedulerKind::kAsman, workloads::AttackKind::kTickDodge,
      ChaosClass::kEverything, 23);
  EXPECT_EQ(fingerprint(run_scenario(sc)), fingerprint(run_scenario(sc)));
}

// The cluster lane: fleet churn (admissions, retirements, live
// migrations) crossed with host crashes, a degraded window and link loss,
// for every scheduler — audited to zero violations of all ten invariants
// (including single-ownership and cluster credit conservation), no VM
// lost to a crash, and bit-reproducible per seed.
TEST(Soak, ClusterChurnTimesHostCrashAuditsCleanForEveryScheduler) {
  for (const core::SchedulerKind sched : kScheds) {
    SCOPED_TRACE(core::to_string(sched));
    ClusterScenario sc = cluster_chaos_scenario(sched, /*hosts=*/8,
                                                /*n_vms=*/48, /*seed=*/11);
    sc.audit = true;
    const ClusterRunResult rr = run_cluster_scenario(sc);
    std::printf("[soak] %-6s cluster: events=%" PRIu64 " committed=%" PRIu64
                " aborted=%" PRIu64 " crashes=%" PRIu64 " replaced=%" PRIu64
                " violations=%" PRIu64 "\n",
                core::to_string(sched), rr.events, rr.migrations_committed,
                rr.migrations_aborted, rr.host_crashes, rr.vms_replaced,
                rr.audit_violations);
    EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
#ifdef ASMAN_AUDIT_ENABLED
    EXPECT_GT(rr.audit_checks, 0u);
#endif
    // The storm actually happened, and recovery held: crashes landed,
    // every resident VM of a dead host came back elsewhere.
    EXPECT_EQ(rr.host_crashes, 2u);
    EXPECT_GT(rr.migrations_committed, 0u);
    EXPECT_GT(rr.vms_replaced, 0u);
    EXPECT_EQ(rr.vms_lost, 0u);
  }
  // Bit-reproducibility per seed, divergence across seeds.
  const ClusterScenario sc =
      cluster_chaos_scenario(core::SchedulerKind::kAsman, 8, 48, 23);
  const ClusterRunResult a = run_cluster_scenario(sc);
  const ClusterRunResult b = run_cluster_scenario(sc);
  EXPECT_EQ(a.fingerprint, b.fingerprint) << "cluster run is nondeterministic";
  const ClusterRunResult c = run_cluster_scenario(
      cluster_chaos_scenario(core::SchedulerKind::kAsman, 8, 48, 24));
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

TEST(Soak, FaultFreeChurnAuditsCleanForEveryScheduler) {
  for (const core::SchedulerKind sched : kScheds) {
    SCOPED_TRACE(core::to_string(sched));
    const RunResult rr = run_audited(churn_scenario(sched, 5));
    EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
    EXPECT_GT(rr.vm_creates, 0u);
    EXPECT_GT(rr.vm_destroys, 0u);
  }
}

}  // namespace
}  // namespace asman::experiments

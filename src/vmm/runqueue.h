// Per-PCPU run queue.
//
// Ordering follows the paper's Algorithm 4 plus the boost classes: the head
// is the highest priority class present, and within a class the VCPU with
// the maximal credit. The queue stores stable VCPU pointers owned by the
// scheduler's VM table; it never owns them.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "vmm/vcpu.h"

namespace asman::vmm {

class RunQueue {
 public:
  void push(Vcpu* v) { q_.push_back(v); }

  bool remove(Vcpu* v) {
    auto it = std::find(q_.begin(), q_.end(), v);
    if (it == q_.end()) return false;
    q_.erase(it);
    return true;
  }

  bool contains(const Vcpu* v) const {
    return std::find(q_.begin(), q_.end(), v) != q_.end();
  }

  /// True if any VCPU of VM `vm` is queued here.
  bool has_vm(VmId vm) const {
    return std::any_of(q_.begin(), q_.end(),
                       [vm](const Vcpu* v) { return v->key.vm == vm; });
  }

  /// Best dispatch candidate: min priority class, FIFO within a class
  /// (Xen's queue discipline — round-robin among equals, which is what
  /// keeps same-class VCPUs from starving each other regardless of credit
  /// magnitude). `allow_over` gates classes below kUnder (false in pass 1).
  /// Returns nullptr if none eligible.
  Vcpu* best(bool allow_over) const {
    Vcpu* pick = nullptr;
    for (Vcpu* v : q_) {
      if (!allow_over && static_cast<int>(v->prio_class()) >
                             static_cast<int>(PrioClass::kUnder))
        continue;  // OVER and weak-boost candidates wait for pass 2
      if (pick == nullptr ||
          static_cast<int>(v->prio_class()) <
              static_cast<int>(pick->prio_class()))
        pick = v;  // earlier queue position wins within a class
    }
    return pick;
  }

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  const std::vector<Vcpu*>& entries() const { return q_; }

  /// Strict ordering used everywhere a "better VCPU" decision is made.
  static bool better(const Vcpu* a, const Vcpu* b) {
    const auto ca = static_cast<int>(a->prio_class());
    const auto cb = static_cast<int>(b->prio_class());
    if (ca != cb) return ca < cb;
    if (a->credit != b->credit) return a->credit > b->credit;
    if (a->key.vm != b->key.vm) return a->key.vm < b->key.vm;
    return a->key.idx < b->key.idx;
  }

 private:
  std::vector<Vcpu*> q_;
};

}  // namespace asman::vmm

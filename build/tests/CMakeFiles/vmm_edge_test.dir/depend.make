# Empty dependencies file for vmm_edge_test.
# This may be replaced when dependencies are built.

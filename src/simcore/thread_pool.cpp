#include "simcore/thread_pool.h"

#include <utility>

namespace asman::sim {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc == 0 ? 1 : hc;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lk(mu_);
      // Open-coded wait loop (rather than the predicate overload) so the
      // guarded reads of stop_/queue_ stay inside the annotated critical
      // section where -Wthread-safety can see the capability.
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    futs.push_back(submit([&fn, i] { fn(i); }));
  std::exception_ptr first;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace asman::sim

// Lock-holder preemption semantics of the guest kernel's spinlocks,
// exercised through the public futex paths (a holder whose VCPU goes
// offline mid-critical-section strands every spinner until it returns).
#include <gtest/gtest.h>

#include "guest_test_util.h"
#include "workloads/synthetic.h"

namespace asman::guest {
namespace {

using testutil::TestHv;
using testutil::quiet_config;
using workloads::ScriptProgram;

Cycles ms(double v) { return sim::kDefaultClock.from_seconds_f(v * 1e-3); }

class CountingObserver final : public SpinlockObserver {
 public:
  void on_spin_acquired(Cycles waited) override {
    ++acquired;
    if (waited > max_wait) max_wait = waited;
  }
  void on_over_threshold() override { ++over; }
  std::uint64_t acquired{0};
  std::uint64_t over{0};
  Cycles max_wait{0};
};

TEST(Spinlock, UncontendedAcquisitionsAreFast) {
  sim::Simulator s;
  TestHv hv(1);
  GuestKernel g(s, hv, 0, quiet_config(1));
  hv.bind(&g);
  const std::uint32_t sem = g.create_semaphore(5);
  // Five uncontended sem_waits: every internal spinlock acquire is fast.
  std::vector<Op> ops;
  for (int i = 0; i < 5; ++i) ops.push_back(Op::sem_wait(sem));
  g.spawn(std::make_unique<ScriptProgram>(std::move(ops)), 0);
  hv.map(0);
  testutil::run_guest(s, g);
  EXPECT_TRUE(g.all_threads_done());
  EXPECT_EQ(g.stats().spin_contended, 0u);
  EXPECT_LT(g.stats().spin_waits.max_value(), Cycles{1024});
}

// Builds the canonical LHP situation: thread A (vcpu0) sleeps on a futex
// while we deschedule vcpu0 exactly inside its 7000-cycle bucket-lock
// hold; thread B (vcpu1) then posts/wakes, which needs the same bucket
// lock, and must spin for the whole offline span.
class LhpFixture : public ::testing::Test {
 protected:
  void run_lhp(Cycles offline_span) {
    sim::Simulator s;
    TestHv hv(2);
    GuestKernel::Config cfg = quiet_config(2);
    GuestKernel g(s, hv, 0, cfg);
    hv.bind(&g);
    g.set_observer(&obs_);
    const std::uint32_t sem = g.create_semaphore(0);
    // A: waits on the semaphore (enqueue path holds the bucket lock).
    g.spawn(std::make_unique<ScriptProgram>(
                std::vector<Op>{Op::sem_wait(sem)}),
            0);
    // B: computes long enough for A to be mid-enqueue, then posts.
    g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
                Op::compute(Cycles{cfg.syscall_entry.v + 2'000}),
                Op::sem_post(sem)}),
            1);
    hv.map(0);
    hv.map(1);
    // A's timeline: syscall_entry, uncontended acquire, then a 7000-cycle
    // kernel hold. Deschedule vcpu0 1000 cycles into the hold.
    const Cycles preempt_at =
        cfg.syscall_entry + Cycles{1'000};
    s.run_until(preempt_at);
    hv.unmap(0);
    s.run_until(preempt_at + offline_span);
    hv.map(0);
    s.run_while(sim::kDefaultClock.from_seconds_f(1.0),
                [&g] { return !g.all_threads_done(); });
    ASSERT_TRUE(g.all_threads_done());
    stats_contended_ = g.stats().spin_contended;
    max_wait_ = g.stats().spin_waits.max_value();
  }

  CountingObserver obs_;
  std::uint64_t stats_contended_{0};
  Cycles max_wait_{0};
};

TEST_F(LhpFixture, WaiterStallsForOfflineSpan) {
  run_lhp(ms(2.0));
  EXPECT_GE(stats_contended_, 1u);
  // The waker's measured spinlock wait covers the holder's offline span.
  EXPECT_GT(max_wait_, ms(1.8));
  EXPECT_LT(max_wait_, ms(3.0));
}

TEST_F(LhpFixture, OverThresholdReportedForLongStall) {
  run_lhp(ms(2.0));  // 2 ms = ~4.7M cycles > 2^20
  EXPECT_GE(obs_.over, 1u);
}

TEST_F(LhpFixture, ShortPreemptionIsNotOverThreshold) {
  run_lhp(Cycles{100'000});  // ~43 us < 2^20 cycles
  EXPECT_EQ(obs_.over, 0u);
  EXPECT_GE(stats_contended_, 1u);
}

TEST(Spinlock, OverThresholdReportedOncePerWait) {
  // A very long stall must produce exactly one adjusting trigger from the
  // same waiter (reported flag), not one per crossing check.
  sim::Simulator s;
  TestHv hv(2);
  GuestKernel::Config cfg = quiet_config(2);
  GuestKernel g(s, hv, 0, cfg);
  hv.bind(&g);
  CountingObserver obs;
  g.set_observer(&obs);
  const std::uint32_t sem = g.create_semaphore(0);
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{Op::sem_wait(sem)}),
          0);
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
              Op::compute(Cycles{cfg.syscall_entry.v + 2'000}),
              Op::sem_post(sem)}),
          1);
  hv.map(0);
  hv.map(1);
  s.run_until(cfg.syscall_entry + Cycles{1'000});
  hv.unmap(0);
  s.run_until(s.now() + ms(10.0));  // many threshold multiples
  hv.map(0);
  s.run_while(sim::kDefaultClock.from_seconds_f(1.0),
              [&g] { return !g.all_threads_done(); });
  EXPECT_EQ(obs.over, 1u);
}

TEST(Spinlock, SemaphoreWaitsStaySmallDespiteStalls) {
  // Even with the LHP stall above, the *semaphore* histogram only sees the
  // down() path overhead (the stall is attributed to the spinlock).
  sim::Simulator s;
  TestHv hv(2);
  GuestKernel::Config cfg = quiet_config(2);
  GuestKernel g(s, hv, 0, cfg);
  hv.bind(&g);
  const std::uint32_t sem = g.create_semaphore(0);
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{Op::sem_wait(sem)}),
          0);
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
              Op::compute(Cycles{cfg.syscall_entry.v + 2'000}),
              Op::sem_post(sem)}),
          1);
  hv.map(0);
  hv.map(1);
  s.run_until(cfg.syscall_entry + Cycles{1'000});
  hv.unmap(0);
  s.run_until(s.now() + ms(5.0));
  hv.map(0);
  s.run_while(sim::kDefaultClock.from_seconds_f(1.0),
              [&g] { return !g.all_threads_done(); });
  EXPECT_TRUE(g.all_threads_done());
  EXPECT_LT(g.stats().sem_waits.max_value(), sim::pow2_cycles(16));
}

}  // namespace
}  // namespace asman::guest

#include "experiments/tables.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace asman::experiments {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.str();
  std::istringstream in(out);
  std::string l1, l2, l3, l4;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  std::getline(in, l4);
  EXPECT_EQ(l1.size(), l3.size());
  EXPECT_EQ(l3.size(), l4.size());
  EXPECT_NE(l2.find("---"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NE(t.str().find('x'), std::string::npos);
}

TEST(Fmt, Numbers) {
  EXPECT_EQ(fmt_f(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_f(2.0, 0), "2");
  EXPECT_EQ(fmt_pct(0.2222), "22.2%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "asman_tables_test.csv";
  write_csv(path, {"x", "y"}, {{"1", "2"}, {"3", "4"}});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(write_csv("/nonexistent-dir-zz/x.csv", {"a"}, {}),
               std::runtime_error);
}

}  // namespace
}  // namespace asman::experiments

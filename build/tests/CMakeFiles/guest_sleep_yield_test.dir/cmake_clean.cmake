file(REMOVE_RECURSE
  "CMakeFiles/guest_sleep_yield_test.dir/guest_sleep_yield_test.cpp.o"
  "CMakeFiles/guest_sleep_yield_test.dir/guest_sleep_yield_test.cpp.o.d"
  "guest_sleep_yield_test"
  "guest_sleep_yield_test.pdb"
  "guest_sleep_yield_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_sleep_yield_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

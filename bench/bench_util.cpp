#include "bench_util.h"

namespace asman::bench {

int run_bench_main(int argc, char** argv, Sweep& sweep,
                   const std::string& prefix, const Annotator& annotate,
                   const std::function<void(const Sweep&)>& print_tables) {
  benchmark::Initialize(&argc, argv);
  sweep.execute();
  sweep.register_benchmarks(prefix, annotate);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables(sweep);
  // With ASMAN_AUDIT=1 in the environment every simulation ran with the
  // invariant auditor attached (see run_scenario); surface the verdict and
  // fail the binary so CI treats violations as errors.
  const std::uint64_t violations = sweep.audit_violations();
  if (violations > 0) {
    std::fprintf(stderr, "[audit] %llu invariant violation(s) -- see above\n",
                 static_cast<unsigned long long>(violations));
    return 1;
  }
  return 0;
}

}  // namespace asman::bench

// Clang thread-safety analysis attributes (a no-op under other compilers).
//
// The clang lanes compile with -Wthread-safety -Werror, so every access to
// a member declared ASMAN_GUARDED_BY(mu) is statically proven to happen
// with `mu` held — the compile-time side of the discipline asman-lint's
// `thread-safety` rule checks structurally (no Hypervisor/Simulator/RNG
// state reachable from more than one pool worker except through an
// annotated lock). libstdc++'s std::mutex carries no annotations, so the
// annotated sim::Mutex / sim::MutexLock wrappers in simcore/mutex.h are
// the lockable types these attributes name.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define ASMAN_THREAD_ATTR(x) __attribute__((x))
#else
#define ASMAN_THREAD_ATTR(x)
#endif

#define ASMAN_CAPABILITY(x) ASMAN_THREAD_ATTR(capability(x))
#define ASMAN_SCOPED_CAPABILITY ASMAN_THREAD_ATTR(scoped_lockable)
#define ASMAN_GUARDED_BY(x) ASMAN_THREAD_ATTR(guarded_by(x))
#define ASMAN_PT_GUARDED_BY(x) ASMAN_THREAD_ATTR(pt_guarded_by(x))
#define ASMAN_REQUIRES(...) \
  ASMAN_THREAD_ATTR(requires_capability(__VA_ARGS__))
#define ASMAN_ACQUIRE(...) \
  ASMAN_THREAD_ATTR(acquire_capability(__VA_ARGS__))
#define ASMAN_RELEASE(...) \
  ASMAN_THREAD_ATTR(release_capability(__VA_ARGS__))
#define ASMAN_EXCLUDES(...) ASMAN_THREAD_ATTR(locks_excluded(__VA_ARGS__))
#define ASMAN_NO_THREAD_SAFETY_ANALYSIS \
  ASMAN_THREAD_ATTR(no_thread_safety_analysis)

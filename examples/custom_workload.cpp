// Plugging a user-defined workload into the public API.
//
// Implements a small "web server" guest from scratch: request handler
// threads pull work, occasionally rendezvous on a shared cache mutex, and
// a logger thread batches via a semaphore. Demonstrates the three
// extension points a downstream user touches:
//
//   1. guest::ThreadProgram  — the per-thread op stream,
//   2. workloads::Workload   — deployment (sync objects + thread spawn),
//   3. experiments::Scenario — wiring into a machine + scheduler.
//
//   $ ./custom_workload
#include <cstdio>
#include <memory>

#include "experiments/scenario.h"
#include "experiments/tables.h"
#include "guest/program.h"
#include "simcore/rng.h"

using namespace asman;
namespace ex = asman::experiments;

namespace {

// 1. The per-thread program: handle a request (compute), 20% of the time
//    touch the shared cache (critical section), every 16 requests hand a
//    log batch to the logger (sem_post).
class HandlerProgram final : public guest::ThreadProgram {
 public:
  HandlerProgram(std::uint32_t cache_mtx, std::uint32_t log_sem,
                 std::uint64_t requests, std::uint64_t seed,
                 std::uint64_t* served)
      : cache_(cache_mtx), log_(log_sem), left_(requests), rng_(seed),
        served_(served) {}

  const char* name() const override { return "handler"; }

  guest::Op next() override {
    if (pending_cache_) {
      pending_cache_ = false;
      return guest::Op::critical(cache_, sim::kDefaultClock.from_us(15));
    }
    if (pending_log_) {
      pending_log_ = false;
      return guest::Op::sem_post(log_);
    }
    if (left_ == 0) return guest::Op::done();
    --left_;
    ++*served_;
    pending_cache_ = rng_.bernoulli(0.2);
    pending_log_ = left_ % 16 == 0;
    const double len = rng_.positive_jitter(
        static_cast<double>(sim::kDefaultClock.from_us(200).v), 0.4);
    return guest::Op::compute(
        sim::Cycles{static_cast<std::uint64_t>(len)});
  }

 private:
  std::uint32_t cache_, log_;
  std::uint64_t left_;
  sim::Rng rng_;
  std::uint64_t* served_;
  bool pending_cache_{false};
  bool pending_log_{false};
};

class LoggerProgram final : public guest::ThreadProgram {
 public:
  explicit LoggerProgram(std::uint32_t log_sem) : log_(log_sem) {}
  const char* name() const override { return "logger"; }
  guest::Op next() override {
    if (flush_) {
      flush_ = false;
      return guest::Op::compute(sim::kDefaultClock.from_us(60));
    }
    flush_ = true;
    return guest::Op::sem_wait(log_);  // blocks until a batch arrives
  }

 private:
  std::uint32_t log_;
  bool flush_{true};
};

// 2. The workload: creates the sync objects and spawns the threads.
class WebServerWorkload final : public workloads::Workload {
 public:
  WebServerWorkload(std::uint32_t handlers, std::uint64_t requests,
                    std::uint64_t seed)
      : handlers_(handlers), requests_(requests), seed_(seed) {}

  void deploy(guest::GuestKernel& g) override {
    const std::uint32_t cache = g.create_mutex();
    const std::uint32_t log_sem = g.create_semaphore(0);
    sim::SplitMix64 seeds(seed_);
    for (std::uint32_t h = 0; h < handlers_; ++h) {
      g.spawn(std::make_unique<HandlerProgram>(cache, log_sem,
                                               requests_ / handlers_,
                                               seeds.next(), &served_),
              h % g.num_vcpus());
    }
    g.spawn(std::make_unique<LoggerProgram>(log_sem), 0);
  }
  std::string name() const override { return "webserver"; }
  bool finite() const override { return false; }  // logger never retires
  std::uint64_t work_units() const override { return served_; }

 private:
  std::uint32_t handlers_;
  std::uint64_t requests_;
  std::uint64_t seed_;
  std::uint64_t served_{0};
};

}  // namespace

int main() {
  std::printf("custom web-server guest at a 40%% VCPU entitlement\n\n");
  ex::TextTable t({"scheduler", "requests served in 5s", "spin waits >2^20"});
  for (core::SchedulerKind k :
       {core::SchedulerKind::kCredit, core::SchedulerKind::kAsman}) {
    // 3. Scenario wiring: idle dom0 + our VM at weight 64 (40 % online).
    ex::Scenario sc;
    sc.machine.num_pcpus = 8;
    sc.scheduler = k;
    sc.mode = vmm::SchedMode::kNonWorkConserving;
    sc.horizon = sim::kDefaultClock.from_seconds_f(5.0);
    ex::VmSpec dom0;
    dom0.name = "V0";
    dom0.vcpus = 8;
    sc.vms.push_back(dom0);
    ex::VmSpec vm;
    vm.name = "web";
    vm.vcpus = 4;
    vm.weight = 64;
    vm.workload = [](sim::Simulator&, std::uint64_t seed) {
      return std::make_unique<WebServerWorkload>(8, 2'000'000, seed);
    };
    sc.vms.push_back(std::move(vm));
    const ex::RunResult r = ex::run_scenario(sc);
    const ex::VmResult& v = r.vm("web");
    t.add_row({core::to_string(k), std::to_string(v.work_units),
               std::to_string(v.stats.spin_waits.count_above(20))});
  }
  std::printf("%s", t.str().c_str());
  return 0;
}

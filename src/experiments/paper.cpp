#include "experiments/paper.h"

namespace asman::experiments {

hw::MachineConfig paper_machine() {
  hw::MachineConfig m;
  m.num_pcpus = 8;
  m.freq_hz = 2'330'000'000ULL;
  m.slot_ms = 10;
  m.slots_per_accounting = 3;
  return m;
}

WorkloadFactory npb_factory(workloads::NpbBenchmark b, std::uint32_t threads,
                            std::uint64_t rounds) {
  return [b, threads, rounds](sim::Simulator& s, std::uint64_t seed) {
    return workloads::make_npb(s, b, seed, threads, rounds);
  };
}

WorkloadFactory specjbb_factory(std::uint32_t warehouses) {
  return [warehouses](sim::Simulator& s, std::uint64_t seed) {
    workloads::SpecJbbParams p;
    p.warehouses = warehouses;
    return std::make_unique<workloads::SpecJbbWorkload>(s, p, seed);
  };
}

WorkloadFactory gcc_factory(std::uint64_t rounds) {
  return [rounds](sim::Simulator& s, std::uint64_t seed) {
    return std::make_unique<workloads::SpecCpuRateWorkload>(
        s, "176.gcc", workloads::spec_gcc_params(rounds), seed);
  };
}

WorkloadFactory bzip2_factory(std::uint64_t rounds) {
  return [rounds](sim::Simulator& s, std::uint64_t seed) {
    return std::make_unique<workloads::SpecCpuRateWorkload>(
        s, "256.bzip2", workloads::spec_bzip2_params(rounds), seed);
  };
}

Scenario single_vm_scenario(core::SchedulerKind sched, std::uint32_t v1_weight,
                            WorkloadFactory wl, std::uint64_t seed) {
  Scenario sc;
  sc.machine = paper_machine();
  sc.mode = vmm::SchedMode::kNonWorkConserving;
  sc.scheduler = sched;
  sc.seed = seed;

  VmSpec dom0;
  dom0.name = "V0";
  dom0.weight = 256;
  dom0.vcpus = 8;
  dom0.workload = nullptr;
  sc.vms.push_back(dom0);

  VmSpec v1;
  v1.name = "V1";
  v1.weight = v1_weight;
  v1.vcpus = 4;
  v1.type = vmm::VmType::kConcurrent;  // read only by the CON baseline
  v1.workload = std::move(wl);
  sc.vms.push_back(std::move(v1));
  return sc;
}

Scenario multi_vm_scenario(core::SchedulerKind sched,
                           std::vector<std::pair<std::string, WorkloadFactory>>
                               workloads_by_vm,
                           const std::vector<bool>& concurrent,
                           std::uint64_t rounds, std::uint64_t seed) {
  Scenario sc;
  sc.machine = paper_machine();
  sc.mode = vmm::SchedMode::kWorkConserving;
  sc.scheduler = sched;
  sc.seed = seed;
  sc.stop_after_rounds = rounds;
  sc.horizon = sim::kDefaultClock.from_seconds_f(600.0);

  VmSpec dom0;
  dom0.name = "V0";
  dom0.weight = 256;
  dom0.vcpus = 8;
  sc.vms.push_back(dom0);

  for (std::size_t i = 0; i < workloads_by_vm.size(); ++i) {
    VmSpec v;
    v.name = "V" + std::to_string(i + 1);
    v.weight = 256;
    v.vcpus = 4;
    if (i < concurrent.size() && concurrent[i])
      v.type = vmm::VmType::kConcurrent;
    v.workload = std::move(workloads_by_vm[i].second);
    sc.vms.push_back(std::move(v));
  }
  return sc;
}

}  // namespace asman::experiments

// Scoped ownership of a set of pending events.
//
// A multi-host run schedules events on behalf of many components — per-host
// tick machinery, per-migration copy timers, cluster heartbeats — and must
// be able to retire a component's pending events as a unit (a crashed host
// must not fire its copy-completion timer into the rolled-back migration).
// EventScope collects the EventIds a component armed and cancels whatever
// is still pending in one call; already-fired ids are skipped (cancel is
// idempotent on fired events).
#pragma once

#include <vector>

#include "simcore/simulator.h"

namespace asman::sim {

class EventScope {
 public:
  /// Schedule `cb` after `delay` on `s`, tracked by this scope.
  EventId after(Simulator& s, Cycles delay, EventQueue::Callback cb) {
    const EventId id = s.after(delay, std::move(cb));
    ids_.push_back(id);
    compact(s);
    return id;
  }

  /// Schedule `cb` at absolute `when` on `s`, tracked by this scope.
  EventId at(Simulator& s, Cycles when, EventQueue::Callback cb) {
    const EventId id = s.at(when, std::move(cb));
    ids_.push_back(id);
    compact(s);
    return id;
  }

  /// Cancel every still-pending event this scope armed. Returns how many
  /// were actually cancelled (fired/cancelled ids count zero).
  std::size_t cancel_all(Simulator& s) {
    std::size_t n = 0;
    for (const EventId id : ids_)
      if (s.cancel(id)) ++n;
    ids_.clear();
    return n;
  }

  std::size_t tracked() const { return ids_.size(); }

 private:
  /// Keep the id list from growing without bound on long-lived scopes:
  /// once it is large, drop ids whose events already fired. cancel() on a
  /// fired id is a cheap no-op, so the threshold only bounds memory.
  void compact(Simulator& s) {
    if (ids_.size() < 64) return;
    std::vector<EventId> live;
    live.reserve(ids_.size());
    for (const EventId id : ids_)
      if (s.pending(id)) live.push_back(id);
    ids_.swap(live);
  }

  std::vector<EventId> ids_;
};

}  // namespace asman::sim

// audit-seam: the PR-1 auditor maintains a shadow copy of VCPU lifecycle
// state and recomputes credit redistribution from observed transitions. That
// shadow is only honest if every mutation of the real state flows through
// the audited choke points (the AuditSink seam in vmm/audit_sink.h). This
// check makes the discipline structural: a write to VcpuState, run-queue
// membership, or per-VCPU credit anywhere outside the whitelisted audited
// setters is an error, so the shadow can never drift from reality.
#include <string>
#include <unordered_set>
#include <vector>

#include "analyzer.h"

namespace asman_lint {

namespace {

// Audited choke points, matched as ::-aligned suffixes of the qualified
// enclosing-function name. Everything else is off-limits for direct writes.
const std::vector<std::string>& state_writers() {
  static const std::vector<std::string> w{"Hypervisor::set_state"};
  return w;
}
const std::vector<std::string>& queue_writers() {
  static const std::vector<std::string> w{"Hypervisor::enqueue",
                                          "Hypervisor::dequeue"};
  return w;
}
const std::vector<std::string>& credit_writers() {
  static const std::vector<std::string> w{
      "Hypervisor::charge", "Hypervisor::do_accounting",
      "Hypervisor::note_migration", "Hypervisor::drain_vcpu",
      "Hypervisor::seed_credit"};
  return w;
}
// The pressure ledger (PR-9): accounted/degraded/effective splits and the
// per-VCPU pressure mark may only move inside the contention pass — the
// pressure-conservation invariant recomputes the split from published
// engine state, so a write anywhere else is drift it cannot explain.
const std::vector<std::string>& pressure_writers() {
  static const std::vector<std::string> w{"Hypervisor::apply_contention"};
  return w;
}

bool whitelisted(const AnalysisContext& ctx, std::size_t tok,
                 const std::vector<std::string>& writers) {
  for (const std::string& w : writers)
    if (ctx.functions.inside(tok, w)) return true;
  return false;
}

std::string fn_name(const AnalysisContext& ctx, std::size_t tok) {
  const FunctionSpan* s = ctx.functions.enclosing(tok);
  return s != nullptr ? s->name : std::string("<file scope>");
}

bool member_access(const Token& t) {
  return t.kind == Tok::kPunct && (t.text == "." || t.text == "->");
}

}  // namespace

void check_audit_seam(const AnalysisContext& ctx) {
  const std::vector<Token>& t = ctx.unit.toks;

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;

    // (1) VCPU lifecycle state write: `<x>.state = ... VcpuState::...`.
    // Keyed on VcpuState so the guest kernel's TState machine (its own
    // subsystem with its own invariants) is untouched.
    if (t[i].text == "state" && i > 0 && member_access(t[i - 1]) &&
        i + 1 < t.size() && t[i + 1].kind == Tok::kPunct &&
        t[i + 1].text == "=") {
      const StmtRange r = statement_around(t, i);
      bool vcpu_state = false;
      for (std::size_t j = i + 2; j < r.end && !vcpu_state; ++j)
        vcpu_state = t[j].kind == Tok::kIdent && t[j].text == "VcpuState";
      if (vcpu_state && !whitelisted(ctx, i, state_writers()))
        ctx.report(t[i].line, "audit-seam",
                   "direct VcpuState write in '" + fn_name(ctx, i) +
                       "' bypasses the audit shadow; route through "
                       "Hypervisor::set_state");
      continue;
    }

    // (2) Run-queue membership: `<pcpu>.runq.push(...)` / `.remove(...)`.
    if ((t[i].text == "runq" || t[i].text == "runq_") && i + 2 < t.size() &&
        member_access(t[i + 1]) && t[i + 2].kind == Tok::kIdent &&
        (t[i + 2].text == "push" || t[i + 2].text == "remove") &&
        i + 3 < t.size() && t[i + 3].kind == Tok::kPunct &&
        t[i + 3].text == "(") {
      if (!whitelisted(ctx, i, queue_writers()))
        ctx.report(t[i].line, "audit-seam",
                   "direct run-queue " + t[i + 2].text + " in '" +
                       fn_name(ctx, i) +
                       "' bypasses the audited membership seam; route "
                       "through Hypervisor::enqueue/dequeue");
      continue;
    }

    // (3) Per-VCPU credit store: `<x>.credit <op>= ...`. The accounting
    // paths (charge, do_accounting, note_migration, drain_vcpu) are the
    // audited writers; anywhere else the conservation recheck would see a
    // pool it cannot explain.
    if (t[i].text == "credit" && i > 0 && member_access(t[i - 1]) &&
        i + 1 < t.size() && t[i + 1].kind == Tok::kPunct &&
        (t[i + 1].text == "=" || t[i + 1].text == "+=" ||
         t[i + 1].text == "-=" || t[i + 1].text == "*=" ||
         t[i + 1].text == "/=")) {
      if (!whitelisted(ctx, i, credit_writers()))
        ctx.report(t[i].line, "audit-seam",
                   "direct credit write in '" + fn_name(ctx, i) +
                       "' bypasses the audited accounting paths; the "
                       "conservation auditor cannot reconcile it");
      continue;
    }

    // (4) Pressure ledger store: `<x>.pressure_degraded <op>= ...` (and
    // the accounted/effective legs plus the per-VCPU mark). The contention
    // pass is the only writer; the pressure-conservation invariant
    // recomputes the split and would flag the drift anyway — this makes
    // the bypass a build-time error instead of a runtime violation. The
    // ledger legs only ever *accumulate* inside the seam, so plain `=` is
    // exempt for them (results harvesting copies these names field-by-
    // field); the mark is a plain store, so every assignment op counts.
    const bool ledger_leg = t[i].text == "pressure_accounted" ||
                            t[i].text == "pressure_degraded" ||
                            t[i].text == "pressure_effective";
    if ((ledger_leg || t[i].text == "pressure_mark") && i > 0 &&
        member_access(t[i - 1]) && i + 1 < t.size() &&
        t[i + 1].kind == Tok::kPunct &&
        ((!ledger_leg && t[i + 1].text == "=") || t[i + 1].text == "+=" ||
         t[i + 1].text == "-=" || t[i + 1].text == "*=" ||
         t[i + 1].text == "/=")) {
      if (!whitelisted(ctx, i, pressure_writers()))
        ctx.report(t[i].line, "audit-seam",
                   "direct pressure-ledger write in '" + fn_name(ctx, i) +
                       "' bypasses the contention pass; the "
                       "pressure-conservation invariant cannot "
                       "reconcile it");
      continue;
    }
  }
}

void check_audit_seam_cross_tu(const Options& options,
                               const std::vector<std::string>& all_functions,
                               std::vector<Finding>& findings) {
  // The whitelist is only sound if the setters it names still exist: a
  // renamed setter would otherwise silently exempt nothing while direct
  // writes elsewhere get flagged against a phantom. Run in whole-tree mode
  // only (explicit file lists, e.g. fixtures, are partial views).
  if (!options.files.empty()) return;
  std::vector<std::string> required;
  for (const auto* group :
       {&state_writers(), &queue_writers(), &pressure_writers()})
    for (const std::string& w : *group) required.push_back(w);
  for (const std::string& req : required) {
    bool seen = false;
    for (const std::string& fn : all_functions)
      if (qualified_suffix_match(fn, req)) {
        seen = true;
        break;
      }
    if (!seen) {
      Finding f;
      f.file = "<cross-tu>";
      f.line = 0;
      f.check = "audit-seam";
      f.message = "audited setter '" + req +
                  "' not found in the lint scope; the whitelist is stale — "
                  "every state/queue write is now unguarded";
      findings.push_back(std::move(f));
    }
  }
}

const std::vector<std::string>& audited_value_seams() {
  // The credit and pressure writer whitelists, concatenated: the seams
  // where mis-priced arithmetic would corrupt the very ledgers this check
  // guards the writes of. value-range blanket-taints statements inside
  // them so the overflow proof always covers the accounting hot paths.
  static const std::vector<std::string> w = [] {
    std::vector<std::string> v = credit_writers();
    const std::vector<std::string>& p = pressure_writers();
    v.insert(v.end(), p.begin(), p.end());
    return v;
  }();
  return w;
}

}  // namespace asman_lint

#include "audit/report.h"

#include <cstdio>

namespace asman::audit {

std::uint64_t AuditReport::total_checks() const {
  std::uint64_t n = 0;
  for (const Entry& e : by_kind) n += e.checks;
  return n;
}

std::uint64_t AuditReport::total_violations() const {
  std::uint64_t n = 0;
  for (const Entry& e : by_kind) n += e.violations;
  return n;
}

std::string AuditReport::summary() const {
  std::string s;
  char line[256];
  std::snprintf(line, sizeof line,
                "audit: %llu events, %llu full scans, %llu checks, "
                "%llu violation(s)\n",
                static_cast<unsigned long long>(events),
                static_cast<unsigned long long>(full_scans),
                static_cast<unsigned long long>(total_checks()),
                static_cast<unsigned long long>(total_violations()));
  s += line;
  for (std::size_t i = 0; i < kNumInvariants; ++i) {
    const Entry& e = by_kind[i];
    std::snprintf(line, sizeof line, "  %-20s checks=%-10llu violations=%llu",
                  to_string(static_cast<Invariant>(i)),
                  static_cast<unsigned long long>(e.checks),
                  static_cast<unsigned long long>(e.violations));
    s += line;
    if (e.violations > 0) {
      std::snprintf(line, sizeof line, "  first@%llu: %s",
                    static_cast<unsigned long long>(e.first_at.v),
                    e.first_offender.c_str());
      s += line;
    }
    s += '\n';
  }
  return s;
}

}  // namespace asman::audit

// The legal VcpuState transition relation — the single source of truth.
//
// Exactly one definition of this relation exists in the repository. The
// runtime auditor (src/audit/auditor.cpp) consults legal_transition() for
// every observed set_state notification, and asman-lint's `state-machine`
// check (tools/asman_lint/checks_state_machine.cpp) lexes THIS file at
// analysis time to verify every statically determinable set_state call
// site against the same table. Editing the table below therefore changes
// both the runtime and the static checker in one place; duplicating it
// anywhere else defeats the design.
//
// asman-lint parses the initializer of kLegalVcpuTransitions structurally
// (it has no preprocessor), so the table must stay a plain constexpr array
// of `{VcpuState::kFrom, VcpuState::kTo}` pairs — no macros, no computed
// entries.
#pragma once

#include "vmm/types.h"

namespace asman::vmm {

struct VcpuTransition {
  VcpuState from;
  VcpuState to;
};

/// The scheduler's lifecycle contract (paper §3 and docs/MODEL.md §5):
/// Running<->Runnable by dispatch/preempt, Runnable<->Blocked by guest
/// halt/wake, and Destroyed reachable only from a parked state — a
/// Running VCPU is always unmapped (-> Runnable) before it is drained,
/// and a tombstone never transitions again.
inline constexpr VcpuTransition kLegalVcpuTransitions[] = {
    {VcpuState::kRunnable, VcpuState::kRunning},
    {VcpuState::kRunning, VcpuState::kRunnable},
    {VcpuState::kRunnable, VcpuState::kBlocked},
    {VcpuState::kBlocked, VcpuState::kRunnable},
    {VcpuState::kRunnable, VcpuState::kDestroyed},
    {VcpuState::kBlocked, VcpuState::kDestroyed},
};

constexpr bool legal_transition(VcpuState from, VcpuState to) {
  for (const VcpuTransition& t : kLegalVcpuTransitions)
    if (t.from == from && t.to == to) return true;
  return false;
}

}  // namespace asman::vmm

// Timed sleep (Op::kSleep) and sched_yield rotation semantics.
#include <gtest/gtest.h>

#include "guest_test_util.h"
#include "workloads/synthetic.h"

namespace asman::guest {
namespace {

using testutil::TestHv;
using testutil::quiet_config;
using workloads::ScriptProgram;

Cycles ms(double v) { return sim::kDefaultClock.from_seconds_f(v * 1e-3); }

TEST(Sleep, WakesAfterWallDuration) {
  sim::Simulator s;
  TestHv hv(1);
  GuestKernel g(s, hv, 0, quiet_config(1));
  hv.bind(&g);
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
              Op::sleep(ms(5)), Op::compute(Cycles{1'000})}),
          0);
  hv.map(0);
  s.run_until(ms(4));
  EXPECT_FALSE(g.all_threads_done());
  testutil::run_guest(s, g, 1.0);
  EXPECT_TRUE(g.all_threads_done());
  // syscall entry + 5 ms sleep + wake + 1000 cycles, with small overheads.
  EXPECT_GE(g.last_finish_time(), ms(5));
  EXPECT_LT(g.last_finish_time(), ms(6));
}

TEST(Sleep, VcpuHaltsDuringSoleSleeper) {
  sim::Simulator s;
  TestHv hv(1);
  GuestKernel g(s, hv, 0, quiet_config(1));
  hv.bind(&g);
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{Op::sleep(ms(20))}),
          0);
  hv.map(0);
  s.run_until(ms(10));
  EXPECT_FALSE(hv.mapped(0)) << "VCPU should halt while its thread sleeps";
  EXPECT_FALSE(hv.blocks.empty());
  testutil::run_guest(s, g, 1.0);
  EXPECT_TRUE(g.all_threads_done());
  EXPECT_FALSE(hv.kicks.empty()) << "timer wake goes through vcpu_kick";
}

TEST(Sleep, SleeperDoesNotBlockVcpuSibling) {
  sim::Simulator s;
  TestHv hv(1);
  GuestKernel g(s, hv, 0, quiet_config(1));
  hv.bind(&g);
  const Tid sleeper = g.spawn(
      std::make_unique<ScriptProgram>(std::vector<Op>{Op::sleep(ms(50))}), 0);
  const Tid worker = g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
                                 Op::compute(ms(10))}),
                             0);
  hv.map(0);
  testutil::run_guest(s, g, 1.0);
  // The worker's 10 ms of compute finishes well before the sleeper's 50 ms
  // wall wait: sleeping must release the VCPU.
  EXPECT_LT(g.thread_finish_time(worker), ms(12));
  EXPECT_GE(g.thread_finish_time(sleeper), ms(50));
}

TEST(Sleep, ManySleepersInterleaveByWakeTime) {
  sim::Simulator s;
  TestHv hv(2);
  GuestKernel g(s, hv, 0, quiet_config(2));
  hv.bind(&g);
  std::vector<Tid> tids;
  for (int i = 4; i >= 1; --i) {  // longest sleep spawned first
    tids.push_back(g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
                               Op::sleep(ms(5.0 * i))}),
                           static_cast<std::uint32_t>(i) % 2));
  }
  hv.map(0);
  hv.map(1);
  testutil::run_guest(s, g, 1.0);
  for (std::size_t i = 1; i < tids.size(); ++i)
    EXPECT_GT(g.thread_finish_time(tids[i - 1]),
              g.thread_finish_time(tids[i]));
}

TEST(Yield, SpinWaiterYieldsToSameVcpuSibling) {
  // Thread A spins on a spin-only barrier whose partner B lives on the
  // SAME VCPU: without sched_yield rotation, B could only run at quantum
  // boundaries; with it, the rendezvous completes quickly.
  sim::Simulator s;
  TestHv hv(1);
  GuestKernel::Config cfg = quiet_config(1);
  GuestKernel g(s, hv, 0, cfg);
  hv.bind(&g);
  const std::uint32_t bar = g.create_barrier(2, /*spin_only=*/true);
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{Op::barrier(bar)}),
          0);
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
              Op::compute(ms(1)), Op::barrier(bar)}),
          0);
  hv.map(0);
  testutil::run_guest(s, g, 2.0);
  ASSERT_TRUE(g.all_threads_done());
  // A few spin-yield rounds (~30 us each) around B's 1 ms of compute —
  // far below the 6 ms RR quantum it would otherwise take.
  EXPECT_LT(g.last_finish_time(), ms(2.5));
}

TEST(Yield, NoopWhenAlone) {
  // A lone spinner's yields must not deschedule it (empty runqueue).
  sim::Simulator s;
  TestHv hv(2);
  GuestKernel g(s, hv, 0, quiet_config(2));
  hv.bind(&g);
  const std::uint32_t bar = g.create_barrier(2, /*spin_only=*/true);
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{Op::barrier(bar)}),
          0);
  g.spawn(std::make_unique<ScriptProgram>(std::vector<Op>{
              Op::compute(ms(3)), Op::barrier(bar)}),
          1);
  hv.map(0);
  hv.map(1);
  testutil::run_guest(s, g, 2.0);
  ASSERT_TRUE(g.all_threads_done());
  EXPECT_LT(g.last_finish_time(), ms(4));
  // The spinner's yields produced kernel lock traffic the whole time.
  EXPECT_GT(g.stats().spin_acquisitions, 20u);
}

}  // namespace
}  // namespace asman::guest

#include "experiments/cluster.h"

#include <cstdio>

#include "simcore/rng.h"

namespace asman::experiments {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // Boost-style order-sensitive fold; any counter drift or reorder
  // changes the digest.
  return h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
}

std::string vm_name(const char* prefix, std::uint32_t i) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%02u", prefix, i);
  return buf;
}

}  // namespace

ClusterRunResult run_cluster_scenario(const ClusterScenario& sc) {
  sim::Simulator simulation;
  cluster::ClusterConfig cc;
  cc.num_hosts = sc.hosts;
  cc.machine = sc.machine;
  cc.scheduler = sc.scheduler;
  cc.mode = sc.mode;
  cc.resilience = sc.resilience;
  cc.admission = sc.admission;
  cc.recovery = sc.recovery;
  cc.model = sc.model;
  cc.seed = sc.seed;
  cc.audit = sc.audit;
  cc.audit_stride = sc.audit_stride;
  cluster::Cluster cl(simulation, cc);

  for (const cluster::ClusterVmSpec& spec : sc.vms) cl.admit(spec);
  cl.inject(sc.faults);

  // Targets resolve by name at fire time (latest admission wins), so a
  // schedule can retire a VM that an earlier event admitted and a
  // vanished target is a silent no-op — same composability contract as
  // single-host churn.
  const auto find = [&cl](const std::string& name) -> cluster::ClusterVmId {
    for (std::size_t i = cl.num_vms(); i-- > 0;) {
      const cluster::VmRecord& r =
          cl.vm(static_cast<cluster::ClusterVmId>(i));
      if (r.name == name && !r.retired && !r.lost) return r.id;
    }
    return cluster::kInvalidClusterVmId;
  };
  for (const ClusterChurnEvent& ev : sc.churn) {
    simulation.at(ev.at, [&cl, &find, ev] {
      switch (ev.kind) {
        case ClusterChurnEvent::Kind::kAdmit:
          cl.admit(ev.spec);
          break;
        case ClusterChurnEvent::Kind::kRetire: {
          const cluster::ClusterVmId id = find(ev.target);
          if (id != cluster::kInvalidClusterVmId) cl.retire(id);
          break;
        }
        case ClusterChurnEvent::Kind::kMigrate: {
          const cluster::ClusterVmId id = find(ev.target);
          if (id == cluster::kInvalidClusterVmId || !cl.vm_resident(id))
            break;
          const cluster::HostId dst = cl.pick_host(cl.vm(id).host);
          if (dst != cluster::kInvalidHostId) cl.migrate(id, dst);
          break;
        }
      }
    });
  }

  cl.start();
  simulation.run_until(sc.horizon);
  cl.check_now();

  ClusterRunResult rr;
  rr.events = simulation.events_processed();
  rr.elapsed_seconds = sc.machine.clock().to_seconds(simulation.now());
  rr.migrations_started = cl.migrations_started();
  rr.migrations_committed = cl.migrations_committed();
  rr.migrations_aborted = cl.migrations_aborted();
  rr.migrations_retried = cl.migrations_retried();
  rr.precopy_rounds = cl.precopy_rounds();
  rr.link_failures = cl.link_failures();
  rr.phase_timeouts = cl.phase_timeouts();
  rr.tombstoned_copies = cl.tombstoned_copies();
  rr.host_crashes = cl.host_crashes();
  rr.degraded_windows = cl.degraded_windows();
  rr.vms_replaced = cl.vms_replaced();
  rr.vms_lost = cl.vms_lost();
  rr.admission_rejects = cl.admission_rejects();
  rr.heartbeats = cl.heartbeats();
  rr.phase_transitions = cl.phase_transitions();
  for (std::size_t i = 0; i < cl.num_vms(); ++i)
    if (cl.vm_resident(static_cast<cluster::ClusterVmId>(i)))
      ++rr.vms_resident;
  rr.residual_credit = cl.residual_credit();
  rr.crash_credit_delta = cl.crash_credit_delta();
  rr.audit_checks = cl.audit_checks();
  rr.audit_violations = cl.audit_violations();
  rr.audit_summary = cl.audit_summary();

  std::uint64_t h = sc.seed;
  h = mix(h, rr.events);
  h = mix(h, rr.migrations_started);
  h = mix(h, rr.migrations_committed);
  h = mix(h, rr.migrations_aborted);
  h = mix(h, rr.migrations_retried);
  h = mix(h, rr.precopy_rounds);
  h = mix(h, rr.link_failures);
  h = mix(h, rr.phase_timeouts);
  h = mix(h, rr.tombstoned_copies);
  h = mix(h, rr.host_crashes);
  h = mix(h, rr.degraded_windows);
  h = mix(h, rr.vms_replaced);
  h = mix(h, rr.vms_lost);
  h = mix(h, rr.admission_rejects);
  h = mix(h, rr.heartbeats);
  h = mix(h, rr.phase_transitions);
  h = mix(h, rr.vms_resident);
  h = mix(h, static_cast<std::uint64_t>(rr.residual_credit));
  h = mix(h, static_cast<std::uint64_t>(rr.crash_credit_delta));
  // Per-host scheduler state digests the fleet beyond the fabric's own
  // counters: context switches and migrations are exquisitely sensitive
  // to event-order drift.
  for (cluster::HostId hid = 0; hid < cl.num_hosts(); ++hid) {
    const vmm::Hypervisor& hv = cl.host(hid);
    h = mix(h, hv.context_switches());
    h = mix(h, hv.total_migrations());
    h = mix(h, hv.vm_creates());
    h = mix(h, hv.vm_migrations_in());
    h = mix(h, hv.vm_migrations_out());
  }
  rr.fingerprint = h;
  return rr;
}

ClusterScenario cluster_scenario(core::SchedulerKind sched,
                                 std::uint64_t seed) {
  ClusterScenario sc;
  sc.name = "cluster-demo";
  sc.hosts = 4;
  sc.scheduler = sched;
  sc.seed = seed;
  const sim::ClockDomain clock = sc.machine.clock();
  // A dozen mixed tenants: varied weights, gang candidates every fourth.
  for (std::uint32_t i = 0; i < 12; ++i) {
    cluster::ClusterVmSpec v;
    v.name = vm_name("Fleet", i);
    v.weight = 128u << (i % 3);
    v.vcpus = (i % 4 == 3) ? 4 : (i % 2 == 1) ? 2 : 1;
    v.type = (i % 4 == 3) ? vmm::VmType::kConcurrent : vmm::VmType::kGeneral;
    v.ram_mb = 256 + 256 * (i % 3);
    sc.vms.push_back(std::move(v));
  }
  const auto at = [&clock](double s) { return clock.from_seconds_f(s); };
  const auto migrate = [&at](double s, std::uint32_t i) {
    ClusterChurnEvent ev;
    ev.at = at(s);
    ev.kind = ClusterChurnEvent::Kind::kMigrate;
    ev.target = vm_name("Fleet", i);
    return ev;
  };
  sc.churn.push_back(migrate(0.30, 1));
  sc.churn.push_back(migrate(0.50, 5));
  sc.churn.push_back(migrate(0.70, 9));
  {
    ClusterChurnEvent ev;
    ev.at = at(0.90);
    ev.kind = ClusterChurnEvent::Kind::kRetire;
    ev.target = vm_name("Fleet", 3);
    sc.churn.push_back(std::move(ev));
  }
  {
    ClusterChurnEvent ev;
    ev.at = at(1.00);
    ev.kind = ClusterChurnEvent::Kind::kAdmit;
    ev.spec.name = "Hot00";
    ev.spec.vcpus = 2;
    ev.spec.ram_mb = 512;
    sc.churn.push_back(std::move(ev));
  }
  faults::HostFaultSpec crash;
  crash.host = 2;
  crash.at = at(1.20);
  crash.kind = faults::HostFaultKind::kHostCrash;
  sc.faults.host.push_back(crash);
  sc.horizon = at(2.0);
  return sc;
}

ClusterScenario cluster_chaos_scenario(core::SchedulerKind sched,
                                       std::uint32_t hosts,
                                       std::uint32_t n_vms,
                                       std::uint64_t seed) {
  ClusterScenario sc;
  sc.name = "cluster-chaos";
  sc.hosts = hosts;
  sc.scheduler = sched;
  sc.seed = seed;
  const sim::ClockDomain clock = sc.machine.clock();
  const auto at = [&clock](double s) { return clock.from_seconds_f(s); };
  for (std::uint32_t i = 0; i < n_vms; ++i) {
    cluster::ClusterVmSpec v;
    v.name = vm_name("C", i);
    v.weight = 128u << (i % 3);
    v.vcpus = (i % 8 == 3) ? 4 : (i % 4 == 1) ? 2 : 1;
    v.type = v.vcpus == 4 ? vmm::VmType::kConcurrent : vmm::VmType::kGeneral;
    v.ram_mb = 128 + 128 * (i % 4);
    sc.vms.push_back(std::move(v));
  }
  // The storm: migrations, retirements and hot admissions spread across
  // the middle of the run, drawn up front from a dedicated stream (the
  // churn-seed convention of single-host scenarios).
  sim::SplitMix64 rng(seed ^ 0xC1124E5EEDULL);
  const double t0 = 0.10;
  const double span = 0.70;
  const std::uint32_t n_migrations = n_vms / 2;
  const std::uint32_t n_retires = n_vms / 8;
  const std::uint32_t n_admits = n_vms / 8;
  const std::uint32_t total = n_migrations + n_retires + n_admits;
  std::uint32_t k = 0;
  for (std::uint32_t i = 0; i < n_migrations; ++i, ++k) {
    ClusterChurnEvent ev;
    ev.at = at(t0 + span * k / total);
    ev.kind = ClusterChurnEvent::Kind::kMigrate;
    ev.target = vm_name("C", static_cast<std::uint32_t>(rng.next() % n_vms));
    sc.churn.push_back(std::move(ev));
  }
  for (std::uint32_t i = 0; i < n_retires; ++i, ++k) {
    ClusterChurnEvent ev;
    ev.at = at(t0 + span * k / total);
    ev.kind = ClusterChurnEvent::Kind::kRetire;
    ev.target = vm_name("C", static_cast<std::uint32_t>(rng.next() % n_vms));
    sc.churn.push_back(std::move(ev));
  }
  for (std::uint32_t i = 0; i < n_admits; ++i, ++k) {
    ClusterChurnEvent ev;
    ev.at = at(t0 + span * k / total);
    ev.kind = ClusterChurnEvent::Kind::kAdmit;
    ev.spec.name = vm_name("Hot", i);
    ev.spec.vcpus = 1 + static_cast<std::uint32_t>(rng.next() % 2);
    ev.spec.ram_mb = 128 + 128 * static_cast<std::uint64_t>(rng.next() % 3);
    sc.churn.push_back(std::move(ev));
  }
  // Host faults landing inside the storm: two crashes, one degraded
  // window, one link-loss window.
  faults::HostFaultSpec f;
  f.kind = faults::HostFaultKind::kHostCrash;
  f.host = 1 % hosts;
  f.at = at(0.35);
  sc.faults.host.push_back(f);
  f.host = hosts - 1;
  f.at = at(0.60);
  sc.faults.host.push_back(f);
  f.kind = faults::HostFaultKind::kHostDegraded;
  f.host = 2 % hosts;
  f.at = at(0.20);
  f.duration = at(0.30);
  sc.faults.host.push_back(f);
  f.kind = faults::HostFaultKind::kMigrationLinkLoss;
  f.host = 0;
  f.at = at(0.45);
  f.duration = at(0.05);
  sc.faults.host.push_back(f);
  sc.horizon = at(1.2);
  return sc;
}

}  // namespace asman::experiments

#include "audit/invariants.h"

#include <cstdio>
#include <unordered_map>

#include "vmm/hypervisor.h"

namespace asman::audit {

namespace {

std::string key_str(vmm::VcpuKey k) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "v%u.%u", k.vm, k.idx);
  return buf;
}

}  // namespace

const char* to_string(Invariant inv) {
  switch (inv) {
    case Invariant::kCreditBounds:
      return "credit-bounds";
    case Invariant::kCreditConservation:
      return "credit-conservation";
    case Invariant::kQueuePartition:
      return "queue-partition";
    case Invariant::kStateMachine:
      return "state-machine";
    case Invariant::kGangCoherence:
      return "gang-coherence";
    case Invariant::kTimeMonotonic:
      return "time-monotonic";
    case Invariant::kTopologyPlacement:
      return "topology-placement";
    case Invariant::kCycleConservation:
      return "cycle-conservation";
    case Invariant::kSingleOwnership:
      return "single-ownership";
    case Invariant::kClusterCreditConservation:
      return "cluster-credit-conservation";
    case Invariant::kPressureConservation:
      return "pressure-conservation";
  }
  return "?";
}

std::uint64_t check_credit_bounds(const vmm::Hypervisor& hv,
                                  std::vector<Violation>& out) {
  const vmm::Credit cap = hv.credit_cap();
  std::uint64_t checks = 0;
  for (vmm::VmId id = 0; id < hv.num_vms(); ++id) {
    for (const vmm::Vcpu& c : hv.vm(id).vcpus) {
      ++checks;
      if (c.credit > cap || c.credit < -cap)
        out.push_back({Invariant::kCreditBounds,
                       key_str(c.key) + " credit " + std::to_string(c.credit) +
                           " outside [-" + std::to_string(cap) + ", " +
                           std::to_string(cap) + "]"});
    }
  }
  return checks;
}

std::uint64_t check_queue_partition(const vmm::Hypervisor& hv,
                                    std::vector<Violation>& out) {
  const auto& machine = hv.machine();
  std::uint64_t checks = 0;
  // How often each VCPU record is referenced by a queue / a PCPU's current.
  std::unordered_map<const vmm::Vcpu*, int> queued;
  std::unordered_map<const vmm::Vcpu*, int> running;

  for (hw::PcpuId p = 0; p < machine.num_pcpus; ++p) {
    for (const vmm::Vcpu* v : hv.runqueue(p).entries()) {
      ++queued[v];
      ++checks;
      if (v->state != vmm::VcpuState::kRunnable)
        out.push_back({Invariant::kQueuePartition,
                       key_str(v->key) + " queued on P" + std::to_string(p) +
                           " but not kRunnable"});
      if (v->where != p)
        out.push_back({Invariant::kQueuePartition,
                       key_str(v->key) + " queued on P" + std::to_string(p) +
                           " but where=P" + std::to_string(v->where)});
    }
    if (const vmm::Vcpu* cur = hv.running_on(p)) {
      ++running[cur];
      ++checks;
      if (cur->state != vmm::VcpuState::kRunning)
        out.push_back({Invariant::kQueuePartition,
                       key_str(cur->key) + " current on P" +
                           std::to_string(p) + " but not kRunning"});
      if (cur->where != p)
        out.push_back({Invariant::kQueuePartition,
                       key_str(cur->key) + " current on P" +
                           std::to_string(p) + " but where=P" +
                           std::to_string(cur->where)});
    }
  }

  for (vmm::VmId id = 0; id < hv.num_vms(); ++id) {
    for (const vmm::Vcpu& c : hv.vm(id).vcpus) {
      ++checks;
      const int q = queued.count(&c) ? queued.at(&c) : 0;
      const int r = running.count(&c) ? running.at(&c) : 0;
      switch (c.state) {
        case vmm::VcpuState::kRunnable:
          if (q != 1 || r != 0)
            out.push_back(
                {Invariant::kQueuePartition,
                 key_str(c.key) + " runnable but queued on " +
                     std::to_string(q) + " queue(s), current on " +
                     std::to_string(r) + " PCPU(s)"});
          break;
        case vmm::VcpuState::kRunning:
          if (q != 0 || r != 1)
            out.push_back(
                {Invariant::kQueuePartition,
                 key_str(c.key) + " running but current on " +
                     std::to_string(r) + " PCPU(s), queued on " +
                     std::to_string(q) + " queue(s)"});
          break;
        case vmm::VcpuState::kBlocked:
          if (q != 0 || r != 0)
            out.push_back(
                {Invariant::kQueuePartition,
                 key_str(c.key) + " blocked but still referenced (queued " +
                     std::to_string(q) + ", running " + std::to_string(r) +
                     ")"});
          break;
        case vmm::VcpuState::kDestroyed:
          if (q != 0 || r != 0)
            out.push_back(
                {Invariant::kQueuePartition,
                 key_str(c.key) + " destroyed but still referenced (queued " +
                     std::to_string(q) + ", running " + std::to_string(r) +
                     ")"});
          break;
      }
    }
  }
  return checks;
}

std::uint64_t check_gang_coherence(const vmm::Hypervisor& hv,
                                   std::vector<Violation>& out) {
  const std::uint32_t num_pcpus = hv.machine().num_pcpus;
  std::uint64_t checks = 0;
  for (vmm::VmId id = 0; id < hv.num_vms(); ++id) {
    const vmm::Vm& v = hv.vm(id);
    // Placement is only promised when a gang can fit (Algorithm 3 gives up
    // when a VM has more VCPUs than the machine has PCPUs).
    if (!hv.gang_scheduled(id) || v.num_vcpus() > num_pcpus) continue;
    ++checks;
    std::vector<const vmm::Vcpu*> holder(num_pcpus, nullptr);
    for (const vmm::Vcpu& c : v.vcpus) {
      const vmm::Vcpu*& h = holder[c.where];
      if (h != nullptr)
        out.push_back({Invariant::kGangCoherence,
                       v.name + ": " + key_str(c.key) + " and " +
                           key_str(h->key) + " both placed on P" +
                           std::to_string(c.where)});
      h = &c;
    }
  }
  return checks;
}

std::uint64_t check_cycle_conservation(const vmm::Hypervisor& hv,
                                       std::vector<Violation>& out) {
  std::uint64_t checks = 0;
  // (a) Machine-wide ledger: VM-side online time and PCPU-side busy time
  // are maintained at the same burn instants, so they agree exactly at
  // every event boundary — an in-flight span is absent from both sides.
  // Per-VM totals survive destruction (tombstone statistics), so the
  // equality holds across the whole lifecycle including churn.
  std::uint64_t vm_side = 0;
  for (vmm::VmId id = 0; id < hv.num_vms(); ++id)
    vm_side += hv.vm(id).total_online.v;
  std::uint64_t pcpu_side = 0;
  for (hw::PcpuId p = 0; p < hv.machine().num_pcpus; ++p)
    pcpu_side += hv.pcpu_busy_total(p).v;
  ++checks;
  if (vm_side != pcpu_side)
    out.push_back({Invariant::kCycleConservation,
                   "consumed-cycle ledger split: VMs consumed " +
                       std::to_string(vm_side) + " cycles but PCPUs were " +
                       "busy " + std::to_string(pcpu_side)});

  const std::uint64_t slot = hv.machine().slot_cycles().v;
  const vmm::AccountingMode mode = hv.resilience().accounting;
  for (vmm::VmId id = 0; id < hv.num_vms(); ++id) {
    const vmm::Vm& v = hv.vm(id);
    ++checks;
    if (mode == vmm::AccountingMode::kExact) {
      // (c) Tickless accounting bills every burned span in full, at the
      // same instants: attribution must track consumption exactly.
      if (v.cycles_attributed != v.total_online)
        out.push_back({Invariant::kCycleConservation,
                       v.name + " attributed " +
                           std::to_string(v.cycles_attributed.v) +
                           " != consumed " +
                           std::to_string(v.total_online.v) +
                           " under exact accounting"});
    } else {
      // (b) Sampled accounting only ever bills whole slots.
      if (v.cycles_attributed.v % slot != 0)
        out.push_back({Invariant::kCycleConservation,
                       v.name + " attributed " +
                           std::to_string(v.cycles_attributed.v) +
                           " cycles, not a whole-slot multiple of " +
                           std::to_string(slot)});
    }
  }
  return checks;
}

std::uint64_t check_pressure_conservation(const vmm::Hypervisor& hv,
                                          std::vector<Violation>& out) {
  // Ledger half of the invariant; the partition half is event-scoped to
  // engine passes (Auditor::on_contention recomputes it from scratch).
  // Integer equalities, checked exactly: tombstones keep their final
  // ledgers, so the per-VM sums and the machine totals — maintained at the
  // same apply_contention instants — can only diverge if someone wrote the
  // ledger outside the audited seam.
  std::uint64_t checks = 0;
  std::uint64_t accounted = 0;
  std::uint64_t degraded = 0;
  std::uint64_t effective = 0;
  for (vmm::VmId id = 0; id < hv.num_vms(); ++id) {
    const vmm::Vm& v = hv.vm(id);
    ++checks;
    if (v.pressure_effective + v.pressure_degraded != v.pressure_accounted)
      out.push_back({Invariant::kPressureConservation,
                     v.name + " pressure ledger split: effective " +
                         std::to_string(v.pressure_effective) +
                         " + degraded " + std::to_string(v.pressure_degraded) +
                         " != accounted " +
                         std::to_string(v.pressure_accounted)});
    accounted += v.pressure_accounted;
    degraded += v.pressure_degraded;
    effective += v.pressure_effective;
  }
  ++checks;
  if (accounted != hv.pressure_accounted_total() ||
      degraded != hv.pressure_degraded_total() ||
      effective != hv.pressure_effective_total())
    out.push_back({Invariant::kPressureConservation,
                   "machine pressure totals diverge from per-VM sums: "
                   "accounted " +
                       std::to_string(hv.pressure_accounted_total()) + "/" +
                       std::to_string(accounted) + ", degraded " +
                       std::to_string(hv.pressure_degraded_total()) + "/" +
                       std::to_string(degraded) + ", effective " +
                       std::to_string(hv.pressure_effective_total()) + "/" +
                       std::to_string(effective)});
  return checks;
}

std::uint64_t check_topology_placement(const vmm::Hypervisor& hv,
                                       vmm::VmId id,
                                       std::vector<Violation>& out) {
  // Vacuous unless topology-aware placement is live and the gang both
  // wants coscheduling and fits the online PCPUs (relocate_vm gives up
  // otherwise, just like the gang-coherence invariant).
  if (!hv.topology_aware() || hv.topology().is_flat()) return 0;
  if (!hv.vm_alive(id)) return 0;
  const vmm::Vm& v = hv.vm(id);
  if (!hv.gang_scheduled(id) || v.num_vcpus() > hv.online_pcpus()) return 0;
  // The minimal-packing computation is the scheduler's own
  // (gang_socket_set, via placement_spans_excess_sockets), so the checker
  // flags exactly the placements relocate_vm_topo would never produce.
  if (hv.placement_spans_excess_sockets(id)) {
    std::vector<bool> used(hv.topology().num_sockets(), false);
    std::uint32_t spanned = 0;
    for (const vmm::Vcpu& c : v.vcpus) {
      const std::uint32_t s = hv.topology().socket_of(c.where);
      if (!used[s]) {
        used[s] = true;
        ++spanned;
      }
    }
    out.push_back({Invariant::kTopologyPlacement,
                   v.name + " spans " + std::to_string(spanned) +
                       " socket(s) after relocation; a tighter packing " +
                       "existed"});
  }
  return 1;
}

}  // namespace asman::audit

# Empty compiler generated dependencies file for runqueue_test.
# This may be replaced when dependencies are built.

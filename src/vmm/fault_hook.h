// Hardware-fault seam of the VMM scheduler.
//
// The hypervisor consults an installed FaultHook at the points where a
// misbehaving substrate would perturb it; the production implementation is
// faults::FaultInjector (src/faults/). Like the audit seam, this header
// keeps the VMM free of any dependency on the fault library. With no hook
// installed every query returns the benign answer, so fault-free runs are
// bit-identical to the pre-seam scheduler.
#pragma once

#include "vmm/types.h"

namespace asman::vmm {

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Extra delay added to the next slot tick of `p` (timer-tick jitter).
  /// Called once per armed tick, in arming order; implementations must be
  /// deterministic functions of their own seeded state.
  virtual Cycles tick_jitter(PcpuId p) = 0;
};

}  // namespace asman::vmm

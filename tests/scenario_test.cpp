// Scenario runner end-to-end behaviour (small, fast configurations).
#include "experiments/scenario.h"

#include <gtest/gtest.h>

#include "experiments/paper.h"
#include "experiments/runner.h"
#include "workloads/synthetic.h"

namespace asman::experiments {
namespace {

Scenario tiny_scenario(core::SchedulerKind k) {
  Scenario sc;
  sc.machine.num_pcpus = 2;
  sc.scheduler = k;
  sc.mode = vmm::SchedMode::kWorkConserving;
  sc.horizon = sim::kDefaultClock.from_seconds_f(5.0);
  VmSpec v;
  v.name = "V1";
  v.vcpus = 2;
  v.workload = [](sim::Simulator&, std::uint64_t seed) {
    return std::make_unique<workloads::LockHammerWorkload>(
        2, 100, sim::kDefaultClock.from_us(50),
        sim::kDefaultClock.from_us(10), seed);
  };
  sc.vms.push_back(std::move(v));
  return sc;
}

TEST(Scenario, FiniteWorkloadRunsToCompletion) {
  const RunResult r = run_scenario(tiny_scenario(core::SchedulerKind::kCredit));
  ASSERT_EQ(r.vms.size(), 1u);
  const VmResult& v = r.vm("V1");
  EXPECT_TRUE(v.finished);
  EXPECT_GT(v.runtime_seconds, 0.0);
  EXPECT_LT(v.runtime_seconds, 5.0);  // stopped before the horizon
  EXPECT_EQ(v.workload_name, "lock-hammer");
  EXPECT_GT(r.events, 100u);
}

TEST(Scenario, VmLookupByNameThrowsOnUnknown) {
  const RunResult r = run_scenario(tiny_scenario(core::SchedulerKind::kCredit));
  EXPECT_NO_THROW(r.vm("V1"));
  EXPECT_THROW(r.vm("nope"), std::out_of_range);
}

TEST(Scenario, IdleVmContributesNothing) {
  Scenario sc = tiny_scenario(core::SchedulerKind::kCredit);
  VmSpec idle;
  idle.name = "V0";
  idle.vcpus = 2;
  idle.workload = nullptr;
  sc.vms.insert(sc.vms.begin(), std::move(idle));
  const RunResult r = run_scenario(sc);
  EXPECT_LT(r.vm("V0").observed_online_rate, 0.02);
}

TEST(Scenario, DeterministicForSeed) {
  Scenario sc = tiny_scenario(core::SchedulerKind::kCredit);
  sc.seed = 99;
  const RunResult a = run_scenario(sc);
  const RunResult b = run_scenario(sc);
  EXPECT_DOUBLE_EQ(a.vm("V1").runtime_seconds, b.vm("V1").runtime_seconds);
  EXPECT_EQ(a.events, b.events);
  sc.seed = 100;
  const RunResult c = run_scenario(sc);
  EXPECT_NE(a.vm("V1").runtime_seconds, c.vm("V1").runtime_seconds);
}

TEST(Scenario, StopAfterRoundsHonoured) {
  Scenario sc;
  sc.machine.num_pcpus = 2;
  sc.horizon = sim::kDefaultClock.from_seconds_f(30.0);
  sc.stop_after_rounds = 2;
  VmSpec v;
  v.name = "V1";
  v.vcpus = 2;
  v.workload = [](sim::Simulator& s, std::uint64_t seed) {
    workloads::PhaseParams p;
    p.threads = 2;
    p.steps = 10;
    p.compute_mean = sim::kDefaultClock.from_us(100);
    p.rounds = 50;
    return std::make_unique<workloads::PhaseWorkload>(s, "r", p, seed);
  };
  sc.vms.push_back(std::move(v));
  const RunResult r = run_scenario(sc);
  const VmResult& res = r.vm("V1");
  EXPECT_GE(res.round_seconds.size(), 2u);
  EXPECT_LE(res.round_seconds.size(), 4u);  // stopped soon after round 2
  EXPECT_GT(res.mean_round_seconds(2), 0.0);
}

TEST(Scenario, MonitorAttachedOnlyUnderAsman) {
  for (core::SchedulerKind k :
       {core::SchedulerKind::kCredit, core::SchedulerKind::kAsman}) {
    Scenario sc = tiny_scenario(k);
    const RunResult r = run_scenario(sc);
    if (k == core::SchedulerKind::kAsman) {
      SUCCEED();  // adjusting events may or may not occur in 5 s
    } else {
      EXPECT_EQ(r.vm("V1").adjusting_events, 0u);
      EXPECT_EQ(r.vm("V1").vcrd_transitions, 0u);
    }
  }
}

TEST(PaperConfigs, SingleVmScenarioShape) {
  Scenario sc = single_vm_scenario(core::SchedulerKind::kAsman, 64,
                                   npb_factory(workloads::NpbBenchmark::kEP));
  ASSERT_EQ(sc.vms.size(), 2u);
  EXPECT_EQ(sc.vms[0].name, "V0");
  EXPECT_EQ(sc.vms[0].vcpus, 8u);
  EXPECT_EQ(sc.vms[0].weight, 256u);
  EXPECT_FALSE(static_cast<bool>(sc.vms[0].workload));
  EXPECT_EQ(sc.vms[1].weight, 64u);
  EXPECT_EQ(sc.vms[1].vcpus, 4u);
  EXPECT_EQ(sc.mode, vmm::SchedMode::kNonWorkConserving);
  EXPECT_EQ(sc.machine.num_pcpus, 8u);
}

TEST(PaperConfigs, MultiVmScenarioShape) {
  Scenario sc = multi_vm_scenario(
      core::SchedulerKind::kCon,
      {{"a", gcc_factory(5)}, {"b", npb_factory(workloads::NpbBenchmark::kSP)}},
      {false, true}, 3);
  ASSERT_EQ(sc.vms.size(), 3u);  // dom0 + 2
  EXPECT_EQ(sc.mode, vmm::SchedMode::kWorkConserving);
  EXPECT_EQ(sc.stop_after_rounds, 3u);
  EXPECT_EQ(sc.vms[1].type, vmm::VmType::kGeneral);
  EXPECT_EQ(sc.vms[2].type, vmm::VmType::kConcurrent);
}

TEST(PaperConfigs, RatePointsMatchEquation2) {
  for (const RatePoint& rp : kRatePoints) {
    const double omega =
        static_cast<double>(rp.weight) / (256.0 + rp.weight);
    EXPECT_NEAR(8.0 * omega / 4.0, rp.rate, 5e-4);
  }
}

TEST(Runner, SweepPreservesOrder) {
  std::vector<SweepPoint> pts;
  for (int i = 0; i < 3; ++i) {
    Scenario sc = tiny_scenario(core::SchedulerKind::kCredit);
    sc.seed = static_cast<std::uint64_t>(i + 1);
    pts.push_back({"p" + std::to_string(i), std::move(sc)});
  }
  const auto results = run_sweep(pts, 2);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) EXPECT_TRUE(r.vm("V1").finished);
  // Order is by input, not completion: seeds differ so runtimes differ,
  // and re-running yields identical values (determinism through the pool).
  const auto again = run_sweep(pts, 2);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(results[i].vm("V1").runtime_seconds,
                     again[i].vm("V1").runtime_seconds);
}

TEST(Runner, RepeatedProtocolSummarizes) {
  Scenario sc = tiny_scenario(core::SchedulerKind::kCredit);
  const sim::Summary s = run_repeated(
      sc, 5, [](const RunResult& r) { return r.vm("V1").runtime_seconds; }, 2);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_GT(s.mean(), 0.0);
  EXPECT_LT(s.cv(), 0.5);
}

}  // namespace
}  // namespace asman::experiments

// The Monitoring Module (paper §3.3, Algorithm 1 driver).
//
// Runs "inside the guest kernel" of one VM: it observes every kernel
// spinlock acquisition (via guest::SpinlockObserver), and when a waiter's
// wall-clock waiting time crosses the over-threshold limit (2^delta cycles,
// delta = 20) it fires a VCRD adjusting event:
//
//   1. asks the LearningEstimator for the lasting time x_{i+1} of the
//      locality of synchronization that is starting,
//   2. raises the VM's VCRD to HIGH via the do_vcrd_op hypercall,
//   3. arms a timer for x_{i+1}; when it expires,
//        - if no over-threshold spinlock occurred inside the window the
//          VCRD drops back to LOW (hypercall again),
//        - otherwise the next adjusting event is invoked immediately and
//          the VM stays HIGH with a fresh estimate (Algorithm 1 lines 9-14).
#pragma once

#include <cstdint>
#include <vector>

#include "core/learning.h"
#include "guest/observer.h"
#include "simcore/simulator.h"
#include "vmm/ports.h"

namespace asman::core {

struct MonitorConfig {
  /// delta: waits above 2^delta_exp cycles are over-threshold (paper: 20).
  unsigned delta_exp{20};
  LearningConfig learning{};
  /// Ablation knob: when nonzero, use this fixed coscheduling window
  /// instead of the learning estimator (the paper's design question: does
  /// adaptive estimation beat a hand-picked constant?).
  Cycles fixed_window{0};
};

class MonitoringModule final : public guest::SpinlockObserver {
 public:
  MonitoringModule(sim::Simulator& simulation, vmm::HypervisorPort& hypervisor,
                   vmm::VmId vm_id, const MonitorConfig& cfg);

  // --- guest::SpinlockObserver ---
  void on_spin_acquired(Cycles waited) override;
  void on_over_threshold() override;

  // --- introspection ---
  bool high() const { return high_; }
  std::uint64_t adjusting_events() const { return adjusting_events_; }
  std::uint64_t over_threshold_events() const { return over_events_; }
  std::uint64_t windows_completed_quiet() const { return quiet_windows_; }
  std::uint64_t windows_extended() const { return extended_windows_; }
  Cycles threshold() const { return Cycles{1ULL << cfg_.delta_exp}; }
  const LearningEstimator& estimator() const { return learner_; }

 private:
  void begin_window();
  void window_expired(std::uint64_t token);

  sim::Simulator& sim_;
  vmm::HypervisorPort& hv_;
  vmm::VmId vm_;
  MonitorConfig cfg_;
  LearningEstimator learner_;

  bool high_{false};
  bool saw_over_in_window_{false};
  std::uint64_t window_token_{0};

  std::uint64_t adjusting_events_{0};
  std::uint64_t over_events_{0};
  std::uint64_t quiet_windows_{0};
  std::uint64_t extended_windows_{0};
};

}  // namespace asman::core

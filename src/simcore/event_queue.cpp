#include "simcore/event_queue.h"

#include <cassert>
#include <utility>

namespace asman::sim {

EventId EventQueue::schedule(Cycles at, Callback cb) {
  const EventId id{next_seq_++};
  heap_.push(Entry{at, id.seq, std::move(cb)});
  pending_seqs_.insert(id.seq);
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  // An id is pending iff it was issued, not yet fired, and not yet
  // cancelled. Fired entries are removed from the heap eagerly, so a stale
  // id can only match a heap entry if it is still pending.
  const bool inserted = cancelled_.insert(id.seq).second;
  if (!inserted) return false;
  if (pending_seqs_.erase(id.seq) == 0) {
    cancelled_.erase(id.seq);
    return false;
  }
  --live_count_;
  return true;
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

Cycles EventQueue::next_time() const {
  skip_cancelled();
  return heap_.empty() ? Cycles::max() : heap_.top().at;
}

Cycles EventQueue::pop_and_run() {
  skip_cancelled();
  assert(!heap_.empty());
  // Move the callback out before popping so re-entrant schedule() calls in
  // the callback cannot invalidate the entry mid-flight.
  Entry top = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_seqs_.erase(top.seq);
  --live_count_;
  top.cb();
  return top.at;
}

}  // namespace asman::sim

// Clang libTooling engine for asman-lint (--engine ast).
//
// Compiled only when CMake is configured with -DASMAN_LINT_CLANG=ON (or
// AUTO finds a Clang dev install); the pinned-LLVM `lint-static` CI lane is
// the intended home. It re-verifies the portable engine's disciplines with
// real semantic information — overload resolution decides whether `time(`
// is ::time or the simulator's clock-domain accessor, and types decide what
// is floating-point — rather than token-pattern evidence. The portable
// engine stays the source of truth for the tier-1 `lint` test label; this
// engine exists to catch what a lexer structurally cannot (macro-laundered
// calls, using-declarations, typedef chains).
//
// Deliberately avoids CommonOptionsParser (its signature churns across LLVM
// majors); the compilation database is loaded directly.
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"

#include "lexer.h"
#include "model.h"
#include "report.h"
#include "sarif.h"

namespace asman_lint {
namespace {

namespace fs = std::filesystem;
using namespace clang;              // NOLINT(google-build-using-namespace)
using namespace clang::ast_matchers;  // NOLINT(google-build-using-namespace)

std::string display_path(const std::string& path, const std::string& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root.empty() ? "." : root, ec);
  if (ec || rel.empty() || rel.native().compare(0, 2, "..") == 0) return path;
  return rel.generic_string();
}

/// Collects findings from matcher callbacks, scoped to the first-party
/// prefix and reported through the same ledger as the portable engine.
class Collector : public MatchFinder::MatchCallback {
 public:
  Collector(const Options& options, std::vector<Finding>& findings)
      : options_(options), findings_(findings) {}

  void run(const MatchFinder::MatchResult& result) override {
    const SourceManager& sm = *result.SourceManager;
    const auto add = [&](SourceLocation loc, const char* check,
                         std::string message) {
      if (loc.isInvalid()) return;
      const SourceLocation spelling = sm.getSpellingLoc(loc);
      if (!sm.isInMainFile(sm.getExpansionLoc(loc))) return;
      const PresumedLoc p = sm.getPresumedLoc(spelling);
      if (p.isInvalid()) return;
      const std::string disp = display_path(p.getFilename(), options_.root);
      if (!under_any_prefix(disp, options_)) return;
      Finding f;
      f.file = disp;
      f.line = static_cast<int>(p.getLine());
      f.check = check;
      f.message = std::move(message);
      findings_.push_back(std::move(f));
    };

    if (const auto* call = result.Nodes.getNodeAs<CallExpr>("banned-call")) {
      std::string name = "<call>";
      if (const FunctionDecl* fd = call->getDirectCallee())
        name = fd->getQualifiedNameAsString();
      // Parity with the portable engine's getenv confinement proof: a
      // getenv result captured into a local inside a bool-returning
      // predicate (the auditor's arming switch) is host config, not
      // simulation state.
      if (name == "getenv" || name == "::getenv" || name == "std::getenv") {
        const auto& ctx = *result.Context;
        bool in_bool_fn = false, into_var = false;
        DynTypedNodeList parents = ctx.getParents(*call);
        for (int hops = 0; hops < 32 && !parents.empty(); ++hops) {
          const DynTypedNode& parent = parents[0];
          if (const auto* vd = parent.get<VarDecl>()) {
            (void)vd;
            into_var = true;
          }
          if (const auto* fd = parent.get<FunctionDecl>()) {
            in_bool_fn = fd->getReturnType()->isBooleanType();
            break;
          }
          parents = ctx.getParents(parent);
        }
        if (into_var && in_bool_fn) return;
      }
      add(call->getBeginLoc(), "determinism",
          "call to '" + name +
              "' injects host state into the simulation; all randomness/"
              "time must flow through the seeded simcore::rng / sim clock");
    }
    if (const auto* var = result.Nodes.getNodeAs<VarDecl>("banned-var")) {
      add(var->getLocation(), "determinism",
          "variable of nondeterministic type '" +
              var->getType().getAsString() +
              "'; use the seeded simcore::rng engine");
    }
    if (const auto* cmp =
            result.Nodes.getNodeAs<BinaryOperator>("addr-order")) {
      add(cmp->getOperatorLoc(), "determinism",
          "relational comparison of pointers orders by allocation layout, "
          "which varies run to run; order by stable keys (VcpuKey) instead");
    }
    if (const auto* assign =
            result.Nodes.getNodeAs<BinaryOperator>("credit-float")) {
      add(assign->getOperatorLoc(), "integer-credit",
          "floating point reaching a credit store; credit is exact integer "
          "fixed-point and must stay __int128/int64");
    }
    if (const auto* cast =
            result.Nodes.getNodeAs<ExplicitCastExpr>("credit-narrow")) {
      const QualType dst = cast->getTypeAsWritten();
      if (dst->isIntegerType() &&
          result.Context->getTypeSize(dst) < 64)
        add(cast->getBeginLoc(), "integer-credit",
            "narrowing cast of a credit quantity to '" + dst.getAsString() +
                "' discards range; credit stays __int128/int64 end to end");
    }
  }

 private:
  const Options& options_;
  std::vector<Finding>& findings_;
};

}  // namespace

int run_clang_engine(const Options& options,
                     const std::vector<std::string>& files) {
  std::string err;
  std::unique_ptr<tooling::CompilationDatabase> db;
  if (!options.compile_db.empty())
    db = tooling::CompilationDatabase::loadFromDirectory(options.compile_db,
                                                         err);
  if (!db && !files.empty())
    db = std::make_unique<tooling::FixedCompilationDatabase>(
        ".", std::vector<std::string>{"-std=c++20"});
  if (!db) {
    std::fprintf(stderr,
                 "asman-lint: --engine ast needs -p BUILD_DIR with a "
                 "compile_commands.json (%s)\n",
                 err.c_str());
    return 2;
  }

  std::vector<std::string> sources = files;
  if (sources.empty()) {
    for (const std::string& f : db->getAllFiles()) {
      const std::string disp = display_path(f, options.root);
      if (under_any_prefix(disp, options)) sources.push_back(f);
    }
  }
  if (sources.empty()) {
    std::fprintf(stderr, "asman-lint: no files in scope\n");
    return 2;
  }

  std::vector<Finding> findings;
  Collector collector(options, findings);
  MatchFinder finder;

  // determinism: host entropy / wall-clock calls. Leading :: pins the
  // global namespace, so the simulator's own `clock()` members are immune.
  finder.addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::rand", "::srand", "::drand48", "::lrand48", "::random",
                   "::time", "::clock", "::getenv", "::gettimeofday",
                   "::clock_gettime", "::timespec_get", "::rand_r"))))
          .bind("banned-call"),
      &collector);
  finder.addMatcher(
      callExpr(callee(cxxMethodDecl(
                   hasName("now"),
                   ofClass(hasAnyName("::std::chrono::system_clock",
                                      "::std::chrono::steady_clock",
                                      "::std::chrono::high_resolution_clock")))))
          .bind("banned-call"),
      &collector);
  finder.addMatcher(
      varDecl(hasType(cxxRecordDecl(hasAnyName(
                  "::std::random_device", "::std::mt19937", "::std::mt19937_64",
                  "::std::default_random_engine", "::std::minstd_rand"))))
          .bind("banned-var"),
      &collector);
  // determinism: pointer relational comparison (address ordering).
  finder.addMatcher(
      binaryOperator(isComparisonOperator(),
                     unless(hasAnyOperatorName("==", "!=")),
                     hasLHS(hasType(pointerType())),
                     hasRHS(hasType(pointerType())))
          .bind("addr-order"),
      &collector);
  // integer-credit: floating point flowing into a credit member store.
  finder.addMatcher(
      binaryOperator(isAssignmentOperator(),
                     hasLHS(memberExpr(member(matchesName("[Cc]redit")))),
                     hasRHS(anyOf(hasType(realFloatingPointType()),
                                  hasDescendant(expr(hasType(
                                      realFloatingPointType()))))))
          .bind("credit-float"),
      &collector);
  // integer-credit: explicit narrowing of a credit quantity (width checked
  // semantically in the callback).
  finder.addMatcher(
      explicitCastExpr(hasSourceExpression(ignoringImpCasts(
                           memberExpr(member(matchesName("[Cc]redit"))))))
          .bind("credit-narrow"),
      &collector);

  tooling::ClangTool tool(*db, sources);
  const int tool_rc =
      tool.run(tooling::newFrontendActionFactory(&finder).get());
  if (tool_rc != 0) {
    std::fprintf(stderr,
                 "asman-lint: clang engine: %d TU(s) failed to parse\n",
                 tool_rc);
    return 2;
  }

  // Route suppressions through the same allow-pragma ledger: lex each
  // flagged file once and apply its pragmas to these findings.
  std::map<std::string, FileUnit> units;
  const std::string root = options.root.empty() ? "." : options.root;
  for (const Finding& f : findings) {
    if (units.count(f.file) != 0) continue;
    FileUnit unit;
    std::string lex_err;
    const std::string on_disk =
        fs::exists(f.file) ? f.file : root + "/" + f.file;
    if (lex_path(on_disk, f.file, unit, lex_err))
      units.emplace(f.file, std::move(unit));
  }
  for (const auto& [path, unit] : units) apply_allows(unit, findings);

  const ReportStats stats = print_report(findings, options);
  if (!options.sarif_path.empty() &&
      !write_sarif(options.sarif_path, findings)) {
    std::fprintf(stderr, "asman-lint: cannot write SARIF to %s\n",
                 options.sarif_path.c_str());
    return 2;
  }
  if (stats.errors > 0 || stats.suppressed > options.max_allows) return 1;
  return 0;
}

}  // namespace asman_lint

// Fault subsystem unit tests: the IPI bus fault seam, hypercall argument
// hardening, and bit-reproducibility of fault-injected runs (same seed +
// same FaultPlan => bit-identical results; different injector seeds must
// actually diverge).
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "core/schedulers.h"
#include "experiments/chaos.h"
#include "experiments/scenario.h"
#include "faults/injector.h"
#include "hw/ipi.h"
#include "simcore/simulator.h"

namespace asman::experiments {
namespace {

Cycles ms(std::uint64_t n) { return sim::kDefaultClock.from_ms(n); }

// --- IPI bus fault seam ------------------------------------------------------

/// Scripted plan: returns canned decisions in sequence.
class ScriptedPlan final : public hw::IpiFaultPlan {
 public:
  explicit ScriptedPlan(std::vector<hw::IpiDecision> seq)
      : seq_(std::move(seq)) {}
  hw::IpiDecision on_send(hw::PcpuId, hw::PcpuId, std::uint32_t) override {
    if (i_ >= seq_.size()) return {};
    return seq_[i_++];
  }

 private:
  std::vector<hw::IpiDecision> seq_;
  std::size_t i_{0};
};

TEST(IpiFaultSeam, DropDuplicateDelayAreAppliedAndCounted) {
  sim::Simulator s;
  hw::MachineConfig m;
  m.num_pcpus = 2;
  m.freq_hz = 1'000'000'000ULL;
  m.ipi_latency_us = 3;  // 3000 cycles
  hw::IpiBus bus(s, m);
  int hits = 0;
  bus.set_handler(1, [&hits](hw::PcpuId, std::uint32_t) { ++hits; });

  ScriptedPlan plan({
      {.drop = true},                                  // send 1: dropped
      {.duplicate = true},                             // send 2: two copies
      {.drop = false, .duplicate = false,
       .extra_delay = sim::Cycles{7'000}},             // send 3: late
  });
  bus.set_fault_plan(&plan);
  EXPECT_TRUE(bus.lossy());

  bus.send(0, 1, 1);
  bus.send(0, 1, 2);
  bus.send(0, 1, 3);
  EXPECT_EQ(bus.sent(), 3u);

  s.run_until(sim::Cycles{3'000});  // bus latency: duplicate pair arrives
  EXPECT_EQ(hits, 2);
  s.run_until(sim::Cycles{9'999});
  EXPECT_EQ(hits, 2);  // delayed copy still in flight
  s.run_all();
  EXPECT_EQ(hits, 3);

  EXPECT_EQ(bus.delivered(), 3u);
  EXPECT_EQ(bus.dropped(), 1u);
  EXPECT_EQ(bus.duplicated(), 1u);
  EXPECT_EQ(bus.delayed(), 1u);

  bus.set_fault_plan(nullptr);
  EXPECT_FALSE(bus.lossy());
}

// --- hypercall argument hardening -------------------------------------------

TEST(HypercallHardening, GarbageVcrdOpIsRejectedAndCounted) {
  sim::Simulator s;
  core::AdaptiveScheduler hv(s, hw::MachineConfig{},
                             vmm::SchedMode::kNonWorkConserving);
  const vmm::VmId id = hv.create_vm("V0", 256, 2);
  hv.start();

  // Invalid VM id: out of range by one and by a lot.
  hv.do_vcrd_op(id + 1, vmm::Vcrd::kHigh);
  hv.do_vcrd_op(9999, vmm::Vcrd::kLow);
  // Valid VM id, garbage enum bit pattern.
  hv.do_vcrd_op(id, static_cast<vmm::Vcrd>(0x7F));
  s.run_until(ms(5));  // run_all never drains: pcpu ticks re-arm forever

  EXPECT_EQ(hv.hypercall_rejects(), 3u);
  EXPECT_EQ(hv.vm(id).vcrd, vmm::Vcrd::kLow) << "garbage must not mutate";

  // A well-formed call still works after the rejects.
  hv.do_vcrd_op(id, vmm::Vcrd::kHigh);
  EXPECT_EQ(hv.vm(id).vcrd, vmm::Vcrd::kHigh);
  EXPECT_EQ(hv.hypercall_rejects(), 3u);
}

TEST(HypercallHardening, BlockAndKickBoundsChecked) {
  sim::Simulator s;
  core::AdaptiveScheduler hv(s, hw::MachineConfig{},
                             vmm::SchedMode::kNonWorkConserving);
  const vmm::VmId id = hv.create_vm("V0", 256, 2);
  hv.start();

  hv.vcpu_block(id + 3, 0);  // bad VM
  hv.vcpu_block(id, 17);     // bad VCPU index
  hv.vcpu_kick(id + 3, 0);
  hv.vcpu_kick(id, 17);
  s.run_until(ms(5));
  EXPECT_EQ(hv.hypercall_rejects(), 4u);
}

TEST(HypercallHardening, CrashedVcpuIgnoresKicks) {
  sim::Simulator s;
  core::AdaptiveScheduler hv(s, hw::MachineConfig{},
                             vmm::SchedMode::kNonWorkConserving);
  const vmm::VmId id = hv.create_vm("V0", 256, 2);
  hv.start();
  s.run_until(ms(5));

  hv.fault_crash_vcpu(id, 1);
  EXPECT_EQ(hv.vm(id).vcpus[1].state, vmm::VcpuState::kBlocked);
  hv.vcpu_kick(id, 1);
  hv.vcpu_kick(id, 1);
  s.run_until(ms(10));
  EXPECT_EQ(hv.vm(id).vcpus[1].state, vmm::VcpuState::kBlocked);
  EXPECT_EQ(hv.ignored_kicks(), 2u);
  // Idempotent: a second crash changes nothing.
  hv.fault_crash_vcpu(id, 1);
  EXPECT_EQ(hv.vm(id).vcpus[1].state, vmm::VcpuState::kBlocked);
}

// --- fault-injected determinism ---------------------------------------------

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// Exact serialization including every fault/degradation counter, so
/// equality is bit-equality of the entire observable run.
std::string fault_fingerprint(const RunResult& rr) {
  std::string fp;
  append(fp, "sched=%s elapsed=%a events=%" PRIu64 "\n",
         core::to_string(rr.scheduler), rr.elapsed_seconds, rr.events);
  append(fp, "mig=%" PRIu64 " cosched=%" PRIu64 " ipi=%" PRIu64
             " ctx=%" PRIu64 " idle=%a\n",
         rr.migrations, rr.cosched_events, rr.ipi_sent, rr.context_switches,
         rr.idle_fraction);
  append(fp, "drop=%" PRIu64 " delay=%" PRIu64 " dup=%" PRIu64
             " retry=%" PRIu64 " abort=%" PRIu64 " wdog=%" PRIu64 "\n",
         rr.ipi_dropped, rr.ipi_delayed, rr.ipi_duplicated, rr.ipi_retries,
         rr.gang_ipi_aborts, rr.gang_watchdog_fires);
  append(fp, "demote=%" PRIu64 " stale=%" PRIu64 " rej=%" PRIu64
             " ignk=%" PRIu64 " evac=%" PRIu64 " offl=%" PRIu64 "\n",
         rr.vcrd_demotions, rr.stale_vcrd_drops, rr.hypercall_rejects,
         rr.ignored_kicks, rr.evacuated_vcpus, rr.pcpu_offline_events);
  append(fp, "flap=%" PRIu64 " corrupt=%" PRIu64 " silenced=%" PRIu64 "\n",
         rr.injected_flaps, rr.injected_corrupt_ops, rr.silenced_reports);
  for (const VmResult& v : rr.vms)
    append(fp, "%s rt=%a online=%a vcrd=%" PRIu64 " high=%a work=%" PRIu64
               " dem=%" PRIu64 " deg=%d\n",
           v.name.c_str(), v.runtime_seconds, v.observed_online_rate,
           v.vcrd_transitions, v.vcrd_high_fraction, v.work_units,
           v.demotions, v.degraded ? 1 : 0);
  return fp;
}

TEST(FaultDeterminism, SameSeedSamePlanBitIdentical) {
  for (const core::SchedulerKind sched :
       {core::SchedulerKind::kCredit, core::SchedulerKind::kCon,
        core::SchedulerKind::kAsman}) {
    const Scenario sc =
        chaos_scenario(sched, ChaosClass::kEverything, 42);
    const std::string a = fault_fingerprint(run_scenario(sc));
    const std::string b = fault_fingerprint(run_scenario(sc));
    EXPECT_GT(a.size(), 0u);
    EXPECT_EQ(a, b) << core::to_string(sched)
                    << " chaos run is nondeterministic";
  }
}

TEST(FaultDeterminism, DifferentInjectorSeedsDiverge) {
  Scenario a = chaos_scenario(core::SchedulerKind::kAsman,
                              ChaosClass::kEverything, 42);
  Scenario b = a;
  b.faults.seed ^= 0xDEADBEEFULL;  // same workload seed, new fault draws
  EXPECT_NE(fault_fingerprint(run_scenario(a)),
            fault_fingerprint(run_scenario(b)));
}

TEST(FaultDeterminism, EmptyPlanMatchesNoPlan) {
  // A default-constructed FaultPlan must leave the run untouched: the
  // injector is not even created, so results equal a plain scenario's.
  Scenario plain = chaos_scenario(core::SchedulerKind::kAsman,
                                  ChaosClass::kEverything, 7);
  plain.faults = faults::FaultPlan{};
  plain.resilience = vmm::ResilienceConfig{};
  ASSERT_TRUE(plain.faults.empty());
  const std::string a = fault_fingerprint(run_scenario(plain));
  const std::string b = fault_fingerprint(run_scenario(plain));
  EXPECT_EQ(a, b);
  const RunResult rr = run_scenario(plain);
  EXPECT_EQ(rr.ipi_dropped, 0u);
  EXPECT_EQ(rr.vcrd_demotions + rr.stale_vcrd_drops, 0u);
  EXPECT_EQ(rr.hypercall_rejects, 0u);
}

}  // namespace
}  // namespace asman::experiments

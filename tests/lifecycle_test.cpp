// Runtime VM lifecycle tests: hot create/destroy/resize at scheduling
// events, credit minting for late arrivals, mid-gang destruction, the
// admission controller and the overload governor (docs/MODEL.md "VM
// lifecycle & admission").
#include "vmm/hypervisor.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/schedulers.h"
#include "simcore/simulator.h"
#include "vmm/admission.h"

namespace asman::vmm {
namespace {

hw::MachineConfig small_machine(std::uint32_t pcpus) {
  hw::MachineConfig m;
  m.num_pcpus = pcpus;
  return m;
}

Cycles ms(std::uint64_t n) { return sim::kDefaultClock.from_ms(n); }

/// Hog guest: VCPUs never block. Sized independently of the VM so hot
/// resize growth can deliver callbacks for indices past the boot width.
class RecordingGuest final : public GuestPort {
 public:
  explicit RecordingGuest(std::uint32_t capacity) : online_(capacity, false) {}
  void vcpu_online(std::uint32_t v) override {
    if (v < online_.size()) online_[v] = true;
  }
  void vcpu_offline(std::uint32_t v) override {
    if (v < online_.size()) online_[v] = false;
  }
  bool online(std::uint32_t v) const { return online_[v]; }

 private:
  std::vector<bool> online_;
};

std::vector<Credit> credits_of(const Hypervisor& hv, VmId id) {
  std::vector<Credit> c;
  for (const Vcpu& v : hv.vm(id).vcpus) c.push_back(v.credit);
  return c;
}

bool vm_referenced_anywhere(const Hypervisor& hv, VmId id,
                            std::uint32_t pcpus) {
  for (PcpuId p = 0; p < pcpus; ++p) {
    if (const Vcpu* cur = hv.running_on(p))
      if (cur->key.vm == id) return true;
    for (const Vcpu* q : hv.runqueue(p).entries())
      if (q->key.vm == id) return true;
  }
  return false;
}

TEST(Lifecycle, HotCreateMintsNextPeriodWithoutTouchingExistingCredits) {
  sim::Simulator s;
  core::AdaptiveScheduler hv(s, small_machine(4),
                             SchedMode::kNonWorkConserving);
  RecordingGuest g0(2), g1(2), gh(2);
  hv.attach_guest(hv.create_vm("A", 256, 2), &g0);
  hv.attach_guest(hv.create_vm("B", 128, 2), &g1);
  hv.start();
  s.run_until(ms(35));  // mid second accounting period

  const std::vector<Credit> a = credits_of(hv, 0);
  const std::vector<Credit> b = credits_of(hv, 1);
  const VmId hot = hv.create_vm("Hot", 256, 2);
  ASSERT_EQ(hot, 2u);
  hv.attach_guest(hot, &gh);

  // Zero credit at birth; nobody else's ledger moved at the create instant.
  for (const Vcpu& c : hv.vm(hot).vcpus) EXPECT_EQ(c.credit, 0);
  EXPECT_EQ(credits_of(hv, 0), a);
  EXPECT_EQ(credits_of(hv, 1), b);
  EXPECT_EQ(hv.vm_creates(), 1u);

  // Next accounting period mints the newcomer its share and it runs.
  s.run_until(ms(100));
  EXPECT_GT(hv.vm(hot).total_online.v, 0u);
  EXPECT_GT(hv.weight_proportion(hot), 0.0);
}

TEST(Lifecycle, VmIdsAreDenseAndNeverReused) {
  sim::Simulator s;
  core::AdaptiveScheduler hv(s, small_machine(2),
                             SchedMode::kWorkConserving);
  RecordingGuest g0(1), g1(1), g2(1);
  hv.attach_guest(hv.create_vm("A", 256, 1), &g0);
  hv.attach_guest(hv.create_vm("B", 256, 1), &g1);
  hv.start();
  s.run_until(ms(15));

  EXPECT_TRUE(hv.destroy_vm(1));
  const VmId next = hv.create_vm("C", 256, 1);
  hv.attach_guest(next, &g2);
  EXPECT_EQ(next, 2u) << "a tombstoned id must never be handed out again";
  EXPECT_EQ(hv.num_vms(), 3u);
  EXPECT_EQ(hv.num_live_vms(), 2u);
  EXPECT_FALSE(hv.vm_alive(1));
  EXPECT_EQ(hv.vm(1).name, "B") << "the tombstone keeps its record";
}

TEST(Lifecycle, DestroyDrainsEveryQueueAndTombstonesEveryVcpu) {
  sim::Simulator s;
  core::AdaptiveScheduler hv(s, small_machine(2),
                             SchedMode::kWorkConserving);
  RecordingGuest g0(2), g1(2);
  hv.attach_guest(hv.create_vm("A", 256, 2), &g0);
  hv.attach_guest(hv.create_vm("B", 256, 2), &g1);
  hv.start();
  s.run_until(ms(25));  // both VMs oversubscribe 2 PCPUs: queues populated

  ASSERT_TRUE(hv.destroy_vm(0));
  for (const Vcpu& c : hv.vm(0).vcpus) {
    EXPECT_EQ(c.state, VcpuState::kDestroyed);
    EXPECT_EQ(c.credit, 0);
  }
  EXPECT_FALSE(vm_referenced_anywhere(hv, 0, 2));
  EXPECT_EQ(hv.vm_destroys(), 1u);
  EXPECT_FALSE(hv.destroy_vm(0)) << "double destroy is a counted no-op";
  EXPECT_EQ(hv.vm_destroys(), 1u);

  // The freed PCPUs keep scheduling the survivor.
  s.run_until(ms(60));
  EXPECT_GT(hv.vm(1).total_online.v, 0u);
  EXPECT_FALSE(vm_referenced_anywhere(hv, 0, 2));
}

TEST(Lifecycle, MidGangDestructionAbortsTheGangCleanly) {
  sim::Simulator s;
  core::StaticCoScheduler hv(s, small_machine(4),
                             SchedMode::kNonWorkConserving);
  RecordingGuest gg(4), gh(2);
  const VmId gang = hv.create_vm("Gang", 256, 4, VmType::kConcurrent);
  hv.attach_guest(gang, &gg);
  hv.attach_guest(hv.create_vm("Hog", 128, 2), &gh);
  hv.start();
  s.run_until(ms(45));
  ASSERT_TRUE(hv.gang_scheduled(gang));

  ASSERT_TRUE(hv.destroy_vm(gang));
  EXPECT_FALSE(hv.gang_scheduled(gang));
  for (const Vcpu& c : hv.vm(gang).vcpus) {
    EXPECT_EQ(c.state, VcpuState::kDestroyed);
    EXPECT_FALSE(c.cosched_boost);
  }
  EXPECT_FALSE(vm_referenced_anywhere(hv, gang, 4));

  // The armed gang machinery (watchdog, pending launches) must not fire
  // into the tombstone later.
  s.run_until(ms(300));
  EXPECT_EQ(hv.gang_watchdog_fires(), 0u);
  EXPECT_FALSE(vm_referenced_anywhere(hv, gang, 4));
}

TEST(Lifecycle, ResizeGrowsAndShrinksUnderTheScheduler) {
  sim::Simulator s;
  core::AdaptiveScheduler hv(s, small_machine(4),
                             SchedMode::kWorkConserving);
  RecordingGuest g(8);
  const VmId id = hv.create_vm("A", 256, 2);
  hv.attach_guest(id, &g);
  hv.start();
  s.run_until(ms(15));

  ASSERT_TRUE(hv.resize_vm(id, 4));
  EXPECT_EQ(hv.vm(id).num_vcpus(), 4u);
  EXPECT_EQ(hv.vm(id).vcpus[3].key.idx, 3u);
  s.run_until(ms(45));
  EXPECT_TRUE(g.online(2) || g.online(3)) << "hot-added VCPUs must run";

  ASSERT_TRUE(hv.resize_vm(id, 1));
  EXPECT_EQ(hv.vm(id).num_vcpus(), 1u);
  for (PcpuId p = 0; p < 4; ++p) {
    if (const Vcpu* cur = hv.running_on(p)) {
      EXPECT_LT(cur->key.idx, 1u);
    }
    for (const Vcpu* q : hv.runqueue(p).entries()) {
      if (q->key.vm == id) {
        EXPECT_LT(q->key.idx, 1u);
      }
    }
  }
  EXPECT_EQ(hv.vm_resizes(), 2u);

  EXPECT_TRUE(hv.resize_vm(id, 1)) << "no-op resize succeeds";
  EXPECT_EQ(hv.vm_resizes(), 2u);
  EXPECT_FALSE(hv.resize_vm(id, 0));
  EXPECT_FALSE(hv.resize_vm(99, 2));
  s.run_until(ms(90));  // survivor keeps running
  EXPECT_GT(hv.vm(id).total_online.v, 0u);
}

TEST(Lifecycle, GangShrinkRespreadsSurvivorsOntoDistinctPcpus) {
  sim::Simulator s;
  core::StaticCoScheduler hv(s, small_machine(4),
                             SchedMode::kNonWorkConserving);
  RecordingGuest g(4);
  const VmId gang = hv.create_vm("Gang", 256, 4, VmType::kConcurrent);
  hv.attach_guest(gang, &g);
  hv.start();
  s.run_until(ms(45));

  ASSERT_TRUE(hv.resize_vm(gang, 2));
  ASSERT_TRUE(hv.gang_scheduled(gang));
  const Vm& v = hv.vm(gang);
  ASSERT_EQ(v.num_vcpus(), 2u);
  EXPECT_NE(v.vcpus[0].where, v.vcpus[1].where)
      << "survivors must sit on pairwise-distinct PCPUs";
  s.run_until(ms(120));
  EXPECT_EQ(hv.gang_watchdog_fires(), 0u);
}

TEST(Lifecycle, AdmissionRejectsWhenSaturatedAndLeavesLedgersUntouched) {
  sim::Simulator s;
  core::AdaptiveScheduler hv(s, small_machine(2),
                             SchedMode::kNonWorkConserving);
  AdmissionConfig a;
  a.max_vcpus_per_pcpu = 1.0;  // capacity: 2 weighted VCPUs total
  hv.set_admission(a);
  RecordingGuest g(1);
  const VmId ok = hv.create_vm("A", kReferenceWeight, 1);  // load 0.5
  ASSERT_NE(ok, kInvalidVmId);
  hv.attach_guest(ok, &g);
  hv.start();
  s.run_until(ms(25));

  const std::vector<Credit> before = credits_of(hv, ok);
  EXPECT_EQ(hv.create_vm("B", kReferenceWeight, 2), kInvalidVmId);
  EXPECT_EQ(hv.admission_rejects(), 1u);
  EXPECT_EQ(hv.num_vms(), 1u) << "a rejected create leaves no record";
  EXPECT_EQ(credits_of(hv, ok), before)
      << "rejection must not disturb existing credit shares";

  EXPECT_FALSE(hv.resize_vm(ok, 3)) << "growth past the cap is rejected too";
  EXPECT_EQ(hv.admission_rejects(), 2u);
  EXPECT_EQ(hv.vm(ok).num_vcpus(), 1u);

  // A light VM still fits: weight scales the load (weight 64 = 0.25/VCPU).
  EXPECT_NE(hv.create_vm("Light", 64, 1), kInvalidVmId);
}

TEST(Lifecycle, OverloadGovernorShedsCoschedulingAndRestoresWithBackoff) {
  sim::Simulator s;
  core::StaticCoScheduler hv(s, small_machine(4),
                             SchedMode::kNonWorkConserving);
  AdmissionConfig a;
  a.max_vcpus_per_pcpu = 2.5;       // shed past 8.5 total, restore at <= 6.0
  a.restore_backoff = ms(20);
  hv.set_admission(a);
  RecordingGuest gg(4), gd(2), gh(3);
  const VmId gang = hv.create_vm("Gang", 256, 4, VmType::kConcurrent);
  hv.attach_guest(gang, &gg);
  hv.attach_guest(hv.create_vm("Dom0", 256, 2), &gd);  // boot load: 6.0
  hv.start();
  s.run_until(ms(45));
  ASSERT_TRUE(hv.gang_scheduled(gang));
  ASSERT_FALSE(hv.overload_shed_active());

  const VmId burst = hv.create_vm("Burst", 256, 3);  // load 9.0 > 8.5
  ASSERT_NE(burst, kInvalidVmId);
  hv.attach_guest(burst, &gh);
  EXPECT_TRUE(hv.overload_shed_active());
  EXPECT_EQ(hv.overload_sheds(), 1u);
  EXPECT_FALSE(hv.gang_scheduled(gang))
      << "shedding strips coscheduling eligibility before fairness degrades";

  // Load drops back immediately, but the governor waits out its backoff.
  ASSERT_TRUE(hv.destroy_vm(burst));
  EXPECT_TRUE(hv.overload_shed_active());

  s.run_until(ms(120));  // past backoff + an accounting boundary
  EXPECT_FALSE(hv.overload_shed_active());
  EXPECT_EQ(hv.overload_restores(), 1u);
  EXPECT_TRUE(hv.gang_scheduled(gang)) << "eligibility restored";
}

TEST(Lifecycle, DestroyedVmHypercallsBounceCounted) {
  sim::Simulator s;
  core::AdaptiveScheduler hv(s, small_machine(2),
                             SchedMode::kWorkConserving);
  RecordingGuest g(2);
  const VmId id = hv.create_vm("A", 256, 2);
  hv.attach_guest(id, &g);
  hv.start();
  s.run_until(ms(15));
  ASSERT_TRUE(hv.destroy_vm(id));

  const std::uint64_t before = hv.hypercall_rejects();
  hv.vcpu_kick(id, 0);
  hv.vcpu_block(id, 1);
  hv.do_vcrd_op(id, Vcrd::kHigh);
  EXPECT_EQ(hv.hypercall_rejects(), before + 3);
  for (const Vcpu& c : hv.vm(id).vcpus)
    EXPECT_EQ(c.state, VcpuState::kDestroyed) << "tombstones never move";
}

}  // namespace
}  // namespace asman::vmm

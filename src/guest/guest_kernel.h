// Guest operating system kernel model (one instance per VM).
//
// Models the parts of an SMP Linux guest that the paper's measurements
// depend on:
//
//   * per-VCPU thread run queues with a round-robin quantum,
//   * kernel spinlocks with faithful lock-holder-preemption behaviour — a
//     holder whose VCPU is offline makes no progress, so waiters on online
//     VCPUs spin for wall-clock spans bounded by the VMM's scheduling
//     pattern (this is the effect of Figs 1-2),
//   * futex hash buckets guarded by spinlocks (the libgomp path: user
//     synchronization -> futex syscalls -> kernel spinlock traffic),
//   * GNU-OpenMP-style barriers (user-level active spin up to a limit,
//     then futex sleep),
//   * futex-backed user mutexes and blocking semaphores,
//   * a periodic timer tick that takes a kernel lock (background spinlock
//     traffic; interrupts are masked inside kernel critical sections),
//   * the idle path: a VCPU with no runnable thread halts via the
//     vcpu_block hypercall, which is why blocking primitives tolerate
//     virtualization (the VMM reassigns the PCPU).
//
// Execution model: the kernel is driven entirely by simulator events and
// the VMM's online/offline callbacks. Each thread has at most one live
// "activity" (a timed burn or a spinlock spin); activities only progress
// while their VCPU is online. Continuations (std::function) sequence
// multi-step kernel paths such as futex wake chains.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "guest/observer.h"
#include "guest/program.h"
#include "simcore/rng.h"
#include "simcore/simulator.h"
#include "simcore/trace.h"
#include "vmm/ports.h"

namespace asman::guest {

using sim::Cycles;

class GuestKernel final : public vmm::GuestPort {
 public:
  using Cont = std::function<void()>;

  struct Config {
    std::uint32_t n_vcpus{4};
    std::uint64_t seed{1};

    // Timer tick (Linux 2.6.18 HZ=250 -> 4 ms) and its lock hold length.
    // Pre-tickless kernels wake even idle (halted) VCPUs at every tick to
    // run the handler, which takes the VM-global timer lock (xtime_lock).
    Cycles tick_period{sim::kDefaultClock.from_ms(4)};
    Cycles tick_lock_hold{3'000};
    Cycles tick_overhead{8'000};

    // Round-robin quantum for threads sharing a VCPU.
    Cycles rr_quantum{sim::kDefaultClock.from_ms(6)};

    // Kernel path costs (cycles); sized for a 2007-era SMP kernel with
    // cache-cold shared structures.
    Cycles syscall_entry{800};
    Cycles futex_enqueue_hold{7'000};
    Cycles futex_wake_base{4'000};
    Cycles futex_wake_per_thread{2'500};
    Cycles rq_wake_hold{3'500};
    Cycles uncontended_acquire{60};

    // libgomp-style active spin budget before sleeping in the kernel, and
    // the sched_yield cadence inside the spin: every `spin_yield_period`
    // cycles of user spinning the waiter enters the kernel and briefly
    // holds its runqueue lock (this is how user-level waiting turns into
    // kernel spinlock traffic on a loaded 2.6-era system).
    Cycles user_spin_limit{900'000};
    Cycles spin_yield_period{70'000};
    Cycles yield_hold{4'500};

    // Periodic load balancing (Linux 2.6 rebalance_tick): every Nth timer
    // tick the handler also takes a *remote* VCPU's runqueue lock — the
    // classic cross-CPU lock path of that kernel generation.
    std::uint32_t balance_every_ticks{2};
    Cycles balance_hold{3'000};
    // sched_yield with an otherwise-empty runqueue falls into idle_balance,
    // which probes remote runqueue locks too (every Nth yield here). This
    // is why a stranded runqueue lock is discovered within microseconds by
    // every spinning peer — the paper's "long waits occur in neighboring
    // spinlocks" clustering.
    std::uint32_t yield_balance_every{2};

    // Over-threshold limit: 2^delta cycles, delta = 20 in the paper.
    Cycles over_threshold{1ULL << 20};

    // Grace period before an idle VCPU issues the halt hypercall.
    Cycles idle_grace{4'000};

    bool keep_wait_samples{false};
  };

  GuestKernel(sim::Simulator& simulation, vmm::HypervisorPort& hypervisor,
              vmm::VmId vm_id, Config cfg, sim::Trace* trace = nullptr);
  ~GuestKernel() override;

  GuestKernel(const GuestKernel&) = delete;
  GuestKernel& operator=(const GuestKernel&) = delete;

  // --- setup (before the simulation starts) ---
  std::uint32_t create_mutex();
  /// `spin_only` models flush/flag busy-wait synchronization (NPB-OMP
  /// pipelines): waiters never sleep in the kernel, they spin (and
  /// periodically sched_yield) until released — burning their VCPU's
  /// allocation while an offline peer keeps them waiting.
  std::uint32_t create_barrier(std::uint32_t parties, bool spin_only = false);
  std::uint32_t create_semaphore(std::int32_t initial);
  /// Spawn a thread running `prog`, pinned to VCPU `vcpu`.
  Tid spawn(std::unique_ptr<ThreadProgram> prog, std::uint32_t vcpu);
  /// Set the spinlock observer (the Monitoring Module); may be null.
  void set_observer(SpinlockObserver* obs) { observer_ = obs; }
  /// Invoked once when every spawned thread has retired.
  void set_all_done(Cont cb) { all_done_ = std::move(cb); }

  // --- vmm::GuestPort ---
  void vcpu_online(std::uint32_t vidx) override;
  void vcpu_offline(std::uint32_t vidx) override;

  // --- introspection ---
  const Config& config() const { return cfg_; }
  const GuestStats& stats() const { return stats_; }
  GuestStats& stats() { return stats_; }
  vmm::VmId vm_id() const { return vm_id_; }
  std::uint32_t num_vcpus() const { return cfg_.n_vcpus; }
  std::size_t num_threads() const { return user_thread_count_; }
  std::size_t threads_done() const { return done_count_; }
  bool all_threads_done() const { return done_count_ == user_thread_count_; }
  bool thread_done(Tid t) const;
  Cycles thread_finish_time(Tid t) const;
  /// Retirement time of the most recently finished thread (the workload's
  /// completion time once all_threads_done()).
  Cycles last_finish_time() const { return last_finish_; }
  bool vcpu_online_now(std::uint32_t v) const { return vcpus_[v].online; }

 private:
  // --- execution engine -----------------------------------------------------
  enum class ActKind : std::uint8_t { kNone, kBurn, kSpin };
  struct Activity {
    ActKind kind{ActKind::kNone};
    bool kernel{false};  // interrupts masked (no tick) while true
    Cycles remaining{};
    Cycles started_at{};
    std::uint32_t lock{0};  // valid for kSpin
    Cont done;              // burn completion continuation
    sim::EventId ev{};      // live completion event (burn, while executing)
  };

  enum class TState : std::uint8_t { kReady, kCurrent, kBlocked, kDone, kIrq };
  struct Thread {
    Tid id{kNoTid};
    std::uint32_t vcpu{0};
    std::unique_ptr<ThreadProgram> prog;  // null for IRQ pseudo-threads
    TState state{TState::kReady};
    Activity act;
    Cont wake_cont;  // continuation to run when a blocked thread wakes
    Cycles finish_time{};
  };

  struct VcpuCtx {
    bool online{false};
    bool halted{false};
    Tid current{kNoTid};
    std::deque<Tid> runq;
    Tid irq_tid{kNoTid};
    bool in_irq{false};
    bool tick_pending{false};
    bool need_resched{false};  // quantum expired inside a kernel section
    Cycles tick_due{0};        // absolute deadline of the next timer tick
    sim::EventId tick_ev{};
    sim::EventId tick_wake_ev{};  // wakes a halted VCPU for its tick
    sim::EventId quantum_ev{};
    sim::EventId idle_ev{};
    std::uint64_t ticks{0};
  };

  // --- kernel objects ---------------------------------------------------------
  struct SpinWaiter {
    Tid tid{kNoTid};
    Cycles since{};
    bool reported{false};       // over-threshold already reported
    bool report_pending{false}; // crossed while offline; report on online
    sim::EventId cross_ev{};
    std::function<void(Cycles)> acquired;  // waited -> continue
  };
  struct SpinLock {
    std::string name;
    Tid owner{kNoTid};
    std::vector<SpinWaiter> waiters;
  };
  struct FutexQ {
    std::uint32_t bucket_lock{0};  // spinlock index
    std::vector<Tid> sleepers;
  };
  struct Mutex {
    bool locked{false};
    std::uint32_t fq{0};
  };
  struct Barrier {
    std::uint32_t parties{0};
    std::uint32_t arrived{0};
    std::uint64_t generation{0};
    std::uint32_t fq{0};
    bool spin_only{false};
    struct Spinner {
      Tid tid{kNoTid};
      std::uint64_t gen{0};
      Cont resume;
    };
    std::vector<Spinner> spinners;
  };
  struct Semaphore {
    std::int32_t count{0};
    std::uint32_t fq{0};
  };

  // execution primitives
  bool is_executing(Tid t) const;
  Tid executing_on(std::uint32_t v) const;
  void activate(Tid t);
  void deactivate(Tid t);
  void burn(Tid t, Cycles len, bool kernel, Cont done);
  void burn_complete(Tid t);
  /// Cancel a thread's pending burn (barrier satisfy path); the thread must
  /// be in a kBurn activity. Its `done` is replaced by `instead`.
  void repurpose_burn(Tid t, Cycles extra, Cont instead);

  // spinlocks
  std::uint32_t create_spinlock(std::string name);
  void lock_acquire(Tid t, std::uint32_t lock,
                    std::function<void(Cycles)> acquired);
  void lock_release(Tid t, std::uint32_t lock);
  void grant_to_waiter(std::uint32_t lock, std::size_t waiter_index);
  void spin_cross_check(std::uint32_t lock, Tid t);
  void record_spin_wait(Cycles waited);

  // futex / sleep-wake
  void futex_wait(Tid t, std::uint32_t fq, Cont on_wake,
                  const std::function<bool()>& still_needed);
  void futex_wake(Tid t, std::uint32_t fq, std::uint32_t n, Cont done);
  void wake_chain(Tid waker, std::vector<Tid> woken, std::size_t i, Cont done);
  void block_current(Tid t, Cont on_wake);
  void make_ready(Tid t);

  // scheduling inside the guest
  void schedule_vcpu(std::uint32_t v);
  void preempt_quantum(std::uint32_t v);
  void arm_quantum(std::uint32_t v);
  void arm_tick(std::uint32_t v);
  void run_tick(std::uint32_t v);
  void enter_tick_irq(std::uint32_t v);
  void tick_wake(std::uint32_t v);
  void maybe_deliver_pending(std::uint32_t v);
  void idle_check(std::uint32_t v);

  // ops
  void next_op(Tid t);
  void exec_op(Tid t, const Op& op);
  void op_critical(Tid t, std::uint32_t mtx, Cycles hold);
  void mutex_unlock(Tid t, std::uint32_t mtx, Cont done);
  void op_barrier(Tid t, std::uint32_t bar);
  void barrier_spin_loop(Tid t, std::uint32_t bar, std::uint64_t gen,
                         Cycles spun);
  /// sched_yield semantics: rotate to the next ready thread on this VCPU
  /// (if any) and continue with `resume` when scheduled again.
  void yield_cpu(Tid t, Cont resume);
  void barrier_release(Tid t, Barrier& b, Cont done);
  void op_sem_wait(Tid t, std::uint32_t s);
  void op_sem_post(Tid t, std::uint32_t s);
  void op_sleep(Tid t, Cycles len);
  void retire(Tid t);

  void note_trace(sim::TraceCat cat, const std::string& msg);

  sim::Simulator& sim_;
  vmm::HypervisorPort& hv_;
  vmm::VmId vm_id_;
  Config cfg_;
  sim::Trace* trace_;
  sim::Rng rng_;
  SpinlockObserver* observer_{nullptr};
  Cont all_done_;

  std::vector<VcpuCtx> vcpus_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::vector<SpinLock> locks_;
  std::vector<FutexQ> futexes_;
  std::vector<Mutex> mutexes_;
  std::vector<Barrier> barriers_;
  std::vector<Semaphore> semaphores_;

  std::uint32_t timer_lock_{0};            // VM-wide tick lock
  std::vector<std::uint32_t> rq_locks_;    // per-VCPU runqueue locks

  std::size_t user_thread_count_{0};
  std::size_t done_count_{0};
  Cycles last_finish_{0};
  GuestStats stats_;
};

/// Trivial guest for administrator/idle VMs (the paper's Domain-0 carries
/// no workload): halts every VCPU immediately and keeps them halted.
class IdleGuest final : public vmm::GuestPort {
 public:
  IdleGuest(sim::Simulator& simulation, vmm::HypervisorPort& hypervisor,
            vmm::VmId vm_id, std::uint32_t n_vcpus)
      : sim_(simulation), hv_(hypervisor), vm_(vm_id), n_(n_vcpus) {}

  void vcpu_online(std::uint32_t vidx) override {
    // Block as soon as the scheduler lets go of its internal state.
    sim_.after(sim::Cycles{1'000},
               [this, vidx] { hv_.vcpu_block(vm_, vidx); });
  }
  void vcpu_offline(std::uint32_t vidx) override { (void)vidx; }

 private:
  sim::Simulator& sim_;
  vmm::HypervisorPort& hv_;
  vmm::VmId vm_;
  std::uint32_t n_;
};

}  // namespace asman::guest

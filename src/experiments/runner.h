// Sweep execution: run many independent scenarios in parallel.
//
// Individual simulations are deterministic and single-threaded; sweeps
// (scheduler x online-rate x benchmark x seed) are fanned out over a
// simcore::ThreadPool. Results come back in input order.
#pragma once

#include <string>
#include <vector>

#include "experiments/scenario.h"
#include "simcore/stats.h"

namespace asman::experiments {

struct SweepPoint {
  std::string label;
  Scenario scenario;
};

/// Run all points (parallel; `threads`=0 -> hardware concurrency) and
/// return results in the same order.
std::vector<RunResult> run_sweep(const std::vector<SweepPoint>& points,
                                 std::size_t threads = 0);

/// The paper's repetition protocol: run `reps` instances of the scenario
/// with derived seeds and summarize a scalar metric extracted from each
/// run. Verifies dispersion the way §5.3 does (coefficient of variation).
sim::Summary run_repeated(const Scenario& base, std::size_t reps,
                          const std::function<double(const RunResult&)>& metric,
                          std::size_t threads = 0);

}  // namespace asman::experiments

// VMM edge cases: relocation overflow, stealing constraints, boost expiry,
// charge statistics, strictness interactions.
#include <gtest/gtest.h>

#include "core/schedulers.h"
#include "guest/guest_kernel.h"
#include "simcore/simulator.h"

namespace asman::vmm {
namespace {

using core::SchedulerKind;

hw::MachineConfig machine(std::uint32_t pcpus) {
  hw::MachineConfig m;
  m.num_pcpus = pcpus;
  return m;
}

Cycles seconds(double s) { return sim::kDefaultClock.from_seconds_f(s); }

class HogGuest final : public GuestPort {
 public:
  void vcpu_online(std::uint32_t) override {}
  void vcpu_offline(std::uint32_t) override {}
};

TEST(Relocation, MoreVcpusThanPcpusDoesNotCrash) {
  sim::Simulator s;
  auto hv = core::make_scheduler(SchedulerKind::kAsman, s, machine(2),
                                 SchedMode::kWorkConserving);
  HogGuest g;
  const VmId a = hv->create_vm("wide", 256, 5);  // 5 VCPUs on 2 PCPUs
  hv->attach_guest(a, &g);
  hv->start();
  s.run_until(seconds(0.1));
  hv->do_vcrd_op(a, Vcrd::kHigh);
  s.run_until(s.now() + seconds(0.5));
  // No crash, and the VM still makes progress.
  EXPECT_GT(hv->vm(a).total_online.v, 0u);
}

TEST(Relocation, SingleVcpuVmIsTrivial) {
  sim::Simulator s;
  auto hv = core::make_scheduler(SchedulerKind::kAsman, s, machine(2),
                                 SchedMode::kWorkConserving);
  HogGuest g;
  const VmId a = hv->create_vm("uni", 256, 1);
  hv->attach_guest(a, &g);
  hv->start();
  s.run_until(seconds(0.05));
  hv->do_vcrd_op(a, Vcrd::kHigh);
  s.run_until(s.now() + seconds(0.2));
  EXPECT_GT(hv->vm(a).total_online.ratio(s.now()), 0.9);
}

TEST(Stealing, IdlePcpuPullsQueuedWork) {
  // 1 VM with 2 hog VCPUs initially stacked by construction order on a
  // 2-PCPU machine: stealing must spread them within a couple of slots.
  sim::Simulator s;
  CreditScheduler hv(s, machine(2), SchedMode::kWorkConserving);
  HogGuest g;
  const VmId a = hv.create_vm("A", 256, 2);
  hv.attach_guest(a, &g);
  hv.start();
  s.run_until(seconds(0.5));
  EXPECT_GT(hv.vm(a).total_online.ratio(s.now()), 1.8)
      << "both VCPUs should run nearly continuously on the two PCPUs";
}

TEST(Stealing, GangMembersNeverColocatedByBalancer) {
  sim::Simulator s;
  auto hv = core::make_scheduler(SchedulerKind::kCon, s, machine(4),
                                 SchedMode::kWorkConserving);
  HogGuest g0, g1;
  const VmId conc = hv->create_vm("conc", 256, 4, VmType::kConcurrent);
  hv->attach_guest(conc, &g0);
  hv->attach_guest(hv->create_vm("bg", 256, 2), &g1);
  hv->start();
  // Sample: the concurrent VM's online members always sit on distinct
  // PCPUs (relocation invariant preserved under stealing).
  for (int i = 0; i < 200; ++i) {
    s.run_until(s.now() + sim::kDefaultClock.from_us(700));
    std::vector<int> on_pcpu(4, 0);
    for (const Vcpu& c : hv->vm(conc).vcpus)
      if (c.state == VcpuState::kRunning) ++on_pcpu[c.where];
    for (int n : on_pcpu) EXPECT_LE(n, 1);
  }
}

TEST(Charge, LongRunShareMatchesWeightsDespiteQuantization) {
  // The probabilistic slot-quantum charging must be unbiased: over a long
  // horizon, 3:1 weights give 3:1 time, across seeds.
  for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
    sim::Simulator s;
    CreditScheduler hv(s, machine(2), SchedMode::kWorkConserving, nullptr,
                       seed);
    HogGuest g0, g1;
    const VmId a = hv.create_vm("A", 384, 2);
    const VmId b = hv.create_vm("B", 128, 2);
    hv.attach_guest(a, &g0);
    hv.attach_guest(b, &g1);
    hv.start();
    s.run_until(seconds(6.0));
    const double ratio = static_cast<double>(hv.vm(a).total_online.v) /
                         static_cast<double>(hv.vm(b).total_online.v);
    EXPECT_NEAR(ratio, 3.0, 0.45) << "seed " << seed;
  }
}

TEST(Boost, CoschedBoostExpiresWithoutRefresh) {
  sim::Simulator s;
  auto hv = core::make_scheduler(SchedulerKind::kAsman, s, machine(2),
                                 SchedMode::kWorkConserving);
  HogGuest g0, g1;
  const VmId a = hv->create_vm("a", 256, 2);
  hv->attach_guest(a, &g0);
  hv->attach_guest(hv->create_vm("b", 256, 2), &g1);
  hv->start();
  s.run_until(seconds(0.2));
  hv->do_vcrd_op(a, Vcrd::kHigh);
  s.run_until(s.now() + seconds(0.05));
  hv->do_vcrd_op(a, Vcrd::kLow);
  // After LOW, launches stop and every boost must decay within ~1 slot.
  s.run_until(s.now() + seconds(0.05));
  for (const Vcpu& c : hv->vm(a).vcpus) EXPECT_FALSE(c.cosched_boost);
}

TEST(Vcrd, HypercallForUnknownStateTransitions) {
  sim::Simulator s;
  auto hv = core::make_scheduler(SchedulerKind::kAsman, s, machine(2),
                                 SchedMode::kWorkConserving);
  HogGuest g;
  const VmId a = hv->create_vm("a", 256, 2);
  hv->attach_guest(a, &g);
  hv->start();
  s.run_until(seconds(0.01));
  // LOW -> LOW is a no-op.
  hv->do_vcrd_op(a, Vcrd::kLow);
  s.run_until(s.now() + seconds(0.01));
  EXPECT_EQ(hv->vm(a).vcrd_high_transitions, 0u);
}

TEST(CreditBaseline, IgnoresVcrdAndTypes) {
  // The stock scheduler must not gang-schedule no matter what the VCRD or
  // VM type says.
  sim::Simulator s;
  CreditScheduler hv(s, machine(2), SchedMode::kWorkConserving);
  HogGuest g0, g1;
  const VmId a = hv.create_vm("a", 256, 2, VmType::kConcurrent);
  hv.attach_guest(a, &g0);
  hv.attach_guest(hv.create_vm("b", 256, 2), &g1);
  hv.start();
  s.run_until(seconds(0.1));
  hv.do_vcrd_op(a, Vcrd::kHigh);  // recorded, but inert
  s.run_until(s.now() + seconds(0.5));
  EXPECT_EQ(hv.vm(a).vcrd, Vcrd::kHigh);
  EXPECT_EQ(hv.cosched_events(), 0u);
  EXPECT_EQ(hv.ipi_bus().sent(), 0u);
}

TEST(Block, BlockingAQueuedVcpuRemovesIt) {
  sim::Simulator s;
  CreditScheduler hv(s, machine(1), SchedMode::kWorkConserving);
  HogGuest g;
  const VmId a = hv.create_vm("a", 256, 2);  // 2 VCPUs on 1 PCPU
  hv.attach_guest(a, &g);
  hv.start();
  s.run_until(seconds(0.005));
  // One runs, one queues; block the queued one.
  const std::uint32_t queued = hv.vcpu_is_online(a, 0) ? 1 : 0;
  hv.vcpu_block(a, queued);
  s.run_until(s.now() + seconds(0.2));
  EXPECT_FALSE(hv.vcpu_is_online(a, queued));
  // The remaining VCPU owns the PCPU.
  EXPECT_GT(hv.vm(a).total_online.ratio(s.now()), 0.85);
}

class OnlineRateAccuracy
    : public ::testing::TestWithParam<std::pair<std::uint32_t, double>> {};

TEST_P(OnlineRateAccuracy, NonWcObservedMatchesNominal) {
  sim::Simulator s;
  CreditScheduler hv(s, machine(8), SchedMode::kNonWorkConserving);
  const VmId dom0 = hv.create_vm("V0", 256, 8);
  guest::IdleGuest idle(s, hv, dom0, 8);
  hv.attach_guest(dom0, &idle);
  HogGuest hog;
  const VmId v1 = hv.create_vm("V1", GetParam().first, 4);
  hv.attach_guest(v1, &hog);
  hv.start();
  s.run_until(seconds(6.0));
  EXPECT_NEAR(hv.vm(v1).total_online.ratio(s.now()) / 4.0, GetParam().second,
              0.05);
}

INSTANTIATE_TEST_SUITE_P(
    PaperWeights, OnlineRateAccuracy,
    ::testing::Values(std::pair<std::uint32_t, double>{128, 0.6667},
                      std::pair<std::uint32_t, double>{64, 0.40},
                      std::pair<std::uint32_t, double>{32, 0.2222}));

}  // namespace
}  // namespace asman::vmm

// Runtime invariant auditor.
//
// An Auditor installs itself as the hypervisor's AuditSink and, at every
// scheduling-event boundary, verifies the invariant catalog of
// audit/invariants.h: the cheap stateful checks (credit ledger across an
// accounting pass, the VCPU state-machine shadow, monotonic event time)
// run on every callback; the O(VCPUs) full-state scans (queue partition,
// gang coherence, credit bounds) run on a configurable stride so hot runs
// can amortize them. Violations accumulate in an AuditReport; under
// `fatal` (or the ASMAN_AUDIT_FATAL environment variable) the first
// violation prints the report and aborts, pinning the offending event in
// a debugger or core dump.
//
// The whole subsystem is compiled out with -DASMAN_AUDIT=OFF: the library
// is not built and the hypervisor's notification hooks become no-ops.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "audit/invariants.h"
#include "audit/report.h"
#include "simcore/simulator.h"
#include "vmm/audit_sink.h"
#include "vmm/hypervisor.h"

namespace asman::audit {

struct AuditorConfig {
  /// Run the full-state scans on every stride-th scheduling event
  /// (1 = every event). Ledger/state-machine/time checks always run.
  std::uint32_t stride{1};
  /// Print the report and abort() on the first violation. Forced on when
  /// the ASMAN_AUDIT_FATAL environment variable is set (non-empty, != "0").
  bool fatal{false};
};

/// True when the ASMAN_AUDIT environment variable is set (non-empty,
/// != "0"): run_scenario then attaches an Auditor to every run, which is
/// how benches and examples become audited without code changes.
bool audit_env_enabled();
bool audit_fatal_env();

class Auditor final : public vmm::AuditSink {
 public:
  /// Installs itself via Hypervisor::set_audit_sink. Attach after the VMs
  /// are created and before start() for full-lifetime coverage.
  Auditor(sim::Simulator& simulation, vmm::Hypervisor& hv,
          AuditorConfig cfg = {});
  ~Auditor() override;

  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  const AuditReport& report() const { return report_; }

  /// Run every full-state invariant scan immediately.
  void check_now();

  /// Replace the time source (defaults to the simulation clock). Test seam
  /// for the monotonic-time invariant.
  void set_clock(std::function<sim::Cycles()> clock);

  // --- vmm::AuditSink ---
  void on_sched_event(vmm::AuditPoint p) override;
  void on_state_change(vmm::VcpuKey k, vmm::VcpuState from,
                       vmm::VcpuState to) override;
  void on_accounting(vmm::VmId vm, std::int64_t minted) override;
  void on_seeded(vmm::VmId vm, __int128 pool) override;
  void on_vm_created(vmm::VmId vm) override;
  void on_vm_resized(vmm::VmId vm) override;
  void on_relocated(vmm::VmId vm) override;
  void on_contention() override;

 private:
  void observe_time();
  void snapshot_pools();
  void snapshot_states();
  void flag(Invariant inv, std::string what);

  sim::Simulator& sim_;
  vmm::Hypervisor& hv_;
  AuditorConfig cfg_;
  std::function<sim::Cycles()> clock_;
  AuditReport report_;
  std::uint64_t scan_counter_{0};
  sim::Cycles last_time_{0};
  bool saw_time_{false};
  /// Per-VM credit pool captured at kAccountingBegin.
  std::vector<std::int64_t> pool_before_;
  /// Shadow copy of every VCPU's lifecycle state, advanced only by
  /// on_state_change — divergence from the hypervisor's actual state means
  /// a state was mutated outside the legal transition paths.
  std::vector<std::vector<vmm::VcpuState>> shadow_;
};

}  // namespace asman::audit

# Empty compiler generated dependencies file for fig02_spinwait_credit.
# This may be replaced when dependencies are built.

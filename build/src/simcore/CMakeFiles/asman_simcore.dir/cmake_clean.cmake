file(REMOVE_RECURSE
  "CMakeFiles/asman_simcore.dir/event_queue.cpp.o"
  "CMakeFiles/asman_simcore.dir/event_queue.cpp.o.d"
  "CMakeFiles/asman_simcore.dir/histogram.cpp.o"
  "CMakeFiles/asman_simcore.dir/histogram.cpp.o.d"
  "CMakeFiles/asman_simcore.dir/simulator.cpp.o"
  "CMakeFiles/asman_simcore.dir/simulator.cpp.o.d"
  "CMakeFiles/asman_simcore.dir/stats.cpp.o"
  "CMakeFiles/asman_simcore.dir/stats.cpp.o.d"
  "CMakeFiles/asman_simcore.dir/thread_pool.cpp.o"
  "CMakeFiles/asman_simcore.dir/thread_pool.cpp.o.d"
  "CMakeFiles/asman_simcore.dir/time.cpp.o"
  "CMakeFiles/asman_simcore.dir/time.cpp.o.d"
  "CMakeFiles/asman_simcore.dir/trace.cpp.o"
  "CMakeFiles/asman_simcore.dir/trace.cpp.o.d"
  "libasman_simcore.a"
  "libasman_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asman_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Determinism regression: the simulator is a deterministic discrete-event
// machine, so the same scenario with the same seed must reproduce every
// statistic bit-for-bit and every trace record byte-for-byte. A diff here
// means nondeterminism leaked in (unordered containers in a hot path,
// pointer-keyed iteration, uninitialized reads) — exactly the bug class
// that silently invalidates the paper's figures.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "core/schedulers.h"
#include "experiments/scenario.h"
#include "guest/guest_kernel.h"
#include "simcore/simulator.h"
#include "simcore/trace.h"
#include "workloads/synthetic.h"

namespace asman::experiments {
namespace {

Cycles ms(std::uint64_t n) { return sim::kDefaultClock.from_ms(n); }
Cycles us(std::uint64_t n) { return sim::kDefaultClock.from_us(n); }

hw::MachineConfig small_machine(std::uint32_t pcpus) {
  hw::MachineConfig m;
  m.num_pcpus = pcpus;
  return m;
}

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// Exact serialization of a RunResult: integers in decimal, doubles in %a
/// (hex float) so equality is bit-equality, not round-off coincidence.
std::string fingerprint(const RunResult& rr) {
  std::string fp;
  append(fp, "sched=%s\n", core::to_string(rr.scheduler));
  append(fp, "elapsed=%a events=%" PRIu64 " migrations=%" PRIu64 "\n",
         rr.elapsed_seconds, rr.events, rr.migrations);
  append(fp, "cosched=%" PRIu64 " ipi=%" PRIu64 " ctx=%" PRIu64 " idle=%a\n",
         rr.cosched_events, rr.ipi_sent, rr.context_switches,
         rr.idle_fraction);
  append(fp, "xllc=%" PRIu64 " xsock=%" PRIu64 " penalty=%" PRIu64
             " srej=%" PRIu64 "\n",
         rr.cross_llc_migrations, rr.cross_socket_migrations,
         rr.migration_penalty_cycles, rr.topology_steal_rejects);
  for (const VmResult& v : rr.vms) {
    append(fp, "%s[%s] fin=%d rt=%a online=%a vcrd=%" PRIu64
               " high=%a work=%" PRIu64 " otl=%" PRIu64 " adj=%" PRIu64
               " xllc=%" PRIu64 " xsock=%" PRIu64 " pen=%" PRIu64 "\n",
           v.name.c_str(), v.workload_name.c_str(), v.finished ? 1 : 0,
           v.runtime_seconds, v.observed_online_rate, v.vcrd_transitions,
           v.vcrd_high_fraction, v.work_units, v.over_threshold_events,
           v.adjusting_events, v.cross_llc_migrations,
           v.cross_socket_migrations, v.migration_penalty_cycles);
    for (double r : v.round_seconds) append(fp, "  round=%a\n", r);
  }
  return fp;
}

Scenario lock_hammer_scenario(core::SchedulerKind sched, std::uint64_t seed) {
  Scenario sc;
  sc.machine = small_machine(4);
  sc.scheduler = sched;
  sc.seed = seed;
  sc.horizon = ms(1'500);
  VmSpec v0;
  v0.name = "V0";
  v0.weight = 256;
  v0.vcpus = 2;
  v0.workload = [](sim::Simulator&, std::uint64_t s) {
    return std::make_unique<workloads::LockHammerWorkload>(4, 400, us(120),
                                                           us(15), s);
  };
  VmSpec v1;
  v1.name = "V1";
  v1.weight = 128;
  v1.vcpus = 4;
  v1.workload = [](sim::Simulator&, std::uint64_t s) {
    return std::make_unique<workloads::CpuHogWorkload>(4, us(200), s);
  };
  sc.vms.push_back(std::move(v0));
  sc.vms.push_back(std::move(v1));
  return sc;
}

TEST(Determinism, IdenticalSeedsGiveBitIdenticalResults) {
  for (const core::SchedulerKind sched :
       {core::SchedulerKind::kCredit, core::SchedulerKind::kAsman}) {
    const Scenario sc = lock_hammer_scenario(sched, 42);
    const std::string a = fingerprint(run_scenario(sc));
    const std::string b = fingerprint(run_scenario(sc));
    EXPECT_GT(a.size(), 0u);
    EXPECT_EQ(a, b) << "scheduler " << core::to_string(sched)
                    << " is nondeterministic";
  }
}

TEST(Determinism, DifferentSeedsActuallyDiverge) {
  // Guards the fingerprint itself: if it ever degenerates into something
  // seed-insensitive, the bit-identical test above stops proving anything.
  const std::string a =
      fingerprint(run_scenario(lock_hammer_scenario(
          core::SchedulerKind::kAsman, 42)));
  const std::string b =
      fingerprint(run_scenario(lock_hammer_scenario(
          core::SchedulerKind::kAsman, 43)));
  EXPECT_NE(a, b);
}

TEST(Determinism, TopologyRunsAreBitIdentical) {
  // Same guarantee on the paper's 2x2x2 topology: aware placement, the
  // cost model, and the new counters are all deterministic.
  for (const core::SchedulerKind sched :
       {core::SchedulerKind::kCredit, core::SchedulerKind::kAsman}) {
    Scenario sc = lock_hammer_scenario(sched, 42);
    sc.machine.num_pcpus = 8;
    sc.machine.topology = hw::Topology::paper();
    const std::string a = fingerprint(run_scenario(sc));
    const std::string b = fingerprint(run_scenario(sc));
    EXPECT_GT(a.size(), 0u);
    EXPECT_EQ(a, b) << "scheduler " << core::to_string(sched)
                    << " is nondeterministic under topology";
  }
}

TEST(Determinism, FlatVariantsMatchDefault) {
  // The flat-topology bit-compat contract: leaving machine.topology unset,
  // spelling the flat topology out explicitly, and turning the placement
  // policy off must all reproduce the exact same run — the topology
  // subsystem is inert unless the machine is multi-domain.
  const Scenario base = lock_hammer_scenario(core::SchedulerKind::kAsman, 42);
  const std::string fp = fingerprint(run_scenario(base));

  Scenario explicit_flat = base;
  explicit_flat.machine.topology = hw::Topology::flat(4);
  EXPECT_EQ(fp, fingerprint(run_scenario(explicit_flat)));

  Scenario blind = base;
  blind.topology_aware = false;
  EXPECT_EQ(fp, fingerprint(run_scenario(blind)));
}

#ifdef ASMAN_AUDIT_ENABLED
TEST(Determinism, AuditedRunMatchesUnauditedRun) {
  // Observation must not perturb the system: the auditor only reads
  // hypervisor state, so attaching it cannot change any statistic.
  Scenario plain = lock_hammer_scenario(core::SchedulerKind::kAsman, 7);
  Scenario audited = plain;
  audited.audit = true;
  RunResult ra = run_scenario(audited);
  const std::string fa = fingerprint(ra);
  EXPECT_GT(ra.audit_checks, 0u);
  EXPECT_EQ(ra.audit_violations, 0u);
  EXPECT_EQ(fingerprint(run_scenario(plain)), fa);
}
#endif

std::string trace_blob(std::uint64_t seed) {
  sim::Simulator s;
  sim::Trace trace;
  trace.enable(true);
  core::AdaptiveScheduler hv(s, small_machine(2),
                             vmm::SchedMode::kNonWorkConserving);
  const vmm::VmId id = hv.create_vm("V0", 256, 2);
  guest::GuestKernel::Config gc;
  gc.n_vcpus = 2;
  gc.seed = seed;
  guest::GuestKernel g(s, hv, id, gc, &trace);
  workloads::LockHammerWorkload wl(3, 200, us(100), us(12), seed);
  wl.deploy(g);
  hv.attach_guest(id, &g);
  hv.start();
  s.run_until(ms(800));
  std::string blob;
  for (const sim::TraceRecord& r : trace.records())
    append(blob, "%" PRIu64 " %s %s\n", r.at.v, sim::trace_cat_name(r.cat),
           r.msg.c_str());
  return blob;
}

TEST(Determinism, GuestTraceIsBitIdentical) {
  const std::string a = trace_blob(99);
  EXPECT_GT(a.size(), 0u);
  EXPECT_EQ(a, trace_blob(99));
}

}  // namespace
}  // namespace asman::experiments

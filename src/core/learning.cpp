#include "core/learning.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace asman::core {

LearningEstimator::LearningEstimator(const LearningConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), q_(cfg.num_candidates, 0.0) {
  assert(cfg_.num_candidates >= 2);
  // q_x(0) = s(0) * A / N with A the average candidate value. Candidates
  // are valued in unit counts (candidate k has value k+1) so that the
  // propensities live on the same O(1) scale as Algorithm 2's rewards
  // (1 - e); only the final estimate is converted to cycles.
  const double avg = (static_cast<double>(cfg_.num_candidates) + 1.0) / 2.0;
  const double q0 =
      cfg_.initial_scaling * avg / static_cast<double>(cfg_.num_candidates);
  std::fill(q_.begin(), q_.end(), q0);
}

std::uint32_t LearningEstimator::select_probabilistic() {
  double total = std::accumulate(q_.begin(), q_.end(), 0.0);
  if (total <= 0.0) return static_cast<std::uint32_t>(rng_.next_below(q_.size()));
  double r = rng_.next_double() * total;
  for (std::uint32_t k = 0; k < q_.size(); ++k) {
    r -= q_[k];
    if (r <= 0.0) return k;
  }
  return static_cast<std::uint32_t>(q_.size() - 1);
}

std::uint32_t LearningEstimator::select_argmax() const {
  std::uint32_t best = 0;
  for (std::uint32_t k = 1; k < q_.size(); ++k)
    if (q_[k] > q_[best]) best = k;
  return best;
}

void LearningEstimator::update_propensities(double gap, double prev_gap,
                                            std::uint32_t chosen_idx) {
  const double e = cfg_.experimentation;
  const double spread = e / static_cast<double>(cfg_.num_candidates - 1);
  const double chosen_x = static_cast<double>(chosen_idx) + 1.0;
  std::vector<double> next(q_.size());
  for (std::uint32_t k = 0; k < q_.size(); ++k) {
    const double x = static_cast<double>(k) + 1.0;
    double u;
    if (gap <= static_cast<double>(cfg_.under_gap.v)) {
      // Under-coscheduling: an over-threshold spinlock followed the window
      // almost immediately — reward every larger duration (Algorithm 2
      // lines 2-7).
      u = (x > chosen_x) ? (1.0 - e) : q_[k] * spread;
    } else {
      // Adequate/over window: reinforce the chosen duration in proportion
      // to the slack growth (Algorithm 2 lines 8-13).
      if (k == chosen_idx) {
        double ratio = prev_gap > 0.0 ? gap / prev_gap : 1.0;
        ratio = std::clamp(ratio, 0.0, cfg_.ratio_cap);
        u = ratio * (1.0 - e);
      } else {
        u = q_[k] * spread;
      }
    }
    next[k] = (1.0 - cfg_.recency) * q_[k] + u;
  }
  q_ = std::move(next);
}

Cycles LearningEstimator::on_adjusting_event(Cycles now) {
  std::uint32_t idx;
  if (events_ < 2) {
    // Algorithm 1: the first two events select probabilistically.
    idx = select_probabilistic();
  } else {
    // z_i: interval between the beginnings of locality i and i+1.
    const Cycles z = now - last_event_time_;
    const double gap = static_cast<double>(z.v) -
                       static_cast<double>(last_x_.v);
    update_propensities(gap, have_prev_gap_ ? prev_gap_ : gap, last_idx_);
    prev_gap_ = gap;
    have_prev_gap_ = true;
    idx = select_argmax();
  }
  if (events_ == 1) {
    // The very first gap becomes z_0 - x_0 once event 2 arrives.
    const Cycles z = now - last_event_time_;
    prev_gap_ =
        static_cast<double>(z.v) - static_cast<double>(last_x_.v);
    have_prev_gap_ = true;
  }
  ++events_;
  last_event_time_ = now;
  last_idx_ = idx;
  last_x_ = candidate(idx);
  return last_x_;
}

}  // namespace asman::core

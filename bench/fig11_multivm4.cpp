// Figure 11: four VMs running simultaneously (work-conserving mode).
//
//  (a) mixed tenancy: 256.bzip2, 176.gcc (high-throughput, 4 copies each)
//      + SP, LU (concurrent, 4 threads each);
//  (b) all concurrent: LU, LU, SP, SP.
//
// Every VM has 4 VCPUs and weight 256; each benchmark repeats in rounds
// and the mean of the first 10 round times is reported (the paper's
// protocol). Schedulers: Credit, ASMan, CON (static coscheduling — the
// concurrent VMs are manually typed). Expected shape: coscheduling
// (ASMan/CON) cuts the run time of SP and LU sharply; the throughput VMs
// pay a small penalty, smaller under ASMan than under CON
// (over-coscheduling).
#include "bench_util.h"
#include "simcore/stats.h"
#include "workloads/npb.h"

using namespace asman;
using namespace asman::bench;

namespace {

constexpr std::uint64_t kRounds = 10;
constexpr std::uint64_t kFactoryRounds = 40;  // keep running past round 10

constexpr core::SchedulerKind kScheds[] = {core::SchedulerKind::kCredit,
                                           core::SchedulerKind::kAsman,
                                           core::SchedulerKind::kCon};

struct Combo {
  const char* name;
  std::vector<std::pair<std::string, ex::WorkloadFactory>> vms;
  std::vector<bool> concurrent;
};

std::vector<Combo> combos() {
  std::vector<Combo> out;
  out.push_back(Combo{
      "a",
      {{"256.bzip2", ex::bzip2_factory(kFactoryRounds)},
       {"176.gcc", ex::gcc_factory(kFactoryRounds)},
       {"SP", ex::npb_factory(workloads::NpbBenchmark::kSP, 4, kFactoryRounds)},
       {"LU", ex::npb_factory(workloads::NpbBenchmark::kLU, 4, kFactoryRounds)}},
      {false, false, true, true}});
  out.push_back(Combo{
      "b",
      {{"LU", ex::npb_factory(workloads::NpbBenchmark::kLU, 4, kFactoryRounds)},
       {"LU", ex::npb_factory(workloads::NpbBenchmark::kLU, 4, kFactoryRounds)},
       {"SP", ex::npb_factory(workloads::NpbBenchmark::kSP, 4, kFactoryRounds)},
       {"SP", ex::npb_factory(workloads::NpbBenchmark::kSP, 4, kFactoryRounds)}},
      {true, true, true, true}});
  return out;
}

Sweep build_sweep() {
  Sweep s;
  for (const Combo& c : combos()) {
    for (core::SchedulerKind k : kScheds) {
      auto vms = c.vms;
      ex::Scenario sc =
          ex::multi_vm_scenario(k, std::move(vms), c.concurrent, kRounds);
      s.add(std::string("combo") + c.name + "/" + core::to_string(k),
            std::move(sc));
    }
  }
  return s;
}

void annotate(const PointResult& pr, benchmark::State& st) {
  for (std::size_t i = 1; i < pr.run.vms.size(); ++i) {
    st.counters["vm" + std::to_string(i) + "_round_s"] =
        pr.run.vms[i].mean_round_seconds(kRounds);
  }
}

void print_combo(const Sweep& s, const Combo& c, const char* figure) {
  std::printf("\n== Figure %s: mean round time (s, first %llu rounds) ==\n",
              figure, static_cast<unsigned long long>(kRounds));
  std::vector<std::string> head{"workload (VM)"};
  for (core::SchedulerKind k : kScheds) head.push_back(core::to_string(k));
  head.push_back("cv (ASMan)");
  ex::TextTable t(head);
  for (std::size_t i = 0; i < c.vms.size(); ++i) {
    std::vector<std::string> row{c.vms[i].first + " (V" +
                                 std::to_string(i + 1) + ")"};
    for (core::SchedulerKind k : kScheds) {
      const auto& pr = s.get(std::string("combo") + c.name + "/" +
                             core::to_string(k));
      row.push_back(ex::fmt_f(pr.run.vms[i + 1].mean_round_seconds(kRounds)));
    }
    // Paper protocol (§5.3): the mean is only reported when the rounds'
    // coefficient of variation is below 10 %.
    {
      const auto& pr = s.get(std::string("combo") + c.name + "/ASMan");
      sim::Summary sum;
      const auto& rs = pr.run.vms[i + 1].round_seconds;
      for (std::size_t ri = 0; ri < rs.size() && ri < kRounds; ++ri)
        sum.add(rs[ri]);
      row.push_back(ex::fmt_pct(sum.cv()));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s", t.str().c_str());
}

void print_tables(const Sweep& s) {
  const auto cs = combos();
  print_combo(s, cs[0], "11(a)");
  print_combo(s, cs[1], "11(b)");
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep = build_sweep();
  return run_bench_main(argc, argv, sweep, "fig11", annotate, print_tables);
}

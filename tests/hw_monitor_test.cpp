// Out-of-VM VCRD inference (HwAdaptiveScheduler) and coscheduling
// strictness modes.
#include "core/hw_monitor.h"

#include <gtest/gtest.h>

#include "core/schedulers.h"
#include "experiments/paper.h"
#include "workloads/npb.h"

namespace asman::core {
namespace {

using vmm::SchedMode;
using vmm::VmId;

sim::Cycles ms(std::uint64_t v) { return sim::kDefaultClock.from_ms(v); }

class HogGuest final : public vmm::GuestPort {
 public:
  void vcpu_online(std::uint32_t) override {}
  void vcpu_offline(std::uint32_t) override {}
};

hw::MachineConfig machine(std::uint32_t pcpus) {
  hw::MachineConfig m;
  m.num_pcpus = pcpus;
  return m;
}

TEST(HwMonitor, YieldStormRaisesVcrd) {
  sim::Simulator s;
  HwAdaptiveScheduler hv(s, machine(2), SchedMode::kWorkConserving);
  HogGuest g;
  const VmId a = hv.create_vm("a", 256, 2);
  hv.attach_guest(a, &g);
  hv.start();
  s.run_until(ms(5));
  EXPECT_EQ(hv.vm(a).vcrd, vmm::Vcrd::kLow);
  // 100 yields in ~10 ms >> the 3/ms threshold... no: 100/10ms = 10/ms.
  for (int i = 0; i < 100; ++i) {
    hv.vcpu_yield_hint(a, 0);
    s.run_until(s.now() + sim::kDefaultClock.from_us(100));
  }
  s.run_until(s.now() + ms(15));
  EXPECT_EQ(hv.vm(a).vcrd, vmm::Vcrd::kHigh);
  EXPECT_EQ(hv.yield_hints(), 100u);
  EXPECT_GE(hv.evaluations(), 1u);
}

TEST(HwMonitor, QuietVmDropsAfterHysteresis) {
  sim::Simulator s;
  HwAdaptiveScheduler hv(s, machine(2), SchedMode::kWorkConserving);
  HogGuest g;
  const VmId a = hv.create_vm("a", 256, 2);
  hv.attach_guest(a, &g);
  hv.start();
  for (int i = 0; i < 100; ++i) {
    hv.vcpu_yield_hint(a, 0);
    s.run_until(s.now() + sim::kDefaultClock.from_us(100));
  }
  s.run_until(s.now() + ms(5));
  ASSERT_EQ(hv.vm(a).vcrd, vmm::Vcrd::kHigh);
  // Silence: drops only after low_windows_to_drop (3) quiet 10 ms windows
  // (window phase is anchored to the first hint, so allow one window of
  // slack on each side).
  s.run_until(s.now() + ms(10));
  EXPECT_EQ(hv.vm(a).vcrd, vmm::Vcrd::kHigh) << "hysteresis too eager";
  s.run_until(s.now() + ms(45));
  EXPECT_EQ(hv.vm(a).vcrd, vmm::Vcrd::kLow);
}

TEST(HwMonitor, SparseYieldsDoNotTrigger) {
  sim::Simulator s;
  HwAdaptiveScheduler hv(s, machine(2), SchedMode::kWorkConserving);
  HogGuest g;
  const VmId a = hv.create_vm("a", 256, 2);
  hv.attach_guest(a, &g);
  hv.start();
  // ~1 yield/ms < the 3/ms threshold.
  for (int i = 0; i < 50; ++i) {
    hv.vcpu_yield_hint(a, 0);
    s.run_until(s.now() + ms(1));
  }
  EXPECT_EQ(hv.vm(a).vcrd, vmm::Vcrd::kLow);
}

TEST(HwMonitor, EndToEndRecoversLuWithoutGuestModification) {
  namespace ex = asman::experiments;
  auto runtime = [](SchedulerKind k) {
    ex::Scenario sc = ex::single_vm_scenario(
        k, 32, [](sim::Simulator& sim2, std::uint64_t seed) {
          workloads::PhaseParams p =
              workloads::npb_params(workloads::NpbBenchmark::kLU);
          p.steps /= 4;
          return std::make_unique<workloads::PhaseWorkload>(sim2, "LU/4", p,
                                                            seed);
        });
    const ex::RunResult r = ex::run_scenario(sc);
    return std::pair{r.vm("V1").runtime_seconds,
                     r.vm("V1").vcrd_transitions};
  };
  const auto [credit, ct] = runtime(SchedulerKind::kCredit);
  const auto [hw, ht] = runtime(SchedulerKind::kAsmanHw);
  EXPECT_EQ(ct, 0u);
  EXPECT_GT(ht, 0u) << "yield-rate inference never raised the VCRD";
  EXPECT_LT(hw, credit * 0.95);
}

TEST(Strictness, RelaxedModeSkipsCostop) {
  for (auto strict : {vmm::Hypervisor::Strictness::kStrict,
                      vmm::Hypervisor::Strictness::kRelaxed}) {
    sim::Simulator s;
    StaticCoScheduler hv(s, machine(2), SchedMode::kWorkConserving);
    hv.set_cosched_strictness(strict);
    HogGuest g0, g1;
    const VmId conc = hv.create_vm("conc", 256, 2, vmm::VmType::kConcurrent);
    const VmId hog = hv.create_vm("hog", 256, 2);
    hv.attach_guest(conc, &g0);
    hv.attach_guest(hog, &g1);
    hv.start();
    s.run_until(sim::kDefaultClock.from_seconds_f(1.0));
    // Both modes keep proportional share.
    EXPECT_NEAR(hv.vm(conc).total_online.ratio(s.now()) / 2.0, 0.5, 0.12);
    EXPECT_NEAR(hv.vm(hog).total_online.ratio(s.now()) / 2.0, 0.5, 0.12);
  }
}

TEST(Strictness, StrictAlignsBetterThanRelaxed) {
  auto alignment = [](vmm::Hypervisor::Strictness strict) {
    sim::Simulator s;
    StaticCoScheduler hv(s, machine(2), SchedMode::kWorkConserving);
    hv.set_cosched_strictness(strict);
    HogGuest g0, g1;
    const VmId conc = hv.create_vm("conc", 256, 2, vmm::VmType::kConcurrent);
    hv.attach_guest(conc, &g0);
    hv.attach_guest(hv.create_vm("hog", 256, 2), &g1);
    hv.start();
    s.run_until(sim::kDefaultClock.from_seconds_f(0.5));
    std::uint64_t any = 0, all = 0;
    const sim::Cycles step = sim::kDefaultClock.from_us(500);
    const sim::Cycles end = s.now() + sim::kDefaultClock.from_seconds_f(2.0);
    while (s.now() < end) {
      s.run_until(s.now() + step);
      const auto n = hv.vm_online_count(conc);
      if (n > 0) {
        ++any;
        if (n == 2) ++all;
      }
    }
    return any ? static_cast<double>(all) / static_cast<double>(any) : 0.0;
  };
  const double strict = alignment(vmm::Hypervisor::Strictness::kStrict);
  const double relaxed = alignment(vmm::Hypervisor::Strictness::kRelaxed);
  EXPECT_GT(strict, 0.8);
  EXPECT_GT(strict, relaxed);
}

TEST(Factory, MakesHwKind) {
  sim::Simulator s;
  auto hv = make_scheduler(SchedulerKind::kAsmanHw, s, machine(2),
                           SchedMode::kWorkConserving);
  ASSERT_NE(hv, nullptr);
  EXPECT_STREQ(to_string(SchedulerKind::kAsmanHw), "ASMan-HW");
}

}  // namespace
}  // namespace asman::core

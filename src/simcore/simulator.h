// The simulation kernel: a virtual clock driving the event queue.
//
// One Simulator instance owns one simulated machine. All components hold a
// reference to it and express behaviour as events ("at time T, do X").
// The loop is single-threaded and deterministic; parallelism in this code
// base lives one level up, across independent simulations (ThreadPool).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>

#include "simcore/event_queue.h"
#include "simcore/thread_annotations.h"
#include "simcore/time.h"

namespace asman::sim {

// Declared a thread-safety capability: a Simulator (and everything hanging
// off it — Hypervisor, guests, the seeded Rng streams) is confined to the
// one pool worker that owns its run. Nothing acquires the capability today
// because nothing may share the object; if cross-thread access is ever
// introduced, the accessor must take ASMAN_REQUIRES(sim) and the sharing
// site must justify itself to clang's -Wthread-safety and to asman-lint's
// `thread-safety` rule, which rejects captures of simulator/hypervisor/RNG
// state inside ThreadPool tasks.
class ASMAN_CAPABILITY("simulator") Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Cycles now() const { return now_; }

  /// Schedule `cb` to run after `delay` cycles.
  EventId after(Cycles delay, EventQueue::Callback cb) {
    return at(now_ + delay, std::move(cb));
  }

  /// Schedule `cb` at absolute time `when` (must be >= now()).
  EventId at(Cycles when, EventQueue::Callback cb) {
    assert(when >= now_ && "cannot schedule into the past");
    return queue_.schedule(when, std::move(cb));
  }

  /// Cancel a pending event; safe to call with an already-fired id.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// True while `id` is scheduled and neither fired nor cancelled.
  bool pending(EventId id) const { return queue_.pending(id); }

  /// Run until the queue drains or the clock passes `deadline`.
  /// Events at exactly `deadline` still fire. Returns events processed.
  std::uint64_t run_until(Cycles deadline);

  /// Run until the queue is empty.
  std::uint64_t run_all() { return run_until(Cycles::max()); }

  /// Run while `pred()` is true and events remain before `deadline`.
  std::uint64_t run_while(Cycles deadline, const std::function<bool()>& pred);

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const { return queue_.size(); }

  /// Advance the clock to `when` without processing events; used by tests
  /// and by drivers that interleave simulation segments.
  void fast_forward(Cycles when) {
    assert(when >= now_);
    assert(queue_.next_time() >= when && "would skip pending events");
    now_ = when;
  }

 private:
  EventQueue queue_;
  Cycles now_{0};
  std::uint64_t events_processed_{0};
};

}  // namespace asman::sim

#include "experiments/churn.h"

#include <memory>
#include <string>
#include <utility>

#include "simcore/rng.h"
#include "workloads/synthetic.h"

namespace asman::experiments {

namespace {

Cycles ms(std::uint64_t n) { return sim::kDefaultClock.from_ms(n); }
Cycles us(std::uint64_t n) { return sim::kDefaultClock.from_us(n); }

/// Append the Elastic resize target and the scripted lifecycle schedule.
/// All times are drawn here, up front, from a stream keyed off the
/// scenario seed — the schedule itself is part of the scenario value, so
/// two runs of the same scenario are bit-identical.
void add_churn(Scenario& sc, std::uint64_t seed, const ChurnConfig& cfg) {
  sc.admission = cfg.admission;

  VmSpec elastic;
  elastic.name = "Elastic";
  elastic.weight = 128;
  elastic.vcpus = 1;  // idle guest: tolerates any hot VCPU count
  sc.vms.push_back(std::move(elastic));

  sim::SplitMix64 gen(seed ^ 0x0C11A05ULL);

  for (std::uint32_t i = 0; i < cfg.arrivals; ++i) {
    ChurnEvent ev;
    ev.kind = ChurnEvent::Kind::kCreate;
    ev.at = ms(200 + gen.next() % 1'300);
    ev.spec.name = "Churn" + std::to_string(i + 1);
    ev.spec.weight = (i % 2 == 0) ? 64 : 128;
    ev.spec.vcpus = 1 + static_cast<std::uint32_t>(gen.next() % 2);
    if (i % 2 == 0) {
      const std::uint32_t threads = ev.spec.vcpus;
      ev.spec.workload = [threads](sim::Simulator&, std::uint64_t s) {
        return std::make_unique<workloads::CpuHogWorkload>(threads, us(200),
                                                           s);
      };
    }
    const Cycles arrived = ev.at;
    sc.churn.push_back(std::move(ev));
    if (i < cfg.departures) {
      ChurnEvent dep;
      dep.kind = ChurnEvent::Kind::kDestroy;
      dep.target = "Churn" + std::to_string(i + 1);
      dep.at = arrived + ms(300 + gen.next() % 200);
      sc.churn.push_back(std::move(dep));
    }
  }

  for (std::uint32_t i = 0; i < cfg.resizes; ++i) {
    ChurnEvent rz;
    rz.kind = ChurnEvent::Kind::kResize;
    rz.target = "Elastic";
    rz.at = ms(250 + gen.next() % 1'500);
    rz.new_vcpus = 1 + static_cast<std::uint32_t>(gen.next() % 4);
    sc.churn.push_back(std::move(rz));
  }

  if (cfg.destroy_gang) {
    ChurnEvent gone;
    gone.kind = ChurnEvent::Kind::kDestroy;
    gone.target = "Gang";
    gone.at = ms(1'000);
    sc.churn.push_back(std::move(gone));
  }
}

}  // namespace

Scenario churn_scenario(core::SchedulerKind sched, std::uint64_t seed,
                        const ChurnConfig& cfg) {
  Scenario sc = chaos_base_scenario(sched, seed);
  add_churn(sc, seed, cfg);
  return sc;
}

Scenario churn_chaos_scenario(core::SchedulerKind sched, ChaosClass c,
                              std::uint64_t seed, const ChurnConfig& cfg) {
  Scenario sc = chaos_scenario(sched, c, seed);
  add_churn(sc, seed, cfg);
  return sc;
}

Scenario saturated_churn_scenario(core::SchedulerKind sched,
                                  std::uint64_t seed) {
  // Base load: Dom0 2.0 + Gang 4.0 + Hog 1.0 + Elastic 0.5 = 7.5 weighted
  // VCPUs on 4 PCPUs (1.875 per PCPU). The 2.5 cap admits only a couple
  // of weighted-VCPU units of churn, so a 12-arrival storm must see
  // rejections; the governor sheds past 2.125 per PCPU and cannot restore
  // (the fleet never shrinks back under 1.5 per PCPU).
  ChurnConfig cfg;
  cfg.arrivals = 12;
  cfg.departures = 2;
  cfg.resizes = 4;
  cfg.destroy_gang = false;
  cfg.admission.max_vcpus_per_pcpu = 2.5;
  return churn_scenario(sched, seed, cfg);
}

}  // namespace asman::experiments

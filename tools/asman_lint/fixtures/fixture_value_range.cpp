// Seeded violations for the value-range check: each expression here is
// PROVABLY unsafe for at least one configuration that src/core/
// bounds_spec.h admits, so the abstract interpreter must flag all four and
// name a concrete witness config for each. Parameters are named after
// bounds-spec leaves: the analyzer binds them to the admissible intervals
// of the shared table, exactly how config-derived values enter real code.
// tests/lint_test.cpp asserts 100% detection.
#include <cstdint>

namespace fixture {

constexpr long long kCreditPerSlot = 100'000;

// (a) i64 overflow in credit-pool sizing: at the admissible corner
// freq_hz = 1e10, slot_ms = 1000, slots_per_accounting = 64 the product
// reaches 6.4e21 — the store to long long is flagged.
long long credit_pool(long long freq_hz, long long slot_ms,
                      long long slots_per_accounting) {
  const long long pool_credit =
      kCreditPerSlot * freq_hz * slot_ms * slots_per_accounting;
  return pool_credit;
}

// (b) narrowing cast: weight tops out at 65536, so the mint reaches
// 6.5536e9 — static_cast<int> provably truncates.
int weighted_mint(long long weight) {
  return static_cast<int>(weight * kCreditPerSlot);
}

// (c) u32 wrap: 1024 pcpus * weight 65536 * 1024 = 2^36 escapes the
// declared std::uint32_t.
std::uint32_t weight_table_bytes(long long num_pcpus, long long weight) {
  const std::uint32_t total_weight_bytes =
      static_cast<std::uint32_t>(num_pcpus * weight * 1024);
  return total_weight_bytes;
}

// (d) overflow through a plain assignment (no cast to blame): the shed
// threshold ppm times the VCPU population reaches 4.096e9, past INT32_MAX,
// and the assignment target was declared std::int32_t two lines up.
std::int32_t pressure_budget(long long shed_level_ppm, long long n_vcpus) {
  std::int32_t contention_budget = 0;
  contention_budget = shed_level_ppm * n_vcpus;
  return contention_budget;
}

}  // namespace fixture

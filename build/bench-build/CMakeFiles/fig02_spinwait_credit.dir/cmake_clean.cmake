file(REMOVE_RECURSE
  "../bench/fig02_spinwait_credit"
  "../bench/fig02_spinwait_credit.pdb"
  "CMakeFiles/fig02_spinwait_credit.dir/fig02_spinwait_credit.cpp.o"
  "CMakeFiles/fig02_spinwait_credit.dir/fig02_spinwait_credit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_spinwait_credit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

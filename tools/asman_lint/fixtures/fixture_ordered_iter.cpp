// Seeded-violation fixture for the `ordered-iteration` check: every loop
// below walks an unordered container in hash order and lets the visit
// order escape into observable state. Never compiled into any target.
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct RunResult {
  std::vector<int> samples;
};

// planted: range-for over an unordered_map whose visit order escapes into a
// result vector (hash order would leak into the fingerprint).
void fingerprint(const std::unordered_map<int, long>& residency,
                 RunResult& rr) {
  for (const auto& kv : residency) {
    rr.samples.push_back(static_cast<int>(kv.second));
  }
}

using HotSet = std::unordered_set<int>;

// planted: alias-typed unordered container, accumulation escapes.
long sum_hot(const HotSet& hot) {
  long total = 0;
  for (int id : hot) total += id;
  return total;
}

// planted: explicit iterator loop over an unordered_set, order escapes.
void drain(std::unordered_set<int>& pending, std::vector<int>& out) {
  for (auto it = pending.begin(); it != pending.end(); ++it) {
    out.push_back(*it);
  }
}

}  // namespace fixture

// Seeded violations for the credit-flow check: every credit mutation here
// breaks one of the three conservation shapes on at least one path.
// tests/lint_test.cpp asserts 100% detection — all four sites flagged.
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace fixture {

using Credit = std::int64_t;
enum class VcpuState : std::uint8_t { kRunning, kRunnable, kBlocked,
                                      kDestroyed };
enum class AuditPoint { kAccountingBegin };

struct Vcpu {
  VcpuState state{VcpuState::kRunnable};
  Credit credit{0};
  std::uint32_t weight{256};
};

void audit_event(AuditPoint);
void audit_minted(int vm, Credit inc);

struct Hypervisor {
  Credit credit_cap_{300'000};

  // (a) unsaturated self-debit: no std::max/std::min against the cap, so
  // a hot VCPU can sink arbitrarily far below -cap between accountings.
  void charge(Vcpu& v, Credit debit) {
    v.credit = v.credit - debit;  // line flagged: unsaturated delta
  }

  // (b) zero-drain without destruction evidence: nothing on the path
  // proves the VCPU is a tombstone, so this silently burns live credit.
  void drain_vcpu(Vcpu& v) {
    v.credit = 0;  // line flagged: no kDestroyed on the entry path
  }

  // (c1) redistribution escaping through an early return before the mint
  // is reported: the conservation ledger never sees this VM's delta.
  void do_accounting(std::vector<Vcpu>& vcpus, Credit per, bool overloaded) {
    audit_event(AuditPoint::kAccountingBegin);
    for (Vcpu& v : vcpus) {
      v.credit = per;  // line flagged: return path skips audit_minted
      if (overloaded) return;
      audit_minted(0, per);
    }
  }

  // (c2) redistribution escaping through a throw path.
  void do_accounting_throwing(std::vector<Vcpu>& vcpus, Credit per) {
    audit_event(AuditPoint::kAccountingBegin);
    for (Vcpu& v : vcpus) {
      v.credit = per;  // line flagged: throw path skips audit_minted
      if (v.weight == 0) throw std::runtime_error("zero-weight VM");
      audit_minted(0, per);
    }
  }
};

}  // namespace fixture

// Coscheduling behaviour: static gangs (CON), adaptive gangs (ASMan),
// relocation (Algorithm 3 lines 8-16), IPI boosting (Algorithm 4), co-stop.
#include <gtest/gtest.h>

#include "core/schedulers.h"
#include "guest/guest_kernel.h"
#include "simcore/simulator.h"

namespace asman::core {
namespace {

using vmm::SchedMode;
using vmm::VmId;
using vmm::VmType;

hw::MachineConfig machine(std::uint32_t pcpus) {
  hw::MachineConfig m;
  m.num_pcpus = pcpus;
  return m;
}

sim::Cycles seconds(double s) { return sim::kDefaultClock.from_seconds_f(s); }

class HogGuest final : public vmm::GuestPort {
 public:
  void vcpu_online(std::uint32_t) override {}
  void vcpu_offline(std::uint32_t) override {}
};

/// Samples how often all VCPUs of `vm` are online simultaneously, given
/// that at least one is online (gang alignment quality).
double gang_alignment(sim::Simulator& s, vmm::Hypervisor& hv, VmId vm,
                      double seconds_to_run) {
  std::uint64_t any = 0, all = 0;
  const sim::Cycles step = sim::kDefaultClock.from_us(500);
  const sim::Cycles end = s.now() + seconds(seconds_to_run);
  while (s.now() < end) {
    s.run_until(s.now() + step);
    const std::uint32_t n = hv.vm_online_count(vm);
    if (n > 0) {
      ++any;
      if (n == hv.vm(vm).num_vcpus()) ++all;
    }
  }
  return any == 0 ? 0.0
                  : static_cast<double>(all) / static_cast<double>(any);
}

TEST(StaticCosched, GangAlignmentFarExceedsCredit) {
  // 2 PCPUs, a 2-VCPU concurrent VM vs a 2-VCPU hog: under plain Credit
  // the concurrent VM's VCPUs time-share independently; under CON they are
  // gang-scheduled.
  auto run = [](SchedulerKind k) {
    sim::Simulator s;
    auto hv = make_scheduler(k, s, machine(2), SchedMode::kWorkConserving);
    HogGuest g0, g1;
    const VmId conc = hv->create_vm("conc", 256, 2, VmType::kConcurrent);
    const VmId hog = hv->create_vm("hog", 256, 2, VmType::kGeneral);
    hv->attach_guest(conc, &g0);
    hv->attach_guest(hog, &g1);
    hv->start();
    s.run_until(seconds(0.5));  // warm up
    return gang_alignment(s, *hv, conc, 2.0);
  };
  const double credit = run(SchedulerKind::kCredit);
  const double con = run(SchedulerKind::kCon);
  EXPECT_GT(con, 0.8);
  EXPECT_GT(con, credit + 0.2);
}

TEST(StaticCosched, GeneralVmNotGangScheduled) {
  sim::Simulator s;
  auto hv = make_scheduler(SchedulerKind::kCon, s, machine(2),
                           SchedMode::kWorkConserving);
  HogGuest g0, g1;
  const VmId a = hv->create_vm("a", 256, 2, VmType::kGeneral);
  const VmId b = hv->create_vm("b", 256, 2, VmType::kGeneral);
  hv->attach_guest(a, &g0);
  hv->attach_guest(b, &g1);
  hv->start();
  s.run_until(seconds(1.0));
  EXPECT_EQ(hv->cosched_events(), 0u);
  EXPECT_EQ(hv->ipi_bus().sent(), 0u);
}

TEST(AdaptiveCosched, VcrdHighEnablesGang) {
  sim::Simulator s;
  auto hv = make_scheduler(SchedulerKind::kAsman, s, machine(2),
                           SchedMode::kWorkConserving);
  HogGuest g0, g1;
  const VmId a = hv->create_vm("a", 256, 2, VmType::kGeneral);
  const VmId b = hv->create_vm("b", 256, 2, VmType::kGeneral);
  hv->attach_guest(a, &g0);
  hv->attach_guest(b, &g1);
  hv->start();
  s.run_until(seconds(0.5));
  EXPECT_EQ(hv->cosched_events(), 0u);  // LOW by default
  hv->do_vcrd_op(a, vmm::Vcrd::kHigh);
  const double aligned = gang_alignment(s, *hv, a, 1.0);
  EXPECT_GT(aligned, 0.8);
  EXPECT_GT(hv->cosched_events(), 0u);

  // Back to LOW: gang dissolves, scheduling reverts to plain credit.
  hv->do_vcrd_op(a, vmm::Vcrd::kLow);
  const std::uint64_t events_at_low = hv->cosched_events();
  s.run_until(s.now() + seconds(1.0));
  EXPECT_EQ(hv->cosched_events(), events_at_low);
}

TEST(AdaptiveCosched, RelocationPlacesVcpusOnDistinctPcpus) {
  sim::Simulator s;
  auto hv = make_scheduler(SchedulerKind::kAsman, s, machine(4),
                           SchedMode::kWorkConserving);
  HogGuest g0, g1, g2;
  const VmId a = hv->create_vm("a", 256, 4);
  hv->attach_guest(a, &g0);
  hv->attach_guest(hv->create_vm("b", 256, 4), &g1);
  hv->attach_guest(hv->create_vm("c", 256, 4), &g2);
  hv->start();
  s.run_until(seconds(1.0));  // let load balancing shuffle things
  hv->do_vcrd_op(a, vmm::Vcrd::kHigh);
  const auto& vcpus = hv->vm(a).vcpus;
  for (std::size_t i = 0; i < vcpus.size(); ++i)
    for (std::size_t j = i + 1; j < vcpus.size(); ++j)
      EXPECT_NE(vcpus[i].where, vcpus[j].where)
          << "VCPUs " << i << " and " << j << " share a PCPU after "
             "relocation";
}

TEST(AdaptiveCosched, VcrdStatsTracked) {
  sim::Simulator s;
  auto hv = make_scheduler(SchedulerKind::kAsman, s, machine(2),
                           SchedMode::kWorkConserving);
  HogGuest g0;
  const VmId a = hv->create_vm("a", 256, 2);
  hv->attach_guest(a, &g0);
  hv->start();
  s.run_until(seconds(0.1));
  hv->do_vcrd_op(a, vmm::Vcrd::kHigh);
  s.run_until(s.now() + seconds(0.1));
  hv->do_vcrd_op(a, vmm::Vcrd::kLow);
  s.run_until(s.now() + seconds(0.05));
  EXPECT_EQ(hv->vm(a).vcrd_high_transitions, 1u);
  const double high_s =
      sim::kDefaultClock.to_seconds(hv->vm(a).vcrd_high_time);
  EXPECT_NEAR(high_s, 0.1, 0.01);
}

TEST(AdaptiveCosched, RedundantVcrdOpIsIdempotent) {
  sim::Simulator s;
  auto hv = make_scheduler(SchedulerKind::kAsman, s, machine(2),
                           SchedMode::kWorkConserving);
  HogGuest g0;
  const VmId a = hv->create_vm("a", 256, 2);
  hv->attach_guest(a, &g0);
  hv->start();
  s.run_until(seconds(0.01));
  hv->do_vcrd_op(a, vmm::Vcrd::kHigh);
  hv->do_vcrd_op(a, vmm::Vcrd::kHigh);
  s.run_until(s.now() + seconds(0.01));
  EXPECT_EQ(hv->vm(a).vcrd_high_transitions, 1u);
}

TEST(Costop, CappedGangParksTogether) {
  // Non-WC, one concurrent VM capped at ~1/3 share: its gang must run in
  // aligned bursts (co-start at accounting, co-stop on exhaustion), i.e.
  // whenever any VCPU is online, usually both are.
  sim::Simulator s;
  auto hv = make_scheduler(SchedulerKind::kCon, s, machine(2),
                           SchedMode::kNonWorkConserving);
  HogGuest g0;
  const VmId conc = hv->create_vm("conc", 128, 2, VmType::kConcurrent);
  const VmId idle_vm = hv->create_vm("V0", 256, 2);
  guest::IdleGuest idle(s, *hv, idle_vm, 2);
  hv->attach_guest(conc, &g0);
  hv->attach_guest(idle_vm, &idle);
  hv->start();
  s.run_until(seconds(0.5));
  const double aligned = gang_alignment(s, *hv, conc, 2.0);
  EXPECT_GT(aligned, 0.85);
  // And the cap still holds.
  const double rate = hv->vm(conc).total_online.ratio(s.now()) / 2.0;
  EXPECT_NEAR(rate, 2.0 * (128.0 / 384.0) / 2.0, 0.07);
}

TEST(Factory, MakesAllKinds) {
  sim::Simulator s;
  for (SchedulerKind k :
       {SchedulerKind::kCredit, SchedulerKind::kCon, SchedulerKind::kAsman}) {
    auto hv = make_scheduler(k, s, machine(2), SchedMode::kWorkConserving);
    ASSERT_NE(hv, nullptr) << to_string(k);
  }
  EXPECT_STREQ(to_string(SchedulerKind::kCredit), "Credit");
  EXPECT_STREQ(to_string(SchedulerKind::kCon), "CON");
  EXPECT_STREQ(to_string(SchedulerKind::kAsman), "ASMan");
}

}  // namespace
}  // namespace asman::core

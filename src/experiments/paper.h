// Canonical experiment configurations from the paper's evaluation (§5).
//
// §5.2 (single VM): administrator VM V0 with 8 VCPUs and weight 256 carries
// no workload; VM V1 has 4 VCPUs, 1 GB (memory is not modelled) and weight
// in {256, 128, 64, 32}, giving VCPU online rates of 100 / 66.7 / 40 /
// 22.2 % by Equations (1)-(2); the scheduler runs in non-work-conserving
// mode. §5.3 (multiple VMs): 4 or 6 VMs with 4 VCPUs and weight 256 each,
// work-conserving mode, benchmarks repeated in rounds and the first 10
// round times averaged.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "experiments/scenario.h"
#include "workloads/npb.h"
#include "workloads/specjbb.h"
#include "workloads/speccpu.h"

namespace asman::experiments {

/// The paper's testbed (Dell T5400: 8 PCPUs @ 2.33 GHz).
hw::MachineConfig paper_machine();

struct RatePoint {
  double rate;           // nominal VCPU online rate of V1
  std::uint32_t weight;  // V1 weight producing it (V0 fixed at 256)
};
/// The four §5.2 operating points.
inline constexpr std::array<RatePoint, 4> kRatePoints{
    RatePoint{1.0, 256}, RatePoint{0.667, 128}, RatePoint{0.40, 64},
    RatePoint{0.222, 32}};

// --- workload factories ---
WorkloadFactory npb_factory(workloads::NpbBenchmark b,
                            std::uint32_t threads = 4,
                            std::uint64_t rounds = 1);
WorkloadFactory specjbb_factory(std::uint32_t warehouses);
WorkloadFactory gcc_factory(std::uint64_t rounds = 1);
WorkloadFactory bzip2_factory(std::uint64_t rounds = 1);

// --- scenario builders ---

/// §5.2 topology: idle Domain-0 (8 VCPUs, weight 256) + V1 (4 VCPUs,
/// weight `v1_weight`) running `wl`, non-work-conserving.
Scenario single_vm_scenario(core::SchedulerKind sched, std::uint32_t v1_weight,
                            WorkloadFactory wl, std::uint64_t seed = 1);

/// §5.3 topology: idle Domain-0 + one VM per workload (4 VCPUs, weight 256
/// each), work-conserving, stopping after `rounds` completed rounds per VM.
/// `concurrent[i]` marks VM i as the CON scheduler's "concurrent" type.
Scenario multi_vm_scenario(core::SchedulerKind sched,
                           std::vector<std::pair<std::string, WorkloadFactory>>
                               workloads_by_vm,
                           const std::vector<bool>& concurrent,
                           std::uint64_t rounds, std::uint64_t seed = 1);

}  // namespace asman::experiments

// Microbenchmarks of the simulation engine itself (conventional
// google-benchmark usage — loops, real timing). These bound the cost of
// the figure reproductions: event throughput determines how much virtual
// time a sweep can cover.
#include <benchmark/benchmark.h>

#include "experiments/paper.h"
#include "simcore/event_queue.h"
#include "simcore/histogram.h"
#include "simcore/rng.h"
#include "simcore/simulator.h"

using namespace asman;

namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < n; ++i)
      q.schedule(sim::Cycles{(i * 2654435761u) % 1000000},
                 [&fired] { ++fired; });
    while (!q.empty()) q.pop_and_run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_EventQueueCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(10'000);
    for (std::size_t i = 0; i < 10'000; ++i)
      ids.push_back(q.schedule(sim::Cycles{i}, [] {}));
    for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
    while (!q.empty()) q.pop_and_run();
  }
  state.SetItemsProcessed(10'000 * state.iterations());
}
BENCHMARK(BM_EventQueueCancel);

void BM_RngU64(benchmark::State& state) {
  sim::Rng rng(42);
  std::uint64_t acc = 0;
  for (auto _ : state) acc ^= rng.next_u64();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngU64);

void BM_RngNormal(benchmark::State& state) {
  sim::Rng rng(42);
  double acc = 0;
  for (auto _ : state) acc += rng.normal(0.0, 1.0);
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNormal);

void BM_HistogramAdd(benchmark::State& state) {
  sim::Log2Histogram h;
  sim::Rng rng(7);
  for (auto _ : state) h.add(sim::Cycles{rng.next_below(1u << 26)});
  benchmark::DoNotOptimize(h.total());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramAdd);

// End-to-end simulator throughput: a short LU run; items = events.
void BM_FullSimulation(benchmark::State& state) {
  namespace ex = asman::experiments;
  for (auto _ : state) {
    ex::Scenario sc = ex::single_vm_scenario(
        core::SchedulerKind::kCredit, 128,
        ex::npb_factory(workloads::NpbBenchmark::kFT));
    ex::RunResult r = ex::run_scenario(sc);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(r.events) + state.items_processed());
    benchmark::DoNotOptimize(r.elapsed_seconds);
  }
}
BENCHMARK(BM_FullSimulation)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();

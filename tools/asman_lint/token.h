// Token model for asman-lint's dependency-free C++ scanner.
//
// The portable engine does not build a real AST: it lexes each file into a
// token stream (comments and preprocessor lines stripped, string/char
// literals collapsed, `asman-lint: allow(...)` pragmas harvested) and runs
// the project-discipline checks as structural patterns over that stream.
// This keeps the tool buildable with nothing but the C++ toolchain; the
// optional clang engine (engine_clang.cpp, -DASMAN_LINT_CLANG=ON) reuses
// the same finding/report model with full semantic types.
#pragma once

#include <string>
#include <vector>

namespace asman_lint {

enum class Tok {
  kIdent,        // identifiers and keywords
  kNumber,       // integer-looking pp-number (incl. 100'000)
  kFloatNumber,  // floating-point literal (1.0, 2e9, 0x1.8p3, 1.f)
  kString,       // string literal (text collapsed to "")
  kChar,         // character literal
  kPunct,        // operators / punctuation, longest-match (::, ->, +=, ...)
};

struct Token {
  Tok kind;
  std::string text;
  int line;
};

/// One `// asman-lint: allow(check-a, check-b) -- reason` pragma. It
/// suppresses findings of the named checks on its own line and on the next
/// line (so a whole-line comment can shield the statement below it). Every
/// suppression that actually fires is counted against the --max-allows
/// budget and listed in the report, so escapes stay visible in CI output.
struct AllowPragma {
  int line;
  std::vector<std::string> checks;
  std::string reason;
  mutable int uses{0};
};

struct Include {
  int line;
  std::string target;  // e.g. "random", "sys/time.h"
};

struct FileUnit {
  std::string path;          // path as reported in findings
  std::string display_path;  // normalized (repo-relative when possible)
  std::vector<Token> toks;
  std::vector<AllowPragma> allows;
  std::vector<Include> includes;
};

}  // namespace asman_lint

// SPECjbb2005 model (paper §5.2, Figure 10).
//
// SPECjbb2005 emulates a 3-tier Java business system in a single JVM: W
// warehouse threads execute independent transactions against per-warehouse
// data, with occasional accesses to JVM/application shared structures
// (allocation, global trees) that serialize briefly. It generates no I/O.
// The model: W threads, each looping [compute(txn) ; sometimes lock one of
// a few shared mutexes]. Throughput = transactions completed inside a
// fixed measurement window ("bops"); the SPECjbb score is the average of
// the per-warehouse-count throughputs for W >= number of VCPUs.
#pragma once

#include <memory>

#include "simcore/rng.h"
#include "simcore/simulator.h"
#include "workloads/workload.h"

namespace asman::workloads {

struct SpecJbbParams {
  std::uint32_t warehouses{4};
  /// Mean transaction compute length and jitter.
  Cycles txn_mean{sim::kDefaultClock.from_us(450)};
  double txn_cv{0.3};
  /// Probability that a transaction touches a shared structure, number of
  /// such structures, and the lock hold time.
  double shared_lock_prob{0.18};
  std::uint32_t shared_locks{3};
  Cycles shared_hold{sim::kDefaultClock.from_us(18)};

  /// JVM stop-the-world safepoints (GC): every `safepoint_every_txns`
  /// transactions VM-wide, every warehouse thread rendezvouses
  /// (HotSpot-style active wait) and then runs a *parallel* GC pause:
  /// `gc_phases` rounds of [work chunk + termination barrier] — the
  /// fine-grain coupling (parallel marking/evacuation with work stealing)
  /// that makes SPECjbb coscheduling-sensitive at low VCPU online rates:
  /// one descheduled VCPU stalls every GC round for the whole JVM.
  std::uint64_t safepoint_every_txns{200};
  std::uint32_t gc_phases{6};
  Cycles gc_chunk{sim::kDefaultClock.from_us(300)};

  /// JVM background daemons (timer thread, JIT compiler, watcher): wake
  /// periodically, do a little work, sleep. Their sleep/wake churn is what
  /// keeps a real JVM's VCPUs from aligning by accident.
  std::uint32_t daemons{2};
  Cycles daemon_period{sim::kDefaultClock.from_ms(15)};
  Cycles daemon_work{sim::kDefaultClock.from_us(250)};

  /// Memory footprint for the contention engine. Default: ~2 MB of hot
  /// per-warehouse B-tree and allocation-buffer state per warehouse with
  /// JVM-heap reuse characteristics (a live-set far larger than LLC, but
  /// the transaction loop re-touches the warehouse tree constantly).
  hw::memsys::MemFootprint footprint{
      hw::memsys::make_footprint(4ULL * 2 * 1024 * 1024, 2'500'000'000ULL,
                                 550)};
};

class SpecJbbWorkload final : public Workload {
 public:
  SpecJbbWorkload(sim::Simulator& simulation, SpecJbbParams params,
                  std::uint64_t seed);
  ~SpecJbbWorkload() override;

  void deploy(guest::GuestKernel& g) override;
  std::string name() const override;
  bool finite() const override { return false; }
  /// Transactions completed so far across all warehouses.
  std::uint64_t work_units() const override;
  hw::memsys::MemFootprint footprint() const override {
    return params_.footprint;
  }

  struct Shared;  // defined in the .cpp; shared by warehouse programs

 private:
  sim::Simulator& sim_;
  SpecJbbParams params_;
  std::uint64_t seed_;
  std::unique_ptr<Shared> shared_;
};

}  // namespace asman::workloads

#include "absint.h"

#include <algorithm>
#include <cstdlib>

#include "analyzer.h"
#include "lexer.h"

namespace asman_lint {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == Tok::kPunct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == Tok::kIdent && t.text == s;
}

Wide sat(Wide v) {
  if (v > kAbsInf) return kAbsInf;
  if (v < -kAbsInf) return -kAbsInf;
  return v;
}

/// Saturating multiply: endpoints live in (-2^110, 2^110), so the __int128
/// product of two in-range values can overflow; detect by division.
Wide smul(Wide a, Wide b) {
  if (a == 0 || b == 0) return 0;
  const bool neg = (a < 0) != (b < 0);
  Wide aa = a < 0 ? -a : a, bb = b < 0 ? -b : b;
  if (aa > kAbsInf / bb) return neg ? -kAbsInf : kAbsInf;
  return sat(neg ? -(aa * bb) : aa * bb);
}
bool railed(Wide x) { return x >= kAbsInf || x <= -kAbsInf; }

/// Rail-propagating endpoint arithmetic: once an endpoint means
/// "unbounded" it must stay unbounded through every operation, or the
/// arithmetic would manufacture a finite — and false — "provable" bound
/// (e.g. rail/2 looks finite but the true quotient is unbounded).
Wide ep_sum(Wide a, Wide b) {
  if (railed(a)) return a > 0 ? kAbsInf : -kAbsInf;
  if (railed(b)) return b > 0 ? kAbsInf : -kAbsInf;
  return sat(a + b);
}
Wide ep_mul(Wide a, Wide b) {
  if (railed(a) || railed(b)) {
    if (a == 0 || b == 0) return 0;
    return (a < 0) != (b < 0) ? -kAbsInf : kAbsInf;
  }
  return smul(a, b);
}
Wide ep_div(Wide a, Wide b) {  // b != 0 (callers gate the divisor interval)
  if (railed(a)) return (a < 0) != (b < 0) ? -kAbsInf : kAbsInf;
  if (railed(b)) return 0;  // finite / unbounded: the true limit
  return a / b;
}

bool at_rail(const AbsVal& v) { return railed(v.hi) || railed(v.lo); }

/// Merge two witness lists (first binding of each config leaf wins; a
/// repeated leaf — e.g. x*x — keeps one representative, which is the
/// best-effort contract of the witness).
std::vector<WitnessBinding> merge_wit(const std::vector<WitnessBinding>& a,
                                      const std::vector<WitnessBinding>& b) {
  std::vector<WitnessBinding> out = a;
  for (const WitnessBinding& w : b) {
    bool seen = false;
    for (const WitnessBinding& o : out) seen = seen || o.name == w.name;
    if (!seen && out.size() < 8) out.push_back(w);
  }
  return out;
}

std::string snippet_of(const std::vector<Token>& t, std::size_t b,
                       std::size_t e) {
  std::string s;
  const std::size_t last = std::min(e, b + 12);
  for (std::size_t i = b; i < last; ++i) {
    if (!s.empty() && t[i].kind != Tok::kPunct &&
        (i == b || t[i - 1].kind != Tok::kPunct ||
         t[i - 1].text == ")" || t[i - 1].text == "}"))
      s += ' ';
    else if (!s.empty() && t[i].kind == Tok::kPunct)
      s += t[i].text == "(" || t[i].text == ")" ? "" : " ";
    s += t[i].text;
  }
  if (e > last) s += " ...";
  return s;
}

/// Identifiers whose very name marks them as carrying credit / pressure /
/// contention quantities — the taint seed the rule is scoped to.
const char* const kTaintStems[] = {"credit", "pressure", "ppm",   "weight",
                                   "slowdown", "mint",    "penalt", "contention",
                                   "footprint"};

}  // namespace

bool taints_value(const std::string& ident) {
  std::string low;
  low.reserve(ident.size());
  for (char c : ident)
    low.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  for (const char* stem : kTaintStems)
    if (low.find(stem) != std::string::npos) return true;
  return false;
}

const char* width_name(NumWidth w) {
  switch (w) {
    case NumWidth::kBool: return "bool";
    case NumWidth::kI8: return "int8_t";
    case NumWidth::kU8: return "uint8_t";
    case NumWidth::kI16: return "int16_t";
    case NumWidth::kU16: return "uint16_t";
    case NumWidth::kI32: return "int32_t";
    case NumWidth::kU32: return "uint32_t";
    case NumWidth::kI64: return "int64_t";
    case NumWidth::kU64: return "uint64_t";
    case NumWidth::kI128: return "__int128";
    case NumWidth::kOther: return "<unknown>";
  }
  return "<unknown>";
}

bool width_is_unsigned(NumWidth w) {
  return w == NumWidth::kBool || w == NumWidth::kU8 || w == NumWidth::kU16 ||
         w == NumWidth::kU32 || w == NumWidth::kU64;
}

Wide width_min(NumWidth w) {
  switch (w) {
    case NumWidth::kI8: return -128;
    case NumWidth::kI16: return -32768;
    case NumWidth::kI32: return -(static_cast<Wide>(1) << 31);
    case NumWidth::kI64: return -(static_cast<Wide>(1) << 63);
    case NumWidth::kI128: return -kAbsInf;  // wider than any provable value
    default: return 0;
  }
}

Wide width_max(NumWidth w) {
  switch (w) {
    case NumWidth::kBool: return 1;
    case NumWidth::kI8: return 127;
    case NumWidth::kU8: return 255;
    case NumWidth::kI16: return 32767;
    case NumWidth::kU16: return 65535;
    case NumWidth::kI32: return (static_cast<Wide>(1) << 31) - 1;
    case NumWidth::kU32: return (static_cast<Wide>(1) << 32) - 1;
    case NumWidth::kI64: return (static_cast<Wide>(1) << 63) - 1;
    case NumWidth::kU64: return (static_cast<Wide>(1) << 64) - 1;
    case NumWidth::kI128: return kAbsInf;
    case NumWidth::kOther: return kAbsInf;
  }
  return kAbsInf;
}

std::string wide_str(Wide v) {
  if (v >= kAbsInf) return "+inf";
  if (v <= -kAbsInf) return "-inf";
  if (v == 0) return "0";
  const bool neg = v < 0;
  if (neg) v = -v;
  std::string s;
  while (v > 0) {
    s.insert(s.begin(), static_cast<char>('0' + static_cast<int>(v % 10)));
    v /= 10;
  }
  return neg ? "-" + s : s;
}

NumWidth width_of_type_tokens(const std::vector<Token>& t, std::size_t b,
                              std::size_t e, bool& known) {
  known = false;
  bool saw_unsigned = false, saw_int = false, saw_char = false;
  bool saw_short = false, saw_i128 = false, saw_float = false;
  int longs = 0;
  NumWidth fixed = NumWidth::kOther;
  for (std::size_t i = b; i < e; ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const std::string& x = t[i].text;
    if (x == "const" || x == "constexpr" || x == "static" || x == "std" ||
        x == "volatile" || x == "inline" || x == "signed" || x == "sim" ||
        x == "typename")
      continue;
    if (x == "unsigned") saw_unsigned = true;
    else if (x == "int") saw_int = true;
    else if (x == "long") ++longs;
    else if (x == "short") saw_short = true;
    else if (x == "char") saw_char = true;
    else if (x == "__int128") saw_i128 = true;
    else if (x == "bool") fixed = NumWidth::kBool;
    else if (x == "int8_t") fixed = NumWidth::kI8;
    else if (x == "uint8_t") fixed = NumWidth::kU8;
    else if (x == "int16_t") fixed = NumWidth::kI16;
    else if (x == "uint16_t") fixed = NumWidth::kU16;
    else if (x == "int32_t") fixed = NumWidth::kI32;
    else if (x == "uint32_t") fixed = NumWidth::kU32;
    else if (x == "int64_t" || x == "ptrdiff_t" || x == "ssize_t")
      fixed = NumWidth::kI64;
    else if (x == "uint64_t" || x == "size_t" || x == "uintptr_t")
      fixed = NumWidth::kU64;
    else if (x == "Cycles")
      fixed = NumWidth::kU64;  // sim::Cycles wraps a uint64_t tick count
    else if (x == "float" || x == "double") saw_float = true;
    else
      return NumWidth::kOther;  // class type / auto / unrecognized
  }
  if (saw_float) {  // recognized arithmetic, but not range-checked here
    known = true;
    return NumWidth::kOther;
  }
  if (fixed != NumWidth::kOther) {
    known = true;
    return fixed;
  }
  if (saw_i128) {
    if (saw_unsigned) return NumWidth::kOther;  // not used in this codebase
    known = true;
    return NumWidth::kI128;
  }
  if (saw_char) {
    known = true;
    return saw_unsigned ? NumWidth::kU8 : NumWidth::kI8;
  }
  if (saw_short) {
    known = true;
    return saw_unsigned ? NumWidth::kU16 : NumWidth::kI16;
  }
  if (longs > 0) {
    known = true;
    return saw_unsigned ? NumWidth::kU64 : NumWidth::kI64;
  }
  if (saw_int || saw_unsigned) {
    known = true;
    return saw_unsigned ? NumWidth::kU32 : NumWidth::kI32;
  }
  return NumWidth::kOther;
}

namespace {

int width_rank(NumWidth w) {
  switch (w) {
    case NumWidth::kBool:
    case NumWidth::kI8:
    case NumWidth::kU8:
    case NumWidth::kI16:
    case NumWidth::kU16:
    case NumWidth::kI32: return 3;
    case NumWidth::kU32: return 4;
    case NumWidth::kI64: return 5;
    case NumWidth::kU64: return 6;
    case NumWidth::kI128: return 7;
    case NumWidth::kOther: return -1;
  }
  return -1;
}

/// Usual-arithmetic-conversions approximation: sub-int promotes to int,
/// higher rank wins (rank already encodes unsigned-wins-at-same-rank).
NumWidth combine_width(NumWidth a, NumWidth b) {
  const int ra = width_rank(a), rb = width_rank(b);
  if (ra < 0 || rb < 0) return NumWidth::kOther;
  switch (std::max(ra, rb)) {
    case 3: return NumWidth::kI32;
    case 4: return NumWidth::kU32;
    case 5: return NumWidth::kI64;
    case 6: return NumWidth::kU64;
    default: return NumWidth::kI128;
  }
}

/// BoundsSpec loader: finds kFieldBounds in src/core/bounds_spec.h and
/// extracts every `{ field :: <ident> , <num> , <num> }` triple. The same
/// structural-lex contract as load_transition_spec — the spec header
/// documents the shape it must keep.
BoundsSpec load_bounds_spec(const std::string& root) {
  BoundsSpec spec;
  const std::string rel = "src/core/bounds_spec.h";
  const std::string path = root + "/" + rel;
  FileUnit unit;
  std::string err;
  if (!lex_path(path, rel, unit, err)) {
    spec.error = "cannot read bounds spec " + path + ": " + err;
    return spec;
  }
  const std::vector<Token>& t = unit.toks;
  std::size_t open = t.size();
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (is_ident(t[i], "kFieldBounds") && is_punct(t[i + 1], "[")) {
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (is_punct(t[j], "{")) {
          open = j;
          break;
        }
        if (is_punct(t[j], ";")) break;
      }
      break;
    }
  }
  if (open >= t.size()) {
    spec.error = "kFieldBounds initializer not found in " + path;
    return spec;
  }
  const std::size_t close = match_forward(t, open);
  auto read_num = [&t](std::size_t& i, long long& out) {
    long long sign = 1;
    if (i < t.size() && is_punct(t[i], "-")) {
      sign = -1;
      ++i;
    }
    if (i >= t.size() || t[i].kind != Tok::kNumber) return false;
    std::string digits;
    for (char c : t[i].text)
      if (c != '\'') digits.push_back(c);
    out = sign * std::strtoll(digits.c_str(), nullptr, 0);
    ++i;
    return true;
  };
  for (std::size_t i = open + 1; i + 6 < close; ++i) {
    if (!is_punct(t[i], "{") || !is_ident(t[i + 1], "field") ||
        !is_punct(t[i + 2], "::") || t[i + 3].kind != Tok::kIdent ||
        !is_punct(t[i + 4], ","))
      continue;
    const std::string& name = t[i + 3].text;
    std::size_t j = i + 5;
    long long lo = 0, hi = 0;
    if (!read_num(j, lo) || j >= close || !is_punct(t[j], ",")) continue;
    ++j;
    if (!read_num(j, hi) || j >= close || !is_punct(t[j], "}")) continue;
    spec.fields[name] = {lo, hi};
    i = j;
  }
  if (spec.fields.size() < 8)
    spec.error = "malformed kFieldBounds table in " + path + " (" +
                 std::to_string(spec.fields.size()) + " entries)";
  return spec;
}

}  // namespace

const BoundsSpec& bounds_spec(const Options& options) {
  static std::map<std::string, BoundsSpec> cache;
  const std::string root = options.root.empty() ? "." : options.root;
  auto it = cache.find(root);
  if (it != cache.end()) return it->second;
  return cache.emplace(root, load_bounds_spec(root)).first->second;
}

// ---------------------------------------------------------------------------
// Expression evaluation.

/// Interprocedural call context: recursion depth and the active summary
/// chain (cycle guard).
struct CallCtx {
  int depth{0};
  std::vector<std::string> active;
};

namespace {

constexpr int kMaxCallDepth = 8;

/// Trusted aliases where the defining write is structurally out of reach
/// of FieldFacts (ClockDomain is constructed from MachineConfig::freq_hz
/// at every construction site).
const std::pair<const char*, const char*> kAliases[] = {
    {"hz_", "freq_hz"},
};

}  // namespace

/// Recursive-descent evaluator over [b, e). Precedence mirrors C++ for the
/// operators the domain models; anything else degrades to top.
class ExprParser {
 public:
  ExprParser(const Evaluator& ev, const std::vector<Token>& t, std::size_t b,
             std::size_t e, const Env& env, CallCtx& ctx)
      : ev_(ev), t_(t), b_(b), e_(e), env_(env), ctx_(ctx), pos_(b) {}

  AbsVal parse() {
    if (b_ >= e_) return AbsVal::top();
    AbsVal v = ternary();
    if (pos_ < e_) {
      // Trailing tokens the grammar could not consume: keep any violation
      // already proved, but the value itself is unknown.
      AbsVal top = AbsVal::top();
      top.tainted = v.tainted;
      top.viol = v.viol;
      return top;
    }
    return v;
  }

 private:
  const Evaluator& ev_;
  const std::vector<Token>& t_;
  std::size_t b_, e_;
  const Env& env_;
  CallCtx& ctx_;
  std::size_t pos_;

  bool at(const char* p) const { return pos_ < e_ && is_punct(t_[pos_], p); }
  bool at_ident(const char* s) const {
    return pos_ < e_ && is_ident(t_[pos_], s);
  }

  static AbsVal carry_top(const AbsVal& a) {
    AbsVal v = AbsVal::top();
    v.tainted = a.tainted;
    v.viol = a.viol;
    return v;
  }
  static AbsVal carry_top2(const AbsVal& a, const AbsVal& b) {
    AbsVal v = AbsVal::top();
    v.tainted = a.tainted || b.tainted;
    v.viol = a.viol ? a.viol : b.viol;
    return v;
  }
  static AbsVal bool_val(const AbsVal& a, const AbsVal& b) {
    AbsVal v;
    v.known = true;
    v.lo = 0;
    v.hi = 1;
    v.width = NumWidth::kBool;
    v.tainted = a.tainted || b.tainted;
    v.viol = a.viol ? a.viol : b.viol;
    return v;
  }

  AbsVal ternary() {
    AbsVal c = logical_or();
    if (!at("?")) return c;
    ++pos_;
    AbsVal a = ternary();
    if (!at(":")) return carry_top2(c, a);
    ++pos_;
    AbsVal b = ternary();
    AbsVal r;
    if (c.known && c.lo == c.hi)
      r = c.lo != 0 ? a : b;  // condition decided inside the domain
    else if (a.known && b.known)
      r = join_vals(a, b);
    else
      r = carry_top2(a, b);
    r.tainted = r.tainted || c.tainted;
    if (!r.viol) r.viol = c.viol;
    return r;
  }

  AbsVal logical_or() {
    AbsVal v = logical_and();
    while (at("||")) {
      ++pos_;
      v = bool_val(v, logical_and());
    }
    return v;
  }
  AbsVal logical_and() {
    AbsVal v = bit_or();
    while (at("&&")) {
      ++pos_;
      v = bool_val(v, bit_or());
    }
    return v;
  }

  AbsVal bit_or() {
    AbsVal v = bit_xor();
    while (at("|")) {
      ++pos_;
      v = bits(v, bit_xor(), /*is_and=*/false);
    }
    return v;
  }
  AbsVal bit_xor() {
    AbsVal v = bit_and();
    while (at("^")) {
      ++pos_;
      v = bits(v, bit_and(), /*is_and=*/false);
    }
    return v;
  }
  AbsVal bit_and() {
    AbsVal v = equality();
    while (at("&")) {
      ++pos_;
      v = bits(v, equality(), /*is_and=*/true);
    }
    return v;
  }

  static AbsVal bits(const AbsVal& a, const AbsVal& b, bool is_and) {
    if (!a.known || !b.known || a.lo < 0 || b.lo < 0) return carry_top2(a, b);
    AbsVal v;
    v.known = true;
    v.lo = 0;
    if (is_and) {
      v.hi = std::min(a.hi, b.hi);
      v.wit_hi = a.hi < b.hi ? a.wit_hi : b.wit_hi;
    } else {
      Wide m = std::max(a.hi, b.hi), p = 1;
      while (p <= m && p < kAbsInf) p = p * 2;
      v.hi = sat(p - 1);
      v.wit_hi = merge_wit(a.wit_hi, b.wit_hi);
    }
    v.width = combine_width(a.width, b.width);
    v.tainted = a.tainted || b.tainted;
    v.viol = a.viol ? a.viol : b.viol;
    return v;
  }

  AbsVal equality() {
    AbsVal v = relational();
    while (at("==") || at("!=")) {
      ++pos_;
      v = bool_val(v, relational());
    }
    return v;
  }
  AbsVal relational() {
    AbsVal v = shift();
    while (at("<") || at("<=") || at(">") || at(">=")) {
      // `<` here could open a template argument list inside an unparsed
      // call; the trailing-token bailout in parse() keeps that safe.
      ++pos_;
      v = bool_val(v, shift());
    }
    return v;
  }

  AbsVal shift() {
    AbsVal v = additive();
    while (at("<<") || at(">>")) {
      const bool left = t_[pos_].text == "<<";
      ++pos_;
      AbsVal s = additive();
      if (!v.known || !s.known || v.lo < 0 || s.lo < 0 || s.hi > 120) {
        v = carry_top2(v, s);
        continue;
      }
      AbsVal r;
      r.known = true;
      if (left) {
        if (s.lo != s.hi) {
          v = carry_top2(v, s);
          continue;
        }
        Wide f = 1;
        for (Wide i = 0; i < s.lo; ++i) f = smul(f, 2);
        r.lo = ep_mul(v.lo, f);
        r.hi = ep_mul(v.hi, f);
        r.wit_lo = v.wit_lo;
        r.wit_hi = v.wit_hi;
      } else {
        r.lo = v.lo >> static_cast<int>(s.hi);
        r.hi = v.hi >> static_cast<int>(s.lo);
        r.wit_lo = merge_wit(v.wit_lo, s.wit_hi);
        r.wit_hi = merge_wit(v.wit_hi, s.wit_lo);
      }
      r.width = v.width;
      r.tainted = v.tainted || s.tainted;
      r.viol = v.viol ? v.viol : s.viol;
      v = r;
    }
    return v;
  }

  AbsVal additive() {
    AbsVal v = multiplicative();
    while (at("+") || at("-")) {
      const bool add = t_[pos_].text == "+";
      const std::size_t op_b = pos_;
      ++pos_;
      AbsVal r = multiplicative();
      v = arith(v, r, add ? '+' : '-', op_b);
    }
    return v;
  }

  AbsVal multiplicative() {
    AbsVal v = unary();
    while (at("*") || at("/") || at("%")) {
      const char op = t_[pos_].text[0];
      const std::size_t op_b = pos_;
      ++pos_;
      AbsVal r = unary();
      v = arith(v, r, op, op_b);
    }
    return v;
  }

  AbsVal arith(const AbsVal& a, const AbsVal& b, char op, std::size_t op_at) {
    if (!a.known || !b.known) return carry_top2(a, b);
    AbsVal v;
    v.known = true;
    switch (op) {
      case '+':
        v.lo = ep_sum(a.lo, b.lo);
        v.hi = ep_sum(a.hi, b.hi);
        v.wit_lo = merge_wit(a.wit_lo, b.wit_lo);
        v.wit_hi = merge_wit(a.wit_hi, b.wit_hi);
        break;
      case '-':
        v.lo = ep_sum(a.lo, -b.hi);
        v.hi = ep_sum(a.hi, -b.lo);
        v.wit_lo = merge_wit(a.wit_lo, b.wit_hi);
        v.wit_hi = merge_wit(a.wit_hi, b.wit_lo);
        break;
      case '*': {
        const Wide c[4] = {ep_mul(a.lo, b.lo), ep_mul(a.lo, b.hi),
                           ep_mul(a.hi, b.lo), ep_mul(a.hi, b.hi)};
        const std::vector<WitnessBinding>* wa[4] = {&a.wit_lo, &a.wit_lo,
                                                    &a.wit_hi, &a.wit_hi};
        const std::vector<WitnessBinding>* wb[4] = {&b.wit_lo, &b.wit_hi,
                                                    &b.wit_lo, &b.wit_hi};
        int imin = 0, imax = 0;
        for (int i = 1; i < 4; ++i) {
          if (c[i] < c[imin]) imin = i;
          if (c[i] > c[imax]) imax = i;
        }
        v.lo = c[imin];
        v.hi = c[imax];
        v.wit_lo = merge_wit(*wa[imin], *wb[imin]);
        v.wit_hi = merge_wit(*wa[imax], *wb[imax]);
        break;
      }
      case '/': {
        if (b.lo <= 0 && b.hi >= 0) return carry_top2(a, b);  // /0 possible
        const Wide c[4] = {ep_div(a.lo, b.lo), ep_div(a.lo, b.hi),
                           ep_div(a.hi, b.lo), ep_div(a.hi, b.hi)};
        const std::vector<WitnessBinding>* wa[4] = {&a.wit_lo, &a.wit_lo,
                                                    &a.wit_hi, &a.wit_hi};
        const std::vector<WitnessBinding>* wb[4] = {&b.wit_lo, &b.wit_hi,
                                                    &b.wit_lo, &b.wit_hi};
        int imin = 0, imax = 0;
        for (int i = 1; i < 4; ++i) {
          if (c[i] < c[imin]) imin = i;
          if (c[i] > c[imax]) imax = i;
        }
        v.lo = c[imin];
        v.hi = c[imax];
        v.wit_lo = merge_wit(*wa[imin], *wb[imin]);
        v.wit_hi = merge_wit(*wa[imax], *wb[imax]);
        break;
      }
      case '%':
        if (a.lo >= 0 && b.lo > 0) {
          v.lo = 0;
          v.hi = std::min(a.hi, b.hi - 1);
          v.wit_hi = a.hi < b.hi - 1 ? a.wit_hi : b.wit_hi;
        } else {
          return carry_top2(a, b);
        }
        break;
      default: return carry_top2(a, b);
    }
    v.width = combine_width(a.width, b.width);
    v.tainted = a.tainted || b.tainted;
    v.viol = a.viol ? a.viol : b.viol;
    // In-type overflow: both operand widths known, so the result type is
    // known too — check the interval against it right here. Unsigned
    // subtraction is exempt (saturating_sub discipline; see header).
    if (v.width != NumWidth::kOther && !at_rail(v) && !v.viol) {
      Wide lo = v.lo, hi = v.hi;
      if (width_is_unsigned(v.width) && op == '-' && lo < 0) {
        lo = 0;
        if (hi < 0) hi = 0;
      }
      if (hi > width_max(v.width) || lo < width_min(v.width)) {
        RangeViolation r;
        r.expr = snippet_of(t_, b_, e_);
        r.width = v.width;
        r.lo = lo;
        r.hi = hi;
        r.narrowing = false;
        r.witness = hi > width_max(v.width) ? v.wit_hi : v.wit_lo;
        r.line = t_[op_at].line;
        v.viol = r;
      }
    }
    return v;
  }

  AbsVal unary() {
    if (at("-")) {
      ++pos_;
      AbsVal a = unary();
      if (!a.known) return a;
      AbsVal v = a;
      v.lo = -a.hi;
      v.hi = -a.lo;
      v.wit_lo = a.wit_hi;
      v.wit_hi = a.wit_lo;
      if (!width_is_unsigned(v.width)) {
        // keep width; negation of signed stays in type for spec-scale values
      } else {
        v.width = NumWidth::kOther;  // unsigned negation wraps: give up type
      }
      return v;
    }
    if (at("+")) {
      ++pos_;
      return unary();
    }
    if (at("!")) {
      ++pos_;
      AbsVal a = unary();
      return bool_val(a, a);
    }
    if (at("~") || at("*") || at("&")) {
      ++pos_;
      AbsVal a = unary();
      return carry_top(a);
    }
    return primary();
  }

  AbsVal join_vals(const AbsVal& a, const AbsVal& b) {
    AbsVal v;
    v.known = a.known && b.known;
    if (v.known) {
      v.lo = std::min(a.lo, b.lo);
      v.hi = std::max(a.hi, b.hi);
      v.wit_lo = a.lo <= b.lo ? a.wit_lo : b.wit_lo;
      v.wit_hi = a.hi >= b.hi ? a.wit_hi : b.wit_hi;
    }
    v.width = a.width == b.width ? a.width : NumWidth::kOther;
    v.tainted = a.tainted || b.tainted;
    v.viol = a.viol ? a.viol : b.viol;
    return v;
  }

  AbsVal number(const Token& tok) {
    std::string digits;
    int unsigned_suffix = 0, long_suffix = 0;
    for (char c : tok.text) {
      if (c == '\'') continue;
      if (c == 'u' || c == 'U') {
        ++unsigned_suffix;
        continue;
      }
      if ((c == 'l' || c == 'L') && digits.size() > 1) {
        ++long_suffix;
        continue;
      }
      digits.push_back(c);
    }
    const unsigned long long u = std::strtoull(digits.c_str(), nullptr, 0);
    const Wide w = static_cast<Wide>(u);
    NumWidth width;
    if (unsigned_suffix > 0)
      width = long_suffix > 0 || w > width_max(NumWidth::kU32)
                  ? NumWidth::kU64
                  : NumWidth::kU32;
    else
      width = long_suffix > 0 || w > width_max(NumWidth::kI32)
                  ? NumWidth::kI64
                  : NumWidth::kI32;
    return AbsVal::exact(w, width);
  }

  /// Applies a cast/store of `v` into `w`, recording a violation when the
  /// interval provably escapes and clamping so evaluation continues.
  AbsVal cast_into(AbsVal v, NumWidth w, std::size_t snip_b,
                   std::size_t snip_e, int line, bool narrowing) {
    if (w == NumWidth::kOther || !v.known) {
      v.width = w;
      return v;
    }
    if (at_rail(v)) {  // unbounded endpoint: nothing provable
      v.known = false;
      v.width = w;
      return v;
    }
    const Wide mn = width_min(w), mx = width_max(w);
    if (width_is_unsigned(w) && v.lo < 0) {
      // Unsigned-underflow exemption (saturating_sub discipline).
      v.lo = 0;
      if (v.hi < 0) v.hi = 0;
      v.wit_lo.clear();
    }
    const bool over = v.hi > mx, under = v.lo < mn;
    if ((over || under) && !v.viol) {
      RangeViolation r;
      r.expr = snippet_of(t_, snip_b, snip_e);
      r.width = w;
      r.lo = v.lo;
      r.hi = v.hi;
      r.narrowing = narrowing;
      r.witness = over ? v.wit_hi : v.wit_lo;
      r.line = line;
      v.viol = r;
    }
    v.lo = std::max(v.lo, mn);
    v.hi = std::min(v.hi, mx);
    if (v.lo > v.hi) v.lo = v.hi = std::max(mn, std::min(mx, Wide{0}));
    v.width = w;
    return v;
  }

  /// Splits the argument list of the call whose '(' (or '{') is at `open`
  /// into top-level comma segments; returns false if unbalanced.
  bool split_args(std::size_t open, std::size_t close,
                  std::vector<std::pair<std::size_t, std::size_t>>& args) {
    std::size_t start = open + 1;
    int depth = 0;
    for (std::size_t i = open + 1; i < close; ++i) {
      if (t_[i].kind != Tok::kPunct) continue;
      const std::string& x = t_[i].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      else if (x == ")" || x == "]" || x == "}") --depth;
      else if (x == "," && depth == 0) {
        args.emplace_back(start, i);
        start = i + 1;
      }
    }
    if (start < close) args.emplace_back(start, close);
    return true;
  }

  AbsVal eval_range(std::size_t b, std::size_t e, const Env& env) {
    ExprParser p(ev_, t_, b, e, env, ctx_);
    return p.parse();
  }

  AbsVal call(const std::string& last, std::size_t open, bool tainted_path) {
    const std::size_t close = match_forward(t_, open);
    if (close >= e_ || close >= t_.size()) {
      pos_ = e_;
      return AbsVal::top();
    }
    std::vector<std::pair<std::size_t, std::size_t>> arg_ranges;
    split_args(open, close, arg_ranges);
    std::vector<AbsVal> args;
    args.reserve(arg_ranges.size());
    for (const auto& [ab, ae] : arg_ranges) args.push_back(eval_range(ab, ae, env_));
    pos_ = close + 1;

    bool args_tainted = tainted_path;
    std::optional<RangeViolation> args_viol;
    for (const AbsVal& a : args) {
      args_tainted = args_tainted || a.tainted;
      if (!args_viol && a.viol) args_viol = a.viol;
    }
    auto finish = [&](AbsVal v) {
      v.tainted = v.tainted || args_tainted;
      if (!v.viol) v.viol = args_viol;
      return v;
    };

    // Interval builtins.
    if ((last == "min" || last == "max") && args.size() >= 2) {
      AbsVal v = args[0];
      for (std::size_t i = 1; i < args.size(); ++i) {
        const AbsVal& o = args[i];
        if (!v.known || !o.known) return finish(carry_top2(v, o));
        if (last == "min") {
          if (o.lo < v.lo) {
            v.lo = o.lo;
            v.wit_lo = o.wit_lo;
          }
          if (o.hi < v.hi) {
            v.hi = o.hi;
            v.wit_hi = o.wit_hi;
          }
        } else {
          if (o.lo > v.lo) {
            v.lo = o.lo;
            v.wit_lo = o.wit_lo;
          }
          if (o.hi > v.hi) {
            v.hi = o.hi;
            v.wit_hi = o.wit_hi;
          }
        }
        v.width = combine_width(v.width, o.width);
      }
      return finish(v);
    }
    if (last == "clamp" && args.size() == 3 && args[0].known &&
        args[1].known && args[2].known) {
      AbsVal v = args[0];
      if (v.lo < args[1].lo) {
        v.lo = args[1].lo;
        v.wit_lo = args[1].wit_lo;
      }
      if (v.hi > args[2].hi) {
        v.hi = args[2].hi;
        v.wit_hi = args[2].wit_hi;
      }
      if (v.lo > v.hi) v.lo = v.hi;
      return finish(v);
    }
    if (last == "saturating_sub" && args.size() == 2 && args[0].known &&
        args[1].known) {
      AbsVal v;
      v.known = true;
      v.lo = std::max(Wide{0}, ep_sum(args[0].lo, -args[1].hi));
      v.hi = std::max(Wide{0}, ep_sum(args[0].hi, -args[1].lo));
      v.wit_lo = merge_wit(args[0].wit_lo, args[1].wit_hi);
      v.wit_hi = merge_wit(args[0].wit_hi, args[1].wit_lo);
      v.width = args[0].width;
      return finish(v);
    }

    // Functional cast to a recognized arithmetic type: Type(expr). The
    // path tokens are [path_begin_, open).
    {
      bool tknown = false;
      const NumWidth w = width_of_type_tokens(t_, path_begin_, open, tknown);
      if (tknown && args.size() == 1)
        return finish(cast_into(args[0], w, path_begin_, close + 1,
                                t_[open].line, /*narrowing=*/true));
    }

    // Single-return summary with positional parameter binding.
    const ValueModel::Summary* s = ev_.model_.summary(last);
    if (s != nullptr && !s->ambiguous && s->unit != nullptr &&
        s->params.size() == args.size() && ctx_.depth < kMaxCallDepth &&
        std::find(ctx_.active.begin(), ctx_.active.end(), last) ==
            ctx_.active.end()) {
      Env callee;
      for (std::size_t i = 0; i < args.size(); ++i)
        callee.vars[s->params[i]] = args[i];
      ctx_.active.push_back(last);
      ++ctx_.depth;
      ExprParser p(ev_, s->unit->toks, s->expr_begin, s->expr_end, callee,
                   ctx_);
      AbsVal v = p.parse();
      --ctx_.depth;
      ctx_.active.pop_back();
      if (v.viol) v.viol->line = t_[open].line;  // report at the call site
      return finish(v);
    }

    // Bounds accessor fallback: a call named exactly like a spec field
    // (Topology::num_llcs() and friends) yields the spec interval.
    if (const auto* fb = ev_.spec_.find(last)) {
      AbsVal v;
      v.known = true;
      v.lo = fb->first;
      v.hi = fb->second;
      v.width = NumWidth::kOther;
      v.wit_lo = {{last, fb->first}};
      v.wit_hi = {{last, fb->second}};
      v.tainted = taints_value(last);
      return finish(v);
    }
    return finish(AbsVal::top());
  }

  std::size_t path_begin_{0};

  /// Resolves an identifier path per the documented order: env[full path]
  /// -> env[last component] -> `.v` strip (Cycles) -> trusted alias ->
  /// member-field fact -> bounds-spec field -> top.
  AbsVal resolve(const std::string& full, const std::string& last,
                 const std::string& full_minus_v) {
    const bool tainted = taints_value(full);
    auto mark = [tainted](AbsVal v) {
      v.tainted = v.tainted || tainted;
      return v;
    };
    auto it = env_.vars.find(full);
    if (it != env_.vars.end()) return mark(it->second);
    it = env_.vars.find(last);
    if (it != env_.vars.end()) return mark(it->second);
    if (!full_minus_v.empty()) {
      it = env_.vars.find(full_minus_v);
      if (it != env_.vars.end()) return mark(it->second);
    }
    std::string looked = last;
    if (last == "v" && !full_minus_v.empty()) {
      const std::size_t dot = full_minus_v.rfind('.');
      const std::size_t arrow = full_minus_v.rfind("->");
      std::size_t cut = dot == std::string::npos ? 0 : dot + 1;
      if (arrow != std::string::npos && arrow + 2 > cut) cut = arrow + 2;
      looked = full_minus_v.substr(cut);
    }
    for (const auto& [from, to] : kAliases) {
      if (looked == from) {
        looked = to;
        break;
      }
    }
    if (!looked.empty() && looked.back() == '_') {
      if (const AbsVal* f = ev_.model_.field_fact(looked)) return mark(*f);
      // Also try the spec with the underscore stripped (num_pcpus_ etc).
      const std::string bare = looked.substr(0, looked.size() - 1);
      if (const auto* fb = ev_.spec_.find(bare)) {
        AbsVal v;
        v.known = true;
        v.lo = fb->first;
        v.hi = fb->second;
        v.width = NumWidth::kOther;
        v.wit_lo = {{bare, fb->first}};
        v.wit_hi = {{bare, fb->second}};
        return mark(v);
      }
      return mark(AbsVal::top());
    }
    if (const auto* fb = ev_.spec_.find(looked)) {
      AbsVal v;
      v.known = true;
      v.lo = fb->first;
      v.hi = fb->second;
      v.width = NumWidth::kOther;
      v.wit_lo = {{looked, fb->first}};
      v.wit_hi = {{looked, fb->second}};
      return mark(v);
    }
    return mark(AbsVal::top());
  }

  AbsVal primary() {
    if (pos_ >= e_) return AbsVal::top();
    const Token& tok = t_[pos_];

    if (tok.kind == Tok::kNumber) {
      ++pos_;
      return number(tok);
    }
    if (tok.kind == Tok::kFloatNumber || tok.kind == Tok::kString ||
        tok.kind == Tok::kChar) {
      ++pos_;
      return AbsVal::top();
    }
    if (at("(")) {
      const std::size_t close = match_forward(t_, pos_);
      if (close >= e_) {
        pos_ = e_;
        return AbsVal::top();
      }
      AbsVal v = eval_range(pos_ + 1, close, env_);
      pos_ = close + 1;
      return postfix(v);
    }
    if (at("{")) {  // braced subexpression (aggregate): opaque
      const std::size_t close = match_forward(t_, pos_);
      pos_ = close < e_ ? close + 1 : e_;
      return AbsVal::top();
    }
    if (at_ident("true")) {
      ++pos_;
      return AbsVal::exact(1, NumWidth::kBool);
    }
    if (at_ident("false") || at_ident("nullptr")) {
      ++pos_;
      return AbsVal::exact(0, NumWidth::kBool);
    }
    if (at_ident("sizeof")) {
      ++pos_;
      if (at("(")) pos_ = std::min(e_, match_forward(t_, pos_) + 1);
      return AbsVal::top();
    }
    if (at_ident("static_cast")) {
      const std::size_t cast_b = pos_;
      ++pos_;
      if (!at("<")) return AbsVal::top();
      const std::size_t tclose = match_forward(t_, pos_);
      if (tclose >= e_) {
        pos_ = e_;
        return AbsVal::top();
      }
      bool tknown = false;
      const NumWidth w = width_of_type_tokens(t_, pos_ + 1, tclose, tknown);
      pos_ = tclose + 1;
      if (!at("(")) return AbsVal::top();
      const std::size_t close = match_forward(t_, pos_);
      if (close >= e_) {
        pos_ = e_;
        return AbsVal::top();
      }
      AbsVal v = eval_range(pos_ + 1, close, env_);
      pos_ = close + 1;
      if (!tknown) return postfix(carry_top(v));
      return postfix(cast_into(v, w, cast_b, close + 1, t_[cast_b].line,
                               /*narrowing=*/true));
    }

    if (tok.kind == Tok::kIdent) {
      // Collect the identifier path: ident (:: ident)* ((. | ->) ident)*.
      path_begin_ = pos_;
      std::string full = tok.text, last = tok.text, full_minus_v;
      ++pos_;
      while (pos_ + 1 < e_ &&
             (at("::") || at(".") || at("->")) &&
             t_[pos_ + 1].kind == Tok::kIdent) {
        if (t_[pos_ + 1].text == "v" &&
            (is_punct(t_[pos_], ".") || is_punct(t_[pos_], "->")) &&
            (pos_ + 2 >= e_ ||
             (!is_punct(t_[pos_ + 2], "(") && !is_punct(t_[pos_ + 2], "::") &&
              !is_punct(t_[pos_ + 2], ".") && !is_punct(t_[pos_ + 2], "->"))))
          full_minus_v = full;  // `x.v` — remember the Cycles-wrapper prefix
        full += t_[pos_].text;
        full += t_[pos_ + 1].text;
        last = t_[pos_ + 1].text;
        pos_ += 2;
      }
      if (at("(")) return postfix(call(last, pos_, taints_value(full)));
      if (at("{")) {  // Type{expr}: functional cast when the path is a type
        bool tknown = false;
        const NumWidth w =
            width_of_type_tokens(t_, path_begin_, pos_, tknown);
        const std::size_t close = match_forward(t_, pos_);
        if (close >= e_) {
          pos_ = e_;
          return AbsVal::top();
        }
        if (tknown) {
          std::vector<std::pair<std::size_t, std::size_t>> arg_ranges;
          split_args(pos_, close, arg_ranges);
          if (arg_ranges.size() == 1) {
            AbsVal v = eval_range(arg_ranges[0].first, arg_ranges[0].second,
                                  env_);
            const std::size_t snip_e = close + 1;
            const int line = t_[pos_].line;
            pos_ = close + 1;
            return postfix(cast_into(v, w, path_begin_, snip_e, line,
                                     /*narrowing=*/true));
          }
        }
        pos_ = close + 1;
        return AbsVal::top();
      }
      return postfix(resolve(full, last, full_minus_v));
    }

    ++pos_;  // unknown token: consume and give up on this operand
    return AbsVal::top();
  }

  /// Postfix continuations after a parenthesized/call/cast primary:
  /// `.v` (Cycles unwrap passes through), other member chains, indexing.
  AbsVal postfix(AbsVal v) {
    for (;;) {
      if (pos_ + 1 < e_ && (at(".") || at("->")) &&
          t_[pos_ + 1].kind == Tok::kIdent) {
        const bool is_v = t_[pos_ + 1].text == "v";
        pos_ += 2;
        if (at("(")) {  // member call on an opaque receiver
          pos_ = std::min(e_, match_forward(t_, pos_) + 1);
          v = carry_top(v);
        } else if (!is_v) {
          v = carry_top(v);
        }
        // `.v` unwraps the Cycles value: keep the interval.
        continue;
      }
      if (at("[")) {
        pos_ = std::min(e_, match_forward(t_, pos_) + 1);
        v = carry_top(v);
        continue;
      }
      return v;
    }
  }
};

// ---------------------------------------------------------------------------
// Env operations.

bool Env::same_ranges(const Env& o) const {
  if (unreachable != o.unreachable || vars.size() != o.vars.size())
    return false;
  auto a = vars.begin();
  auto b = o.vars.begin();
  for (; a != vars.end(); ++a, ++b) {
    if (a->first != b->first) return false;
    if (!a->second.same_range(b->second)) return false;
  }
  return true;
}

Env join_envs(const Env& a, const Env& b) {
  if (a.unreachable) return b;
  if (b.unreachable) return a;
  Env out;
  for (const auto& [name, va] : a.vars) {
    auto it = b.vars.find(name);
    if (it == b.vars.end()) {
      AbsVal top = AbsVal::top(va.width);
      top.tainted = va.tainted;
      out.vars.emplace(name, top);
      continue;
    }
    const AbsVal& vb = it->second;
    AbsVal v;
    v.known = va.known && vb.known;
    if (v.known) {
      v.lo = std::min(va.lo, vb.lo);
      v.hi = std::max(va.hi, vb.hi);
      v.wit_lo = va.lo <= vb.lo ? va.wit_lo : vb.wit_lo;
      v.wit_hi = va.hi >= vb.hi ? va.wit_hi : vb.wit_hi;
    }
    v.width = va.width == vb.width ? va.width : NumWidth::kOther;
    v.tainted = va.tainted || vb.tainted;
    out.vars.emplace(name, v);
  }
  for (const auto& [name, vb] : b.vars) {
    if (a.vars.find(name) == a.vars.end()) {
      AbsVal top = AbsVal::top(vb.width);
      top.tainted = vb.tainted;
      out.vars.emplace(name, top);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// ValueModel.

void ValueModel::add_unit(const FileUnit& unit) {
  const std::vector<Token>& t = unit.toks;
  const FunctionIndex fidx(unit);

  for (const FunctionSpan& span : fidx.spans()) {
    // Summary candidate: body is exactly `{ return <expr> ; }`.
    if (span.end < span.begin + 4 || !is_punct(t[span.begin], "{") ||
        !is_ident(t[span.begin + 1], "return") ||
        !is_punct(t[span.end - 2], ";") || !is_punct(t[span.end - 1], "}"))
      continue;
    bool single = true;
    {
      int depth = 0;
      for (std::size_t i = span.begin + 1; i < span.end - 2 && single; ++i) {
        if (t[i].kind != Tok::kPunct) continue;
        const std::string& x = t[i].text;
        if (x == "(" || x == "[" || x == "{") ++depth;
        else if (x == ")" || x == "]" || x == "}") --depth;
        else if (x == ";" && depth == 0) single = false;
      }
    }
    if (!single || span.begin + 2 >= span.end - 2) continue;

    // Parameter names: walk back from the body '{' to the parameter list.
    std::size_t close = span.begin;
    bool found = false;
    while (close > 0) {
      --close;
      const Token& tk = t[close];
      if (tk.kind == Tok::kPunct && tk.text == ")") {
        found = true;
        break;
      }
      const bool skippable =
          tk.kind == Tok::kIdent ||
          (tk.kind == Tok::kPunct &&
           (tk.text == "::" || tk.text == "->" || tk.text == "<" ||
            tk.text == ">" || tk.text == "&" || tk.text == "*" ||
            tk.text == ","));
      if (!skippable) break;
    }
    if (!found) continue;
    std::size_t open = close;
    {
      int depth = 1;
      while (open > 0 && depth > 0) {
        --open;
        if (is_punct(t[open], ")")) ++depth;
        else if (is_punct(t[open], "(")) --depth;
      }
      if (depth != 0) continue;
    }
    std::vector<std::string> params;
    bool ok = true;
    {
      std::size_t seg = open + 1;
      int depth = 0;
      for (std::size_t i = open + 1; i <= close && ok; ++i) {
        const bool split =
            i == close || (t[i].kind == Tok::kPunct && depth == 0 &&
                           t[i].text == ",");
        if (t[i].kind == Tok::kPunct) {
          const std::string& x = t[i].text;
          if (x == "(" || x == "[" || x == "{" || x == "<") ++depth;
          else if (x == ")" || x == "]" || x == "}" || x == ">") --depth;
        }
        if (!split) continue;
        if (seg == i) {
          seg = i + 1;
          continue;  // empty segment: parameterless function
        }
        std::size_t stop = i;
        int d2 = 0;
        for (std::size_t j = seg; j < i; ++j) {
          if (t[j].kind != Tok::kPunct) continue;
          if (t[j].text == "(" || t[j].text == "<") ++d2;
          else if (t[j].text == ")" || t[j].text == ">") --d2;
          else if (t[j].text == "=" && d2 == 0) {
            stop = j;
            break;
          }
        }
        std::string name;
        for (std::size_t j = seg; j < stop; ++j)
          if (t[j].kind == Tok::kIdent) name = t[j].text;
        if (name.empty() || name == "void") ok = name == "void";
        else params.push_back(name);
        if (name.empty()) ok = false;
        seg = i + 1;
      }
    }
    if (!ok) continue;

    std::string simple = span.name;
    const std::size_t sep = simple.rfind("::");
    if (sep != std::string::npos) simple = simple.substr(sep + 2);

    auto it = summaries_.find(simple);
    if (it != summaries_.end()) {
      // Same name defined twice (header re-lexed per TU is fine if the
      // body text matches; a genuine overload set is ambiguous).
      const Summary& old = it->second;
      bool same = old.params == params &&
                  old.expr_end - old.expr_begin ==
                      (span.end - 2) - (span.begin + 2);
      if (same && old.unit != nullptr) {
        for (std::size_t i = 0; same && i < old.expr_end - old.expr_begin;
             ++i)
          same = old.unit->toks[old.expr_begin + i].text ==
                 t[span.begin + 2 + i].text;
      }
      if (!same) it->second.ambiguous = true;
      continue;
    }
    Summary s;
    s.unit = &unit;
    s.expr_begin = span.begin + 2;
    s.expr_end = span.end - 2;
    s.params = std::move(params);
    summaries_.emplace(std::move(simple), std::move(s));
  }

  // Member-field writes: every `name_ = expr;`, ctor-init `name_(expr)` /
  // `name_{expr}`, and compound mutation anywhere in the unit.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || t[i].text.size() < 2 ||
        t[i].text.back() != '_')
      continue;
    const std::string& name = t[i].text;
    const Token& next = t[i + 1];
    if (i > 0 && (is_punct(t[i - 1], "++") || is_punct(t[i - 1], "--"))) {
      field_writes_[name].push_back({&unit, 0, 0, true});
      continue;
    }
    if (next.kind != Tok::kPunct) continue;
    if (next.text == "+=" || next.text == "-=" || next.text == "*=" ||
        next.text == "/=" || next.text == "%=" || next.text == "<<=" ||
        next.text == ">>=" || next.text == "&=" || next.text == "|=" ||
        next.text == "^=" || next.text == "++" || next.text == "--") {
      field_writes_[name].push_back({&unit, 0, 0, true});
      continue;
    }
    if (next.text == "=") {
      if (i + 2 < t.size() && is_punct(t[i + 2], "=")) continue;  // ==
      std::size_t end = i + 2;
      int depth = 0;
      while (end < t.size()) {
        if (t[end].kind == Tok::kPunct) {
          const std::string& x = t[end].text;
          if (x == "(" || x == "[" || x == "{") ++depth;
          else if (x == ")" || x == "]" || x == "}") --depth;
          else if ((x == ";" || x == ",") && depth <= 0) break;
        }
        ++end;
      }
      if (end > i + 2) field_writes_[name].push_back({&unit, i + 2, end, false});
      continue;
    }
    if ((next.text == "(" || next.text == "{") && i > 0 &&
        (is_punct(t[i - 1], ":") || is_punct(t[i - 1], ","))) {
      // Constructor-initializer write. (A `case x_:` label or ternary arm
      // can false-hit this; a bogus extra write only widens the fact,
      // which errs toward silence.)
      const std::size_t close = match_forward(t, i + 1);
      if (close < t.size() && close > i + 2)
        field_writes_[name].push_back({&unit, i + 2, close, false});
    }
  }
}

void ValueModel::finalize(const BoundsSpec& spec) {
  const Evaluator ev(spec, *this);
  const Env empty;
  std::map<std::string, AbsVal> prev;
  for (int pass = 0; pass < 3; ++pass) {
    std::map<std::string, AbsVal> next;
    for (const auto& [name, writes] : field_writes_) {
      bool poisoned = false;
      AbsVal joined;
      bool first = true;
      for (const FieldWrite& w : writes) {
        if (w.compound || w.unit == nullptr) {
          poisoned = true;
          break;
        }
        AbsVal v = ev.eval(w.unit->toks, w.rhs_begin, w.rhs_end, empty);
        if (!v.known) {
          poisoned = true;
          break;
        }
        v.viol.reset();  // facts carry ranges, not findings
        if (first) {
          joined = v;
          first = false;
        } else {
          if (v.lo < joined.lo) {
            joined.lo = v.lo;
            joined.wit_lo = v.wit_lo;
          }
          if (v.hi > joined.hi) {
            joined.hi = v.hi;
            joined.wit_hi = v.wit_hi;
          }
          joined.tainted = joined.tainted || v.tainted;
        }
      }
      if (!poisoned && !first) {
        joined.width = NumWidth::kOther;
        next.emplace(name, joined);
      }
    }
    if (pass > 0) {
      // Keep only fields whose fact is stable across the last two passes:
      // an oscillating fact is not a fact.
      std::map<std::string, AbsVal> stable;
      for (const auto& [name, v] : next) {
        auto it = prev.find(name);
        if (it != prev.end() && it->second.same_range(v))
          stable.emplace(name, v);
      }
      if (pass == 2) {
        field_facts_ = std::move(stable);
        return;
      }
    }
    prev = next;
    field_facts_ = std::move(next);
  }
}

const ValueModel::Summary* ValueModel::summary(
    const std::string& simple_name) const {
  auto it = summaries_.find(simple_name);
  if (it == summaries_.end() || it->second.ambiguous) return nullptr;
  return &it->second;
}

const AbsVal* ValueModel::field_fact(const std::string& member_name) const {
  auto it = field_facts_.find(member_name);
  return it == field_facts_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Evaluator entry points.

AbsVal Evaluator::eval(const std::vector<Token>& t, std::size_t b,
                       std::size_t e, const Env& env) const {
  CallCtx ctx;
  ExprParser p(*this, t, b, e, env, ctx);
  return p.parse();
}

AbsVal Evaluator::transfer_stmt(const std::vector<Token>& t, std::size_t b,
                                std::size_t e, Env& env) const {
  std::size_t e2 = e;
  while (e2 > b && is_punct(t[e2 - 1], ";")) --e2;
  if (b >= e2) return AbsVal::top();

  if (is_ident(t[b], "return")) return eval(t, b + 1, e2, env);
  if (is_ident(t[b], "break") || is_ident(t[b], "continue") ||
      is_ident(t[b], "else") || is_ident(t[b], "using") ||
      is_ident(t[b], "typedef") || is_ident(t[b], "goto"))
    return AbsVal::top();
  if (is_ident(t[b], "throw")) return eval(t, b + 1, e2, env);

  // Top-level assignment split (first depth-0 `=`-family operator).
  std::size_t eq = e2;
  std::string op;
  {
    int depth = 0;
    for (std::size_t i = b; i < e2; ++i) {
      if (t[i].kind != Tok::kPunct) continue;
      const std::string& x = t[i].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      else if (x == ")" || x == "]" || x == "}") --depth;
      else if (depth == 0 &&
               (x == "=" || x == "+=" || x == "-=" || x == "*=" ||
                x == "/=" || x == "%=" || x == "<<=" || x == ">>=" ||
                x == "&=" || x == "|=" || x == "^=")) {
        eq = i;
        op = x;
        break;
      }
    }
  }

  if (eq < e2 && eq > b) {
    const std::size_t name_at = eq - 1;
    const bool lhs_is_name = t[name_at].kind == Tok::kIdent;

    // Declaration with initializer: `type name = expr`.
    bool is_decl = false;
    NumWidth decl_w = NumWidth::kOther;
    bool wknown = false;
    if (op == "=" && lhs_is_name && name_at > b) {
      bool plain_type = true;
      for (std::size_t i = b; i < name_at && plain_type; ++i) {
        if (t[i].kind == Tok::kIdent) continue;
        if (t[i].kind == Tok::kPunct &&
            (t[i].text == "::" || t[i].text == "<" || t[i].text == ">" ||
             t[i].text == "&" || t[i].text == "*"))
          continue;
        plain_type = false;
      }
      if (plain_type) {
        decl_w = width_of_type_tokens(t, b, name_at, wknown);
        is_decl = true;
      }
    }

    AbsVal rhs = eval(t, eq + 1, e2, env);
    if (is_decl) {
      if (wknown && decl_w != NumWidth::kOther)
        rhs = store_check(rhs, decl_w, t, eq + 1, e2);
      else
        rhs.width = NumWidth::kOther;
      env.vars[t[name_at].text] = rhs;
      return rhs;
    }

    // Assignment (possibly compound) to an existing lvalue path.
    std::string key;
    for (std::size_t i = b; i < eq; ++i) key += t[i].text;
    if (op != "=") {
      AbsVal cur = eval(t, b, eq, env);
      // x op= rhs  ==  x = x op rhs, modeled through the same arithmetic.
      const char c = op[0];
      AbsVal v;
      if (cur.known && rhs.known) {
        switch (c) {
          case '+':
            v.known = true;
            v.lo = ep_sum(cur.lo, rhs.lo);
            v.hi = ep_sum(cur.hi, rhs.hi);
            v.wit_lo = merge_wit(cur.wit_lo, rhs.wit_lo);
            v.wit_hi = merge_wit(cur.wit_hi, rhs.wit_hi);
            break;
          case '-':
            v.known = true;
            v.lo = ep_sum(cur.lo, -rhs.hi);
            v.hi = ep_sum(cur.hi, -rhs.lo);
            v.wit_lo = merge_wit(cur.wit_lo, rhs.wit_hi);
            v.wit_hi = merge_wit(cur.wit_hi, rhs.wit_lo);
            break;
          case '*': {
            v.known = true;
            const Wide cands[4] = {ep_mul(cur.lo, rhs.lo),
                                   ep_mul(cur.lo, rhs.hi),
                                   ep_mul(cur.hi, rhs.lo),
                                   ep_mul(cur.hi, rhs.hi)};
            v.lo = *std::min_element(cands, cands + 4);
            v.hi = *std::max_element(cands, cands + 4);
            v.wit_lo = merge_wit(cur.wit_lo, rhs.wit_lo);
            v.wit_hi = merge_wit(cur.wit_hi, rhs.wit_hi);
            break;
          }
          default: v = AbsVal::top(); break;
        }
      } else {
        v = AbsVal::top();
      }
      v.width = cur.width;
      v.tainted = cur.tainted || rhs.tainted;
      v.viol = rhs.viol;
      rhs = v;
    }
    auto it = env.vars.find(key);
    NumWidth target = it != env.vars.end() ? it->second.width
                                           : NumWidth::kOther;
    if (it == env.vars.end() && t[b].kind == Tok::kIdent && eq == b + 1) {
      auto it2 = env.vars.find(t[b].text);
      if (it2 != env.vars.end()) {
        target = it2->second.width;
        key = t[b].text;
      }
    }
    if (target != NumWidth::kOther) rhs = store_check(rhs, target, t, b, e2);
    rhs.width = target;
    env.vars[key] = rhs;
    return rhs;
  }

  // ++x / x++ statements.
  if (e2 == b + 2) {
    std::size_t var = e2;
    Wide delta = 0;
    if (t[b].kind == Tok::kIdent && (is_punct(t[b + 1], "++") ||
                                     is_punct(t[b + 1], "--"))) {
      var = b;
      delta = t[b + 1].text == "++" ? 1 : -1;
    } else if (t[b + 1].kind == Tok::kIdent &&
               (is_punct(t[b], "++") || is_punct(t[b], "--"))) {
      var = b + 1;
      delta = t[b].text == "++" ? 1 : -1;
    }
    if (var < e2) {
      auto it = env.vars.find(t[var].text);
      if (it != env.vars.end() && it->second.known) {
        it->second.lo = ep_sum(it->second.lo, delta);
        it->second.hi = ep_sum(it->second.hi, delta);
      }
      return AbsVal::top();
    }
  }

  // Declaration with braced init: `type name{expr}`.
  if (e2 > b + 3 && is_punct(t[e2 - 1], "}")) {
    int depth = 1;
    std::size_t open = e2 - 1;
    while (open > b && depth > 0) {
      --open;
      if (is_punct(t[open], "}")) ++depth;
      else if (is_punct(t[open], "{")) --depth;
    }
    if (depth == 0 && open > b + 1 && t[open - 1].kind == Tok::kIdent) {
      bool plain_type = true;
      for (std::size_t i = b; i < open - 1 && plain_type; ++i) {
        if (t[i].kind == Tok::kIdent) continue;
        if (t[i].kind == Tok::kPunct &&
            (t[i].text == "::" || t[i].text == "<" || t[i].text == ">" ||
             t[i].text == "&" || t[i].text == "*"))
          continue;
        plain_type = false;
      }
      if (plain_type && open - 1 > b) {
        bool wknown = false;
        const NumWidth w = width_of_type_tokens(t, b, open - 1, wknown);
        AbsVal v = open + 1 < e2 - 1 ? eval(t, open + 1, e2 - 1, env)
                                     : AbsVal::exact(0, w);
        if (wknown && w != NumWidth::kOther)
          v = store_check(v, w, t, open + 1, e2 - 1);
        else
          v.width = NumWidth::kOther;
        env.vars[t[open - 1].text] = v;
        return v;
      }
    }
  }

  // Plain expression statement: evaluate for violations inside casts/calls.
  return eval(t, b, e2, env);
}

/// Store-side range check, shared by declarations and assignments.
AbsVal Evaluator::store_check(AbsVal v, NumWidth w,
                              const std::vector<Token>& t, std::size_t b,
                              std::size_t e) const {
  if (w == NumWidth::kOther || !v.known) {
    v.width = w;
    return v;
  }
  if (at_rail(v)) {
    v.known = false;
    v.width = w;
    return v;
  }
  const Wide mn = width_min(w), mx = width_max(w);
  if (width_is_unsigned(w) && v.lo < 0) {
    v.lo = 0;
    if (v.hi < 0) v.hi = 0;
    v.wit_lo.clear();
  }
  const bool over = v.hi > mx, under = v.lo < mn;
  if ((over || under) && !v.viol) {
    RangeViolation r;
    r.expr = snippet_of(t, b, e);
    r.width = w;
    r.lo = v.lo;
    r.hi = v.hi;
    r.narrowing = true;
    r.witness = over ? v.wit_hi : v.wit_lo;
    r.line = b < t.size() ? t[b].line : 0;
    v.viol = r;
  }
  v.lo = std::max(v.lo, mn);
  v.hi = std::min(v.hi, mx);
  if (v.lo > v.hi) v.lo = v.hi = std::max(mn, std::min(mx, Wide{0}));
  v.width = w;
  return v;
}

void Evaluator::refine(const std::vector<Token>& t, std::size_t b,
                       std::size_t e, bool taken, Env& env) const {
  if (b >= e || env.unreachable) return;
  // Strip one level of outer parens.
  while (b < e && is_punct(t[b], "(") && match_forward(t, b) == e - 1) {
    ++b;
    --e;
  }
  if (b >= e) return;

  // Conjunction on the taken branch / disjunction on the fallthrough both
  // refine each operand independently.
  {
    int depth = 0;
    std::vector<std::size_t> cuts;
    const char* sep = taken ? "&&" : "||";
    const char* other = taken ? "||" : "&&";
    bool has_other = false;
    for (std::size_t i = b; i < e; ++i) {
      if (t[i].kind != Tok::kPunct) continue;
      const std::string& x = t[i].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      else if (x == ")" || x == "]" || x == "}") --depth;
      else if (depth == 0 && x == sep) cuts.push_back(i);
      else if (depth == 0 && x == other) has_other = true;
    }
    if (!cuts.empty() && !has_other) {
      std::size_t start = b;
      for (std::size_t cut : cuts) {
        refine(t, start, cut, taken, env);
        start = cut + 1;
      }
      refine(t, start, e, taken, env);
      return;
    }
    if (has_other) return;  // disjunctive information: no single refinement
  }

  if (is_punct(t[b], "!")) {
    refine(t, b + 1, e, !taken, env);
    return;
  }

  // Atomic comparison: `path op expr` or `expr op path`.
  std::size_t cmp = e;
  std::string op;
  {
    int depth = 0;
    for (std::size_t i = b; i < e; ++i) {
      if (t[i].kind != Tok::kPunct) continue;
      const std::string& x = t[i].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      else if (x == ")" || x == "]" || x == "}") --depth;
      else if (depth == 0 && (x == "<" || x == "<=" || x == ">" ||
                              x == ">=" || x == "==" || x == "!=")) {
        if (cmp != e) return;  // chained comparisons: give up
        cmp = i;
        op = x;
      }
    }
  }

  auto is_path = [&t](std::size_t pb, std::size_t pe) {
    if (pb >= pe || t[pb].kind != Tok::kIdent) return false;
    bool want_ident = false;
    for (std::size_t i = pb; i < pe; ++i) {
      if (want_ident) {
        if (t[i].kind != Tok::kIdent) return false;
      } else if (t[i].kind == Tok::kIdent) {
      } else if (t[i].kind == Tok::kPunct &&
                 (t[i].text == "::" || t[i].text == "." ||
                  t[i].text == "->")) {
      } else {
        return false;
      }
      want_ident = t[i].kind == Tok::kPunct;
    }
    return !want_ident;
  };
  auto path_key = [&t](std::size_t pb, std::size_t pe) {
    std::string k;
    for (std::size_t i = pb; i < pe; ++i) k += t[i].text;
    return k;
  };
  auto flip_side = [](const std::string& o) -> std::string {
    if (o == "<") return ">";
    if (o == ">") return "<";
    if (o == "<=") return ">=";
    if (o == ">=") return "<=";
    return o;
  };
  auto negate = [](const std::string& o) -> std::string {
    if (o == "<") return ">=";
    if (o == ">") return "<=";
    if (o == "<=") return ">";
    if (o == ">=") return "<";
    if (o == "==") return "!=";
    return "==";
  };

  if (cmp < e) {
    std::size_t pb = b, pe = cmp, vb = cmp + 1, ve = e;
    std::string eff = op;
    if (!is_path(pb, pe)) {
      if (!is_path(vb, ve)) return;
      std::swap(pb, vb);
      std::swap(pe, ve);
      eff = flip_side(op);  // `expr op path` reads as `path flip(op) expr`
    }
    if (!taken) eff = negate(eff);
    const AbsVal rhs = eval(t, vb, ve, env);
    if (!rhs.known) return;
    const std::string key = path_key(pb, pe);
    AbsVal cur = eval(t, pb, pe, env);
    if (!cur.known) {
      cur.known = true;
      cur.lo = -kAbsInf;
      cur.hi = kAbsInf;
    }
    if (eff == "<") {
      if (rhs.hi - 1 < cur.hi) {
        cur.hi = rhs.hi - 1;
        cur.wit_hi = rhs.wit_hi;
      }
    } else if (eff == "<=") {
      if (rhs.hi < cur.hi) {
        cur.hi = rhs.hi;
        cur.wit_hi = rhs.wit_hi;
      }
    } else if (eff == ">") {
      if (rhs.lo + 1 > cur.lo) {
        cur.lo = rhs.lo + 1;
        cur.wit_lo = rhs.wit_lo;
      }
    } else if (eff == ">=") {
      if (rhs.lo > cur.lo) {
        cur.lo = rhs.lo;
        cur.wit_lo = rhs.wit_lo;
      }
    } else if (eff == "==") {
      if (rhs.lo > cur.lo) {
        cur.lo = rhs.lo;
        cur.wit_lo = rhs.wit_lo;
      }
      if (rhs.hi < cur.hi) {
        cur.hi = rhs.hi;
        cur.wit_hi = rhs.wit_hi;
      }
    } else {
      return;  // != : no interval refinement
    }
    if (cur.lo > cur.hi) {
      env.unreachable = true;
      return;
    }
    env.vars[key] = cur;
    return;
  }

  // Bare truthiness of a path.
  if (is_path(b, e)) {
    const std::string key = path_key(b, e);
    AbsVal cur = eval(t, b, e, env);
    if (!cur.known) return;
    if (taken) {
      if (cur.lo == 0 && cur.hi == 0) {
        env.unreachable = true;
        return;
      }
      if (cur.lo == 0 && cur.hi > 0) cur.lo = 1;
    } else {
      if (cur.lo > 0 || cur.hi < 0) {
        env.unreachable = true;
        return;
      }
      cur.lo = 0;
      cur.hi = 0;
      cur.wit_lo.clear();
      cur.wit_hi.clear();
    }
    env.vars[key] = cur;
  }
}

}  // namespace asman_lint

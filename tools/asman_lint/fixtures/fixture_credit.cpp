// Seeded-violation fixture for the `integer-credit` check: credit math that
// drifts off the __int128-widened integer discipline. Never compiled into
// any target. Expected findings:
//   - 1x unwidened kCreditPerSlot multiply (total_mint)
//   - 2x in decay(): a float expression stored to a credit field, plus the
//     static_cast<double> narrowing-out of a credit quantity
//   - 1x narrowing cast of a credit quantity to int (percent)
// decay() additionally trips `audit-seam` (a credit write outside the
// audited accounting paths), which lint_test pins down too.
#include <cstdint>

namespace fixture {

using Credit = std::int64_t;
inline constexpr Credit kCreditPerSlot = 100'000;

struct Vcpu {
  Credit credit{0};
};

struct Machine {
  std::uint32_t num_pcpus;
  std::uint32_t slots_per_accounting;
};

// planted: int64 product of num_pcpus * kCreditPerSlot * slots overflows
// (UB) inside the valid config space; must be widened through __int128.
Credit total_mint(const Machine& m) {
  return static_cast<Credit>(m.num_pcpus) * kCreditPerSlot *
         m.slots_per_accounting;
}

// planted: floating-point decay reaching a credit store.
void decay(Vcpu& v) {
  v.credit = static_cast<Credit>(0.9 * static_cast<double>(v.credit));
}

// planted: narrowing a credit quantity to int.
int percent(const Vcpu& v) {
  return static_cast<int>(v.credit);
}

}  // namespace fixture

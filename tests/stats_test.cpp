#include "simcore/stats.h"

#include <gtest/gtest.h>

namespace asman::sim {
namespace {

TEST(Summary, MeanMinMax) {
  Summary s;
  for (double x : {4.0, 8.0, 6.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 6.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(Summary, VarianceAndStddev) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-9);  // sample variance
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);
}

TEST(Summary, CvMatchesPaperProtocol) {
  Summary s;
  for (double x : {100.0, 102.0, 98.0, 101.0, 99.0}) s.add(x);
  EXPECT_LT(s.cv(), 0.10);  // §5.3: averages only valid when cv < 10 %
}

TEST(Summary, SingleAndEmpty) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Percentile, Interpolation) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 17.5);
}

TEST(Percentile, UnsortedInputAndEdges) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7}, 99), 7.0);
}

}  // namespace
}  // namespace asman::sim

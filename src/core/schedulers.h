// The paper's schedulers: ASMan's Adaptive Scheduler and the static
// coscheduling baseline (CON).
#pragma once

#include <memory>

#include "vmm/hypervisor.h"

namespace asman::core {

/// ASMan's Adaptive Scheduler (paper §3.3/§4): behaves exactly like the
/// Credit scheduler while every VM's VCRD is LOW; when a Monitoring Module
/// raises a VM to HIGH via do_vcrd_op, the VM's VCPUs are relocated onto
/// distinct PCPU run queues (Algorithm 3 lines 8-16) and gang-scheduled
/// with IPIs at scheduling events (Algorithm 4) until the VCRD drops.
class AdaptiveScheduler final : public vmm::Hypervisor {
 public:
  using Hypervisor::Hypervisor;

 protected:
  bool wants_cosched(const vmm::Vm& v) const override {
    return v.vcrd == vmm::Vcrd::kHigh;
  }
  void on_vcrd_changed(vmm::Vm& v, vmm::Vcrd previous) override;
  void on_accounting(vmm::Vm& v) override;
};

/// The static coscheduling baseline from the authors' earlier work [12]
/// (labelled CON in §5.3): VMs manually typed kConcurrent are always
/// gang-scheduled, independent of what actually runs in them.
class StaticCoScheduler final : public vmm::Hypervisor {
 public:
  using Hypervisor::Hypervisor;

 protected:
  bool wants_cosched(const vmm::Vm& v) const override {
    return v.type == vmm::VmType::kConcurrent;
  }
  void on_accounting(vmm::Vm& v) override;
};

/// Scheduler selection for experiments and benches. kAsmanHw is the
/// out-of-VM variant (core/hw_monitor.h): same adaptive coscheduling, but
/// the VCRD is inferred from PV yield rates instead of a guest-side
/// Monitoring Module.
enum class SchedulerKind { kCredit, kCon, kAsman, kAsmanHw };

const char* to_string(SchedulerKind k);

std::unique_ptr<vmm::Hypervisor> make_scheduler(SchedulerKind kind,
                                                sim::Simulator& simulation,
                                                const hw::MachineConfig& mach,
                                                vmm::SchedMode mode,
                                                sim::Trace* trace = nullptr);

}  // namespace asman::core

#include "workloads/speccpu.h"

#include <algorithm>
#include <vector>

namespace asman::workloads {

using guest::Op;

SpecCpuParams spec_gcc_params(std::uint64_t rounds) {
  SpecCpuParams p;
  p.work_per_copy = sim::kDefaultClock.from_seconds_f(2.2);
  p.rounds = rounds;
  // 176.gcc chases pointers over IR trees: ~1.5 MB hot set per copy with
  // decent reuse once resident.
  p.footprint = hw::memsys::make_footprint(
      static_cast<std::uint64_t>(p.copies) * 1536 * 1024, 2'000'000'000ULL,
      650);
  return p;
}

SpecCpuParams spec_bzip2_params(std::uint64_t rounds) {
  SpecCpuParams p;
  p.work_per_copy = sim::kDefaultClock.from_seconds_f(2.8);
  p.rounds = rounds;
  // 256.bzip2 streams ~900 KB blocks per copy through sort buffers: large
  // effective set, weak reuse across blocks.
  p.footprint = hw::memsys::make_footprint(
      static_cast<std::uint64_t>(p.copies) * 2048 * 1024, 3'000'000'000ULL,
      400);
  return p;
}

struct SpecCpuRateWorkload::Shared {
  SpecCpuParams p;
  sim::Simulator* sim{nullptr};
  std::vector<std::uint64_t> copy_round;  // rounds finished per copy
  std::vector<Cycles> round_times;        // when the slowest copy finished
};

namespace {

class CopyProgram final : public guest::ThreadProgram {
 public:
  CopyProgram(SpecCpuRateWorkload::Shared& sh, std::uint32_t copy,
              std::uint64_t seed)
      : sh_(sh), copy_(copy), rng_(seed) {}

  const char* name() const override { return "spec-copy"; }

  Op next() override {
    const SpecCpuParams& p = sh_.p;
    if (remaining_.v == 0) {
      if (started_) {
        // Round boundary for this copy.
        sh_.copy_round[copy_] += 1;
        const std::uint64_t r = sh_.copy_round[copy_];
        const bool round_complete = std::all_of(
            sh_.copy_round.begin(), sh_.copy_round.end(),
            [r](std::uint64_t c) { return c >= r; });
        if (round_complete && sh_.round_times.size() + 1 == r + 0)
          sh_.round_times.push_back(sh_.sim->now());
        if (r >= p.rounds) return Op::done();
      }
      started_ = true;
      remaining_ = p.work_per_copy;
    }
    const double len = rng_.positive_jitter(
        static_cast<double>(p.chunk.v), p.chunk_cv);
    Cycles c{static_cast<std::uint64_t>(len)};
    if (c > remaining_) c = remaining_;
    remaining_ -= c;
    return Op::compute(c);
  }

 private:
  SpecCpuRateWorkload::Shared& sh_;
  std::uint32_t copy_;
  sim::Rng rng_;
  Cycles remaining_{0};
  bool started_{false};
};

}  // namespace

SpecCpuRateWorkload::SpecCpuRateWorkload(sim::Simulator& simulation,
                                         std::string workload_name,
                                         SpecCpuParams params,
                                         std::uint64_t seed)
    : sim_(simulation),
      name_(std::move(workload_name)),
      params_(params),
      seed_(seed),
      shared_(std::make_unique<Shared>()) {
  shared_->p = params_;
  shared_->sim = &sim_;
  shared_->copy_round.assign(params_.copies, 0);
}

SpecCpuRateWorkload::~SpecCpuRateWorkload() = default;

void SpecCpuRateWorkload::deploy(guest::GuestKernel& g) {
  sim::SplitMix64 seeds(seed_);
  for (std::uint32_t c = 0; c < params_.copies; ++c)
    g.spawn(std::make_unique<CopyProgram>(*shared_, c, seeds.next()),
            c % g.num_vcpus());
}

std::uint64_t SpecCpuRateWorkload::rounds_completed() const {
  return shared_->round_times.size();
}

std::vector<Cycles> SpecCpuRateWorkload::round_times() const {
  return shared_->round_times;
}

}  // namespace asman::workloads

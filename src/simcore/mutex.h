// Annotated mutex wrappers for clang's thread-safety analysis.
//
// std::mutex and std::lock_guard carry no capability attributes on
// libstdc++, so -Wthread-safety cannot see through them. These thin
// wrappers add the attributes and nothing else; under non-clang compilers
// they compile to exactly the std types' behaviour. Condition waits use
// std::condition_variable_any, which accepts any BasicLockable — Mutex
// qualifies via lock()/unlock().
#pragma once

#include <mutex>

#include "simcore/thread_annotations.h"

namespace asman::sim {

class ASMAN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ASMAN_ACQUIRE() { mu_.lock(); }
  void unlock() ASMAN_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex; the scoped-capability attribute lets the analysis
/// track the critical section's extent.
class ASMAN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ASMAN_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ASMAN_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace asman::sim

// SARIF 2.1.0 output so CI can upload findings to code scanning.
#pragma once

#include <string>
#include <vector>

#include "model.h"

namespace asman_lint {

/// Writes all findings (errors as `error` results; suppressed findings with
/// an inSource suppression carrying the allow reason) to `path`. Path
/// witnesses become codeFlows/threadFlows. Returns false on I/O failure.
bool write_sarif(const std::string& path,
                 const std::vector<Finding>& findings);

}  // namespace asman_lint

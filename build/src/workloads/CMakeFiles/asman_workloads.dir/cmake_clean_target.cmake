file(REMOVE_RECURSE
  "libasman_workloads.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig01_motivation.cpp" "bench-build/CMakeFiles/fig01_motivation.dir/fig01_motivation.cpp.o" "gcc" "bench-build/CMakeFiles/fig01_motivation.dir/fig01_motivation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/asman_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/experiments/CMakeFiles/asman_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/asman_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/asman_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/asman_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/asman_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/asman_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

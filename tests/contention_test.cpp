// Memory-system contention tests (docs/MODEL.md §2.8): the footprint
// curve model, the integer partition/slowdown arithmetic, the inertness
// gates (flat topology, zero footprints, zero capacities -> bit-identical
// runs and all-zero counters), the pressure-conservation invariant across
// audited churn/chaos/adversary runs, the balancer's hysteresis, typed
// zero-capacity configuration errors, and bit-reproducibility per seed.
// (The seeded-violation proofs live in audit_test.cpp — see the note at
// the end of this file.)
#include "hw/memsys/contention.h"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "core/schedulers.h"
#include "experiments/adversary.h"
#include "experiments/chaos.h"
#include "experiments/contention.h"
#include "experiments/scenario.h"
#include "experiments/topology.h"
#include "hw/memsys/footprint.h"
#include "simcore/simulator.h"
#include "vmm/hypervisor.h"
#include "workloads/adversary.h"
#include "workloads/synthetic.h"

namespace asman {
namespace {

namespace ex = asman::experiments;
namespace ms = asman::hw::memsys;

using ms::make_footprint;

constexpr std::uint64_t kMiB = 1ull << 20;

sim::Cycles seconds(double s) { return sim::kDefaultClock.from_seconds_f(s); }

constexpr core::SchedulerKind kAllScheds[] = {core::SchedulerKind::kCredit,
                                              core::SchedulerKind::kCon,
                                              core::SchedulerKind::kAsman};

// ---------------------------------------------------------------- model --

TEST(Footprint, CurveIsMonotoneAndAnchoredAtTheBaseline) {
  for (const std::uint32_t loc : {0u, 250u, 500u, 750u, 1000u}) {
    const ms::MemFootprint f = make_footprint(8 * kMiB, 1'000'000'000, loc);
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_GE(f.miss_permille[i], f.miss_permille[i + 1]) << "loc " << loc;
    EXPECT_EQ(f.extra_miss_at(1000), 0u) << "fully resident pays nothing";
    for (std::uint32_t r = 0; r <= 1000; r += 50)
      EXPECT_LE(f.miss_at(r), 1000u);
  }
  // Cache-friendly sets pay the most for losing residency.
  const ms::MemFootprint friendly = make_footprint(kMiB, 0, 900);
  const ms::MemFootprint streaming = make_footprint(kMiB, 0, 100);
  EXPECT_GT(friendly.extra_miss_at(0), streaming.extra_miss_at(0));
  EXPECT_GT(streaming.miss_permille[4], friendly.miss_permille[4]);
}

TEST(Footprint, MissCurveInterpolatesBetweenSamples) {
  ms::MemFootprint f;
  f.working_set_bytes = kMiB;
  f.miss_permille = {{800, 600, 400, 200, 0}};
  EXPECT_EQ(f.miss_at(0), 800u);
  EXPECT_EQ(f.miss_at(125), 700u);
  EXPECT_EQ(f.miss_at(250), 600u);
  EXPECT_EQ(f.miss_at(500), 400u);
  EXPECT_EQ(f.miss_at(1000), 0u);
  EXPECT_EQ(f.miss_at(2000), 0u);  // clamped past full residency
  EXPECT_EQ(f.extra_miss_at(500), 400u);
}

TEST(Contention, VcpuShareSplitsTheWorkingSetExactly) {
  for (const std::uint32_t n : {1u, 2u, 3u, 4u, 7u}) {
    std::uint64_t sum = 0;
    for (std::uint32_t i = 0; i < n; ++i)
      sum += ms::vcpu_ws_share(10 * kMiB + 3, n, i);
    EXPECT_EQ(sum, 10 * kMiB + 3) << n << " VCPUs";
  }
  EXPECT_EQ(ms::vcpu_ws_share(kMiB, 0, 0), 0u);
}

TEST(Contention, SlowdownSaturatesAndDegradationNeverExceedsBusy) {
  EXPECT_EQ(ms::slowdown_ppm(0, 0), 0u);
  EXPECT_EQ(ms::slowdown_ppm(100, 0), 100u * ms::kSlowdownPpmPerExtraMissPermille);
  EXPECT_EQ(ms::slowdown_ppm(10'000, 1'000'000), ms::kMaxSlowdownPpm);
  for (const std::uint64_t busy : {1ull, 999ull, 1ull << 40}) {
    const std::uint64_t d = ms::degraded_cycles(busy, ms::kMaxSlowdownPpm);
    EXPECT_LT(d, busy) << "a VCPU always makes some progress";
    EXPECT_EQ(ms::degraded_cycles(busy, 0), 0u);
  }
}

TEST(Contention, GrantPassIsAnExactPartitionUnderOverflow) {
  const hw::Topology topo = hw::Topology::paper();
  // Three footprinted VMs all homed on LLC 0 (P0): 3 + 5 + 7 MiB of demand
  // against a 6 MiB cache forces rationing with nontrivial remainders.
  std::vector<ms::VmLoad> loads(3);
  const ms::MemFootprint fps[3] = {make_footprint(3 * kMiB, 1'000'000, 500),
                                   make_footprint(5 * kMiB, 1'000'000, 500),
                                   make_footprint(7 * kMiB, 1'000'000, 500)};
  for (std::size_t i = 0; i < 3; ++i) {
    loads[i].fp = &fps[i];
    loads[i].vcpu_llc = {0};
    loads[i].vcpu_socket = {0};
  }
  ms::ContentionPass pass;
  ms::compute_contention(topo, 6 * kMiB, 1'000'000'000, loads, pass);
  ASSERT_EQ(pass.llc_demand.size(), topo.num_llcs());
  EXPECT_EQ(pass.llc_demand[0], 15 * kMiB);
  EXPECT_EQ(pass.llc_granted[0], 6 * kMiB) << "grants sum to capacity exactly";
  std::uint64_t granted = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LE(pass.vm_llc_granted[i][0], pass.vm_llc_demand[i][0]);
    EXPECT_GT(pass.vm_llc_extra_miss[i][0], 0u) << "partial residency costs";
    granted += pass.vm_llc_granted[i][0];
  }
  EXPECT_EQ(granted, 6 * kMiB);
  for (std::uint32_t l = 1; l < topo.num_llcs(); ++l)
    EXPECT_EQ(pass.llc_demand[l], 0u);
  // Under-capacity domains grant everything and charge nothing extra.
  ms::ContentionPass roomy;
  ms::compute_contention(topo, 64 * kMiB, 1'000'000'000, loads, roomy);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(roomy.vm_llc_granted[i][0], roomy.vm_llc_demand[i][0]);
    EXPECT_EQ(roomy.vm_llc_extra_miss[i][0], 0u);
  }
}

// ---------------------------------------------------------- inert gates --

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// Exact serialization of the contention-relevant slice of a RunResult
/// (hex floats, so equality is bit-equality).
std::string fingerprint(const ex::RunResult& rr) {
  std::string fp;
  append(fp, "elapsed=%a events=%" PRIu64 " migrations=%" PRIu64
             " ctx=%" PRIu64 " idle=%a\n",
         rr.elapsed_seconds, rr.events, rr.migrations, rr.context_switches,
         rr.idle_fraction);
  append(fp, "pacc=%" PRIu64 " pdeg=%" PRIu64 " peff=%" PRIu64
             " pper=%" PRIu64 " psrej=%" PRIu64 " preb=%" PRIu64 "\n",
         rr.pressure_accounted, rr.pressure_degraded, rr.pressure_effective,
         rr.pressure_periods, rr.pressure_steal_rejects,
         rr.pressure_rebalances);
  for (const ex::VmResult& v : rr.vms) {
    append(fp, "%s fin=%d rt=%a online=%a work=%" PRIu64 " pacc=%" PRIu64
               " pdeg=%" PRIu64 " peff=%" PRIu64 "\n",
           v.name.c_str(), v.finished ? 1 : 0, v.runtime_seconds,
           v.observed_online_rate, v.work_units, v.pressure_accounted,
           v.pressure_degraded, v.pressure_effective);
    for (double r : v.round_seconds) append(fp, "  round=%a\n", r);
  }
  return fp;
}

TEST(ContentionGates, FlatTopologyKeepsTheEngineInertAndBitIdentical) {
  // Footprints + capacities on a flat machine: the engine must stay off
  // (one shared domain has no contention *placement* story) and the run
  // must be bit-identical to one with no memory model declared at all.
  ex::Scenario with = ex::contention_scenario(core::SchedulerKind::kAsman, 7);
  with.machine.topology = hw::Topology{};
  with.machine.num_pcpus = 4;
  ex::Scenario without = with;
  without.machine.llc_bytes = 0;
  without.machine.socket_mem_bw_bytes_per_s = 0;
  const ex::RunResult a = ex::run_scenario(with);
  const ex::RunResult b = ex::run_scenario(without);
  EXPECT_EQ(a.pressure_periods, 0u);
  EXPECT_EQ(a.pressure_accounted, 0u);
  EXPECT_EQ(a.pressure_rebalances, 0u);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(ContentionGates, ZeroFootprintFleetKeepsThePaperTopologyBitIdentical) {
  // The paper topology with capacities declared but no footprint anywhere:
  // engine inert, and bit-identical to the established topology scenario.
  ex::Scenario with = ex::topology_scenario(core::SchedulerKind::kAsman, 7);
  with.machine.llc_bytes = ex::kContentionLlcBytes;
  with.machine.socket_mem_bw_bytes_per_s = ex::kContentionSocketBw;
  const ex::RunResult a = ex::run_scenario(with);
  const ex::RunResult b =
      ex::run_scenario(ex::topology_scenario(core::SchedulerKind::kAsman, 7));
  EXPECT_EQ(a.pressure_periods, 0u);
  EXPECT_EQ(a.pressure_accounted, 0u);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(ContentionGates, ZeroCapacityWithFootprintsIsATypedConfigError) {
  // Footprints declared but MachineConfig left llc_bytes / bandwidth at
  // zero: the engine must not silently disable — both holes are counted,
  // typed configuration errors.
  ex::Scenario sc = ex::contention_scenario(core::SchedulerKind::kAsman, 1);
  sc.machine.llc_bytes = 0;
  sc.machine.socket_mem_bw_bytes_per_s = 0;
  const ex::RunResult rr = ex::run_scenario(sc);
  EXPECT_EQ(rr.footprint_config_errors, 2u);
  EXPECT_EQ(rr.pressure_periods, 0u);
  // The typed issues themselves, straight from the validator.
  hw::MachineConfig m = sc.machine;
  const auto issues = hw::validate_footprint_config(m, true);
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_EQ(issues[0].kind, hw::ConfigError::kZeroLlcCapacity);
  EXPECT_EQ(issues[1].kind, hw::ConfigError::kZeroMemBandwidth);
  EXPECT_STREQ(hw::to_string(hw::ConfigError::kZeroLlcCapacity),
               "zero-llc-capacity");
  EXPECT_STREQ(hw::to_string(hw::ConfigError::kZeroMemBandwidth),
               "zero-mem-bandwidth");
  // A fully provisioned config raises none; so does a flat machine (one
  // domain => the whole model is out of scope by the gate).
  EXPECT_TRUE(hw::validate_footprint_config(
                  ex::contention_scenario(core::SchedulerKind::kAsman, 1)
                      .machine,
                  true)
                  .empty());
  hw::MachineConfig flat;
  flat.num_pcpus = 4;
  EXPECT_TRUE(hw::validate_footprint_config(flat, true).empty());
  EXPECT_TRUE(hw::validate_footprint_config(m, false).empty());
}

// ------------------------------------------------------------- behaviour --

TEST(ContentionRuns, EngineChargesAndThePartitionLedgerBalances) {
  // Pressure-blind on purpose: blind placement reliably stacks the
  // streamer's working set onto one LLC, so the engine always has an
  // overflow to charge for. (Aware placement can land at zero degraded
  // cycles — which is its job, and the aware-vs-blind test below's
  // concern, not this ledger test's.)
  for (const core::SchedulerKind sched : kAllScheds) {
    const ex::RunResult rr = ex::run_scenario(
        ex::contention_scenario(sched, 1, /*pressure_aware=*/false));
    EXPECT_GT(rr.pressure_periods, 0u) << core::to_string(sched);
    EXPECT_GT(rr.pressure_accounted, 0u) << core::to_string(sched);
    EXPECT_GT(rr.pressure_degraded, 0u)
        << core::to_string(sched) << ": an overflowing LLC must cost cycles";
    EXPECT_EQ(rr.pressure_accounted,
              rr.pressure_degraded + rr.pressure_effective)
        << core::to_string(sched);
    std::uint64_t acc = 0, deg = 0, eff = 0;
    for (const ex::VmResult& v : rr.vms) {
      EXPECT_EQ(v.pressure_accounted,
                v.pressure_degraded + v.pressure_effective)
          << v.name;
      acc += v.pressure_accounted;
      deg += v.pressure_degraded;
      eff += v.pressure_effective;
    }
    EXPECT_EQ(acc, rr.pressure_accounted) << core::to_string(sched);
    EXPECT_EQ(deg, rr.pressure_degraded) << core::to_string(sched);
    EXPECT_EQ(eff, rr.pressure_effective) << core::to_string(sched);
  }
}

TEST(ContentionRuns, RunsAreBitReproduciblePerSeed) {
  for (const std::uint64_t seed : {1ull, 42ull}) {
    const ex::RunResult a = ex::run_scenario(
        ex::contention_scenario(core::SchedulerKind::kAsman, seed));
    const ex::RunResult b = ex::run_scenario(
        ex::contention_scenario(core::SchedulerKind::kAsman, seed));
    EXPECT_EQ(fingerprint(a), fingerprint(b)) << "seed " << seed;
  }
  const ex::RunResult a =
      ex::run_scenario(ex::contention_scenario(core::SchedulerKind::kAsman, 1));
  const ex::RunResult b =
      ex::run_scenario(ex::contention_scenario(core::SchedulerKind::kAsman, 2));
  EXPECT_NE(fingerprint(a), fingerprint(b)) << "seeds must actually matter";
}

TEST(ContentionRuns, BalancerHysteresisBoundsRebalances) {
  // The cooldown admits at most one home swap per 4 engine periods, and
  // the band keeps borderline imbalances from swapping at all — so across
  // seeds the swap count stays far under the theoretical churn limit.
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const ex::RunResult rr = ex::run_scenario(
        ex::contention_scenario(core::SchedulerKind::kAsman, seed));
    ASSERT_GT(rr.pressure_periods, 4u);
    EXPECT_LE(rr.pressure_rebalances, rr.pressure_periods / 4 + 1)
        << "seed " << seed << ": balancer ping-pongs past its cooldown";
  }
}

TEST(ContentionRuns, PressureAwarePlacementReducesDegradedCycles) {
  // The tentpole's headline: identical contention physics, identical
  // fleet — pressure-aware placement must waste fewer cycles than blind.
  std::uint64_t aware_deg = 0, blind_deg = 0;
  std::uint64_t aware_acc = 0, blind_acc = 0;
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const ex::RunResult aware = ex::run_scenario(
        ex::contention_scenario(core::SchedulerKind::kAsman, seed, true));
    const ex::RunResult blind = ex::run_scenario(
        ex::contention_scenario(core::SchedulerKind::kAsman, seed, false));
    aware_deg += aware.pressure_degraded;
    blind_deg += blind.pressure_degraded;
    aware_acc += aware.pressure_accounted;
    blind_acc += blind.pressure_accounted;
    EXPECT_EQ(blind.pressure_rebalances, 0u)
        << "blind runs must not touch the balancer";
    EXPECT_EQ(blind.pressure_steal_rejects, 0u);
  }
  // Compare degraded *fractions* so a throughput delta cannot mask the
  // placement effect.
  EXPECT_LT(static_cast<double>(aware_deg) / static_cast<double>(aware_acc),
            static_cast<double>(blind_deg) / static_cast<double>(blind_acc));
}

// --------------------------------------------------------------- audited --

TEST(ContentionAudit, ContentionRunsAuditCleanForEveryScheduler) {
  for (const core::SchedulerKind sched : kAllScheds) {
    ex::Scenario sc = ex::contention_scenario(sched, 1);
    sc.audit = true;
    const ex::RunResult rr = ex::run_scenario(sc);
    EXPECT_EQ(rr.audit_violations, 0u)
        << core::to_string(sched) << "\n" << rr.audit_summary;
#ifdef ASMAN_AUDIT_ENABLED
    EXPECT_GT(rr.audit_checks, 0u) << core::to_string(sched);
#endif
  }
}

TEST(ContentionAudit, ChurnPlusChaosOnThePressuredHostAuditsClean) {
  // The hard lane: every fault class at once, plus hot create/destroy of
  // a footprinted tenant mid-run, on the overflowing host — conservation
  // must survive tombstones, evacuations and the balancer's swaps.
  ex::Scenario sc = ex::contention_scenario(core::SchedulerKind::kAsman, 3);
  sc.faults.seed = sc.seed ^ 0xC4A05ULL;
  ex::apply_chaos(sc, ex::ChaosClass::kEverything);
  ex::ChurnEvent create;
  create.at = seconds(0.4);
  create.kind = ex::ChurnEvent::Kind::kCreate;
  create.spec.name = "HotStream";
  create.spec.weight = 128;
  create.spec.vcpus = 2;
  create.spec.workload = [](sim::Simulator&, std::uint64_t s) {
    auto w = std::make_unique<workloads::CpuHogWorkload>(
        2, sim::kDefaultClock.from_us(200), s);
    w->set_footprint(make_footprint(6 * kMiB, 4'000'000'000ull, 300));
    return w;
  };
  sc.churn.push_back(std::move(create));
  ex::ChurnEvent destroy;
  destroy.at = seconds(1.2);
  destroy.kind = ex::ChurnEvent::Kind::kDestroy;
  destroy.target = "Stream";
  sc.churn.push_back(std::move(destroy));
  sc.audit = true;
  const ex::RunResult rr = ex::run_scenario(sc);
  EXPECT_GT(rr.vm_creates, 0u);
  EXPECT_GT(rr.vm_destroys, 0u);
  EXPECT_GT(rr.pressure_periods, 0u);
  EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
}

TEST(ContentionAudit, AdversaryWithAFootprintAuditsClean) {
  // An attacker that also hammers the memory system: the AdversaryTuning
  // footprint knob feeds the same engine, and conservation holds while
  // the attack runs on the pressured paper host.
  ex::Scenario sc = ex::adversary_scenario(
      core::SchedulerKind::kAsman, workloads::AttackKind::kTickDodge, true, 1);
  sc.machine.num_pcpus = 8;
  sc.machine.topology = hw::Topology::paper();
  sc.machine.llc_bytes = ex::kContentionLlcBytes;
  sc.machine.socket_mem_bw_bytes_per_s = ex::kContentionSocketBw;
  for (ex::VmSpec& spec : sc.vms) {
    if (spec.name != "Attacker") continue;
    workloads::AdversaryTuning tune;
    tune.slot = sc.machine.slot_cycles();
    tune.num_pcpus = sc.machine.num_pcpus;
    tune.footprint_ws_bytes = 8 * kMiB;
    tune.footprint_bw_bytes_per_s = 5'000'000'000ull;
    spec.workload = [tune](sim::Simulator& s, std::uint64_t wseed) {
      return workloads::make_adversary(workloads::AttackKind::kTickDodge, s,
                                       4, wseed, tune);
    };
  }
  sc.audit = true;
  const ex::RunResult rr = ex::run_scenario(sc);
  EXPECT_GT(rr.pressure_periods, 0u) << "the attacker's footprint must arm "
                                        "the engine";
  EXPECT_EQ(rr.audit_violations, 0u) << rr.audit_summary;
}

// The pressure-conservation seeded-violation tests (the proof that the
// auditor actually fires on corrupted ledgers and partitions) live in
// audit_test.cpp with every other invariant's seeded tests: this binary
// runs in the audited-fatal `contention` lane, where a deliberately
// planted violation would abort the process instead of being counted.

}  // namespace
}  // namespace asman

#!/usr/bin/env python3
"""Diff bench JSON emissions against committed baselines.

Every bench binary writes BENCH_<name>.json (see bench/bench_util.h): one
record per sweep point with simulated events, wall seconds, events/sec and
ns/event. This script compares a directory of fresh emissions against
bench/baselines/ and fails when a bench regresses past the threshold.

Per-label deltas are reported for every common label; the pass/fail gate
is the geometric mean of the ns/event ratios across a bench's common
labels, which damps single-point scheduler noise on shared CI runners
while still catching a real slowdown in the hot paths. Because baselines
are recorded on whatever machine last refreshed them, every per-bench
geomean is first normalized by the median label ratio across ALL compared
benches: a uniformly faster or slower runner shifts every label alike and
cancels out, while a regression localized to one bench's hot path stands
out against the fleet. (Pass --absolute to gate on raw ratios instead,
e.g. when current and baseline come from the same machine.) Labels new in
the current run (no baseline yet) are listed and skipped; labels that
disappeared fail the run — a silently dropped point is how a perf gate
rots. A whole BENCH_*.json emission with no committed baseline also fails:
a new bench must land together with its baseline or it rides unguarded.

Usage:
  tools/bench_diff.py --current build-noaudit/bench --baseline bench/baselines
  tools/bench_diff.py --current . --threshold 0.20 --only contention

Exit codes: 0 ok, 1 regression (or dropped label), 2 usage/IO error.
Stdlib only by design: the perf lane must not need a pip install.
"""

import argparse
import glob
import json
import math
import os
import sys


def load_points(path):
    """label -> record dict for one BENCH_*.json file."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return doc.get("bench", "?"), {p["label"]: p for p in doc.get("points", [])}


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def diff_bench(name, base, cur):
    """Compares one bench's point maps. Returns (ok, ratios, lines): `ok`
    covers the structural checks only (dropped labels, event drift); the
    timing verdict is taken later, once the cross-bench machine factor is
    known."""
    lines = []
    dropped = sorted(set(base) - set(cur))
    added = sorted(set(cur) - set(base))
    common = sorted(set(base) & set(cur))
    ok = True

    for label in dropped:
        lines.append(f"  FAIL {label}: present in baseline, missing from "
                     f"current run")
        ok = False
    for label in added:
        lines.append(f"  new  {label}: no baseline yet (skipped)")

    ratios = []
    for label in common:
        b, c = base[label], cur[label]
        if b.get("events") != c.get("events"):
            # Same scenario + seed must simulate the same event count; a
            # drift here is a determinism bug, not a perf delta.
            lines.append(f"  FAIL {label}: simulated events drifted "
                         f"{b.get('events')} -> {c.get('events')}")
            ok = False
            continue
        bn, cn = b.get("ns_per_event", 0), c.get("ns_per_event", 0)
        if bn <= 0 or cn <= 0:
            lines.append(f"  skip {label}: unusable timing (ns/event "
                         f"{bn} -> {cn})")
            continue
        ratio = cn / bn
        ratios.append(ratio)
        lines.append(f"  {'slow' if ratio > 1 else ' ok '} {label}: "
                     f"{bn:.1f} -> {cn:.1f} ns/event "
                     f"({(ratio - 1) * 100:+.1f}%, "
                     f"{c.get('events_per_sec', 0):,.0f} ev/s)")
    return ok, ratios, lines


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", required=True,
                    help="directory holding freshly emitted BENCH_*.json")
    ap.add_argument("--baseline", default="bench/baselines",
                    help="directory of committed baselines (default: "
                         "bench/baselines)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed geomean ns/event regression "
                         "(default: 0.15 = 15%%)")
    ap.add_argument("--only", action="append", default=[],
                    help="restrict to bench name(s), e.g. --only contention")
    ap.add_argument("--absolute", action="store_true",
                    help="gate on raw ns/event ratios (skip machine-factor "
                         "normalization; use when current and baseline come "
                         "from the same machine)")
    args = ap.parse_args()

    base_files = sorted(glob.glob(os.path.join(args.baseline, "BENCH_*.json")))
    if not base_files:
        print(f"bench_diff: no baselines under {args.baseline}",
              file=sys.stderr)
        return 2

    all_ok = True
    benches = []  # (name, ratios, lines)
    for bf in base_files:
        fname = os.path.basename(bf)
        name, base = load_points(bf)
        if args.only and name not in args.only:
            continue
        cf = os.path.join(args.current, fname)
        if not os.path.exists(cf):
            print(f"{name}: current emission {cf} missing — did the bench "
                  f"binary run?", file=sys.stderr)
            all_ok = False
            continue
        _, cur = load_points(cf)
        ok, ratios, lines = diff_bench(name, base, cur)
        benches.append((name, fname, ratios, lines))
        all_ok = all_ok and ok

    # Current emissions with NO committed baseline fail the run. Skipping
    # them would let a brand-new bench ride unguarded forever — the perf
    # gate must grow with the bench suite, so the author of a new bench
    # records its baseline in the same change.
    base_names = {os.path.basename(bf) for bf in base_files}
    for cf in sorted(glob.glob(os.path.join(args.current, "BENCH_*.json"))):
        fname = os.path.basename(cf)
        if fname in base_names:
            continue
        name, _ = load_points(cf)
        if args.only and name not in args.only:
            continue
        print(f"{name}: FAIL {fname} has no committed baseline under "
              f"{args.baseline}; record one (copy the emission there after "
              f"verifying the run) so the new bench is gated from day one",
              file=sys.stderr)
        all_ok = False

    if not benches:
        print("bench_diff: nothing compared (check --only / paths)",
              file=sys.stderr)
        return 2 if all_ok else 1

    # Machine factor: the median label ratio across every compared bench.
    # A runner uniformly 2x slower than the baseline machine moves every
    # label by 2x and cancels; a regression localized to one bench's hot
    # path does not move the median much and stands out against it.
    all_ratios = sorted(r for _, _, ratios, _ in benches for r in ratios)
    factor = 1.0
    if not args.absolute and all_ratios:
        mid = len(all_ratios) // 2
        factor = (all_ratios[mid] if len(all_ratios) % 2
                  else (all_ratios[mid - 1] + all_ratios[mid]) / 2)

    for name, fname, ratios, lines in benches:
        print(f"{name} ({fname}):")
        print("\n".join(lines))
        if ratios:
            g = geomean(ratios) / factor
            verdict = "FAIL" if g > 1 + args.threshold else "ok"
            print(f"  {verdict} {name}: normalized geomean ns/event ratio "
                  f"{g:.3f} over {len(ratios)} label(s) "
                  f"(machine factor {factor:.3f}, threshold "
                  f"{1 + args.threshold:.2f})")
            if g > 1 + args.threshold:
                all_ok = False

    print("bench_diff:", "ok" if all_ok else "REGRESSION", file=sys.stderr)
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())

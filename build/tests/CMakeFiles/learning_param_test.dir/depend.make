# Empty dependencies file for learning_param_test.
# This may be replaced when dependencies are built.

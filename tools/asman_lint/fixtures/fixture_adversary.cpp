// Seeded-violation fixture for the adversary-hardening disciplines: theft
// accounting drifting off the __int128-widened integer rules, and the
// randomized-sampling RNG being shared across pool workers. Never compiled
// into any target. Expected findings:
//   - 1x unwidened kCreditPerSlot multiply in exact_debit (the tickless
//     charge path: elapsed * kCreditPerSlot overflows int64 inside the
//     valid config space)
//   - 1x narrowing cast of a credit quantity (theft_percent)
//   - 1x rng-discipline: the sampling-offset RNG drawn inside parallel_for
//     workers (nondeterministic interleaving of the jitter stream)
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

using Credit = std::int64_t;
inline constexpr Credit kCreditPerSlot = 100'000;

struct Vcpu {
  Credit credit{0};
  std::uint64_t consumed{0};
  std::uint64_t attributed{0};
};

struct ThreadPool {
  template <class F>
  void parallel_for(std::size_t n, F fn);
};

struct Rng {
  std::uint64_t next_below(std::uint64_t bound);
};

// planted: the exact-accounting debit (elapsed cycles at ~2.3e9/s times
// kCreditPerSlot) must widen through __int128 before the divide; the
// int64 product overflows after ~40 s of consumed time.
Credit exact_debit(const Vcpu& v, std::uint64_t slot_cycles) {
  return static_cast<Credit>(v.consumed) * kCreditPerSlot /
         static_cast<Credit>(slot_cycles);
}

// planted: narrowing a credit quantity to int.
int theft_percent(const Vcpu& v, Credit fair_share) {
  return static_cast<int>(fair_share - v.credit);
}

// planted: one shared jitter stream drawn inside the workers — the whole
// point of seeded sampling offsets is that replay order is fixed, and a
// pool-interleaved draw order is not.
void jitter_samples(ThreadPool& pool, std::vector<std::uint64_t>& offsets,
                    std::uint64_t slot_cycles, Rng& offset_rng) {
  pool.parallel_for(offsets.size(), [&](std::size_t i) {
    offsets[i] = offset_rng.next_below(slot_cycles);
  });
}

}  // namespace fixture

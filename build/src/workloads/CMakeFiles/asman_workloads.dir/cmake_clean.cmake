file(REMOVE_RECURSE
  "CMakeFiles/asman_workloads.dir/kernbench.cpp.o"
  "CMakeFiles/asman_workloads.dir/kernbench.cpp.o.d"
  "CMakeFiles/asman_workloads.dir/npb.cpp.o"
  "CMakeFiles/asman_workloads.dir/npb.cpp.o.d"
  "CMakeFiles/asman_workloads.dir/phase_model.cpp.o"
  "CMakeFiles/asman_workloads.dir/phase_model.cpp.o.d"
  "CMakeFiles/asman_workloads.dir/speccpu.cpp.o"
  "CMakeFiles/asman_workloads.dir/speccpu.cpp.o.d"
  "CMakeFiles/asman_workloads.dir/specjbb.cpp.o"
  "CMakeFiles/asman_workloads.dir/specjbb.cpp.o.d"
  "CMakeFiles/asman_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/asman_workloads.dir/synthetic.cpp.o.d"
  "libasman_workloads.a"
  "libasman_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asman_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

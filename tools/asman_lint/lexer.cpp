#include "lexer.h"

#include <cctype>
#include <cstddef>
#include <fstream>
#include <sstream>

namespace asman_lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses `asman-lint: allow(check-a, check-b) -- reason` out of a comment's
/// text. Returns true and fills `out` when the pragma grammar matches.
bool parse_allow(const std::string& text, int line, AllowPragma& out) {
  const std::size_t tag = text.find("asman-lint:");
  if (tag == std::string::npos) return false;
  std::size_t i = tag + std::string("asman-lint:").size();
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
    ++i;
  if (text.compare(i, 6, "allow(") != 0) return false;
  i += 6;
  const std::size_t close = text.find(')', i);
  if (close == std::string::npos) return false;
  out.line = line;
  out.checks.clear();
  std::string name;
  for (std::size_t j = i; j <= close; ++j) {
    const char c = text[j];
    if (c == ',' || c == ')') {
      if (!name.empty()) out.checks.push_back(name);
      name.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      name.push_back(c);
    }
  }
  const std::size_t dash = text.find("--", close);
  if (dash != std::string::npos) {
    std::size_t r = dash + 2;
    while (r < text.size() && std::isspace(static_cast<unsigned char>(text[r])))
      ++r;
    std::size_t e = text.size();
    while (e > r && (std::isspace(static_cast<unsigned char>(text[e - 1])) ||
                     text[e - 1] == '/' || text[e - 1] == '*'))
      --e;
    out.reason = text.substr(r, e - r);
  } else {
    out.reason.clear();
  }
  return !out.checks.empty();
}

class Scanner {
 public:
  Scanner(const std::string& src, FileUnit& unit) : s_(src), u_(unit) {}

  void run() {
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '\n') {
        ++line_;
        ++i_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (at_line_start_ && c == '#') {
        preprocessor_line();
        continue;
      }
      at_line_start_ = false;
      if (c == 'R' && peek(1) == '"') {
        raw_string();
        continue;
      }
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        number();
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      punct();
    }
  }

 private:
  char peek(std::size_t k) const {
    return i_ + k < s_.size() ? s_[i_ + k] : '\0';
  }

  void emit(Tok kind, std::string text, int line) {
    u_.toks.push_back({kind, std::move(text), line});
  }

  void harvest_pragma(const std::string& text, int line) {
    AllowPragma p;
    if (parse_allow(text, line, p)) u_.allows.push_back(std::move(p));
  }

  void line_comment() {
    const int line = line_;
    std::size_t e = s_.find('\n', i_);
    if (e == std::string::npos) e = s_.size();
    harvest_pragma(s_.substr(i_, e - i_), line);
    i_ = e;
  }

  void block_comment() {
    const int line = line_;
    i_ += 2;
    std::string text;
    while (i_ < s_.size()) {
      if (s_[i_] == '*' && peek(1) == '/') {
        i_ += 2;
        break;
      }
      if (s_[i_] == '\n') ++line_;
      text.push_back(s_[i_]);
      ++i_;
    }
    harvest_pragma(text, line);
  }

  void preprocessor_line() {
    const int line = line_;
    std::string text;
    while (i_ < s_.size()) {
      if (s_[i_] == '\\' && peek(1) == '\n') {
        i_ += 2;
        ++line_;
        continue;
      }
      if (s_[i_] == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (s_[i_] == '\n') break;  // newline itself handled by run()
      text.push_back(s_[i_]);
      ++i_;
    }
    const std::size_t inc = text.find("include");
    if (inc != std::string::npos) {
      std::size_t a = text.find_first_of("<\"", inc);
      if (a != std::string::npos) {
        const char end = text[a] == '<' ? '>' : '"';
        const std::size_t b = text.find(end, a + 1);
        if (b != std::string::npos)
          u_.includes.push_back({line, text.substr(a + 1, b - a - 1)});
      }
    }
  }

  void raw_string() {
    const int line = line_;
    i_ += 2;  // R"
    std::string delim;
    while (i_ < s_.size() && s_[i_] != '(') delim.push_back(s_[i_++]);
    ++i_;  // (
    const std::string close = ")" + delim + "\"";
    const std::size_t e = s_.find(close, i_);
    for (std::size_t j = i_; j < (e == std::string::npos ? s_.size() : e); ++j)
      if (s_[j] == '\n') ++line_;
    i_ = e == std::string::npos ? s_.size() : e + close.size();
    emit(Tok::kString, "\"\"", line);
  }

  void string_literal() {
    const int line = line_;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\' && i_ + 1 < s_.size()) ++i_;
      if (s_[i_] == '\n') ++line_;
      ++i_;
    }
    if (i_ < s_.size()) ++i_;
    emit(Tok::kString, "\"\"", line);
  }

  void char_literal() {
    const int line = line_;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '\'') {
      if (s_[i_] == '\\' && i_ + 1 < s_.size()) ++i_;
      ++i_;
    }
    if (i_ < s_.size()) ++i_;
    emit(Tok::kChar, "''", line);
  }

  void number() {
    const int line = line_;
    std::string text;
    const bool hex = s_[i_] == '0' && (peek(1) == 'x' || peek(1) == 'X');
    bool is_float = false;
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '\'' && ident_cont(peek(1))) {  // digit separator: 100'000
        text.push_back(c);
        ++i_;
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.') {
        if (c == '.') is_float = true;
        if (!hex && (c == 'e' || c == 'E') &&
            (peek(1) == '+' || peek(1) == '-' ||
             std::isdigit(static_cast<unsigned char>(peek(1))))) {
          is_float = true;
          text.push_back(c);
          ++i_;
          if (s_[i_] == '+' || s_[i_] == '-') text.push_back(s_[i_++]);
          continue;
        }
        if (hex && (c == 'p' || c == 'P')) {
          is_float = true;
          text.push_back(c);
          ++i_;
          if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-'))
            text.push_back(s_[i_++]);
          continue;
        }
        text.push_back(c);
        ++i_;
        continue;
      }
      break;
    }
    emit(is_float ? Tok::kFloatNumber : Tok::kNumber, std::move(text), line);
  }

  void identifier() {
    const int line = line_;
    std::string text;
    while (i_ < s_.size() && ident_cont(s_[i_])) text.push_back(s_[i_++]);
    emit(Tok::kIdent, std::move(text), line);
  }

  void punct() {
    static const char* three[] = {"<<=", ">>=", "...", "->*"};
    static const char* two[] = {"::", "->", "<<", ">>", "<=", ">=", "==",
                                "!=", "&&", "||", "+=", "-=", "*=", "/=",
                                "%=", "&=", "|=", "^=", "++", "--", ".*"};
    for (const char* p : three) {
      if (s_.compare(i_, 3, p) == 0) {
        emit(Tok::kPunct, p, line_);
        i_ += 3;
        return;
      }
    }
    for (const char* p : two) {
      if (s_.compare(i_, 2, p) == 0) {
        emit(Tok::kPunct, p, line_);
        i_ += 2;
        return;
      }
    }
    emit(Tok::kPunct, std::string(1, s_[i_]), line_);
    ++i_;
  }

  const std::string& s_;
  FileUnit& u_;
  std::size_t i_{0};
  int line_{1};
  bool at_line_start_{true};
};

}  // namespace

FileUnit lex_file(std::string path, std::string display_path,
                  const std::string& source) {
  FileUnit u;
  u.path = std::move(path);
  u.display_path = std::move(display_path);
  Scanner(source, u).run();
  return u;
}

bool lex_path(const std::string& path, const std::string& display_path,
              FileUnit& out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = lex_file(path, display_path, ss.str());
  return true;
}

}  // namespace asman_lint

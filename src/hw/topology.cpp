#include "hw/topology.h"

#include "core/bounds_spec.h"
#include "hw/machine.h"

namespace asman::hw {

const char* to_string(TopoDistance d) {
  switch (d) {
    case TopoDistance::kSelf:
      return "self";
    case TopoDistance::kSameLlc:
      return "same-llc";
    case TopoDistance::kSameSocket:
      return "same-socket";
    case TopoDistance::kCrossSocket:
      return "cross-socket";
  }
  return "?";
}

const char* to_string(ConfigError e) {
  switch (e) {
    case ConfigError::kNoPcpus:
      return "no-pcpus";
    case ConfigError::kZeroFrequency:
      return "zero-frequency";
    case ConfigError::kZeroSlot:
      return "zero-slot";
    case ConfigError::kZeroAccounting:
      return "zero-accounting";
    case ConfigError::kZeroTimeslice:
      return "zero-timeslice";
    case ConfigError::kTopologyLeafMismatch:
      return "topology-leaf-mismatch";
    case ConfigError::kZeroLlcCapacity:
      return "zero-llc-capacity";
    case ConfigError::kZeroMemBandwidth:
      return "zero-mem-bandwidth";
    case ConfigError::kOutOfBounds:
      return "out-of-bounds";
  }
  return "?";
}

namespace {

/// Bounds-spec range check for one config field. Zero is exempt here: the
/// lo >= 1 fields already carry a dedicated typed zero-error above, and
/// for lo == 0 fields zero is legal ("feature off").
void check_bounds(const char* fld, std::uint64_t v,
                  std::vector<ConfigIssue>& issues) {
  const core::FieldBounds* b = core::bounds_of(fld);
  if (b == nullptr || v == 0) return;
  if (v < static_cast<std::uint64_t>(b->lo) ||
      v > static_cast<std::uint64_t>(b->hi))
    issues.push_back(
        {ConfigError::kOutOfBounds,
         std::string(fld) + " = " + std::to_string(v) +
             " is outside the bounds-spec interval [" + std::to_string(b->lo) +
             ", " + std::to_string(b->hi) +
             "] (src/core/bounds_spec.h) the value-range proof covers"});
}

}  // namespace

Topology Topology::flat(std::uint32_t num_pcpus) {
  return symmetric(1, 1, num_pcpus);
}

Topology Topology::symmetric(std::uint32_t sockets,
                             std::uint32_t llcs_per_socket,
                             std::uint32_t pcpus_per_llc) {
  Topology t;
  t.num_sockets_ = sockets;
  t.num_llcs_ = sockets * llcs_per_socket;
  const std::uint32_t n = sockets * llcs_per_socket * pcpus_per_llc;
  t.socket_.reserve(n);
  t.llc_.reserve(n);
  t.by_socket_.resize(sockets);
  for (std::uint32_t s = 0; s < sockets; ++s) {
    for (std::uint32_t l = 0; l < llcs_per_socket; ++l) {
      for (std::uint32_t c = 0; c < pcpus_per_llc; ++c) {
        const PcpuId p = static_cast<PcpuId>(t.socket_.size());
        t.socket_.push_back(s);
        t.llc_.push_back(s * llcs_per_socket + l);
        t.by_socket_[s].push_back(p);
      }
    }
  }
  return t;
}

std::vector<ConfigIssue> validate_config(const MachineConfig& m) {
  std::vector<ConfigIssue> issues;
  if (m.num_pcpus == 0)
    issues.push_back({ConfigError::kNoPcpus, "num_pcpus must be > 0"});
  if (m.freq_hz == 0)
    issues.push_back({ConfigError::kZeroFrequency, "freq_hz must be > 0"});
  if (m.slot_ms == 0)
    issues.push_back({ConfigError::kZeroSlot, "slot_ms must be > 0"});
  if (m.slots_per_accounting == 0)
    issues.push_back(
        {ConfigError::kZeroAccounting, "slots_per_accounting must be > 0"});
  if (m.slots_per_timeslice == 0)
    issues.push_back(
        {ConfigError::kZeroTimeslice, "slots_per_timeslice must be > 0"});
  if (m.topology.specified() && m.topology.num_pcpus() != m.num_pcpus)
    issues.push_back({ConfigError::kTopologyLeafMismatch,
                      "topology describes " +
                          std::to_string(m.topology.num_pcpus()) +
                          " PCPUs but num_pcpus is " +
                          std::to_string(m.num_pcpus)});
  check_bounds(core::field::num_pcpus, m.num_pcpus, issues);
  check_bounds(core::field::freq_hz, m.freq_hz, issues);
  check_bounds(core::field::slot_ms, m.slot_ms, issues);
  check_bounds(core::field::slots_per_accounting, m.slots_per_accounting,
               issues);
  check_bounds(core::field::slots_per_timeslice, m.slots_per_timeslice,
               issues);
  check_bounds(core::field::ipi_latency_us, m.ipi_latency_us, issues);
  check_bounds(core::field::cross_llc_penalty_us, m.cross_llc_penalty_us,
               issues);
  check_bounds(core::field::cross_socket_penalty_us, m.cross_socket_penalty_us,
               issues);
  check_bounds(core::field::warm_cache_slots, m.warm_cache_slots, issues);
  check_bounds(core::field::llc_bytes, m.llc_bytes, issues);
  check_bounds(core::field::socket_mem_bw_bytes_per_s,
               m.socket_mem_bw_bytes_per_s, issues);
  return issues;
}

std::vector<ConfigIssue> validate_footprint_config(const MachineConfig& m,
                                                   bool footprint_declared) {
  std::vector<ConfigIssue> issues;
  if (!footprint_declared) return issues;
  if (m.resolved_topology().is_flat()) return issues;  // engine inert by contract
  if (m.llc_bytes == 0)
    issues.push_back(
        {ConfigError::kZeroLlcCapacity,
         "a workload declares a nonzero memory footprint but llc_bytes is 0; "
         "the contention engine would be silently disabled"});
  if (m.socket_mem_bw_bytes_per_s == 0)
    issues.push_back(
        {ConfigError::kZeroMemBandwidth,
         "a workload declares a nonzero memory footprint but "
         "socket_mem_bw_bytes_per_s is 0; bandwidth pressure would be "
         "silently unmodeled"});
  return issues;
}

}  // namespace asman::hw

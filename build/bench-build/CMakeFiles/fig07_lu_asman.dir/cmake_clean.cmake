file(REMOVE_RECURSE
  "../bench/fig07_lu_asman"
  "../bench/fig07_lu_asman.pdb"
  "CMakeFiles/fig07_lu_asman.dir/fig07_lu_asman.cpp.o"
  "CMakeFiles/fig07_lu_asman.dir/fig07_lu_asman.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_lu_asman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

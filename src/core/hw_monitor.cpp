#include "core/hw_monitor.h"

namespace asman::core {

HwAdaptiveScheduler::HwAdaptiveScheduler(sim::Simulator& simulation,
                                         const hw::MachineConfig& machine,
                                         vmm::SchedMode mode,
                                         sim::Trace* trace, std::uint64_t seed,
                                         HwMonitorOptions options)
    : Hypervisor(simulation, machine, mode, trace, seed), opt_(options) {}

void HwAdaptiveScheduler::vcpu_yield_hint(vmm::VmId vm_id, std::uint32_t vidx) {
  // Base first: the hypervisor's per-VM yield meter backs the VCRD
  // plausibility clamp, and both consumers must see the same hint stream.
  Hypervisor::vcpu_yield_hint(vm_id, vidx);
  ++total_hints_;
  if (window_yields_.size() < num_vms()) {
    window_yields_.resize(num_vms(), 0);
    quiet_windows_.resize(num_vms(), 0);
  }
  ++window_yields_[vm_id];
  if (!eval_armed_) {
    eval_armed_ = true;
    sim_.after(opt_.window, [this] { evaluate(); });
  }
}

void HwAdaptiveScheduler::evaluate() {
  ++evaluations_;
  const double window_ms =
      static_cast<double>(opt_.window.v) /
      (static_cast<double>(machine().freq_hz) / 1e3);
  for (vmm::VmId id = 0; id < window_yields_.size(); ++id) {
    const double rate =
        static_cast<double>(window_yields_[id]) / window_ms;
    window_yields_[id] = 0;
    const bool high = vm(id).vcrd == vmm::Vcrd::kHigh;
    if (!high && rate >= opt_.high_yields_per_ms) {
      quiet_windows_[id] = 0;
      do_vcrd_op(id, vmm::Vcrd::kHigh);
    } else if (high) {
      if (rate <= opt_.low_yields_per_ms) {
        if (++quiet_windows_[id] >= opt_.low_windows_to_drop) {
          quiet_windows_[id] = 0;
          do_vcrd_op(id, vmm::Vcrd::kLow);
        }
      } else {
        quiet_windows_[id] = 0;
      }
    }
  }
  bool any_high = false;
  for (vmm::VmId id = 0; id < num_vms(); ++id)
    if (vm(id).vcrd == vmm::Vcrd::kHigh) any_high = true;
  // Keep evaluating while anything is HIGH (the drop side needs windows
  // even when the guest stops yielding); otherwise re-arm lazily on the
  // next yield hint.
  if (any_high) {
    sim_.after(opt_.window, [this] { evaluate(); });
  } else {
    eval_armed_ = false;
  }
}

void HwAdaptiveScheduler::on_vcrd_changed(vmm::Vm& v, vmm::Vcrd previous) {
  if (previous == vmm::Vcrd::kLow && v.vcrd == vmm::Vcrd::kHigh)
    relocate_vm(v);
}

void HwAdaptiveScheduler::on_accounting(vmm::Vm& v) {
  if (v.vcrd == vmm::Vcrd::kHigh) relocate_vm(v);
}

}  // namespace asman::core

#include "bench_util.h"

namespace asman::bench {

int run_bench_main(int argc, char** argv, Sweep& sweep,
                   const std::string& prefix, const Annotator& annotate,
                   const std::function<void(const Sweep&)>& print_tables) {
  benchmark::Initialize(&argc, argv);
  sweep.execute();
  sweep.register_benchmarks(prefix, annotate);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables(sweep);
  return 0;
}

}  // namespace asman::bench

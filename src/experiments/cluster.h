// Cluster-level experiment surface: declarative fleet scenarios (hosts,
// VM fleet, scripted admissions/retirements/migrations, host faults) and
// a runner that builds a cluster::Cluster, drives it to the horizon and
// collects a flat counter record.
//
// Everything is seeded and bit-reproducible: the churn schedule is drawn
// up front from its own SplitMix64 stream, migration targets resolve
// through the deterministic fleet placer, and ClusterRunResult carries a
// fingerprint (a fold over every counter) that same-seed runs must
// reproduce exactly — the reproducibility tests and the soak harness
// compare fingerprints, not logs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "experiments/scenario.h"

namespace asman::experiments {

struct ClusterChurnEvent {
  enum class Kind : std::uint8_t {
    kAdmit,    // fleet-level admission of `spec`
    kRetire,   // destroy `target` cluster-wide
    kMigrate,  // live-migrate `target` to the least-loaded other host
  };
  Cycles at{0};
  Kind kind{Kind::kAdmit};
  cluster::ClusterVmSpec spec{};  // kAdmit
  std::string target;             // kRetire / kMigrate (VM name)
};

struct ClusterScenario {
  std::string name{"cluster"};
  std::uint32_t hosts{4};
  hw::MachineConfig machine{};
  core::SchedulerKind scheduler{core::SchedulerKind::kAsman};
  vmm::SchedMode mode{vmm::SchedMode::kNonWorkConserving};
  vmm::ResilienceConfig resilience{};
  vmm::AdmissionConfig admission{};
  cluster::RecoveryConfig recovery{};
  cluster::MigrationModel model{};
  /// Boot-time fleet, admitted before start().
  std::vector<cluster::ClusterVmSpec> vms;
  /// Scripted runtime events; targets resolve by name at fire time (a
  /// vanished target is a silent no-op, like single-host churn).
  std::vector<ClusterChurnEvent> churn;
  /// Host-fault schedule (kHostCrash / kHostDegraded /
  /// kMigrationLinkLoss specs; VCPU-level entries are ignored here).
  faults::FaultPlan faults;
  bool audit{false};
  std::uint32_t audit_stride{1};
  std::uint64_t seed{1};
  Cycles horizon{sim::kDefaultClock.from_seconds_f(2.0)};
};

struct ClusterRunResult {
  std::uint64_t events{0};
  double elapsed_seconds{0};
  std::uint64_t migrations_started{0};
  std::uint64_t migrations_committed{0};
  std::uint64_t migrations_aborted{0};
  std::uint64_t migrations_retried{0};
  std::uint64_t precopy_rounds{0};
  std::uint64_t link_failures{0};
  std::uint64_t phase_timeouts{0};
  std::uint64_t tombstoned_copies{0};
  std::uint64_t host_crashes{0};
  std::uint64_t degraded_windows{0};
  /// Crashed hosts' resident VMs re-admitted on survivors (vs. lost for
  /// want of admission headroom).
  std::uint64_t vms_replaced{0};
  std::uint64_t vms_lost{0};
  std::uint64_t admission_rejects{0};
  std::uint64_t heartbeats{0};
  std::uint64_t phase_transitions{0};
  /// VMs still resident at the horizon.
  std::uint64_t vms_resident{0};
  long long residual_credit{0};
  long long crash_credit_delta{0};
  std::uint64_t audit_checks{0};
  std::uint64_t audit_violations{0};
  std::string audit_summary;
  /// Order-sensitive fold over every counter above: two same-seed runs
  /// must produce identical fingerprints (bit-reproducibility probe).
  std::uint64_t fingerprint{0};
};

ClusterRunResult run_cluster_scenario(const ClusterScenario& sc);

/// Canned 4-host demo fleet: a dozen mixed tenants, a few scripted
/// migrations and one mid-run host crash.
ClusterScenario cluster_scenario(
    core::SchedulerKind sched = core::SchedulerKind::kAsman,
    std::uint64_t seed = 1);

/// The acceptance workload: `hosts` hosts and `n_vms` tenants under a
/// seeded storm of admissions, retirements and migrations, with host
/// crashes landing mid-migration, a degraded window and a link-loss
/// window. The soak harness and bench sweep this shape.
ClusterScenario cluster_chaos_scenario(core::SchedulerKind sched,
                                       std::uint32_t hosts,
                                       std::uint32_t n_vms,
                                       std::uint64_t seed = 1);

}  // namespace asman::experiments

# Empty compiler generated dependencies file for schedule_timeline.
# This may be replaced when dependencies are built.

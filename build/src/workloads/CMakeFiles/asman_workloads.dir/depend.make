# Empty dependencies file for asman_workloads.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for cosched_test.
# This may be replaced when dependencies are built.

// state-machine: static verification of state-machine transitions against
// their shared specs — the same tables the runtimes compile against, so
// there is exactly one definition of legality per machine. Two machines
// are covered: VcpuState (src/vmm/state_spec.h, written via set_state)
// and the cluster live-migration FSM's MigrationPhase
// (src/cluster/migration_spec.h, written via Cluster::set_phase). The
// walker is parameterized over the machine's surface syntax, so adding a
// machine is a MachineSyntax entry plus its spec loader.
//
// A scoped symbolic walker tracks, per local variable, what the code has
// PROVEN about its state: an assert(x.state == VcpuState::kS), a positive
// if-guard, a negative guard whose branch only returns, a single-label
// `case VcpuState::kS:` section of a switch on x.state, or a previous
// set_state(x, kS). Knowledge is invalidated when the variable is
// reassigned, member-written, or passed to a call outside the audited seam
// (assert / the setter / the machine's whitelisted helpers), and at branch
// merges every variable the branch mentioned is forgotten. At each
// set_state(x, kTo) whose `from` is determinable, the (from, to) pair is
// checked against the spec; an illegal pair is reported with the evidence
// trace.
//
// The walker does not model aliasing (a member call could mutate a tracked
// variable through another reference); this under-invalidation is accepted
// because the audited seam is the only writer of VcpuState, so any such
// mutation is itself a set_state the walker sees — or an audit-seam
// violation reported by that check.
#include <map>
#include <string>
#include <vector>

#include "analyzer.h"
#include "flow.h"

namespace asman_lint {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == Tok::kPunct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == Tok::kIdent && t.text == s;
}

/// The lexical surface of one audited state machine: the enum that names
/// its states, the member that stores them, the setter seam that writes
/// them, the callees that may see a tracked variable without invalidating
/// knowledge about it, and where the shared legality table lives (for the
/// finding message).
struct MachineSyntax {
  const char* enum_name;
  const char* member;
  const char* setter;
  std::vector<std::string> whitelist;  // includes the setter and "assert"
  const char* table_ident;
  const char* spec_path;
};

const MachineSyntax& vcpu_syntax() {
  static const MachineSyntax s{"VcpuState",
                               "state",
                               "set_state",
                               {"assert", "set_state", "enqueue", "dequeue"},
                               "kLegalVcpuTransitions",
                               "src/vmm/state_spec.h"};
  return s;
}

const MachineSyntax& migration_syntax() {
  static const MachineSyntax s{"MigrationPhase",
                               "phase",
                               "set_phase",
                               {"assert", "set_phase"},
                               "kLegalMigrationTransitions",
                               "src/cluster/migration_spec.h"};
  return s;
}

struct Fact {
  std::string state;
  int line{0};
  std::string note;
};
using Know = std::map<std::string, Fact>;

class StateWalker {
 public:
  StateWalker(const AnalysisContext& ctx, const TransitionSpec& spec,
              const MachineSyntax& syn)
      : ctx_(ctx), spec_(spec), syn_(syn), t_(ctx.unit.toks) {}

  void run() {
    if (!spec_.error.empty()) return;  // reported once by the driver
    for (const FunctionSpan& fn : ctx_.functions.spans()) {
      Know know;
      walk_seq(fn.begin + 1, fn.end > 0 ? fn.end - 1 : fn.end, know);
    }
  }

 private:
  std::size_t stmt_end(std::size_t i, std::size_t end) const {
    int depth = 0;
    for (std::size_t j = i; j < end; ++j) {
      if (t_[j].kind != Tok::kPunct) continue;
      const std::string& x = t_[j].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      else if (x == ")" || x == "]" || x == "}") --depth;
      else if (x == ";" && depth <= 0) return j + 1;
    }
    return end;
  }

  /// Erases every knowledge entry whose variable is mentioned as an
  /// identifier anywhere in [b, e) — the merge rule for branches/loops.
  void erase_mentioned(std::size_t b, std::size_t e, Know& k) const {
    for (auto it = k.begin(); it != k.end();) {
      bool seen = false;
      for (std::size_t j = b; j < e && j < t_.size(); ++j) {
        if (t_[j].kind == Tok::kIdent && t_[j].text == it->first) {
          seen = true;
          break;
        }
      }
      it = seen ? k.erase(it) : ++it;
    }
  }

  bool whitelisted_callee(const std::string& name) const {
    for (const std::string& w : syn_.whitelist)
      if (name == w) return true;
    return false;
  }

  /// `X (.|->) <member> == <Enum> :: kS` starting the comparison at `j`
  /// (j = index of the X ident). Fills var/state on match.
  bool match_state_cmp(std::size_t j, std::size_t end, const char* op,
                       std::string& var, std::string& state) const {
    if (j + 6 >= end) return false;
    if (t_[j].kind != Tok::kIdent) return false;
    if (!(is_punct(t_[j + 1], ".") || is_punct(t_[j + 1], "->"))) return false;
    if (!is_ident(t_[j + 2], syn_.member)) return false;
    if (!is_punct(t_[j + 3], op)) return false;
    if (!is_ident(t_[j + 4], syn_.enum_name)) return false;
    if (!is_punct(t_[j + 5], "::")) return false;
    if (t_[j + 6].kind != Tok::kIdent) return false;
    var = t_[j].text;
    state = t_[j + 6].text;
    return true;
  }

  void walk_seq(std::size_t i, std::size_t end, Know& k) {
    while (i < end) i = walk_stmt(i, end, k);
  }

  std::size_t walk_stmt(std::size_t i, std::size_t end, Know& k) {
    const Token& tok = t_[i];
    if (is_punct(tok, ";")) return i + 1;
    if (is_punct(tok, "{")) {
      const std::size_t m = match_forward(t_, i);
      if (m >= t_.size()) return end;
      Know inner = k;
      walk_seq(i + 1, m, inner);
      k = std::move(inner);  // a bare block does not branch
      return m + 1;
    }
    if (is_ident(tok, "if")) return walk_if(i, end, k);
    if (is_ident(tok, "while") || is_ident(tok, "for"))
      return walk_loop(i, end, k);
    if (is_ident(tok, "do")) return walk_do(i, end, k);
    if (is_ident(tok, "switch")) return walk_switch(i, end, k);
    if (is_ident(tok, "else") || is_ident(tok, "try") ||
        is_ident(tok, "catch"))
      return i + 1;  // structure handled by the callers / conservatively

    const std::size_t se = stmt_end(i, end);
    walk_plain(i, se, k);
    return se;
  }

  /// One plain statement: check set_state calls against pre-statement
  /// knowledge, then apply invalidations, then apply new facts.
  void walk_plain(std::size_t b, std::size_t e, Know& k) {
    struct Update {
      std::string var;
      Fact fact;
    };
    std::vector<Update> updates;

    for (std::size_t j = b; j + 1 < e && j + 1 < t_.size(); ++j) {
      if (t_[j].kind != Tok::kIdent || !is_punct(t_[j + 1], "(")) continue;
      const std::string& callee = t_[j].text;
      const std::size_t close = match_forward(t_, j + 1);

      if (callee == syn_.setter) {
        // First argument: [*&]* ident ,   — anything else is an
        // indeterminable target.
        std::size_t a = j + 2;
        while (a < close &&
               (is_punct(t_[a], "*") || is_punct(t_[a], "&")))
          ++a;
        if (a + 1 < close && t_[a].kind == Tok::kIdent &&
            is_punct(t_[a + 1], ",")) {
          const std::string var = t_[a].text;
          std::string to;
          for (std::size_t m = a + 2; m + 2 < close + 1 && m + 2 < t_.size();
               ++m) {
            if (is_ident(t_[m], syn_.enum_name) && is_punct(t_[m + 1], "::") &&
                t_[m + 2].kind == Tok::kIdent) {
              to = t_[m + 2].text;
              break;
            }
          }
          if (!to.empty()) {
            auto it = k.find(var);
            if (it != k.end() && !spec_.allows(it->second.state, to)) {
              Finding f;
              f.file = ctx_.unit.display_path;
              f.line = t_[j].line;
              f.check = "state-machine";
              f.message = std::string("illegal ") + syn_.enum_name +
                          " transition " + it->second.state + " -> " + to +
                          " (not in " + syn_.table_ident + ", " +
                          syn_.spec_path + ")";
              f.trace.push_back({it->second.line, it->second.note});
              f.trace.push_back(
                  {t_[j].line, std::string(syn_.setter) + "(" + var + ", " +
                                   syn_.enum_name + "::" + to + ") with " +
                                   var + "." + syn_.member + " == " +
                                   it->second.state});
              ctx_.report(std::move(f));
            }
            updates.push_back(
                {var, Fact{to, t_[j].line,
                           std::string(syn_.setter) + " left " + var + "." +
                               syn_.member + " == " + to}});
          }
        }
        j = close;
        continue;
      }

      if (!whitelisted_callee(callee)) {
        // A tracked variable escaping into an unaudited call may come back
        // in any state.
        for (std::size_t m = j + 2; m < close && m < t_.size(); ++m)
          if (t_[m].kind == Tok::kIdent) k.erase(t_[m].text);
        j = close;
      }
    }

    // Direct reassignment / member write of a tracked variable.
    for (std::size_t j = b; j < e && j < t_.size(); ++j) {
      if (t_[j].kind != Tok::kIdent || !k.count(t_[j].text)) continue;
      if (j > 0 && (is_punct(t_[j - 1], ".") || is_punct(t_[j - 1], "->")))
        continue;  // member named like the variable, not the variable
      if (j + 1 < e && t_[j + 1].kind == Tok::kPunct) {
        const std::string& nx = t_[j + 1].text;
        if (nx == "=" || nx == "+=" || nx == "-=") {
          k.erase(t_[j].text);
          continue;
        }
        if ((nx == "." || nx == "->") && j + 3 < e &&
            t_[j + 2].kind == Tok::kIdent && t_[j + 3].kind == Tok::kPunct &&
            (t_[j + 3].text == "=" || t_[j + 3].text == "+=" ||
             t_[j + 3].text == "-="))
          k.erase(t_[j].text);
      }
    }

    for (Update& u : updates) k[u.var] = std::move(u.fact);

    // assert(x.<member> == <Enum>::kS) establishes a fact.
    if (is_ident(t_[b], "assert") && b + 1 < e && is_punct(t_[b + 1], "(")) {
      std::string var, state;
      if (match_state_cmp(b + 2, e, "==", var, state))
        k[var] = Fact{state, t_[b].line,
                      "assert established " + var + "." + syn_.member +
                          " == " + state};
    }
  }

  std::size_t walk_if(std::size_t i, std::size_t end, Know& k) {
    if (i + 1 >= end || !is_punct(t_[i + 1], "(")) return i + 1;
    const std::size_t close = match_forward(t_, i + 1);
    if (close >= t_.size()) return end;

    bool has_or = false, has_not = false;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (is_punct(t_[j], "||")) has_or = true;
      if (is_punct(t_[j], "!")) has_not = true;
    }
    std::vector<std::pair<std::string, Fact>> pos, neg;
    if (!has_or && !has_not) {
      for (std::size_t j = i + 2; j < close; ++j) {
        std::string var, state;
        if (match_state_cmp(j, close, "==", var, state))
          pos.emplace_back(var,
                           Fact{state, t_[j].line,
                                "guard established " + var + "." +
                                    syn_.member + " == " + state});
        if (match_state_cmp(j, close, "!=", var, state))
          neg.emplace_back(var,
                           Fact{state, t_[j].line,
                                "guard `" + var + "." + syn_.member + " != " +
                                    state + "` returns, so " + var + "." +
                                    syn_.member + " == " + state +
                                    " after it"});
      }
    }

    Know then_k = k;
    for (auto& [var, fact] : pos) then_k[var] = fact;
    const std::size_t then_begin = close + 1;
    const std::size_t then_end = walk_stmt(then_begin, end, then_k);

    std::size_t next = then_end;
    std::size_t else_end = then_end;
    if (next < end && is_ident(t_[next], "else")) {
      Know else_k = k;
      else_end = walk_stmt(next + 1, end, else_k);
      next = else_end;
    }

    // Merge: forget everything the statement mentioned...
    erase_mentioned(i, next, k);
    // ...then re-establish the negative-guard facts if the guarded branch
    // cannot fall through (return/throw-terminated, no further branching).
    if (!neg.empty() && else_end == then_end &&
        branch_terminates(then_begin, then_end)) {
      for (auto& [var, fact] : neg) k[var] = fact;
    }
    return next;
  }

  bool branch_terminates(std::size_t b, std::size_t e) const {
    std::size_t begin = b, fin = e;
    if (begin < t_.size() && is_punct(t_[begin], "{")) {
      ++begin;
      if (fin > begin) --fin;  // matching '}'
    }
    bool has_exit = false;
    for (std::size_t j = begin; j < fin && j < t_.size(); ++j) {
      if (is_ident(t_[j], "if") || is_ident(t_[j], "while") ||
          is_ident(t_[j], "for") || is_ident(t_[j], "switch"))
        return false;  // conditional structure: might fall through
      if (is_ident(t_[j], "return") || is_ident(t_[j], "throw"))
        has_exit = true;
    }
    if (!has_exit) return false;
    // The final statement must be the return/throw.
    std::size_t last_semi = t_.size();
    for (std::size_t j = begin; j < fin; ++j)
      if (is_punct(t_[j], ";")) last_semi = j;
    if (last_semi >= t_.size()) return false;
    // Walk back to that statement's start.
    std::size_t s = begin;
    for (std::size_t j = begin; j < last_semi; ++j)
      if (is_punct(t_[j], ";")) s = j + 1;
    return s < t_.size() &&
           (is_ident(t_[s], "return") || is_ident(t_[s], "throw"));
  }

  std::size_t walk_loop(std::size_t i, std::size_t end, Know& k) {
    if (i + 1 >= end || !is_punct(t_[i + 1], "(")) return i + 1;
    const std::size_t close = match_forward(t_, i + 1);
    if (close >= t_.size()) return end;
    // The back edge may invalidate anything the body touches, so the body
    // starts from knowledge scrubbed of everything the loop mentions.
    const std::size_t body_begin = close + 1;
    Know body_k = k;
    // Pre-scan the body extent with a throwaway walk to learn its end.
    const std::size_t body_end = skip_stmt(body_begin, end);
    erase_mentioned(i, body_end, body_k);
    walk_stmt(body_begin, end, body_k);
    erase_mentioned(i, body_end, k);
    return body_end;
  }

  std::size_t walk_do(std::size_t i, std::size_t end, Know& k) {
    const std::size_t body_begin = i + 1;
    const std::size_t body_end = skip_stmt(body_begin, end);
    Know body_k = k;
    erase_mentioned(i, body_end, body_k);
    walk_stmt(body_begin, end, body_k);
    std::size_t next = body_end;
    if (next < end && is_ident(t_[next], "while") && next + 1 < end &&
        is_punct(t_[next + 1], "("))
      next = stmt_end(next, end);
    erase_mentioned(i, next, k);
    return next;
  }

  std::size_t walk_switch(std::size_t i, std::size_t end, Know& k) {
    if (i + 1 >= end || !is_punct(t_[i + 1], "(")) return i + 1;
    const std::size_t close = match_forward(t_, i + 1);
    if (close >= t_.size() || close + 1 >= end ||
        !is_punct(t_[close + 1], "{"))
      return close + 1;
    const std::size_t body_open = close + 1;
    const std::size_t body_close = match_forward(t_, body_open);
    if (body_close >= t_.size()) return end;

    // switch (X.<member>) makes each single-label section a known-state
    // scope.
    std::string subject;
    {
      std::string var, state;
      if (i + 4 < close && t_[i + 2].kind == Tok::kIdent &&
          (is_punct(t_[i + 3], ".") || is_punct(t_[i + 3], "->")) &&
          is_ident(t_[i + 4], syn_.member) && i + 5 == close)
        subject = t_[i + 2].text;
      (void)var;
      (void)state;
    }

    std::size_t j = body_open + 1;
    while (j < body_close) {
      if (!(is_ident(t_[j], "case") || is_ident(t_[j], "default"))) {
        ++j;
        continue;
      }
      int labels = 0;
      std::string label_state;
      int label_line = t_[j].line;
      while (j < body_close &&
             (is_ident(t_[j], "case") || is_ident(t_[j], "default"))) {
        ++labels;
        std::size_t m = j + 1;
        while (m < body_close && !is_punct(t_[m], ":")) {
          if (is_ident(t_[m], syn_.enum_name) && m + 2 < body_close &&
              is_punct(t_[m + 1], "::") && t_[m + 2].kind == Tok::kIdent)
            label_state = t_[m + 2].text;
          ++m;
        }
        j = m < body_close ? m + 1 : body_close;
      }
      std::size_t sec_end = j;
      int depth = 0;
      while (sec_end < body_close) {
        const Token& c = t_[sec_end];
        if (c.kind == Tok::kPunct) {
          const std::string& x = c.text;
          if (x == "(" || x == "[" || x == "{") ++depth;
          else if (x == ")" || x == "]" || x == "}") --depth;
        }
        if (depth == 0 && sec_end != j &&
            (is_ident(c, "case") || is_ident(c, "default")))
          break;
        ++sec_end;
      }
      Know sec_k = k;
      sec_k.erase(subject);
      if (!subject.empty() && labels == 1 && !label_state.empty())
        sec_k[subject] =
            Fact{label_state, label_line,
                 "case label established " + subject + "." + syn_.member +
                     " == " + label_state};
      walk_seq(j, sec_end, sec_k);
      j = sec_end;
    }

    erase_mentioned(i, body_close + 1, k);
    return body_close + 1;
  }

  /// End index of the statement starting at `i` without analyzing it.
  std::size_t skip_stmt(std::size_t i, std::size_t end) const {
    if (i >= end) return end;
    if (is_punct(t_[i], "{")) {
      const std::size_t m = match_forward(t_, i);
      return m >= t_.size() ? end : m + 1;
    }
    if (is_ident(t_[i], "if") || is_ident(t_[i], "while") ||
        is_ident(t_[i], "for") || is_ident(t_[i], "switch")) {
      std::size_t j = i + 1;
      if (j < end && is_punct(t_[j], "(")) {
        const std::size_t close = match_forward(t_, j);
        if (close >= t_.size()) return end;
        if (is_ident(t_[i], "switch")) {
          if (close + 1 < end && is_punct(t_[close + 1], "{")) {
            const std::size_t bc = match_forward(t_, close + 1);
            return bc >= t_.size() ? end : bc + 1;
          }
          return close + 1;
        }
        std::size_t after = skip_stmt(close + 1, end);
        if (is_ident(t_[i], "if") && after < end &&
            is_ident(t_[after], "else"))
          after = skip_stmt(after + 1, end);
        return after;
      }
      return i + 1;
    }
    if (is_ident(t_[i], "do")) {
      std::size_t after = skip_stmt(i + 1, end);
      if (after < end && is_ident(t_[after], "while"))
        after = stmt_end(after, end);
      return after;
    }
    return stmt_end(i, end);
  }

  const AnalysisContext& ctx_;
  const TransitionSpec& spec_;
  const MachineSyntax& syn_;
  const std::vector<Token>& t_;
};

}  // namespace

void check_state_machine(const AnalysisContext& ctx) {
  StateWalker(ctx, vcpu_transition_spec(ctx.options), vcpu_syntax()).run();
  StateWalker(ctx, migration_transition_spec(ctx.options), migration_syntax())
      .run();
}

}  // namespace asman_lint

file(REMOVE_RECURSE
  "libasman_guest.a"
)

// Cloud consolidation scenario (the paper's §5.3 motif): several tenants
// share one host in work-conserving mode — two batch tenants running
// SPEC-CPU-style throughput jobs next to two tenants running parallel
// (OpenMP-style) codes. Compares the three schedulers and shows the
// trade-off ASMan resolves: gang-scheduling rescues the parallel tenants
// without statically taxing the batch tenants.
//
//   $ ./cloud_consolidation [rounds]
#include <cstdio>
#include <cstdlib>

#include "experiments/paper.h"
#include "experiments/tables.h"
#include "workloads/npb.h"

using namespace asman;
namespace ex = asman::experiments;

int main(int argc, char** argv) {
  const std::uint64_t rounds =
      argc > 1 ? static_cast<std::uint64_t>(std::atoi(argv[1])) : 4;

  const std::vector<std::pair<std::string, ex::WorkloadFactory>> tenants{
      {"batch:bzip2", ex::bzip2_factory(rounds * 4)},
      {"batch:gcc", ex::gcc_factory(rounds * 4)},
      {"parallel:SP",
       ex::npb_factory(workloads::NpbBenchmark::kSP, 4, rounds * 4)},
      {"parallel:LU",
       ex::npb_factory(workloads::NpbBenchmark::kLU, 4, rounds * 4)},
  };
  const std::vector<bool> concurrent{false, false, true, true};

  std::printf("4 tenants x 4 VCPUs on 8 PCPUs, work-conserving, "
              "mean of first %llu rounds\n\n",
              static_cast<unsigned long long>(rounds));

  ex::TextTable table({"tenant", "Credit (s)", "ASMan (s)", "CON (s)"});
  std::vector<std::vector<double>> cells(tenants.size());
  for (core::SchedulerKind k :
       {core::SchedulerKind::kCredit, core::SchedulerKind::kAsman,
        core::SchedulerKind::kCon}) {
    auto vms = tenants;
    ex::Scenario sc = ex::multi_vm_scenario(k, std::move(vms), concurrent,
                                            rounds);
    const ex::RunResult r = ex::run_scenario(sc);
    for (std::size_t i = 0; i < tenants.size(); ++i)
      cells[i].push_back(r.vms[i + 1].mean_round_seconds(rounds));
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    table.add_row({tenants[i].first, ex::fmt_f(cells[i][0]),
                   ex::fmt_f(cells[i][1]), ex::fmt_f(cells[i][2])});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: the parallel tenants should speed up under ASMan/CON; the\n"
      "batch tenants lose least under ASMan, which only coschedules while\n"
      "a tenant's VCRD is HIGH.\n");
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/asman_guest.dir/guest_kernel.cpp.o"
  "CMakeFiles/asman_guest.dir/guest_kernel.cpp.o.d"
  "libasman_guest.a"
  "libasman_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asman_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/asman_core.dir/hw_monitor.cpp.o"
  "CMakeFiles/asman_core.dir/hw_monitor.cpp.o.d"
  "CMakeFiles/asman_core.dir/learning.cpp.o"
  "CMakeFiles/asman_core.dir/learning.cpp.o.d"
  "CMakeFiles/asman_core.dir/monitor.cpp.o"
  "CMakeFiles/asman_core.dir/monitor.cpp.o.d"
  "CMakeFiles/asman_core.dir/schedulers.cpp.o"
  "CMakeFiles/asman_core.dir/schedulers.cpp.o.d"
  "libasman_core.a"
  "libasman_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asman_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Degradation-overhead bench: what does surviving faults cost?
//
// For each scheduler the sweep runs the chaos workload fault-free (the
// baseline) and once per fault class, and the table reports gang progress
// (spinlock acquisitions — one per lock-hammer iteration) retained under
// fault relative to the baseline, next to the degradation counters that
// explain where the loss went (retries, watchdog fires, demotions,
// evacuations). The fault-free row doubles as a regression guard: its
// counters must all be zero, i.e. the resilience machinery is
// pay-for-what-you-break.
#include "bench_util.h"
#include "experiments/chaos.h"

using namespace asman;
using namespace asman::bench;

namespace {

constexpr core::SchedulerKind kScheds[] = {core::SchedulerKind::kCredit,
                                           core::SchedulerKind::kCon,
                                           core::SchedulerKind::kAsman};

std::string chaos_label(core::SchedulerKind k, const char* cls) {
  return std::string(core::to_string(k)) + "/" + cls;
}

Sweep build_sweep() {
  Sweep s;
  for (core::SchedulerKind k : kScheds) {
    ex::Scenario base = ex::chaos_scenario(k, ex::ChaosClass::kEverything, 42);
    base.faults = faults::FaultPlan{};  // same workload, zero faults
    base.resilience = vmm::ResilienceConfig{};
    s.add(chaos_label(k, "baseline"), std::move(base));
    for (const ex::ChaosClass c : ex::all_chaos_classes())
      s.add(chaos_label(k, ex::to_string(c)), ex::chaos_scenario(k, c, 42));
  }
  return s;
}

void annotate(const PointResult& pr, benchmark::State& st) {
  const ex::RunResult& rr = pr.run;
  st.counters["gang_work"] =
      static_cast<double>(rr.vm("Gang").stats.spin_acquisitions);
  st.counters["ipi_retries"] = static_cast<double>(rr.ipi_retries);
  st.counters["gang_ipi_aborts"] = static_cast<double>(rr.gang_ipi_aborts);
  st.counters["watchdog_fires"] =
      static_cast<double>(rr.gang_watchdog_fires);
  st.counters["demotions"] = static_cast<double>(rr.vcrd_demotions);
  st.counters["evacuated"] = static_cast<double>(rr.evacuated_vcpus);
}

void print_tables(const Sweep& s) {
  for (core::SchedulerKind k : kScheds) {
    const ex::RunResult& base =
        s.get(chaos_label(k, "baseline")).run;
    const double base_work =
        static_cast<double>(base.vm("Gang").stats.spin_acquisitions);
    std::printf("\n== Degradation overhead under %s (gang throughput "
                "retained vs fault-free) ==\n",
                core::to_string(k));
    ex::TextTable t({"fault class", "gang work", "retained", "retries",
                     "aborts", "wdog", "demote", "evac"});
    t.add_row({"(none)",
               std::to_string(base.vm("Gang").stats.spin_acquisitions),
               "100.0%", std::to_string(base.ipi_retries),
               std::to_string(base.gang_ipi_aborts),
               std::to_string(base.gang_watchdog_fires),
               std::to_string(base.vcrd_demotions),
               std::to_string(base.evacuated_vcpus)});
    for (const ex::ChaosClass c : ex::all_chaos_classes()) {
      const ex::RunResult& rr = s.get(chaos_label(k, ex::to_string(c))).run;
      const auto acq = rr.vm("Gang").stats.spin_acquisitions;
      const double work = static_cast<double>(acq);
      t.add_row({ex::to_string(c), std::to_string(acq),
                 base_work > 0 ? ex::fmt_pct(work / base_work)
                               : std::string("-"),
                 std::to_string(rr.ipi_retries),
                 std::to_string(rr.gang_ipi_aborts),
                 std::to_string(rr.gang_watchdog_fires),
                 std::to_string(rr.vcrd_demotions),
                 std::to_string(rr.evacuated_vcpus)});
    }
    std::printf("%s", t.str().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep = build_sweep();
  return run_bench_main(argc, argv, sweep, "faults", annotate, print_tables);
}

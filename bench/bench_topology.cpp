// Topology bench: what does socket-aware placement save on the paper's
// dual-socket host?
//
// For each scheduler the sweep runs the consolidated fleet on the 2x2x2
// paper topology twice — topology-aware and topology-blind — and repeats
// the pair under socket-offline chaos (all of socket 1 hotplugged away
// mid-run). Both variants pay the same warm-cache migration cost model,
// so the table's cross-socket and penalty columns isolate what placement
// alone buys; gang progress shows the fairness side of the trade. Run
// with ASMAN_AUDIT=1 to get credit conservation and the
// topology-placement invariant checked on every point.
#include "bench_util.h"
#include "experiments/chaos.h"
#include "experiments/topology.h"

using namespace asman;
using namespace asman::bench;

namespace {

constexpr core::SchedulerKind kScheds[] = {core::SchedulerKind::kCredit,
                                           core::SchedulerKind::kCon,
                                           core::SchedulerKind::kAsman};

constexpr std::uint64_t kSeed = 42;

std::string topo_label(core::SchedulerKind k, bool aware, bool chaos) {
  return std::string(core::to_string(k)) + "/" +
         (aware ? "aware" : "blind") + (chaos ? "+socket-offline" : "");
}

ex::Scenario build_point(core::SchedulerKind k, bool aware, bool chaos) {
  ex::Scenario sc = ex::topology_scenario(k, kSeed, aware);
  if (chaos) {
    sc.faults.seed = kSeed ^ 0xC4A05ULL;
    ex::apply_chaos(sc, ex::ChaosClass::kSocketOffline);
  }
  return sc;
}

Sweep build_sweep() {
  Sweep s;
  for (core::SchedulerKind k : kScheds)
    for (const bool chaos : {false, true})
      for (const bool aware : {true, false})
        s.add(topo_label(k, aware, chaos), build_point(k, aware, chaos));
  return s;
}

void annotate(const PointResult& pr, benchmark::State& st) {
  const ex::RunResult& rr = pr.run;
  st.counters["gang_work"] =
      static_cast<double>(rr.vm("Gang").stats.spin_acquisitions);
  st.counters["migrations"] = static_cast<double>(rr.migrations);
  st.counters["cross_llc"] = static_cast<double>(rr.cross_llc_migrations);
  st.counters["cross_socket"] =
      static_cast<double>(rr.cross_socket_migrations);
  st.counters["penalty_cycles"] =
      static_cast<double>(rr.migration_penalty_cycles);
  st.counters["steal_rejects"] =
      static_cast<double>(rr.topology_steal_rejects);
}

void add_row(ex::TextTable& t, const char* label, const ex::RunResult& rr) {
  t.add_row({label, std::to_string(rr.vm("Gang").stats.spin_acquisitions),
             std::to_string(rr.migrations),
             std::to_string(rr.cross_llc_migrations),
             std::to_string(rr.cross_socket_migrations),
             std::to_string(rr.migration_penalty_cycles),
             std::to_string(rr.topology_steal_rejects)});
}

void print_tables(const Sweep& s) {
  for (core::SchedulerKind k : kScheds) {
    std::printf("\n== Placement on 2 sockets x 2 LLCs x 2 PCPUs under %s "
                "(aware vs blind, equal cost model) ==\n",
                core::to_string(k));
    ex::TextTable t({"scenario", "gang work", "migrations", "cross-LLC",
                     "cross-socket", "penalty (cyc)", "steal rejects"});
    add_row(t, "aware", s.get(topo_label(k, true, false)).run);
    add_row(t, "blind", s.get(topo_label(k, false, false)).run);
    add_row(t, "aware+socket-offline", s.get(topo_label(k, true, true)).run);
    add_row(t, "blind+socket-offline", s.get(topo_label(k, false, true)).run);
    std::printf("%s", t.str().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep = build_sweep();
  return run_bench_main(argc, argv, sweep, "topology", annotate,
                        print_tables);
}

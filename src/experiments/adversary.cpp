#include "experiments/adversary.h"

#include <memory>
#include <string>
#include <utility>

#include "workloads/npb.h"
#include "workloads/synthetic.h"

namespace asman::experiments {

namespace {

Cycles ms(std::uint64_t n) { return sim::kDefaultClock.from_ms(n); }
Cycles us(std::uint64_t n) { return sim::kDefaultClock.from_us(n); }

}  // namespace

void apply_hardening(Scenario& sc) {
  sc.resilience.accounting = vmm::AccountingMode::kExact;
  sc.resilience.boost_limit = 32;
  sc.resilience.vcrd_min_yields = 8;
}

void apply_mitigated_sampling(Scenario& sc) {
  sc.resilience.accounting = vmm::AccountingMode::kTickSampled;
  sc.resilience.sample_offset_jitter = true;
}

Scenario adversary_scenario(core::SchedulerKind sched,
                            workloads::AttackKind attack, bool hardened,
                            std::uint64_t seed) {
  Scenario sc;
  sc.machine.num_pcpus = 4;
  sc.scheduler = sched;
  sc.seed = seed;
  sc.horizon = ms(2'000);
  // Capped mode: every VM's fair share is exactly its weight fraction, so
  // "the attacker exceeded its share" is a crisp predicate.
  sc.mode = vmm::SchedMode::kNonWorkConserving;
  // The faithful-vulnerable baseline under attack: per-tick sampled
  // accounting, no limiter, no plausibility check.
  sc.resilience.accounting = vmm::AccountingMode::kTickSampled;

  VmSpec dom0;
  dom0.name = "Dom0";
  dom0.weight = 256;
  dom0.vcpus = 1;
  sc.vms.push_back(std::move(dom0));

  // The honest gang candidate (chaos-base slot 1, so apply_chaos targets
  // it). NPB/LU is barrier-structured: its spin-waits emit the yield-hint
  // stream that lets a *hardened* hypervisor tell its VCRD HIGH apart
  // from the liar's. Enough rounds to outlast the horizon.
  VmSpec gang;
  gang.name = "Gang";
  gang.weight = 256;
  gang.vcpus = 4;
  gang.type = vmm::VmType::kConcurrent;
  gang.workload = [](sim::Simulator& s, std::uint64_t wseed) {
    return workloads::make_npb(s, workloads::NpbBenchmark::kLU, wseed, 4, 50);
  };
  sc.vms.push_back(std::move(gang));

  // The victim: a plain CPU-bound tenant whose online rate is what the
  // attacker's theft depresses.
  VmSpec victim;
  victim.name = "Victim";
  victim.weight = 256;
  victim.vcpus = 2;
  victim.workload = [](sim::Simulator&, std::uint64_t wseed) {
    return std::make_unique<workloads::CpuHogWorkload>(2, us(200), wseed);
  };
  sc.vms.push_back(std::move(victim));

  VmSpec attacker;
  attacker.name = "Attacker";
  attacker.weight = 256;
  attacker.vcpus = 4;
  workloads::AdversaryTuning tune;
  tune.slot = sc.machine.slot_cycles();
  tune.num_pcpus = sc.machine.num_pcpus;
  attacker.workload = [attack, tune](sim::Simulator& s, std::uint64_t wseed) {
    return workloads::make_adversary(attack, s, 4, wseed, tune);
  };
  // A real attacker runs a quiet, tickless-style guest: stock 4 ms timer
  // ticks would wake its VCPUs right into the sampling instants it is
  // trying to dodge.
  attacker.guest.tick_period = ms(50);
  // No Monitoring Module: the liar self-reports through the hypercall
  // port, and an honest monitor would overwrite the lie with LOW.
  attacker.monitor = false;
  sc.vms.push_back(std::move(attacker));

  if (hardened) apply_hardening(sc);
  return sc;
}

Scenario adversary_churn_chaos_scenario(core::SchedulerKind sched,
                                        workloads::AttackKind attack,
                                        ChaosClass c, std::uint64_t seed) {
  // Soak lanes run the *hardened* host: the claim under test is that the
  // defense stack survives attack + faults + lifecycle churn with zero
  // audit violations, not that the vulnerable baseline does.
  Scenario sc = adversary_scenario(sched, attack, /*hardened=*/true, seed);
  apply_chaos(sc, c);
  sc.faults.seed = seed ^ 0xADE5A21ULL;

  // A small scripted lifecycle storm mid-attack: a tenant arrives, the
  // victim is resized down and back, the arrival departs.
  ChurnEvent arrive;
  arrive.at = ms(300);
  arrive.kind = ChurnEvent::Kind::kCreate;
  arrive.spec.name = "HotHog";
  arrive.spec.weight = 64;
  arrive.spec.vcpus = 1;
  arrive.spec.workload = [](sim::Simulator&, std::uint64_t wseed) {
    return std::make_unique<workloads::CpuHogWorkload>(1, us(200), wseed);
  };
  sc.churn.push_back(std::move(arrive));

  ChurnEvent shrink;
  shrink.at = ms(700);
  shrink.kind = ChurnEvent::Kind::kResize;
  shrink.target = "Victim";
  shrink.new_vcpus = 1;
  sc.churn.push_back(std::move(shrink));

  ChurnEvent depart;
  depart.at = ms(1'200);
  depart.kind = ChurnEvent::Kind::kDestroy;
  depart.target = "HotHog";
  sc.churn.push_back(std::move(depart));

  ChurnEvent regrow;
  regrow.at = ms(1'500);
  regrow.kind = ChurnEvent::Kind::kResize;
  regrow.target = "Victim";
  regrow.new_vcpus = 2;
  sc.churn.push_back(std::move(regrow));
  return sc;
}

const std::vector<workloads::AttackKind>& all_attack_kinds() {
  static const std::vector<workloads::AttackKind> kinds(
      workloads::kAllAttacks.begin(), workloads::kAllAttacks.end());
  return kinds;
}

}  // namespace asman::experiments

#include "core/monitor.h"

namespace asman::core {

MonitoringModule::MonitoringModule(sim::Simulator& simulation,
                                   vmm::HypervisorPort& hypervisor,
                                   vmm::VmId vm_id, const MonitorConfig& cfg)
    : sim_(simulation),
      hv_(hypervisor),
      vm_(vm_id),
      cfg_(cfg),
      learner_(cfg.learning) {}

void MonitoringModule::on_spin_acquired(Cycles waited) {
  // Acquisition-time bookkeeping is already collected by the guest kernel;
  // the adjusting trigger uses the in-spin crossing callback instead so the
  // reaction does not wait for the (possibly very long) acquisition.
  (void)waited;
}

void MonitoringModule::on_over_threshold() {
  ++over_events_;
  if (high_) {
    // Algorithm 1 line 12-14: the locality outlived the estimate; when the
    // current window expires the next adjusting event fires immediately.
    saw_over_in_window_ = true;
    return;
  }
  begin_window();
}

void MonitoringModule::begin_window() {
  ++adjusting_events_;
  const Cycles x = cfg_.fixed_window.v != 0
                       ? cfg_.fixed_window
                       : learner_.on_adjusting_event(sim_.now());
  saw_over_in_window_ = false;
  if (!high_) {
    high_ = true;
    hv_.do_vcrd_op(vm_, vmm::Vcrd::kHigh);  // extensions stay HIGH silently
  }
  const std::uint64_t token = ++window_token_;
  sim_.after(x, [this, token] { window_expired(token); });
}

void MonitoringModule::window_expired(std::uint64_t token) {
  if (token != window_token_ || !high_) return;
  if (saw_over_in_window_) {
    // Over-threshold spinlocks occurred during the window: stay HIGH and
    // re-estimate (the next adjusting event).
    ++extended_windows_;
    begin_window();
    return;
  }
  ++quiet_windows_;
  high_ = false;
  hv_.do_vcrd_op(vm_, vmm::Vcrd::kLow);
}

}  // namespace asman::core

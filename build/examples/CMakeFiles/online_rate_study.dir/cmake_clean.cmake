file(REMOVE_RECURSE
  "CMakeFiles/online_rate_study.dir/online_rate_study.cpp.o"
  "CMakeFiles/online_rate_study.dir/online_rate_study.cpp.o.d"
  "online_rate_study"
  "online_rate_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_rate_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

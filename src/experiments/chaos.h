// Chaos scenarios: canned fault-injection runs for tests and demos.
//
// Each ChaosClass exercises one fault family from the fault model
// (docs/MODEL.md "Fault model & graceful degradation"); kEverything turns
// all of them on at once. The base scenario is a small consolidated host —
// an idle Domain-0, a 4-VCPU synchronization-heavy VM (the gang candidate)
// and a CPU-hog background tenant — sized so a full audited run finishes
// in well under a second of wall time.
#pragma once

#include <cstdint>
#include <vector>

#include "experiments/scenario.h"

namespace asman::experiments {

enum class ChaosClass : std::uint8_t {
  kIpiLoss,      // hw: drop/duplicate/delay coscheduling IPIs
  kTickJitter,   // hw: per-PCPU slot-tick jitter
  kHotplug,      // hw: PCPU offline/online with evacuation
  kVcrdSilence,  // guest: Monitoring Module goes silent (staleness TTL)
  kVcrdFlap,     // guest: rapid LOW<->HIGH flapping (rate-limiter)
  kVcrdCorrupt,  // guest: corrupt do_vcrd_op arguments (rejected)
  kVcpuHang,       // vmm: VCPU runs but never yields
  kVcpuCrash,      // vmm: VCPU permanently blocked
  kSocketOffline,  // hw: whole-socket hotplug on the paper's 2x4 topology
  kEverything,     // all of the above in one run (except kSocketOffline,
                   // which overrides the machine config)
};

const char* to_string(ChaosClass c);
const std::vector<ChaosClass>& all_chaos_classes();

/// The fault-free consolidated-host base every chaos (and churn) scenario
/// shares: an idle Dom0, the 4-VCPU gang candidate as VM 1, and background
/// hogs. `n_vms` as in chaos_scenario.
Scenario chaos_base_scenario(core::SchedulerKind sched, std::uint64_t seed = 1,
                             std::uint32_t n_vms = 3);

/// Overlay the fault plan (and any resilience knobs) of one chaos class
/// onto an existing scenario whose VM layout matches the chaos base (VM 1
/// is the gang candidate). Leaves sc.faults.seed alone — the caller owns
/// the seeding. This is how churn scenarios compose with chaos.
void apply_chaos(Scenario& sc, ChaosClass c);

/// Build the chaos scenario for one scheduler and fault class. The seed
/// feeds both the workload and the injector streams, so the same
/// (scheduler, class, seed) triple reproduces bit-identically. `n_vms`
/// sizes the fleet (minimum 3: Dom0, the gang candidate, and a hog; every
/// extra VM is a 1-VCPU background hog).
Scenario chaos_scenario(core::SchedulerKind sched, ChaosClass c,
                        std::uint64_t seed = 1, std::uint32_t n_vms = 3);

}  // namespace asman::experiments

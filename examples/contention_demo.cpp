// Contention demo: pressure-aware placement vs the pressure-blind
// baseline on a memory-constrained host.
//
// Runs the memory-hungry fleet twice on the paper's dual-socket host with
// finite LLC capacity (6 MiB per domain) and socket memory bandwidth
// (8 GB/s) under ASMan — once pressure-aware, once blind. Both runs pay
// the same contention physics (the engine prices occupancy overflow and
// bandwidth pressure identically); only placement, steal gating and the
// pressure balancer differ, so the degraded-cycle columns isolate what
// awareness alone buys. Compose a chaos class on top with --class.
//
// Shares its CLI shape with chaos_demo, churn_demo and topology_demo:
//
//   $ ./contention_demo [--class=NAME] [--vms=N] [--seed=N] [--list]
#include <cstdio>

#include "demo_cli.h"
#include "experiments/contention.h"
#include "experiments/tables.h"

using namespace asman;

int main(int argc, char** argv) {
  namespace ex = asman::experiments;

  const std::string usage = examples::demo_usage(
      "contention_demo", "compose a fault class on top (default: none)",
      "total VMs on the host, N >= 4 (default: 6)");
  examples::DemoOptions opt;
  if (!examples::parse_demo_args(argc, argv, opt, usage.c_str())) return 2;
  if (opt.list) {
    examples::print_chaos_classes();
    return 0;
  }
  bool have_chaos = false;
  ex::ChaosClass cls = ex::ChaosClass::kEverything;
  if (!opt.chaos.empty()) {
    if (!examples::lookup_chaos_class(opt.chaos, cls)) {
      std::fprintf(stderr, "unknown chaos class '%s'\n", opt.chaos.c_str());
      examples::print_chaos_classes();
      return 2;
    }
    have_chaos = true;
  }
  const std::uint32_t n_vms = opt.vms == 0 ? 6 : opt.vms;

  const auto run = [&](bool aware) {
    ex::Scenario sc = ex::contention_scenario(core::SchedulerKind::kAsman,
                                              opt.seed, aware, n_vms);
    if (have_chaos) {
      sc.faults.seed = opt.seed ^ 0xC4A05ULL;
      ex::apply_chaos(sc, cls);
    }
    sc.audit = true;  // pressure-conservation checked on every period
    return ex::run_scenario(sc);
  };
  const ex::RunResult aware = run(true);
  const ex::RunResult blind = run(false);

  std::printf("contention run: ASMan on 2 sockets x 2 LLCs x 2 PCPUs, "
              "6 MiB LLCs, 8 GB/s sockets, %s, %u VMs, seed %llu\n\n",
              have_chaos ? ex::to_string(cls) : "fault-free", n_vms,
              static_cast<unsigned long long>(opt.seed));

  const auto frac = [](const ex::RunResult& r) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.5f",
                  r.pressure_accounted > 0
                      ? static_cast<double>(r.pressure_degraded) /
                            static_cast<double>(r.pressure_accounted)
                      : 0.0);
    return std::string(buf);
  };
  ex::TextTable costs({"memory pressure", "aware", "blind"});
  costs.add_row({"accounted cycles", std::to_string(aware.pressure_accounted),
                 std::to_string(blind.pressure_accounted)});
  costs.add_row({"degraded cycles", std::to_string(aware.pressure_degraded),
                 std::to_string(blind.pressure_degraded)});
  costs.add_row({"degraded fraction", frac(aware), frac(blind)});
  costs.add_row({"engine periods", std::to_string(aware.pressure_periods),
                 std::to_string(blind.pressure_periods)});
  costs.add_row({"steals refused (pressure)",
                 std::to_string(aware.pressure_steal_rejects),
                 std::to_string(blind.pressure_steal_rejects)});
  costs.add_row({"balancer swaps", std::to_string(aware.pressure_rebalances),
                 std::to_string(blind.pressure_rebalances)});
  std::printf("%s\n", costs.str().c_str());

  ex::TextTable vms({"VM", "online rate", "accounted", "degraded"});
  for (const ex::VmResult& v : aware.vms)
    vms.add_row({v.name, ex::fmt_pct(v.observed_online_rate),
                 std::to_string(v.pressure_accounted),
                 std::to_string(v.pressure_degraded)});
  std::printf("aware run, per VM:\n%s\n", vms.str().c_str());

  if (aware.audit_checks > 0)
    std::printf("auditor (aware run): %llu checks, %llu violation(s)\n%s",
                static_cast<unsigned long long>(aware.audit_checks),
                static_cast<unsigned long long>(aware.audit_violations),
                aware.audit_violations > 0 ? aware.audit_summary.c_str() : "");

  std::printf(
      "\nBoth runs pay the same contention physics; only placement\n"
      "differs. The aware run spreads working sets across LLC domains at\n"
      "boot, refuses steals that deepen an overflow, and swaps the\n"
      "heaviest tenant off a saturated socket (with hysteresis), so its\n"
      "degraded-cycle column should undercut the blind baseline's.\n");
  return 0;
}

// General-purpose scenario runner: compose the paper's building blocks
// from the command line without writing code.
//
//   asman_cli [--sched credit|asman|asman-hw|con]
//             [--weight N]            V1's weight (dom0 fixed at 256)
//             [--bench BT|CG|EP|FT|MG|SP|LU|jbb|gcc|bzip2|kernbench|sempp]
//             [--warehouses N]        for --bench jbb
//             [--seed N] [--horizon SECONDS]
//             [--relaxed]             VMware-style relaxed gangs
//             [--delta N]             over-threshold exponent (default 20)
//             [--samples]             keep raw spinlock wait samples
//
// Prints a one-screen report: run time, online rate, spinlock wait
// histogram, VCRD activity and scheduler counters.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "experiments/paper.h"
#include "experiments/tables.h"
#include "workloads/kernbench.h"
#include "workloads/npb.h"
#include "workloads/synthetic.h"

using namespace asman;
namespace ex = asman::experiments;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sched credit|asman|asman-hw|con] [--weight N]\n"
               "          [--bench BT|CG|EP|FT|MG|SP|LU|jbb|gcc|bzip2|kernbench|sempp] [--warehouses N]\n"
               "          [--seed N] [--horizon S] [--relaxed] [--delta N] "
               "[--samples]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  core::SchedulerKind sched = core::SchedulerKind::kAsman;
  std::uint32_t weight = 32;
  std::string bench = "LU";
  std::uint32_t warehouses = 4;
  std::uint64_t seed = 1;
  double horizon = 180.0;
  bool relaxed = false;
  unsigned delta = 20;
  bool samples = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--sched") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      if (!std::strcmp(v, "credit")) sched = core::SchedulerKind::kCredit;
      else if (!std::strcmp(v, "asman")) sched = core::SchedulerKind::kAsman;
      else if (!std::strcmp(v, "asman-hw"))
        sched = core::SchedulerKind::kAsmanHw;
      else if (!std::strcmp(v, "con")) sched = core::SchedulerKind::kCon;
      else return usage(argv[0]);
    } else if (a == "--weight") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      weight = static_cast<std::uint32_t>(std::atoi(v));
    } else if (a == "--bench") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      bench = v;
    } else if (a == "--warehouses") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      warehouses = static_cast<std::uint32_t>(std::atoi(v));
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--horizon") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      horizon = std::atof(v);
    } else if (a == "--relaxed") {
      relaxed = true;
    } else if (a == "--delta") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      delta = static_cast<unsigned>(std::atoi(v));
    } else if (a == "--samples") {
      samples = true;
    } else {
      return usage(argv[0]);
    }
  }

  ex::WorkloadFactory wl;
  if (bench == "jbb") {
    wl = ex::specjbb_factory(warehouses);
  } else if (bench == "gcc") {
    wl = ex::gcc_factory();
  } else if (bench == "bzip2") {
    wl = ex::bzip2_factory();
  } else if (bench == "kernbench") {
    wl = [](sim::Simulator& s2, std::uint64_t sd) {
      return std::make_unique<workloads::KernbenchWorkload>(
          s2, workloads::KernbenchParams{}, sd);
    };
  } else if (bench == "sempp") {
    wl = [](sim::Simulator&, std::uint64_t s) {
      return std::make_unique<workloads::SemaphorePingPongWorkload>(
          2, 4000, sim::kDefaultClock.from_us(300), s);
    };
  } else {
    wl = ex::npb_factory(workloads::npb_from_name(bench));
  }

  ex::Scenario sc = ex::single_vm_scenario(sched, weight, std::move(wl), seed);
  sc.horizon = sim::kDefaultClock.from_seconds_f(horizon);
  sc.keep_wait_samples = samples;
  sc.monitor.delta_exp = delta;
  if (relaxed) sc.strictness = vmm::Hypervisor::Strictness::kRelaxed;

  const ex::RunResult r = ex::run_scenario(sc);
  const ex::VmResult& v1 = r.vm("V1");

  std::printf("%s | %s | weight %u (nominal rate %s) | seed %llu%s\n\n",
              core::to_string(sched), bench.c_str(), weight,
              ex::fmt_pct(8.0 * (static_cast<double>(weight) /
                                 (256.0 + weight)) /
                          4.0)
                  .c_str(),
              static_cast<unsigned long long>(seed),
              relaxed ? " | relaxed gangs" : "");
  ex::TextTable t({"metric", "value"});
  t.add_row({"run time (s)", ex::fmt_f(v1.runtime_seconds)});
  t.add_row({"finished", v1.finished ? "yes" : "no (horizon)"});
  t.add_row({"observed online rate", ex::fmt_pct(v1.observed_online_rate)});
  t.add_row({"work units", std::to_string(v1.work_units)});
  t.add_row({"spin waits > 2^10",
             std::to_string(v1.stats.spin_waits.count_above(10))});
  t.add_row({"spin waits > 2^20",
             std::to_string(v1.stats.spin_waits.count_above(20))});
  t.add_row({"max spin wait (log2)",
             std::to_string(sim::log2_floor(v1.stats.spin_waits.max_value()))});
  t.add_row({"max sem wait (log2)",
             std::to_string(sim::log2_floor(v1.stats.sem_waits.max_value()))});
  t.add_row({"VCRD windows", std::to_string(v1.vcrd_transitions)});
  t.add_row({"VCRD HIGH time", ex::fmt_pct(v1.vcrd_high_fraction)});
  t.add_row({"adjusting events", std::to_string(v1.adjusting_events)});
  t.add_row({"cosched launches", std::to_string(r.cosched_events)});
  t.add_row({"IPIs", std::to_string(r.ipi_sent)});
  t.add_row({"VCPU migrations", std::to_string(r.migrations)});
  t.add_row({"simulated events", std::to_string(r.events)});
  std::printf("%s", t.str().c_str());
  if (samples) {
    std::printf("\nspinlock wait histogram (log2 cycles):\n%s",
                v1.stats.spin_waits.render(10, 28).c_str());
  }
  return 0;
}

// Phase-structured parallel program model.
//
// Models the execution skeleton shared by the NAS Parallel Benchmarks:
// each of T threads alternates a jittered compute phase with a
// synchronization operation, for a fixed number of steps, optionally
// repeated in rounds. Two synchronization topologies are modelled:
//
//   * kBarrierAll      — all threads meet at a global OpenMP barrier
//                        (BT/CG/EP/FT/MG/SP reductions and sweeps);
//   * kNeighborChain   — pairwise pipeline synchronization between
//                        neighbouring threads plus a periodic global
//                        barrier (LU's wavefront sweeps — the finest
//                        granularity in the suite).
//
// What matters for the paper's results is the *synchronization rate and
// granularity*, not the solver arithmetic, so benchmarks are characterized
// by (steps, compute mean, imbalance cv, topology); see npb.h for the
// calibrated per-benchmark table.
#pragma once

#include <memory>

#include "simcore/rng.h"
#include "simcore/simulator.h"
#include "workloads/workload.h"

namespace asman::workloads {

struct PhaseParams {
  std::uint32_t threads{4};
  /// Synchronization steps per round.
  std::uint64_t steps{1000};
  /// Mean compute between consecutive syncs, and its coefficient of
  /// variation (load imbalance drives threads into the futex slow path).
  Cycles compute_mean{sim::kDefaultClock.from_us(1000)};
  double compute_cv{0.15};

  enum class Sync : std::uint8_t { kBarrierAll, kNeighborChain, kNone };
  Sync sync{Sync::kBarrierAll};
  /// With kNeighborChain, a global barrier is inserted every this many
  /// steps (an LU time-step boundary).
  std::uint64_t global_barrier_every{50};
  /// Neighbour sync uses flush/flag busy-waiting (NPB-OMP pipelines spin in
  /// user space and never block in the kernel).
  bool neighbor_pure_spin{true};
  /// Global barriers busy-wait too. gcc-4.x-era libgomp defaulted to
  /// OMP_WAIT_POLICY=active (spin, never sleep), which is the behaviour the
  /// paper's testbed ran; passive (spin-then-futex) is what a JVM-style
  /// runtime does.
  bool global_pure_spin{false};

  /// Rounds to repeat (>=1). Round boundaries always end with a global
  /// barrier; the completion time of each round is recorded.
  std::uint64_t rounds{1};

  /// Memory footprint for the contention engine (zero by default; the
  /// NPB table in npb.cpp fills in calibrated per-benchmark values).
  hw::memsys::MemFootprint footprint{};
};

class PhaseWorkload final : public Workload {
 public:
  PhaseWorkload(sim::Simulator& simulation, std::string workload_name,
                PhaseParams params, std::uint64_t seed);
  ~PhaseWorkload() override;

  void deploy(guest::GuestKernel& g) override;
  std::string name() const override { return name_; }
  std::uint64_t rounds_completed() const override;
  std::vector<Cycles> round_times() const override;
  hw::memsys::MemFootprint footprint() const override {
    return params_.footprint;
  }
  const PhaseParams& params() const { return params_; }

  struct Shared;  // implementation detail shared by the thread programs

 private:
  sim::Simulator& sim_;
  std::string name_;
  PhaseParams params_;
  std::uint64_t seed_;
  std::unique_ptr<Shared> shared_;
};

}  // namespace asman::workloads

# Empty dependencies file for online_rate_study.
# This may be replaced when dependencies are built.

// Figure 7: LU run time under Credit vs ASMan across VCPU online rates.
//
// Expected shape: identical at 100 %; as the online rate drops, Credit
// degrades super-linearly (lock-holder preemption + busy-wait convoys)
// while ASMan detects over-threshold spinlocks, coschedules the VCPUs and
// stays close to the 1/rate ideal.
#include "bench_util.h"

using namespace asman;
using namespace asman::bench;

namespace {

constexpr core::SchedulerKind kScheds[] = {core::SchedulerKind::kCredit,
                                           core::SchedulerKind::kAsman};

Sweep build_sweep() {
  Sweep s;
  for (core::SchedulerKind k : kScheds) {
    for (const ex::RatePoint& rp : ex::kRatePoints) {
      s.add(rate_label(k, rp.rate),
            ex::single_vm_scenario(
                k, rp.weight, ex::npb_factory(workloads::NpbBenchmark::kLU)));
    }
  }
  return s;
}

void annotate(const PointResult& pr, benchmark::State& st) {
  const ex::VmResult& v1 = pr.run.vm("V1");
  st.counters["runtime_s"] = v1.runtime_seconds;
  st.counters["vcrd_windows"] = static_cast<double>(v1.vcrd_transitions);
  st.counters["vcrd_high_frac"] = v1.vcrd_high_fraction;
  st.counters["cosched_events"] =
      static_cast<double>(pr.run.cosched_events);
}

void print_tables(const Sweep& s) {
  std::printf("\n== Figure 7: LU run time (s), Credit vs ASMan ==\n");
  ex::TextTable t({"online rate", "Credit", "ASMan", "saving",
                   "ASMan VCRD-HIGH", "ideal (1/rate)"});
  double base = 0.0;
  for (const ex::RatePoint& rp : ex::kRatePoints) {
    const ex::VmResult& c =
        s.get(rate_label(core::SchedulerKind::kCredit, rp.rate)).run.vm("V1");
    const ex::VmResult& a =
        s.get(rate_label(core::SchedulerKind::kAsman, rp.rate)).run.vm("V1");
    if (rp.rate == 1.0) base = c.runtime_seconds;
    t.add_row({ex::fmt_pct(rp.rate), ex::fmt_f(c.runtime_seconds),
               ex::fmt_f(a.runtime_seconds),
               ex::fmt_pct(1.0 - a.runtime_seconds / c.runtime_seconds),
               ex::fmt_pct(a.vcrd_high_fraction),
               ex::fmt_f(base / rp.rate)});
  }
  std::printf("%s", t.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep = build_sweep();
  return run_bench_main(argc, argv, sweep, "fig07", annotate, print_tables);
}

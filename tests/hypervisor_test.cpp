#include "vmm/hypervisor.h"

#include <gtest/gtest.h>

#include "core/schedulers.h"
#include "guest/guest_kernel.h"
#include "simcore/simulator.h"

namespace asman::vmm {
namespace {

hw::MachineConfig small_machine(std::uint32_t pcpus) {
  hw::MachineConfig m;
  m.num_pcpus = pcpus;
  return m;
}

Cycles seconds(double s) { return sim::kDefaultClock.from_seconds_f(s); }

/// Records online/offline callbacks; threads never block (CPU hog VM).
class RecordingGuest final : public GuestPort {
 public:
  explicit RecordingGuest(std::uint32_t n) : online_(n, false) {}
  void vcpu_online(std::uint32_t v) override {
    online_[v] = true;
    ++transitions_;
  }
  void vcpu_offline(std::uint32_t v) override {
    online_[v] = false;
    ++transitions_;
  }
  bool online(std::uint32_t v) const { return online_[v]; }
  std::uint64_t transitions() const { return transitions_; }

 private:
  std::vector<bool> online_;
  std::uint64_t transitions_{0};
};

TEST(Equations, WeightProportionAndOnlineRate) {
  // Paper §5.2: dom0 (8 VCPUs, weight 256, idle) + V1 (4 VCPUs).
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(8), SchedMode::kNonWorkConserving);
  hv.create_vm("V0", 256, 8);
  const VmId v1 = hv.create_vm("V1", 128, 4);
  EXPECT_NEAR(hv.weight_proportion(0), 256.0 / 384.0, 1e-12);
  EXPECT_NEAR(hv.weight_proportion(v1), 128.0 / 384.0, 1e-12);
  EXPECT_NEAR(hv.nominal_online_rate(v1), 8.0 * (128.0 / 384.0) / 4.0, 1e-12);
}

class OnlineRateSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, double>> {};

TEST_P(OnlineRateSweep, Equation2MatchesPaperTable) {
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(8), SchedMode::kNonWorkConserving);
  hv.create_vm("V0", 256, 8);
  const VmId v1 = hv.create_vm("V1", GetParam().first, 4);
  EXPECT_NEAR(hv.nominal_online_rate(v1), GetParam().second, 5e-4);
}

INSTANTIATE_TEST_SUITE_P(
    PaperWeights, OnlineRateSweep,
    ::testing::Values(std::pair<std::uint32_t, double>{256, 1.0},
                      std::pair<std::uint32_t, double>{128, 0.6667},
                      std::pair<std::uint32_t, double>{64, 0.40},
                      std::pair<std::uint32_t, double>{32, 0.2222}));

TEST(Hypervisor, DispatchBringsVcpusOnline) {
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(4), SchedMode::kWorkConserving);
  const VmId vm = hv.create_vm("A", 256, 4);
  RecordingGuest g(4);
  hv.attach_guest(vm, &g);
  hv.start();
  s.run_until(seconds(0.001));
  // 4 hog VCPUs on 4 PCPUs: all online.
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(g.online(i));
    EXPECT_TRUE(hv.vcpu_is_online(vm, i));
  }
  EXPECT_EQ(hv.vm_online_count(vm), 4u);
}

TEST(Hypervisor, WorkConservingNoIdleWithBacklog) {
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(4), SchedMode::kWorkConserving);
  // 3 VMs x 4 hog VCPUs = 12 runnable VCPUs on 4 PCPUs.
  RecordingGuest g0(4), g1(4), g2(4);
  hv.attach_guest(hv.create_vm("A", 256, 4), &g0);
  hv.attach_guest(hv.create_vm("B", 256, 4), &g1);
  hv.attach_guest(hv.create_vm("C", 256, 4), &g2);
  hv.start();
  s.run_until(seconds(2.0));
  for (hw::PcpuId p = 0; p < 4; ++p) {
    EXPECT_LT(hv.pcpu_idle_total(p).ratio(s.now()), 0.001)
        << "PCPU " << p << " idled with runnable backlog";
  }
}

TEST(Hypervisor, ProportionalShareUnderContention) {
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(4), SchedMode::kWorkConserving);
  RecordingGuest g0(4), g1(4);
  const VmId a = hv.create_vm("A", 512, 4);
  const VmId b = hv.create_vm("B", 256, 4);
  hv.attach_guest(a, &g0);
  hv.attach_guest(b, &g1);
  hv.start();
  s.run_until(seconds(4.0));
  const double ta = static_cast<double>(hv.vm(a).total_online.v);
  const double tb = static_cast<double>(hv.vm(b).total_online.v);
  EXPECT_NEAR(ta / tb, 2.0, 0.25);  // 2:1 weights -> 2:1 CPU time
}

TEST(Hypervisor, EqualWeightsEqualShares) {
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(2), SchedMode::kWorkConserving);
  RecordingGuest g0(2), g1(2);
  const VmId a = hv.create_vm("A", 256, 2);
  const VmId b = hv.create_vm("B", 256, 2);
  hv.attach_guest(a, &g0);
  hv.attach_guest(b, &g1);
  hv.start();
  s.run_until(seconds(4.0));
  const double ta = static_cast<double>(hv.vm(a).total_online.v);
  const double tb = static_cast<double>(hv.vm(b).total_online.v);
  EXPECT_NEAR(ta / tb, 1.0, 0.12);
}

TEST(Hypervisor, NonWorkConservingCapsBusyVm) {
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(8), SchedMode::kNonWorkConserving);
  const VmId dom0 = hv.create_vm("V0", 256, 8);
  guest::IdleGuest idle(s, hv, dom0, 8);
  hv.attach_guest(dom0, &idle);
  RecordingGuest hog(4);
  const VmId v1 = hv.create_vm("V1", 32, 4);
  hv.attach_guest(v1, &hog);
  hv.start();
  s.run_until(seconds(5.0));
  const double rate = hv.vm(v1).total_online.ratio(s.now()) / 4.0;
  // Nominal 22.2 %; quantized charging keeps it near, never at 100 %.
  EXPECT_NEAR(rate, 0.222, 0.05);
}

TEST(Hypervisor, WorkConservingGrantsIdleCapacity) {
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(8), SchedMode::kWorkConserving);
  const VmId dom0 = hv.create_vm("V0", 256, 8);
  guest::IdleGuest idle(s, hv, dom0, 8);
  hv.attach_guest(dom0, &idle);
  RecordingGuest hog(4);
  const VmId v1 = hv.create_vm("V1", 32, 4);
  hv.attach_guest(v1, &hog);
  hv.start();
  s.run_until(seconds(3.0));
  const double rate = hv.vm(v1).total_online.ratio(s.now()) / 4.0;
  EXPECT_GT(rate, 0.9);  // shares are only guarantees in WC mode
}

TEST(Hypervisor, BlockTakesVcpuOffline) {
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(2), SchedMode::kWorkConserving);
  RecordingGuest g(2);
  const VmId vm = hv.create_vm("A", 256, 2);
  hv.attach_guest(vm, &g);
  hv.start();
  s.run_until(seconds(0.001));
  ASSERT_TRUE(hv.vcpu_is_online(vm, 0));
  hv.vcpu_block(vm, 0);
  s.run_until(seconds(0.002));
  EXPECT_FALSE(hv.vcpu_is_online(vm, 0));
  EXPECT_FALSE(g.online(0));
  s.run_until(seconds(0.2));
  EXPECT_FALSE(hv.vcpu_is_online(vm, 0));  // stays blocked without a kick
}

TEST(Hypervisor, KickWakesBlockedVcpu) {
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(2), SchedMode::kWorkConserving);
  RecordingGuest g(2);
  const VmId vm = hv.create_vm("A", 256, 2);
  hv.attach_guest(vm, &g);
  hv.start();
  s.run_until(seconds(0.001));
  hv.vcpu_block(vm, 0);
  s.run_until(seconds(0.05));
  hv.vcpu_kick(vm, 0);
  s.run_until(seconds(0.06));
  EXPECT_TRUE(hv.vcpu_is_online(vm, 0));
}

TEST(Hypervisor, KickOnRunningVcpuIsNoop) {
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(2), SchedMode::kWorkConserving);
  RecordingGuest g(2);
  const VmId vm = hv.create_vm("A", 256, 2);
  hv.attach_guest(vm, &g);
  hv.start();
  s.run_until(seconds(0.001));
  const auto before = g.transitions();
  hv.vcpu_kick(vm, 0);
  s.run_until(seconds(0.002));
  EXPECT_EQ(g.transitions(), before);
}

TEST(Hypervisor, IdleVmDoesNotConsumeCpu) {
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(2), SchedMode::kWorkConserving);
  const VmId a = hv.create_vm("A", 256, 2);
  guest::IdleGuest idle(s, hv, a, 2);
  hv.attach_guest(a, &idle);
  RecordingGuest hog(2);
  const VmId b = hv.create_vm("B", 256, 2);
  hv.attach_guest(b, &hog);
  hv.start();
  s.run_until(seconds(2.0));
  EXPECT_LT(hv.vm(a).total_online.ratio(s.now()), 0.02);
  EXPECT_GT(hv.vm(b).total_online.ratio(s.now()) / 2.0, 0.95);
}

TEST(Hypervisor, CreditPoolingEqualizesVcpus) {
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(4), SchedMode::kWorkConserving);
  RecordingGuest g(4);
  const VmId vm = hv.create_vm("A", 256, 4);
  hv.attach_guest(vm, &g);
  hv.start();
  // Land just past an accounting boundary: credits were pooled there, so
  // intra-VM divergence is at most the charges since (one tick quantum per
  // VCPU — a coinciding per-PCPU tick can fire at the same instant).
  s.run_until(hv.machine().accounting_cycles() * 10);
  const auto& vcpus = hv.vm(vm).vcpus;
  for (std::size_t i = 1; i < vcpus.size(); ++i)
    EXPECT_NEAR(static_cast<double>(vcpus[i].credit),
                static_cast<double>(vcpus[0].credit),
                static_cast<double>(kCreditPerSlot));
}

TEST(Hypervisor, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator s;
    CreditScheduler hv(s, small_machine(4), SchedMode::kWorkConserving,
                       nullptr, seed);
    RecordingGuest g0(4), g1(4);
    hv.attach_guest(hv.create_vm("A", 300, 4), &g0);
    hv.attach_guest(hv.create_vm("B", 100, 4), &g1);
    hv.start();
    s.run_until(sim::kDefaultClock.from_seconds_f(1.0));
    return std::pair{hv.vm(0).total_online.v, hv.vm(1).total_online.v};
  };
  EXPECT_EQ(run(42), run(42));
  // (Pure hog scenarios schedule identically across seeds under the FIFO
  // dispatch — seed sensitivity of full guest scenarios is asserted in
  // scenario_test's DeterministicForSeed.)
}

TEST(Hypervisor, TimesliceRotatesEqualClassVcpus) {
  // Two hog VMs with one VCPU each sharing one PCPU: Xen's 30 ms
  // round-robin timeslice alternates them, so both make steady progress.
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(1), SchedMode::kWorkConserving);
  RecordingGuest g0(1), g1(1);
  const VmId a = hv.create_vm("A", 256, 1);
  const VmId b = hv.create_vm("B", 256, 1);
  hv.attach_guest(a, &g0);
  hv.attach_guest(b, &g1);
  hv.start();
  // Check interleaving at sub-second granularity, not just the long-run
  // average: after any 200 ms window both VMs must have run.
  Cycles last_a{0}, last_b{0};
  for (int w = 0; w < 10; ++w) {
    s.run_until(s.now() + seconds(0.2));
    EXPECT_GT(hv.vm(a).total_online, last_a) << "window " << w;
    EXPECT_GT(hv.vm(b).total_online, last_b) << "window " << w;
    last_a = hv.vm(a).total_online;
    last_b = hv.vm(b).total_online;
  }
  const double ratio = static_cast<double>(hv.vm(a).total_online.v) /
                       static_cast<double>(hv.vm(b).total_online.v);
  EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST(Hypervisor, ActiveSetStopsIdleVmFromTaxingBusyOnes) {
  // Work-conserving: an idle VM's weight must not drain the busy VMs'
  // credit into permanent OVER territory (Xen's active-set behaviour).
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(2), SchedMode::kWorkConserving);
  const VmId idle_vm = hv.create_vm("idle", 256, 2);
  guest::IdleGuest idle(s, hv, idle_vm, 2);
  hv.attach_guest(idle_vm, &idle);
  RecordingGuest g0(2), g1(2);
  const VmId a = hv.create_vm("A", 256, 2);
  const VmId b = hv.create_vm("B", 256, 2);
  hv.attach_guest(a, &g0);
  hv.attach_guest(b, &g1);
  hv.start();
  s.run_until(seconds(3.0));
  // Busy VMs split the machine and their credits hover near zero rather
  // than pinning at the negative cap.
  Credit pool_a = 0, pool_b = 0;
  for (const Vcpu& c : hv.vm(a).vcpus) pool_a += c.credit;
  for (const Vcpu& c : hv.vm(b).vcpus) pool_b += c.credit;
  const Credit cap = 2 * 3 * kCreditPerSlot;
  EXPECT_GT(pool_a, -2 * cap + kCreditPerSlot);
  EXPECT_GT(pool_b, -2 * cap + kCreditPerSlot);
  EXPECT_NEAR(hv.vm(a).total_online.ratio(s.now()) / 2.0, 0.5, 0.1);
}

TEST(Hypervisor, ContextSwitchAndMigrationCountersMove) {
  sim::Simulator s;
  CreditScheduler hv(s, small_machine(2), SchedMode::kWorkConserving);
  RecordingGuest g0(2), g1(2);
  hv.attach_guest(hv.create_vm("A", 256, 2), &g0);
  hv.attach_guest(hv.create_vm("B", 256, 2), &g1);
  hv.start();
  s.run_until(seconds(1.0));
  EXPECT_GT(hv.context_switches(), 10u);
  EXPECT_EQ(hv.slots_elapsed(), 100u);  // 1 s / 10 ms
}

}  // namespace
}  // namespace asman::vmm

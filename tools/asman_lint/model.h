// Findings, check registry, and shared configuration for asman-lint.
#pragma once

#include <string>
#include <vector>

#include "token.h"

namespace asman_lint {

/// One step of a path witness: the flow-sensitive checks attach the
/// violating control-flow path to the finding, so the report (and the
/// SARIF codeFlow) shows HOW the bad path reaches the mutation, not just
/// where it is.
struct TraceStep {
  int line;
  std::string note;
};

struct Finding {
  std::string file;    // display path
  int line;
  std::string check;   // one of kCheckNames
  std::string message;
  bool allowed{false};        // suppressed by an asman-lint: allow(...) pragma
  std::string allow_reason;   // the pragma's `-- reason`, if any
  std::vector<TraceStep> trace;  // path witness (flow-sensitive checks)
};

inline const char* const kCheckNames[] = {
    "determinism",
    "ordered-iteration",
    "integer-credit",
    "audit-seam",
    "credit-flow",
    "state-machine",
    "thread-safety",
    "rng-discipline",
    "value-range",
};

struct Options {
  std::string root;              // repo root (default: cwd)
  std::string compile_db;        // -p BUILD_DIR (compile_commands.json)
  std::vector<std::string> files;
  // Scope filters when walking --root / reading the compile DB. All
  // first-party code is in scope: the simulator itself plus the bench and
  // example TUs (a nondeterministic bench harness would invalidate every
  // perf trajectory comparison just as surely as a nondeterministic
  // scheduler would invalidate replay).
  std::vector<std::string> prefixes{"src/", "bench/", "examples/"};
  std::vector<std::string> only_checks;  // --check NAME (repeatable)
  std::string sarif_path;        // --sarif FILE (empty: no SARIF output)
  // Suppression budget (CI-visible). The clean tree carries exactly 2
  // ledgered allows (bench_util.h's wall-clock reads); actual + 2 keeps a
  // new escape from hiding inside slack.
  int max_allows{4};
  bool quiet{false};
  bool list_checks{false};
};

bool check_enabled(const Options& opt, const char* name);

/// True when `display` starts with any configured prefix (or none are).
bool under_any_prefix(const std::string& display, const Options& opt);

}  // namespace asman_lint

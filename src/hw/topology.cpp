#include "hw/topology.h"

#include "hw/machine.h"

namespace asman::hw {

const char* to_string(TopoDistance d) {
  switch (d) {
    case TopoDistance::kSelf:
      return "self";
    case TopoDistance::kSameLlc:
      return "same-llc";
    case TopoDistance::kSameSocket:
      return "same-socket";
    case TopoDistance::kCrossSocket:
      return "cross-socket";
  }
  return "?";
}

const char* to_string(ConfigError e) {
  switch (e) {
    case ConfigError::kNoPcpus:
      return "no-pcpus";
    case ConfigError::kZeroFrequency:
      return "zero-frequency";
    case ConfigError::kZeroSlot:
      return "zero-slot";
    case ConfigError::kZeroAccounting:
      return "zero-accounting";
    case ConfigError::kZeroTimeslice:
      return "zero-timeslice";
    case ConfigError::kTopologyLeafMismatch:
      return "topology-leaf-mismatch";
    case ConfigError::kZeroLlcCapacity:
      return "zero-llc-capacity";
    case ConfigError::kZeroMemBandwidth:
      return "zero-mem-bandwidth";
  }
  return "?";
}

Topology Topology::flat(std::uint32_t num_pcpus) {
  return symmetric(1, 1, num_pcpus);
}

Topology Topology::symmetric(std::uint32_t sockets,
                             std::uint32_t llcs_per_socket,
                             std::uint32_t pcpus_per_llc) {
  Topology t;
  t.num_sockets_ = sockets;
  t.num_llcs_ = sockets * llcs_per_socket;
  const std::uint32_t n = sockets * llcs_per_socket * pcpus_per_llc;
  t.socket_.reserve(n);
  t.llc_.reserve(n);
  t.by_socket_.resize(sockets);
  for (std::uint32_t s = 0; s < sockets; ++s) {
    for (std::uint32_t l = 0; l < llcs_per_socket; ++l) {
      for (std::uint32_t c = 0; c < pcpus_per_llc; ++c) {
        const PcpuId p = static_cast<PcpuId>(t.socket_.size());
        t.socket_.push_back(s);
        t.llc_.push_back(s * llcs_per_socket + l);
        t.by_socket_[s].push_back(p);
      }
    }
  }
  return t;
}

std::vector<ConfigIssue> validate_config(const MachineConfig& m) {
  std::vector<ConfigIssue> issues;
  if (m.num_pcpus == 0)
    issues.push_back({ConfigError::kNoPcpus, "num_pcpus must be > 0"});
  if (m.freq_hz == 0)
    issues.push_back({ConfigError::kZeroFrequency, "freq_hz must be > 0"});
  if (m.slot_ms == 0)
    issues.push_back({ConfigError::kZeroSlot, "slot_ms must be > 0"});
  if (m.slots_per_accounting == 0)
    issues.push_back(
        {ConfigError::kZeroAccounting, "slots_per_accounting must be > 0"});
  if (m.slots_per_timeslice == 0)
    issues.push_back(
        {ConfigError::kZeroTimeslice, "slots_per_timeslice must be > 0"});
  if (m.topology.specified() && m.topology.num_pcpus() != m.num_pcpus)
    issues.push_back({ConfigError::kTopologyLeafMismatch,
                      "topology describes " +
                          std::to_string(m.topology.num_pcpus()) +
                          " PCPUs but num_pcpus is " +
                          std::to_string(m.num_pcpus)});
  return issues;
}

std::vector<ConfigIssue> validate_footprint_config(const MachineConfig& m,
                                                   bool footprint_declared) {
  std::vector<ConfigIssue> issues;
  if (!footprint_declared) return issues;
  if (m.resolved_topology().is_flat()) return issues;  // engine inert by contract
  if (m.llc_bytes == 0)
    issues.push_back(
        {ConfigError::kZeroLlcCapacity,
         "a workload declares a nonzero memory footprint but llc_bytes is 0; "
         "the contention engine would be silently disabled"});
  if (m.socket_mem_bw_bytes_per_s == 0)
    issues.push_back(
        {ConfigError::kZeroMemBandwidth,
         "a workload declares a nonzero memory footprint but "
         "socket_mem_bw_bytes_per_s is 0; bandwidth pressure would be "
         "silently unmodeled"});
  return issues;
}

}  // namespace asman::hw

# Empty dependencies file for asman_core.
# This may be replaced when dependencies are built.

// Catalog of the scheduler invariants the auditor enforces.
//
// Each invariant is a property of the hypervisor's externally observable
// state that must hold at every scheduling-event boundary (docs/MODEL.md
// "Invariants & verification"). The full-state scans here are stateless
// and operate purely on the hypervisor's public introspection surface; the
// stateful checks (credit ledger across an accounting pass, the VCPU
// state-machine shadow, time monotonicity) live in audit::Auditor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "vmm/types.h"

namespace asman::vmm {
class Hypervisor;
}

namespace asman::audit {

enum class Invariant : std::uint8_t {
  /// Every VCPU credit stays within [-cap, +cap] (Algorithm 3 saturation).
  kCreditBounds = 0,
  /// One accounting pass rewrites a VM's credits to exactly
  /// min((pool + minted) / n, cap) per VCPU — credit is neither created
  /// nor destroyed beyond the declared mint (Algorithm 3).
  kCreditConservation,
  /// Run-queue membership partitions the VCPUs: a runnable VCPU sits in
  /// exactly one queue (the one `where` names), a running VCPU is current
  /// on exactly one PCPU, a blocked VCPU is in no queue.
  kQueuePartition,
  /// VCPU lifecycle transitions follow Runnable->Running->Runnable,
  /// Runnable<->Blocked, Blocked->Runnable only, from the state the VCPU
  /// was actually in.
  kStateMachine,
  /// A gang-scheduled VM's VCPUs occupy pairwise distinct PCPUs
  /// (Algorithm 3 lines 8-16 placement, preserved by steal/IPI/wake).
  kGangCoherence,
  /// Audit-observed event times never decrease (EventQueue pop order).
  kTimeMonotonic,
  /// Right after a relocation, a gang-scheduled VM occupies no more
  /// sockets than the minimal packing its running members allow (the
  /// topology-aware placement contract; vacuous on flat topologies and
  /// under topology-blind placement).
  kTopologyPlacement,
  /// Attributed cycles conserve like credit (the theft meter is honest):
  /// (a) machine-wide, the cycles VMs consumed equal the cycles PCPUs were
  /// busy — exactly, at every event; (b) under sampled accounting
  /// (kStochastic / kTickSampled) attribution moves in whole-slot quanta;
  /// (c) under kExact accounting every VM's attributed cycles equal its
  /// consumed cycles — there is nothing left to steal.
  kCycleConservation,
  /// Cluster-wide (src/cluster/cluster_auditor.*): at every cluster event,
  /// each admitted VM is resident — a live local VM of its unique name —
  /// on at most one host, including mid-migration (lost VMs on zero).
  kSingleOwnership,
  /// Cluster-wide: credit transfers between hosts are exact. The ticket a
  /// migration carries equals the source pool it captured, the destination
  /// seeds exactly ticket - split/clamp residual, and the residual is
  /// accounted — summed over per-host pools plus in-flight transfers,
  /// nothing is minted or lost by moving a VM.
  kClusterCreditConservation,
  /// Memory-pressure ledger (docs/MODEL.md §2.8): per VM and machine-wide,
  /// effective + degraded == accounted cycles exactly — the contention
  /// engine splits, never invents or loses, busy time. At every engine
  /// pass (Auditor::on_contention) the published occupancy is additionally
  /// a true partition of resident footprints: granted <= demand
  /// elementwise and Σ granted per LLC == min(capacity, Σ demand),
  /// recomputed independently from authoritative placement state.
  kPressureConservation,
};

inline constexpr std::size_t kNumInvariants = 11;

const char* to_string(Invariant inv);

struct Violation {
  Invariant kind;
  std::string what;
};

// Full-state scans. Each appends violations to `out` and returns the
// number of individual checks it performed (for coverage accounting).
std::uint64_t check_credit_bounds(const vmm::Hypervisor& hv,
                                  std::vector<Violation>& out);
std::uint64_t check_queue_partition(const vmm::Hypervisor& hv,
                                    std::vector<Violation>& out);
std::uint64_t check_gang_coherence(const vmm::Hypervisor& hv,
                                   std::vector<Violation>& out);
// Event-scoped: meaningful only at relocation instants (the auditor calls
// it from on_relocated for the relocated VM, and over all VMs in the
// post-relocation full scan a seeded test drives directly).
std::uint64_t check_topology_placement(const vmm::Hypervisor& hv,
                                       vmm::VmId vm,
                                       std::vector<Violation>& out);
std::uint64_t check_cycle_conservation(const vmm::Hypervisor& hv,
                                       std::vector<Violation>& out);
std::uint64_t check_pressure_conservation(const vmm::Hypervisor& hv,
                                          std::vector<Violation>& out);

}  // namespace asman::audit

#include "experiments/scenario.h"

#include <algorithm>
#include <stdexcept>

#include "faults/injector.h"

#ifdef ASMAN_AUDIT_ENABLED
#include "audit/auditor.h"
#endif

namespace asman::experiments {

double VmResult::mean_round_seconds(std::size_t n) const {
  if (round_seconds.empty()) return 0.0;
  const std::size_t k = std::min(n, round_seconds.size());
  double s = 0.0;
  for (std::size_t i = 0; i < k; ++i) s += round_seconds[i];
  return s / static_cast<double>(k);
}

const VmResult& RunResult::vm(const std::string& name) const {
  for (const auto& v : vms)
    if (v.name == name) return v;
  throw std::out_of_range("no VM named " + name);
}

const VmResult& RunResult::vm_by_id(vmm::VmId id) const {
  for (const auto& v : vms)
    if (v.id == id) return v;
  throw std::out_of_range("no VM with id " + std::to_string(id));
}

RunResult run_scenario(const Scenario& sc) {
  sim::Simulator simulation;
  const sim::ClockDomain clock = sc.machine.clock();

  auto hv = core::make_scheduler(sc.scheduler, simulation, sc.machine, sc.mode);
  hv->set_cosched_strictness(sc.strictness);
  hv->set_resilience(sc.resilience);
  hv->set_admission(sc.admission);
  hv->set_topology_aware(sc.topology_aware);
  hv->set_pressure_aware(sc.pressure_aware);

  // Attach the fault injector only when the plan names a fault: an empty
  // plan leaves no seam installed, so the run is bit-identical to builds
  // without the subsystem.
  std::unique_ptr<faults::FaultInjector> injector;
  if (!sc.faults.empty())
    injector =
        std::make_unique<faults::FaultInjector>(simulation, *hv, sc.faults);

  struct VmRuntime {
    vmm::VmId id{};
    std::string name;
    std::unique_ptr<guest::GuestKernel> kernel;
    std::unique_ptr<guest::IdleGuest> idle;
    std::unique_ptr<core::MonitoringModule> monitor;
    std::unique_ptr<workloads::Workload> workload;
    bool finite{false};
  };
  std::vector<VmRuntime> rts;
  rts.reserve(sc.vms.size() + sc.churn.size());

  sim::SplitMix64 seeds(sc.seed);
  // Instantiate one VM plus its guest stack, drawing any needed seeds from
  // `sstream`. Boot-time VMs draw from the primary stream (in the exact
  // order earlier builds did); hot-created VMs draw from a dedicated churn
  // stream so adding churn never perturbs the boot-time VMs' workloads.
  // Returns false when the admission controller rejects the create — the
  // request then leaves nothing behind but the reject counter.
  const auto instantiate = [&](const VmSpec& spec,
                               sim::SplitMix64& sstream) -> bool {
    VmRuntime rt;
    rt.name = spec.name;
    rt.id = hv->create_vm(spec.name, spec.weight, spec.vcpus, spec.type);
    if (rt.id == vmm::kInvalidVmId) return false;
    // Guest-side components hypercall through the injector's port wrapper
    // (which silences VCRD reports when the plan says so) or straight into
    // the hypervisor.
    vmm::HypervisorPort& port =
        injector ? injector->hypercall_port(rt.id) : *hv;
    if (!spec.workload) {
      rt.idle = std::make_unique<guest::IdleGuest>(simulation, port, rt.id,
                                                   spec.vcpus);
      hv->attach_guest(rt.id, injector
                                  ? injector->wrap_guest(rt.id, rt.idle.get())
                                  : rt.idle.get());
      rts.push_back(std::move(rt));
      return true;
    }
    guest::GuestKernel::Config gc = spec.guest;
    gc.n_vcpus = spec.vcpus;
    gc.seed = sstream.next();
    gc.keep_wait_samples = sc.keep_wait_samples;
    gc.over_threshold = Cycles{1ULL << sc.monitor.delta_exp};
    rt.kernel = std::make_unique<guest::GuestKernel>(simulation, port, rt.id,
                                                     gc);
    if (spec.monitor && sc.scheduler == core::SchedulerKind::kAsman) {
      core::MonitorConfig mc = sc.monitor;
      mc.learning.seed = sstream.next();
      rt.monitor = std::make_unique<core::MonitoringModule>(simulation, port,
                                                            rt.id, mc);
      rt.kernel->set_observer(rt.monitor.get());
    }
    rt.workload = spec.workload(simulation, sstream.next());
    // Register the workload's memory footprint before it runs: the
    // contention engine prices occupancy from creation on (churn-created
    // VMs register here too). Zero footprints keep the engine inert.
    hv->set_vm_footprint(rt.id, rt.workload->footprint());
    rt.workload->deploy(*rt.kernel);
    // Hypervisor-facing hookup (adversary models hypercall directly);
    // through the injector wrapper like every other guest-origin call.
    rt.workload->connect(simulation, port, rt.id);
    rt.finite = rt.workload->finite();
    hv->attach_guest(rt.id, injector
                                ? injector->wrap_guest(rt.id, rt.kernel.get())
                                : rt.kernel.get());
    rts.push_back(std::move(rt));
    return true;
  };
  for (const VmSpec& spec : sc.vms) instantiate(spec, seeds);

  if (injector) injector->arm();

  // Schedule the scripted lifecycle events. Targets resolve by name at
  // fire time (latest creation wins), so a list can destroy a VM that an
  // earlier event created; a vanished target is a silent no-op, keeping
  // churn lists composable with chaos plans that crash VMs.
  sim::SplitMix64 churn_seeds(sc.seed ^ 0xC1124E5EEDULL);
  const auto find_vm = [&rts](const std::string& name) -> VmRuntime* {
    for (auto it = rts.rbegin(); it != rts.rend(); ++it)
      if (it->name == name) return &*it;
    return nullptr;
  };
  for (const ChurnEvent& ev : sc.churn) {
    simulation.at(ev.at, [&, ev] {
      switch (ev.kind) {
        case ChurnEvent::Kind::kCreate:
          instantiate(ev.spec, churn_seeds);
          break;
        case ChurnEvent::Kind::kDestroy:
          if (VmRuntime* rt = find_vm(ev.target)) hv->destroy_vm(rt->id);
          break;
        case ChurnEvent::Kind::kResize:
          if (VmRuntime* rt = find_vm(ev.target))
            hv->resize_vm(rt->id, ev.new_vcpus);
          break;
      }
    });
  }

#ifdef ASMAN_AUDIT_ENABLED
  // Attach after VM creation, before start(): the auditor snapshots the
  // initial VCPU states and then sees every scheduling event of the run.
  std::unique_ptr<audit::Auditor> auditor;
  if (sc.audit || audit::audit_env_enabled()) {
    audit::AuditorConfig cfg;
    cfg.stride = sc.audit_stride;
    auditor = std::make_unique<audit::Auditor>(simulation, *hv, cfg);
  }
#endif

  hv->start();

  const auto all_work_finished = [&rts, &sc, &hv]() -> bool {
    bool any = false;
    for (const auto& rt : rts) {
      if (!rt.workload) continue;
      if (!rt.finite) continue;  // throughput workloads run to the horizon
      if (!hv->vm_alive(rt.id)) continue;  // destroyed mid-run by churn
      any = true;
      if (sc.stop_after_rounds > 0) {
        // Round-target protocol: stop once every round-tracking workload
        // completed the target (finishing all rounds also satisfies it).
        if (rt.workload->rounds_completed() < sc.stop_after_rounds &&
            !rt.kernel->all_threads_done())
          return false;
      } else if (!rt.kernel->all_threads_done()) {
        return false;
      }
    }
    return any;
  };

  simulation.run_while(sc.horizon,
                       [&all_work_finished] { return !all_work_finished(); });

  // --- collect ---
  RunResult rr;
  rr.scheduler = sc.scheduler;
  const Cycles elapsed = simulation.now();
  rr.elapsed_seconds = clock.to_seconds(elapsed);
  rr.events = simulation.events_processed();
  rr.migrations = hv->total_migrations();
  rr.cosched_events = hv->cosched_events();
  rr.ipi_sent = hv->ipi_bus().sent();
  rr.context_switches = hv->context_switches();
  rr.ipi_dropped = hv->ipi_bus().dropped();
  rr.ipi_delayed = hv->ipi_bus().delayed();
  rr.ipi_duplicated = hv->ipi_bus().duplicated();
  rr.ipi_retries = hv->ipi_retries();
  rr.gang_ipi_aborts = hv->gang_ipi_aborts();
  rr.gang_watchdog_fires = hv->gang_watchdog_fires();
  rr.vcrd_demotions = hv->vcrd_demotions();
  rr.stale_vcrd_drops = hv->stale_vcrd_drops();
  rr.hypercall_rejects = hv->hypercall_rejects();
  rr.ignored_kicks = hv->ignored_kicks();
  rr.evacuated_vcpus = hv->evacuated_vcpus();
  rr.pcpu_offline_events = hv->pcpu_offline_events();
  if (injector) {
    rr.injected_flaps = injector->injected_flaps();
    rr.injected_corrupt_ops = injector->injected_corrupt_ops();
    rr.silenced_reports = injector->silenced_reports();
  }
  rr.admission_rejects = hv->admission_rejects();
  rr.vm_creates = hv->vm_creates();
  rr.vm_destroys = hv->vm_destroys();
  rr.vm_resizes = hv->vm_resizes();
  rr.overload_sheds = hv->overload_sheds();
  rr.overload_restores = hv->overload_restores();
  rr.cross_llc_migrations = hv->cross_llc_migrations();
  rr.cross_socket_migrations = hv->cross_socket_migrations();
  rr.migration_penalty_cycles = hv->migration_penalty_cycles().v;
  rr.topology_steal_rejects = hv->topology_steal_rejects();
  rr.pressure_accounted = hv->pressure_accounted_total();
  rr.pressure_degraded = hv->pressure_degraded_total();
  rr.pressure_effective = hv->pressure_effective_total();
  rr.pressure_periods = hv->pressure_periods();
  rr.pressure_steal_rejects = hv->pressure_steal_rejects();
  rr.pressure_rebalances = hv->pressure_rebalances();
  rr.footprint_config_errors = hv->footprint_config_errors();
  rr.boost_grants = hv->boost_grants();
  rr.boost_denials = hv->boost_denials();
  rr.dodged_samples = hv->dodged_samples();
  rr.implausible_vcrds = hv->implausible_vcrds();
  rr.theft_cycles = hv->theft_cycles_total();
  rr.fairness_min = hv->fairness_min();
  rr.fairness_mean = hv->fairness_mean();
  rr.fairness_periods = hv->fairness_periods();
  double idle = 0.0;
  for (hw::PcpuId p = 0; p < sc.machine.num_pcpus; ++p)
    idle += hv->pcpu_idle_total(p).ratio(elapsed);
  rr.idle_fraction = idle / sc.machine.num_pcpus;
#ifdef ASMAN_AUDIT_ENABLED
  if (auditor) {
    auditor->check_now();  // final full scan at the horizon
    rr.audit_checks = auditor->report().total_checks();
    rr.audit_violations = auditor->report().total_violations();
    rr.audit_summary = auditor->report().summary();
  }
#endif

  for (std::size_t i = 0; i < rts.size(); ++i) {
    const VmRuntime& rt = rts[i];
    const vmm::Vm& v = hv->vm(rt.id);
    VmResult res;
    res.id = rt.id;
    res.name = v.name;
    res.destroyed = !v.alive;
    // A destroyed VM's tombstone record still carries its statistics; its
    // measurement window closes at the destruction instant.
    const Cycles window = v.alive ? elapsed : v.destroyed_at;
    if (rt.workload) res.workload_name = rt.workload->name();
    if (rt.kernel) {
      res.stats = rt.kernel->stats();
      res.finished = rt.finite && rt.kernel->all_threads_done();
      res.runtime_seconds = clock.to_seconds(
          res.finished ? rt.kernel->last_finish_time() : window);
    } else if (!v.alive) {
      res.runtime_seconds = clock.to_seconds(window);
    }
    const double denom =
        static_cast<double>(v.num_vcpus()) * static_cast<double>(window.v);
    res.observed_online_rate =
        denom > 0 ? static_cast<double>(v.total_online.v) / denom : 0.0;
    res.vcrd_transitions = v.vcrd_high_transitions;
    Cycles high = v.vcrd_high_time;
    if (v.vcrd == vmm::Vcrd::kHigh) high += elapsed - v.vcrd_high_since;
    res.vcrd_high_fraction = high.ratio(window);
    if (rt.workload) {
      res.work_units = rt.workload->work_units();
      const auto times = rt.workload->round_times();
      Cycles prev{0};
      for (Cycles t : times) {
        res.round_seconds.push_back(clock.to_seconds(t - prev));
        prev = t;
      }
    }
    if (rt.monitor) {
      res.over_threshold_events = rt.monitor->over_threshold_events();
      res.adjusting_events = rt.monitor->adjusting_events();
    }
    res.demotions = v.demotions;
    res.stale_vcrd_drops = v.stale_vcrd_drops;
    res.degraded = v.degraded;
    res.cycles_consumed = v.total_online.v;
    res.cycles_attributed = v.cycles_attributed.v;
    res.theft_cycles = vmm::theft_cycles(v.total_online, v.cycles_attributed);
    res.dodged_samples = v.dodged_samples;
    res.boost_grants = v.boost_grants;
    res.boost_denials = v.boost_denials;
    res.implausible_vcrds = v.implausible_vcrds;
    res.cross_llc_migrations = v.cross_llc_migrations;
    res.cross_socket_migrations = v.cross_socket_migrations;
    res.migration_penalty_cycles = v.migration_penalty.v;
    res.pressure_accounted = v.pressure_accounted;
    res.pressure_degraded = v.pressure_degraded;
    res.pressure_effective = v.pressure_effective;
    rr.vms.push_back(std::move(res));
  }
  return rr;
}

}  // namespace asman::experiments

file(REMOVE_RECURSE
  "../bench/fig09_nas_slowdowns"
  "../bench/fig09_nas_slowdowns.pdb"
  "CMakeFiles/fig09_nas_slowdowns.dir/fig09_nas_slowdowns.cpp.o"
  "CMakeFiles/fig09_nas_slowdowns.dir/fig09_nas_slowdowns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_nas_slowdowns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "simcore/histogram.h"

#include <algorithm>
#include <cstdio>

namespace asman::sim {

std::uint64_t Log2Histogram::count_above(unsigned exp) const {
  // Samples with floor(log2(v)) > exp all exceed 2^exp. Samples in bucket
  // `exp` itself are in [2^exp, 2^(exp+1)); those are > 2^exp except the
  // exact boundary value, which is rare enough to ignore for counting
  // purposes (the paper's thresholds are order-of-magnitude).
  std::uint64_t n = 0;
  for (unsigned b = exp; b < kBuckets; ++b) n += counts_[b];
  return n;
}

std::string Log2Histogram::render(unsigned min_bucket,
                                  unsigned max_bucket) const {
  std::string out;
  std::uint64_t peak = 1;
  for (unsigned b = min_bucket; b <= max_bucket && b < kBuckets; ++b)
    peak = std::max(peak, counts_[b]);
  char line[128];
  for (unsigned b = min_bucket; b <= max_bucket && b < kBuckets; ++b) {
    const std::uint64_t c = counts_[b];
    const int bar = static_cast<int>((c * 50 + peak - 1) / peak);
    std::snprintf(line, sizeof line, "  2^%-2u %10llu %.*s\n", b,
                  static_cast<unsigned long long>(c), bar,
                  "##################################################");
    out += line;
  }
  return out;
}

}  // namespace asman::sim

file(REMOVE_RECURSE
  "CMakeFiles/schedule_timeline.dir/schedule_timeline.cpp.o"
  "CMakeFiles/schedule_timeline.dir/schedule_timeline.cpp.o.d"
  "schedule_timeline"
  "schedule_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "workloads/npb.h"

#include <cassert>
#include <stdexcept>

namespace asman::workloads {

const char* to_string(NpbBenchmark b) {
  switch (b) {
    case NpbBenchmark::kBT:
      return "BT";
    case NpbBenchmark::kCG:
      return "CG";
    case NpbBenchmark::kEP:
      return "EP";
    case NpbBenchmark::kFT:
      return "FT";
    case NpbBenchmark::kMG:
      return "MG";
    case NpbBenchmark::kSP:
      return "SP";
    case NpbBenchmark::kLU:
      return "LU";
  }
  return "?";
}

NpbBenchmark npb_from_name(std::string_view name) {
  for (NpbBenchmark b : kAllNpb)
    if (name == to_string(b)) return b;
  throw std::invalid_argument("unknown NPB benchmark: " + std::string(name));
}

PhaseParams npb_params(NpbBenchmark b, std::uint32_t threads,
                       std::uint64_t rounds) {
  const auto us = [](std::uint64_t n) { return sim::kDefaultClock.from_us(n); };
  const auto mib = [](std::uint64_t n) { return n * 1024 * 1024; };
  const auto kib = [](std::uint64_t n) { return n * 1024; };
  PhaseParams p;
  p.threads = threads;
  p.rounds = rounds;
  p.sync = PhaseParams::Sync::kBarrierAll;
  // The suite ran under gcc-era libgomp with active waiting.
  p.global_pure_spin = true;
  // Work per round is ~2.5 virtual seconds of single-run CPU time at 100%
  // online rate for every benchmark; they differ in how finely that work is
  // chopped by synchronization. Footprints are calibrated against a 6 MB
  // Harpertown L2 domain: the hot working set the solver cycles through and
  // how strongly it reuses it (docs/MODEL.md §2.8), scaled per thread.
  switch (b) {
    case NpbBenchmark::kEP:
      p.steps = 10;
      p.compute_mean = us(250'000);
      p.compute_cv = 0.05;
      // Embarrassingly parallel RNG batches: a few tables, all resident.
      p.footprint = hw::memsys::make_footprint(kib(128) * threads,
                                               500'000'000ULL, 900);
      break;
    case NpbBenchmark::kFT:
      p.steps = 60;
      p.compute_mean = us(40'000);
      p.compute_cv = 0.12;
      // 3-D FFT transposes stream whole planes through the cache.
      p.footprint = hw::memsys::make_footprint(mib(3) * threads,
                                               4'000'000'000ULL, 250);
      break;
    case NpbBenchmark::kBT:
      p.steps = 400;
      p.compute_mean = us(6'200);
      p.compute_cv = 0.15;
      p.footprint = hw::memsys::make_footprint(mib(2) * threads,
                                               2'500'000'000ULL, 500);
      break;
    case NpbBenchmark::kMG:
      p.steps = 520;
      p.compute_mean = us(4'800);
      p.compute_cv = 0.25;
      // Multigrid sweeps touch every level each V-cycle: big, streaming.
      p.footprint = hw::memsys::make_footprint(mib(3) * threads,
                                               3'500'000'000ULL, 300);
      break;
    case NpbBenchmark::kSP:
      p.steps = 900;
      p.compute_mean = us(2'750);
      p.compute_cv = 0.18;
      p.footprint = hw::memsys::make_footprint(mib(2) * threads,
                                               2'500'000'000ULL, 450);
      break;
    case NpbBenchmark::kCG:
      p.steps = 1'800;
      p.compute_mean = us(1'380);
      p.compute_cv = 0.20;
      // Irregular sparse matrix-vector products: modest set, poor reuse.
      p.footprint = hw::memsys::make_footprint(mib(1) * threads,
                                               3'000'000'000ULL, 350);
      break;
    case NpbBenchmark::kLU:
      p.sync = PhaseParams::Sync::kNeighborChain;
      p.global_barrier_every = 40;
      p.steps = 3'600;
      p.compute_mean = us(690);
      p.compute_cv = 0.22;
      // Wavefront tiles reuse a small band of the grid intensely.
      p.footprint = hw::memsys::make_footprint(kib(768) * threads,
                                               1'500'000'000ULL, 750);
      break;
  }
  return p;
}

std::unique_ptr<PhaseWorkload> make_npb(sim::Simulator& simulation,
                                        NpbBenchmark b, std::uint64_t seed,
                                        std::uint32_t threads,
                                        std::uint64_t rounds) {
  return std::make_unique<PhaseWorkload>(simulation, to_string(b),
                                         npb_params(b, threads, rounds), seed);
}

}  // namespace asman::workloads

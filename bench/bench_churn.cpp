// Lifecycle-churn bench: what does runtime VM churn cost the tenants that
// stay?
//
// For each scheduler the sweep runs the chaos workload without churn (the
// baseline), with churn composed onto every fault class, and once against
// the admission-saturated arrival storm. The table reports gang progress
// retained relative to the churn-free baseline next to the lifecycle
// counters (creates/destroys/resizes, admission rejects, overload
// sheds/restores) that explain where scheduling time went. The baseline
// row doubles as a regression guard: with no churn scheduled, every
// lifecycle counter must be zero.
#include "bench_util.h"
#include "experiments/chaos.h"
#include "experiments/churn.h"

using namespace asman;
using namespace asman::bench;

namespace {

constexpr core::SchedulerKind kScheds[] = {core::SchedulerKind::kCredit,
                                           core::SchedulerKind::kCon,
                                           core::SchedulerKind::kAsman};

std::string churn_label(core::SchedulerKind k, const char* cls) {
  return std::string(core::to_string(k)) + "/" + cls;
}

Sweep build_sweep() {
  Sweep s;
  for (core::SchedulerKind k : kScheds) {
    // Same tenant mix the churn scenarios start from, but no churn events:
    // the cost baseline.
    s.add(churn_label(k, "baseline"), ex::chaos_base_scenario(k, 42));
    s.add(churn_label(k, "churn"), ex::churn_scenario(k, 42));
    for (const ex::ChaosClass c : ex::all_chaos_classes())
      s.add(churn_label(k, ex::to_string(c)),
            ex::churn_chaos_scenario(k, c, 42));
    s.add(churn_label(k, "saturated"), ex::saturated_churn_scenario(k, 42));
  }
  return s;
}

void annotate(const PointResult& pr, benchmark::State& st) {
  const ex::RunResult& rr = pr.run;
  st.counters["gang_work"] =
      static_cast<double>(rr.vm("Gang").stats.spin_acquisitions);
  st.counters["creates"] = static_cast<double>(rr.vm_creates);
  st.counters["destroys"] = static_cast<double>(rr.vm_destroys);
  st.counters["resizes"] = static_cast<double>(rr.vm_resizes);
  st.counters["adm_rejects"] = static_cast<double>(rr.admission_rejects);
  st.counters["sheds"] = static_cast<double>(rr.overload_sheds);
  st.counters["restores"] = static_cast<double>(rr.overload_restores);
}

void add_row(ex::TextTable& t, const char* label, const ex::RunResult& rr,
             double base_work) {
  const auto acq = rr.vm("Gang").stats.spin_acquisitions;
  t.add_row({label, std::to_string(acq),
             base_work > 0
                 ? ex::fmt_pct(static_cast<double>(acq) / base_work)
                 : std::string("-"),
             std::to_string(rr.vm_creates), std::to_string(rr.vm_destroys),
             std::to_string(rr.vm_resizes),
             std::to_string(rr.admission_rejects),
             std::to_string(rr.overload_sheds),
             std::to_string(rr.overload_restores)});
}

void print_tables(const Sweep& s) {
  for (core::SchedulerKind k : kScheds) {
    const ex::RunResult& base = s.get(churn_label(k, "baseline")).run;
    const double base_work =
        static_cast<double>(base.vm("Gang").stats.spin_acquisitions);
    std::printf("\n== Churn overhead under %s (gang throughput retained "
                "vs churn-free) ==\n",
                core::to_string(k));
    ex::TextTable t({"scenario", "gang work", "retained", "create",
                     "destroy", "resize", "reject", "shed", "restore"});
    add_row(t, "(no churn)", base, base_work);
    add_row(t, "churn", s.get(churn_label(k, "churn")).run, base_work);
    for (const ex::ChaosClass c : ex::all_chaos_classes())
      add_row(t, ex::to_string(c), s.get(churn_label(k, ex::to_string(c))).run,
              base_work);
    add_row(t, "saturated", s.get(churn_label(k, "saturated")).run,
            base_work);
    std::printf("%s", t.str().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep = build_sweep();
  return run_bench_main(argc, argv, sweep, "churn", annotate, print_tables);
}

// Cancellable discrete-event queue with deterministic ordering.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), which makes whole simulations
// bit-reproducible regardless of heap internals. Cancellation is lazy: a
// cancelled entry stays in the heap and is skipped on pop, which keeps both
// schedule() and cancel() O(log n) / O(1).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "simcore/time.h"

namespace asman::sim {

/// Opaque handle identifying a scheduled event; may be used to cancel it.
struct EventId {
  std::uint64_t seq{0};
  constexpr bool valid() const { return seq != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` to fire at absolute time `at`. `at` must not precede the
  /// last popped event time (checked by the Simulator layer).
  EventId schedule(Cycles at, Callback cb);

  /// Cancel a previously scheduled event. Returns true if the event was
  /// still pending (false if already fired or cancelled).
  bool cancel(EventId id);

  /// True while `id` is scheduled and neither fired nor cancelled.
  bool pending(EventId id) const {
    return pending_seqs_.count(id.seq) != 0;
  }

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Timestamp of the earliest pending event; Cycles::max() when empty.
  Cycles next_time() const;

  /// Pop and run the earliest pending event. Returns its timestamp.
  /// Precondition: !empty().
  Cycles pop_and_run();

 private:
  struct Entry {
    Cycles at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> pending_seqs_;
  std::uint64_t next_seq_{1};
  std::size_t live_count_{0};
};

}  // namespace asman::sim

// Tricky-legal fixture for the state-machine check: legal chains, guard
// shapes, and a knowledge-invalidation case that would be illegal if the
// walker (unsoundly) kept stale facts across an unaudited call.
// asman_lint must report zero findings here.
#include <cassert>
#include <cstdint>

namespace fixture {

enum class VcpuState : std::uint8_t { kRunning, kRunnable, kBlocked,
                                      kDestroyed };

struct Vcpu {
  VcpuState state{VcpuState::kRunnable};
  int where{0};
};

void set_state(Vcpu& v, VcpuState to);
bool dequeue(int where, Vcpu* v);  // audited seam: does not change state
void reschedule(Vcpu& v);          // NOT audited: may change state

// A full legal round trip, every hop checked against the shared spec.
void round_trip(Vcpu& v) {
  assert(v.state == VcpuState::kBlocked);
  set_state(v, VcpuState::kRunnable);
  set_state(v, VcpuState::kRunning);
  set_state(v, VcpuState::kRunnable);
  set_state(v, VcpuState::kBlocked);
}

// Negative guard whose branch only returns: after it, the state is known.
void wake(Vcpu& v) {
  if (v.state != VcpuState::kBlocked) return;
  set_state(v, VcpuState::kRunnable);
}

// Audited-seam calls (dequeue) keep knowledge alive across them.
void block_runnable(Vcpu& v) {
  switch (v.state) {
    case VcpuState::kRunnable: {
      const bool removed = dequeue(v.where, &v);
      assert(removed);
      (void)removed;
      set_state(v, VcpuState::kBlocked);
      break;
    }
    case VcpuState::kRunning:
    case VcpuState::kBlocked:
    case VcpuState::kDestroyed:
      break;
  }
}

// The escape hatch: reschedule(v) is outside the audited seam, so the
// kRunning fact must be dropped — the set_state below is indeterminable,
// not illegal. (With stale knowledge this would be flagged as
// kRunning -> kDestroyed.)
void retire(Vcpu& v) {
  assert(v.state == VcpuState::kRunning);
  reschedule(v);
  set_state(v, VcpuState::kDestroyed);
}

}  // namespace fixture

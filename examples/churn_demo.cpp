// Churn demo: runtime VM lifecycle churn end to end, in one run.
//
// Runs the churn scenario (the chaos base host plus an Elastic resize
// target) under ASMan: hot creates arrive throughout the run, some depart
// again, the Elastic VM is resized through 1-4 VCPUs, and the gang
// candidate is destroyed mid-gang — all legal scheduling events, audited
// live. Compose a fault class on top with --class, or run the
// admission-saturated arrival storm with --saturated to watch the
// controller reject tenants and the overload governor shed coscheduling.
//
// Shares its CLI shape with chaos_demo:
//
//   $ ./churn_demo [--class=NAME] [--vms=N] [--seed=N] [--list]
//                  [--saturated]
#include <cstdio>

#include "demo_cli.h"
#include "experiments/churn.h"
#include "experiments/tables.h"

using namespace asman;

int main(int argc, char** argv) {
  namespace ex = asman::experiments;

  const std::string usage = examples::demo_usage(
      "churn_demo", "compose a chaos class onto the churn (default: none)",
      "hot arrivals over the run (default: 6)", /*allow_saturated=*/true);
  examples::DemoOptions opt;
  if (!examples::parse_demo_args(argc, argv, opt, usage.c_str(),
                                 /*allow_saturated=*/true)) {
    return 2;
  }
  if (opt.list) {
    examples::print_chaos_classes();
    return 0;
  }

  ex::Scenario sc;
  const char* flavor = "fault-free";
  if (opt.saturated) {
    sc = ex::saturated_churn_scenario(core::SchedulerKind::kAsman, opt.seed);
    flavor = "saturated";
  } else {
    ex::ChurnConfig cfg;
    if (opt.vms > 0) cfg.arrivals = opt.vms;
    if (!opt.chaos.empty()) {
      ex::ChaosClass cls;
      if (!examples::lookup_chaos_class(opt.chaos, cls)) {
        std::fprintf(stderr, "unknown chaos class '%s'\n", opt.chaos.c_str());
        examples::print_chaos_classes();
        return 2;
      }
      sc = ex::churn_chaos_scenario(core::SchedulerKind::kAsman, cls,
                                    opt.seed, cfg);
      flavor = ex::to_string(cls);
    } else {
      sc = ex::churn_scenario(core::SchedulerKind::kAsman, opt.seed, cfg);
    }
  }
  sc.audit = true;  // run with the runtime invariant auditor attached
  const ex::RunResult r = ex::run_scenario(sc);

  std::printf("churn run: ASMan, %s, seed %llu, %0.2f simulated seconds\n\n",
              flavor, static_cast<unsigned long long>(opt.seed),
              r.elapsed_seconds);

  ex::TextTable lifecycle({"lifecycle event", "count"});
  lifecycle.add_row({"hot creates", std::to_string(r.vm_creates)});
  lifecycle.add_row({"destroys", std::to_string(r.vm_destroys)});
  lifecycle.add_row({"resizes", std::to_string(r.vm_resizes)});
  lifecycle.add_row({"admission rejects",
                     std::to_string(r.admission_rejects)});
  lifecycle.add_row({"overload sheds", std::to_string(r.overload_sheds)});
  lifecycle.add_row({"overload restores",
                     std::to_string(r.overload_restores)});
  lifecycle.add_row({"hypercalls bounced off tombstones",
                     std::to_string(r.hypercall_rejects)});
  std::printf("%s\n", lifecycle.str().c_str());

  // Every VM that ever existed reports under its stable VmId — destroyed
  // tenants keep their row (runtime up to destruction, online rate over
  // their lifetime) instead of vanishing from the result.
  ex::TextTable vms({"id", "VM", "fate", "runtime (s)", "online rate",
                     "work units"});
  for (const ex::VmResult& v : r.vms) {
    char rt[32];
    std::snprintf(rt, sizeof rt, "%.3f", v.runtime_seconds);
    vms.add_row({std::to_string(v.id), v.name,
                 v.destroyed ? "destroyed" : "alive", rt,
                 ex::fmt_pct(v.observed_online_rate),
                 std::to_string(v.work_units)});
  }
  std::printf("%s\n", vms.str().c_str());

  if (r.audit_checks > 0)
    std::printf("auditor: %llu checks, %llu violation(s)\n%s",
                static_cast<unsigned long long>(r.audit_checks),
                static_cast<unsigned long long>(r.audit_violations),
                r.audit_violations > 0 ? r.audit_summary.c_str() : "");

  std::printf(
      "\nEvery lifecycle operation above landed at a live scheduling "
      "event:\n"
      "new VMs were minted credits at the next accounting period without\n"
      "touching existing shares, destroyed VMs were drained from every "
      "run\n"
      "queue (the mid-gang destruction aborted its gang cleanly), and "
      "the\n"
      "auditor's shadow state machine followed every transition.\n");
  return 0;
}

// Memory-system contention: footprint registry, the per-accounting-period
// contention pass, and the pressure balancer (docs/MODEL.md §2.8).
//
// apply_contention is the ONLY writer of the pressure ledger
// (Vcpu::pressure_mark, Vm::pressure_{accounted,degraded,effective} and the
// machine totals) — asman-lint's audit-seam check enforces that lexically,
// the same way it pins credit writes to the accounting paths. The split is
// exact by construction: degraded is an integer floor of busy x ppm and
// effective is the difference, so accounted == degraded + effective can
// only break if someone bypasses this seam — which is precisely what the
// pressure-conservation invariant exists to catch.
#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

#include "vmm/hypervisor.h"

namespace asman::vmm {

namespace {

/// Balancer hysteresis, cooldown half: at most one home swap per this many
/// engine periods, so a borderline imbalance cannot ping-pong a VM between
/// sockets faster than its cache refills amortize.
constexpr std::uint64_t kPressureRebalanceCooldown = 4;

/// Balancer hysteresis, band half: the hottest socket must carry at least
/// this fraction of one LLC in *unserved* occupancy beyond the coolest
/// before a swap is considered (divisor applied to MachineConfig::llc_bytes).
constexpr std::uint64_t kPressureBandDivisor = 4;

const hw::memsys::MemFootprint kZeroFootprint{};

}  // namespace

void Hypervisor::set_vm_footprint(VmId id, const hw::memsys::MemFootprint& fp) {
  if (footprints_.size() <= id) footprints_.resize(id + 1);
  footprints_[id] = fp;
  if (fp.zero()) return;
  if (!footprints_seen_) {
    // First nonzero footprint: the machine must declare the finite
    // capacities the engine prices against. Zero capacities would silently
    // disable the engine while the workload model promises contention, so
    // they are counted, reported typed errors instead.
    for (const hw::ConfigIssue& issue :
         hw::validate_footprint_config(machine_, /*footprint_declared=*/true)) {
      ++footprint_config_errors_;
      note_trace(sim::TraceCat::kSched,
                 "footprint config error: " + issue.what);
    }
  }
  footprints_seen_ = true;
}

const hw::memsys::MemFootprint& Hypervisor::vm_footprint(VmId id) const {
  return id < footprints_.size() ? footprints_[id] : kZeroFootprint;
}

std::uint64_t Hypervisor::vcpu_llc_share(const Vcpu& v) const {
  const hw::memsys::MemFootprint& fp = vm_footprint(v.key.vm);
  if (fp.zero()) return 0;
  return hw::memsys::vcpu_ws_share(fp.working_set_bytes,
                                   vm(v.key.vm).num_vcpus(), v.key.idx);
}

void Hypervisor::apply_contention() {
  if (!pressure_cost_active()) return;
  // Engine input from authoritative placement: one VmLoad per VmId slot —
  // tombstones contribute nothing but keep indices aligned, so the auditor
  // can recompute the identical matrix from the same public state. Blocked
  // VCPUs keep their wake homes in the load (their data stays resident).
  std::vector<hw::memsys::VmLoad> loads(vms_.size());
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    const Vm& m = *vms_[i];
    if (!m.alive) continue;
    const hw::memsys::MemFootprint& fp = vm_footprint(m.id);
    if (fp.zero()) continue;
    hw::memsys::VmLoad& load = loads[i];
    load.fp = &footprints_[m.id];
    load.vcpu_llc.reserve(m.vcpus.size());
    load.vcpu_socket.reserve(m.vcpus.size());
    for (const Vcpu& c : m.vcpus) {
      load.vcpu_llc.push_back(topo_.llc_of(c.where));
      load.vcpu_socket.push_back(topo_.socket_of(c.where));
    }
  }
  hw::memsys::compute_contention(topo_, machine_.llc_bytes,
                                 machine_.socket_mem_bw_bytes_per_s, loads,
                                 pass_);
  ++pressure_periods_;

  // Ledger pass: split each VCPU's busy cycles since its mark into
  // effective + degraded at the slowdown its home domain earned this
  // period. Zero-footprint VMs are accounted at zero slowdown — their
  // cycles still enter the ledger, so conservation spans the whole fleet.
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    Vm& m = *vms_[i];
    if (!m.alive) continue;
    const bool has_fp = loads[i].fp != nullptr;
    for (Vcpu& c : m.vcpus) {
      const std::uint64_t delta = (c.total_online - c.pressure_mark).v;
      c.pressure_mark = c.total_online;
      if (delta == 0) continue;
      std::uint32_t ppm = 0;
      if (has_fp) {
        const std::uint32_t l = topo_.llc_of(c.where);
        const std::uint32_t s = topo_.socket_of(c.where);
        ppm = hw::memsys::slowdown_ppm(pass_.vm_llc_extra_miss[i][l],
                                       pass_.socket_bw_ppm[s]);
      }
      const std::uint64_t d = hw::memsys::degraded_cycles(delta, ppm);
      m.pressure_accounted += delta;
      m.pressure_degraded += d;
      m.pressure_effective += delta - d;
      pressure_accounted_total_ += delta;
      pressure_degraded_total_ += d;
      pressure_effective_total_ += delta - d;
    }
  }

  // Audit first, balance second: the sink recomputes the published pass
  // from authoritative placement, so homes must not move between
  // compute_contention and the hook. The balancer's swaps are then checked
  // by the regular full scans and the next engine pass.
  audit_contention();
  if (pressure_place_active()) maybe_rebalance_pressure();
}

void Hypervisor::maybe_rebalance_pressure() {
  const std::uint32_t n_sockets = topo_.num_sockets();
  if (n_sockets < 2) return;
  if (last_pressure_rebalance_period_ != 0 &&
      pressure_periods_ - last_pressure_rebalance_period_ <
          kPressureRebalanceCooldown)
    return;

  // Pressure signal per socket: occupancy bytes demanded but not granted
  // on its LLC domains. (Bandwidth relief follows occupancy relief — the
  // extra misses an evicted set suffers *are* the extra bus traffic.)
  std::vector<std::uint32_t> socket_of_llc(topo_.num_llcs(), 0);
  for (PcpuId p = 0; p < machine_.num_pcpus; ++p)
    socket_of_llc[topo_.llc_of(p)] = topo_.socket_of(p);
  std::vector<std::uint64_t> unserved(n_sockets, 0);
  for (std::uint32_t l = 0; l < topo_.num_llcs(); ++l)
    unserved[socket_of_llc[l]] += pass_.llc_demand[l] - pass_.llc_granted[l];

  std::uint32_t hot = 0;
  std::uint32_t cool = 0;
  for (std::uint32_t s = 1; s < n_sockets; ++s) {
    if (unserved[s] > unserved[hot]) hot = s;
    if (unserved[s] < unserved[cool]) cool = s;
  }
  // Hysteresis band: only divergence past a quarter-LLC of unserved bytes
  // justifies paying a migration (and the cooldown above keeps even that
  // from oscillating).
  if (unserved[hot] <
      unserved[cool] + machine_.llc_bytes / kPressureBandDivisor)
    return;

  // Destination headroom: the cool socket's LLC capacity minus what its
  // domains already hold. A victim that does not fit would only trade one
  // overflow for another (and then swap straight back after the cooldown
  // — the ping-pong the hysteresis exists to prevent), so oversized VMs
  // are never balancer candidates.
  std::uint64_t cool_capacity = 0;
  std::uint64_t cool_demand = 0;
  for (std::uint32_t l = 0; l < topo_.num_llcs(); ++l) {
    if (socket_of_llc[l] != cool) continue;
    cool_capacity += machine_.llc_bytes;
    cool_demand += pass_.llc_demand[l];
  }

  // Victim: the footprint-heaviest non-gang VM homed (by VCPU plurality)
  // on the hot socket that still fits the cool socket's headroom. Gang
  // VMs are excluded — their placement belongs to Algorithm 3's
  // relocation, and yanking members would undo the pairwise-distinct
  // packing the topology-placement invariant checks.
  Vm* victim = nullptr;
  for (const auto& mp : vms_) {
    Vm& m = *mp;
    if (!m.alive || m.paused || cosched_eligible(m)) continue;
    const hw::memsys::MemFootprint& fp = vm_footprint(m.id);
    if (fp.zero()) continue;
    if (cool_demand + fp.working_set_bytes > cool_capacity) continue;
    std::vector<std::uint32_t> homes(n_sockets, 0);
    for (const Vcpu& c : m.vcpus) ++homes[topo_.socket_of(c.where)];
    const std::uint32_t home_socket = static_cast<std::uint32_t>(
        std::max_element(homes.begin(), homes.end()) - homes.begin());
    if (home_socket != hot) continue;
    if (victim == nullptr ||
        fp.working_set_bytes >
            vm_footprint(victim->id).working_set_bytes)
      victim = &m;
  }
  if (victim == nullptr) return;
  if (rebalance_vm_to_socket(*victim, cool)) {
    ++pressure_rebalances_;
    last_pressure_rebalance_period_ = pressure_periods_;
    note_trace(sim::TraceCat::kSched,
               victim->name + " rebalanced to socket " + std::to_string(cool) +
                   " (pressure)");
  }
}

bool Hypervisor::rebalance_vm_to_socket(Vm& v, std::uint32_t socket) {
  bool moved = false;
  for (Vcpu& c : v.vcpus) {
    // Running members stay (a pressure swap is advisory, never a preempt);
    // they follow at their next natural requeue via the steal gate's view
    // of the new demand. Crashed members are parked forever — moving their
    // wake home is pointless.
    if (c.state == VcpuState::kRunning || c.crashed) continue;
    if (topo_.socket_of(c.where) == socket) continue;
    // Least-loaded online PCPU on the destination socket (tie: lowest id).
    PcpuId dest = machine_.num_pcpus;
    std::size_t best_load = 0;
    for (const PcpuId p : topo_.pcpus_in_socket(socket)) {
      if (!pcpus_[p].online) continue;
      const std::size_t load = pcpus_[p].runq.size();
      if (dest == machine_.num_pcpus || load < best_load) {
        dest = p;
        best_load = load;
      }
    }
    if (dest == machine_.num_pcpus) return moved;  // socket fully offline
    if (c.state == VcpuState::kRunnable) {
      const bool removed = dequeue(c.where, &c);
      assert(removed);
      (void)removed;
      enqueue(dest, &c);
      ++c.migrations;
      ++migrations_;
      note_migration(c, c.where, dest);
    }
    c.where = dest;  // blocked VCPUs just get a new wake-up home
    moved = true;
  }
  if (moved) audit_relocated(v.id);
  return moved;
}

}  // namespace asman::vmm

// Processor-topology subsystem tests: the Topology shape/distance model,
// typed MachineConfig validation, socket-aware boot placement and gang
// relocation, the warm-cache steal gate, the cost counters, and audited
// topology runs (gang coherence and the topology-placement invariant
// hold under aware placement and under socket-offline chaos).
#include "hw/topology.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/schedulers.h"
#include "experiments/chaos.h"
#include "experiments/topology.h"
#include "hw/machine.h"
#include "simcore/simulator.h"
#include "vmm/hypervisor.h"

namespace asman {
namespace {

namespace ex = asman::experiments;

sim::Cycles seconds(double s) { return sim::kDefaultClock.from_seconds_f(s); }

constexpr core::SchedulerKind kAllScheds[] = {core::SchedulerKind::kCredit,
                                              core::SchedulerKind::kCon,
                                              core::SchedulerKind::kAsman};

TEST(TopologyShape, PaperTestbedIsTwoByTwoByTwo) {
  const hw::Topology t = hw::Topology::paper();
  EXPECT_TRUE(t.specified());
  EXPECT_FALSE(t.is_flat());
  EXPECT_EQ(t.num_pcpus(), 8u);
  EXPECT_EQ(t.num_sockets(), 2u);
  EXPECT_EQ(t.num_llcs(), 4u);
  // Socket-major ids: P0-P3 on socket 0, P4-P7 on socket 1.
  for (hw::PcpuId p = 0; p < 8; ++p)
    EXPECT_EQ(t.socket_of(p), p < 4 ? 0u : 1u) << "P" << p;
  EXPECT_EQ(t.pcpus_in_socket(1).front(), 4u);
  EXPECT_EQ(t.pcpus_in_socket(1).size(), 4u);
}

TEST(TopologyShape, DistanceClassesMatchTheHarpertownLayout) {
  const hw::Topology t = hw::Topology::paper();
  EXPECT_EQ(t.distance(0, 0), hw::TopoDistance::kSelf);
  EXPECT_EQ(t.distance(0, 1), hw::TopoDistance::kSameLlc);   // shared L2
  EXPECT_EQ(t.distance(0, 2), hw::TopoDistance::kSameSocket);
  EXPECT_EQ(t.distance(0, 4), hw::TopoDistance::kCrossSocket);
  EXPECT_EQ(t.distance(4, 0), hw::TopoDistance::kCrossSocket);
  EXPECT_STREQ(hw::to_string(hw::TopoDistance::kSelf), "self");
  EXPECT_STREQ(hw::to_string(hw::TopoDistance::kSameLlc), "same-llc");
  EXPECT_STREQ(hw::to_string(hw::TopoDistance::kSameSocket), "same-socket");
  EXPECT_STREQ(hw::to_string(hw::TopoDistance::kCrossSocket),
               "cross-socket");
}

TEST(TopologyShape, FlatTopologyCollapsesEveryDistance) {
  const hw::Topology t = hw::Topology::flat(4);
  EXPECT_TRUE(t.specified());
  EXPECT_TRUE(t.is_flat());
  EXPECT_EQ(t.num_sockets(), 1u);
  for (hw::PcpuId a = 0; a < 4; ++a)
    for (hw::PcpuId b = 0; b < 4; ++b)
      EXPECT_EQ(t.distance(a, b), a == b ? hw::TopoDistance::kSelf
                                         : hw::TopoDistance::kSameLlc);
  EXPECT_FALSE(hw::Topology{}.specified());
}

TEST(ConfigValidation, DefaultConfigIsValid) {
  EXPECT_TRUE(hw::validate_config(hw::MachineConfig{}).empty());
}

TEST(ConfigValidation, EveryZeroFieldIsACountedTypedError) {
  hw::MachineConfig m;
  m.num_pcpus = 0;
  m.freq_hz = 0;
  m.slot_ms = 0;
  m.slots_per_accounting = 0;
  m.slots_per_timeslice = 0;
  const std::vector<hw::ConfigIssue> issues = hw::validate_config(m);
  ASSERT_EQ(issues.size(), 5u);
  EXPECT_EQ(issues[0].kind, hw::ConfigError::kNoPcpus);
  EXPECT_EQ(issues[1].kind, hw::ConfigError::kZeroFrequency);
  EXPECT_EQ(issues[2].kind, hw::ConfigError::kZeroSlot);
  EXPECT_EQ(issues[3].kind, hw::ConfigError::kZeroAccounting);
  EXPECT_EQ(issues[4].kind, hw::ConfigError::kZeroTimeslice);
  for (const hw::ConfigIssue& i : issues) EXPECT_FALSE(i.what.empty());
  EXPECT_STREQ(hw::to_string(hw::ConfigError::kNoPcpus), "no-pcpus");
}

TEST(ConfigValidation, TopologyLeafCountMustMatchPcpuCount) {
  hw::MachineConfig m;
  m.num_pcpus = 4;
  m.topology = hw::Topology::paper();  // 8 leaves over 4 PCPUs
  const std::vector<hw::ConfigIssue> issues = hw::validate_config(m);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, hw::ConfigError::kTopologyLeafMismatch);
  EXPECT_NE(issues[0].what.find("8"), std::string::npos);
  EXPECT_NE(issues[0].what.find("4"), std::string::npos);
}

TEST(ConfigValidation, HypervisorRefusesToConstructOverABrokenConfig) {
  sim::Simulator s;
  hw::MachineConfig m;
  m.num_pcpus = 0;
  EXPECT_THROW(vmm::CreditScheduler(s, m, vmm::SchedMode::kWorkConserving),
               std::invalid_argument);
  hw::MachineConfig mismatch;
  mismatch.num_pcpus = 4;
  mismatch.topology = hw::Topology::paper();
  EXPECT_THROW(
      vmm::CreditScheduler(s, mismatch, vmm::SchedMode::kWorkConserving),
      std::invalid_argument);
}

hw::MachineConfig paper_machine() {
  hw::MachineConfig m;
  m.num_pcpus = 8;
  m.topology = hw::Topology::paper();
  return m;
}

TEST(TopologyPlacement, BootPlacementPacksEachVmIntoItsStartingSocket) {
  sim::Simulator s;
  core::AdaptiveScheduler hv(s, paper_machine(),
                             vmm::SchedMode::kNonWorkConserving);
  const vmm::VmId dom0 = hv.create_vm("Dom0", 256, 2);
  const vmm::VmId gang = hv.create_vm("Gang", 256, 4);
  // Socket-major round robin starting at socket (id % sockets): Dom0
  // (id 0) packs into socket 0, the gang (id 1) fills socket 1 exactly.
  EXPECT_EQ(hv.vm(dom0).vcpus[0].where, 0u);
  EXPECT_EQ(hv.vm(dom0).vcpus[1].where, 1u);
  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_EQ(hv.vm(gang).vcpus[i].where, 4u + i) << "gang VCPU " << i;
}

TEST(TopologyPlacement, BlindPlacementMatchesTheFlatScheduler) {
  // topology_aware=false must reproduce flat boot placement exactly: the
  // cost model may charge, but homes are chosen like pre-topology builds.
  sim::Simulator s_flat, s_topo;
  hw::MachineConfig flat;
  flat.num_pcpus = 8;
  vmm::CreditScheduler hv_flat(s_flat, flat,
                               vmm::SchedMode::kNonWorkConserving);
  vmm::CreditScheduler hv_topo(s_topo, paper_machine(),
                               vmm::SchedMode::kNonWorkConserving);
  hv_topo.set_topology_aware(false);
  for (vmm::Hypervisor* hv : {static_cast<vmm::Hypervisor*>(&hv_flat),
                              static_cast<vmm::Hypervisor*>(&hv_topo)}) {
    hv->create_vm("Dom0", 256, 2);
    hv->create_vm("Gang", 256, 4);
    hv->create_vm("Hog", 128, 3);
  }
  for (vmm::VmId id = 0; id < 3; ++id)
    for (std::uint32_t i = 0; i < hv_flat.vm(id).num_vcpus(); ++i)
      EXPECT_EQ(hv_flat.vm(id).vcpus[i].where, hv_topo.vm(id).vcpus[i].where)
          << "v" << id << "." << i;
}

TEST(TopologyPlacement, HighVcrdRelocationPacksTheGangIntoOneSocket) {
  sim::Simulator s;
  core::AdaptiveScheduler hv(s, paper_machine(),
                             vmm::SchedMode::kNonWorkConserving);
  hv.create_vm("Dom0", 256, 2);
  const vmm::VmId gang = hv.create_vm("Gang", 256, 4);
  hv.start();
  s.run_until(seconds(0.1));
  // Park every member so no running VCPU pins its socket: the relocation
  // starts from a clean slate and the greedy socket choice is on its own.
  for (std::uint32_t i = 0; i < 4; ++i) hv.vcpu_block(gang, i);
  hv.do_vcrd_op(gang, vmm::Vcrd::kHigh);
  ASSERT_TRUE(hv.gang_scheduled(gang));
  // Pairwise-distinct PCPUs (Algorithm 3's contract) inside one socket
  // (the topology extension): a 4-VCPU gang fits one Harpertown socket.
  const vmm::Vm& v = hv.vm(gang);
  std::vector<bool> used(8, false);
  std::vector<bool> sockets(2, false);
  for (const vmm::Vcpu& c : v.vcpus) {
    EXPECT_FALSE(used[c.where]) << "two gang members on P" << c.where;
    used[c.where] = true;
    sockets[hv.topology().socket_of(c.where)] = true;
  }
  EXPECT_EQ(static_cast<int>(sockets[0]) + static_cast<int>(sockets[1]), 1)
      << "a 4-VCPU gang fits one Harpertown socket and must not span two";
  EXPECT_FALSE(hv.placement_spans_excess_sockets(gang));
}

TEST(TopologyPlacement, RelocationNeverSpreadsPastTheRunningMembersPins) {
  // Live variant: after 0.1 s of drift some members are mid-slot and pin
  // their sockets. Relocation may not always reach a single socket, but it
  // must never exceed the minimal socket set the checker computes.
  sim::Simulator s;
  core::AdaptiveScheduler hv(s, paper_machine(),
                             vmm::SchedMode::kNonWorkConserving);
  hv.create_vm("Dom0", 256, 2);
  const vmm::VmId gang = hv.create_vm("Gang", 256, 4);
  hv.start();
  s.run_until(seconds(0.1));
  hv.do_vcrd_op(gang, vmm::Vcrd::kHigh);
  ASSERT_TRUE(hv.gang_scheduled(gang));
  const vmm::Vm& v = hv.vm(gang);
  std::vector<bool> used(8, false);
  for (const vmm::Vcpu& c : v.vcpus) {
    EXPECT_FALSE(used[c.where]) << "two gang members on P" << c.where;
    used[c.where] = true;
  }
  EXPECT_FALSE(hv.placement_spans_excess_sockets(gang));
}

TEST(TopologySteal, DefaultPenaltiesNeverRejectASteal) {
  // 20/60 us penalties against a 10 ms slot: the gate exists but never
  // fires at the paper's cost scale.
  const ex::RunResult rr =
      ex::run_scenario(ex::topology_scenario(core::SchedulerKind::kAsman, 1));
  EXPECT_EQ(rr.topology_steal_rejects, 0u);
}

TEST(TopologySteal, CrankedPenaltiesGateCostlySteals) {
  // With a refill cost past one slot, stealing a warm VCPU across domains
  // loses more than it gains: the gate must start refusing candidates.
  ex::Scenario sc = ex::topology_scenario(core::SchedulerKind::kAsman, 1);
  sc.machine.cross_llc_penalty_us = 60'000;
  sc.machine.cross_socket_penalty_us = 60'000;
  sc.machine.warm_cache_slots = 50;
  const ex::RunResult rr = ex::run_scenario(sc);
  EXPECT_GT(rr.topology_steal_rejects, 0u);
}

TEST(TopologyCounters, FlatRunsPayNoMigrationCost) {
  // The 4-PCPU chaos base host is flat: every topology counter must stay
  // zero (the bit-compat contract's observable face).
  const ex::RunResult rr =
      ex::run_scenario(ex::chaos_base_scenario(core::SchedulerKind::kAsman, 1));
  EXPECT_EQ(rr.cross_llc_migrations, 0u);
  EXPECT_EQ(rr.cross_socket_migrations, 0u);
  EXPECT_EQ(rr.migration_penalty_cycles, 0u);
  EXPECT_EQ(rr.topology_steal_rejects, 0u);
  for (const ex::VmResult& v : rr.vms) {
    EXPECT_EQ(v.cross_llc_migrations, 0u);
    EXPECT_EQ(v.cross_socket_migrations, 0u);
    EXPECT_EQ(v.migration_penalty_cycles, 0u);
  }
}

TEST(TopologyCounters, PerVmCountersSumToTheRunTotals) {
  const ex::RunResult rr =
      ex::run_scenario(ex::topology_scenario(core::SchedulerKind::kAsman, 1));
  std::uint64_t llc = 0, sock = 0, pen = 0;
  for (const ex::VmResult& v : rr.vms) {
    llc += v.cross_llc_migrations;
    sock += v.cross_socket_migrations;
    pen += v.migration_penalty_cycles;
  }
  EXPECT_EQ(llc, rr.cross_llc_migrations);
  EXPECT_EQ(sock, rr.cross_socket_migrations);
  EXPECT_EQ(pen, rr.migration_penalty_cycles);
}

TEST(TopologyPlacement, AwareAsmanUndercutsBlindCrossSocketMigrations) {
  // The tentpole's headline: at an identical cost model, socket-aware
  // ASMan placement migrates across the FSB less than the blind baseline.
  const ex::RunResult aware = ex::run_scenario(
      ex::topology_scenario(core::SchedulerKind::kAsman, 42, true));
  const ex::RunResult blind = ex::run_scenario(
      ex::topology_scenario(core::SchedulerKind::kAsman, 42, false));
  EXPECT_LT(aware.cross_socket_migrations, blind.cross_socket_migrations);
}

TEST(TopologyAudit, AwareTopologyRunsAuditClean) {
  // The PR-1 would_collide rule (no two gang members share a home) and
  // the new topology-placement invariant both hold under aware placement,
  // for every scheduler.
  for (const core::SchedulerKind sched : kAllScheds) {
    ex::Scenario sc = ex::topology_scenario(sched, 1);
    sc.audit = true;
    const ex::RunResult rr = ex::run_scenario(sc);
    EXPECT_EQ(rr.audit_violations, 0u)
        << core::to_string(sched) << "\n" << rr.audit_summary;
#ifdef ASMAN_AUDIT_ENABLED
    EXPECT_GT(rr.audit_checks, 0u) << core::to_string(sched);
#endif
  }
}

TEST(TopologyChaos, SocketOfflineAuditsCleanForEveryScheduler) {
  // Socket 1 goes away in a staggered burst (P7 permanently): evacuation,
  // repacking onto socket 0, and re-spreading on return all audit clean.
  for (const core::SchedulerKind sched : kAllScheds) {
    ex::Scenario sc =
        ex::chaos_scenario(sched, ex::ChaosClass::kSocketOffline, 1);
    sc.audit = true;
    const ex::RunResult rr = ex::run_scenario(sc);
    EXPECT_GT(rr.pcpu_offline_events, 0u) << core::to_string(sched);
    EXPECT_GT(rr.evacuated_vcpus, 0u) << core::to_string(sched);
    EXPECT_EQ(rr.audit_violations, 0u)
        << core::to_string(sched) << "\n" << rr.audit_summary;
  }
}

}  // namespace
}  // namespace asman

// Seeded violations for thread-safety / rng-discipline: pool workers
// touching shared state the wrong way. tests/lint_test.cpp asserts 100%
// detection — the two in-lambda sites and the cross-TU static write.
#include <cstddef>
#include <vector>

namespace fixture {

struct ThreadPool {
  template <class F>
  void parallel_for(std::size_t n, F fn);
};

struct Rng {
  unsigned next();
};

// Hidden shared channel: a file-scope mutable static, two calls deep from
// the worker lambda. Only the cross-TU call-graph pass can see this.
static long g_total_events = 0;
void note_event() { g_total_events += 1; }
double simulate_point(std::size_t i);

void sweep(ThreadPool& pool, std::vector<double>& out, double& total,
           Rng& shared_rng) {
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] = simulate_point(i);  // fine: task-indexed slot
    total += out[i];  // flagged: unlocked shared accumulation
    out[0] = total;   // flagged: fixed index, not derived from the task
    (void)shared_rng.next();  // flagged: shared RNG stream across workers
    note_event();  // flagged (cross-TU): reaches the static write
  });
}

}  // namespace fixture

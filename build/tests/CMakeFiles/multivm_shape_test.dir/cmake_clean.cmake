file(REMOVE_RECURSE
  "CMakeFiles/multivm_shape_test.dir/multivm_shape_test.cpp.o"
  "CMakeFiles/multivm_shape_test.dir/multivm_shape_test.cpp.o.d"
  "multivm_shape_test"
  "multivm_shape_test.pdb"
  "multivm_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multivm_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Figure 9: slowdowns of all seven NAS parallel benchmarks.
//
// Slowdown of benchmark B at online rate r = T_sched(B, r) / T_credit(B,
// 100%). Panels (a)-(c): per-benchmark slowdown at 66.7/40/22.2 % under
// Credit and ASMan; panel (d): the per-rate average. Expected shape:
// ASMan <= Credit everywhere; EP (no synchronization) is insensitive to
// the scheduler; the sync-heavy codes (LU, CG, SP) degrade worst under
// Credit; at 22.2 % ASMan recovers a large fraction of the excess
// slowdown.
#include "bench_util.h"
#include "workloads/npb.h"

using namespace asman;
using namespace asman::bench;

namespace {

constexpr core::SchedulerKind kScheds[] = {core::SchedulerKind::kCredit,
                                           core::SchedulerKind::kAsman};

std::string label(workloads::NpbBenchmark b, core::SchedulerKind k,
                  double rate) {
  return std::string(workloads::to_string(b)) + "/" + rate_label(k, rate);
}

Sweep build_sweep() {
  Sweep s;
  for (workloads::NpbBenchmark b : workloads::kAllNpb) {
    // Baseline: Credit at 100 %.
    s.add(label(b, core::SchedulerKind::kCredit, 1.0),
          ex::single_vm_scenario(core::SchedulerKind::kCredit, 256,
                                 ex::npb_factory(b)));
    for (core::SchedulerKind k : kScheds) {
      for (const ex::RatePoint& rp : ex::kRatePoints) {
        if (rp.rate == 1.0) continue;
        s.add(label(b, k, rp.rate),
              ex::single_vm_scenario(k, rp.weight, ex::npb_factory(b)));
      }
    }
  }
  return s;
}

double runtime_of(const Sweep& s, const std::string& l) {
  return s.get(l).run.vm("V1").runtime_seconds;
}

void annotate(const PointResult& pr, benchmark::State& st) {
  st.counters["runtime_s"] = pr.run.vm("V1").runtime_seconds;
}

void print_tables(const Sweep& s) {
  for (const ex::RatePoint& rp : ex::kRatePoints) {
    if (rp.rate == 1.0) continue;
    std::printf("\n== Figure 9: NPB slowdowns @ %s online rate ==\n",
                ex::fmt_pct(rp.rate).c_str());
    ex::TextTable t({"benchmark", "Credit", "ASMan", "ideal"});
    double sum_c = 0, sum_a = 0;
    for (workloads::NpbBenchmark b : workloads::kAllNpb) {
      const double base =
          runtime_of(s, label(b, core::SchedulerKind::kCredit, 1.0));
      const double c =
          runtime_of(s, label(b, core::SchedulerKind::kCredit, rp.rate)) /
          base;
      const double a =
          runtime_of(s, label(b, core::SchedulerKind::kAsman, rp.rate)) /
          base;
      sum_c += c;
      sum_a += a;
      t.add_row({workloads::to_string(b), ex::fmt_f(c), ex::fmt_f(a),
                 ex::fmt_f(1.0 / rp.rate)});
    }
    const double n = static_cast<double>(workloads::kAllNpb.size());
    t.add_row({"average", ex::fmt_f(sum_c / n), ex::fmt_f(sum_a / n),
               ex::fmt_f(1.0 / rp.rate)});
    std::printf("%s", t.str().c_str());
    std::printf("  (Fig 9d) average slowdown saving: %s\n",
                ex::fmt_pct(1.0 - sum_a / sum_c).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep = build_sweep();
  return run_bench_main(argc, argv, sweep, "fig09", annotate, print_tables);
}

// value-range: interval abstract interpretation proving the credit /
// pressure / contention arithmetic safe for EVERY configuration the
// runtime admits (asman-prove; docs/MODEL.md "Static guarantees").
//
// The admissible config space is src/core/bounds_spec.h — the same table
// hw::validate_config() enforces and the VMM's knob resolution clamps
// into, so the proof space and the admission space cannot drift. Each
// function's CFG is walked to a fixpoint over an interval environment
// (branch-condition refinement on if/while/for edges, loop-variable
// widening on back edges), and every store, narrowing cast and
// known-width arithmetic op is checked against its static type. A finding
// carries the witness: the concrete config corner (freq_hz = 10 GHz,
// slot_ms = 1000, ...) that drives the expression out of range — the
// value-range analogue of credit-flow's path witness.
//
// Scope: statements tainted by the credit/pressure vocabulary, by a value
// read from the bounds spec, or by sitting inside one of audit-seam's
// audited writer functions (the seams where mis-priced arithmetic would
// corrupt the ledgers the other rules defend). Untainted overflow is the
// compiler's and UBSan's problem; this rule is the scheduler's proof.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "absint.h"
#include "analyzer.h"
#include "flow.h"

namespace asman_lint {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == Tok::kPunct && t.text == s;
}

constexpr int kWidenAfterVisits = 4;

/// Condition sub-range of a kBranch node (`if ( C )` / `while ( C )`):
/// tokens strictly inside the parens. Returns false if malformed.
bool cond_range(const std::vector<Token>& t, const CfgNode& n,
                std::size_t& cb, std::size_t& ce) {
  std::size_t open = n.tok_begin;
  while (open < n.tok_end && !is_punct(t[open], "(")) ++open;
  if (open >= n.tok_end) return false;
  const std::size_t close = match_forward(t, open);
  if (close >= n.tok_end) return false;
  cb = open + 1;
  ce = close;
  return cb < ce;
}

/// The three clauses of a for-head `for ( init ; cond ; incr )`; a
/// range-for reports only `range_var` (set to top on entry).
struct ForParts {
  std::size_t init_b{0}, init_e{0};
  std::size_t cond_b{0}, cond_e{0};
  std::size_t incr_b{0}, incr_e{0};
  std::string range_var;
  bool ok{false};
};

ForParts for_parts(const std::vector<Token>& t, const CfgNode& n) {
  ForParts p;
  std::size_t open = n.tok_begin;
  while (open < n.tok_end && !is_punct(t[open], "(")) ++open;
  if (open >= n.tok_end) return p;
  const std::size_t close = match_forward(t, open);
  if (close >= n.tok_end) return p;
  std::vector<std::size_t> cuts;
  int depth = 0;
  std::size_t colon = close;
  for (std::size_t i = open + 1; i < close; ++i) {
    if (t[i].kind != Tok::kPunct) continue;
    const std::string& x = t[i].text;
    if (x == "(" || x == "[" || x == "{") ++depth;
    else if (x == ")" || x == "]" || x == "}") --depth;
    else if (depth == 0 && x == ";") cuts.push_back(i);
    else if (depth == 0 && x == ":" && colon == close) colon = i;
  }
  if (cuts.size() == 2) {
    p.init_b = open + 1;
    p.init_e = cuts[0];
    p.cond_b = cuts[0] + 1;
    p.cond_e = cuts[1];
    p.incr_b = cuts[1] + 1;
    p.incr_e = close;
    p.ok = true;
    return p;
  }
  if (cuts.empty() && colon < close) {  // range-for
    for (std::size_t i = open + 1; i < colon; ++i)
      if (t[i].kind == Tok::kIdent) p.range_var = t[i].text;
    p.ok = true;
  }
  return p;
}

/// Loop-variable widening for a back edge into a for-head: the increment
/// clause runs an unknown number of times, so the variable it mutates is
/// unbounded in its direction of travel.
void widen_loop_var(const std::vector<Token>& t, const ForParts& p,
                    Env& env) {
  if (!p.range_var.empty()) {
    auto it = env.vars.find(p.range_var);
    if (it != env.vars.end()) it->second.known = false;
    return;
  }
  std::string var;
  bool up = false, down = false;
  for (std::size_t i = p.incr_b; i < p.incr_e; ++i) {
    if (var.empty() && t[i].kind == Tok::kIdent) var = t[i].text;
    if (t[i].kind == Tok::kPunct) {
      if (t[i].text == "++" || t[i].text == "+=") up = true;
      if (t[i].text == "--" || t[i].text == "-=") down = true;
    }
  }
  if (var.empty()) return;
  auto it = env.vars.find(var);
  if (it == env.vars.end() || !it->second.known) return;
  if (up || !down) it->second.hi = kAbsInf;
  if (down || !up) it->second.lo = -kAbsInf;
  it->second.wit_lo.clear();
  it->second.wit_hi.clear();
}

/// Entry-edge transfer for a for-head: run the init clause (or bind the
/// range-for variable as unknown).
void enter_for(const Evaluator& ev, const std::vector<Token>& t,
               const ForParts& p, Env& env) {
  if (!p.range_var.empty()) {
    env.vars[p.range_var] = AbsVal::top();
    return;
  }
  if (p.init_b < p.init_e) ev.transfer_stmt(t, p.init_b, p.init_e, env);
}

bool stmt_lexically_tainted(const std::vector<Token>& t, std::size_t b,
                            std::size_t e) {
  for (std::size_t i = b; i < e; ++i)
    if (t[i].kind == Tok::kIdent && taints_value(t[i].text)) return true;
  return false;
}

void report_violation(const AnalysisContext& ctx, const RangeViolation& v,
                      std::set<std::string>& seen) {
  const std::string key =
      std::to_string(v.line) + "|" + v.expr + "|" + width_name(v.width);
  if (!seen.insert(key).second) return;
  Finding f;
  f.file = ctx.unit.display_path;
  f.line = v.line;
  f.check = "value-range";
  f.message = "'" + v.expr + "' can " +
              (v.narrowing ? std::string("escape a narrowing store to ")
                           : std::string("overflow ")) +
              width_name(v.width) + ": the admissible config space proves "
              "range [" + wide_str(v.lo) + ", " + wide_str(v.hi) +
              "] vs the type's [" + wide_str(width_min(v.width)) + ", " +
              wide_str(width_max(v.width)) + "]; widen the arithmetic or "
              "tighten src/core/bounds_spec.h";
  f.trace.push_back(
      {v.line, "proved interval [" + wide_str(v.lo) + ", " +
                   wide_str(v.hi) + "] for '" + v.expr + "'"});
  for (const WitnessBinding& w : v.witness)
    f.trace.push_back(
        {v.line, "witness config: " + w.name + " = " +
                     std::to_string(w.value)});
  if (v.witness.empty())
    f.trace.push_back({v.line, "witness: escapes for every admissible "
                               "config (no config corner needed)"});
  ctx.report(std::move(f));
}

}  // namespace

void check_value_range(const AnalysisContext& ctx, const ValueModel& model) {
  const BoundsSpec& spec = bounds_spec(ctx.options);
  if (!spec.error.empty()) return;  // loud-fail is reported once, in run()
  const Evaluator ev(spec, model);
  const std::vector<Token>& t = ctx.unit.toks;
  const std::vector<std::string>& universe =
      vcpu_transition_spec(ctx.options).states;
  const std::vector<std::string>& seams = audited_value_seams();
  std::set<std::string> seen;

  for (const FunctionSpan& fn : ctx.functions.spans()) {
    if (fn.end <= fn.begin + 2) continue;
    bool in_seam = false;
    for (const std::string& s : seams)
      in_seam = in_seam || qualified_suffix_match(fn.name, s);

    const Cfg cfg = build_cfg(t, fn.begin, fn.end, universe);
    const std::size_t n_nodes = cfg.nodes.size();
    std::vector<std::vector<std::size_t>> preds(n_nodes);
    for (std::size_t i = 0; i < n_nodes; ++i)
      for (std::size_t s : cfg.nodes[i].succ) preds[s].push_back(i);

    // Per-node for-head decomposition, computed once.
    std::map<std::size_t, ForParts> fors;
    for (std::size_t i = 0; i < n_nodes; ++i)
      if (cfg.nodes[i].kind == CfgNodeKind::kForHead)
        fors[i] = for_parts(t, cfg.nodes[i]);

    std::vector<Env> in(n_nodes);
    for (Env& e : in) e.unreachable = true;  // not yet reached
    in[cfg.entry].unreachable = false;
    std::vector<int> visits(n_nodes, 0);
    std::vector<std::size_t> work{cfg.entry};

    // Edge function: out-env of `from` as seen along the edge to `to`.
    auto edge_env = [&](std::size_t from, std::size_t to) -> Env {
      Env env = in[from];
      const CfgNode& nf = cfg.nodes[from];
      if (env.unreachable) return env;
      if (nf.kind == CfgNodeKind::kPlain) {
        if (nf.tok_begin < nf.tok_end)
          ev.transfer_stmt(t, nf.tok_begin, nf.tok_end, env);
      } else if (nf.kind == CfgNodeKind::kBranch) {
        std::size_t cb = 0, ce = 0;
        if (cond_range(t, nf, cb, ce)) {
          const bool taken = !nf.succ.empty() && to == nf.succ[0];
          ev.refine(t, cb, ce, taken, env);
        }
      } else {  // kForHead: out edges carry the condition refinement
        auto it = fors.find(from);
        if (it != fors.end() && it->second.ok &&
            it->second.cond_b < it->second.cond_e) {
          const bool taken = !nf.succ.empty() && to == nf.succ[0];
          ev.refine(t, it->second.cond_b, it->second.cond_e, taken, env);
        }
      }
      // Entering a for-head from outside the loop runs the init clause;
      // re-entering along a back edge widens the loop variable instead.
      const CfgNode& nt = cfg.nodes[to];
      if (nt.kind == CfgNodeKind::kForHead) {
        auto it = fors.find(to);
        if (it != fors.end() && it->second.ok) {
          if (from < to)
            enter_for(ev, t, it->second, env);
          else
            widen_loop_var(t, it->second, env);
        }
      }
      return env;
    };

    std::size_t budget = n_nodes * 64 + 256;
    while (!work.empty() && budget-- > 0) {
      const std::size_t n = work.back();
      work.pop_back();
      for (std::size_t s : cfg.nodes[n].succ) {
        Env e = edge_env(n, s);
        Env joined = join_envs(in[s], e);
        if (visits[s] > kWidenAfterVisits && !in[s].unreachable) {
          for (auto& [name, v] : joined.vars) {
            auto old = in[s].vars.find(name);
            if (old == in[s].vars.end() || !old->second.known) continue;
            if (!v.known) continue;
            if (v.lo < old->second.lo) v.lo = -kAbsInf;
            if (v.hi > old->second.hi) v.hi = kAbsInf;
          }
        }
        if (!joined.same_ranges(in[s])) {
          in[s] = std::move(joined);
          ++visits[s];
          work.push_back(s);
        }
      }
    }

    // Reporting pass: evaluate each reachable node once under its fixpoint
    // in-env and harvest proved violations from tainted statements.
    for (std::size_t i = 0; i < n_nodes; ++i) {
      const CfgNode& node = cfg.nodes[i];
      if (in[i].unreachable || node.tok_begin >= node.tok_end) continue;
      Env env = in[i];
      AbsVal v;
      std::size_t sb = node.tok_begin, se = node.tok_end;
      if (node.kind == CfgNodeKind::kBranch) {
        std::size_t cb = 0, ce = 0;
        if (!cond_range(t, node, cb, ce)) continue;
        sb = cb;
        se = ce;
        v = ev.eval(t, cb, ce, env);
      } else if (node.kind == CfgNodeKind::kForHead) {
        auto it = fors.find(i);
        if (it == fors.end() || !it->second.ok) continue;
        const ForParts& p = it->second;
        if (p.init_b < p.init_e) v = ev.transfer_stmt(t, p.init_b, p.init_e, env);
        if (!v.viol && p.cond_b < p.cond_e) {
          AbsVal c = ev.eval(t, p.cond_b, p.cond_e, env);
          v.viol = c.viol;
          v.tainted = v.tainted || c.tainted;
        }
        if (!v.viol && p.incr_b < p.incr_e) {
          AbsVal c = ev.eval(t, p.incr_b, p.incr_e, env);
          v.viol = c.viol;
          v.tainted = v.tainted || c.tainted;
        }
      } else {
        v = ev.transfer_stmt(t, node.tok_begin, node.tok_end, env);
      }
      if (!v.viol) continue;
      const bool tainted = in_seam || v.tainted ||
                           stmt_lexically_tainted(t, sb, se);
      if (!tainted) continue;
      report_violation(ctx, *v.viol, seen);
    }
  }
}

}  // namespace asman_lint

#include "core/schedulers.h"

#include "core/hw_monitor.h"

namespace asman::core {

void AdaptiveScheduler::on_vcrd_changed(vmm::Vm& v, vmm::Vcrd previous) {
  // LOW -> HIGH: Algorithm 3 lines 8-16. (The paper folds the relocation
  // into the next credit-assignment pass; doing it at the hypercall keeps
  // the gang dispatchable within the same slot and on_accounting repairs
  // any later drift, which is behaviourally equivalent but more responsive.)
  if (previous == vmm::Vcrd::kLow && v.vcrd == vmm::Vcrd::kHigh &&
      cosched_eligible(v))
    relocate_vm(v);
}

void AdaptiveScheduler::on_accounting(vmm::Vm& v) {
  if (v.vcrd == vmm::Vcrd::kHigh && cosched_eligible(v)) relocate_vm(v);
}

void StaticCoScheduler::on_accounting(vmm::Vm& v) {
  if (v.type == vmm::VmType::kConcurrent && cosched_eligible(v))
    relocate_vm(v);
}

const char* to_string(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kCredit:
      return "Credit";
    case SchedulerKind::kCon:
      return "CON";
    case SchedulerKind::kAsman:
      return "ASMan";
    case SchedulerKind::kAsmanHw:
      return "ASMan-HW";
  }
  return "?";
}

std::unique_ptr<vmm::Hypervisor> make_scheduler(SchedulerKind kind,
                                                sim::Simulator& simulation,
                                                const hw::MachineConfig& mach,
                                                vmm::SchedMode mode,
                                                sim::Trace* trace) {
  switch (kind) {
    case SchedulerKind::kCredit:
      return std::make_unique<vmm::CreditScheduler>(simulation, mach, mode,
                                                    trace);
    case SchedulerKind::kCon:
      return std::make_unique<StaticCoScheduler>(simulation, mach, mode,
                                                 trace);
    case SchedulerKind::kAsman:
      return std::make_unique<AdaptiveScheduler>(simulation, mach, mode,
                                                 trace);
    case SchedulerKind::kAsmanHw:
      return std::make_unique<HwAdaptiveScheduler>(simulation, mach, mode,
                                                   trace);
  }
  return nullptr;
}

}  // namespace asman::core

#include "simcore/trace.h"

#include <gtest/gtest.h>

namespace asman::sim {
namespace {

TEST(Trace, DisabledByDefault) {
  Trace t;
  t.emit(Cycles{1}, TraceCat::kSched, "x");
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  Trace t;
  t.enable(true);
  t.emit(Cycles{1}, TraceCat::kSched, "a");
  t.emit(Cycles{2}, TraceCat::kLock, "b");
  ASSERT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records()[0].msg, "a");
  EXPECT_EQ(t.records()[1].at, Cycles{2});
}

TEST(Trace, FilterByCategory) {
  Trace t;
  t.enable(true);
  t.emit(Cycles{1}, TraceCat::kSched, "a");
  t.emit(Cycles{2}, TraceCat::kLock, "b");
  t.emit(Cycles{3}, TraceCat::kLock, "c");
  const auto locks = t.filter(TraceCat::kLock);
  ASSERT_EQ(locks.size(), 2u);
  EXPECT_EQ(locks[1].msg, "c");
}

TEST(Trace, DumpTruncates) {
  Trace t;
  t.enable(true);
  for (int i = 0; i < 50; ++i) t.emit(Cycles{1}, TraceCat::kGuest, "m");
  const std::string d = t.dump(10);
  EXPECT_NE(d.find("truncated"), std::string::npos);
}

TEST(Trace, CategoryNames) {
  EXPECT_STREQ(trace_cat_name(TraceCat::kSched), "sched");
  EXPECT_STREQ(trace_cat_name(TraceCat::kCosched), "cosched");
  EXPECT_STREQ(trace_cat_name(TraceCat::kMonitor), "monitor");
}

TEST(Trace, Clear) {
  Trace t;
  t.enable(true);
  t.emit(Cycles{1}, TraceCat::kGuest, "m");
  t.clear();
  EXPECT_TRUE(t.records().empty());
}

}  // namespace
}  // namespace asman::sim

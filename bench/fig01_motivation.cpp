// Figure 1 (+ the §2.2 observations): the motivation experiment.
//
// LU (NPB, 4 threads) runs in VM V1 (4 VCPUs) on the stock Credit
// scheduler, non-work-conserving, while an idle Domain-0 holds half the
// weight; V1's weight sweeps {256,128,64,32} -> VCPU online rates
// {100, 66.7, 40, 22.2}%.
//
//  (a) run time rises much faster than 1/online-rate (Fig 1a);
//  (b) spinlock waits > 2^10 and > 2^20 cycles per 30 s of observation
//      (Fig 1b): totals fall with the online rate (less work executes) but
//      the over-threshold tail explodes;
//  (c) semaphore (blocking) waits stay below 2^16 cycles even at 22.2 %.
#include "bench_util.h"
#include "workloads/synthetic.h"

using namespace asman;
using namespace asman::bench;

namespace {

Sweep build_sweep() {
  Sweep s;
  for (const ex::RatePoint& rp : ex::kRatePoints) {
    ex::Scenario sc = ex::single_vm_scenario(
        core::SchedulerKind::kCredit, rp.weight,
        ex::npb_factory(workloads::NpbBenchmark::kLU));
    s.add(rate_label(core::SchedulerKind::kCredit, rp.rate), std::move(sc));
  }
  // Semaphore observation at the worst operating point (weight 32).
  ex::Scenario sem = ex::single_vm_scenario(
      core::SchedulerKind::kCredit, 32,
      [](sim::Simulator&, std::uint64_t seed) {
        return std::make_unique<workloads::SemaphorePingPongWorkload>(
            /*pairs=*/2, /*exchanges=*/4000,
            sim::kDefaultClock.from_us(300), seed);
      });
  s.add("Credit/semaphores", std::move(sem));
  return s;
}

void annotate(const PointResult& pr, benchmark::State& st) {
  const ex::VmResult& v1 = pr.run.vm("V1");
  st.counters["runtime_s"] = v1.runtime_seconds;
  st.counters["spin_gt_2e10"] =
      static_cast<double>(v1.stats.spin_waits.count_above(10));
  st.counters["spin_gt_2e20"] =
      static_cast<double>(v1.stats.spin_waits.count_above(20));
  st.counters["sem_max_log2"] =
      static_cast<double>(sim::log2_floor(v1.stats.sem_waits.max_value()));
  st.counters["online_rate"] = v1.observed_online_rate;
}

void print_tables(const Sweep& s) {
  std::printf("\n== Figure 1(a): LU run time vs VCPU online rate (Credit) ==\n");
  ex::TextTable a({"online rate", "run time (s)", "slowdown",
                   "observed rate"});
  double base = 0.0;
  for (const ex::RatePoint& rp : ex::kRatePoints) {
    const auto& pr = s.get(rate_label(core::SchedulerKind::kCredit, rp.rate));
    const ex::VmResult& v1 = pr.run.vm("V1");
    if (rp.rate == 1.0) base = v1.runtime_seconds;
    a.add_row({ex::fmt_pct(rp.rate), ex::fmt_f(v1.runtime_seconds),
               ex::fmt_f(base > 0 ? v1.runtime_seconds / base : 1.0),
               ex::fmt_pct(v1.observed_online_rate)});
  }
  std::printf("%s", a.str().c_str());

  std::printf(
      "\n== Figure 1(b): spinlock waits per 30 s of virtual time (Credit) ==\n");
  ex::TextTable b({"online rate", ">2^10 cycles", ">2^20 cycles",
                   "max (log2)"});
  for (const ex::RatePoint& rp : ex::kRatePoints) {
    const auto& pr = s.get(rate_label(core::SchedulerKind::kCredit, rp.rate));
    const ex::VmResult& v1 = pr.run.vm("V1");
    const double scale =
        v1.runtime_seconds > 0 ? 30.0 / v1.runtime_seconds : 0.0;
    b.add_row(
        {ex::fmt_pct(rp.rate),
         ex::fmt_f(static_cast<double>(v1.stats.spin_waits.count_above(10)) *
                       scale,
                   0),
         ex::fmt_f(static_cast<double>(v1.stats.spin_waits.count_above(20)) *
                       scale,
                   0),
         std::to_string(sim::log2_floor(v1.stats.spin_waits.max_value()))});
  }
  std::printf("%s", b.str().c_str());

  const auto& sem = s.get("Credit/semaphores");
  const ex::VmResult& v1 = sem.run.vm("V1");
  std::printf(
      "\n== §2.2 observation: semaphore waits at 22.2%% online rate ==\n"
      "  semaphore ops: %llu, max wait: 2^%u cycles (paper: all < 2^16)\n",
      static_cast<unsigned long long>(v1.stats.sem_waits.total()),
      sim::log2_floor(v1.stats.sem_waits.max_value()));
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep = build_sweep();
  return run_bench_main(argc, argv, sweep, "fig01", annotate, print_tables);
}

// Synthetic NAS Parallel Benchmark models (paper §5: NPB 2.3, OpenMP C,
// Class A, 4 threads).
//
// Each benchmark is characterized by the synchronization rate, topology and
// load imbalance of its parallel skeleton; the table below is calibrated so
// the *relative* sync intensity ordering matches the real suite:
//
//   EP  embarrassingly parallel — a handful of reductions at the end;
//   FT  3-D FFT — few, heavy all-to-all transpose barriers;
//   BT  block-tridiagonal ADI — moderate sweep barriers;
//   MG  multigrid V-cycles — barriers at every level, finer on average;
//   SP  scalar-pentadiagonal ADI — like BT with thinner phases;
//   CG  conjugate gradient — fine-grain dot-product reductions every
//       iteration;
//   LU  SSOR wavefront — pipelined point-to-point neighbour sync, the
//       finest granularity and the paper's primary victim workload.
//
// Total work per benchmark is scaled down (virtual seconds instead of
// minutes) — the figures of merit (slowdowns, wait-time distributions) are
// ratios and scale-free.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <string_view>

#include "workloads/phase_model.h"

namespace asman::workloads {

enum class NpbBenchmark : std::uint8_t { kBT, kCG, kEP, kFT, kMG, kSP, kLU };

inline constexpr std::array<NpbBenchmark, 7> kAllNpb = {
    NpbBenchmark::kBT, NpbBenchmark::kCG, NpbBenchmark::kEP,
    NpbBenchmark::kFT, NpbBenchmark::kMG, NpbBenchmark::kSP,
    NpbBenchmark::kLU};

const char* to_string(NpbBenchmark b);
NpbBenchmark npb_from_name(std::string_view name);

/// Calibrated phase-model parameters for one benchmark with `threads`
/// workers repeated over `rounds` (scaled Class A).
PhaseParams npb_params(NpbBenchmark b, std::uint32_t threads = 4,
                       std::uint64_t rounds = 1);

/// Convenience factory.
std::unique_ptr<PhaseWorkload> make_npb(sim::Simulator& simulation,
                                        NpbBenchmark b, std::uint64_t seed,
                                        std::uint32_t threads = 4,
                                        std::uint64_t rounds = 1);

}  // namespace asman::workloads

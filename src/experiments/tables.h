// Text-table and CSV rendering for the bench harness and examples.
#pragma once

#include <string>
#include <vector>

namespace asman::experiments {

/// Fixed-width aligned text table (right-aligned numeric-looking cells).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  TextTable& add_row(std::vector<std::string> cells);
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers.
std::string fmt_f(double v, int precision = 2);
std::string fmt_pct(double fraction, int precision = 1);

/// Write rows as CSV (header first). Throws std::runtime_error on IO error.
void write_csv(const std::string& path,
               const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace asman::experiments

// Workload models: NPB parameter table, phase model behaviour, SPEC CPU
// rate, SPECjbb, synthetic programs.
#include <gtest/gtest.h>

#include "experiments/paper.h"
#include "experiments/scenario.h"
#include "guest_test_util.h"
#include "workloads/kernbench.h"
#include "workloads/npb.h"
#include "workloads/speccpu.h"
#include "workloads/specjbb.h"
#include "workloads/synthetic.h"

namespace asman::workloads {
namespace {

using testutil::TestHv;
using testutil::quiet_config;

TEST(Npb, NameRoundTrip) {
  for (NpbBenchmark b : kAllNpb) EXPECT_EQ(npb_from_name(to_string(b)), b);
  EXPECT_THROW(npb_from_name("ZZ"), std::invalid_argument);
}

TEST(Npb, SyncGranularityOrdering) {
  // Finer granularity = smaller compute between syncs: LU < CG < SP < MG <
  // BT < FT < EP, matching the real suite's sync intensity ordering.
  const auto mean = [](NpbBenchmark b) { return npb_params(b).compute_mean.v; };
  EXPECT_LT(mean(NpbBenchmark::kLU), mean(NpbBenchmark::kCG));
  EXPECT_LT(mean(NpbBenchmark::kCG), mean(NpbBenchmark::kSP));
  EXPECT_LT(mean(NpbBenchmark::kSP), mean(NpbBenchmark::kMG));
  EXPECT_LT(mean(NpbBenchmark::kMG), mean(NpbBenchmark::kBT));
  EXPECT_LT(mean(NpbBenchmark::kBT), mean(NpbBenchmark::kFT));
  EXPECT_LT(mean(NpbBenchmark::kFT), mean(NpbBenchmark::kEP));
}

TEST(Npb, TotalWorkComparableAcrossBenchmarks) {
  // Every benchmark carries ~2.5 s of per-thread work per round.
  for (NpbBenchmark b : kAllNpb) {
    const PhaseParams p = npb_params(b);
    const double work = sim::kDefaultClock.to_seconds(
        Cycles{p.compute_mean.v * p.steps});
    EXPECT_NEAR(work, 2.5, 0.3) << to_string(b);
  }
}

TEST(Npb, OnlyLuUsesNeighborChain) {
  for (NpbBenchmark b : kAllNpb) {
    const PhaseParams p = npb_params(b);
    if (b == NpbBenchmark::kLU) {
      EXPECT_EQ(p.sync, PhaseParams::Sync::kNeighborChain);
      EXPECT_TRUE(p.neighbor_pure_spin);
    } else {
      EXPECT_EQ(p.sync, PhaseParams::Sync::kBarrierAll);
    }
  }
}

TEST(PhaseModel, CompletesAndRecordsRounds) {
  sim::Simulator s;
  TestHv hv(2);
  guest::GuestKernel g(s, hv, 0, quiet_config(2));
  hv.bind(&g);
  PhaseParams p;
  p.threads = 2;
  p.steps = 20;
  p.compute_mean = sim::kDefaultClock.from_us(50);
  p.rounds = 3;
  PhaseWorkload wl(s, "tiny", p, 42);
  wl.deploy(g);
  hv.map(0);
  hv.map(1);
  s.run_while(sim::kDefaultClock.from_seconds_f(10.0),
              [&g] { return !g.all_threads_done(); });
  ASSERT_TRUE(g.all_threads_done());
  EXPECT_EQ(wl.rounds_completed(), 3u);
  const auto times = wl.round_times();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_LT(times[0], times[1]);
  EXPECT_LT(times[1], times[2]);
}

TEST(PhaseModel, NeighborChainCompletes) {
  sim::Simulator s;
  TestHv hv(4);
  guest::GuestKernel g(s, hv, 0, quiet_config(4));
  hv.bind(&g);
  PhaseParams p;
  p.threads = 4;
  p.steps = 50;
  p.compute_mean = sim::kDefaultClock.from_us(30);
  p.sync = PhaseParams::Sync::kNeighborChain;
  p.global_barrier_every = 10;
  PhaseWorkload wl(s, "chain", p, 7);
  wl.deploy(g);
  for (std::uint32_t v = 0; v < 4; ++v) hv.map(v);
  s.run_while(sim::kDefaultClock.from_seconds_f(10.0),
              [&g] { return !g.all_threads_done(); });
  EXPECT_TRUE(g.all_threads_done()) << "neighbour pipeline deadlocked";
}

TEST(SpecCpu, ParamsMatchBenchmarkScale) {
  EXPECT_LT(spec_gcc_params().work_per_copy, spec_bzip2_params().work_per_copy);
  EXPECT_EQ(spec_gcc_params(5).rounds, 5u);
}

TEST(SpecCpu, RoundsCompleteWhenAllCopiesFinish) {
  sim::Simulator s;
  TestHv hv(2);
  guest::GuestKernel g(s, hv, 0, quiet_config(2));
  hv.bind(&g);
  SpecCpuParams p;
  p.copies = 2;
  p.work_per_copy = sim::kDefaultClock.from_us(4'000);
  p.chunk = sim::kDefaultClock.from_us(500);
  p.rounds = 2;
  SpecCpuRateWorkload wl(s, "mini", p, 3);
  wl.deploy(g);
  hv.map(0);
  hv.map(1);
  s.run_while(sim::kDefaultClock.from_seconds_f(5.0),
              [&g] { return !g.all_threads_done(); });
  ASSERT_TRUE(g.all_threads_done());
  EXPECT_EQ(wl.rounds_completed(), 2u);
  // Each copy is ~4 ms of work on its own VCPU; rounds land near 4/8 ms.
  const auto times = wl.round_times();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(sim::kDefaultClock.to_seconds(times[0]), 0.004, 0.002);
}

TEST(SpecJbb, CountsTransactions) {
  sim::Simulator s;
  TestHv hv(2);
  guest::GuestKernel g(s, hv, 0, quiet_config(2));
  hv.bind(&g);
  SpecJbbParams p;
  p.warehouses = 2;
  SpecJbbWorkload wl(s, p, 5);
  wl.deploy(g);
  hv.map(0);
  hv.map(1);
  EXPECT_FALSE(wl.finite());
  s.run_until(sim::kDefaultClock.from_seconds_f(0.5));
  // ~0.45 ms per txn on 2 warehouses -> roughly 2000 txns in 0.5 s.
  EXPECT_GT(wl.work_units(), 1000u);
  EXPECT_LT(wl.work_units(), 4000u);
}

TEST(SpecJbb, MoreWarehousesMoreThroughputUpToVcpus) {
  auto txns = [](std::uint32_t wh) {
    sim::Simulator s;
    TestHv hv(4);
    guest::GuestKernel g(s, hv, 0, quiet_config(4));
    hv.bind(&g);
    SpecJbbParams p;
    p.warehouses = wh;
    SpecJbbWorkload wl(s, p, 5);
    wl.deploy(g);
    for (std::uint32_t v = 0; v < 4; ++v) hv.map(v);
    s.run_until(sim::kDefaultClock.from_seconds_f(0.5));
    return wl.work_units();
  };
  const auto t1 = txns(1), t4 = txns(4);
  EXPECT_GT(static_cast<double>(t4), 3.0 * static_cast<double>(t1));
}

TEST(Kernbench, PassesCompleteAndJobsAreCounted) {
  sim::Simulator s;
  TestHv hv(2);
  guest::GuestKernel g(s, hv, 0, quiet_config(2));
  hv.bind(&g);
  KernbenchParams p;
  p.workers = 2;
  p.jobs_per_pass = 30;
  p.job_mean = sim::kDefaultClock.from_us(200);
  p.link_cost = sim::kDefaultClock.from_us(500);
  p.passes = 2;
  KernbenchWorkload wl(s, p, 5);
  wl.deploy(g);
  hv.map(0);
  hv.map(1);
  s.run_while(sim::kDefaultClock.from_seconds_f(10.0),
              [&g] { return !g.all_threads_done(); });
  ASSERT_TRUE(g.all_threads_done());
  EXPECT_EQ(wl.rounds_completed(), 2u);
  EXPECT_EQ(wl.work_units(), 60u);
  // The join is blocking: workers sleep while worker 0 links.
  EXPECT_GE(g.stats().futex_waits, 1u);
}

TEST(Kernbench, MostlyVirtualizationTolerant) {
  // Blocking queue+join synchronization: unlike the spin-wait NPB codes,
  // kernbench at a low online rate stays near the 1/rate ideal (this is
  // the contrast [28]'s kernbench-only evaluation missed).
  namespace ex = asman::experiments;
  auto run = [](std::uint32_t weight) {
    ex::Scenario sc = ex::single_vm_scenario(
        core::SchedulerKind::kCredit, weight,
        [](sim::Simulator& s2, std::uint64_t seed) {
          KernbenchParams p;
          p.workers = 4;
          p.passes = 2;
          return std::make_unique<KernbenchWorkload>(s2, p, seed);
        });
    return ex::run_scenario(sc).vm("V1").runtime_seconds;
  };
  const double base = run(256);
  const double capped = run(32);
  // Some excess from the serial link stage and pass joins, but nothing
  // like the spin-wait codes' 1.7x.
  EXPECT_LT(capped / base, 4.5 * 1.45);
  EXPECT_GT(capped / base, 3.6);  // sleep phases bank credit, so < 1/rate
}

TEST(Synthetic, ScriptProgramReplaysThenDone) {
  ScriptProgram p(std::vector<guest::Op>{guest::Op::compute(Cycles{5}),
                                         guest::Op::barrier(3)});
  EXPECT_EQ(p.next().kind, guest::Op::Kind::kCompute);
  EXPECT_EQ(p.next().obj, 3u);
  EXPECT_EQ(p.next().kind, guest::Op::Kind::kDone);
  EXPECT_EQ(p.next().kind, guest::Op::Kind::kDone);
}

TEST(Synthetic, LambdaProgramDelegates) {
  int calls = 0;
  LambdaProgram p([&calls] {
    ++calls;
    return guest::Op::done();
  });
  p.next();
  p.next();
  EXPECT_EQ(calls, 2);
}

TEST(Synthetic, DeterministicAcrossIdenticalDeployments) {
  auto finish = [](std::uint64_t seed) {
    sim::Simulator s;
    TestHv hv(2);
    guest::GuestKernel g(s, hv, 0, quiet_config(2));
    hv.bind(&g);
    PhaseParams p;
    p.threads = 2;
    p.steps = 30;
    p.compute_mean = sim::kDefaultClock.from_us(40);
    PhaseWorkload wl(s, "d", p, seed);
    wl.deploy(g);
    hv.map(0);
    hv.map(1);
    s.run_while(sim::kDefaultClock.from_seconds_f(5.0),
                [&g] { return !g.all_threads_done(); });
    return g.last_finish_time();
  };
  EXPECT_EQ(finish(11), finish(11));
  EXPECT_NE(finish(11), finish(12));
}

}  // namespace
}  // namespace asman::workloads

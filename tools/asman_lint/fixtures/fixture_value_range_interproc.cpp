// Interprocedural seeded violation for the value-range check: the overflow
// is only visible through a single-`return expr;` function summary with
// argument substitution. Exactly ONE finding expected — at the call-site
// cast, not inside the helper (the helper's own i64 arithmetic fits).
#include <cstdint>

namespace fixture {

constexpr long long kCreditPerSlot = 100'000;

// Summarizable: body is a single `return expr;`. In i64 this tops out at
// 65536 * 1e5 * 64 = 4.2e11 — fine for the helper itself.
inline long long mint_for(long long weight, long long slots_per_accounting) {
  return weight * kCreditPerSlot * slots_per_accounting;
}

// FLAGGED: the summary's interval escapes std::int32_t at the cast. The
// witness must name the config corner (weight = 65536,
// slots_per_accounting = 64) that reaches it.
std::int32_t minted_this_period(long long weight,
                                long long slots_per_accounting) {
  return static_cast<std::int32_t>(mint_for(weight, slots_per_accounting));
}

// Clean control through the same machinery: a small per-slot grant stays
// inside i32 for every admissible weight (65536 * 4 = 262144).
inline long long per_slot_grant(long long weight) { return weight * 4; }

std::int32_t small_grant(long long weight) {
  return static_cast<std::int32_t>(per_slot_grant(weight));
}

}  // namespace fixture

// Schedule timeline dumper: runs a short scenario with tracing enabled and
// writes a gantt-style CSV of VCPU online spans plus the coscheduling
// events, so the gang behaviour can be eyeballed (or re-plotted).
//
//   $ ./schedule_timeline [credit|asman|con] [seconds]
//   -> schedule_timeline.csv  (vm, vcpu, online_at_ms, offline_at_ms)
//   and a console summary of coscheduling activity.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/schedulers.h"
#include "experiments/paper.h"
#include "experiments/tables.h"
#include "guest/guest_kernel.h"
#include "simcore/trace.h"
#include "workloads/npb.h"

using namespace asman;

int main(int argc, char** argv) {
  core::SchedulerKind kind = core::SchedulerKind::kAsman;
  if (argc > 1) {
    if (!std::strcmp(argv[1], "credit")) kind = core::SchedulerKind::kCredit;
    if (!std::strcmp(argv[1], "con")) kind = core::SchedulerKind::kCon;
  }
  const double seconds = argc > 2 ? std::atof(argv[2]) : 1.0;

  sim::Simulator s;
  sim::Trace trace;
  const hw::MachineConfig mach = experiments::paper_machine();
  auto hv = core::make_scheduler(kind, s, mach,
                                 vmm::SchedMode::kNonWorkConserving, &trace);

  const vmm::VmId dom0 = hv->create_vm("V0", 256, 8);
  guest::IdleGuest idle(s, *hv, dom0, 8);
  hv->attach_guest(dom0, &idle);

  const vmm::VmId v1 = hv->create_vm("V1", 32, 4, vmm::VmType::kConcurrent);
  guest::GuestKernel guest_kernel(s, *hv, v1, {.n_vcpus = 4, .seed = 7});
  core::MonitoringModule monitor(s, *hv, v1, {});
  if (kind == core::SchedulerKind::kAsman)
    guest_kernel.set_observer(&monitor);
  auto wl = workloads::make_npb(s, workloads::NpbBenchmark::kLU, 7);
  wl->deploy(guest_kernel);
  hv->attach_guest(v1, &guest_kernel);

  hv->start();
  trace.enable(true);
  s.run_until(sim::kDefaultClock.from_seconds_f(seconds));

  // Reconstruct online spans of V1's VCPUs from the sched trace.
  const sim::ClockDomain clock = mach.clock();
  std::map<std::string, double> online_at;
  std::vector<std::vector<std::string>> rows;
  for (const auto& rec : trace.filter(sim::TraceCat::kSched)) {
    // messages look like "v1.2 online on P3" / "v1.2 offline from P3"
    const std::size_t sp = rec.msg.find(' ');
    if (sp == std::string::npos) continue;
    const std::string who = rec.msg.substr(0, sp);
    if (who.rfind("v1.", 0) != 0) continue;  // only VM V1
    const double t_ms = clock.to_ms(rec.at);
    if (rec.msg.find(" online ") != std::string::npos) {
      online_at[who] = t_ms;
    } else if (auto it = online_at.find(who); it != online_at.end()) {
      rows.push_back({who, experiments::fmt_f(it->second, 3),
                      experiments::fmt_f(t_ms, 3)});
      online_at.erase(it);
    }
  }
  experiments::write_csv("schedule_timeline.csv",
                         {"vcpu", "online_ms", "offline_ms"}, rows);

  const auto cosched = trace.filter(sim::TraceCat::kCosched);
  std::printf(
      "%s, %.1fs of virtual time: %zu online spans of V1's VCPUs written\n"
      "to schedule_timeline.csv; %zu coscheduling trace events, %llu\n"
      "cosched launches, %llu IPIs, VCRD HIGH %.1f%% of the time.\n",
      core::to_string(kind), seconds, rows.size(), cosched.size(),
      static_cast<unsigned long long>(hv->cosched_events()),
      static_cast<unsigned long long>(hv->ipi_bus().sent()),
      100.0 * (hv->vm(v1).vcrd_high_time +
               (hv->vm(v1).vcrd == vmm::Vcrd::kHigh
                    ? s.now() - hv->vm(v1).vcrd_high_since
                    : sim::Cycles{0}))
                  .ratio(s.now()));
  std::printf("\nfirst cosched trace lines:\n%s",
              sim::Trace().enabled() ? "" : "");
  std::size_t shown = 0;
  for (const auto& rec : cosched) {
    if (shown++ >= 8) break;
    std::printf("  [%8.2f ms] %s\n", clock.to_ms(rec.at), rec.msg.c_str());
  }
  return 0;
}

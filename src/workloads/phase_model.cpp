#include "workloads/phase_model.h"

#include <cassert>

namespace asman::workloads {

using guest::Op;

struct PhaseWorkload::Shared {
  PhaseParams p;
  sim::Simulator* sim{nullptr};
  std::uint32_t global_barrier{0};
  std::vector<std::uint32_t> neighbor;  // parties-2 pipeline barriers
  std::vector<Cycles> round_times;
  std::uint32_t round_arrivals{0};  // threads that finished the current round
};

namespace {

/// Per-thread op stream for the phase model. The state machine walks:
/// [compute, sync...] x steps, then the round boundary (global barrier +
/// bookkeeping), for `rounds` rounds, then Done.
class PhaseProgram final : public guest::ThreadProgram {
 public:
  PhaseProgram(PhaseWorkload::Shared& sh, std::uint32_t tid,
               std::uint64_t seed)
      : sh_(sh), tid_(tid), rng_(seed) {}

  const char* name() const override { return "phase"; }

  Op next() override {
    const PhaseParams& p = sh_.p;
    for (;;) {
      switch (stage_) {
        case Stage::kCompute: {
          stage_ = Stage::kSyncLeft;
          const double len = rng_.positive_jitter(
              static_cast<double>(p.compute_mean.v), p.compute_cv);
          return Op::compute(Cycles{static_cast<std::uint64_t>(len)});
        }
        case Stage::kSyncLeft:
          stage_ = Stage::kSyncRight;
          if (p.sync == PhaseParams::Sync::kNeighborChain && tid_ > 0)
            return Op::barrier(sh_.neighbor[tid_ - 1]);
          continue;
        case Stage::kSyncRight:
          stage_ = Stage::kSyncGlobal;
          if (p.sync == PhaseParams::Sync::kNeighborChain &&
              tid_ + 1 < p.threads)
            return Op::barrier(sh_.neighbor[tid_]);
          continue;
        case Stage::kSyncGlobal: {
          stage_ = Stage::kAdvance;
          const bool global =
              p.sync == PhaseParams::Sync::kBarrierAll ||
              (p.sync == PhaseParams::Sync::kNeighborChain &&
               p.global_barrier_every != 0 &&
               (step_ + 1) % p.global_barrier_every == 0);
          if (global) return Op::barrier(sh_.global_barrier);
          continue;
        }
        case Stage::kAdvance:
          ++step_;
          if (step_ < p.steps) {
            stage_ = Stage::kCompute;
            continue;
          }
          step_ = 0;
          stage_ = Stage::kRoundBarrier;
          continue;
        case Stage::kRoundBarrier:
          stage_ = Stage::kRoundEnd;
          return Op::barrier(sh_.global_barrier);
        case Stage::kRoundEnd:
          // All threads passed the round barrier; the last one through
          // timestamps the round.
          if (++sh_.round_arrivals == sh_.p.threads) {
            sh_.round_arrivals = 0;
            sh_.round_times.push_back(sh_.sim->now());
          }
          ++round_;
          if (round_ < p.rounds) {
            stage_ = Stage::kCompute;
            continue;
          }
          return Op::done();
      }
    }
  }

 private:
  enum class Stage : std::uint8_t {
    kCompute,
    kSyncLeft,
    kSyncRight,
    kSyncGlobal,
    kAdvance,
    kRoundBarrier,
    kRoundEnd,
  };

  PhaseWorkload::Shared& sh_;
  std::uint32_t tid_;
  sim::Rng rng_;
  Stage stage_{Stage::kCompute};
  std::uint64_t step_{0};
  std::uint64_t round_{0};
};

}  // namespace

PhaseWorkload::PhaseWorkload(sim::Simulator& simulation,
                             std::string workload_name, PhaseParams params,
                             std::uint64_t seed)
    : sim_(simulation),
      name_(std::move(workload_name)),
      params_(params),
      seed_(seed),
      shared_(std::make_unique<Shared>()) {
  shared_->p = params_;
  shared_->sim = &sim_;
}

PhaseWorkload::~PhaseWorkload() = default;

void PhaseWorkload::deploy(guest::GuestKernel& g) {
  assert(params_.threads >= 1);
  shared_->global_barrier =
      g.create_barrier(params_.threads, params_.global_pure_spin);
  if (params_.sync == PhaseParams::Sync::kNeighborChain) {
    shared_->neighbor.clear();
    for (std::uint32_t i = 0; i + 1 < params_.threads; ++i)
      shared_->neighbor.push_back(
          g.create_barrier(2, params_.neighbor_pure_spin));
  }
  sim::SplitMix64 seeds(seed_);
  for (std::uint32_t t = 0; t < params_.threads; ++t) {
    g.spawn(std::make_unique<PhaseProgram>(*shared_, t, seeds.next()),
            t % g.num_vcpus());
  }
}

std::uint64_t PhaseWorkload::rounds_completed() const {
  return shared_->round_times.size();
}

std::vector<Cycles> PhaseWorkload::round_times() const {
  return shared_->round_times;
}

}  // namespace asman::workloads

// Suppression matching, budget accounting, and finding output.
#pragma once

#include <vector>

#include "model.h"
#include "token.h"

namespace asman_lint {

/// Marks findings covered by an allow pragma (same line or the line below
/// it, matching check name or `all`) and bumps each pragma's use count.
void apply_allows(const FileUnit& unit, std::vector<Finding>& findings);

struct ReportStats {
  int errors{0};       // non-allowed findings
  int suppressed{0};   // findings covered by an allow pragma
};

/// Prints findings (path:line: [check] message), then the suppression
/// ledger — every allow that fired, with its reason — and the budget line.
/// Returns the tallies; callers exit nonzero if errors > 0 or the
/// suppression count exceeds the budget.
ReportStats print_report(const std::vector<Finding>& findings,
                         const Options& options);

}  // namespace asman_lint

// Inter-processor interrupt delivery.
//
// The Adaptive Scheduler coschedules a VM's VCPUs by sending IPIs from the
// PCPU that scheduled the head VCPU to the PCPUs holding its siblings
// (Algorithm 4). The bus models delivery latency and invokes a per-PCPU
// handler in the target's context; it also counts traffic so benches can
// report coscheduling overhead.
//
// Delivery is perfect by default. A pluggable IpiFaultPlan (installed by
// the fault-injection subsystem, src/faults/) can drop, delay, or duplicate
// individual sends; the bus keeps its ledger honest either way:
//
//   sent  = send() calls, delivered = handler invocations,
//   dropped = sends that will never reach a handler (fault-injected drops,
//             out-of-range targets, and arrivals with no handler installed).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/machine.h"
#include "simcore/simulator.h"

namespace asman::hw {

/// Per-send fate chosen by a fault plan. `extra_delay` adds to the bus
/// latency; `duplicate` delivers a second copy (also after `extra_delay`).
/// Drop wins over the other fields.
struct IpiDecision {
  bool drop{false};
  bool duplicate{false};
  Cycles extra_delay{0};
};

/// Fault-injection seam of the bus. Implementations must be deterministic
/// functions of their own seeded state; the bus consults the plan exactly
/// once per send(), in send order.
class IpiFaultPlan {
 public:
  virtual ~IpiFaultPlan() = default;
  virtual IpiDecision on_send(PcpuId from, PcpuId to, std::uint32_t vector) = 0;
};

class IpiBus {
 public:
  /// Handler invoked on the target PCPU when an IPI arrives. `vector`
  /// identifies the purpose (the scheduler uses one vector per cause).
  using Handler = std::function<void(PcpuId target, std::uint32_t vector)>;

  IpiBus(sim::Simulator& simr, const MachineConfig& cfg)
      : sim_(simr), latency_(cfg.ipi_latency()), handlers_(cfg.num_pcpus) {}

  void set_handler(PcpuId pcpu, Handler h) { handlers_[pcpu] = std::move(h); }

  /// Install (or, with nullptr, remove) the fault plan. The plan must
  /// outlive the bus or be removed first.
  void set_fault_plan(IpiFaultPlan* plan) { plan_ = plan; }
  /// True when a fault plan is installed, i.e. IPIs may be lost. The
  /// scheduler arms its delivery-retry machinery only on a lossy bus, so
  /// fault-free runs stay bit-identical to builds without the seam.
  bool lossy() const { return plan_ != nullptr; }

  /// Send an IPI; the target handler runs after the bus latency (plus any
  /// fault-injected delay). A `to` outside the machine is counted dropped
  /// rather than dereferenced.
  void send(PcpuId from, PcpuId to, std::uint32_t vector) {
    (void)from;
    ++sent_;
    if (to >= handlers_.size()) {
      ++dropped_;
      return;
    }
    IpiDecision d;
    if (plan_) d = plan_->on_send(from, to, vector);
    if (d.drop) {
      ++dropped_;
      return;
    }
    if (d.extra_delay.v > 0) ++delayed_;
    const unsigned copies = d.duplicate ? 2u : 1u;
    if (d.duplicate) ++duplicated_;
    for (unsigned i = 0; i < copies; ++i) {
      sim_.after(latency_ + d.extra_delay, [this, to, vector] {
        if (handlers_[to]) {
          ++delivered_;
          handlers_[to](to, vector);
        } else {
          ++dropped_;
        }
      });
    }
  }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t delayed() const { return delayed_; }
  std::uint64_t duplicated() const { return duplicated_; }

 private:
  sim::Simulator& sim_;
  Cycles latency_;
  std::vector<Handler> handlers_;
  IpiFaultPlan* plan_{nullptr};
  std::uint64_t sent_{0};
  std::uint64_t delivered_{0};
  std::uint64_t dropped_{0};
  std::uint64_t delayed_{0};
  std::uint64_t duplicated_{0};
};

}  // namespace asman::hw

// Shared plumbing for the figure-reproduction bench binaries.
//
// Every bench binary reproduces one figure of the paper: it declares a
// sweep of scenarios (scheduler x online rate x workload), executes them in
// parallel on a thread pool (each simulation is single-threaded and
// deterministic), registers one google-benchmark entry per point whose
// manual time is the measured simulation wall time and whose counters carry
// the paper metrics, and finally prints the paper-style table.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "experiments/paper.h"
#include "experiments/runner.h"
#include "experiments/tables.h"
#include "simcore/thread_pool.h"

namespace asman::bench {

namespace ex = asman::experiments;

struct PointResult {
  ex::RunResult run;
  double wall_seconds{0};
};

/// Annotates one google-benchmark entry with counters for a point.
using Annotator =
    std::function<void(const PointResult&, benchmark::State&)>;

class Sweep {
 public:
  void add(std::string label, ex::Scenario scenario) {
    labels_.push_back(label);
    scenarios_.emplace(std::move(label), std::move(scenario));
  }

  bool contains(const std::string& label) const {
    return scenarios_.count(label) != 0;
  }

  /// Run every scenario (parallel) and memoize results.
  void execute() {
    std::vector<std::string> todo;
    for (const auto& l : labels_)
      if (!results_.count(l)) todo.push_back(l);
    std::fprintf(stderr, "[sweep] running %zu simulations...\n", todo.size());
    sim::ThreadPool pool;
    std::vector<PointResult> out(todo.size());
    pool.parallel_for(todo.size(), [&](std::size_t i) {
      const auto t0 = std::chrono::steady_clock::now();
      ex::RunResult r = ex::run_scenario(scenarios_.at(todo[i]));
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      out[i] = PointResult{std::move(r), dt.count()};
    });
    std::uint64_t audited = 0;
    std::uint64_t audit_checks = 0;
    for (std::size_t i = 0; i < todo.size(); ++i) {
      if (out[i].run.audit_checks > 0) {
        ++audited;
        audit_checks += out[i].run.audit_checks;
      }
      if (out[i].run.audit_violations > 0)
        std::fprintf(stderr, "[audit] %s: %llu violation(s)\n%s",
                     todo[i].c_str(),
                     static_cast<unsigned long long>(
                         out[i].run.audit_violations),
                     out[i].run.audit_summary.c_str());
      results_.emplace(todo[i], std::move(out[i]));
    }
    if (audited > 0)
      std::fprintf(stderr,
                   "[audit] %llu invariant checks across %llu audited runs\n",
                   static_cast<unsigned long long>(audit_checks),
                   static_cast<unsigned long long>(audited));
    std::fprintf(stderr, "[sweep] done.\n");
  }

  /// Total invariant violations across all executed points (0 unless the
  /// runs were audited, e.g. via the ASMAN_AUDIT environment variable).
  std::uint64_t audit_violations() const {
    std::uint64_t n = 0;
    for (const auto& [label, pr] : results_) n += pr.run.audit_violations;
    return n;
  }

  const PointResult& get(const std::string& label) const {
    return results_.at(label);
  }

  /// One google-benchmark entry per point; manual time = simulation wall
  /// time, counters = paper metrics chosen by `annotate`.
  void register_benchmarks(const std::string& prefix,
                           Annotator annotate) const {
    for (const auto& l : labels_) {
      const PointResult* pr = &results_.at(l);
      benchmark::RegisterBenchmark(
          (prefix + "/" + l).c_str(),
          [pr, annotate](benchmark::State& state) {
            for (auto _ : state) {
              state.SetIterationTime(pr->wall_seconds);
            }
            annotate(*pr, state);
          })
          ->UseManualTime()
          ->Iterations(1);
    }
  }

 private:
  std::vector<std::string> labels_;
  std::map<std::string, ex::Scenario> scenarios_;
  std::map<std::string, PointResult> results_;
};

/// Canonical single-VM label "SCHED/rateNN".
inline std::string rate_label(core::SchedulerKind k, double rate) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s/rate%.1f", core::to_string(k),
                rate * 100.0);
  return buf;
}

/// Standard bench entry point: execute sweep, emit tables, then hand over
/// to google-benchmark.
int run_bench_main(int argc, char** argv, Sweep& sweep,
                   const std::string& prefix, const Annotator& annotate,
                   const std::function<void(const Sweep&)>& print_tables);

}  // namespace asman::bench

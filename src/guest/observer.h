// Guest-side instrumentation interfaces and counters.
#pragma once

#include <cstdint>

#include "simcore/histogram.h"
#include "simcore/time.h"

namespace asman::guest {

/// Receives spinlock measurements from the guest kernel. The paper's
/// Monitoring Module (core::MonitoringModule) implements this to drive the
/// VCRD adjusting algorithm; passive stats collection happens regardless.
class SpinlockObserver {
 public:
  virtual ~SpinlockObserver() = default;

  /// A kernel spinlock acquisition completed after `waited` wall cycles.
  virtual void on_spin_acquired(sim::Cycles waited) = 0;

  /// A spinning waiter's wall-clock waiting time just crossed the
  /// over-threshold limit (2^delta cycles) while still waiting. This is
  /// the paper's VCRD adjusting event trigger.
  virtual void on_over_threshold() = 0;
};

/// Aggregate guest-kernel statistics, queried by experiments and tests.
struct GuestStats {
  sim::Log2Histogram spin_waits;  // all kernel spinlock waits (wall cycles)
  sim::Log2Histogram sem_waits;   // semaphore kernel-path overhead
  std::uint64_t spin_acquisitions{0};
  std::uint64_t spin_contended{0};
  std::uint64_t futex_waits{0};
  std::uint64_t futex_wakes{0};
  std::uint64_t barrier_arrivals{0};
  std::uint64_t barrier_kernel_sleeps{0};  // arrivals that outlived the spin
  std::uint64_t ticks{0};
  std::uint64_t context_switches{0};

  explicit GuestStats(bool keep_samples = false)
      : spin_waits(keep_samples), sem_waits(false) {}
};

}  // namespace asman::guest

#include "analyzer.h"

#include <algorithm>
#include <unordered_set>

namespace asman_lint {

namespace {

const std::unordered_set<std::string>& control_keywords() {
  static const std::unordered_set<std::string> kw{
      "if",     "for",    "while",         "switch",   "catch",
      "return", "sizeof", "alignof",       "decltype", "new",
      "delete", "throw",  "static_assert", "assert",   "defined",
      "alignas"};
  return kw;
}

bool is_punct(const Token& t, const char* s) {
  return t.kind == Tok::kPunct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == Tok::kIdent && t.text == s;
}

}  // namespace

std::size_t match_forward(const std::vector<Token>& toks, std::size_t i) {
  const std::string& open = toks[i].text;
  if (open == "<") {
    int depth = 1;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      const std::string& tx = toks[j].text;
      if (toks[j].kind != Tok::kPunct) continue;
      if (tx == "<") ++depth;
      else if (tx == ">") {
        if (--depth == 0) return j;
      } else if (tx == ">>") {
        depth -= 2;
        if (depth <= 0) return j;
      } else if (tx == ";" || tx == "{" || tx == "}" || tx == "&&") {
        return toks.size();  // not a template argument list after all
      }
    }
    return toks.size();
  }
  const char close = open == "(" ? ')' : open == "[" ? ']' : '}';
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (toks[j].kind != Tok::kPunct || toks[j].text.size() != 1) continue;
    if (toks[j].text[0] == open[0]) ++depth;
    else if (toks[j].text[0] == close && --depth == 0) return j;
  }
  return toks.size();
}

StmtRange statement_around(const std::vector<Token>& toks, std::size_t i) {
  std::size_t b = i;
  while (b > 0) {
    const Token& t = toks[b - 1];
    if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}")) break;
    --b;
  }
  std::size_t e = i;
  while (e < toks.size()) {
    const Token& t = toks[e];
    if (is_punct(t, ";")) {
      ++e;
      break;
    }
    if (is_punct(t, "{") || is_punct(t, "}")) break;
    ++e;
  }
  return {b, e};
}

bool qualified_suffix_match(const std::string& name,
                            const std::string& suffix) {
  if (suffix.size() > name.size()) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return false;
  if (name.size() == suffix.size()) return true;
  return name.compare(name.size() - suffix.size() - 2, 2, "::") == 0;
}

FunctionIndex::FunctionIndex(const FileUnit& unit) {
  const std::vector<Token>& t = unit.toks;
  // Scope stack of enclosing namespace/class names; one entry per open '{'
  // (unnamed entries for plain blocks). Function bodies are skipped whole,
  // so nothing inside a function ever pushes here.
  std::vector<std::string> scopes;

  auto scope_prefix = [&scopes]() {
    std::string p;
    for (const std::string& s : scopes) {
      if (s.empty()) continue;
      if (!p.empty()) p += "::";
      p += s;
    }
    return p;
  };

  std::size_t i = 0;
  while (i < t.size()) {
    const Token& tok = t[i];

    if (is_ident(tok, "namespace")) {
      std::size_t j = i + 1;
      std::string name;
      while (j < t.size() && t[j].kind == Tok::kIdent) {
        if (!name.empty()) name += "::";
        name += t[j].text;
        if (j + 1 < t.size() && is_punct(t[j + 1], "::")) j += 2;
        else {
          ++j;
          break;
        }
      }
      if (j < t.size() && is_punct(t[j], "{")) {
        scopes.push_back(name);  // may be "" for an anonymous namespace
        i = j + 1;
        continue;
      }
      i = j;
      continue;
    }

    if ((is_ident(tok, "class") || is_ident(tok, "struct")) &&
        !(i > 0 && is_ident(t[i - 1], "enum"))) {
      // Guarded scan to the class body's '{': only base-clause-shaped
      // tokens may intervene, so `template <class T>` never pushes a scope.
      std::size_t j = i + 1;
      std::string name;
      while (j < t.size() && t[j].kind == Tok::kIdent &&
             t[j].text != "final") {
        name = t[j].text;
        ++j;
        if (j < t.size() && is_punct(t[j], "::")) ++j;
        else break;
      }
      bool ok = !name.empty();
      int tmpl_depth = 0;
      std::size_t body = t.size();
      for (std::size_t k = j; ok && k < t.size(); ++k) {
        const Token& c = t[k];
        if (is_punct(c, "{") && tmpl_depth == 0) {
          body = k;
          break;
        }
        if (c.kind == Tok::kIdent || is_punct(c, ":") || is_punct(c, "::") ||
            is_punct(c, ","))
          continue;
        if (is_punct(c, "<")) ++tmpl_depth;
        else if (is_punct(c, ">")) {
          if (--tmpl_depth < 0) ok = false;
        } else if (is_punct(c, ">>")) {
          tmpl_depth -= 2;
          if (tmpl_depth < 0) ok = false;
        } else {
          ok = false;  // ';' (fwd decl), '(' (template param), '=' ...
        }
      }
      if (ok && body < t.size()) {
        scopes.push_back(name);
        i = body + 1;
        continue;
      }
      ++i;
      continue;
    }

    if (is_punct(tok, "(") && i > 0 && t[i - 1].kind == Tok::kIdent &&
        control_keywords().count(t[i - 1].text) == 0) {
      // Candidate function header: ident ('::' ident)* '(' params ')'
      // [qualifiers] ('{' | ':' ctor-inits '{').
      std::size_t j = i - 1;
      std::string chain = t[j].text;
      while (j >= 2 && is_punct(t[j - 1], "::") &&
             t[j - 2].kind == Tok::kIdent) {
        chain = t[j - 2].text + "::" + chain;
        j -= 2;
      }
      const std::size_t close = match_forward(t, i);
      if (close >= t.size()) {
        ++i;
        continue;
      }
      std::size_t m = close + 1;
      bool viable = true;
      while (viable && m < t.size()) {
        const Token& q = t[m];
        if (is_ident(q, "const") || is_ident(q, "override") ||
            is_ident(q, "final") || is_ident(q, "mutable") ||
            is_punct(q, "&") || is_punct(q, "&&")) {
          ++m;
        } else if (is_ident(q, "noexcept") || is_ident(q, "requires") ||
                   is_ident(q, "throw")) {
          ++m;
          if (m < t.size() && is_punct(t[m], "(")) {
            const std::size_t e = match_forward(t, m);
            if (e >= t.size()) viable = false;
            m = e + 1;
          }
        } else if (is_punct(q, "->")) {
          // Trailing return type: skip type tokens up to '{', ';' or '='.
          ++m;
          while (m < t.size() && !is_punct(t[m], "{") &&
                 !is_punct(t[m], ";") && !is_punct(t[m], "=") &&
                 !is_punct(t[m], ":")) {
            if (is_punct(t[m], "<") || is_punct(t[m], "(")) {
              const std::size_t e = match_forward(t, m);
              m = e >= t.size() ? m + 1 : e + 1;
            } else {
              ++m;
            }
          }
        } else {
          break;
        }
      }
      std::size_t body = t.size();
      if (viable && m < t.size() && is_punct(t[m], "{")) {
        body = m;
      } else if (viable && m < t.size() && is_punct(t[m], ":")) {
        // Constructor initializer list: name ('(' ')' | '{' '}') [',' ...]
        ++m;
        while (m < t.size()) {
          while (m < t.size() &&
                 (t[m].kind == Tok::kIdent || is_punct(t[m], "::"))) {
            ++m;
            if (m < t.size() && is_punct(t[m], "<")) {
              const std::size_t e = match_forward(t, m);
              if (e >= t.size()) break;
              m = e + 1;
            }
          }
          if (m < t.size() && is_punct(t[m], "...")) {
            ++m;
            continue;
          }
          if (m < t.size() &&
              (is_punct(t[m], "(") || is_punct(t[m], "{"))) {
            // '{' here, right after an initializer name, is that member's
            // braced init, not the body.
            const bool after_name = m > 0 && (t[m - 1].kind == Tok::kIdent ||
                                              is_punct(t[m - 1], ">"));
            if (is_punct(t[m], "{") && !after_name) {
              body = m;
              break;
            }
            const std::size_t e = match_forward(t, m);
            if (e >= t.size()) break;
            m = e + 1;
            if (m < t.size() && is_punct(t[m], "...")) ++m;  // pack expansion
          }
          if (m < t.size() && is_punct(t[m], ",")) {
            ++m;
            continue;
          }
          if (m < t.size() && is_punct(t[m], "{")) body = m;
          break;
        }
      }
      if (body < t.size()) {
        std::string full = scope_prefix();
        if (!full.empty()) full += "::";
        full += chain;
        std::size_t e = match_forward(t, body);
        if (e >= t.size()) e = t.size() - 1;
        spans_.push_back({std::move(full), body, e + 1});
        i = e + 1;
        continue;
      }
      i = close + 1;
      continue;
    }

    if (is_punct(tok, "{")) {
      scopes.emplace_back();
      ++i;
      continue;
    }
    if (is_punct(tok, "}")) {
      if (!scopes.empty()) scopes.pop_back();
      ++i;
      continue;
    }
    ++i;
  }
}

const FunctionSpan* FunctionIndex::enclosing(std::size_t i) const {
  // Spans are disjoint and sorted by begin (bodies are skipped whole).
  auto it = std::upper_bound(
      spans_.begin(), spans_.end(), i,
      [](std::size_t v, const FunctionSpan& s) { return v < s.begin; });
  if (it == spans_.begin()) return nullptr;
  --it;
  return i < it->end ? &*it : nullptr;
}

bool FunctionIndex::inside(std::size_t i, const std::string& suffix) const {
  const FunctionSpan* s = enclosing(i);
  return s != nullptr && qualified_suffix_match(s->name, suffix);
}

void AnalysisContext::report(int line, const char* check,
                             std::string message) const {
  Finding f;
  f.file = unit.display_path;
  f.line = line;
  f.check = check;
  f.message = std::move(message);
  findings.push_back(std::move(f));
}

void AnalysisContext::report(Finding f) const { findings.push_back(std::move(f)); }

}  // namespace asman_lint

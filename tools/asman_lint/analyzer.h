// Structural analysis over the token stream: enclosing-function index and
// statement extraction. This is the portable engine's stand-in for an AST —
// precise enough for the project's own disciplines, with the clang engine
// (when built) providing full semantic confirmation in CI.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model.h"
#include "token.h"

namespace asman_lint {

/// A function definition's extent in the token stream, with its qualified
/// name assembled from the enclosing namespace/class scopes (e.g.
/// "asman::vmm::Hypervisor::set_state"). Lambdas are not separate spans:
/// code inside a lambda attributes to the enclosing function, which is the
/// right granularity for the audited-setter whitelists.
struct FunctionSpan {
  std::string name;
  std::size_t begin;  // index of the body's '{'
  std::size_t end;    // index one past the matching '}'
};

class FunctionIndex {
 public:
  explicit FunctionIndex(const FileUnit& unit);

  /// Innermost function containing token index `i`, or nullptr.
  const FunctionSpan* enclosing(std::size_t i) const;

  /// True if `i` is inside a function whose qualified name ends with
  /// `suffix` on a `::`-segment boundary ("Hypervisor::enqueue" matches
  /// "asman::vmm::Hypervisor::enqueue" but not "MyHypervisor::enqueue").
  bool inside(std::size_t i, const std::string& suffix) const;

  const std::vector<FunctionSpan>& spans() const { return spans_; }

 private:
  std::vector<FunctionSpan> spans_;
};

/// True when `name` ends with `suffix` aligned to a `::` boundary.
bool qualified_suffix_match(const std::string& name, const std::string& suffix);

/// [begin, end) token range of the statement containing token `i`: from the
/// token after the previous `;` `{` `}` to the next `;` inclusive. (For-loop
/// headers are not special-cased; the range may span the header, which is
/// conservative in the right direction for the statement-scoped checks.)
struct StmtRange {
  std::size_t begin;
  std::size_t end;
};
StmtRange statement_around(const std::vector<Token>& toks, std::size_t i);

/// Index of the matching closing bracket for the opener at `i` (one of
/// ( [ { <). Returns toks.size() if unbalanced. For '<' the scan bails on
/// tokens that cannot appear in a template argument list (`;`, `{`, `&&`),
/// returning toks.size() — callers treat that as "not a template list".
std::size_t match_forward(const std::vector<Token>& toks, std::size_t i);

/// Shared per-file context handed to every check.
struct AnalysisContext {
  const FileUnit& unit;
  const FunctionIndex& functions;
  const Options& options;
  std::vector<Finding>& findings;

  void report(int line, const char* check, std::string message) const;
  /// For flow-sensitive checks that attach a path-witness trace.
  void report(Finding f) const;
};

// The project checks (checks_*.cpp). The first four are lexical/structural;
// credit-flow, state-machine and thread-safety are flow-sensitive (flow.h),
// and value-range is the abstract interpreter (absint.h).
void check_determinism(const AnalysisContext& ctx);
void check_ordered_iteration(const AnalysisContext& ctx);
void check_integer_credit(const AnalysisContext& ctx);
void check_audit_seam(const AnalysisContext& ctx);
void check_credit_flow(const AnalysisContext& ctx);
void check_state_machine(const AnalysisContext& ctx);
void check_thread_safety(const AnalysisContext& ctx);

/// value-range (asman-prove): interval abstract interpretation seeded from
/// src/core/bounds_spec.h. `model` is the cross-TU value model built from
/// every in-scope unit before the per-file passes run.
class ValueModel;
void check_value_range(const AnalysisContext& ctx, const ValueModel& model);

/// The audited credit/pressure writer whitelists (owned by audit-seam),
/// shared with value-range's taint scoping: arithmetic inside these seams
/// is always in scope for the overflow proof.
const std::vector<std::string>& audited_value_seams();

/// Cross-TU half of thread-safety: follows calls out of pool-worker lambdas
/// through the whole-scope call graph and reports reachable writes to
/// file-scope mutable statics (hidden shared state between workers).
void check_thread_safety_cross_tu(const Options& options,
                                  const std::vector<FileUnit>& units,
                                  std::vector<Finding>& findings);

/// Cross-TU part of the audit-seam check: after every file has been
/// scanned, confirm each whitelisted audited setter was actually seen as a
/// definition somewhere in the lint scope, so the whitelist cannot go stale
/// and silently exempt writes. `all_functions` is every FunctionSpan name.
void check_audit_seam_cross_tu(const Options& options,
                               const std::vector<std::string>& all_functions,
                               std::vector<Finding>& findings);

}  // namespace asman_lint

// Tricky-legal fixture for credit-flow: each mutation is deliberately
// adjacent to a violation shape yet satisfies its obligation on every
// path. asman_lint must report zero findings here.
#include <algorithm>
#include <cstdint>
#include <vector>

namespace fixture {

using Credit = std::int64_t;
enum class VcpuState : std::uint8_t { kRunning, kRunnable, kBlocked,
                                      kDestroyed };
enum class AuditPoint { kAccountingBegin };

struct Vcpu {
  VcpuState state{VcpuState::kRunnable};
  Credit credit{0};
};

void audit_event(AuditPoint);
void audit_minted(int vm, Credit inc);
void set_state(Vcpu& v, VcpuState to);
Vcpu* unmap_current(Vcpu& v);  // takes kRunning -> kRunnable, like the VMM's

struct Hypervisor {
  Credit credit_cap_{300'000};

  // Saturated self-debit WITH an early return: the early return is before
  // the write, so no path escapes mid-mutation, and the delta itself is
  // clamped against the cap.
  void charge(Vcpu& v, Credit debit) {
    if (debit == 0) return;
    v.credit = std::max<Credit>(v.credit - debit, -credit_cap_);
  }

  // Tombstone drain behind a default-less switch that covers the whole
  // VcpuState universe: the "no case matched" path is statically dead, so
  // every route to the drain carries kDestroyed evidence. This exercises
  // the exhaustive-enum CFG logic — a naive analysis would report a
  // phantom bypass edge here.
  void drain_vcpu(Vcpu& w) {
    switch (w.state) {
      case VcpuState::kRunning: {
        // A running VCPU is first unmapped (-> kRunnable) and tombstoned
        // through the returned pointer, exactly like the real lifecycle
        // path; the target of the second hop is indeterminable statically.
        Vcpu* u = unmap_current(w);
        set_state(*u, VcpuState::kDestroyed);
        break;
      }
      case VcpuState::kRunnable:
        set_state(w, VcpuState::kDestroyed);
        break;
      case VcpuState::kBlocked:
        set_state(w, VcpuState::kDestroyed);
        break;
      case VcpuState::kDestroyed:
        break;
    }
    w.credit = 0;
  }

  // The canonical accounting shape: pool snapshot dominates the write,
  // the mint report post-dominates it, with a skip path that bypasses the
  // write and the mint together (which is fine — skipped VMs mint nothing).
  void do_accounting(std::vector<Vcpu>& vcpus, Credit per, bool skip_idle) {
    audit_event(AuditPoint::kAccountingBegin);
    for (Vcpu& v : vcpus) {
      if (skip_idle && v.state == VcpuState::kBlocked) continue;
      v.credit = std::min<Credit>(per, credit_cap_);
      audit_minted(0, per);
    }
  }
};

}  // namespace fixture

#include "simcore/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace asman::sim {
namespace {

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool p;
  EXPECT_GE(p.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool p(2);
  auto f = p.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool p(2);
  auto f = p.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool p(4);
  std::vector<int> hits(1000, 0);
  p.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool p(2);
  EXPECT_THROW(p.parallel_for(10,
                              [](std::size_t i) {
                                if (i == 3)
                                  throw std::invalid_argument("bad");
                              }),
               std::invalid_argument);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool p(3);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i)
    futs.push_back(p.submit([&done] { done.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, ZeroTasksNoop) {
  ThreadPool p(2);
  p.parallel_for(0, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace asman::sim

#include "experiments/chaos.h"

#include <memory>
#include <utility>

#include "workloads/synthetic.h"

namespace asman::experiments {

namespace {

Cycles ms(std::uint64_t n) { return sim::kDefaultClock.from_ms(n); }
Cycles us(std::uint64_t n) { return sim::kDefaultClock.from_us(n); }

Scenario chaos_base(core::SchedulerKind sched, std::uint64_t seed,
                    std::uint32_t n_vms) {
  Scenario sc;
  sc.machine.num_pcpus = 4;
  sc.scheduler = sched;
  sc.seed = seed;
  sc.horizon = ms(2'000);

  VmSpec dom0;
  dom0.name = "Dom0";
  dom0.weight = 256;
  dom0.vcpus = 2;
  sc.vms.push_back(std::move(dom0));

  // The gang candidate: synchronization-heavy, so ASMan raises its VCRD
  // and CON (typed kConcurrent) always coschedules it.
  VmSpec gang;
  gang.name = "Gang";
  gang.weight = 256;
  gang.vcpus = 4;
  gang.type = vmm::VmType::kConcurrent;
  gang.workload = [](sim::Simulator&, std::uint64_t s) {
    return std::make_unique<workloads::LockHammerWorkload>(
        4, 1'000'000, us(120), us(15), s);
  };
  sc.vms.push_back(std::move(gang));

  VmSpec hog;
  hog.name = "Hog";
  hog.weight = 128;
  hog.vcpus = 2;
  hog.workload = [](sim::Simulator&, std::uint64_t s) {
    return std::make_unique<workloads::CpuHogWorkload>(2, us(200), s);
  };
  sc.vms.push_back(std::move(hog));

  // Fleet sizing beyond the 3-VM base: extra 1-VCPU background hogs with
  // small weights, so big fleets stress bookkeeping without drowning the
  // gang candidate.
  for (std::uint32_t i = 3; i < n_vms; ++i) {
    VmSpec extra;
    extra.name = "Hog" + std::to_string(i - 2);
    extra.weight = 64;
    extra.vcpus = 1;
    extra.workload = [](sim::Simulator&, std::uint64_t s) {
      return std::make_unique<workloads::CpuHogWorkload>(1, us(200), s);
    };
    sc.vms.push_back(std::move(extra));
  }
  return sc;
}

constexpr vmm::VmId kGangVm = 1;

void add_ipi_loss(Scenario& sc) {
  sc.faults.ipi.drop_p = 0.25;
  sc.faults.ipi.dup_p = 0.10;
  sc.faults.ipi.delay_p = 0.25;
  sc.faults.ipi.max_delay = us(50);
}

void add_tick_jitter(Scenario& sc) {
  sc.faults.tick.max_jitter = us(500);
}

void add_hotplug(Scenario& sc) {
  // One excursion and one permanent loss; never touches P0 so the refusal
  // path for the last online PCPU stays out of the way.
  sc.faults.hotplug.push_back({3, ms(300), ms(400)});
  sc.faults.hotplug.push_back({2, ms(900), Cycles{0}});
}

void add_vcrd_silence(Scenario& sc) {
  faults::VcrdFaultSpec spec;
  spec.vm = kGangVm;
  spec.silence_after = ms(200);
  sc.faults.vcrd.push_back(spec);
  // The TTL is what degrades gracefully here: a silent monitor must not
  // hold VCRD HIGH forever.
  sc.resilience.vcrd_ttl = ms(90);
}

void add_vcrd_flap(Scenario& sc) {
  faults::VcrdFaultSpec spec;
  spec.vm = kGangVm;
  spec.flap_start = ms(100);
  spec.flap_period = ms(2);
  spec.flap_toggles = 120;
  sc.faults.vcrd.push_back(spec);
}

void add_vcrd_corrupt(Scenario& sc) {
  faults::VcrdFaultSpec spec;
  spec.vm = kGangVm;
  spec.corrupt_start = ms(100);
  spec.corrupt_period = ms(5);
  spec.corrupt_ops = 60;
  sc.faults.vcrd.push_back(spec);
}

void add_vcpu_hang(Scenario& sc) {
  sc.faults.vcpu.push_back(
      {kGangVm, 1, ms(400), faults::VcpuFaultKind::kHang});
}

void add_vcpu_crash(Scenario& sc) {
  sc.faults.vcpu.push_back(
      {kGangVm, 2, ms(400), faults::VcpuFaultKind::kCrash});
}

void add_socket_offline(Scenario& sc) {
  // The only chaos class that rewrites the machine: the whole of socket 1
  // (P4-P7 on the paper's 2x4 topology) goes away in a staggered burst, so
  // evacuation and topology-aware relocation must repack the fleet onto
  // socket 0, then re-spread when P4-P6 return. P7 stays down permanently.
  sc.machine.num_pcpus = 8;
  sc.machine.topology = hw::Topology::paper();
  sc.faults.hotplug.push_back({4, ms(300), ms(500)});
  sc.faults.hotplug.push_back({5, ms(350), ms(450)});
  sc.faults.hotplug.push_back({6, ms(400), ms(400)});
  sc.faults.hotplug.push_back({7, ms(450), Cycles{0}});
}

}  // namespace

const char* to_string(ChaosClass c) {
  switch (c) {
    case ChaosClass::kIpiLoss:
      return "ipi-loss";
    case ChaosClass::kTickJitter:
      return "tick-jitter";
    case ChaosClass::kHotplug:
      return "hotplug";
    case ChaosClass::kVcrdSilence:
      return "vcrd-silence";
    case ChaosClass::kVcrdFlap:
      return "vcrd-flap";
    case ChaosClass::kVcrdCorrupt:
      return "vcrd-corrupt";
    case ChaosClass::kVcpuHang:
      return "vcpu-hang";
    case ChaosClass::kVcpuCrash:
      return "vcpu-crash";
    case ChaosClass::kSocketOffline:
      return "socket-offline";
    case ChaosClass::kEverything:
      return "everything";
  }
  return "?";
}

const std::vector<ChaosClass>& all_chaos_classes() {
  static const std::vector<ChaosClass> kAll = {
      ChaosClass::kIpiLoss,     ChaosClass::kTickJitter,
      ChaosClass::kHotplug,     ChaosClass::kVcrdSilence,
      ChaosClass::kVcrdFlap,    ChaosClass::kVcrdCorrupt,
      ChaosClass::kVcpuHang,    ChaosClass::kVcpuCrash,
      ChaosClass::kSocketOffline, ChaosClass::kEverything,
  };
  return kAll;
}

Scenario chaos_base_scenario(core::SchedulerKind sched, std::uint64_t seed,
                             std::uint32_t n_vms) {
  return chaos_base(sched, seed, n_vms);
}

void apply_chaos(Scenario& sc, ChaosClass c) {
  switch (c) {
    case ChaosClass::kIpiLoss:
      add_ipi_loss(sc);
      break;
    case ChaosClass::kTickJitter:
      add_tick_jitter(sc);
      break;
    case ChaosClass::kHotplug:
      add_hotplug(sc);
      break;
    case ChaosClass::kVcrdSilence:
      add_vcrd_silence(sc);
      break;
    case ChaosClass::kVcrdFlap:
      add_vcrd_flap(sc);
      break;
    case ChaosClass::kVcrdCorrupt:
      add_vcrd_corrupt(sc);
      break;
    case ChaosClass::kVcpuHang:
      add_vcpu_hang(sc);
      break;
    case ChaosClass::kVcpuCrash:
      add_vcpu_crash(sc);
      break;
    case ChaosClass::kSocketOffline:
      add_socket_offline(sc);
      break;
    case ChaosClass::kEverything:
      // kSocketOffline deliberately excluded: it overrides the machine
      // config, which would change kEverything's established fingerprints.
      add_ipi_loss(sc);
      add_tick_jitter(sc);
      add_hotplug(sc);
      add_vcrd_silence(sc);
      add_vcrd_flap(sc);
      add_vcrd_corrupt(sc);
      add_vcpu_hang(sc);
      add_vcpu_crash(sc);
      break;
  }
}

Scenario chaos_scenario(core::SchedulerKind sched, ChaosClass c,
                        std::uint64_t seed, std::uint32_t n_vms) {
  Scenario sc = chaos_base(sched, seed, n_vms);
  sc.faults.seed = seed ^ 0xC4A05ULL;
  apply_chaos(sc, c);
  return sc;
}

}  // namespace asman::experiments

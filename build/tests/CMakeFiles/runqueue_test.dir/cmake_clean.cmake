file(REMOVE_RECURSE
  "CMakeFiles/runqueue_test.dir/runqueue_test.cpp.o"
  "CMakeFiles/runqueue_test.dir/runqueue_test.cpp.o.d"
  "runqueue_test"
  "runqueue_test.pdb"
  "runqueue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runqueue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#!/usr/bin/env python3
"""Unit tests for tools/bench_diff.py (ctest label: tools).

Stdlib only, same as the script under test: the perf lane must not need a
pip install, and neither may its tests. Each test builds a tiny baseline /
current directory pair under a tempdir and drives main() through the real
argv path, so exit codes — the CI contract — are what is asserted.
"""

import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "bench_diff", os.path.join(_HERE, "bench_diff.py"))
bench_diff = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_diff)


def point(label, events=1000, ns=100.0):
    return {
        "label": label,
        "scheduler": label.split("/")[0],
        "seed": 42,
        "events": events,
        "wall_seconds": events * ns / 1e9,
        "events_per_sec": 1e9 / ns if ns else 0.0,
        "ns_per_event": ns,
    }


def write_bench(dirpath, name, points):
    with open(os.path.join(dirpath, f"BENCH_{name}.json"), "w",
              encoding="utf-8") as f:
        json.dump({"bench": name, "points": points}, f)


class BenchDiffMain(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.base = os.path.join(self._tmp.name, "baselines")
        self.cur = os.path.join(self._tmp.name, "current")
        os.mkdir(self.base)
        os.mkdir(self.cur)

    def tearDown(self):
        self._tmp.cleanup()

    def run_main(self, *extra):
        argv = ["bench_diff.py", "--current", self.cur,
                "--baseline", self.base, *extra]
        out, err = io.StringIO(), io.StringIO()
        old = sys.argv
        sys.argv = argv
        try:
            with redirect_stdout(out), redirect_stderr(err):
                code = bench_diff.main()
        finally:
            sys.argv = old
        return code, out.getvalue() + err.getvalue()

    def test_identical_runs_pass(self):
        pts = [point("Credit/a"), point("Credit/b", ns=200.0)]
        write_bench(self.base, "engine", pts)
        write_bench(self.cur, "engine", pts)
        code, out = self.run_main()
        self.assertEqual(code, 0, out)
        self.assertIn("bench_diff: ok", out)

    def test_uniform_machine_factor_cancels(self):
        # Everything 2x slower: a slower runner, not a regression.
        write_bench(self.base, "engine",
                    [point("a", ns=100.0), point("b", ns=200.0)])
        write_bench(self.base, "other",
                    [point("x", ns=50.0), point("y", ns=80.0)])
        write_bench(self.cur, "engine",
                    [point("a", ns=200.0), point("b", ns=400.0)])
        write_bench(self.cur, "other",
                    [point("x", ns=100.0), point("y", ns=160.0)])
        code, out = self.run_main()
        self.assertEqual(code, 0, out)

    def test_localized_regression_fails(self):
        # One bench 2x slower while three others hold still: the median
        # machine factor stays ~1 and the hot-path slowdown stands out.
        for n in ("a", "b", "c"):
            write_bench(self.base, n, [point("p1"), point("p2")])
            write_bench(self.cur, n, [point("p1"), point("p2")])
        write_bench(self.base, "hot", [point("p1"), point("p2")])
        write_bench(self.cur, "hot",
                    [point("p1", ns=200.0), point("p2", ns=200.0)])
        code, out = self.run_main()
        self.assertEqual(code, 1, out)
        self.assertIn("FAIL hot", out)

    def test_absolute_mode_skips_normalization(self):
        # Uniform 2x slowdown FAILS under --absolute (same-machine gate).
        write_bench(self.base, "engine", [point("a"), point("b")])
        write_bench(self.cur, "engine",
                    [point("a", ns=200.0), point("b", ns=200.0)])
        code, out = self.run_main("--absolute")
        self.assertEqual(code, 1, out)

    def test_dropped_label_fails(self):
        write_bench(self.base, "engine", [point("a"), point("b")])
        write_bench(self.cur, "engine", [point("a")])
        code, out = self.run_main()
        self.assertEqual(code, 1, out)
        self.assertIn("missing from current run", out)

    def test_new_label_is_skipped_not_failed(self):
        write_bench(self.base, "engine", [point("a")])
        write_bench(self.cur, "engine", [point("a"), point("brand_new")])
        code, out = self.run_main()
        self.assertEqual(code, 0, out)
        self.assertIn("no baseline yet (skipped)", out)

    def test_event_count_drift_fails(self):
        # Same scenario + seed must simulate the same events: determinism
        # bug, not perf delta.
        write_bench(self.base, "engine", [point("a", events=1000)])
        write_bench(self.cur, "engine", [point("a", events=1001)])
        code, out = self.run_main()
        self.assertEqual(code, 1, out)
        self.assertIn("events drifted", out)

    def test_missing_current_emission_fails(self):
        write_bench(self.base, "engine", [point("a")])
        code, out = self.run_main()
        self.assertEqual(code, 1, out)
        self.assertIn("did the bench binary run?", out)

    def test_emission_without_committed_baseline_fails(self):
        # The new-bench gate: an emission with no baseline must fail the
        # run, not ride unguarded.
        write_bench(self.base, "engine", [point("a")])
        write_bench(self.cur, "engine", [point("a")])
        write_bench(self.cur, "newbench", [point("x")])
        code, out = self.run_main()
        self.assertEqual(code, 1, out)
        self.assertIn("no committed baseline", out)
        self.assertIn("newbench", out)

    def test_only_filter_restricts_comparison(self):
        write_bench(self.base, "engine", [point("a")])
        write_bench(self.base, "hot", [point("p", ns=100.0)])
        write_bench(self.cur, "engine", [point("a")])
        write_bench(self.cur, "hot", [point("p", ns=500.0)])
        code, out = self.run_main("--only", "engine", "--absolute")
        self.assertEqual(code, 0, out)
        self.assertNotIn("hot", out.replace("threshold", ""))

    def test_only_filter_exempts_unlisted_baselineless_emission(self):
        write_bench(self.base, "engine", [point("a")])
        write_bench(self.cur, "engine", [point("a")])
        write_bench(self.cur, "newbench", [point("x")])
        code, out = self.run_main("--only", "engine")
        self.assertEqual(code, 0, out)

    def test_no_baselines_at_all_is_usage_error(self):
        code, out = self.run_main()
        self.assertEqual(code, 2, out)
        self.assertIn("no baselines", out)

    def test_threshold_gates_geomean(self):
        # +10% is inside the default 15% but outside a 5% threshold.
        write_bench(self.base, "engine", [point("a"), point("b")])
        write_bench(self.cur, "engine",
                    [point("a", ns=110.0), point("b", ns=110.0)])
        code_ok, _ = self.run_main("--absolute")
        self.assertEqual(code_ok, 0)
        code_tight, out = self.run_main("--absolute", "--threshold", "0.05")
        self.assertEqual(code_tight, 1, out)


class BenchDiffHelpers(unittest.TestCase):
    def test_geomean(self):
        self.assertAlmostEqual(bench_diff.geomean([2.0, 8.0]), 4.0)
        self.assertAlmostEqual(bench_diff.geomean([1.0]), 1.0)

    def test_load_points_round_trip(self):
        with tempfile.TemporaryDirectory() as d:
            write_bench(d, "engine", [point("a"), point("b")])
            name, pts = bench_diff.load_points(
                os.path.join(d, "BENCH_engine.json"))
        self.assertEqual(name, "engine")
        self.assertEqual(sorted(pts), ["a", "b"])
        self.assertEqual(pts["a"]["events"], 1000)


if __name__ == "__main__":
    unittest.main()

// Fixed-size thread pool for running independent simulations in parallel.
//
// Individual simulations are single-threaded and deterministic; parameter
// sweeps (one simulation per scheduler x online-rate x seed point) are
// embarrassingly parallel, so the bench harness and the experiment runner
// fan sweeps out over this pool. Tasks must not share mutable state: the
// pool's own queue is the only cross-thread state here, guarded by an
// annotated sim::Mutex so clang's -Wthread-safety proves every access
// (asman-lint's `thread-safety` rule checks the callers' side — no
// Hypervisor/Simulator/RNG reachable from more than one worker).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "simcore/mutex.h"

namespace asman::sim {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Submit a task; the returned future yields its result (or rethrows).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      MutexLock lk(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for all of them.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_ ASMAN_GUARDED_BY(mu_);
  bool stop_ ASMAN_GUARDED_BY(mu_){false};
};

}  // namespace asman::sim

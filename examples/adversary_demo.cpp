// Adversary demo: one attack class against the scheduler, three ways.
//
// Runs the adversarial host (idle Dom0 + an honest NPB/LU gang + a CPU
// victim + one attacker VM on 4 PCPUs, capped mode) under ASMan at every
// hardening level — the faithful-vulnerable tick-sampled scheduler, the
// randomized-sampling mitigation, and the full defense stack (exact
// accounting + BOOST rate limiter + VCRD plausibility clamp) — and prints
// what the attacker got away with in each.
//
//   $ ./adversary_demo [--class=NAME] [--seed=N] [--list]
#include <cstdio>
#include <string>

#include "demo_cli.h"
#include "experiments/adversary.h"
#include "experiments/tables.h"

using namespace asman;

namespace {

void print_attacks() {
  std::printf("attack classes:\n");
  for (const workloads::AttackKind k : workloads::kAllAttacks)
    std::printf("  %s\n", workloads::to_string(k));
}

}  // namespace

int main(int argc, char** argv) {
  namespace ex = asman::experiments;

  const std::string usage = examples::demo_usage(
      "adversary_demo", "attack class to run (default: tick-dodge)",
      "unused; the adversarial host is fixed at 4 VMs");
  examples::DemoOptions opt;
  if (!examples::parse_demo_args(argc, argv, opt, usage.c_str())) return 2;
  if (opt.list) {
    print_attacks();
    return 0;
  }
  workloads::AttackKind attack = workloads::AttackKind::kTickDodge;
  if (!opt.chaos.empty()) {
    attack = workloads::attack_from_name(opt.chaos);
    if (opt.chaos != workloads::to_string(attack)) {
      std::fprintf(stderr, "unknown attack class '%s'\n", opt.chaos.c_str());
      print_attacks();
      return 2;
    }
  }

  struct Level {
    const char* name;
    bool hardened;
    bool mitigated;
  };
  const Level levels[] = {{"unhardened", false, false},
                          {"mitigated", false, true},
                          {"hardened", true, false}};

  std::printf("adversary run: ASMan vs %s, seed %llu (fair share %.0f%%, "
              "epsilon %.0f%%)\n\n",
              workloads::to_string(attack),
              static_cast<unsigned long long>(opt.seed),
              100.0 * ex::kAttackerFairShare, 100.0 * ex::kFairnessEpsilon);

  ex::TextTable t({"defense level", "attacker share", "victim share",
                   "stolen Gcycles", "dodged samples", "boost denials",
                   "implausible VCRDs", "audit"});
  for (const Level& lv : levels) {
    ex::Scenario sc = ex::adversary_scenario(core::SchedulerKind::kAsman,
                                             attack, lv.hardened, opt.seed);
    if (lv.mitigated) ex::apply_mitigated_sampling(sc);
    sc.audit = true;
    const ex::RunResult r = ex::run_scenario(sc);
    char stolen[32];
    std::snprintf(stolen, sizeof stolen, "%.2f",
                  static_cast<double>(r.theft_cycles) / 1e9);
    t.add_row({lv.name, ex::fmt_pct(r.vm("Attacker").observed_online_rate),
               ex::fmt_pct(r.vm("Victim").observed_online_rate), stolen,
               std::to_string(r.dodged_samples),
               std::to_string(r.boost_denials),
               std::to_string(r.implausible_vcrds),
               r.audit_violations == 0 ? "clean" : "VIOLATED"});
  }
  std::printf("%s\n", t.str().c_str());

  std::printf(
      "Against tick-sampled accounting the attacker consumes without being\n"
      "charged (stolen cycles, dodged samples). Randomizing the sampling\n"
      "offsets already collapses the dodge; the full defense stack (exact\n"
      "accounting + BOOST rate limiter + VCRD plausibility clamp) pins\n"
      "every attack class within epsilon of its weighted fair share while\n"
      "the honest tenants keep their service.\n");
  return 0;
}

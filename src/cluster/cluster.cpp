#include "cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "cluster/cluster_auditor.h"

namespace asman::cluster {

using sim::Cycles;

const char* to_string(MigrationPhase p) {
  switch (p) {
    case MigrationPhase::kIdle:
      return "idle";
    case MigrationPhase::kPreCopy:
      return "pre-copy";
    case MigrationPhase::kStopAndCopy:
      return "stop-and-copy";
    case MigrationPhase::kCommit:
      return "commit";
    case MigrationPhase::kAbort:
      return "abort";
  }
  return "?";
}

Cluster::Cluster(sim::Simulator& simulation, const ClusterConfig& cfg)
    : sim_(simulation), cfg_(cfg), recovery_(cfg.recovery) {
  hosts_.reserve(cfg_.num_hosts);
  for (std::uint32_t h = 0; h < cfg_.num_hosts; ++h) {
    HostRec hr;
    hr.hv = core::make_scheduler(cfg_.scheduler, sim_, cfg_.machine, cfg_.mode);
    hr.hv->set_resilience(cfg_.resilience);
    hr.hv->set_admission(cfg_.admission);
    hosts_.push_back(std::move(hr));
  }
}

Cluster::~Cluster() = default;

std::vector<HostId> Cluster::host_order(HostId exclude) const {
  std::vector<HostId> order;
  order.reserve(hosts_.size());
  for (HostId h = 0; h < hosts_.size(); ++h) {
    if (h == exclude) continue;
    if (!hosts_[h].alive || hosts_[h].degraded) continue;
    order.push_back(h);
  }
  // Least weighted VCPU load first, memory pressure folded in (a host
  // losing a fifth of its cycles to contention effectively has a fifth
  // fewer PCPUs, so its score is scaled up by the degraded fraction),
  // index breaking ties. Both inputs are pure functions of deterministic
  // state — and pressure_score() is exactly 0.0 on hosts whose contention
  // engine is inert — so the order is reproducible and bit-identical to
  // the pre-pressure sort in footprint-free clusters.
  std::sort(order.begin(), order.end(), [this](HostId a, HostId b) {
    const auto score = [this](HostId h) {
      const vmm::Hypervisor& hv = *hosts_[h].hv;
      return hv.weighted_vcpu_load() * (1.0 + hv.pressure_score());
    };
    const double la = score(a);
    const double lb = score(b);
    if (la != lb) return la < lb;
    return a < b;
  });
  return order;
}

HostId Cluster::pick_host(HostId exclude) const {
  const std::vector<HostId> order = host_order(exclude);
  return order.empty() ? kInvalidHostId : order.front();
}

ClusterVmId Cluster::admit(const ClusterVmSpec& spec) {
  for (HostId h : host_order(kInvalidHostId)) {
    const vmm::VmId local = hosts_[h].hv->create_vm(spec.name, spec.weight,
                                                    spec.vcpus, spec.type);
    if (local == vmm::kInvalidVmId) continue;  // fall through the load order
    VmRecord r;
    r.id = static_cast<ClusterVmId>(vms_.size());
    r.name = spec.name;
    r.weight = spec.weight;
    r.vcpus = spec.vcpus;
    r.type = spec.type;
    r.ram_mb = spec.ram_mb;
    r.host = h;
    r.local = local;
    vms_.push_back(std::move(r));
    snapshot_heartbeat(vms_.back());
    audit_cluster_event();
    return vms_.back().id;
  }
  ++admission_rejects_;
  return kInvalidClusterVmId;
}

bool Cluster::retire(ClusterVmId id) {
  if (id >= vms_.size()) return false;
  VmRecord& r = vms_[id];
  if (r.lost || r.retired) return false;
  if (r.host == kInvalidHostId || !hosts_[r.host].alive) return false;
  for (auto& mp : migrations_)
    if (mp->active && mp->vm == id) abort_migration(*mp, "VM retired");
  host(r.host).destroy_vm(r.local);
  r.retired = true;
  r.migrating = false;
  audit_cluster_event();
  return true;
}

bool Cluster::vm_resident(ClusterVmId id) const {
  if (id >= vms_.size()) return false;
  const VmRecord& r = vms_[id];
  return !r.lost && !r.retired && r.host != kInvalidHostId &&
         hosts_[r.host].alive && r.local != vmm::kInvalidVmId &&
         host(r.host).vm_alive(r.local);
}

MigrationPhase Cluster::migration_phase(ClusterVmId id) const {
  for (auto it = migrations_.rbegin(); it != migrations_.rend(); ++it)
    if ((*it)->active && (*it)->vm == id) return (*it)->phase;
  return MigrationPhase::kIdle;
}

void Cluster::inject(const faults::FaultPlan& plan) {
  assert(!started_);
  for (const faults::HostFaultSpec& f : plan.host) host_faults_.push_back(f);
}

void Cluster::start() {
  assert(!started_);
  // Resolve the zero-valued recovery knobs from the machine config, the
  // vmm::ResilienceConfig convention.
  recovery_ = cfg_.recovery;
  const Cycles acct = cfg_.machine.accounting_cycles();
  const Cycles slot = cfg_.machine.slot_cycles();
  if (recovery_.max_precopy_rounds == 0) recovery_.max_precopy_rounds = 8;
  if (recovery_.max_phase_retries == 0) recovery_.max_phase_retries = 3;
  if (recovery_.phase_timeout.v == 0)
    recovery_.phase_timeout = Cycles{acct.v * 8};
  if (recovery_.retry_backoff.v == 0) recovery_.retry_backoff = slot;
  if (recovery_.max_downtime.v == 0)
    recovery_.max_downtime = Cycles{slot.v / 10};
  if (recovery_.heartbeat_period.v == 0) recovery_.heartbeat_period = acct;
#ifdef ASMAN_AUDIT_ENABLED
  // Attach after the boot-time admissions, before the hosts start: each
  // host auditor snapshots the initial VCPU states and then sees every
  // scheduling event; the cluster auditor sees every fabric event.
  if (cfg_.audit || audit::audit_env_enabled()) {
    audit::AuditorConfig ac;
    ac.stride = cfg_.audit_stride;
    for (HostRec& hr : hosts_)
      hr.auditor = std::make_unique<audit::Auditor>(sim_, *hr.hv, ac);
    cluster_auditor_ =
        std::make_unique<ClusterAuditor>(*this, audit::audit_fatal_env());
  }
#endif
  for (HostRec& hr : hosts_) hr.hv->start();
  for (const faults::HostFaultSpec& f : host_faults_) {
    if (f.host >= hosts_.size()) continue;
    switch (f.kind) {
      case faults::HostFaultKind::kHostCrash:
        sim_.at(f.at, [this, h = f.host] { crash_host_now(h); });
        break;
      case faults::HostFaultKind::kHostDegraded:
        sim_.at(f.at,
                [this, h = f.host, d = f.duration] { degrade_host(h, d); });
        break;
      case faults::HostFaultKind::kMigrationLinkLoss:
        // Pure time-window data; link_down() consults the spec list.
        break;
    }
  }
  started_ = true;
  arm_heartbeat();
  audit_cluster_event();
}

// --- migration state machine ---

void Cluster::set_phase(MigrationRec& m, MigrationPhase to) {
  assert(legal_migration_transition(m.phase, to));
  const MigrationPhase from = m.phase;
  m.phase = to;
  ++phase_transitions_;
  if (phase_hook_) phase_hook_(m.vm, from, to);
}

bool Cluster::migrate(ClusterVmId id, HostId dst) {
  if (!started_ || id >= vms_.size() || dst >= hosts_.size()) return false;
  VmRecord& r = vms_[id];
  if (r.lost || r.retired || r.migrating) return false;
  if (r.host == kInvalidHostId || !hosts_[r.host].alive) return false;
  if (dst == r.host || !hosts_[dst].alive || hosts_[dst].degraded)
    return false;
  auto rec = std::make_unique<MigrationRec>();
  rec->vm = id;
  rec->src = r.host;
  rec->dst = dst;
  rec->bytes_left = r.ram_mb << 20;
  rec->active = true;
  migrations_.push_back(std::move(rec));
  const std::size_t mi = migrations_.size() - 1;
  MigrationRec& m = *migrations_[mi];
  r.migrating = true;
  ++migrations_started_;
  assert(m.phase == MigrationPhase::kIdle);
  set_phase(m, MigrationPhase::kPreCopy);
  begin_attempt(mi);
  return true;
}

Cycles Cluster::copy_cycles(std::uint64_t bytes) const {
  // Integer-exact: cycles = bytes * freq / link_bytes_per_s, widened so
  // multi-GB images at multi-GHz clocks cannot overflow.
  const unsigned __int128 num =
      static_cast<unsigned __int128>(bytes) * cfg_.machine.freq_hz;
  const std::uint64_t bps = cfg_.model.link_mb_per_s << 20;
  std::uint64_t c = static_cast<std::uint64_t>(num / bps);
  if (c == 0) c = 1;  // even an empty image takes one cycle to hand over
  return Cycles{c};
}

bool Cluster::link_down(const MigrationRec& m) const {
  const Cycles now = sim_.now();
  for (const faults::HostFaultSpec& f : host_faults_) {
    if (f.kind != faults::HostFaultKind::kMigrationLinkLoss) continue;
    if (f.host != m.src && f.host != m.dst) continue;
    if (now < f.at) continue;
    if (f.duration.v != 0 && now >= f.at + f.duration) continue;
    return true;  // duration 0 = down for the rest of the run
  }
  return false;
}

void Cluster::begin_attempt(std::size_t mi) {
  MigrationRec& m = *migrations_[mi];
  if (!m.active) return;
  const Cycles need = copy_cycles(m.bytes_left);
  if (need > recovery_.phase_timeout) {
    m.events.after(sim_, recovery_.phase_timeout, [this, mi] {
      if (!migrations_[mi]->active) return;
      ++phase_timeouts_;
      fail_attempt(mi, "pre-copy round timed out");
    });
  } else {
    m.events.after(sim_, need, [this, mi] { finish_round(mi); });
  }
}

void Cluster::finish_round(std::size_t mi) {
  MigrationRec& m = *migrations_[mi];
  if (!m.active) return;
  if (link_down(m)) {
    ++link_failures_;
    fail_attempt(mi, "copy link down");
    return;
  }
  ++precopy_rounds_;
  ++m.round;
  // The guest kept dirtying pages while the round copied them.
  m.bytes_left = m.bytes_left * cfg_.model.dirty_pct / 100;
  if (copy_cycles(m.bytes_left) <= recovery_.max_downtime ||
      m.round >= recovery_.max_precopy_rounds)
    enter_stop_and_copy(mi);
  else
    begin_attempt(mi);
}

void Cluster::fail_attempt(std::size_t mi, const char* why) {
  MigrationRec& m = *migrations_[mi];
  ++m.retries;
  if (m.retries > recovery_.max_phase_retries) {
    abort_migration(m, why);
    return;
  }
  ++migrations_retried_;
  const Cycles backoff{recovery_.retry_backoff.v << (m.retries - 1)};
  m.events.after(sim_, backoff, [this, mi] { begin_attempt(mi); });
}

void Cluster::enter_stop_and_copy(std::size_t mi) {
  MigrationRec& m = *migrations_[mi];
  VmRecord& r = vms_[m.vm];
  assert(m.phase == MigrationPhase::kPreCopy);
  set_phase(m, MigrationPhase::kStopAndCopy);
  // The downtime window opens: the guest freezes while the last dirty
  // pages drain.
  host(m.src).pause_vm(r.local);
  const Cycles need = copy_cycles(m.bytes_left);
  if (need > recovery_.phase_timeout) {
    m.events.after(sim_, recovery_.phase_timeout, [this, mi] {
      if (!migrations_[mi]->active) return;
      ++phase_timeouts_;
      fail_stop_and_copy(mi, "stop-and-copy timed out");
    });
  } else {
    m.events.after(sim_, need, [this, mi] { finish_stop_and_copy(mi); });
  }
}

void Cluster::finish_stop_and_copy(std::size_t mi) {
  MigrationRec& m = *migrations_[mi];
  if (!m.active) return;
  if (link_down(m)) {
    ++link_failures_;
    fail_stop_and_copy(mi, "copy link down");
    return;
  }
  commit(mi);
}

void Cluster::fail_stop_and_copy(std::size_t mi, const char* why) {
  MigrationRec& m = *migrations_[mi];
  ++m.retries;
  if (m.retries > recovery_.max_phase_retries) {
    abort_migration(m, why);
    return;
  }
  ++migrations_retried_;
  // Give the guest its CPU back and iterate more pre-copy rounds before
  // re-attempting the downtime window.
  VmRecord& r = vms_[m.vm];
  if (hosts_[m.src].alive) host(m.src).resume_vm(r.local);
  assert(m.phase == MigrationPhase::kStopAndCopy);
  set_phase(m, MigrationPhase::kPreCopy);
  const Cycles backoff{recovery_.retry_backoff.v << (m.retries - 1)};
  m.events.after(sim_, backoff, [this, mi] { begin_attempt(mi); });
}

void Cluster::commit(std::size_t mi) {
  MigrationRec& m = *migrations_[mi];
  VmRecord& r = vms_[m.vm];
  assert(m.phase == MigrationPhase::kStopAndCopy);
  set_phase(m, MigrationPhase::kCommit);
  // The commit is atomic: capture, retire the source copy, seed the
  // destination — all inside this one event, so no boundary ever sees
  // the VM twice (or not at all).
  const __int128 expected = resident_pool(r);
  const vmm::MigrationTicket t = host(m.src).migrate_out(r.local);
  __int128 seeded = 0;
  const vmm::VmId dst_local = host(m.dst).migrate_in(t, &seeded);
  if (dst_local != vmm::kInvalidVmId) {
    r.host = m.dst;
    r.local = dst_local;
    ++migrations_committed_;
    note_transfer("commit", expected, t.credit_pool, seeded);
  } else {
    // Admission slammed shut between placement and commit: the
    // destination tombstones its copy and the source re-admits from the
    // very ticket it minted (it just freed exactly this VM's capacity).
    ++tombstoned_copies_;
    ++migrations_aborted_;
    const vmm::VmId back = host(m.src).migrate_in(t, &seeded);
    if (back != vmm::kInvalidVmId) {
      r.local = back;
    } else {
      r.lost = true;
      ++vms_lost_;
    }
    note_transfer("commit-rollback", expected, t.credit_pool, seeded);
  }
  if (!r.lost) snapshot_heartbeat(r);
  r.migrating = false;
  m.active = false;
  assert(m.phase == MigrationPhase::kCommit);
  set_phase(m, MigrationPhase::kIdle);
  audit_cluster_event();
}

void Cluster::abort_migration(MigrationRec& m, const char* why) {
  (void)why;
  // Legal from both copy phases; the seam asserts the edge.
  set_phase(m, MigrationPhase::kAbort);
  m.events.cancel_all(sim_);
  VmRecord& r = vms_[m.vm];
  // Source authoritative: the VM never left it. Un-pause if stop-and-copy
  // had frozen it and the host still lives.
  if (r.host == m.src && hosts_[m.src].alive &&
      r.local != vmm::kInvalidVmId && host(m.src).vm_alive(r.local))
    host(m.src).resume_vm(r.local);
  // The destination discards whatever partial copy the rounds had built.
  ++tombstoned_copies_;
  ++migrations_aborted_;
  r.migrating = false;
  m.active = false;
  assert(m.phase == MigrationPhase::kAbort);
  set_phase(m, MigrationPhase::kIdle);
  audit_cluster_event();
}

// --- host faults & recovery ---

void Cluster::crash_host_now(HostId h) {
  if (h >= hosts_.size() || !hosts_[h].alive) return;
  ++host_crashes_;
  // Roll back every in-flight migration touching the host while both
  // ends' records are still coherent.
  for (auto& mp : migrations_) {
    MigrationRec& m = *mp;
    if (!m.active || (m.src != h && m.dst != h)) continue;
    if (m.dst == h) {
      // Destination died: the source stays authoritative and resumes.
      abort_migration(m, "destination host crashed");
    } else {
      // Source died mid-copy: the destination tombstones its partial
      // copy; the VM itself is recovered by the sweep below.
      set_phase(m, MigrationPhase::kAbort);
      m.events.cancel_all(sim_);
      ++tombstoned_copies_;
      ++migrations_aborted_;
      vms_[m.vm].migrating = false;
      m.active = false;
      assert(m.phase == MigrationPhase::kAbort);
      set_phase(m, MigrationPhase::kIdle);
    }
  }
  hosts_[h].alive = false;
  host(h).halt();
  // Salvage sweep: tombstone each resident copy on the dead host (the
  // exact pool it held feeds the drift ledger), then re-admit from the
  // last heartbeat — the only state the fabric still has.
  for (VmRecord& r : vms_) {
    if (r.host != h || r.lost || r.retired) continue;
    const vmm::MigrationTicket actual = host(h).migrate_out(r.local);
    crash_credit_delta_ += actual.credit_pool - r.heartbeat_credit;
    r.local = vmm::kInvalidVmId;
    r.host = kInvalidHostId;
    if (readmit(r)) {
      ++vms_replaced_;
      ++r.replacements;
    } else {
      r.lost = true;
      ++vms_lost_;
    }
  }
  audit_cluster_event();
}

bool Cluster::readmit(VmRecord& r) {
  vmm::MigrationTicket t;
  t.name = r.name;
  t.weight = r.weight;
  t.n_vcpus = r.vcpus;
  t.type = r.type;
  t.credit_pool = r.heartbeat_credit;
  for (HostId h : host_order(kInvalidHostId)) {
    __int128 seeded = 0;
    const vmm::VmId local = host(h).migrate_in(t, &seeded);
    if (local == vmm::kInvalidVmId) continue;
    r.host = h;
    r.local = local;
    note_transfer("crash-readmit", r.heartbeat_credit, t.credit_pool, seeded);
    snapshot_heartbeat(r);
    return true;
  }
  return false;
}

void Cluster::degrade_host(HostId h, Cycles duration) {
  if (h >= hosts_.size() || !hosts_[h].alive || hosts_[h].degraded) return;
  HostRec& rec = hosts_[h];
  rec.degraded = true;
  ++degraded_windows_;
  // Lose the upper half of the PCPUs for the window; the placer also
  // skips the host entirely while it lasts.
  const hw::PcpuId n = cfg_.machine.num_pcpus;
  for (hw::PcpuId p = n / 2; p < n; ++p) {
    rec.hv->fault_pcpu_offline(p);
    rec.degraded_offline.push_back(p);
  }
  if (duration.v != 0) {  // 0 = degraded for the rest of the run
    sim_.after(duration, [this, h] {
      HostRec& hr = hosts_[h];
      if (!hr.alive || !hr.degraded) return;
      for (hw::PcpuId p : hr.degraded_offline) hr.hv->fault_pcpu_online(p);
      hr.degraded_offline.clear();
      hr.degraded = false;
    });
  }
}

// --- heartbeat & credit bookkeeping ---

void Cluster::arm_heartbeat() {
  sim_.after(recovery_.heartbeat_period, [this] { heartbeat(); });
}

void Cluster::heartbeat() {
  ++heartbeats_;
  for (VmRecord& r : vms_) {
    if (r.lost || r.retired) continue;
    if (r.host == kInvalidHostId || !hosts_[r.host].alive) continue;
    snapshot_heartbeat(r);
  }
  audit_cluster_event();
  arm_heartbeat();
}

void Cluster::snapshot_heartbeat(VmRecord& r) {
  r.heartbeat_credit = resident_pool(r);
}

__int128 Cluster::resident_pool(const VmRecord& r) const {
  __int128 pool = 0;
  const vmm::Vm& v = host(r.host).vm(r.local);
  for (const vmm::Vcpu& w : v.vcpus) pool += static_cast<__int128>(w.credit);
  return pool;
}

void Cluster::note_transfer(const char* what, __int128 expected,
                            __int128 ticket, __int128 seeded) {
  // What the truncating split / cap clamp left unseeded stays on the
  // fabric's ledger — never silently minted back.
  const __int128 residual = ticket - seeded;
  residual_credit_ += residual;
#ifdef ASMAN_AUDIT_ENABLED
  if (cluster_auditor_)
    cluster_auditor_->on_transfer(what, expected, ticket, seeded, residual);
#else
  (void)what;
  (void)expected;
#endif
}

void Cluster::audit_cluster_event() {
#ifdef ASMAN_AUDIT_ENABLED
  if (cluster_auditor_) cluster_auditor_->on_event();
#endif
}

// --- audit aggregation ---

std::uint64_t Cluster::audit_checks() const {
  std::uint64_t n = 0;
#ifdef ASMAN_AUDIT_ENABLED
  for (const HostRec& hr : hosts_)
    if (hr.auditor) n += hr.auditor->report().total_checks();
  if (cluster_auditor_) n += cluster_auditor_->report().total_checks();
#endif
  return n;
}

std::uint64_t Cluster::audit_violations() const {
  std::uint64_t n = 0;
#ifdef ASMAN_AUDIT_ENABLED
  for (const HostRec& hr : hosts_)
    if (hr.auditor) n += hr.auditor->report().total_violations();
  if (cluster_auditor_) n += cluster_auditor_->report().total_violations();
#endif
  return n;
}

std::string Cluster::audit_summary() const {
#ifdef ASMAN_AUDIT_ENABLED
  // Merge every host report plus the cluster report into one table.
  audit::AuditReport merged;
  const auto fold = [&merged](const audit::AuditReport& r) {
    for (std::size_t i = 0; i < audit::kNumInvariants; ++i) {
      auto& dst = merged.by_kind[i];
      const auto& src = r.by_kind[i];
      dst.checks += src.checks;
      dst.violations += src.violations;
      if (!src.first_offender.empty() &&
          (dst.first_offender.empty() || src.first_at < dst.first_at)) {
        dst.first_offender = src.first_offender;
        dst.first_at = src.first_at;
      }
    }
    merged.events += r.events;
    merged.full_scans += r.full_scans;
  };
  bool any = false;
  for (const HostRec& hr : hosts_)
    if (hr.auditor) {
      fold(hr.auditor->report());
      any = true;
    }
  if (cluster_auditor_) {
    fold(cluster_auditor_->report());
    any = true;
  }
  if (any) return merged.summary();
#endif
  return {};
}

void Cluster::check_now() {
#ifdef ASMAN_AUDIT_ENABLED
  for (HostRec& hr : hosts_)
    if (hr.auditor) hr.auditor->check_now();
  if (cluster_auditor_) cluster_auditor_->on_event();
#endif
}

}  // namespace asman::cluster

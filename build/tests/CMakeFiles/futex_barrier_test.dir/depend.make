# Empty dependencies file for futex_barrier_test.
# This may be replaced when dependencies are built.

#include "workloads/specjbb.h"

#include "workloads/synthetic.h"

#include <vector>

namespace asman::workloads {

using guest::Op;

struct SpecJbbWorkload::Shared {
  SpecJbbParams p;
  std::vector<std::uint32_t> shared_mutexes;
  std::uint32_t safepoint_barrier{0};
  std::uint64_t transactions{0};
  std::uint64_t epoch{0};       // safepoints announced so far
  std::uint64_t next_epoch_at{0};
};

namespace {

class WarehouseProgram final : public guest::ThreadProgram {
 public:
  WarehouseProgram(SpecJbbWorkload::Shared& sh, std::uint64_t seed)
      : sh_(sh), rng_(seed) {}

  const char* name() const override { return "warehouse"; }

  Op next() override {
    const SpecJbbParams& p = sh_.p;
    if (pending_lock_) {
      pending_lock_ = false;
      const auto idx = static_cast<std::uint32_t>(
          rng_.next_below(sh_.shared_mutexes.size()));
      return Op::critical(sh_.shared_mutexes[idx], p.shared_hold);
    }
    if (gc_ops_left_ > 0) {
      // Parallel GC pause: alternating work chunks and termination
      // barriers (odd counts are barriers, even are chunks).
      const bool barrier_step = (gc_ops_left_-- % 2) == 1;
      return barrier_step ? Op::barrier(sh_.safepoint_barrier)
                          : Op::compute(p.gc_chunk);
    }
    if (!first_) ++sh_.transactions;  // the previous transaction completed
    first_ = false;
    if (p.safepoint_every_txns != 0 &&
        sh_.transactions >= sh_.next_epoch_at) {
      ++sh_.epoch;
      sh_.next_epoch_at += p.safepoint_every_txns;
    }
    if (my_epoch_ < sh_.epoch) {
      // Stop-the-world rendezvous, then the parallel GC rounds.
      ++my_epoch_;
      gc_ops_left_ = 2 * p.gc_phases;
      return Op::barrier(sh_.safepoint_barrier);
    }
    pending_lock_ = rng_.bernoulli(p.shared_lock_prob);
    const double len = rng_.positive_jitter(
        static_cast<double>(p.txn_mean.v), p.txn_cv);
    return Op::compute(Cycles{static_cast<std::uint64_t>(len)});
  }

 private:
  SpecJbbWorkload::Shared& sh_;
  sim::Rng rng_;
  bool pending_lock_{false};
  bool first_{true};
  std::uint64_t my_epoch_{0};
  std::uint32_t gc_ops_left_{0};
};

}  // namespace

SpecJbbWorkload::SpecJbbWorkload(sim::Simulator& simulation,
                                 SpecJbbParams params, std::uint64_t seed)
    : sim_(simulation),
      params_(params),
      seed_(seed),
      shared_(std::make_unique<Shared>()) {
  shared_->p = params_;
}

SpecJbbWorkload::~SpecJbbWorkload() = default;

void SpecJbbWorkload::deploy(guest::GuestKernel& g) {
  shared_->shared_mutexes.clear();
  for (std::uint32_t i = 0; i < params_.shared_locks; ++i)
    shared_->shared_mutexes.push_back(g.create_mutex());
  // HotSpot safepoint waits are active (spin + yield).
  shared_->safepoint_barrier =
      g.create_barrier(params_.warehouses, /*spin_only=*/true);
  shared_->next_epoch_at = params_.safepoint_every_txns;
  sim::SplitMix64 seeds(seed_);
  for (std::uint32_t w = 0; w < params_.warehouses; ++w)
    g.spawn(std::make_unique<WarehouseProgram>(*shared_, seeds.next()),
            w % g.num_vcpus());
  for (std::uint32_t d = 0; d < params_.daemons; ++d) {
    auto rng = std::make_shared<sim::Rng>(seeds.next());
    const SpecJbbParams p = params_;
    auto working = std::make_shared<bool>(false);
    g.spawn(std::make_unique<LambdaProgram>(
                [rng, p, working]() -> Op {
                  if (*working) {
                    *working = false;
                    return Op::compute(p.daemon_work);
                  }
                  *working = true;
                  const double len = rng->positive_jitter(
                      static_cast<double>(p.daemon_period.v), 0.3);
                  return Op::sleep(
                      Cycles{static_cast<std::uint64_t>(len)});
                }),
            d % g.num_vcpus());
  }
}

std::string SpecJbbWorkload::name() const {
  return "SPECjbb(" + std::to_string(params_.warehouses) + "wh)";
}

std::uint64_t SpecJbbWorkload::work_units() const {
  return shared_->transactions;
}

}  // namespace asman::workloads

// Topology demo: socket-aware placement vs the topology-blind baseline.
//
// Runs the consolidated fleet twice on the paper's dual-socket host
// (hw::Topology::paper(): 2 sockets x 2 shared-L2 domains x 2 cores, the
// dual Harpertown testbed) under ASMan — once with topology-aware
// placement, once blind — at the same migration cost model, then prints
// the cost counters side by side: the aware run should trade cross-socket
// migrations for same-LLC ones. Compose a chaos class on top with
// --class (socket-offline takes the whole of socket 1 away mid-run).
//
// Shares its CLI shape with chaos_demo and churn_demo:
//
//   $ ./topology_demo [--class=NAME] [--vms=N] [--seed=N] [--list]
#include <cstdio>

#include "demo_cli.h"
#include "experiments/tables.h"
#include "experiments/topology.h"

using namespace asman;

int main(int argc, char** argv) {
  namespace ex = asman::experiments;

  const std::string usage = examples::demo_usage(
      "topology_demo", "compose a fault class on top (default: none)",
      "total VMs on the host, N >= 3 (default: 4)");
  examples::DemoOptions opt;
  if (!examples::parse_demo_args(argc, argv, opt, usage.c_str())) return 2;
  if (opt.list) {
    examples::print_chaos_classes();
    return 0;
  }
  bool have_chaos = false;
  ex::ChaosClass cls = ex::ChaosClass::kEverything;
  if (!opt.chaos.empty()) {
    if (!examples::lookup_chaos_class(opt.chaos, cls)) {
      std::fprintf(stderr, "unknown chaos class '%s'\n", opt.chaos.c_str());
      examples::print_chaos_classes();
      return 2;
    }
    have_chaos = true;
  }
  const std::uint32_t n_vms = opt.vms == 0 ? 4 : opt.vms;

  const auto run = [&](bool aware) {
    ex::Scenario sc = ex::topology_scenario(core::SchedulerKind::kAsman,
                                            opt.seed, aware, n_vms);
    if (have_chaos) {
      sc.faults.seed = opt.seed ^ 0xC4A05ULL;
      ex::apply_chaos(sc, cls);
    }
    sc.audit = true;  // run with the runtime invariant auditor attached
    return ex::run_scenario(sc);
  };
  const ex::RunResult aware = run(true);
  const ex::RunResult blind = run(false);

  std::printf("topology run: ASMan on 2 sockets x 2 LLCs x 2 PCPUs, %s, "
              "%u VMs, seed %llu\n\n",
              have_chaos ? ex::to_string(cls) : "fault-free", n_vms,
              static_cast<unsigned long long>(opt.seed));

  ex::TextTable costs({"migration cost", "aware", "blind"});
  costs.add_row({"total migrations", std::to_string(aware.migrations),
                 std::to_string(blind.migrations)});
  costs.add_row({"cross-LLC (same socket)",
                 std::to_string(aware.cross_llc_migrations),
                 std::to_string(blind.cross_llc_migrations)});
  costs.add_row({"cross-socket", std::to_string(aware.cross_socket_migrations),
                 std::to_string(blind.cross_socket_migrations)});
  costs.add_row({"warm-cache penalty (cycles)",
                 std::to_string(aware.migration_penalty_cycles),
                 std::to_string(blind.migration_penalty_cycles)});
  costs.add_row({"steals rejected by cost",
                 std::to_string(aware.topology_steal_rejects),
                 std::to_string(blind.topology_steal_rejects)});
  std::printf("%s\n", costs.str().c_str());

  ex::TextTable vms({"VM", "online rate", "cross-LLC", "cross-socket",
                     "penalty (cycles)"});
  for (const ex::VmResult& v : aware.vms)
    vms.add_row({v.name, ex::fmt_pct(v.observed_online_rate),
                 std::to_string(v.cross_llc_migrations),
                 std::to_string(v.cross_socket_migrations),
                 std::to_string(v.migration_penalty_cycles)});
  std::printf("aware run, per VM:\n%s\n", vms.str().c_str());

  if (aware.audit_checks > 0)
    std::printf("auditor (aware run): %llu checks, %llu violation(s)\n%s",
                static_cast<unsigned long long>(aware.audit_checks),
                static_cast<unsigned long long>(aware.audit_violations),
                aware.audit_violations > 0 ? aware.audit_summary.c_str() : "");

  std::printf(
      "\nBoth runs pay the same warm-cache cost model; only placement\n"
      "differs. The aware run packs gangs into one socket (pairwise\n"
      "distinct PCPUs, nearest-first stealing, penalty-gated steals), so\n"
      "its cross-socket column should undercut the blind baseline's.\n");
  return 0;
}

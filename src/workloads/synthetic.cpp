// Synthetic workloads are header-only; this TU anchors the library target.
#include "workloads/synthetic.h"

// Cluster fabric bench: event-engine throughput for a 16-host fleet under
// the full robustness storm.
//
// For each scheduler the point runs cluster_chaos_scenario at 16 hosts /
// 200 tenants: seeded churn of live migrations, retirements and hot
// admissions, two host crashes (with crash recovery re-placing every
// surviving VM), a degraded-host window and a migration-link-loss window.
// The JSON (BENCH_cluster.json; committed baseline in bench/baselines/)
// carries events/sec, ns/event and the process peak RSS so the fabric's
// perf trajectory is tracked run over run. Run with ASMAN_AUDIT=1 to get
// all ten invariants — including single-ownership and cluster credit
// conservation — checked on every point; violations fail the binary.
#include <vector>

#include "bench_util.h"
#include "experiments/cluster.h"
#include "simcore/thread_pool.h"

using namespace asman;
using namespace asman::bench;

namespace {

constexpr core::SchedulerKind kScheds[] = {core::SchedulerKind::kCredit,
                                           core::SchedulerKind::kCon,
                                           core::SchedulerKind::kAsman};

constexpr std::uint32_t kHosts = 16;
constexpr std::uint32_t kVms = 200;
constexpr std::uint64_t kSeed = 42;

struct ClusterPoint {
  std::string label;
  ex::ClusterScenario scenario;
  ex::ClusterRunResult run;
  double wall_seconds{0};
};

void annotate(const ClusterPoint& p, benchmark::State& st) {
  const ex::ClusterRunResult& rr = p.run;
  st.counters["events_per_sec"] =
      p.wall_seconds > 0
          ? static_cast<double>(rr.events) / p.wall_seconds
          : 0.0;
  st.counters["migrations_committed"] =
      static_cast<double>(rr.migrations_committed);
  st.counters["migrations_aborted"] =
      static_cast<double>(rr.migrations_aborted);
  st.counters["host_crashes"] = static_cast<double>(rr.host_crashes);
  st.counters["vms_replaced"] = static_cast<double>(rr.vms_replaced);
  st.counters["vms_lost"] = static_cast<double>(rr.vms_lost);
  st.counters["admission_rejects"] =
      static_cast<double>(rr.admission_rejects);
  st.counters["peak_rss_bytes"] = static_cast<double>(peak_rss_bytes());
}

void print_table(const std::vector<ClusterPoint>& points) {
  std::printf("\n== cluster fabric storm (%u hosts, %u tenants, seed %llu) "
              "==\n",
              kHosts, kVms, static_cast<unsigned long long>(kSeed));
  ex::TextTable t({"scheduler", "events", "ns/event", "committed", "aborted",
                   "crashes", "replaced", "lost", "violations"});
  for (const ClusterPoint& p : points) {
    char nspe[32];
    std::snprintf(nspe, sizeof nspe, "%.1f",
                  p.run.events > 0
                      ? p.wall_seconds * 1e9 /
                            static_cast<double>(p.run.events)
                      : 0.0);
    t.add_row({p.label, std::to_string(p.run.events), nspe,
               std::to_string(p.run.migrations_committed),
               std::to_string(p.run.migrations_aborted),
               std::to_string(p.run.host_crashes),
               std::to_string(p.run.vms_replaced),
               std::to_string(p.run.vms_lost),
               std::to_string(p.run.audit_violations)});
  }
  std::printf("%s", t.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  std::vector<ClusterPoint> points;
  for (core::SchedulerKind k : kScheds) {
    ClusterPoint p;
    p.label = core::to_string(k);
    p.scenario = ex::cluster_chaos_scenario(k, kHosts, kVms, kSeed);
    points.push_back(std::move(p));
  }
  std::fprintf(stderr, "[sweep] running %zu cluster storms...\n",
               points.size());
  sim::ThreadPool pool;
  pool.parallel_for(points.size(), [&](std::size_t i) {
    points[i].wall_seconds = wall_seconds_of(
        [&] { points[i].run = ex::run_cluster_scenario(points[i].scenario); });
  });
  std::fprintf(stderr, "[sweep] done.\n");

  std::vector<BenchRecord> records;
  for (const ClusterPoint& p : points)
    records.push_back(BenchRecord{p.label, p.label, kSeed, p.run.events,
                                  p.wall_seconds});
  const std::string json = write_bench_json(records, "cluster");
  if (!json.empty())
    std::fprintf(stderr, "[bench] wrote %s\n", json.c_str());

  for (const ClusterPoint& p : points) {
    const ClusterPoint* pp = &p;
    benchmark::RegisterBenchmark(
        ("cluster/" + p.label).c_str(),
        [pp](benchmark::State& state) {
          for (auto _ : state) state.SetIterationTime(pp->wall_seconds);
          annotate(*pp, state);
        })
        ->UseManualTime()
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table(points);

  // Auditing (ASMAN_AUDIT=1) and crash recovery are both hard gates: a
  // violated invariant or a VM lost to a host crash fails the binary so CI
  // treats it as an error, exactly like the adversary bench.
  std::uint64_t violations = 0;
  std::uint64_t lost = 0;
  for (const ClusterPoint& p : points) {
    if (p.run.audit_violations > 0)
      std::fprintf(stderr, "[audit] %s: %llu violation(s)\n%s",
                   p.label.c_str(),
                   static_cast<unsigned long long>(p.run.audit_violations),
                   p.run.audit_summary.c_str());
    violations += p.run.audit_violations;
    lost += p.run.vms_lost;
  }
  if (violations > 0 || lost > 0) {
    std::fprintf(stderr,
                 "[bench] FAILED: %llu invariant violation(s), %llu VM(s) "
                 "lost\n",
                 static_cast<unsigned long long>(violations),
                 static_cast<unsigned long long>(lost));
    return 1;
  }
  return 0;
}

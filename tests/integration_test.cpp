// End-to-end shape tests: the paper's qualitative claims must hold on
// reduced-size workloads (full-size reproduction lives in bench/).
#include <gtest/gtest.h>

#include "experiments/paper.h"
#include "experiments/scenario.h"
#include "workloads/npb.h"
#include "workloads/synthetic.h"

namespace asman::experiments {
namespace {

/// Half-scale LU: same sync granularity, less total work (quarter scale is
/// too short for stable over-threshold statistics).
WorkloadFactory small_lu() {
  return [](sim::Simulator& s, std::uint64_t seed) {
    workloads::PhaseParams p = workloads::npb_params(workloads::NpbBenchmark::kLU);
    p.steps /= 2;
    return std::make_unique<workloads::PhaseWorkload>(s, "LU/2", p, seed);
  };
}

WorkloadFactory small_ep() {
  return [](sim::Simulator& s, std::uint64_t seed) {
    workloads::PhaseParams p = workloads::npb_params(workloads::NpbBenchmark::kEP);
    p.steps /= 4;
    return std::make_unique<workloads::PhaseWorkload>(s, "EP/4", p, seed);
  };
}

double lu_runtime(core::SchedulerKind k, std::uint32_t weight) {
  Scenario sc = single_vm_scenario(k, weight, small_lu());
  return run_scenario(sc).vm("V1").runtime_seconds;
}

class PaperShape : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    base_ = lu_runtime(core::SchedulerKind::kCredit, 256);
    credit22_ = lu_runtime(core::SchedulerKind::kCredit, 32);
    asman22_ = lu_runtime(core::SchedulerKind::kAsman, 32);
  }
  static double base_, credit22_, asman22_;
};

double PaperShape::base_ = 0;
double PaperShape::credit22_ = 0;
double PaperShape::asman22_ = 0;

TEST_F(PaperShape, CreditDegradesSuperlinearlyAtLowRate) {
  // Ideal slowdown at 22.2 % is 4.5; LHP pushes Credit well past it
  // (paper Fig 1a: ~7x).
  const double slowdown = credit22_ / base_;
  EXPECT_GT(slowdown, 5.6);
  EXPECT_LT(slowdown, 12.0);
}

TEST_F(PaperShape, AsmanRecoversMuchOfTheExcess) {
  // Paper Fig 7: ASMan sits between Credit and the 1/rate ideal.
  EXPECT_LT(asman22_, credit22_ * 0.92);
  EXPECT_GT(asman22_, base_ / 0.222 * 0.85);
}

TEST_F(PaperShape, SchedulersAgreeAtFullOnlineRate) {
  const double asman100 = lu_runtime(core::SchedulerKind::kAsman, 256);
  EXPECT_NEAR(asman100, base_, base_ * 0.05);
}

TEST(PaperShapeSpinlocks, OverThresholdTailCollapsesUnderAsman) {
  auto over20 = [](core::SchedulerKind k) {
    Scenario sc = single_vm_scenario(k, 32, small_lu());
    return run_scenario(sc).vm("V1").stats.spin_waits.count_above(20);
  };
  const auto credit = over20(core::SchedulerKind::kCredit);
  const auto asman = over20(core::SchedulerKind::kAsman);
  EXPECT_GT(credit, 10u) << "Credit must exhibit lock-holder preemption";
  EXPECT_LT(static_cast<double>(asman), static_cast<double>(credit) * 0.95);
}

TEST(PaperShapeSpinlocks, NoTailAtFullRate) {
  Scenario sc = single_vm_scenario(core::SchedulerKind::kCredit, 256,
                                   small_lu());
  const RunResult rr = run_scenario(sc);
  const auto& v1 = rr.vm("V1");
  EXPECT_EQ(v1.stats.spin_waits.count_above(20), 0u);
}

TEST(PaperShapeEp, SyncFreeWorkloadInsensitiveToScheduler) {
  auto rt = [](core::SchedulerKind k, std::uint32_t w) {
    Scenario sc = single_vm_scenario(k, w, small_ep());
    return run_scenario(sc).vm("V1").runtime_seconds;
  };
  const double base = rt(core::SchedulerKind::kCredit, 256);
  const double credit22 = rt(core::SchedulerKind::kCredit, 32);
  const double asman22 = rt(core::SchedulerKind::kAsman, 32);
  // EP at 22.2 % stays near the 4.5x ideal under both schedulers.
  EXPECT_NEAR(credit22 / base, 4.5, 1.0);
  EXPECT_NEAR(asman22 / credit22, 1.0, 0.12);
}

TEST(PaperShapeFairness, AsmanPreservesProportionalShare) {
  Scenario sc = single_vm_scenario(core::SchedulerKind::kAsman, 32, small_lu());
  const RunResult rr = run_scenario(sc);
  const auto& v1 = rr.vm("V1");
  EXPECT_NEAR(v1.observed_online_rate, 0.222, 0.05)
      << "coscheduling must not break the share cap";
}

TEST(PaperShapeVcrd, AsmanDetectsAndAdapts) {
  Scenario sc = single_vm_scenario(core::SchedulerKind::kAsman, 32, small_lu());
  const RunResult rr = run_scenario(sc);
  const auto& v1 = rr.vm("V1");
  EXPECT_GT(v1.adjusting_events, 2u);
  EXPECT_GT(v1.vcrd_high_fraction, 0.2);
  EXPECT_LT(v1.vcrd_high_fraction, 1.0);
}

TEST(PaperShapeVcrd, QuietWorkloadStaysLow) {
  Scenario sc = single_vm_scenario(core::SchedulerKind::kAsman, 256,
                                   small_lu());
  const RunResult rr = run_scenario(sc);
  const auto& v1 = rr.vm("V1");
  EXPECT_EQ(v1.vcrd_transitions, 0u)
      << "no over-threshold spinlocks at 100% online rate";
}

TEST(PaperShapeSemaphores, BlockingPrimitivesTolerateVirtualization) {
  Scenario sc = single_vm_scenario(
      core::SchedulerKind::kCredit, 32,
      [](sim::Simulator&, std::uint64_t seed) {
        return std::make_unique<workloads::SemaphorePingPongWorkload>(
            2, 1500, sim::kDefaultClock.from_us(200), seed);
      });
  const RunResult rr = run_scenario(sc);
  const auto& v1 = rr.vm("V1");
  EXPECT_GT(v1.stats.sem_waits.total(), 1000u);
  EXPECT_LT(v1.stats.sem_waits.max_value(), sim::pow2_cycles(16));
}

}  // namespace
}  // namespace asman::experiments

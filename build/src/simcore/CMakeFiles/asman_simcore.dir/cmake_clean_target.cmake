file(REMOVE_RECURSE
  "libasman_simcore.a"
)

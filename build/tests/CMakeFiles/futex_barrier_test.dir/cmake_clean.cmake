file(REMOVE_RECURSE
  "CMakeFiles/futex_barrier_test.dir/futex_barrier_test.cpp.o"
  "CMakeFiles/futex_barrier_test.dir/futex_barrier_test.cpp.o.d"
  "futex_barrier_test"
  "futex_barrier_test.pdb"
  "futex_barrier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futex_barrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Structured result of an audited run.
//
// The report accumulates per-invariant check/violation counters plus the
// first offender per invariant class (time + description) — enough to
// localize a regression without storing every event of a multi-minute run.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "audit/invariants.h"
#include "simcore/time.h"

namespace asman::audit {

struct AuditReport {
  struct Entry {
    std::uint64_t checks{0};
    std::uint64_t violations{0};
    /// Description of the first violation seen (empty when clean).
    std::string first_offender;
    sim::Cycles first_at{0};
  };

  std::array<Entry, kNumInvariants> by_kind{};
  /// Sink callbacks observed (scheduling events, transitions, accounting).
  std::uint64_t events{0};
  /// Stride-gated whole-state scans performed.
  std::uint64_t full_scans{0};

  Entry& entry(Invariant inv) {
    return by_kind[static_cast<std::size_t>(inv)];
  }
  const Entry& entry(Invariant inv) const {
    return by_kind[static_cast<std::size_t>(inv)];
  }

  std::uint64_t total_checks() const;
  std::uint64_t total_violations() const;
  bool clean() const { return total_violations() == 0; }

  /// Human-readable table, one row per invariant class.
  std::string summary() const;
};

}  // namespace asman::audit

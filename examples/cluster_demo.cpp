// Cluster demo: the fabric surviving a bad day.
//
// Boots a 4-host fleet of a dozen tenants, live-migrates a few of them
// (pre-copy -> stop-and-copy -> commit, with modeled dirty-page cost and
// a bounded downtime window), retires one, hot-admits another, and then
// crashes a host mid-run — its VMs come back on the survivors carrying
// their last heartbeat credit. Prints the migration/recovery counters and
// the merged audit table (set ASMAN_AUDIT=1 to attach the auditors).
//
//   $ ./cluster_demo [--vms=N] [--seed=N] [--chaos]
//
// --chaos switches to the acceptance-shaped storm (default 8 hosts):
// seeded churn of migrations/retirements/admissions with two host
// crashes, a degraded window and a link-loss window landing inside it.
#include <cstdio>
#include <cstring>
#include <string>

#include "experiments/cluster.h"

using namespace asman;

int main(int argc, char** argv) {
  namespace ex = asman::experiments;

  std::uint64_t seed = 42;
  std::uint32_t vms = 0;
  bool chaos = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--seed=", 7) == 0) {
      seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--vms=", 6) == 0) {
      vms = static_cast<std::uint32_t>(std::strtoul(a + 6, nullptr, 10));
    } else if (std::strcmp(a, "--chaos") == 0) {
      chaos = true;
    } else {
      std::fprintf(stderr,
                   "usage: cluster_demo [--vms=N] [--seed=N] [--chaos]\n");
      return 2;
    }
  }

  ex::ClusterScenario sc =
      chaos ? ex::cluster_chaos_scenario(core::SchedulerKind::kAsman, 8,
                                         vms ? vms : 48, seed)
            : ex::cluster_scenario(core::SchedulerKind::kAsman, seed);
  const ex::ClusterRunResult rr = ex::run_cluster_scenario(sc);

  std::printf("%s: %u hosts, seed %llu\n", sc.name.c_str(), sc.hosts,
              static_cast<unsigned long long>(seed));
  std::printf("  events                %llu\n",
              static_cast<unsigned long long>(rr.events));
  std::printf("  migrations            %llu started, %llu committed, "
              "%llu aborted, %llu retried\n",
              static_cast<unsigned long long>(rr.migrations_started),
              static_cast<unsigned long long>(rr.migrations_committed),
              static_cast<unsigned long long>(rr.migrations_aborted),
              static_cast<unsigned long long>(rr.migrations_retried));
  std::printf("  pre-copy rounds       %llu (%llu link failures, "
              "%llu timeouts)\n",
              static_cast<unsigned long long>(rr.precopy_rounds),
              static_cast<unsigned long long>(rr.link_failures),
              static_cast<unsigned long long>(rr.phase_timeouts));
  std::printf("  host crashes          %llu (%llu VMs replaced, %llu lost, "
              "%llu partial copies tombstoned)\n",
              static_cast<unsigned long long>(rr.host_crashes),
              static_cast<unsigned long long>(rr.vms_replaced),
              static_cast<unsigned long long>(rr.vms_lost),
              static_cast<unsigned long long>(rr.tombstoned_copies));
  std::printf("  resident at horizon   %llu VMs (%llu heartbeats)\n",
              static_cast<unsigned long long>(rr.vms_resident),
              static_cast<unsigned long long>(rr.heartbeats));
  std::printf("  credit ledger         residual %lld, crash drift %lld\n",
              rr.residual_credit, rr.crash_credit_delta);
  std::printf("  fingerprint           %016llx\n",
              static_cast<unsigned long long>(rr.fingerprint));
  if (rr.audit_checks > 0) {
    std::printf("  audit                 %llu checks, %llu violations\n%s",
                static_cast<unsigned long long>(rr.audit_checks),
                static_cast<unsigned long long>(rr.audit_violations),
                rr.audit_summary.c_str());
  }
  return rr.vms_lost == 0 && rr.audit_violations == 0 ? 0 : 1;
}

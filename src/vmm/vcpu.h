// VCPU and VM records owned by the scheduler.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "core/bounds_spec.h"
#include "simcore/event_queue.h"
#include "vmm/ports.h"
#include "vmm/types.h"

namespace asman::vmm {

/// Credit is held in milli-credits; a VCPU running for one full slot burns
/// kCreditPerSlot. (Integer fixed point keeps accounting exact enough for
/// the fairness tests without floating-point drift.)
using Credit = std::int64_t;
inline constexpr Credit kCreditPerSlot = 100'000;
// The bounds spec pins this constant as an (exact) entry so the
// value-range proof uses the real value; a drift here is a build error.
static_assert(core::bounds_of(core::field::kCreditPerSlot)->lo ==
                  kCreditPerSlot &&
              core::bounds_of(core::field::kCreditPerSlot)->hi ==
                  kCreditPerSlot);

struct Vcpu {
  VcpuKey key;
  Credit credit{0};
  VcpuState state{VcpuState::kRunnable};

  /// PCPU whose run queue holds this VCPU (valid when kRunnable), or the
  /// PCPU it is running on (when kRunning). For kBlocked it remembers the
  /// last home so wakes re-enqueue locally.
  PcpuId where{0};

  /// Temporarily raised priorities. Cosched boost is installed by the
  /// Algorithm-4 IPI, lasts one slot, and is refreshed by the gang head's
  /// scheduling events while the VM stays coscheduled; wake boost models
  /// Xen's BOOST priority for freshly woken UNDER VCPUs. A cosched boost
  /// also overrides credit parking: with per-VM credit pooling the VM's
  /// aggregate share is unchanged — the gang merely spends it aligned.
  bool cosched_boost{false};
  bool cosched_weak{false};  // boost launched from spare (OVER) capacity
  sim::EventId cosched_clear_ev{};
  bool wake_boost{false};

  /// Fault state: a crashed VCPU is permanently blocked — the fault layer
  /// forced it into kBlocked and the scheduler ignores every later kick.
  bool crashed{false};

  /// Pause latch (live migration's stop-and-copy window): set when
  /// pause_vm parked this VCPU while it held work (running/runnable), or
  /// when a kick arrived while the VM was paused. resume_vm replays it as
  /// a wake; cleared on resume.
  bool paused_pending{false};

  /// When this VCPU last went online (for burn/online-time accounting).
  Cycles online_since{0};
  /// Start of the current round-robin timeslice (set when dispatched from
  /// a queue; keep-current across ticks preserves it).
  Cycles slice_start{0};

  /// Cache affinity: the PCPU this VCPU last ran on and when it stopped
  /// running there. A migration away from a still-warm cache_home pays the
  /// topology cost model's refill penalty (see Hypervisor::note_migration).
  PcpuId cache_home{0};
  Cycles cache_home_at{0};
  bool ever_ran{false};

  // -- statistics --
  Cycles total_online{0};
  /// Cycles the accounting discipline actually billed this VCPU for (the
  /// theft meter's "attributed" side; total_online is "consumed"). Under
  /// sampled accounting the two diverge for tick-dodging guests.
  Cycles attributed{0};
  /// Exact-accounting remainder: sub-slot consumption carried to the next
  /// charge so integer credit debits lose nothing to rounding. Numerator
  /// units (cycles * kCreditPerSlot), always < slot_len.
  std::uint64_t charge_carry{0};
  std::uint64_t dispatches{0};
  std::uint64_t migrations{0};
  std::uint64_t cross_llc_migrations{0};
  std::uint64_t cross_socket_migrations{0};
  /// total_online up to which the contention engine has already split this
  /// VCPU's busy cycles into effective + degraded (docs/MODEL.md §2.8).
  /// Only Hypervisor::apply_contention may advance it (audit-seam rule).
  Cycles pressure_mark{0};

  PrioClass prio_class() const {
    if (cosched_boost)
      return cosched_weak ? PrioClass::kWeakCosched : PrioClass::kCosched;
    if (wake_boost) return PrioClass::kWake;
    return credit >= 0 ? PrioClass::kUnder : PrioClass::kOver;
  }
};

struct Vm {
  VmId id{0};
  std::string name;
  std::uint32_t weight{256};
  VmType type{VmType::kGeneral};
  Vcrd vcrd{Vcrd::kLow};
  GuestPort* guest{nullptr};
  /// Deque, not vector: run queues and PcpuRec::current hold raw Vcpu*
  /// into this container, and hot resize_vm must be able to grow/shrink it
  /// without invalidating references to the surviving elements.
  std::deque<Vcpu> vcpus;

  // -- runtime lifecycle --
  /// Cleared by destroy_vm. A dead VM's VCPU records stay behind as
  /// kDestroyed tombstones so per-VM statistics survive to collection;
  /// every scheduling decision and hypercall checks this flag first.
  bool alive{true};
  Cycles destroyed_at{0};
  /// Paused (live migration's stop-and-copy downtime window): every VCPU
  /// is parked in kBlocked through the audited paths and kicks are latched
  /// (Vcpu::paused_pending) instead of enqueued until resume_vm.
  bool paused{false};

  // -- graceful degradation --
  /// A degraded VM gets stock credit treatment (no gang scheduling, no
  /// relocation) until `degraded_until`, re-evaluated at accounting passes.
  /// Installed by the VCRD flap rate-limiter and by repeated gang-watchdog
  /// fires; see Hypervisor::cosched_eligible.
  bool degraded{false};
  Cycles degraded_until{0};
  /// Sliding-window state of the flap rate-limiter (LOW->HIGH transitions
  /// inside the current window).
  Cycles flap_window_start{0};
  std::uint32_t flap_count{0};
  /// When the VM last issued an accepted do_vcrd_op (VCRD staleness TTL).
  Cycles vcrd_last_report{0};
  /// Consecutive gang-watchdog fires without an intervening complete gang.
  std::uint32_t watchdog_streak{0};
  sim::EventId watchdog_ev{};

  // -- adversarial-tenancy defenses (docs/MODEL.md "Threat model") --
  /// Sliding-window state of the BOOST rate-limiter (wake boosts granted
  /// inside the current window; grants beyond ResilienceConfig::boost_limit
  /// open a penalty window during which wakes get no BOOST).
  Cycles boost_window_start{0};
  std::uint32_t boost_count{0};
  Cycles boost_penalty_until{0};
  /// Sliding-window yield-hint observation (hardware-side spin evidence,
  /// same signal core::HwAdaptiveScheduler consumes) backing the VCRD
  /// plausibility clamp: a HIGH claim from a VM that produced fewer than
  /// ResilienceConfig::vcrd_min_yields recent hints is rejected.
  Cycles yield_window_start{0};
  std::uint64_t yields_in_window{0};

  // -- statistics --
  std::uint64_t demotions{0};        // flap/watchdog demotions to degraded
  std::uint64_t stale_vcrd_drops{0}; // HIGH forced to LOW by the TTL
  std::uint64_t cross_llc_migrations{0};
  std::uint64_t cross_socket_migrations{0};
  Cycles migration_penalty{0};  // warm-cache refill cycles charged
  Cycles total_online{0};
  std::uint64_t vcrd_high_transitions{0};
  Cycles vcrd_high_time{0};
  Cycles vcrd_high_since{0};
  /// total_online at the last accounting pass (active-set detection).
  Cycles online_at_last_acct{0};
  // -- theft metrics (adversarial multi-tenancy) --
  /// Cycles billed to this VM by the accounting discipline. Survives VCPU
  /// shrink (per-VM aggregate, not a sum over live VCPU records).
  Cycles cycles_attributed{0};
  /// Online spans that ended without crossing a sampling instant (under
  /// kStochastic: charge draws that missed). The tick-dodger's signature.
  std::uint64_t dodged_samples{0};
  std::uint64_t boost_grants{0};
  std::uint64_t boost_denials{0};
  /// VCRD HIGH claims rejected by the plausibility clamp.
  std::uint64_t implausible_vcrds{0};
  std::uint64_t yield_hints{0};
  // -- memory-system contention ledger (docs/MODEL.md §2.8) --
  /// Busy cycles the contention engine has accounted for this VM, and
  /// their exact partition into full-speed and contention-degraded parts:
  /// pressure_effective + pressure_degraded == pressure_accounted at every
  /// accounting instant (the pressure-conservation invariant). Per-VM
  /// aggregates like cycles_attributed: they survive VCPU shrink and VM
  /// destruction. Only Hypervisor::apply_contention writes them.
  std::uint64_t pressure_accounted{0};
  std::uint64_t pressure_degraded{0};
  std::uint64_t pressure_effective{0};

  std::size_t num_vcpus() const { return vcpus.size(); }
};

/// Cycles a VM consumed beyond what accounting attributed to it, clamped
/// at zero (over-attribution is not theft). Widened through __int128 like
/// every credit-scale quantity so the subtraction can never wrap.
inline std::uint64_t theft_cycles(Cycles consumed, Cycles attributed) {
  const __int128 d = static_cast<__int128>(consumed.v) -
                     static_cast<__int128>(attributed.v);
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

}  // namespace asman::vmm

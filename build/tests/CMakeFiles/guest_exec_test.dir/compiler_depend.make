# Empty compiler generated dependencies file for guest_exec_test.
# This may be replaced when dependencies are built.

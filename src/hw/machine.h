// Physical machine model.
//
// The paper's testbed is a Dell Precision T5400 with two quad-core Xeon
// X5410 CPUs (8 homogeneous PCPUs, 2.33 GHz). Everything the scheduler
// depends on — PCPU count, clock frequency, the Credit scheduler's slot
// and accounting lengths, and IPI latency — is captured here.
#pragma once

#include <cstdint>

#include "simcore/time.h"

namespace asman::hw {

using sim::Cycles;

/// Index of a physical CPU (dense, 0-based).
using PcpuId = std::uint32_t;

struct MachineConfig {
  /// Number of homogeneous physical CPUs (paper: 8).
  std::uint32_t num_pcpus{8};
  /// Core clock; converts wall time to cycles (paper: 2.33 GHz).
  std::uint64_t freq_hz{2'330'000'000ULL};
  /// Basic scheduling time unit: one slot (paper/Xen Credit: 10 ms).
  std::uint64_t slot_ms{10};
  /// Credit accounting interval in slots (paper/Xen: K = 3 -> 30 ms).
  std::uint32_t slots_per_accounting{3};
  /// Round-robin timeslice in slots (paper/Xen: 30 ms): a VCPU sharing a
  /// priority class rotates to the queue tail after this much runtime.
  std::uint32_t slots_per_timeslice{3};
  /// One-way inter-processor interrupt latency (delivery + handler entry).
  /// Measured IPI round trips on Harpertown-class parts are a few
  /// microseconds; 2 us is used as the one-way cost.
  std::uint64_t ipi_latency_us{2};

  sim::ClockDomain clock() const { return sim::ClockDomain{freq_hz}; }
  Cycles slot_cycles() const { return clock().from_ms(slot_ms); }
  Cycles accounting_cycles() const {
    return Cycles{slot_cycles().v * slots_per_accounting};
  }
  Cycles timeslice_cycles() const {
    return Cycles{slot_cycles().v * slots_per_timeslice};
  }
  Cycles ipi_latency() const { return clock().from_us(ipi_latency_us); }
};

}  // namespace asman::hw

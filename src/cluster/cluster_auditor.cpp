#include "cluster/cluster_auditor.h"

#ifdef ASMAN_AUDIT_ENABLED

#include <cstdio>
#include <cstdlib>

#include "audit/auditor.h"
#include "cluster/cluster.h"

namespace asman::cluster {

namespace {

// std::to_string cannot print __int128; credit pools summed over a fleet
// can legitimately exceed 64 bits, so render by hand.
std::string i128_str(__int128 v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  unsigned __int128 u =
      neg ? -static_cast<unsigned __int128>(v) : static_cast<unsigned __int128>(v);
  std::string s;
  while (u != 0) {
    s.insert(s.begin(), static_cast<char>('0' + static_cast<int>(u % 10)));
    u /= 10;
  }
  if (neg) s.insert(s.begin(), '-');
  return s;
}

}  // namespace

ClusterAuditor::ClusterAuditor(const Cluster& cluster, bool fatal)
    : cluster_(cluster), fatal_(fatal || audit::audit_fatal_env()) {}

void ClusterAuditor::flag(audit::Invariant inv, std::string what) {
  audit::AuditReport::Entry& e = report_.entry(inv);
  ++e.violations;
  if (e.violations == 1) {
    e.first_offender = what;
    e.first_at = cluster_.sim_.now();
  }
  if (fatal_) {
    std::fprintf(stderr, "%s", report_.summary().c_str());
    std::fprintf(stderr,
                 "ASMAN_AUDIT_FATAL: cluster invariant %s violated at %llu: "
                 "%s\n",
                 audit::to_string(inv),
                 static_cast<unsigned long long>(cluster_.sim_.now().v),
                 what.c_str());
    std::abort();
  }
}

void ClusterAuditor::on_event() {
  ++report_.events;
  ++report_.full_scans;
  audit::AuditReport::Entry& e =
      report_.entry(audit::Invariant::kSingleOwnership);
  for (std::size_t i = 0; i < cluster_.num_vms(); ++i) {
    const VmRecord& r = cluster_.vm(static_cast<ClusterVmId>(i));
    ++e.checks;
    // Count the hosts holding a live local VM of this cluster-unique name
    // — crashed hosts' copies were tombstoned by the salvage sweep, so
    // they no longer count.
    std::uint32_t holders = 0;
    HostId where = kInvalidHostId;
    for (HostId h = 0; h < cluster_.num_hosts(); ++h) {
      const vmm::Hypervisor& hv = cluster_.host(h);
      for (vmm::VmId lid = 0; lid < hv.num_vms(); ++lid) {
        if (!hv.vm_alive(lid) || hv.vm(lid).name != r.name) continue;
        ++holders;
        where = h;
      }
    }
    const std::uint32_t expect = (r.lost || r.retired) ? 0u : 1u;
    if (holders != expect) {
      flag(audit::Invariant::kSingleOwnership,
           r.name + " resident on " + std::to_string(holders) +
               " host(s), expected " + std::to_string(expect));
      continue;
    }
    if (expect == 1 && where != r.host)
      flag(audit::Invariant::kSingleOwnership,
           r.name + " resident on host " + std::to_string(where) +
               " but the fleet record says host " + std::to_string(r.host));
  }
}

void ClusterAuditor::on_transfer(const char* what, __int128 expected,
                                 __int128 ticket, __int128 seeded,
                                 __int128 residual) {
  audit::AuditReport::Entry& e =
      report_.entry(audit::Invariant::kClusterCreditConservation);
  ++report_.events;
  // Capture exactness: the ticket carries exactly the pool that was
  // independently summed at the capture instant.
  ++e.checks;
  if (ticket != expected)
    flag(audit::Invariant::kClusterCreditConservation,
         std::string(what) + ": ticket pool " + i128_str(ticket) +
             " != captured pool " + i128_str(expected));
  // Split exactness: seeded plus the ledgered residual reconstructs the
  // ticket — nothing minted, nothing lost in transit.
  ++e.checks;
  if (seeded + residual != ticket)
    flag(audit::Invariant::kClusterCreditConservation,
         std::string(what) + ": seeded " + i128_str(seeded) + " + residual " +
             i128_str(residual) + " != ticket " + i128_str(ticket));
}

}  // namespace asman::cluster

#endif  // ASMAN_AUDIT_ENABLED

#include "simcore/histogram.h"

#include <gtest/gtest.h>

namespace asman::sim {
namespace {

TEST(Log2Histogram, BucketPlacement) {
  Log2Histogram h;
  h.add(Cycles{1});     // bucket 0
  h.add(Cycles{2});     // bucket 1
  h.add(Cycles{3});     // bucket 1
  h.add(Cycles{1024});  // bucket 10
  h.add(Cycles{2047});  // bucket 10
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(10), 2u);
  EXPECT_EQ(h.bucket(11), 0u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Log2Histogram, CountAbove) {
  Log2Histogram h;
  h.add(Cycles{100});         // bucket 6
  h.add(Cycles{5000});        // bucket 12
  h.add(Cycles{1ULL << 21});  // bucket 21
  EXPECT_EQ(h.count_above(10), 2u);
  EXPECT_EQ(h.count_above(20), 1u);
  EXPECT_EQ(h.count_above(25), 0u);
  EXPECT_EQ(h.count_above(0), 3u);
}

TEST(Log2Histogram, MaxAndMean) {
  Log2Histogram h;
  h.add(Cycles{10});
  h.add(Cycles{30});
  EXPECT_EQ(h.max_value(), Cycles{30});
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Log2Histogram, EmptyHistogram) {
  Log2Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count_above(0), 0u);
  EXPECT_EQ(h.max_value(), Cycles{0});
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Log2Histogram, SamplesKeptOnlyWhenRequested) {
  Log2Histogram off(false), on(true);
  off.add(Cycles{7});
  on.add(Cycles{7});
  EXPECT_TRUE(off.samples().empty());
  ASSERT_EQ(on.samples().size(), 1u);
  EXPECT_EQ(on.samples()[0], Cycles{7});
}

TEST(Log2Histogram, SampleCapRespected) {
  Log2Histogram h(true, 10);
  for (int i = 0; i < 100; ++i) h.add(Cycles{static_cast<unsigned>(i + 1)});
  EXPECT_EQ(h.samples().size(), 10u);
  EXPECT_EQ(h.total(), 100u);  // counts unaffected by the cap
}

TEST(Log2Histogram, Merge) {
  Log2Histogram a(true), b(true);
  a.add(Cycles{4});
  b.add(Cycles{4});
  b.add(Cycles{1ULL << 22});
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bucket(2), 2u);
  EXPECT_EQ(a.count_above(20), 1u);
  EXPECT_EQ(a.max_value(), Cycles{1ULL << 22});
  EXPECT_EQ(a.samples().size(), 3u);
}

TEST(Log2Histogram, RenderContainsBucketRows) {
  Log2Histogram h;
  for (int i = 0; i < 5; ++i) h.add(Cycles{1 << 12});
  const std::string r = h.render(10, 14);
  EXPECT_NE(r.find("2^12"), std::string::npos);
  EXPECT_NE(r.find("5"), std::string::npos);
  EXPECT_NE(r.find("2^14"), std::string::npos);
}

class BucketSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BucketSweep, BoundaryValuesLandInBucket) {
  const unsigned e = GetParam();
  Log2Histogram h;
  h.add(Cycles{1ULL << e});              // lowest value of bucket e
  h.add(Cycles{(1ULL << (e + 1)) - 1});  // highest value of bucket e
  EXPECT_EQ(h.bucket(e), 2u);
  EXPECT_EQ(h.total(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Exponents, BucketSweep,
                         ::testing::Values(1u, 5u, 10u, 20u, 30u, 40u));

}  // namespace
}  // namespace asman::sim

// Figure 10: SPECjbb2005 throughput in VM V1, Credit vs ASMan.
//
// Warehouses sweep 1..8 on the 4-VCPU VM at online rates 66.7/40/22.2 %;
// throughput = transactions completed per second of virtual time ("bops").
// The SPECjbb score is the average of the throughputs for warehouse counts
// >= the number of VCPUs (4..8). Expected shape: throughput scales up to 4
// warehouses then flattens; at low online rates ASMan beats Credit
// (shared-structure lock convoys are rescued by coscheduling), by up to
// ~25 % at 22.2 %.
#include "bench_util.h"

using namespace asman;
using namespace asman::bench;

namespace {

constexpr core::SchedulerKind kScheds[] = {core::SchedulerKind::kCredit,
                                           core::SchedulerKind::kAsman};
constexpr std::uint32_t kMaxWh = 8;
constexpr double kWindowSeconds = 8.0;

std::string label(core::SchedulerKind k, double rate, std::uint32_t wh) {
  return rate_label(k, rate) + "/wh" + std::to_string(wh);
}

Sweep build_sweep() {
  Sweep s;
  for (core::SchedulerKind k : kScheds) {
    for (const ex::RatePoint& rp : ex::kRatePoints) {
      if (rp.rate == 1.0) continue;
      for (std::uint32_t wh = 1; wh <= kMaxWh; ++wh) {
        ex::Scenario sc = ex::single_vm_scenario(k, rp.weight,
                                                 ex::specjbb_factory(wh));
        sc.horizon = sim::kDefaultClock.from_seconds_f(kWindowSeconds);
        s.add(label(k, rp.rate, wh), std::move(sc));
      }
    }
  }
  return s;
}

double bops(const Sweep& s, const std::string& l) {
  const auto& pr = s.get(l);
  const ex::VmResult& v1 = pr.run.vm("V1");
  return static_cast<double>(v1.work_units) / pr.run.elapsed_seconds;
}

void annotate(const PointResult& pr, benchmark::State& st) {
  const ex::VmResult& v1 = pr.run.vm("V1");
  st.counters["bops"] =
      static_cast<double>(v1.work_units) / pr.run.elapsed_seconds;
}

void print_tables(const Sweep& s) {
  for (const ex::RatePoint& rp : ex::kRatePoints) {
    if (rp.rate == 1.0) continue;
    std::printf("\n== Figure 10: SPECjbb throughput (bops) @ %s ==\n",
                ex::fmt_pct(rp.rate).c_str());
    ex::TextTable t({"warehouses", "Credit", "ASMan", "gain"});
    for (std::uint32_t wh = 1; wh <= kMaxWh; ++wh) {
      const double c = bops(s, label(core::SchedulerKind::kCredit, rp.rate, wh));
      const double a = bops(s, label(core::SchedulerKind::kAsman, rp.rate, wh));
      t.add_row({std::to_string(wh), ex::fmt_f(c, 0), ex::fmt_f(a, 0),
                 ex::fmt_pct(a / c - 1.0)});
    }
    std::printf("%s", t.str().c_str());
  }
  std::printf("\n== Figure 10(d): SPECjbb score (avg bops, warehouses>=4) ==\n");
  ex::TextTable t({"online rate", "Credit", "ASMan", "gain"});
  for (const ex::RatePoint& rp : ex::kRatePoints) {
    if (rp.rate == 1.0) continue;
    double c = 0, a = 0;
    for (std::uint32_t wh = 4; wh <= kMaxWh; ++wh) {
      c += bops(s, label(core::SchedulerKind::kCredit, rp.rate, wh));
      a += bops(s, label(core::SchedulerKind::kAsman, rp.rate, wh));
    }
    c /= kMaxWh - 3;
    a /= kMaxWh - 3;
    t.add_row({ex::fmt_pct(rp.rate), ex::fmt_f(c, 0), ex::fmt_f(a, 0),
               ex::fmt_pct(a / c - 1.0)});
  }
  std::printf("%s", t.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep = build_sweep();
  return run_bench_main(argc, argv, sweep, "fig10", annotate, print_tables);
}

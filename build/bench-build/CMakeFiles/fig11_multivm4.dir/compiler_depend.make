# Empty compiler generated dependencies file for fig11_multivm4.
# This may be replaced when dependencies are built.

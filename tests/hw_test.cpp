// hw layer: machine configuration arithmetic and the IPI bus.
#include <gtest/gtest.h>

#include "hw/ipi.h"
#include "hw/machine.h"
#include "simcore/simulator.h"

namespace asman::hw {
namespace {

TEST(MachineConfig, PaperDefaults) {
  MachineConfig m;
  EXPECT_EQ(m.num_pcpus, 8u);
  EXPECT_EQ(m.freq_hz, 2'330'000'000ULL);
  EXPECT_EQ(m.slot_ms, 10u);
  EXPECT_EQ(m.slots_per_accounting, 3u);
  EXPECT_EQ(m.slots_per_timeslice, 3u);
}

TEST(MachineConfig, DerivedCycles) {
  MachineConfig m;
  m.freq_hz = 1'000'000'000ULL;  // 1 GHz for round numbers
  m.slot_ms = 10;
  EXPECT_EQ(m.slot_cycles().v, 10'000'000ULL);
  EXPECT_EQ(m.accounting_cycles().v, 30'000'000ULL);
  EXPECT_EQ(m.timeslice_cycles().v, 30'000'000ULL);
  m.ipi_latency_us = 5;
  EXPECT_EQ(m.ipi_latency().v, 5'000ULL);
}

TEST(IpiBus, DeliversAfterLatency) {
  sim::Simulator s;
  MachineConfig m;
  m.num_pcpus = 2;
  m.freq_hz = 1'000'000'000ULL;
  m.ipi_latency_us = 3;
  IpiBus bus(s, m);
  PcpuId got_target = 99;
  std::uint32_t got_vector = 0;
  bus.set_handler(1, [&](PcpuId t, std::uint32_t v) {
    got_target = t;
    got_vector = v;
  });
  bus.send(0, 1, 42);
  EXPECT_EQ(bus.sent(), 1u);
  EXPECT_EQ(bus.delivered(), 0u);
  s.run_until(sim::Cycles{2'999});
  EXPECT_EQ(got_target, 99u);  // not yet
  s.run_until(sim::Cycles{3'000});
  EXPECT_EQ(got_target, 1u);
  EXPECT_EQ(got_vector, 42u);
  EXPECT_EQ(bus.delivered(), 1u);
}

TEST(IpiBus, MissingHandlerIsCountedButHarmless) {
  // A send whose target has no handler installed is accounted as dropped,
  // never delivered: `delivered` means "a handler ran".
  sim::Simulator s;
  MachineConfig m;
  m.num_pcpus = 2;
  IpiBus bus(s, m);
  bus.send(1, 0, 7);
  s.run_all();
  EXPECT_EQ(bus.sent(), 1u);
  EXPECT_EQ(bus.delivered(), 0u);
  EXPECT_EQ(bus.dropped(), 1u);
}

TEST(IpiBus, OutOfRangeTargetIsDroppedNotDereferenced) {
  sim::Simulator s;
  MachineConfig m;
  m.num_pcpus = 2;
  IpiBus bus(s, m);
  bus.send(0, 5, 7);   // beyond the machine
  bus.send(0, 2, 7);   // one past the end
  s.run_all();
  EXPECT_EQ(bus.sent(), 2u);
  EXPECT_EQ(bus.delivered(), 0u);
  EXPECT_EQ(bus.dropped(), 2u);
}

TEST(IpiBus, ManyInFlight) {
  sim::Simulator s;
  MachineConfig m;
  m.num_pcpus = 4;
  IpiBus bus(s, m);
  int hits = 0;
  for (PcpuId p = 0; p < 4; ++p)
    bus.set_handler(p, [&hits](PcpuId, std::uint32_t) { ++hits; });
  for (int i = 0; i < 100; ++i)
    bus.send(0, static_cast<PcpuId>(i % 4), static_cast<std::uint32_t>(i));
  s.run_all();
  EXPECT_EQ(hits, 100);
  EXPECT_EQ(bus.delivered(), 100u);
}

}  // namespace
}  // namespace asman::hw

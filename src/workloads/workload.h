// Workload abstraction: something deployable into a guest VM.
//
// A Workload creates its synchronization objects and spawns its threads
// into one guest kernel. Finite workloads (the NPB models, SPEC CPU rate
// batches) end; throughput workloads (SPECjbb) run until the simulation
// horizon and expose counters instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "guest/guest_kernel.h"
#include "hw/memsys/footprint.h"
#include "simcore/time.h"
#include "vmm/ports.h"

namespace asman::workloads {

using sim::Cycles;

class Workload {
 public:
  virtual ~Workload() = default;

  /// Create sync objects and spawn threads into `g` (call exactly once,
  /// before the simulation starts).
  virtual void deploy(guest::GuestKernel& g) = 0;

  /// Optional hypervisor-facing hookup, called once right after deploy()
  /// with the VM's hypercall port and its hypervisor id. Honest workloads
  /// ignore it (the Monitoring Module owns their VCRD reporting); the
  /// adversary models use it to issue hypercalls directly — a paravirtual
  /// guest can always call the hypervisor, truthfully or not.
  virtual void connect(sim::Simulator& simulation, vmm::HypervisorPort& port,
                       vmm::VmId vm) {
    (void)simulation;
    (void)port;
    (void)vm;
  }

  virtual std::string name() const = 0;

  /// Finite workloads complete; infinite ones run to the horizon.
  virtual bool finite() const { return true; }

  /// For batch workloads repeated in rounds (paper §5.3 runs each benchmark
  /// repeatedly and averages the first 10 rounds): completion count and
  /// per-round completion timestamps.
  virtual std::uint64_t rounds_completed() const { return 0; }
  virtual std::vector<Cycles> round_times() const { return {}; }

  /// Throughput-style counters (SPECjbb transactions etc.).
  virtual std::uint64_t work_units() const { return 0; }

  /// Memory footprint for the contention engine (docs/MODEL.md §2.8):
  /// working-set bytes plus a piecewise miss-rate curve. The default —
  /// a zero footprint — keeps the engine inert for this VM, so existing
  /// workloads are bit-compatible until they opt in.
  virtual hw::memsys::MemFootprint footprint() const { return {}; }
};

}  // namespace asman::workloads

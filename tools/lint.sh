#!/usr/bin/env bash
# Run clang-tidy over the whole codebase using the compile database.
#
#   tools/lint.sh [--fix] [build-dir] [-- extra clang-tidy args]
#
# --fix applies clang-tidy's suggested fixits in place (serialized through
# run-clang-tidy when available, so concurrent edits to shared headers
# cannot race).
#
# The build directory must have been configured already (any preset will
# do: CMakeLists.txt always exports compile_commands.json). Exits 0 when
# clang-tidy is not installed so that `tools/lint.sh` can sit in local
# hooks without breaking machines that lack the tool; CI installs it and
# runs this same script, so absence there would fail the job that checks
# for it explicitly.
set -euo pipefail

cd "$(dirname "$0")/.."

FIX=0
if [ "${1:-}" = "--fix" ]; then
  FIX=1
  shift
fi
BUILD_DIR="${1:-build}"
shift || true
[ "${1:-}" = "--" ] && shift

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      TIDY="$cand"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "lint.sh: clang-tidy not found; skipping (set CLANG_TIDY to override)" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "lint.sh: $BUILD_DIR/compile_commands.json missing -- configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

# First-party translation units only (third-party/test-framework TUs that
# end up in the compile database are not ours to lint). --others picks up
# files not yet committed (e.g. a freshly added src/vmm TU) so pre-commit
# runs lint what is about to land, not just what already did. asman-lint's
# fixtures are excluded (they plant violations on purpose and are never
# compiled), as is engine_clang.cpp (only in the database when the clang
# AST engine was configured in).
mapfile -t FILES < <(git ls-files --cached --others --exclude-standard \
                                  'src/*.cpp' 'tests/*.cpp' 'bench/*.cpp' \
                                  'examples/*.cpp' 'tools/asman_lint/*.cpp' \
                                  ':!tools/asman_lint/fixtures/*' \
                                  ':!tools/asman_lint/engine_clang.cpp' \
                                  | sort -u)

echo "lint.sh: $TIDY over ${#FILES[@]} files (database: $BUILD_DIR)" >&2
STATUS=0
RUNNER="$(command -v run-clang-tidy || true)"
if [ -n "$RUNNER" ]; then
  FIX_ARGS=()
  [ "$FIX" = 1 ] && FIX_ARGS=(-fix)
  "$RUNNER" -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -quiet \
      "${FIX_ARGS[@]}" "$@" "${FILES[@]}" || STATUS=$?
else
  FIX_ARGS=()
  [ "$FIX" = 1 ] && FIX_ARGS=(--fix)
  for f in "${FILES[@]}"; do
    "$TIDY" -p "$BUILD_DIR" --quiet "${FIX_ARGS[@]}" "$@" "$f" || STATUS=$?
  done
fi
exit $STATUS

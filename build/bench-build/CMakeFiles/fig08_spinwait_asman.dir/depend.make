# Empty dependencies file for fig08_spinwait_asman.
# This may be replaced when dependencies are built.

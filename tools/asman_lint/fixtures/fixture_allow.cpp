// Fixture for the `// asman-lint: allow(...)` escape hatch: three planted
// determinism violations carry a suppression (own-line-above, same-line,
// and allow(all) forms), one control stays unsuppressed. lint_test asserts
// the ledger lists exactly the three suppressions with their reasons, that
// only the control is an error, and that `--max-allows 2` trips the budget.
#include <cstdlib>

namespace fixture {

// asman-lint: allow(determinism) -- fixture: pragma on the line above
const char* mode_a() { return std::getenv("FIXTURE_A"); }

const char* mode_b() { return std::getenv("FIXTURE_B"); }  // asman-lint: allow(determinism) -- fixture: same-line pragma

// asman-lint: allow(all) -- fixture: allow(all) covers every check
const char* mode_c() { return std::getenv("FIXTURE_C"); }

// Unsuppressed control: must still be reported as an error.
const char* mode_d() { return std::getenv("FIXTURE_D"); }

}  // namespace fixture

// Tricky-legal fixture for thread-safety / rng-discipline: the sanctioned
// patterns for pool workers — task-indexed writes, per-task seeded RNG
// streams, and lock-protected shared accumulation. asman_lint must report
// zero findings here.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

struct ThreadPool {
  template <class F>
  void parallel_for(std::size_t n, F fn);
};

struct Mutex {
  void lock();
  void unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};

struct Rng {
  explicit Rng(std::uint64_t seed);
  double uniform();
};

double simulate_point(std::uint64_t seed);

void sweep(ThreadPool& pool, std::vector<double>& out, double& total,
           Mutex& mu, std::uint64_t base_seed) {
  pool.parallel_for(out.size(), [&](std::size_t i) {
    // Per-task stream: split the seed BEFORE drawing, so every task is a
    // pure function of (base_seed, i) no matter how workers interleave.
    Rng rng(base_seed + i);
    const double val = simulate_point(static_cast<std::uint64_t>(
        rng.uniform() * 1000.0));
    out[i] = val;  // task-indexed slot: no two workers share it
    // Shared accumulation is legal under a lock.
    MutexLock lk(mu);
    total += val;
  });
}

}  // namespace fixture

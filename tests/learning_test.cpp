// Algorithm 1/2: the modified Roth-Erev estimator for locality durations.
#include "core/learning.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace asman::core {
namespace {

Cycles ms(std::uint64_t v) { return sim::kDefaultClock.from_ms(v); }

LearningConfig cfg(std::uint32_t n = 8, std::uint64_t unit_ms = 10) {
  LearningConfig c;
  c.num_candidates = n;
  c.unit = ms(unit_ms);
  c.seed = 1234;
  return c;
}

TEST(Learning, InitialPropensitiesUniformAndScaled) {
  LearningEstimator e(cfg(8));
  const auto& q = e.propensities();
  ASSERT_EQ(q.size(), 8u);
  // q0 = s(0) * A / N with A = (N+1)/2 in unit counts.
  EXPECT_NEAR(q[0], 1.0 * 4.5 / 8.0, 1e-12);
  for (double v : q) EXPECT_DOUBLE_EQ(v, q[0]);
}

TEST(Learning, CandidatesAreMultiplesOfUnit) {
  LearningEstimator e(cfg(8, 10));
  for (std::uint32_t k = 0; k < 8; ++k)
    EXPECT_EQ(e.candidate(k), ms(10 * (k + 1)));
}

TEST(Learning, EstimateAlwaysACandidate) {
  LearningEstimator e(cfg());
  Cycles t{0};
  for (int i = 0; i < 50; ++i) {
    t += ms(40);
    const Cycles x = e.on_adjusting_event(t);
    EXPECT_GE(x, ms(10));
    EXPECT_LE(x, ms(80));
    EXPECT_EQ(x.v % ms(10).v, 0u);
  }
  EXPECT_EQ(e.events(), 50u);
}

TEST(Learning, DeterministicForSameSeed) {
  LearningEstimator a(cfg()), b(cfg());
  Cycles t{0};
  for (int i = 0; i < 20; ++i) {
    t += ms(37);
    EXPECT_EQ(a.on_adjusting_event(t), b.on_adjusting_event(t));
  }
}

TEST(Learning, UnderCoschedulingGrowsTheEstimate) {
  // Adjusting events arrive immediately after each window closes (gap ~ 0
  // <= Delta): the paper's under-coscheduling case. All candidates larger
  // than the chosen one are reinforced, so the estimate must climb to the
  // maximum.
  LearningEstimator e(cfg(8, 10));
  Cycles t{0};
  Cycles x{0};
  for (int i = 0; i < 30; ++i) {
    t += x + ms(1);  // next locality 1 ms after the window closes
    x = e.on_adjusting_event(t);
  }
  EXPECT_EQ(x, ms(80));  // max candidate
}

TEST(Learning, WellSeparatedLocalitiesDoNotGrowForever) {
  // Gaps far above Delta: the reinforcement branch only strengthens the
  // chosen candidate, so the estimate must not ratchet to the maximum.
  LearningConfig c = cfg(8, 10);
  c.under_gap = ms(20);
  LearningEstimator e(c);
  Cycles t{0};
  Cycles last{0};
  for (int i = 0; i < 40; ++i) {
    t += ms(500);  // localities 500 ms apart
    last = e.on_adjusting_event(t);
  }
  EXPECT_LT(last, ms(80));
}

TEST(Learning, PropensitiesStayPositiveAndFinite) {
  LearningEstimator e(cfg());
  sim::Rng rng(5);
  Cycles t{0};
  for (int i = 0; i < 200; ++i) {
    t += Cycles{rng.uniform(ms(1).v, ms(400).v)};
    e.on_adjusting_event(t);
    for (double q : e.propensities()) {
      EXPECT_GT(q, 0.0);
      EXPECT_LT(q, 1e6);
    }
  }
}

TEST(Learning, RatioCapGuardsDegenerateGaps) {
  LearningConfig c = cfg();
  c.under_gap = Cycles{0};  // force the reinforcement branch always
  c.ratio_cap = 2.0;
  LearningEstimator e(c);
  Cycles t{0};
  // Wildly growing gaps would explode the ratio without the cap.
  std::uint64_t gap = ms(1).v;
  for (int i = 0; i < 30; ++i) {
    t += Cycles{gap};
    gap *= 2;
    if (gap > ms(2000).v) gap = ms(1).v;
    e.on_adjusting_event(t);
    for (double q : e.propensities()) EXPECT_LT(q, 100.0);
  }
}

class LocalityConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalityConvergence, EstimateCoversTrueLocalityLength) {
  // Synthetic ground truth: localities last X ms; whenever the estimate is
  // below X the next over-threshold event follows right after the window
  // (under-coscheduling); once the estimate reaches X, events separate by
  // the idle period. The final estimate should cover X.
  const Cycles X = ms(GetParam());
  LearningConfig c = cfg(16, 10);
  LearningEstimator e(c);
  Cycles t{0};
  Cycles est{0};
  for (int i = 0; i < 60; ++i) {
    if (est < X) {
      t += est + ms(1);  // locality continues past the window
    } else {
      t += est + ms(600);  // window covered it; next locality much later
    }
    est = e.on_adjusting_event(t);
  }
  // The under-coscheduling branch guarantees the estimate climbs until it
  // covers the true locality length. (The published update has no
  // corresponding shrink branch, so an over-estimate from the initial
  // probabilistic picks may persist — only the lower bound is guaranteed.)
  EXPECT_GE(est, X);
  EXPECT_LE(est, Cycles{c.unit.v * c.num_candidates});
}

INSTANTIATE_TEST_SUITE_P(TrueLengths, LocalityConvergence,
                         ::testing::Values(20, 40, 70, 110));

}  // namespace
}  // namespace asman::core

file(REMOVE_RECURSE
  "CMakeFiles/asman_experiments.dir/paper.cpp.o"
  "CMakeFiles/asman_experiments.dir/paper.cpp.o.d"
  "CMakeFiles/asman_experiments.dir/runner.cpp.o"
  "CMakeFiles/asman_experiments.dir/runner.cpp.o.d"
  "CMakeFiles/asman_experiments.dir/scenario.cpp.o"
  "CMakeFiles/asman_experiments.dir/scenario.cpp.o.d"
  "CMakeFiles/asman_experiments.dir/tables.cpp.o"
  "CMakeFiles/asman_experiments.dir/tables.cpp.o.d"
  "libasman_experiments.a"
  "libasman_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asman_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for specjbb_test.
# This may be replaced when dependencies are built.

// Runtime VM lifecycle: hot create/destroy/resize, the admission
// controller, and the overload governor (docs/MODEL.md "VM lifecycle &
// admission").
//
// Lifecycle operations are legal at any scheduling event. The rules that
// keep every invariant intact:
//
//   * a hot-created VM starts with zero credit; its share is minted at the
//     next accounting period, so existing VMs' credits are never touched,
//   * a destroyed VM is marked dead *first* (no dispatch path re-picks
//     it), then every VCPU is drained through the audited transition
//     machinery into a kDestroyed tombstone — records and statistics stay
//     behind, ids are never reused,
//   * a mid-gang destruction aborts the gang cleanly (boosts + watchdog
//     cancelled per member) and the freed PCPUs re-dispatch; a gang shrunk
//     by resize_vm re-spreads its survivors onto pairwise-distinct PCPUs,
//   * admission rejections leave no trace in scheduler state beyond the
//     counter: the request simply never happened.
#include <algorithm>
#include <cassert>
#include <cstdio>
#include <utility>
#include <vector>

#include "core/bounds_spec.h"
#include "vmm/hypervisor.h"

namespace asman::vmm {

std::size_t Hypervisor::num_live_vms() const {
  std::size_t n = 0;
  for (const auto& v : vms_)
    if (v->alive) ++n;
  return n;
}

double Hypervisor::prospective_load(double extra) const {
  double load = extra;
  for (const auto& v : vms_)
    if (v->alive)
      load += static_cast<double>(v->num_vcpus()) *
              (static_cast<double>(v->weight) / kReferenceWeight);
  return online_pcpus_ == 0 ? load : load / online_pcpus_;
}

double Hypervisor::weighted_vcpu_load() const { return prospective_load(0.0); }

PcpuId Hypervisor::place_new_vcpu(VmId id, std::uint32_t vidx,
                                  const Vm& self) const {
  const std::uint32_t n = machine_.num_pcpus;
  if (topo_place_active()) {
    // Socket-locality-preserving round robin: walk the PCPUs socket-major
    // starting at socket (id % sockets), so a VM's VCPUs fill one socket's
    // cores (sharing LLC domains) before spilling into the next, and
    // different VMs start on different sockets. Offline PCPUs are skipped
    // within the same order.
    const std::uint32_t ns = topo_.num_sockets();
    std::vector<PcpuId> order;
    order.reserve(n);
    for (std::uint32_t k = 0; k < ns; ++k)
      for (const PcpuId p : topo_.pcpus_in_socket((id + k) % ns))
        order.push_back(p);
    const std::uint32_t at = vidx % n;
    if (pressure_place_active()) {
      // Pressure spread: among the same socket-major candidate order, pick
      // the first online PCPU on the LLC with the fewest of this VM's
      // already-placed sibling VCPUs and, among those, the least working-
      // set demand already registered (earlier VMs' footprints; this VM's
      // own footprint arrives after create_vm, so the sibling key is what
      // keeps a multi-VCPU streamer from stacking its whole working set on
      // whichever domain happens to look emptiest). With no registered
      // demand and no siblings every LLC ties and the first online
      // candidate wins — exactly the topology path, so zero-footprint runs
      // are bit-identical (the engine gates this branch off entirely).
      std::vector<std::uint64_t> demand(topo_.num_llcs(), 0);
      for (const auto& mp : vms_) {
        const Vm& m = *mp;
        if (!m.alive || vm_footprint(m.id).zero()) continue;
        for (const Vcpu& c : m.vcpus)
          demand[topo_.llc_of(c.where)] += vcpu_llc_share(c);
      }
      std::vector<std::uint32_t> siblings(topo_.num_llcs(), 0);
      for (std::uint32_t i = 0; i < vidx && i < self.vcpus.size(); ++i)
        ++siblings[topo_.llc_of(self.vcpus[i].where)];
      PcpuId pick = n;
      std::uint32_t best_sib = 0;
      std::uint64_t best = 0;
      for (std::uint32_t step = 0; step < n; ++step) {
        const PcpuId p = order[(at + step) % n];
        if (!pcpus_[p].online) continue;
        const std::uint32_t sib = siblings[topo_.llc_of(p)];
        const std::uint64_t d = demand[topo_.llc_of(p)];
        if (pick == n || sib < best_sib ||
            (sib == best_sib && d < best)) {
          pick = p;
          best_sib = sib;
          best = d;
        }
      }
      if (pick != n) return pick;
      return order[at];  // unreachable: the last online PCPU refuses to die
    }
    for (std::uint32_t step = 0; step < n; ++step) {
      const PcpuId p = order[(at + step) % n];
      if (pcpus_[p].online) return p;
    }
    return order[at];  // unreachable: the last online PCPU refuses to die
  }
  // Round-robin offset per VM (same formula as boot-time placement, so
  // fault-free pre-start runs stay bit-identical to earlier builds),
  // advanced past hot-unplugged PCPUs.
  auto p = static_cast<PcpuId>((id + vidx) % n);
  for (std::uint32_t step = 0; step < n; ++step) {
    if (pcpus_[p].online) return p;
    p = static_cast<PcpuId>((p + 1) % n);
  }
  return p;  // unreachable: the last online PCPU refuses to die
}

VmId Hypervisor::create_vm(std::string name, std::uint32_t weight,
                           std::uint32_t n_vcpus, VmType type) {
  assert(weight > 0 && n_vcpus > 0);
  // Hold per-VM quantities to the shared bounds spec: weight is clamped
  // (a too-heavy VM still boots, at the heaviest proved weight), an absurd
  // VCPU count is refused outright — a 5000-VCPU VM is a config bug, not a
  // scheduling problem, and admitting it would leave the value-range
  // proof's assumptions behind.
  weight = core::clamp_to_bounds(core::field::weight, weight);
  if (n_vcpus >
      static_cast<std::uint32_t>(core::bounds_of(core::field::n_vcpus)->hi)) {
    note_trace(sim::TraceCat::kSched,
               name + " rejected: n_vcpus " + std::to_string(n_vcpus) +
                   " outside the bounds spec");
    return kInvalidVmId;
  }
  if (admission_enabled()) {
    const double extra =
        static_cast<double>(n_vcpus) *
        (static_cast<double>(weight) / kReferenceWeight);
    const double load = prospective_load(extra);
    if (load > admission_.max_vcpus_per_pcpu) {
      ++admission_rejects_;
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "admission reject: %s (+%u VCPUs would load %.2f/%.2f "
                    "per PCPU)",
                    name.c_str(), n_vcpus, load,
                    admission_.max_vcpus_per_pcpu);
      note_trace(sim::TraceCat::kSched, buf);
      return kInvalidVmId;
    }
  }
  const VmId id = static_cast<VmId>(vms_.size());
  auto v = std::make_unique<Vm>();
  v->id = id;
  v->name = std::move(name);
  v->weight = weight;
  v->type = type;
  v->vcpus.resize(n_vcpus);
  for (std::uint32_t i = 0; i < n_vcpus; ++i) {
    Vcpu& c = v->vcpus[i];
    c.key = VcpuKey{id, i};
    // A fresh record is born kRunnable (Vcpu's default member init), so no
    // state write happens outside the audited seam. Spread VCPUs
    // round-robin over (online) PCPUs, offset per VM so equally sized VMs
    // do not all pile onto the low-numbered queues.
    c.where = place_new_vcpu(id, i, *v);
    enqueue(c.where, &c);
  }
  vms_.push_back(std::move(v));
  if (started_) {
    ++vm_creates_;
    note_trace(sim::TraceCat::kSched,
               vm(id).name + " hot-created (" + std::to_string(n_vcpus) +
                   " VCPUs, weight " + std::to_string(weight) + ")");
    audit_created(id);
    maybe_shed_overload();
    // Let idle PCPUs pick the new VCPUs up right away — deferred one
    // event so the caller can attach_guest first (go_online must find the
    // guest port wired); busy PCPUs collect them at their next tick.
    sim_.after(Cycles{0}, [this] {
      in_scheduler_ = true;
      for (PcpuId q = 0; q < machine_.num_pcpus; ++q)
        if (pcpus_[q].online && pcpus_[q].current == nullptr) dispatch(q);
      in_scheduler_ = false;
    });
    audit_event(AuditPoint::kLifecycle);
  }
  return id;
}

void Hypervisor::drain_vcpu(Vcpu& w, std::vector<PcpuId>& freed) {
  if (w.cosched_clear_ev.valid()) {
    sim_.cancel(w.cosched_clear_ev);
    w.cosched_clear_ev = {};
  }
  w.cosched_boost = false;
  w.cosched_weak = false;
  w.wake_boost = false;
  switch (w.state) {
    case VcpuState::kRunning: {
      // Burn/charge through the normal unmap path (the guest sees its
      // offline callback), then tombstone from kRunnable.
      const PcpuId p = w.where;
      Vcpu* u = unmap_current(p);
      set_state(*u, VcpuState::kDestroyed);
      freed.push_back(p);
      break;
    }
    case VcpuState::kRunnable: {
      const bool removed = dequeue(w.where, &w);
      assert(removed);
      (void)removed;
      set_state(w, VcpuState::kDestroyed);
      break;
    }
    case VcpuState::kBlocked:
      set_state(w, VcpuState::kDestroyed);
      break;
    case VcpuState::kDestroyed:
      break;
  }
  // Residual credit leaves with the VCPU: a tombstone holds no stake in
  // the next redistribution (the mint is split among live VMs only).
  w.credit = 0;
}

void Hypervisor::redispatch_freed(const std::vector<PcpuId>& freed) {
  for (const PcpuId p : freed) {
    if (!pcpus_[p].online) continue;
    if (pcpus_[p].current == nullptr) dispatch(p);
    if (pcpus_[p].current == nullptr && !pcpus_[p].idle_marked) {
      pcpus_[p].idle_marked = true;
      pcpus_[p].idle_since = sim_.now();
    }
  }
}

bool Hypervisor::destroy_vm(VmId id) {
  if (id >= vms_.size() || !vms_[id]->alive) return false;
  Vm& v = *vms_[id];
  // Dead first: from here on no dispatch, steal, IPI or hypercall path
  // touches this VM (cosched_eligible and the hypercall guards all check
  // `alive` before anything else).
  v.alive = false;
  v.destroyed_at = sim_.now();
  ++vm_destroys_;
  note_trace(sim::TraceCat::kSched, v.name + " destroyed");
  const bool was = in_scheduler_;
  in_scheduler_ = true;
  if (v.watchdog_ev.valid()) {
    sim_.cancel(v.watchdog_ev);
    v.watchdog_ev = {};
  }
  if (v.vcrd == Vcrd::kHigh) {  // close the HIGH interval for statistics
    v.vcrd_high_time += sim_.now() - v.vcrd_high_since;
    v.vcrd = Vcrd::kLow;
  }
  // Mid-gang destruction aborts the gang cleanly: each member's boost is
  // cancelled and it is drained through the audited transition paths —
  // running members unmap (burn/charge as usual), queued members leave
  // their run queues, blocked members tombstone in place.
  std::vector<PcpuId> freed;
  for (Vcpu& w : v.vcpus) drain_vcpu(w, freed);
  v.guest = nullptr;  // after the drains, so offline callbacks reached it
  redispatch_freed(freed);
  maybe_restore_overload();  // load fell; the shed backoff still gates
  in_scheduler_ = was;
  audit_event(AuditPoint::kLifecycle);
  return true;
}

bool Hypervisor::resize_vm(VmId id, std::uint32_t n_vcpus) {
  if (id >= vms_.size() || n_vcpus == 0 || !vms_[id]->alive) return false;
  Vm& v = *vms_[id];
  const auto n_old = static_cast<std::uint32_t>(v.num_vcpus());
  if (n_vcpus == n_old) return true;
  const bool was = in_scheduler_;
  if (n_vcpus > n_old) {
    if (admission_enabled()) {
      const double extra =
          static_cast<double>(n_vcpus - n_old) *
          (static_cast<double>(v.weight) / kReferenceWeight);
      const double load = prospective_load(extra);
      if (load > admission_.max_vcpus_per_pcpu) {
        ++admission_rejects_;
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "admission reject: resize %s to %u VCPUs (load "
                      "%.2f/%.2f per PCPU)",
                      v.name.c_str(), n_vcpus, load,
                      admission_.max_vcpus_per_pcpu);
        note_trace(sim::TraceCat::kSched, buf);
        return false;
      }
    }
    in_scheduler_ = true;
    // Grow: fresh runnable VCPUs with zero credit (the VM's pool is
    // re-split over the new count at the next accounting). Vm::vcpus is a
    // deque, so push_back leaves references to siblings intact.
    for (std::uint32_t i = n_old; i < n_vcpus; ++i) {
      v.vcpus.emplace_back();  // born kRunnable via Vcpu's default init
      Vcpu& c = v.vcpus.back();
      c.key = VcpuKey{id, i};
      c.where = place_new_vcpu(id, i, v);
      enqueue(c.where, &c);
    }
    audit_resized(id);
    maybe_shed_overload();
    // A grown gang may now collide with itself (or, topology-aware, spill
    // across more sockets than it needs); re-spread before launch.
    if (cosched_eligible(v) &&
        (gang_homes_collide(v) || gang_spans_excess_sockets(v)))
      relocate_vm(v);
    if (started_)
      sim_.after(Cycles{0}, [this] {
        in_scheduler_ = true;
        for (PcpuId q = 0; q < machine_.num_pcpus; ++q)
          if (pcpus_[q].online && pcpus_[q].current == nullptr) dispatch(q);
        in_scheduler_ = false;
      });
  } else {
    in_scheduler_ = true;
    // Shrink: drain the top indices through the audited paths, then pop
    // the tombstones (lower indices keep their keys and queue slots).
    std::vector<PcpuId> freed;
    for (std::uint32_t i = n_old; i-- > n_vcpus;) {
      drain_vcpu(v.vcpus[i], freed);
      v.vcpus.pop_back();
    }
    audit_resized(id);
    // Mid-gang shrink: survivors must hold pairwise-distinct PCPUs before
    // the next launch (the drained members may have pinned shared homes) —
    // and a smaller gang may now fit fewer sockets.
    if (cosched_eligible(v) &&
        (gang_homes_collide(v) || gang_spans_excess_sockets(v)))
      relocate_vm(v);
    redispatch_freed(freed);
    maybe_restore_overload();
  }
  ++vm_resizes_;
  note_trace(sim::TraceCat::kSched,
             v.name + " resized " + std::to_string(n_old) + " -> " +
                 std::to_string(n_vcpus) + " VCPUs");
  in_scheduler_ = was;
  audit_event(AuditPoint::kLifecycle);
  return true;
}

// --- overload governor -------------------------------------------------------

void Hypervisor::maybe_shed_overload() {
  if (!admission_enabled() || overload_shed_) return;
  const double load = weighted_vcpu_load();
  if (load <= admission_.shed_level * admission_.max_vcpus_per_pcpu) return;
  overload_shed_ = true;
  overload_until_ = sim_.now() + admission_.restore_backoff;
  ++overload_sheds_;
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "overload shed: coscheduling off (load %.2f/%.2f per PCPU)",
                load, admission_.max_vcpus_per_pcpu);
  note_trace(sim::TraceCat::kMonitor, buf);
  // Gangs that were eligible a moment ago still hold boosts and watchdogs;
  // strip them so every PCPU re-picks under stock credit rules. Fairness
  // is untouched — the members keep running as ordinary UNDER VCPUs.
  const bool was = in_scheduler_;
  in_scheduler_ = true;
  for (auto& vp : vms_) {
    Vm& v = *vp;
    if (!v.alive) continue;
    if (v.watchdog_ev.valid()) {
      sim_.cancel(v.watchdog_ev);
      v.watchdog_ev = {};
    }
    if (wants_cosched(v) && !v.degraded) co_stop(v);
  }
  in_scheduler_ = was;
}

void Hypervisor::maybe_restore_overload() {
  if (!overload_shed_) return;
  if (sim_.now() < overload_until_) return;
  const double load = weighted_vcpu_load();
  if (load > admission_.restore_level * admission_.max_vcpus_per_pcpu)
    return;
  overload_shed_ = false;
  ++overload_restores_;
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "overload restored: coscheduling on (load %.2f/%.2f per "
                "PCPU)",
                load, admission_.max_vcpus_per_pcpu);
  note_trace(sim::TraceCat::kMonitor, buf);
  // While shed, gang members drifted onto shared homes under stock rules;
  // regaining eligibility with a colliding placement would double-book a
  // PCPU at the next launch (excess-socket drift is repacked too).
  for (auto& vp : vms_) {
    Vm& v = *vp;
    if (cosched_eligible(v) &&
        (gang_homes_collide(v) || gang_spans_excess_sockets(v)))
      relocate_vm(v);
  }
}

}  // namespace asman::vmm

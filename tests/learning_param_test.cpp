// Parameter-grid property tests for the Roth-Erev estimator: the
// qualitative guarantees must hold across reasonable (r, e) choices.
#include <gtest/gtest.h>

#include "core/learning.h"
#include "simcore/rng.h"

namespace asman::core {
namespace {

Cycles ms(std::uint64_t v) { return sim::kDefaultClock.from_ms(v); }

struct Params {
  double r;
  double e;
};

class LearningGrid : public ::testing::TestWithParam<Params> {
 protected:
  LearningConfig cfg() const {
    LearningConfig c;
    c.num_candidates = 12;
    c.unit = ms(10);
    c.recency = GetParam().r;
    c.experimentation = GetParam().e;
    c.seed = 77;
    return c;
  }
};

TEST_P(LearningGrid, PropensitiesStayFiniteAndPositive) {
  LearningEstimator e(cfg());
  sim::Rng rng(3);
  Cycles t{0};
  for (int i = 0; i < 300; ++i) {
    t += Cycles{rng.uniform(ms(1).v, ms(500).v)};
    e.on_adjusting_event(t);
    for (double q : e.propensities()) {
      ASSERT_GT(q, 0.0);
      ASSERT_LT(q, 1e9);
    }
  }
}

TEST_P(LearningGrid, UnderCoschedulingRatchetsUp) {
  LearningEstimator e(cfg());
  Cycles t{0};
  Cycles x{0};
  for (int i = 0; i < 40; ++i) {
    t += x + ms(1);
    x = e.on_adjusting_event(t);
  }
  EXPECT_EQ(x, ms(120)) << "persistent under-coscheduling must reach the "
                           "maximum candidate";
}

TEST_P(LearningGrid, EstimatesAreAlwaysValidCandidates) {
  LearningEstimator e(cfg());
  sim::Rng rng(5);
  Cycles t{0};
  for (int i = 0; i < 100; ++i) {
    t += Cycles{rng.uniform(ms(5).v, ms(800).v)};
    const Cycles x = e.on_adjusting_event(t);
    EXPECT_EQ(x.v % ms(10).v, 0u);
    EXPECT_GE(x, ms(10));
    EXPECT_LE(x, ms(120));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LearningGrid,
    ::testing::Values(Params{0.1, 0.1}, Params{0.1, 0.3}, Params{0.2, 0.2},
                      Params{0.3, 0.1}, Params{0.4, 0.3}, Params{0.5, 0.2}));

}  // namespace
}  // namespace asman::core

// Findings, check registry, and shared configuration for asman-lint.
#pragma once

#include <string>
#include <vector>

#include "token.h"

namespace asman_lint {

struct Finding {
  std::string file;    // display path
  int line;
  std::string check;   // determinism | ordered-iteration | integer-credit |
                       // audit-seam
  std::string message;
  bool allowed{false};        // suppressed by an asman-lint: allow(...) pragma
  std::string allow_reason;   // the pragma's `-- reason`, if any
};

inline const char* const kCheckNames[] = {
    "determinism",
    "ordered-iteration",
    "integer-credit",
    "audit-seam",
};

struct Options {
  std::string root;              // repo root (default: cwd)
  std::string compile_db;        // -p BUILD_DIR (compile_commands.json)
  std::vector<std::string> files;
  std::string prefix{"src/"};    // scope filter when walking --root
  std::vector<std::string> only_checks;  // --check NAME (repeatable)
  int max_allows{16};            // suppression budget (CI-visible)
  bool quiet{false};
  bool list_checks{false};
};

bool check_enabled(const Options& opt, const char* name);

}  // namespace asman_lint

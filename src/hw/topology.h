// Processor topology: sockets -> shared-LLC domains -> PCPUs.
//
// The paper's testbed is a dual-socket Dell Precision T5400: two quad-core
// Xeon X5410 (Harpertown) packages, each of which is really two dual-core
// dies sharing a 6 MB L2 — so a VCPU migration can stay inside a shared
// cache, cross cache domains within a package, or cross the FSB to the
// other package, at very different costs. `Topology` captures that shape
// for the placement layer and the migration cost model.
//
// A default-constructed Topology is "unspecified" and resolves to the flat
// single-domain topology at hypervisor construction; flat topologies make
// every distance check degenerate, so scheduling stays bit-identical to
// pre-topology builds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asman::hw {

// Redeclared from machine.h (machine.h includes this header; an alias may
// legally be redeclared to the same type).
using PcpuId = std::uint32_t;

struct MachineConfig;

/// Distance class between two PCPUs, ordered by increasing migration cost.
enum class TopoDistance : std::uint8_t {
  kSelf = 0,     // same PCPU — no move at all
  kSameLlc,      // different PCPU behind the same last-level cache
  kSameSocket,   // same package, different LLC domain
  kCrossSocket,  // different package (cross-FSB/QPI)
};

const char* to_string(TopoDistance d);

class Topology {
 public:
  /// Unspecified: resolved to flat(num_pcpus) by the hypervisor.
  Topology() = default;

  /// Single socket, single LLC domain over `num_pcpus` PCPUs. Every
  /// inter-PCPU distance is kSameLlc, so topology-aware code degenerates
  /// to the classic flat behaviour.
  static Topology flat(std::uint32_t num_pcpus);

  /// Regular sockets x llcs_per_socket x pcpus_per_llc grid. PCPU ids are
  /// assigned socket-major (socket 0 holds the low ids).
  static Topology symmetric(std::uint32_t sockets,
                            std::uint32_t llcs_per_socket,
                            std::uint32_t pcpus_per_llc);

  /// The paper's testbed: 2 sockets x 2 shared-L2 pairs x 2 cores = 8.
  static Topology paper() { return symmetric(2, 2, 2); }

  bool specified() const { return !socket_.empty(); }
  /// True when there is at most one LLC domain: all distance classes
  /// collapse and placement behaves exactly like the flat scheduler.
  bool is_flat() const { return num_llcs_ <= 1; }

  std::uint32_t num_pcpus() const {
    return static_cast<std::uint32_t>(socket_.size());
  }
  std::uint32_t num_sockets() const { return num_sockets_; }
  std::uint32_t num_llcs() const { return num_llcs_; }

  std::uint32_t socket_of(PcpuId p) const { return socket_[p]; }
  std::uint32_t llc_of(PcpuId p) const { return llc_[p]; }
  const std::vector<PcpuId>& pcpus_in_socket(std::uint32_t s) const {
    return by_socket_[s];
  }

  TopoDistance distance(PcpuId a, PcpuId b) const {
    if (a == b) return TopoDistance::kSelf;
    if (socket_[a] != socket_[b]) return TopoDistance::kCrossSocket;
    if (llc_[a] != llc_[b]) return TopoDistance::kSameSocket;
    return TopoDistance::kSameLlc;
  }

 private:
  std::vector<std::uint32_t> socket_;  // per-PCPU socket index
  std::vector<std::uint32_t> llc_;     // per-PCPU global LLC-domain index
  std::vector<std::vector<PcpuId>> by_socket_;
  std::uint32_t num_sockets_{0};
  std::uint32_t num_llcs_{0};
};

/// Typed machine-configuration defects. A Hypervisor refuses to construct
/// over a config with any of these (silent misbehaviour — modulo-by-zero
/// placement, zero-length slots — is worse than a loud reject).
enum class ConfigError : std::uint8_t {
  kNoPcpus = 0,            // num_pcpus == 0
  kZeroFrequency,          // freq_hz == 0
  kZeroSlot,               // slot_ms == 0
  kZeroAccounting,         // slots_per_accounting == 0
  kZeroTimeslice,          // slots_per_timeslice == 0
  kTopologyLeafMismatch,   // topology leaf count != num_pcpus
  kZeroLlcCapacity,        // footprints declared but llc_bytes == 0
  kZeroMemBandwidth,       // footprints declared but socket bandwidth == 0
  kOutOfBounds,            // field outside core/bounds_spec.h's interval
};

const char* to_string(ConfigError e);

struct ConfigIssue {
  ConfigError kind;
  std::string what;
};

/// Validate a MachineConfig: one ConfigIssue per defect (empty = valid).
/// An unspecified topology is always valid (it resolves to flat). Beyond
/// the structural zero/mismatch checks, every numeric field is held to its
/// core/bounds_spec.h interval — the same interval asman-verify's
/// value-range proof assumes — so a config the proof did not cover cannot
/// construct a hypervisor.
std::vector<ConfigIssue> validate_config(const MachineConfig& m);

/// Validate the memory-system capacity fields against a declared workload
/// footprint. On a non-flat topology a nonzero footprint with zero
/// `llc_bytes` (or zero socket bandwidth) would silently disable the
/// contention engine; these are reported as counted typed errors instead
/// (the hypervisor surfaces them via `footprint_config_errors`). Vacuous
/// on flat topologies, where the engine is inert by contract.
std::vector<ConfigIssue> validate_footprint_config(const MachineConfig& m,
                                                   bool footprint_declared);

}  // namespace asman::hw

#include "simcore/trace.h"

#include <cstdio>

namespace asman::sim {

const char* trace_cat_name(TraceCat c) {
  switch (c) {
    case TraceCat::kSched:
      return "sched";
    case TraceCat::kCredit:
      return "credit";
    case TraceCat::kCosched:
      return "cosched";
    case TraceCat::kGuest:
      return "guest";
    case TraceCat::kLock:
      return "lock";
    case TraceCat::kMonitor:
      return "monitor";
    case TraceCat::kWorkload:
      return "workload";
  }
  return "?";
}

std::vector<TraceRecord> Trace::filter(TraceCat cat) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_)
    if (r.cat == cat) out.push_back(r);
  return out;
}

std::string Trace::dump(std::size_t max_lines) const {
  std::string out;
  char head[96];
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (n++ >= max_lines) {
      out += "  ... (truncated)\n";
      break;
    }
    std::snprintf(head, sizeof head, "  [%12llu] %-8s ",
                  static_cast<unsigned long long>(r.at.v),
                  trace_cat_name(r.cat));
    out += head;
    out += r.msg;
    out += '\n';
  }
  return out;
}

}  // namespace asman::sim

// Contention scenarios: the paper's dual-socket host under memory-system
// pressure (docs/MODEL.md §2.8).
//
// contention_scenario() is the chaos-base fleet on hw::Topology::paper()
// with finite memory capacities (6 MiB shared LLC per dual-core die,
// Harpertown-style, and ~8 GB/s of bus bandwidth per socket) and a
// memory-hungry footprint installed on every tenant. The `pressure_aware`
// knob selects pressure-aware placement/stealing/balancing or the
// pressure-blind baseline; both pay exactly the same contention physics,
// so bench_contention attributes any degraded-cycle delta to placement
// alone — the same equal-cost discipline bench_topology uses.
#pragma once

#include <cstdint>

#include "experiments/scenario.h"

namespace asman::experiments {

/// Shared-LLC capacity the contention scenarios declare: 6 MiB, one
/// Harpertown dual-core die's L2.
inline constexpr std::uint64_t kContentionLlcBytes = 6ull << 20;

/// Per-socket memory bandwidth the contention scenarios declare (~8 GB/s,
/// one FSB's worth).
inline constexpr std::uint64_t kContentionSocketBw = 8'000'000'000ull;

/// The consolidated dual-socket host under memory pressure: idle Dom0, the
/// 4-VCPU gang candidate with a moderate footprint, a streaming tenant
/// whose working set alone overflows one LLC, and cache-hungry background
/// hogs. `n_vms` as in chaos_scenario (minimum 4 here; extras are 1-VCPU
/// hogs with small footprints). `pressure_aware` false keeps the identical
/// contention physics but places/steals/balances pressure-blind.
Scenario contention_scenario(core::SchedulerKind sched, std::uint64_t seed = 1,
                             bool pressure_aware = true,
                             std::uint32_t n_vms = 6);

}  // namespace asman::experiments

#include "sarif.h"

#include <cstdio>

namespace asman_lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int clamp_line(int line) { return line > 0 ? line : 1; }

}  // namespace

bool write_sarif(const std::string& path,
                 const std::vector<Finding>& findings) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;

  std::fprintf(out,
               "{\n"
               "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
               "  \"version\": \"2.1.0\",\n"
               "  \"runs\": [{\n"
               "    \"tool\": {\"driver\": {\n"
               "      \"name\": \"asman-lint\",\n"
               "      \"informationUri\": "
               "\"https://example.invalid/asman/docs/MODEL.md\",\n"
               "      \"rules\": [");
  bool first = true;
  for (const char* name : kCheckNames) {
    std::fprintf(out, "%s\n        {\"id\": \"%s\"}", first ? "" : ",", name);
    first = false;
  }
  std::fprintf(out,
               "\n      ]\n"
               "    }},\n"
               "    \"results\": [");

  first = true;
  for (const Finding& f : findings) {
    std::fprintf(out,
                 "%s\n      {\n"
                 "        \"ruleId\": \"%s\",\n"
                 "        \"level\": \"error\",\n"
                 "        \"message\": {\"text\": \"%s\"},\n"
                 "        \"locations\": [{\"physicalLocation\": {\n"
                 "          \"artifactLocation\": {\"uri\": \"%s\"},\n"
                 "          \"region\": {\"startLine\": %d}\n"
                 "        }}]",
                 first ? "" : ",", f.check.c_str(),
                 json_escape(f.message).c_str(), json_escape(f.file).c_str(),
                 clamp_line(f.line));
    first = false;
    if (f.allowed) {
      std::fprintf(out,
                   ",\n        \"suppressions\": [{\"kind\": \"inSource\", "
                   "\"justification\": \"%s\"}]",
                   json_escape(f.allow_reason).c_str());
    }
    if (!f.trace.empty()) {
      std::fprintf(out,
                   ",\n        \"codeFlows\": [{\"threadFlows\": "
                   "[{\"locations\": [");
      bool tf = true;
      for (const TraceStep& s : f.trace) {
        std::fprintf(out,
                     "%s\n          {\"location\": {\n"
                     "            \"physicalLocation\": {\n"
                     "              \"artifactLocation\": {\"uri\": \"%s\"},\n"
                     "              \"region\": {\"startLine\": %d}\n"
                     "            },\n"
                     "            \"message\": {\"text\": \"%s\"}\n"
                     "          }}",
                     tf ? "" : ",", json_escape(f.file).c_str(),
                     clamp_line(s.line), json_escape(s.note).c_str());
        tf = false;
      }
      std::fprintf(out, "\n        ]}]}]");
    }
    std::fprintf(out, "\n      }");
  }
  std::fprintf(out,
               "\n    ]\n"
               "  }]\n"
               "}\n");
  std::fclose(out);
  return true;
}

}  // namespace asman_lint
